// Negative constructions (EXTENSION module, X1): schemes that cannot be
// error-sensitive, demonstrated executably.
//
//   * stp on a path: splice the certificates of the two legal orientations
//     of an n-path onto the "pointers meet in the middle" configuration —
//     a configuration at distance ~n/2 from the language that only the two
//     middle nodes can reject.
//   * regular: glue a d1-regular and a d2-regular graph along a 2-edge cut
//     and splice the certificates of their legal self-descriptions — an
//     instance at distance >= min(|G1|,|G2|)/2 where only the four cut nodes
//     can reject.
//
// Both demos also validate the crossing engine against the real verifier:
// away from the cut every view is bitwise identical to an accepting view.
#pragma once

#include <cstddef>

#include "util/rng.hpp"

namespace pls::sensitivity {

struct CounterexampleResult {
  std::size_t n = 0;                   ///< nodes in the spliced instance
  std::size_t distance_lower_bound = 0;
  std::size_t rejections = 0;          ///< under the spliced certificates
  bool illegal = false;                ///< the spliced configuration is illegal
};

/// The stp two-orientations path construction. n must be even and >= 4.
CounterexampleResult stp_path_counterexample(std::size_t n);

/// The regular-subgraph gluing construction: cross a cycle (2-regular) on
/// 2*half nodes with a complete graph K4-like d-regular gadget... concretely:
/// G1 = cycle of size n1 (2-regular), G2 = random d2-regular of size n2.
CounterexampleResult regular_gluing_counterexample(std::size_t n1,
                                                   std::size_t n2,
                                                   std::size_t d2,
                                                   util::Rng& rng);

}  // namespace pls::sensitivity
