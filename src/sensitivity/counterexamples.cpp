#include "sensitivity/counterexamples.hpp"

#include <memory>

#include "graph/generators.hpp"
#include "pls/engine.hpp"
#include "schemes/common.hpp"
#include "schemes/regular.hpp"
#include "schemes/spanning_tree.hpp"
#include "util/assert.hpp"

namespace pls::sensitivity {

CounterexampleResult stp_path_counterexample(std::size_t n) {
  PLS_REQUIRE(n >= 4 && n % 2 == 0);
  auto g = std::make_shared<const graph::Graph>(graph::path(n));

  // ℓ1: everyone points right (root = last node);
  // ℓ2: everyone points left  (root = first node).
  std::vector<local::State> right, left;
  right.reserve(n);
  left.reserve(n);
  for (graph::NodeIndex v = 0; v < n; ++v) {
    if (v + 1 < n) {
      right.push_back(schemes::encode_pointer(g->id(v + 1)));
    } else {
      right.push_back(schemes::encode_pointer(std::nullopt));
    }
    if (v == 0) {
      left.push_back(schemes::encode_pointer(std::nullopt));
    } else {
      left.push_back(schemes::encode_pointer(g->id(v - 1)));
    }
  }
  const local::Configuration cfg_right(g, right);
  const local::Configuration cfg_left(g, left);

  const schemes::StpLanguage language;
  const schemes::StpScheme scheme(language);
  PLS_REQUIRE(language.contains(cfg_right));
  PLS_REQUIRE(language.contains(cfg_left));
  const core::Labeling lab_right = scheme.mark(cfg_right);
  const core::Labeling lab_left = scheme.mark(cfg_left);

  // ℓ3: pointers meet nowhere — the first half points left, the second half
  // points right (two roots, at the two path ends).  Certificates are
  // spliced from the two legal markings the same way.
  std::vector<local::State> meet(n);
  core::Labeling hybrid;
  hybrid.certs.resize(n);
  const std::size_t half = n / 2;
  for (graph::NodeIndex v = 0; v < n; ++v) {
    const bool first_half = v < half;
    meet[v] = first_half ? left[v] : right[v];
    hybrid.certs[v] = first_half ? lab_left.certs[v] : lab_right.certs[v];
  }
  const local::Configuration spliced(g, std::move(meet));

  CounterexampleResult result;
  result.n = n;
  result.illegal = !language.contains(spliced);
  result.rejections = core::run_verifier(scheme, spliced, hybrid).rejections();
  // Exact distance of the meet-in-the-middle configuration to stp is n/2
  // (whichever end hosts the final root, every pointer of the other half
  // plus one former root must flip).
  result.distance_lower_bound = half;
  return result;
}

CounterexampleResult regular_gluing_counterexample(std::size_t n1,
                                                   std::size_t n2,
                                                   std::size_t d2,
                                                   util::Rng& rng) {
  PLS_REQUIRE(n1 >= 4 && n2 >= 4 && d2 >= 3);
  const graph::Graph side1 = graph::cycle(n1);          // 2-regular
  const graph::Graph side2 = graph::random_regular(n2, d2, rng);

  // Remove one edge from each side, add two cross edges (degrees preserved).
  const graph::Edge cut2 = side2.edge(0);
  const graph::CrossedPair crossed = graph::cross_graphs(
      side1, 0, 1, side2, cut2.u, cut2.v, /*id_shift=*/side1.max_id());
  auto g = std::make_shared<const graph::Graph>(crossed.graph);

  const schemes::RegularLanguage language;
  const schemes::RegularScheme scheme(language);

  // The configuration describes the whole glued graph as H_ℓ; it is not
  // regular because the two sides have different degrees.
  const local::Configuration cfg = language.make_full_subgraph(g);

  // Splice certificates: side-1 nodes get the certificate they would carry
  // in a legal 2-regular self-description, side-2 nodes the d2-regular one.
  core::Labeling hybrid;
  hybrid.certs.reserve(g->n());
  util::BitWriter w1, w2;
  w1.write_varint(2);
  w2.write_varint(d2);
  const local::Certificate c1 = local::Certificate::from_writer(std::move(w1));
  const local::Certificate c2 = local::Certificate::from_writer(std::move(w2));
  for (graph::NodeIndex v = 0; v < g->n(); ++v)
    hybrid.certs.push_back(v < n1 ? c1 : c2);

  CounterexampleResult result;
  result.n = g->n();
  result.illegal = !language.contains(cfg);
  result.rejections = core::run_verifier(scheme, cfg, hybrid).rejections();
  // The paper's argument: fixing the instance requires re-labeling one side
  // almost entirely; 4 cut nodes may adjust for free.
  result.distance_lower_bound = std::min(n1, n2) - 4;
  return result;
}

}  // namespace pls::sensitivity
