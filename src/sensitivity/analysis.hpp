// Error-sensitivity analysis (EXTENSION module — follow-on work, X1).
//
// Not part of the 2005 paper: this module quantifies *how many* nodes reject
// as a function of how wrong the configuration is, the question formalized by
// the follow-on "error-sensitive proof-labeling schemes" line of work.  The
// 2005 conclusions motivate it (one rejecting node forces a global reset;
// many rejecting nodes allow parallel local resets), which is why it ships
// here as an extension.
//
// Measurement protocol: corrupt a legal configuration at k nodes with a
// language-aware corruption (so the corrupted instance is illegal and its
// Hamming distance to the language is at most k, and for some families
// exactly k), then let the adversary suite pick certificates minimizing the
// rejection count.  Reporting min-rejections against k is conservative in the
// right direction: min_rejections >= alpha * k implies
// min_rejections >= alpha * distance.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "pls/adversary.hpp"

namespace pls::sensitivity {

/// Language-aware corruption: perturb `cfg` at exactly the given nodes,
/// producing an illegal configuration at Hamming distance <= |nodes| from the
/// original legal one.
using Corruptor = std::function<local::Configuration(
    const local::Configuration& legal,
    const std::vector<graph::NodeIndex>& nodes, util::Rng& rng)>;

struct SensitivityRow {
  std::size_t n = 0;
  std::size_t corruptions = 0;       ///< k (upper bound on the distance)
  std::size_t exact_distance = 0;    ///< 0 when unknown; else the exact value
  std::size_t min_rejections = 0;    ///< adversary's best outcome
  double ratio = 0.0;                ///< min_rejections / corruptions
};

/// Corrupts `legal` at k random nodes with `corrupt`, attacks the result,
/// and reports the adversary's best (minimum) rejection count.  Skips and
/// retries (up to 8 times) if a corruption accidentally lands back inside the
/// language.
SensitivityRow measure(const core::Scheme& scheme,
                       const local::Configuration& legal,
                       const Corruptor& corrupt, std::size_t k,
                       util::Rng& rng,
                       const core::AttackOptions& attack_options = {});

/// Built-in corruptors for the standard languages.
/// leader: sets k extra leader bits (distance exactly k).
local::Configuration corrupt_leader(const local::Configuration& legal,
                                    const std::vector<graph::NodeIndex>& nodes,
                                    util::Rng& rng);
/// agree: rewrites k values to a fresh common value (distance exactly
/// min(k, n-k); exactly k when k < n/2).
local::Configuration corrupt_agree(const local::Configuration& legal,
                                   const std::vector<graph::NodeIndex>& nodes,
                                   util::Rng& rng);
/// stl/mstl: drops one listed tree edge from each chosen node's list
/// (asymmetric listing => illegal; distance <= k).
local::Configuration corrupt_adjacency_list(
    const local::Configuration& legal,
    const std::vector<graph::NodeIndex>& nodes, util::Rng& rng);

/// acyclic, exact-distance family: a chain of k triangles whose pointers form
/// k disjoint 3-cycles — distance to acyclic is exactly k.
struct CycleChainInstance {
  local::Configuration config;
  std::size_t cycles = 0;  ///< exact Hamming distance to `acyclic`
};
CycleChainInstance make_cycle_chain(std::size_t k);

/// Exact Hamming distance from `cfg` to the language, by exhaustive search
/// over all node subsets of size <= max_distance, replacing each chosen
/// node's state with every candidate from `candidates(v)`.  Exponential —
/// intended for small instances in tests, where it pins the exactness of the
/// constructions above.  Returns nullopt when no repair within the budget
/// exists (distance > max_distance over the candidate alphabet).
using CandidateFn =
    std::function<std::vector<local::State>(graph::NodeIndex)>;
std::optional<std::size_t> exact_distance(const core::Language& language,
                                          const local::Configuration& cfg,
                                          const CandidateFn& candidates,
                                          std::size_t max_distance);

/// Candidate alphabets for the standard state shapes.
CandidateFn pointer_candidates(const local::Configuration& cfg);
CandidateFn membership_bit_candidates();
CandidateFn adjacency_subset_candidates(const local::Configuration& cfg);

/// Proximity of detection: for each rejecting node, the hop distance to the
/// nearest corrupted node.  The paper's conclusions ask whether detection can
/// be *located* near the fault; this measures how far it actually lands for
/// a given certificate assignment.
struct ProximityReport {
  std::size_t rejecting = 0;
  std::size_t max_hops = 0;     ///< farthest rejector from any fault
  double mean_hops = 0.0;
};
ProximityReport detection_proximity(
    const local::Configuration& cfg, const std::vector<bool>& rejecting,
    const std::vector<graph::NodeIndex>& corrupted);

}  // namespace pls::sensitivity
