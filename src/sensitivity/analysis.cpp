#include "sensitivity/analysis.hpp"

#include <limits>
#include <memory>
#include <queue>

#include "schemes/common.hpp"
#include "schemes/leader.hpp"
#include "util/assert.hpp"

namespace pls::sensitivity {

SensitivityRow measure(const core::Scheme& scheme,
                       const local::Configuration& legal,
                       const Corruptor& corrupt, std::size_t k,
                       util::Rng& rng,
                       const core::AttackOptions& attack_options) {
  PLS_REQUIRE(scheme.language().contains(legal));
  PLS_REQUIRE(k >= 1 && k <= legal.n());

  SensitivityRow row;
  row.n = legal.n();
  row.corruptions = k;

  for (int attempt = 0; attempt < 8; ++attempt) {
    auto perm = rng.permutation(legal.n());
    std::vector<graph::NodeIndex> nodes;
    nodes.reserve(k);
    for (std::size_t i = 0; i < k; ++i)
      nodes.push_back(static_cast<graph::NodeIndex>(perm[i]));
    const local::Configuration corrupted = corrupt(legal, nodes, rng);
    if (scheme.language().contains(corrupted)) continue;  // retry
    const core::AttackReport report =
        core::attack(scheme, corrupted, rng, attack_options);
    row.min_rejections = report.min_rejections;
    row.ratio = static_cast<double>(report.min_rejections) /
                static_cast<double>(k);
    return row;
  }
  throw std::runtime_error(
      "sensitivity::measure: corruption kept producing legal configurations");
}

local::Configuration corrupt_leader(const local::Configuration& legal,
                                    const std::vector<graph::NodeIndex>& nodes,
                                    util::Rng& /*rng*/) {
  std::vector<local::State> states = legal.states();
  for (const graph::NodeIndex v : nodes)
    states[v] = schemes::LeaderLanguage::encode_flag(true);
  return legal.with_states(std::move(states));
}

local::Configuration corrupt_agree(const local::Configuration& legal,
                                   const std::vector<graph::NodeIndex>& nodes,
                                   util::Rng& rng) {
  PLS_REQUIRE(!nodes.empty());
  const std::size_t bits = legal.state(0).bit_size();
  local::State fresh = local::random_state(bits, rng);
  while (fresh == legal.state(0)) fresh = local::random_state(bits, rng);
  std::vector<local::State> states = legal.states();
  for (const graph::NodeIndex v : nodes) states[v] = fresh;
  return legal.with_states(std::move(states));
}

local::Configuration corrupt_adjacency_list(
    const local::Configuration& legal,
    const std::vector<graph::NodeIndex>& nodes, util::Rng& rng) {
  std::vector<local::State> states = legal.states();
  for (const graph::NodeIndex v : nodes) {
    auto list = schemes::decode_adjacency_list(states[v]);
    PLS_REQUIRE(list.has_value());
    if (list->empty()) continue;  // nothing to drop at this node
    const std::size_t drop = rng.below(list->size());
    list->erase(list->begin() + static_cast<std::ptrdiff_t>(drop));
    states[v] = schemes::encode_adjacency_list(std::move(*list));
  }
  return legal.with_states(std::move(states));
}

std::optional<std::size_t> exact_distance(const core::Language& language,
                                          const local::Configuration& cfg,
                                          const CandidateFn& candidates,
                                          std::size_t max_distance) {
  if (language.contains(cfg)) return 0;
  const std::size_t n = cfg.n();
  PLS_REQUIRE(n <= 24);  // exhaustive search: keep instances tiny

  std::vector<std::vector<local::State>> alphabet(n);
  for (graph::NodeIndex v = 0; v < n; ++v) alphabet[v] = candidates(v);

  // For each subset size d, enumerate subsets and candidate assignments.
  std::vector<graph::NodeIndex> subset;
  std::vector<local::State> states = cfg.states();

  // Recursive assignment over the chosen subset.
  std::function<bool(std::size_t)> assign = [&](std::size_t i) -> bool {
    if (i == subset.size()) {
      return language.contains(cfg.with_states(states));
    }
    const graph::NodeIndex v = subset[i];
    const local::State original = states[v];
    for (const local::State& candidate : alphabet[v]) {
      if (candidate == original) continue;  // must actually change the node
      states[v] = candidate;
      if (assign(i + 1)) {
        states[v] = original;
        return true;
      }
    }
    states[v] = original;
    return false;
  };

  std::function<bool(graph::NodeIndex, std::size_t)> choose =
      [&](graph::NodeIndex from, std::size_t remaining) -> bool {
    if (remaining == 0) return assign(0);
    for (graph::NodeIndex v = from; v + remaining <= n; ++v) {
      subset.push_back(v);
      if (choose(v + 1, remaining - 1)) {
        subset.pop_back();
        return true;
      }
      subset.pop_back();
    }
    return false;
  };

  for (std::size_t d = 1; d <= max_distance; ++d)
    if (choose(0, d)) return d;
  return std::nullopt;
}

CandidateFn pointer_candidates(const local::Configuration& cfg) {
  const graph::Graph* g = &cfg.graph();
  return [g](graph::NodeIndex v) {
    std::vector<local::State> out;
    out.push_back(schemes::encode_pointer(std::nullopt));
    for (const graph::AdjEntry& a : g->adjacency(v))
      out.push_back(schemes::encode_pointer(g->id(a.to)));
    return out;
  };
}

CandidateFn membership_bit_candidates() {
  return [](graph::NodeIndex) {
    return std::vector<local::State>{local::State::of_uint(0, 1),
                                     local::State::of_uint(1, 1)};
  };
}

CandidateFn adjacency_subset_candidates(const local::Configuration& cfg) {
  const graph::Graph* g = &cfg.graph();
  return [g](graph::NodeIndex v) {
    const auto adj = g->adjacency(v);
    PLS_REQUIRE(adj.size() <= 12);
    std::vector<local::State> out;
    for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << adj.size());
         ++mask) {
      std::vector<graph::RawId> ids;
      for (std::size_t i = 0; i < adj.size(); ++i)
        if ((mask >> i) & 1u) ids.push_back(g->id(adj[i].to));
      out.push_back(schemes::encode_adjacency_list(std::move(ids)));
    }
    return out;
  };
}

ProximityReport detection_proximity(
    const local::Configuration& cfg, const std::vector<bool>& rejecting,
    const std::vector<graph::NodeIndex>& corrupted) {
  PLS_REQUIRE(rejecting.size() == cfg.n());
  PLS_REQUIRE(!corrupted.empty());
  const graph::Graph& g = cfg.graph();

  // Multi-source BFS from the corrupted nodes.
  std::vector<std::uint32_t> dist(g.n(),
                                  std::numeric_limits<std::uint32_t>::max());
  std::queue<graph::NodeIndex> frontier;
  for (const graph::NodeIndex v : corrupted) {
    dist[v] = 0;
    frontier.push(v);
  }
  while (!frontier.empty()) {
    const graph::NodeIndex v = frontier.front();
    frontier.pop();
    for (const graph::AdjEntry& a : g.adjacency(v))
      if (dist[a.to] == std::numeric_limits<std::uint32_t>::max()) {
        dist[a.to] = dist[v] + 1;
        frontier.push(a.to);
      }
  }

  ProximityReport report;
  std::size_t total = 0;
  for (graph::NodeIndex v = 0; v < g.n(); ++v) {
    if (!rejecting[v]) continue;
    ++report.rejecting;
    report.max_hops = std::max<std::size_t>(report.max_hops, dist[v]);
    total += dist[v];
  }
  if (report.rejecting > 0)
    report.mean_hops =
        static_cast<double>(total) / static_cast<double>(report.rejecting);
  return report;
}

CycleChainInstance make_cycle_chain(std::size_t k) {
  PLS_REQUIRE(k >= 1);
  // Triangles T_j = {3j, 3j+1, 3j+2}; triangle j is bridged to triangle j+1
  // by the edge (3j+2, 3j+3).  Pointers run around each triangle, so the
  // pointer graph has exactly k vertex-disjoint cycles: distance to
  // `acyclic` is exactly k (one pointer per cycle must change, and setting
  // one pointer per cycle to ⊥ suffices).
  graph::Graph::Builder b;
  const std::size_t n = 3 * k;
  for (std::size_t i = 0; i < n; ++i) b.add_node(static_cast<graph::RawId>(i + 1));
  for (std::size_t j = 0; j < k; ++j) {
    const auto base = static_cast<graph::NodeIndex>(3 * j);
    b.add_edge(base, base + 1);
    b.add_edge(base + 1, base + 2);
    b.add_edge(base, base + 2);
    if (j + 1 < k) b.add_edge(base + 2, base + 3);
  }
  auto g = std::make_shared<const graph::Graph>(std::move(b).build());

  std::vector<local::State> states;
  states.reserve(n);
  for (std::size_t j = 0; j < k; ++j) {
    const graph::RawId i0 = 3 * j + 1, i1 = 3 * j + 2, i2 = 3 * j + 3;
    states.push_back(schemes::encode_pointer(i1));  // 3j   -> 3j+1
    states.push_back(schemes::encode_pointer(i2));  // 3j+1 -> 3j+2
    states.push_back(schemes::encode_pointer(i0));  // 3j+2 -> 3j
  }
  CycleChainInstance out{local::Configuration(std::move(g), std::move(states)),
                         k};
  return out;
}

}  // namespace pls::sensitivity
