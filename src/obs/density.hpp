// Rejection-density telemetry: how broken is the configuration?
//
// Error-sensitive proof labeling schemes (Feuilloley–Fraigniaud, PAPERS.md)
// ask that the NUMBER of rejecting nodes scale with the configuration's edit
// distance from the language — exactly the quantity a production monitor
// wants from a verdict.  A scheme with that property turns the verifier into
// a gauge ("17% of the network is inconsistent, concentrated in region 3")
// instead of a fuse ("something, somewhere, is wrong"), and lets the
// self-stabilization layer choose proportional local recovery over a global
// reset.
//
// This module has three layers:
//
//   * Verdict aggregation: whole-configuration rejection density
//     (core::Verdict::rejection_density) and per-region densities over any
//     node partition, with a BFS-Voronoi partitioner for callers that have
//     no natural regions.
//   * The measurement protocol: plant edits at a known (bounded) edit
//     distance k with a language-aware corruptor, let the adversary suite
//     pick the certificates that MINIMIZE rejections, and record the
//     density-vs-distance curve.  Reporting the adversary's minimum is
//     conservative in the right direction: a curve that grows under the
//     minimizing adversary grows under every prover.
//   * Classification: a curve is *error-sensitive* when the minimized
//     rejection count is monotone non-decreasing in the planted distance
//     and actually grows across the sweep.  bench_rejection_density emits
//     the classification registry-wide (rejection_density.json in CI).
//
// Everything here is snapshot-path telemetry, not hot-path instrumentation:
// curves run whole adversary attacks, and record_density costs one verdict
// scan.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "pls/adversary.hpp"
#include "sensitivity/analysis.hpp"

namespace pls::obs {

/// Per-region share of the rejecting nodes, over a partition of the graph.
struct RegionDensity {
  std::uint32_t region = 0;
  std::size_t nodes = 0;
  std::size_t rejections = 0;
  double density = 0.0;  ///< rejections / nodes of this region
};

/// BFS-Voronoi partition into (at most) `regions` parts: seeds spread evenly
/// over the node indices, every node assigned to the seed whose BFS wave
/// reaches it first (ties to the earlier seed — deterministic).  Nodes in
/// components no seed touches join region 0.  The telemetry default for
/// callers without scheme-native regions.
std::vector<std::uint32_t> bfs_partition(const graph::Graph& g,
                                         std::size_t regions);

/// Rejection density per region of the partition.  `region_of[v]` names
/// node v's region; entries are returned for every region id in [0, max+1),
/// empty regions included (density 0 over 0 nodes).
std::vector<RegionDensity> region_rejection_density(
    const core::Verdict& verdict, std::span<const std::uint32_t> region_of);

/// Records a verdict's rejection telemetry into `registry`: histogram
/// `density.rejections` (count of rejecting nodes), histogram
/// `density.fraction_ppm` (whole-configuration density in parts per
/// million), and — when a partition is supplied — `density.region_ppm`
/// (one sample per non-empty region).  The snapshot path the
/// self-stabilization harness reads its recovery signal from.
void record_density(MetricsRegistry& registry, const core::Verdict& verdict,
                    std::span<const std::uint32_t> region_of = {});

/// One point of a density-vs-distance curve.
struct DensityPoint {
  std::size_t planted = 0;         ///< k: planted edit distance (upper bound)
  std::size_t min_rejections = 0;  ///< adversary-minimized rejecting nodes
  double density = 0.0;            ///< min_rejections / n
};

/// One scheme's measured curve plus its classification.
struct DensityCurve {
  std::string scheme;
  std::size_t n = 0;
  std::vector<DensityPoint> points;
  /// Density never decreases as the planted distance grows.
  bool monotone = false;
  /// Monotone AND the density actually grows across the sweep — the
  /// observable (necessary) signature of an error-sensitive scheme.  Not a
  /// proof: the planted distances are upper bounds and the adversary is a
  /// heuristic minimizer, so the flag classifies measured behavior.
  bool error_sensitive = false;
};

/// A sensitivity::Corruptor for schemes without a language-aware one:
/// rewrites each chosen node's state with fresh random bits of the same
/// length (distance <= |nodes|; sensitivity::measure retries corruptions
/// that accidentally land back inside the language).
local::Configuration corrupt_random_state(
    const local::Configuration& legal,
    const std::vector<graph::NodeIndex>& nodes, util::Rng& rng);

/// Measures the density-vs-distance curve of `scheme` on corruptions of
/// `legal`: for each k in `planted`, corrupt k nodes with `corrupt`, run
/// the adversary (minimizing rejections), and record the density point.
/// `planted` must be strictly increasing.
DensityCurve measure_density_curve(
    const core::Scheme& scheme, const local::Configuration& legal,
    const sensitivity::Corruptor& corrupt, std::span<const std::size_t> planted,
    util::Rng& rng, const core::AttackOptions& attack_options = {});

}  // namespace pls::obs
