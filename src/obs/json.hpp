// Minimal streaming JSON writer — the single emitter behind every JSON
// artifact this repository produces.
//
// The metrics exporter (obs/metrics.hpp), the chrome-trace exporter
// (obs/trace.hpp), and every bench that writes a JSON artifact go through
// this one class, so escaping, number formatting, and comma/indent
// bookkeeping are defined exactly once.  The writer is strictly streaming
// (no DOM, no allocation beyond the open-scope stack) and enforces
// well-formedness with PLS_REQUIRE: a key outside an object, a bare value
// where a key is due, or an unbalanced end() is a programming error, not a
// malformed artifact discovered by a downstream parser.
#pragma once

#include <cmath>
#include <cstdint>
#include <ostream>
#include <string_view>
#include <vector>

#include "util/assert.hpp"

namespace pls::obs {

class JsonWriter {
 public:
  /// Writes one JSON document to `out`.  `indent` spaces per nesting level;
  /// 0 emits the compact single-line form (the trace exporter uses it — a
  /// smoke trace holds tens of thousands of events).
  explicit JsonWriter(std::ostream& out, int indent = 2)
      : out_(out), indent_(indent) {}

  ~JsonWriter() {
    // An unbalanced document is a bug at the emitting call site; asserting
    // in the destructor would terminate during unwind, so tests assert via
    // finished() instead.
  }

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void begin_object() { open('{', Scope::kObject); }
  void end_object() { close('}', Scope::kObject); }
  void begin_array() { open('[', Scope::kArray); }
  void end_array() { close(']', Scope::kArray); }

  /// Key of the next member; only valid directly inside an object.
  JsonWriter& key(std::string_view k) {
    PLS_REQUIRE(!scopes_.empty() && scopes_.back().scope == Scope::kObject);
    PLS_REQUIRE(!key_pending_);
    separate();
    quote(k);
    out_ << ": ";
    key_pending_ = true;
    return *this;
  }

  void value(std::string_view v) {
    pre_value();
    quote(v);
  }
  void value(const char* v) { value(std::string_view(v)); }
  void value(bool v) {
    pre_value();
    out_ << (v ? "true" : "false");
  }
  void value(double v) {
    pre_value();
    // JSON has no NaN/Inf; map them to null rather than emit garbage.
    if (std::isfinite(v)) {
      const auto flags = out_.flags();
      const auto precision = out_.precision();
      out_.precision(15);
      out_ << v;
      out_.precision(precision);
      out_.flags(flags);
    } else {
      out_ << "null";
    }
  }
  void value(std::uint64_t v) {
    pre_value();
    out_ << v;
  }
  void value(std::int64_t v) {
    pre_value();
    out_ << v;
  }
  // Unambiguous forwarding for the common integer types benches hold
  // (std::size_t, unsigned, int are all distinct from the fixed-width
  // overloads on some ABIs).
  template <typename T>
    requires(std::is_integral_v<T> && !std::is_same_v<T, bool> &&
             !std::is_same_v<T, std::uint64_t> &&
             !std::is_same_v<T, std::int64_t>)
  void value(T v) {
    if constexpr (std::is_signed_v<T>) {
      value(static_cast<std::int64_t>(v));
    } else {
      value(static_cast<std::uint64_t>(v));
    }
  }

  /// key + value in one call — the overwhelmingly common member shape.
  template <typename T>
  void kv(std::string_view k, T v) {
    key(k);
    value(v);
  }

  /// Whether every opened scope has been closed (one complete document).
  bool finished() const noexcept { return scopes_.empty() && wrote_root_; }

 private:
  enum class Scope { kObject, kArray };
  struct Level {
    Scope scope;
    bool has_members = false;
  };

  void open(char c, Scope scope) {
    pre_value();
    out_ << c;
    scopes_.push_back(Level{scope});
  }

  void close(char c, Scope scope) {
    PLS_REQUIRE(!scopes_.empty() && scopes_.back().scope == scope);
    PLS_REQUIRE(!key_pending_);
    const bool had_members = scopes_.back().has_members;
    scopes_.pop_back();
    if (had_members) newline_indent();
    out_ << c;
    if (scopes_.empty()) out_ << "\n";
  }

  /// Comma/indent before a new member of the innermost scope.
  void separate() {
    PLS_REQUIRE(!scopes_.empty());
    if (scopes_.back().has_members) out_ << ",";
    scopes_.back().has_members = true;
    newline_indent();
  }

  /// Position the stream for a value: after a pending key, as an array
  /// element (comma-separated), or as the document root.
  void pre_value() {
    if (key_pending_) {
      key_pending_ = false;
      return;
    }
    if (scopes_.empty()) {
      PLS_REQUIRE(!wrote_root_);  // one root value per document
      wrote_root_ = true;
      return;
    }
    PLS_REQUIRE(scopes_.back().scope == Scope::kArray);
    separate();
  }

  void newline_indent() {
    if (indent_ <= 0) return;
    out_ << "\n";
    for (std::size_t i = 0; i < scopes_.size() * indent_; ++i) out_ << ' ';
  }

  void quote(std::string_view s) {
    if (scopes_.empty()) wrote_root_ = true;
    out_ << '"';
    for (const char c : s) {
      switch (c) {
        case '"': out_ << "\\\""; break;
        case '\\': out_ << "\\\\"; break;
        case '\n': out_ << "\\n"; break;
        case '\t': out_ << "\\t"; break;
        case '\r': out_ << "\\r"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            const char* hex = "0123456789abcdef";
            out_ << "\\u00" << hex[(c >> 4) & 0xF] << hex[c & 0xF];
          } else {
            out_ << c;
          }
      }
    }
    out_ << '"';
  }

  std::ostream& out_;
  const std::size_t indent_;
  std::vector<Level> scopes_;
  bool key_pending_ = false;
  bool wrote_root_ = false;
};

}  // namespace pls::obs
