#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <ostream>

#include "obs/json.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace pls::obs {

namespace {

/// One thread's span storage.  The owning thread writes lock-free (it is the
/// only writer); the exporter reads under the registry mutex after the
/// workload quiesced.  Deliberately never destroyed while the process lives:
/// a worker thread that outlives a disable()/export cannot dangle.
struct Ring {
  explicit Ring(std::size_t capacity, std::uint32_t tid)
      : events(capacity), tid(tid) {}

  /// Owner-thread data: written only by the registering thread, read by the
  /// exporter under the registry mutex once the workload quiesced (the
  /// documented enable()/export contract) — the mutex itself does not order
  /// these reads against the owner, quiescence does.
  std::vector<TraceRecorder::Event> events;
  /// Cursor and total are explicit relaxed atomics: single-writer (the
  /// owner), but dropped()/events() may sample them from another thread.
  /// Each is independently monotone/meaningful, no ordering between them or
  /// with `events` is claimed, and the owner's own accesses are same-thread
  /// ordered — so relaxed is sufficient and keeps record() at plain-store
  /// cost.
  std::atomic<std::size_t> next{0};        ///< append cursor (wraps)
  std::atomic<std::uint64_t> recorded{0};  ///< total record() calls
  std::uint32_t tid;
};

struct Registry {
  util::Mutex mu;
  std::vector<std::unique_ptr<Ring>> rings PLS_GUARDED_BY(mu);
  std::size_t ring_capacity PLS_GUARDED_BY(mu) = 1u << 15;
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: outlives every worker thread
  return *r;
}

std::atomic<bool> g_enabled{false};

/// Span clock origin, nanoseconds on the steady clock at the last enable().
/// Release store in enable(), relaxed load in now_ns(): enable() is called
/// from a quiesced state, so every thread that records a span was handed
/// work *after* enable() returned — that hand-off (pool mutex, thread
/// creation) is the happens-before edge; the load needs no ordering of its
/// own.  Mirrors the g_enabled discipline.
std::atomic<std::int64_t> g_origin_ns{0};

std::int64_t steady_now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Ring& local_ring() {
  thread_local Ring* ring = [] {
    Registry& r = registry();
    util::MutexLock lock(r.mu);
    r.rings.push_back(std::make_unique<Ring>(
        r.ring_capacity, static_cast<std::uint32_t>(r.rings.size())));
    return r.rings.back().get();
  }();
  return *ring;
}

}  // namespace

void TraceRecorder::enable(std::size_t ring_capacity) {
  Registry& r = registry();
  util::MutexLock lock(r.mu);
  r.ring_capacity = ring_capacity == 0 ? 1 : ring_capacity;
  for (std::unique_ptr<Ring>& ring : r.rings) {
    ring->next.store(0, std::memory_order_relaxed);
    ring->recorded.store(0, std::memory_order_relaxed);
  }
  g_origin_ns.store(steady_now_ns(), std::memory_order_release);
  g_enabled.store(true, std::memory_order_release);
}

void TraceRecorder::disable() {
  g_enabled.store(false, std::memory_order_release);
}

PLS_HOT bool TraceRecorder::enabled() noexcept {
  // Relaxed: the flag only gates whether a span bothers to read the clock;
  // enable()/disable() bracket quiesced workloads, so no recorded data is
  // published through this load.
  return g_enabled.load(std::memory_order_relaxed);
}

PLS_HOT std::uint64_t TraceRecorder::now_ns() noexcept {
  const std::int64_t since =
      steady_now_ns() - g_origin_ns.load(std::memory_order_relaxed);
  return since > 0 ? static_cast<std::uint64_t>(since) : 0;
}

PLS_HOT void TraceRecorder::record(const char* name, std::uint64_t start_ns,
                                   std::uint64_t end_ns, std::uint64_t arg) {
  Ring& ring = local_ring();
  const std::size_t slot = ring.next.load(std::memory_order_relaxed);
  Event& e = ring.events[slot];
  e.name = name;
  e.start_ns = start_ns;
  e.dur_ns = end_ns >= start_ns ? end_ns - start_ns : 0;
  e.arg = arg;
  e.tid = ring.tid;
  ring.next.store((slot + 1) % ring.events.size(), std::memory_order_relaxed);
  ring.recorded.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t TraceRecorder::dropped() {
  Registry& r = registry();
  util::MutexLock lock(r.mu);
  std::uint64_t dropped = 0;
  for (const std::unique_ptr<Ring>& ring : r.rings) {
    const std::uint64_t recorded =
        ring->recorded.load(std::memory_order_relaxed);
    if (recorded > ring->events.size())
      dropped += recorded - ring->events.size();
  }
  return dropped;
}

std::vector<TraceRecorder::Event> TraceRecorder::events() {
  Registry& r = registry();
  util::MutexLock lock(r.mu);
  std::vector<Event> all;
  for (const std::unique_ptr<Ring>& ring : r.rings) {
    const std::uint64_t recorded =
        ring->recorded.load(std::memory_order_relaxed);
    const std::size_t next = ring->next.load(std::memory_order_relaxed);
    const std::size_t count =
        std::min<std::uint64_t>(recorded, ring->events.size());
    // Oldest-first: when the ring wrapped, the oldest retained event sits at
    // `next` (the slot the following record() would overwrite).
    const std::size_t begin = recorded > ring->events.size() ? next : 0;
    for (std::size_t i = 0; i < count; ++i)
      all.push_back(ring->events[(begin + i) % ring->events.size()]);
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const Event& a, const Event& b) {
                     return a.start_ns < b.start_ns;
                   });
  return all;
}

void TraceRecorder::export_chrome_trace(std::ostream& out) {
  const std::vector<Event> all = events();
  JsonWriter json(out, /*indent=*/0);
  json.begin_object();
  json.key("traceEvents");
  json.begin_array();
  for (const Event& e : all) {
    json.begin_object();
    json.kv("name", e.name);
    json.kv("cat", "pls");
    json.kv("ph", "X");
    json.kv("pid", std::uint64_t{1});
    json.kv("tid", e.tid);
    // chrome://tracing wants microseconds; keep nanosecond resolution via
    // the fractional part.
    json.kv("ts", static_cast<double>(e.start_ns) / 1000.0);
    json.kv("dur", static_cast<double>(e.dur_ns) / 1000.0);
    if (e.arg != kNoArg) {
      json.key("args");
      json.begin_object();
      json.kv("i", e.arg);
      json.end_object();
    }
    json.end_object();
  }
  json.end_array();
  json.kv("displayTimeUnit", "ms");
  json.kv("droppedEvents", dropped());
  json.end_object();
}

}  // namespace pls::obs
