#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <ostream>

#include "obs/json.hpp"

namespace pls::obs {

namespace {

/// One thread's span storage.  The owning thread writes lock-free (it is the
/// only writer); the exporter reads under the registry mutex after the
/// workload quiesced.  Deliberately never destroyed while the process lives:
/// a worker thread that outlives a disable()/export cannot dangle.
struct Ring {
  explicit Ring(std::size_t capacity, std::uint32_t tid)
      : events(capacity), tid(tid) {}

  std::vector<TraceRecorder::Event> events;
  std::size_t next = 0;       ///< append cursor (wraps)
  std::uint64_t recorded = 0; ///< total record() calls into this ring
  std::uint32_t tid;
};

struct Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<Ring>> rings;
  std::size_t ring_capacity = 1u << 15;
  std::chrono::steady_clock::time_point origin =
      std::chrono::steady_clock::now();
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: outlives every worker thread
  return *r;
}

std::atomic<bool> g_enabled{false};

Ring& local_ring() {
  thread_local Ring* ring = [] {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    r.rings.push_back(std::make_unique<Ring>(
        r.ring_capacity, static_cast<std::uint32_t>(r.rings.size())));
    return r.rings.back().get();
  }();
  return *ring;
}

}  // namespace

void TraceRecorder::enable(std::size_t ring_capacity) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.ring_capacity = ring_capacity == 0 ? 1 : ring_capacity;
  for (std::unique_ptr<Ring>& ring : r.rings) {
    ring->next = 0;
    ring->recorded = 0;
  }
  r.origin = std::chrono::steady_clock::now();
  g_enabled.store(true, std::memory_order_release);
}

void TraceRecorder::disable() {
  g_enabled.store(false, std::memory_order_release);
}

bool TraceRecorder::enabled() noexcept {
  return g_enabled.load(std::memory_order_relaxed);
}

std::uint64_t TraceRecorder::now_ns() noexcept {
  const auto now = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now -
                                                           registry().origin)
          .count());
}

void TraceRecorder::record(const char* name, std::uint64_t start_ns,
                           std::uint64_t end_ns, std::uint64_t arg) {
  Ring& ring = local_ring();
  Event& e = ring.events[ring.next];
  e.name = name;
  e.start_ns = start_ns;
  e.dur_ns = end_ns >= start_ns ? end_ns - start_ns : 0;
  e.arg = arg;
  e.tid = ring.tid;
  ring.next = (ring.next + 1) % ring.events.size();
  ++ring.recorded;
}

std::uint64_t TraceRecorder::dropped() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::uint64_t dropped = 0;
  for (const std::unique_ptr<Ring>& ring : r.rings)
    if (ring->recorded > ring->events.size())
      dropped += ring->recorded - ring->events.size();
  return dropped;
}

std::vector<TraceRecorder::Event> TraceRecorder::events() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<Event> all;
  for (const std::unique_ptr<Ring>& ring : r.rings) {
    const std::size_t count =
        std::min<std::uint64_t>(ring->recorded, ring->events.size());
    // Oldest-first: when the ring wrapped, the oldest retained event sits at
    // `next` (the slot the following record() would overwrite).
    const std::size_t begin =
        ring->recorded > ring->events.size() ? ring->next : 0;
    for (std::size_t i = 0; i < count; ++i)
      all.push_back(ring->events[(begin + i) % ring->events.size()]);
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const Event& a, const Event& b) {
                     return a.start_ns < b.start_ns;
                   });
  return all;
}

void TraceRecorder::export_chrome_trace(std::ostream& out) {
  const std::vector<Event> all = events();
  JsonWriter json(out, /*indent=*/0);
  json.begin_object();
  json.key("traceEvents");
  json.begin_array();
  for (const Event& e : all) {
    json.begin_object();
    json.kv("name", e.name);
    json.kv("cat", "pls");
    json.kv("ph", "X");
    json.kv("pid", std::uint64_t{1});
    json.kv("tid", e.tid);
    // chrome://tracing wants microseconds; keep nanosecond resolution via
    // the fractional part.
    json.kv("ts", static_cast<double>(e.start_ns) / 1000.0);
    json.kv("dur", static_cast<double>(e.dur_ns) / 1000.0);
    if (e.arg != kNoArg) {
      json.key("args");
      json.begin_object();
      json.kv("i", e.arg);
      json.end_object();
    }
    json.end_object();
  }
  json.end_array();
  json.kv("displayTimeUnit", "ms");
  json.kv("droppedEvents", dropped());
  json.end_object();
}

}  // namespace pls::obs
