#include "obs/density.hpp"

#include <algorithm>
#include <limits>

#include "util/assert.hpp"

namespace pls::obs {

std::vector<std::uint32_t> bfs_partition(const graph::Graph& g,
                                         std::size_t regions) {
  const std::size_t n = g.n();
  std::vector<std::uint32_t> region_of(n, 0);
  if (n == 0 || regions <= 1) return region_of;
  if (regions > n) regions = n;

  constexpr std::uint32_t kUnassigned =
      std::numeric_limits<std::uint32_t>::max();
  region_of.assign(n, kUnassigned);

  // Seeds spread evenly over the index space; a single FIFO seeded in region
  // order makes the wavefronts advance in lockstep, so every node joins the
  // seed that reaches it first, ties resolved toward the earlier seed.
  std::vector<graph::NodeIndex> queue;
  queue.reserve(n);
  for (std::size_t r = 0; r < regions; ++r) {
    const auto seed = static_cast<graph::NodeIndex>(r * n / regions);
    if (region_of[seed] != kUnassigned) continue;  // tiny n: seeds collide
    region_of[seed] = static_cast<std::uint32_t>(r);
    queue.push_back(seed);
  }
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const graph::NodeIndex u = queue[head];
    for (const graph::AdjEntry& a : g.adjacency(u)) {
      if (region_of[a.to] != kUnassigned) continue;
      region_of[a.to] = region_of[u];
      queue.push_back(a.to);
    }
  }
  for (std::uint32_t& r : region_of)
    if (r == kUnassigned) r = 0;  // components no seed lives in
  return region_of;
}

std::vector<RegionDensity> region_rejection_density(
    const core::Verdict& verdict, std::span<const std::uint32_t> region_of) {
  const std::vector<bool>& accept = verdict.accept();
  PLS_REQUIRE(region_of.size() == accept.size());
  std::uint32_t max_region = 0;
  for (const std::uint32_t r : region_of) max_region = std::max(max_region, r);

  std::vector<RegionDensity> out(region_of.empty() ? 0 : max_region + 1);
  for (std::size_t r = 0; r < out.size(); ++r)
    out[r].region = static_cast<std::uint32_t>(r);
  for (std::size_t v = 0; v < accept.size(); ++v) {
    RegionDensity& row = out[region_of[v]];
    ++row.nodes;
    if (!accept[v]) ++row.rejections;
  }
  for (RegionDensity& row : out)
    if (row.nodes != 0)
      row.density = static_cast<double>(row.rejections) /
                    static_cast<double>(row.nodes);
  return out;
}

void record_density(MetricsRegistry& registry, const core::Verdict& verdict,
                    std::span<const std::uint32_t> region_of) {
  registry.histogram("density.rejections").record(verdict.rejections());
  registry.histogram("density.fraction_ppm")
      .record(static_cast<std::uint64_t>(verdict.rejection_density() * 1e6));
  if (region_of.empty()) return;
  for (const RegionDensity& row : region_rejection_density(verdict, region_of))
    if (row.nodes != 0)
      registry.histogram("density.region_ppm")
          .record(static_cast<std::uint64_t>(row.density * 1e6));
}

local::Configuration corrupt_random_state(
    const local::Configuration& legal,
    const std::vector<graph::NodeIndex>& nodes, util::Rng& rng) {
  std::vector<local::State> states = legal.states();
  for (const graph::NodeIndex v : nodes)
    states.at(v) = local::random_state(states.at(v).bit_size(), rng);
  return legal.with_states(std::move(states));
}

DensityCurve measure_density_curve(const core::Scheme& scheme,
                                   const local::Configuration& legal,
                                   const sensitivity::Corruptor& corrupt,
                                   std::span<const std::size_t> planted,
                                   util::Rng& rng,
                                   const core::AttackOptions& attack_options) {
  DensityCurve curve;
  curve.scheme = scheme.name();
  curve.n = legal.n();
  curve.points.reserve(planted.size());
  for (std::size_t i = 0; i < planted.size(); ++i) {
    PLS_REQUIRE(i == 0 || planted[i] > planted[i - 1]);
    const sensitivity::SensitivityRow row = sensitivity::measure(
        scheme, legal, corrupt, planted[i], rng, attack_options);
    DensityPoint point;
    point.planted = planted[i];
    point.min_rejections = row.min_rejections;
    point.density = curve.n == 0
                        ? 0.0
                        : static_cast<double>(row.min_rejections) /
                              static_cast<double>(curve.n);
    curve.points.push_back(point);
  }
  curve.monotone = !curve.points.empty();
  for (std::size_t i = 1; i < curve.points.size(); ++i)
    if (curve.points[i].min_rejections < curve.points[i - 1].min_rejections)
      curve.monotone = false;
  curve.error_sensitive =
      curve.monotone && curve.points.size() >= 2 &&
      curve.points.back().min_rejections > curve.points.front().min_rejections;
  return curve;
}

}  // namespace pls::obs
