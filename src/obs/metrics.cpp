#include "obs/metrics.hpp"

#include <chrono>
#include <ostream>

#include "obs/json.hpp"
#include "radius/atlas.hpp"
#include "radius/delta.hpp"
#include "util/assert.hpp"

namespace pls::obs {

namespace {

std::uint64_t steady_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

std::uint64_t HistogramSnapshot::quantile(double q) const noexcept {
  if (count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the order statistic we report: ceil(q * count), clamped to
  // [1, count] (q = 0 still names the smallest recorded value).
  auto rank = static_cast<std::uint64_t>(q * static_cast<double>(count));
  if (static_cast<double>(rank) < q * static_cast<double>(count)) ++rank;
  if (rank == 0) rank = 1;
  if (rank > count) rank = count;
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    seen += buckets[b];
    if (seen >= rank) return Histogram::bucket_upper(b);
  }
  return max;  // unreachable when count == sum of buckets
}

HistogramSnapshot HistogramSnapshot::since(
    const HistogramSnapshot& earlier) const {
  PLS_REQUIRE(buckets.size() == earlier.buckets.size() || earlier.count == 0);
  HistogramSnapshot out;
  out.buckets.assign(buckets.size(), 0);
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    const std::uint64_t before =
        b < earlier.buckets.size() ? earlier.buckets[b] : 0;
    PLS_REQUIRE(buckets[b] >= before);
    out.buckets[b] = buckets[b] - before;
  }
  out.count = count - earlier.count;
  out.sum = sum - earlier.sum;
  // min/max of the phase re-derived from the surviving buckets.
  bool saw = false;
  for (std::size_t b = 0; b < out.buckets.size(); ++b) {
    if (out.buckets[b] == 0) continue;
    if (!saw) out.min = b == 0 ? 0 : Histogram::bucket_upper(b - 1) + 1;
    out.max = Histogram::bucket_upper(b);
    saw = true;
  }
  return out;
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.buckets.resize(kBuckets);
  for (std::size_t b = 0; b < kBuckets; ++b) {
    const std::uint64_t c = counts_[b].load(std::memory_order_relaxed);
    snap.buckets[b] = c;
    snap.count += c;
    if (c != 0) {
      if (snap.count == c)  // first non-empty bucket seen
        snap.min = b == 0 ? 0 : bucket_upper(b - 1) + 1;
      snap.max = bucket_upper(b);
    }
  }
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  util::MutexLock lock(mu_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  counter_storage_.emplace_back();
  Counter* c = &counter_storage_.back();
  counters_.emplace(std::string(name), c);
  return *c;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  util::MutexLock lock(mu_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  histogram_storage_.emplace_back();
  Histogram* h = &histogram_storage_.back();
  histograms_.emplace(std::string(name), h);
  return *h;
}

void MetricsRegistry::set_gauge(std::string_view name, double value) {
  util::MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it != gauges_.end()) {
    it->second = value;
  } else {
    gauges_.emplace(std::string(name), value);
  }
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  util::MutexLock lock(mu_);
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, v] : gauges_) snap.gauges[name] = v;
  for (const auto& [name, h] : histograms_)
    snap.histograms[name] = h->snapshot();
  return snap;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* g = new MetricsRegistry;  // never destroyed
  return *g;
}

MetricsSnapshot MetricsSnapshot::since(const MetricsSnapshot& earlier) const {
  MetricsSnapshot out;
  for (const auto& [name, v] : counters) {
    const auto it = earlier.counters.find(name);
    const std::uint64_t before = it == earlier.counters.end() ? 0 : it->second;
    PLS_REQUIRE(v >= before);
    out.counters[name] = v - before;
  }
  out.gauges = gauges;  // levels, not traffic
  for (const auto& [name, h] : histograms) {
    const auto it = earlier.histograms.find(name);
    out.histograms[name] =
        it == earlier.histograms.end() ? h : h.since(it->second);
  }
  return out;
}

void MetricsSnapshot::write_json(std::ostream& out) const {
  JsonWriter json(out);
  write_json(json);
  PLS_REQUIRE(json.finished());
}

void MetricsSnapshot::write_json(JsonWriter& json) const {
  json.begin_object();
  json.key("counters");
  json.begin_object();
  for (const auto& [name, v] : counters) json.kv(name, v);
  json.end_object();
  json.key("gauges");
  json.begin_object();
  for (const auto& [name, v] : gauges) json.kv(name, v);
  json.end_object();
  json.key("histograms");
  json.begin_object();
  for (const auto& [name, h] : histograms) {
    json.key(name);
    json.begin_object();
    json.kv("count", h.count);
    json.kv("sum", h.sum);
    json.kv("mean", h.mean());
    json.kv("min", h.min);
    json.kv("max", h.max);
    json.kv("p50", h.quantile(0.50));
    json.kv("p90", h.quantile(0.90));
    json.kv("p95", h.quantile(0.95));
    json.kv("p99", h.quantile(0.99));
    json.end_object();
  }
  json.end_object();
  json.end_object();
}

PLS_HOT ScopedTimer::ScopedTimer(Histogram* h) noexcept : h_(h) {
  if (h_ != nullptr) start_ns_ = steady_now_ns();
}

PLS_HOT ScopedTimer::~ScopedTimer() {
  if (h_ != nullptr) h_->record(steady_now_ns() - start_ns_);
}

void absorb(MetricsRegistry& registry, const radius::AtlasStats& stats) {
  registry.set_gauge("atlas.hits", static_cast<double>(stats.hits));
  registry.set_gauge("atlas.misses", static_cast<double>(stats.misses));
  registry.set_gauge("atlas.evictions", static_cast<double>(stats.evictions));
  registry.set_gauge("atlas.bypassed", static_cast<double>(stats.bypassed));
  registry.set_gauge("atlas.sketch_rejects",
                     static_cast<double>(stats.sketch_rejects));
  registry.set_gauge("atlas.bytes_in_use",
                     static_cast<double>(stats.bytes_in_use));
  registry.set_gauge("atlas.peak_bytes",
                     static_cast<double>(stats.peak_bytes));
  registry.set_gauge("atlas.hit_rate", stats.hit_rate());
  // Residency attribution per built radius: which tenants' geometry holds
  // the shared budget (std::map, so export order is stable).
  for (const auto& [t, rb] : stats.by_radius) {
    const std::string suffix = ".r" + std::to_string(t);
    registry.set_gauge("atlas.bytes_in_use" + suffix,
                       static_cast<double>(rb.bytes_in_use));
    registry.set_gauge("atlas.peak_bytes" + suffix,
                       static_cast<double>(rb.peak_bytes));
  }
}

void absorb(MetricsRegistry& registry, const radius::DeltaStats& stats) {
  registry.set_gauge("delta.runs", static_cast<double>(stats.delta_runs));
  registry.set_gauge("delta.empty_runs",
                     static_cast<double>(stats.empty_runs));
  registry.set_gauge("delta.certs_reparsed",
                     static_cast<double>(stats.certs_reparsed));
  registry.set_gauge("delta.links_incremental",
                     static_cast<double>(stats.links_incremental));
  registry.set_gauge("delta.links_full",
                     static_cast<double>(stats.links_full));
  registry.set_gauge("delta.link_reseeds",
                     static_cast<double>(stats.link_reseeds));
  registry.set_gauge("delta.centers_reswept",
                     static_cast<double>(stats.centers_reswept));
  registry.set_gauge("delta.verdicts_carried",
                     static_cast<double>(stats.verdicts_carried));
}

}  // namespace pls::obs
