// Counters and streaming latency histograms — the pipeline's health sheet.
//
// The serving-tier north star quotes p50/p99 latency and sustained
// labelings/sec; the pre-obs code base answered with hand-rolled wall-clock
// totals per bench plus ad-hoc AtlasStats/DeltaStats counters.  This module
// is the uniform replacement: one MetricsRegistry of named counters and
// fixed-log-bucket histograms that the batch verifier feeds per stage, the
// benches snapshot, and one JSON exporter (obs/json.hpp) serializes for the
// CI artifacts.
//
//   * No allocation on the hot path.  A Histogram is a fixed array of
//     relaxed atomics (HdrHistogram-style log buckets: 16 sub-buckets per
//     octave, so any quantile is reported with <= 1/16 relative error);
//     record() is one bit-scan and one fetch_add.  Counter::add is one
//     fetch_add.  Handles are resolved by name once (registry mutex), then
//     held as plain pointers.
//   * Thread-merge determinism.  Buckets are pure counts, so concurrent
//     record() calls commute: any interleaving of the same per-thread value
//     multisets yields the identical histogram (test-asserted).
//   * Snapshot, don't reset.  snapshot() returns a consistent-enough copy
//     (counters monotone, per-bucket atomic); phase accounting is the
//     difference of two snapshots, which — unlike the retired
//     AtlasStats::reset path — cannot tear a phase boundary for concurrent
//     writers.  AtlasStats/DeltaStats remain the pipeline-internal counter
//     structs; absorb() folds them into a registry so every artifact leaves
//     through the same snapshot/export door.
//
// Metric names are dot-separated, stable, and documented in
// docs/metrics-schema.md; _ns-suffixed histograms hold nanoseconds.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace pls::radius {
struct AtlasStats;
struct DeltaStats;
}  // namespace pls::radius

namespace pls::obs {

class JsonWriter;

/// Monotone event counter.  add() is wait-free; value() is a relaxed read
/// (exact once writers quiesce, monotone always).
class Counter {
 public:
  // Per-event leaf (prooflab-lint R1): one relaxed fetch_add, no allocation,
  // no lock.  Relaxed: counts commute; readers see exact totals once writers
  // quiesce (the snapshot contract), monotone values always.
  PLS_HOT void add(std::uint64_t delta = 1) noexcept {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Immutable histogram state at one point in time, with quantile queries.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  ///< smallest recorded value's bucket lower bound
  std::uint64_t max = 0;  ///< largest recorded value's bucket upper bound
  std::vector<std::uint64_t> buckets;  ///< dense copy (index = bucket)

  /// Value at quantile q in [0, 1]: the upper bound of the bucket holding
  /// the ceil(q * count)-th smallest recorded value — within 1/16 relative
  /// error of the exact order statistic.  0 when empty.
  std::uint64_t quantile(double q) const noexcept;

  double mean() const noexcept {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  /// this - earlier, bucket-wise: the traffic of one phase bracketed by two
  /// snapshots.  Requires `earlier` to be a snapshot of the same histogram
  /// taken no later than this one.
  HistogramSnapshot since(const HistogramSnapshot& earlier) const;
};

/// Fixed log-bucket histogram of non-negative 64-bit values.
///
/// Bucketing: values < 16 are exact; larger values share an octave split
/// into 16 sub-buckets, so a bucket's width is at most 1/16 of its lower
/// bound.  1024 buckets cover the full uint64 range.  All state is atomic
/// counts — record() never allocates, blocks, or takes a lock.
class Histogram {
 public:
  static constexpr unsigned kSubBits = 4;  // 16 sub-buckets per octave
  static constexpr std::size_t kSub = std::size_t{1} << kSubBits;
  // Buckets 0..kSub-1 are the exact small values; octave o >= 1 (values with
  // bit_width kSubBits + o) owns kSub buckets starting at o * kSub.  The
  // widest value (bit_width 64) lands in octave 64 - kSubBits, hence +1.
  static constexpr std::size_t kBuckets = (64 - kSubBits + 1) * kSub;

  PLS_HOT static std::size_t bucket_of(std::uint64_t v) noexcept {
    if (v < kSub) return static_cast<std::size_t>(v);
    const unsigned shift =
        static_cast<unsigned>(std::bit_width(v)) - (kSubBits + 1);
    return ((std::size_t{shift} + 1) << kSubBits) +
           static_cast<std::size_t>((v >> shift) - kSub);
  }

  /// Largest value mapping into `bucket` (the snapshot's reported bound).
  static std::uint64_t bucket_upper(std::size_t bucket) noexcept {
    if (bucket < kSub) return bucket;
    const unsigned shift = static_cast<unsigned>(bucket / kSub) - 1;
    const std::uint64_t base = (kSub + bucket % kSub) << shift;
    const std::uint64_t width = std::uint64_t{1} << shift;
    return base + width - 1;
  }

  // Per-event leaf (prooflab-lint R1): bit-scan + two relaxed fetch_adds.
  // Relaxed: bucket counts and the sum are each independently monotone and
  // commute across threads; no cross-field ordering is claimed (snapshot()
  // tolerates mid-record skew, exactness needs quiesced writers).
  PLS_HOT void record(std::uint64_t v) noexcept {
    counts_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  HistogramSnapshot snapshot() const;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> counts_{};
  std::atomic<std::uint64_t> sum_{0};
};

/// One registry entry in a MetricsSnapshot.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Serializes the snapshot as one JSON object (counters/gauges verbatim;
  /// histograms as count/sum/mean/min/max/p50/p90/p95/p99).
  void write_json(std::ostream& out) const;

  /// Same object written through an in-progress writer — benches embed the
  /// snapshot as one member of their own artifact this way.
  void write_json(JsonWriter& json) const;

  /// Member-wise this - earlier for counters and histograms (gauges are
  /// levels, not traffic: the later value wins).  Phase accounting.
  MetricsSnapshot since(const MetricsSnapshot& earlier) const;
};

/// Named counters and histograms with stable handles.
///
/// counter()/histogram() resolve (and lazily create) by name under a mutex;
/// the returned references live as long as the registry and are safe to
/// update from any thread.  Call them once at setup, never per event.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name) PLS_EXCLUDES(mu_);
  Histogram& histogram(std::string_view name) PLS_EXCLUDES(mu_);

  /// Last-write-wins level metric (resident bytes, hit rates...), set at
  /// snapshot/export time — not a hot-path facility.
  void set_gauge(std::string_view name, double value) PLS_EXCLUDES(mu_);

  MetricsSnapshot snapshot() const PLS_EXCLUDES(mu_);

  /// The process-wide default registry (benches and the self-stabilization
  /// harness share it; verifiers take an explicit registry through their
  /// options so tests can isolate).
  static MetricsRegistry& global();

 private:
  mutable util::Mutex mu_;
  // deques: stable addresses across lazy creation — handles returned by
  // counter()/histogram() stay valid without the lock; only the name maps
  // and storage growth are guarded.
  std::deque<Counter> counter_storage_ PLS_GUARDED_BY(mu_);
  std::deque<Histogram> histogram_storage_ PLS_GUARDED_BY(mu_);
  std::map<std::string, Counter*, std::less<>> counters_ PLS_GUARDED_BY(mu_);
  std::map<std::string, Histogram*, std::less<>> histograms_
      PLS_GUARDED_BY(mu_);
  std::map<std::string, double, std::less<>> gauges_ PLS_GUARDED_BY(mu_);
};

/// RAII stage timer: records the scope's wall time into `h`, or does
/// nothing at all — no clock read — when `h` is null (the disabled path).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* h) noexcept;
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* h_;
  std::uint64_t start_ns_ = 0;
};

/// Folds the atlas counter struct into `registry` as `atlas.*` gauges
/// (absorbed structs are point-in-time snapshots, so last-write-wins gauge
/// semantics — not monotone counter adds — is what repeated exports want).
/// Atlas traffic then leaves through the same snapshot/export door as
/// everything else.  Snapshot-time adapter: call once per export, not per
/// lookup.
void absorb(MetricsRegistry& registry, const radius::AtlasStats& stats);

/// Folds the delta-path counter struct into `registry` (`delta.*` gauges).
void absorb(MetricsRegistry& registry, const radius::DeltaStats& stats);

}  // namespace pls::obs
