// Span tracing for the verification pipeline — chrome://tracing exporter.
//
// The staged pipeline (Geometry -> Parse/Link -> Sweep, radius/batch.hpp)
// overlaps stage 2 of labeling i+1 with the pool's sweep of labeling i, and
// fans the sweep out over per-slot worker threads.  Wall-clock totals cannot
// show whether that overlap window actually opens, or whether one sweep slot
// straggles while the rest idle; a span trace can.  TraceRecorder is the
// process-wide span sink:
//
//   * Zero overhead when disabled.  `enabled()` is one relaxed atomic load;
//     a TraceSpan constructed while disabled reads no clock and records
//     nothing.  Defining PROOFLAB_NO_TRACE compiles the PLS_TRACE_SPAN
//     macro away entirely (the compile-time no-op build the CI overhead
//     gate protects; the default build keeps the spans and gates the
//     runtime-disabled cost instead).
//   * Lock-free recording.  Each thread appends to its own fixed-capacity
//     ring buffer (registered once per thread under a mutex, then never
//     shared for writing).  A full ring overwrites its oldest events and
//     counts the overwritten ones (`dropped`), so tracing never allocates
//     or blocks on the hot path.
//   * Merged export.  export_chrome_trace() merges every thread's ring into
//     one chrome://tracing "traceEvents" JSON document (complete "X" events
//     with microsecond timestamps), ordered by start time.  Load it via
//     chrome://tracing or https://ui.perfetto.dev.
//
// Span names must be string literals (the event stores the pointer); the
// optional arg is a small integer rendered into the event's args (the batch
// verifier stamps the labeling index, the sweep its slot).
//
// Enable/disable are meant to bracket a workload from a quiesced state
// (nothing mid-span); spans started in one enabled window and finished in
// another are recorded with whatever timestamps they saw.  Ring storage is
// never freed while the process lives, so a worker thread outliving a
// disable() cannot write into freed memory.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "util/thread_annotations.hpp"

namespace pls::obs {

class TraceRecorder {
 public:
  /// One recorded span.  `name` points at a string literal.
  struct Event {
    const char* name;
    std::uint64_t start_ns;  ///< since the matching enable() call
    std::uint64_t dur_ns;
    std::uint64_t arg;       ///< kNoArg when the span carried none
    std::uint32_t tid;       ///< dense per-thread id (registration order)
  };
  static constexpr std::uint64_t kNoArg = ~std::uint64_t{0};

  /// Starts recording.  `ring_capacity` bounds the events retained per
  /// thread (oldest overwritten beyond it); rings registered before this
  /// call keep their original capacity, so pick the capacity once up front.
  /// Clears previously recorded events.
  static void enable(std::size_t ring_capacity = 1u << 15);

  /// Stops recording (already-recorded events are kept for export).
  static void disable();

  static bool enabled() noexcept;

  /// Records a finished span; called by TraceSpan, not user code.
  static void record(const char* name, std::uint64_t start_ns,
                     std::uint64_t end_ns, std::uint64_t arg);

  /// Monotonic nanoseconds since the last enable().
  static std::uint64_t now_ns() noexcept;

  /// Events overwritten because some ring was full (0 = export is complete).
  static std::uint64_t dropped();

  /// Merged per-thread rings as one chrome://tracing JSON document.
  static void export_chrome_trace(std::ostream& out);

  /// Merged events sorted by start time (the test-facing export).
  static std::vector<Event> events();
};

/// RAII span: times its scope into the recorder.  When the recorder is
/// disabled at construction, the destructor does nothing (and no clock is
/// read).
class TraceSpan {
 public:
  // Span enter/exit are per-event leaves (PLS_HOT): prooflab-lint R1 keeps
  // them allocation- and lock-free, the compile-time half of the "~1 ns
  // disabled, never perturbs verdicts" contract the CI gate measures.
  PLS_HOT explicit TraceSpan(const char* name,
                             std::uint64_t arg = TraceRecorder::kNoArg) {
    if (TraceRecorder::enabled()) {
      name_ = name;
      arg_ = arg;
      start_ns_ = TraceRecorder::now_ns();
    }
  }
  PLS_HOT ~TraceSpan() {
    if (name_ != nullptr)
      TraceRecorder::record(name_, start_ns_, TraceRecorder::now_ns(), arg_);
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
  std::uint64_t arg_ = 0;
};

}  // namespace pls::obs

// Compile-time switch: -DPROOFLAB_NO_TRACE removes every span from the
// binary (PROOFLAB_TRACE=OFF in CMake).  The default build keeps them,
// runtime-gated by TraceRecorder::enable().
#if defined(PROOFLAB_NO_TRACE)
#define PLS_TRACE_SPAN(...) \
  do {                      \
  } while (false)
#else
#define PLS_TRACE_CONCAT_IMPL(a, b) a##b
#define PLS_TRACE_CONCAT(a, b) PLS_TRACE_CONCAT_IMPL(a, b)
#define PLS_TRACE_SPAN(...) \
  ::pls::obs::TraceSpan PLS_TRACE_CONCAT(pls_trace_span_, __LINE__)(__VA_ARGS__)
#endif
