#include "local/config.hpp"

#include <algorithm>

namespace pls::local {

Configuration Configuration::with_state(graph::NodeIndex v, State s) const {
  PLS_REQUIRE(v < n());
  std::vector<State> copy = states_;
  copy[v] = std::move(s);
  return Configuration(graph_, std::move(copy));
}

std::size_t Configuration::hamming_distance(const Configuration& other) const {
  PLS_REQUIRE(n() == other.n());
  std::size_t d = 0;
  for (std::size_t v = 0; v < states_.size(); ++v)
    if (states_[v] != other.states_[v]) ++d;
  return d;
}

std::size_t Configuration::max_state_bits() const noexcept {
  std::size_t best = 0;
  for (const State& s : states_) best = std::max(best, s.bit_size());
  return best;
}

State random_state(std::size_t nbits, util::Rng& rng) {
  util::BitWriter w;
  std::size_t left = nbits;
  while (left >= 64) {
    w.write_uint(rng.bits(), 64);
    left -= 64;
  }
  if (left > 0) w.write_uint(rng.bits(), static_cast<unsigned>(left));
  return State::from_writer(std::move(w));
}

CorruptionResult corrupt_random_states(const Configuration& cfg, std::size_t k,
                                       util::Rng& rng) {
  PLS_REQUIRE(k <= cfg.n());
  auto perm = rng.permutation(cfg.n());
  std::vector<graph::NodeIndex> chosen;
  chosen.reserve(k);
  std::vector<State> states = cfg.states();
  for (std::size_t i = 0; i < k; ++i) {
    const auto v = static_cast<graph::NodeIndex>(perm[i]);
    chosen.push_back(v);
    states[v] = random_state(states[v].bit_size(), rng);
  }
  return CorruptionResult{cfg.with_states(std::move(states)), std::move(chosen)};
}

}  // namespace pls::local
