// Synchronous LOCAL-model execution.
//
// SyncNetwork runs synchronous rounds over a configuration's graph: in each
// round every node reads the states of all its neighbors (the standard
// state-reading model used by self-stabilizing protocols) and computes a new
// state; all updates are applied simultaneously.  The runner accounts for
// message volume (bits crossing each edge per round) so experiments can
// report communication cost.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "local/config.hpp"

namespace pls::local {

struct NeighborState {
  graph::RawId id = 0;
  graph::Weight edge_weight = 1;
  const State* state = nullptr;
};

/// One node's transition: (node's id, old state, neighbor states) -> state.
using StepFn = std::function<State(graph::RawId, const State&,
                                   std::span<const NeighborState>)>;

struct RoundStats {
  std::size_t changed_nodes = 0;
  std::size_t message_bits = 0;  ///< total state bits exchanged this round
};

class SyncNetwork {
 public:
  SyncNetwork(std::shared_ptr<const graph::Graph> g, std::vector<State> init);

  explicit SyncNetwork(const Configuration& cfg)
      : SyncNetwork(cfg.graph_ptr(), cfg.states()) {}

  /// Executes one synchronous round of `step` at every node.
  RoundStats step(const StepFn& step);

  /// Runs until no state changes or `max_rounds` is hit; returns the number
  /// of rounds executed (== max_rounds + 1 if it did not quiesce, so callers
  /// can distinguish convergence from exhaustion).
  std::size_t run_until_quiescent(const StepFn& step, std::size_t max_rounds);

  const graph::Graph& graph() const noexcept { return *graph_; }
  const std::vector<State>& states() const noexcept { return states_; }
  State& mutable_state(graph::NodeIndex v) { return states_.at(v); }

  Configuration configuration() const {
    return Configuration(graph_, states_);
  }

 private:
  std::shared_ptr<const graph::Graph> graph_;
  std::vector<State> states_;
};

}  // namespace pls::local
