// Configurations: a network together with one state per node.
//
// A *configuration* (G, states) is the object distributed languages talk
// about: the graph is the network, the state of a node is its portion of the
// global output being certified (a parent pointer, a leader bit, an
// adjacency list...).  Configurations share their graph via shared_ptr —
// experiments fan a single graph out into many (legal, corrupted, spliced)
// configurations.
#pragma once

#include <memory>
#include <vector>

#include "graph/graph.hpp"
#include "util/bitstring.hpp"
#include "util/rng.hpp"

namespace pls::local {

using State = util::BitString;
using Certificate = util::BitString;

class Configuration {
 public:
  Configuration(std::shared_ptr<const graph::Graph> g,
                std::vector<State> states)
      : graph_(std::move(g)), states_(std::move(states)) {
    PLS_REQUIRE(graph_ != nullptr);
    PLS_REQUIRE(states_.size() == graph_->n());
  }

  const graph::Graph& graph() const noexcept { return *graph_; }
  std::shared_ptr<const graph::Graph> graph_ptr() const noexcept {
    return graph_;
  }

  std::size_t n() const noexcept { return states_.size(); }

  const State& state(graph::NodeIndex v) const { return states_.at(v); }
  const std::vector<State>& states() const noexcept { return states_; }

  /// Functional update: same graph, one state replaced.
  Configuration with_state(graph::NodeIndex v, State s) const;

  /// Functional update: same graph, all states replaced.
  Configuration with_states(std::vector<State> states) const {
    return Configuration(graph_, std::move(states));
  }

  /// Number of nodes whose states differ (Hamming distance between two
  /// configurations over the same graph).
  std::size_t hamming_distance(const Configuration& other) const;

  /// Maximum state size in bits over all nodes.
  std::size_t max_state_bits() const noexcept;

 private:
  std::shared_ptr<const graph::Graph> graph_;
  std::vector<State> states_;
};

/// Overwrites the states of `k` distinct random nodes with uniformly random
/// bit strings of the same length (a crude, language-oblivious corruption;
/// language-aware corruptions live with the sensitivity module).  Returns
/// the corrupted configuration and the chosen node indices.
struct CorruptionResult {
  Configuration config;
  std::vector<graph::NodeIndex> corrupted;
};
CorruptionResult corrupt_random_states(const Configuration& cfg, std::size_t k,
                                       util::Rng& rng);

/// Random bit string of exactly `nbits` bits.
State random_state(std::size_t nbits, util::Rng& rng);

}  // namespace pls::local
