#include "local/network.hpp"

#include "util/assert.hpp"

namespace pls::local {

SyncNetwork::SyncNetwork(std::shared_ptr<const graph::Graph> g,
                         std::vector<State> init)
    : graph_(std::move(g)), states_(std::move(init)) {
  PLS_REQUIRE(graph_ != nullptr);
  PLS_REQUIRE(states_.size() == graph_->n());
}

RoundStats SyncNetwork::step(const StepFn& step) {
  RoundStats stats;
  const graph::Graph& g = *graph_;
  std::vector<State> next(states_.size());
  std::vector<NeighborState> scratch;
  for (graph::NodeIndex v = 0; v < g.n(); ++v) {
    scratch.clear();
    for (const graph::AdjEntry& a : g.adjacency(v)) {
      scratch.push_back(NeighborState{g.id(a.to), g.weight(a.edge),
                                      &states_[a.to]});
      stats.message_bits += states_[a.to].bit_size();
    }
    next[v] = step(g.id(v), states_[v], scratch);
    if (next[v] != states_[v]) ++stats.changed_nodes;
  }
  states_ = std::move(next);
  return stats;
}

std::size_t SyncNetwork::run_until_quiescent(const StepFn& step,
                                             std::size_t max_rounds) {
  for (std::size_t round = 0; round < max_rounds; ++round) {
    const RoundStats stats = this->step(step);
    if (stats.changed_nodes == 0) return round + 1;
  }
  // One more probe round to detect non-quiescence is implicit: caller sees
  // max_rounds + 1 as "did not converge".
  RoundStats probe = this->step(step);
  return probe.changed_nodes == 0 ? max_rounds : max_rounds + 1;
}

}  // namespace pls::local
