// Verifier views: exactly what a node may read during the verification round.
//
// The decoder of a proof labeling scheme runs for a single round.  In the
// strict 2005 model a node sees its own identity, state and certificate plus
// the *certificates* of its neighbors; later formalizations also let the
// round carry neighbor ids and states.  Both are modeled here and every
// scheme declares which visibility it needs — the difference is measurable
// (experiment T6) via the strict adapter.
//
// Edge weights are structural knowledge of the node's ports and are visible
// in both modes (MST needs them; this matches the literature).
//
// The radius-t generalization (a decoder that runs t rounds and reads its
// whole radius-t ball under the same visibility split) builds on these views
// in radius/ball.hpp; VerifierContext is exactly the t = 1 specialization.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "local/config.hpp"

namespace pls::local {

enum class Visibility {
  kCertificatesOnly,  ///< strict KKP: neighbor certificates only
  kExtended,          ///< neighbor ids and states also visible
};

struct NeighborView {
  const Certificate* cert = nullptr;  ///< always visible
  const State* state = nullptr;       ///< kExtended only, else nullptr
  graph::RawId id = 0;                ///< kExtended only, else 0
  bool id_visible = false;
  graph::Weight edge_weight = 1;      ///< structural, always visible
};

class VerifierContext {
 public:
  VerifierContext(graph::RawId id, const State& state, const Certificate& cert,
                  std::span<const NeighborView> neighbors, Visibility mode,
                  std::size_t network_size)
      : id_(id),
        state_(&state),
        cert_(&cert),
        neighbors_(neighbors),
        mode_(mode),
        network_size_(network_size) {}

  graph::RawId id() const noexcept { return id_; }
  const State& state() const noexcept { return *state_; }
  const Certificate& certificate() const noexcept { return *cert_; }
  std::span<const NeighborView> neighbors() const noexcept {
    return neighbors_;
  }
  std::size_t degree() const noexcept { return neighbors_.size(); }
  Visibility mode() const noexcept { return mode_; }

  /// n is common knowledge in the paper's setting (certificate field widths
  /// may depend on it).  Schemes may use it for width computations only.
  std::size_t network_size() const noexcept { return network_size_; }

 private:
  graph::RawId id_;
  const State* state_;
  const Certificate* cert_;
  std::span<const NeighborView> neighbors_;
  Visibility mode_;
  std::size_t network_size_;
};

}  // namespace pls::local
