// Stage 1 of the verification pipeline: the geometry atlas.
//
// Ball geometry (BFS layers + ball-internal CSR) depends only on the graph
// and the radius — never on certificates, states, or visibility — yet the
// pre-atlas engine rebuilt it on every run.  Exactly the workloads the
// tradeoff experiments care about re-verify thousands of labelings against
// ONE topology (the adversary's hill-climb, the large-t sweeps), so geometry
// is the textbook shared artifact: build once, serve every session, thread
// slot, and t value.
//
// GeometryAtlas is a memory-budgeted, LRU-evicting cache of GeometryStore
// blocks:
//
//   * Block granularity.  One entry covers a contiguous run of centers
//     (AtlasOptions::block_centers) built in a single BFS sweep with shared
//     scratch — per-ball entries would drown in map overhead, and sweeps
//     touch centers in index order anyway.
//   * Key = (graph epoch, radius, block index).  The graph epoch
//     (graph::Graph::epoch) is process-unique per built graph, so one atlas
//     safely serves any number of configurations over any number of graphs.
//   * Smaller radii served by prefix.  A radius-t ball embeds every
//     radius-t' < t ball, and the store's layer-partitioned rows make the
//     embedding zero-copy (ball.hpp), so a lookup at radius t is satisfied
//     by any resident block with radius >= t over the same centers.
//   * Budget + LRU + scan resistance.  Resident bytes never exceed the
//     configured budget: a built block is admitted only if it fits (after
//     LRU evictions are allowed), and returned blocks are shared_ptr-pinned
//     — eviction never invalidates a block a sweep still holds, it only
//     stops the atlas from accounting it.  Pure LRU collapses to a 0% hit
//     rate when a cyclic sweep's working set exceeds the budget (every
//     block is evicted moments before its next use), so admission is
//     scan-resistant: once the cache is full, only every
//     `turnover_period`-th non-fitting block displaces LRU victims; the
//     rest are returned un-cached (stats.bypassed).  A cyclic scan then
//     keeps a stable resident subset — hit rate ~ budget / working set
//     instead of zero — while a genuine workload shift (new graph, new
//     radius) still turns the cache over.  turnover_period = 1 is pure
//     LRU; byte_budget = 0 is the degenerate rebuild-every-run atlas (the
//     benchmark baseline).
//   * Concurrency.  Lookups, insertions, and eviction are mutex-serialized
//     (short critical sections); block construction runs outside the lock
//     with in-flight dedup, so parallel sweep slots requesting the same
//     block build it once and everyone else waits on it.
//
// The atlas is deliberately verdict-invisible: it returns geometry equal to
// what a fresh BallBuilder would produce, so every engine stays bit-identical
// at every thread count, budget, and sharing pattern.
#pragma once

#include <cstdint>
#include <exception>
#include <list>
#include <map>
#include <memory>

#include "radius/ball.hpp"
#include "radius/sketch.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace pls::radius {

/// Policy for displacing residents once the cache is full.
enum class Admission : std::uint8_t {
  /// Every turnover_period-th contender displaces LRU victims blindly; the
  /// rest bypass.  Keeps a stable resident subset under cyclic scans, but
  /// which subset survives is arbitrary — popularity-blind.
  kScanResistant,
  /// TinyLFU: a contender displaces LRU victims only if its frequency-
  /// sketch estimate beats each victim's.  On zipf-skewed center
  /// popularity the resident set converges to the hot blocks; losers are
  /// counted in AtlasStats::sketch_rejects and bypass (still pinned for
  /// the caller).  See sketch.hpp.
  kTinyLFU,
};

struct AtlasOptions {
  /// Resident-byte ceiling, never exceeded; 0 caches nothing (every lookup
  /// rebuilds — the benchmark's rebuild baseline).  The default holds the
  /// flagship workload (t = 8 over n = 4096, ~0.4 GB) entirely.
  std::size_t byte_budget = std::size_t{512} << 20;
  /// Centers per block: the build/eviction granule.
  std::uint32_t block_centers = 64;
  /// Scan resistance (kScanResistant only): with the cache full, admit
  /// (displacing LRU victims) only every k-th block that needs room;
  /// 1 = pure LRU.
  std::uint32_t turnover_period = 8;
  /// Full-cache displacement policy.
  Admission admission = Admission::kScanResistant;
  /// kTinyLFU only: sketch records between halvings (aging cadence).
  std::uint64_t sketch_sample_period = 8192;
};

struct AtlasStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;       ///< == blocks built
  std::uint64_t evictions = 0;
  std::uint64_t bypassed = 0;     ///< built but not admitted (either policy)
  std::uint64_t sketch_rejects = 0;  ///< bypasses where TinyLFU said no
  std::size_t bytes_in_use = 0;
  std::size_t peak_bytes = 0;

  /// Residency split by built radius — the attribution gauge for
  /// multi-tenant budget pressure: when tenants at different t share one
  /// atlas, this says whose geometry actually holds the bytes.
  struct RadiusBytes {
    std::size_t bytes_in_use = 0;
    std::size_t peak_bytes = 0;
  };
  std::map<unsigned, RadiusBytes> by_radius;

  double hit_rate() const noexcept {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }

  /// Phase accounting: the traffic between `earlier` and this snapshot.
  /// Replaces the retired reset()/reset_stats() pair — diffing two stats()
  /// snapshots cannot tear a phase boundary for sweeps still running, while
  /// a reset concurrent with traffic silently misattributed it.  The level
  /// fields keep their later values (bytes_in_use is live residency;
  /// peak_bytes stays the lifetime peak, overall and per radius).
  AtlasStats since(const AtlasStats& earlier) const noexcept {
    AtlasStats out = *this;
    out.hits -= earlier.hits;
    out.misses -= earlier.misses;
    out.evictions -= earlier.evictions;
    out.bypassed -= earlier.bypassed;
    out.sketch_rejects -= earlier.sketch_rejects;
    return out;
  }
};

/// One cached block: the geometry of centers [first_center, end_center) of
/// one graph at one built radius.  Immutable after construction.
class GeometryBlock {
 public:
  GeometryBlock(const graph::Graph& g, graph::NodeIndex first_center,
                graph::NodeIndex end_center, unsigned t);

  graph::NodeIndex first_center() const noexcept { return first_; }
  graph::NodeIndex end_center() const noexcept { return end_; }
  unsigned radius() const noexcept { return store_.radius(); }
  std::size_t bytes() const noexcept { return store_.bytes(); }
  bool covers(graph::NodeIndex center) const noexcept {
    return center >= first_ && center < end_;
  }

  /// Geometry of `center`'s ball at serving radius t <= radius().
  GeometryView ball(graph::NodeIndex center, unsigned t) const {
    PLS_REQUIRE(covers(center));
    return store_.view(center - first_, t);
  }

 private:
  graph::NodeIndex first_;
  graph::NodeIndex end_;
  GeometryStore store_;
};

class GeometryAtlas {
 public:
  explicit GeometryAtlas(AtlasOptions options = {});

  /// The resident (or freshly built) block containing `center`'s radius-t
  /// ball for `g`.  The returned pointer pins the block: it stays valid
  /// after eviction for as long as the caller holds it.  Thread-safe.
  std::shared_ptr<const GeometryBlock> block(const graph::Graph& g, unsigned t,
                                             graph::NodeIndex center)
      PLS_EXCLUDES(mu_);

  /// Consistent snapshot of the counters (copied under the lock).  For
  /// phase accounting, diff two snapshots with AtlasStats::since.
  AtlasStats stats() const PLS_EXCLUDES(mu_);

  const AtlasOptions& options() const noexcept { return options_; }

 private:
  struct Key {
    std::uint64_t graph_epoch;
    std::uint32_t block_index;
    unsigned t;
    auto operator<=>(const Key&) const = default;
  };

  /// Shared between the map and any waiters on an in-flight build, so a
  /// finished-but-bypassed block still reaches everyone who waited for it.
  /// A build that THROWS publishes the failure the same way: the builder
  /// stores its exception in `error` before erasing the entry, so every
  /// deduped waiter wakes with the cause in hand instead of stranded on a
  /// slot that will never fill — and the erased entry leaves the key
  /// rebuildable by the next lookup (a transient failure does not poison
  /// the block).
  struct Slot {
    std::shared_ptr<const GeometryBlock> block;  ///< null while building
    std::exception_ptr error;  ///< set iff the build threw; rethrown by waiters
    std::list<Key>::iterator lru;  ///< valid only when resident
  };

  static std::uint64_t key_hash(const Key& key) noexcept;

  void touch_locked(Slot& slot, const Key& key) PLS_REQUIRES(mu_);
  /// Bytes of resident smaller-radius blocks over `key`'s centers — strict
  /// prefixes a new radius-t block would supersede.
  std::size_t reclaimable_prefix_bytes_locked(const Key& key) const
      PLS_REQUIRES(mu_);
  /// Drops those prefix blocks (call only when the superseding block is
  /// being admitted — a bypassed contender must not evict anything).
  void retire_prefixes_locked(const Key& key) PLS_REQUIRES(mu_);
  /// Admission decision: fits (counting reclaimable prefix bytes), or —
  /// every turnover_period-th time the cache is full — displaces LRU
  /// victims (evict_for_locked).  Decision only; no mutation of residency.
  bool admit_locked(std::size_t needed, std::size_t reclaimable)
      PLS_REQUIRES(mu_);
  /// TinyLFU variant: walks would-be LRU victims back to front and admits
  /// only if every victim needed for room has a lower sketch estimate than
  /// the contender (otherwise ++sketch_rejects).  Decision only — the same
  /// victims it approved are what evict_for_locked then pops.
  bool admit_tinylfu_locked(const Key& key, std::size_t needed,
                            std::size_t reclaimable) PLS_REQUIRES(mu_);
  /// Evicts LRU victims until `needed` more bytes fit under the budget.
  void evict_for_locked(std::size_t needed) PLS_REQUIRES(mu_);
  void charge_locked(unsigned t, std::size_t bytes) PLS_REQUIRES(mu_);
  void discharge_locked(unsigned t, std::size_t bytes) PLS_REQUIRES(mu_);

  const AtlasOptions options_;

  mutable util::Mutex mu_;
  util::CondVar built_cv_;  ///< signals: an in-flight build landed
  std::map<Key, std::shared_ptr<Slot>> entries_ PLS_GUARDED_BY(mu_);
  std::list<Key> lru_ PLS_GUARDED_BY(mu_);  ///< front = most recently used
  std::uint32_t denials_since_turnover_ PLS_GUARDED_BY(mu_) = 0;
  FrequencySketch sketch_ PLS_GUARDED_BY(mu_);  ///< kTinyLFU only
  AtlasStats stats_ PLS_GUARDED_BY(mu_);
};

}  // namespace pls::radius
