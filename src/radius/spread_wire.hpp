// Wire formats of spread certificates, shared between the spread schemes
// (the honest markers/decoders) and the splice attack suite (splice.hpp),
// which must be able to parse, tamper with, and re-encode certificates
// bit-exactly.
//
// Global spread (SpreadScheme) layout (parse order):
//   [6 bits: k] [bit_width(k-1) bits: residue j] [varint: suffix bit-length]
//   [suffix bits] [remaining bits: chunk j of X]
//
// Fragment spread (FragmentSpreadScheme) layout adds the region id — the raw
// id of the region's landmark node — between the residue and the suffix
// length, so the parse-once cache carries each node's region:
//   [6 bits: k_r] [bit_width(k_r-1) bits: residue j] [varint: region id]
//   [varint: suffix bit-length] [suffix bits] [remaining: chunk j of X_r]
#pragma once

#include <algorithm>
#include <optional>
#include <span>
#include <vector>

#include "pls/certificate.hpp"
#include "util/bitstring.hpp"

namespace pls::radius::detail {

inline constexpr unsigned kChunkCountField = 6;  // k fits in 6 bits: [1, 63]

/// Bit i of a BitString (stream order: bit i lives in byte i/8, position i%8).
inline bool bit_at(const util::BitString& s, std::size_t i) {
  return (s.data()[i / 8] >> (i % 8)) & 1;
}

/// Length of the longest common prefix of two bit strings.
inline std::size_t lcp_bits(const util::BitString& a, const util::BitString& b) {
  const std::size_t limit = std::min(a.bit_size(), b.bit_size());
  std::size_t i = 0;
  // Whole equal bytes first, then the mismatching byte bit by bit.
  while (i + 8 <= limit && a.data()[i / 8] == b.data()[i / 8]) i += 8;
  while (i < limit && bit_at(a, i) == bit_at(b, i)) ++i;
  return i;
}

/// Encoded size of a varint (8 bits per 7-bit payload group).
inline std::size_t varint_bits(std::uint64_t value) {
  return 8 * ((std::max<unsigned>(util::bit_width_for(value), 1) + 6) / 7);
}

/// Reads exactly `nbits` bits; nullopt when the reader runs dry.
inline std::optional<util::BitString> read_bits(util::BitReader& r,
                                                std::size_t nbits) {
  if (r.remaining() < nbits) return std::nullopt;
  util::BitWriter w;
  std::size_t left = nbits;
  while (left > 0) {
    const unsigned take = static_cast<unsigned>(std::min<std::size_t>(left, 64));
    const auto chunk = r.read_uint(take);
    if (!chunk) return std::nullopt;
    w.write_uint(*chunk, take);
    left -= take;
  }
  return util::BitString::from_writer(std::move(w));
}

/// Bits [from, from+len) of `s` as a fresh bit string.
inline util::BitString slice_bits(const util::BitString& s, std::size_t from,
                                  std::size_t len) {
  PLS_ASSERT(from + len <= s.bit_size());
  util::BitWriter w;
  for (std::size_t i = 0; i < len; ++i) w.write_bit(bit_at(s, from + i));
  return util::BitString::from_writer(std::move(w));
}

/// Number of indices i < total with i % k == j.
inline std::size_t chunk_size(std::size_t total, std::size_t k, std::size_t j) {
  return total > j ? (total - 1 - j) / k + 1 : 0;
}

/// The marker's sharding step, shared by both spread markers and the splice
/// suite: cuts X into k interleaved chunks, bit i of X going to chunk i%k.
/// The exact inverse of reassemble_chunks below.
inline std::vector<util::BitString> shard_chunks(const util::BitString& x,
                                                 std::size_t k) {
  std::vector<util::BitWriter> writers(k);
  for (std::size_t i = 0; i < x.bit_size(); ++i)
    writers[i % k].write_bit(bit_at(x, i));
  std::vector<util::BitString> chunks;
  chunks.reserve(k);
  for (std::size_t j = 0; j < k; ++j)
    chunks.push_back(util::BitString::from_writer(std::move(writers[j])));
  return chunks;
}

/// The verifier's reassembly step, shared by both spread decoders: checks
/// that the k chunk lengths interleave to a consistent total (nullopt
/// otherwise — a splice of chunks from prefixes of different lengths) and
/// stitches the prefix back together, bit i of X being bit i/k of chunk
/// i%k.
inline std::optional<util::BitString> reassemble_chunks(
    std::span<const util::BitString* const> chunks) {
  const std::size_t k = chunks.size();
  std::size_t total = 0;
  for (const util::BitString* c : chunks) total += c->bit_size();
  for (std::size_t j = 0; j < k; ++j)
    if (chunks[j]->bit_size() != chunk_size(total, k, j)) return std::nullopt;
  util::BitWriter w;
  for (std::size_t i = 0; i < total; ++i)
    w.write_bit(bit_at(*chunks[i % k], i / k));
  return util::BitString::from_writer(std::move(w));
}

/// One parsed spread certificate.
struct SpreadWire {
  std::uint64_t k = 0;
  std::uint64_t residue = 0;
  util::BitString suffix;
  util::BitString chunk;
};

inline std::optional<SpreadWire> parse_wire(const local::Certificate& c) {
  util::BitReader r = c.reader();
  SpreadWire p;
  const auto k = r.read_uint(kChunkCountField);
  if (!k || *k == 0) return std::nullopt;
  p.k = *k;
  const auto residue = r.read_uint(util::bit_width_for(p.k - 1));
  if (!residue || *residue >= p.k) return std::nullopt;
  p.residue = *residue;
  const auto suffix_len = r.read_varint();
  if (!suffix_len) return std::nullopt;
  auto suffix = read_bits(r, *suffix_len);
  if (!suffix) return std::nullopt;
  p.suffix = std::move(*suffix);
  auto chunk = read_bits(r, r.remaining());
  PLS_ASSERT(chunk.has_value());
  p.chunk = std::move(*chunk);
  return p;
}

/// Re-encodes a (possibly tampered) parsed certificate in the wire format.
inline local::Certificate encode_wire(const SpreadWire& p) {
  util::BitWriter w;
  w.write_uint(p.k, kChunkCountField);
  w.write_uint(p.residue, util::bit_width_for(p.k - 1));
  w.write_varint(p.suffix.bit_size());
  w.write_bits(p.suffix.bytes(), p.suffix.bit_size());
  w.write_bits(p.chunk.bytes(), p.chunk.bit_size());
  return local::Certificate::from_writer(std::move(w));
}

/// One parsed fragment-spread certificate: the global wire plus the region
/// id naming which region's prefix the chunk belongs to.
struct FragmentWire {
  std::uint64_t k = 0;
  std::uint64_t residue = 0;
  std::uint64_t region = 0;  ///< raw id of the region's landmark node
  util::BitString suffix;
  util::BitString chunk;
};

inline std::optional<FragmentWire> parse_fragment_wire(
    const local::Certificate& c) {
  util::BitReader r = c.reader();
  FragmentWire p;
  const auto k = r.read_uint(kChunkCountField);
  if (!k || *k == 0) return std::nullopt;
  p.k = *k;
  const auto residue = r.read_uint(util::bit_width_for(p.k - 1));
  if (!residue || *residue >= p.k) return std::nullopt;
  p.residue = *residue;
  const auto region = r.read_varint();
  if (!region) return std::nullopt;
  p.region = *region;
  const auto suffix_len = r.read_varint();
  if (!suffix_len) return std::nullopt;
  auto suffix = read_bits(r, *suffix_len);
  if (!suffix) return std::nullopt;
  p.suffix = std::move(*suffix);
  auto chunk = read_bits(r, r.remaining());
  PLS_ASSERT(chunk.has_value());
  p.chunk = std::move(*chunk);
  return p;
}

/// Re-encodes a (possibly tampered) parsed fragment certificate.
inline local::Certificate encode_fragment_wire(const FragmentWire& p) {
  util::BitWriter w;
  w.write_uint(p.k, kChunkCountField);
  w.write_uint(p.residue, util::bit_width_for(p.k - 1));
  w.write_varint(p.region);
  w.write_varint(p.suffix.bit_size());
  w.write_bits(p.suffix.bytes(), p.suffix.bit_size());
  w.write_bits(p.chunk.bytes(), p.chunk.bit_size());
  return local::Certificate::from_writer(std::move(w));
}

}  // namespace pls::radius::detail
