#include "radius/spread.hpp"

#include <algorithm>
#include <optional>
#include <unordered_map>

#include "graph/algorithms.hpp"
#include "util/assert.hpp"

namespace pls::radius {

namespace {

constexpr unsigned kChunkCountField = 6;  // k fits in 6 bits: k in [1, 63]

/// Bit i of a BitString (stream order: bit i lives in byte i/8, position i%8).
bool bit_at(const util::BitString& s, std::size_t i) {
  return (s.bytes()[i / 8] >> (i % 8)) & 1;
}

/// Length of the longest common prefix of two bit strings.
std::size_t lcp_bits(const util::BitString& a, const util::BitString& b) {
  const std::size_t limit = std::min(a.bit_size(), b.bit_size());
  std::size_t i = 0;
  // Whole equal bytes first, then the mismatching byte bit by bit.
  while (i + 8 <= limit && a.bytes()[i / 8] == b.bytes()[i / 8]) i += 8;
  while (i < limit && bit_at(a, i) == bit_at(b, i)) ++i;
  return i;
}

/// Encoded size of a varint (8 bits per 7-bit payload group).
std::size_t varint_bits(std::uint64_t value) {
  return 8 * ((std::max<unsigned>(util::bit_width_for(value), 1) + 6) / 7);
}

/// Reads exactly `nbits` bits; nullopt when the reader runs dry.
std::optional<util::BitString> read_bits(util::BitReader& r,
                                         std::size_t nbits) {
  if (r.remaining() < nbits) return std::nullopt;
  util::BitWriter w;
  std::size_t left = nbits;
  while (left > 0) {
    const unsigned take = static_cast<unsigned>(std::min<std::size_t>(left, 64));
    const auto chunk = r.read_uint(take);
    if (!chunk) return std::nullopt;
    w.write_uint(*chunk, take);
    left -= take;
  }
  return util::BitString::from_writer(std::move(w));
}

/// Bits [from, from+len) of `s` as a fresh bit string.
util::BitString slice(const util::BitString& s, std::size_t from,
                      std::size_t len) {
  PLS_ASSERT(from + len <= s.bit_size());
  util::BitWriter w;
  for (std::size_t i = 0; i < len; ++i) w.write_bit(bit_at(s, from + i));
  return util::BitString::from_writer(std::move(w));
}

/// Number of indices i < total with i % k == j.
std::size_t chunk_size(std::size_t total, std::size_t k, std::size_t j) {
  return total > j ? (total - 1 - j) / k + 1 : 0;
}

struct ParsedSpread {
  std::uint64_t k = 0;
  std::uint64_t residue = 0;
  util::BitString suffix;
  util::BitString chunk;
};

std::optional<ParsedSpread> parse(const local::Certificate& c) {
  util::BitReader r = c.reader();
  ParsedSpread p;
  const auto k = r.read_uint(kChunkCountField);
  if (!k || *k == 0) return std::nullopt;
  p.k = *k;
  const auto residue = r.read_uint(util::bit_width_for(p.k - 1));
  if (!residue || *residue >= p.k) return std::nullopt;
  p.residue = *residue;
  const auto suffix_len = r.read_varint();
  if (!suffix_len) return std::nullopt;
  auto suffix = read_bits(r, *suffix_len);
  if (!suffix) return std::nullopt;
  p.suffix = std::move(*suffix);
  auto chunk = read_bits(r, r.remaining());
  PLS_ASSERT(chunk.has_value());
  p.chunk = std::move(*chunk);
  return p;
}

}  // namespace

SpreadScheme::SpreadScheme(const core::Scheme& base, unsigned t)
    : base_(base), t_(t) {
  PLS_REQUIRE(t >= 1 && t <= 63);
  name_ = "spread(t=" + std::to_string(t) + ")/" + std::string(base.name());
}

core::Labeling SpreadScheme::mark(const local::Configuration& cfg) const {
  const core::Labeling base_lab = base_.mark(cfg);
  const graph::Graph& g = cfg.graph();
  const std::size_t n = g.n();
  PLS_ASSERT(base_lab.size() == n);
  if (n == 0) return {};

  // Longest common prefix X of all base certificates.
  std::size_t prefix_len = base_lab.certs.front().bit_size();
  for (const local::Certificate& c : base_lab.certs)
    prefix_len = std::min(prefix_len, lcp_bits(base_lab.certs.front(), c));

  // Per-component landmark (minimum-id node) and BFS distances from it.
  const graph::Components comps = graph::connected_components(g);
  std::vector<graph::NodeIndex> root(comps.count, graph::kInvalidNode);
  for (graph::NodeIndex v = 0; v < n; ++v) {
    graph::NodeIndex& r = root[comps.comp[v]];
    if (r == graph::kInvalidNode || g.id(v) < g.id(r)) r = v;
  }
  std::vector<std::uint32_t> dist(n, 0);
  std::vector<std::uint32_t> ecc(comps.count, 0);
  for (std::size_t c = 0; c < comps.count; ++c) {
    const graph::BfsResult bfs = graph::bfs(g, root[c]);
    for (graph::NodeIndex v = 0; v < n; ++v) {
      if (comps.comp[v] != c) continue;
      PLS_ASSERT(bfs.dist[v] != graph::BfsResult::kUnreachable);
      dist[v] = bfs.dist[v];
      ecc[c] = std::max(ecc[c], bfs.dist[v]);
    }
  }

  // Chunk count per component, capped so every residue class is inhabited,
  // and the k interleaved chunks of X.
  const util::BitString& exemplar = base_lab.certs.front();
  std::vector<std::size_t> k_of(comps.count);
  // Chunks depend only on k, not on the component; memoize per distinct k.
  std::unordered_map<std::size_t, std::vector<util::BitString>> chunks_by_k;
  for (std::size_t c = 0; c < comps.count; ++c) {
    const std::size_t k =
        std::min<std::size_t>(t_ / 2 + 1, std::size_t{ecc[c]} + 1);
    k_of[c] = k;
    if (chunks_by_k.count(k) != 0) continue;
    std::vector<util::BitWriter> writers(k);
    for (std::size_t i = 0; i < prefix_len; ++i)
      writers[i % k].write_bit(bit_at(exemplar, i));
    std::vector<util::BitString> chunks(k);
    for (std::size_t j = 0; j < k; ++j)
      chunks[j] = util::BitString::from_writer(std::move(writers[j]));
    chunks_by_k.emplace(k, std::move(chunks));
  }

  core::Labeling lab;
  lab.certs.reserve(n);
  for (graph::NodeIndex v = 0; v < n; ++v) {
    const std::size_t c = comps.comp[v];
    const std::size_t k = k_of[c];
    const std::size_t j = dist[v] % k;
    const util::BitString suffix =
        slice(base_lab.certs[v], prefix_len,
              base_lab.certs[v].bit_size() - prefix_len);
    util::BitWriter w;
    w.write_uint(k, kChunkCountField);
    w.write_uint(j, util::bit_width_for(k - 1));
    w.write_varint(suffix.bit_size());
    w.write_bits(suffix.bytes(), suffix.bit_size());
    const util::BitString& chunk = chunks_by_k.at(k)[j];
    w.write_bits(chunk.bytes(), chunk.bit_size());
    lab.certs.push_back(local::Certificate::from_writer(std::move(w)));
  }
  return lab;
}

bool SpreadScheme::verify_ball(const RadiusContext& ctx) const {
  const BallView& ball = ctx.ball();
  const std::span<const BallMember> members = ball.members();

  // Parse every ball certificate; agree on the chunk count.
  std::vector<ParsedSpread> parsed(members.size());
  for (std::size_t i = 0; i < members.size(); ++i) {
    auto p = parse(*members[i].cert);
    if (!p) return false;
    parsed[i] = std::move(*p);
  }
  const std::uint64_t k = parsed.front().k;
  for (const ParsedSpread& p : parsed)
    if (p.k != k) return false;

  // Adjacent residues must be cyclically consecutive (distances from the
  // landmark differ by at most 1 across an edge).
  for (std::uint32_t i = 0; i < members.size(); ++i)
    for (const std::uint32_t nb : ball.neighbors_of(i)) {
      if (nb <= i) continue;
      const std::uint64_t diff =
          (parsed[i].residue + k - parsed[nb].residue) % k;
      if (diff != 0 && diff != 1 && diff != k - 1) return false;
    }

  // Chunk-class agreement and coverage.
  std::vector<const util::BitString*> chunk_of(k, nullptr);
  for (const ParsedSpread& p : parsed) {
    const util::BitString*& slot = chunk_of[p.residue];
    if (slot == nullptr) {
      slot = &p.chunk;
    } else if (*slot != p.chunk) {
      return false;
    }
  }
  for (const util::BitString* chunk : chunk_of)
    if (chunk == nullptr) return false;

  // Reassemble the shared prefix X: bit i of X is bit i/k of chunk i%k, and
  // the chunk lengths must interleave to a consistent total.
  std::size_t prefix_len = 0;
  for (const util::BitString* chunk : chunk_of) prefix_len += chunk->bit_size();
  for (std::size_t j = 0; j < k; ++j)
    if (chunk_of[j]->bit_size() != chunk_size(prefix_len, k, j)) return false;
  util::BitWriter xw;
  for (std::size_t i = 0; i < prefix_len; ++i)
    xw.write_bit(bit_at(*chunk_of[i % k], i / k));
  const util::BitString prefix = util::BitString::from_writer(std::move(xw));

  // Reconstruct the base certificates of the 1-hop neighborhood and run the
  // base decoder on them.
  auto reconstruct = [&](const ParsedSpread& p) {
    util::BitWriter w;
    w.write_bits(prefix.bytes(), prefix.bit_size());
    w.write_bits(p.suffix.bytes(), p.suffix.bit_size());
    return local::Certificate::from_writer(std::move(w));
  };
  const local::Certificate own = reconstruct(parsed.front());
  const std::span<const BallMember> layer1 = ball.layer(1);
  std::vector<local::Certificate> neighbor_certs;
  neighbor_certs.reserve(layer1.size());
  // Members are in BFS order: layer 1 starts at member index 1.
  for (std::size_t i = 0; i < layer1.size(); ++i)
    neighbor_certs.push_back(reconstruct(parsed[1 + i]));

  std::vector<local::NeighborView> views;
  views.reserve(layer1.size());
  for (std::size_t i = 0; i < layer1.size(); ++i) {
    local::NeighborView nv;
    nv.cert = &neighbor_certs[i];
    nv.edge_weight = layer1[i].edge_weight;
    if (ctx.mode() == local::Visibility::kExtended) {
      nv.state = layer1[i].state;
      nv.id = layer1[i].id;
      nv.id_visible = true;
    }
    views.push_back(nv);
  }
  const local::VerifierContext base_ctx(ctx.id(), ctx.state(), own, views,
                                        ctx.mode(), ctx.network_size());
  return base_.verify(base_ctx);
}

std::size_t SpreadScheme::proof_size_bound(std::size_t n,
                                           std::size_t state_bits) const {
  // suffix + chunk never exceed a full base certificate (the chunk is at
  // most the factored prefix, the suffix is the rest), so the spread adds
  // only the header: k, residue, suffix length.
  const std::size_t base = base_.proof_size_bound(n, state_bits);
  return kChunkCountField + util::bit_width_for(62) + varint_bits(base) + base;
}

}  // namespace pls::radius
