#include "radius/spread.hpp"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "graph/algorithms.hpp"
#include "radius/parse_link.hpp"
#include "radius/splice.hpp"
#include "radius/spread_wire.hpp"
#include "util/assert.hpp"

namespace pls::radius {

namespace {

using detail::kChunkCountField;
using detail::SpreadWire;

/// The session's cached parse of one spread certificate.
struct SpreadParsed final : ParsedCert {
  static constexpr std::uint32_t kUnlinked =
      std::numeric_limits<std::uint32_t>::max();

  explicit SpreadParsed(SpreadWire w) : wire(std::move(w)) {}
  SpreadWire wire;
  /// Dense chunk-payload class assigned by link_parses: equal ids iff the
  /// chunks are bit-identical.  kUnlinked outside a session cache.
  std::uint32_t chunk_class = kUnlinked;
};

/// Per-thread scratch for verify_ball: the engine calls it once per center,
/// so reusing these buffers across the O(n) adjacent centers of a sweep
/// removes every per-ball allocation from the hot path.  Thread-local keeps
/// the parallel session race-free without sharing state between slots.
struct VerifyScratch {
  std::vector<const SpreadWire*> parsed;
  std::vector<std::uint32_t> chunk_class;  ///< per member; kUnlinked = none
  std::vector<SpreadWire> local_parses;
  std::vector<std::uint32_t> rep_of;  ///< per residue: first member index
  std::vector<const util::BitString*> chunk_of;
  std::vector<local::Certificate> neighbor_certs;
  std::vector<local::NeighborView> views;
};

constexpr std::uint32_t kNoMember = std::numeric_limits<std::uint32_t>::max();

}  // namespace

SpreadScheme::SpreadScheme(const core::Scheme& base, unsigned t)
    : base_(base), t_(t) {
  PLS_REQUIRE(t >= 1 && t <= 63);
  name_ = "spread(t=" + std::to_string(t) + ")/" + std::string(base.name());
}

std::unique_ptr<ParsedCert> SpreadScheme::parse_cert(
    const local::Certificate& cert) const {
  auto wire = detail::parse_wire(cert);
  if (!wire) return nullptr;
  return std::make_unique<SpreadParsed>(std::move(*wire));
}

void SpreadScheme::link_parses(
    std::span<const std::unique_ptr<ParsedCert>> parsed) const {
  detail::intern_chunk_classes<SpreadParsed>(parsed);
}

std::unique_ptr<LinkState> SpreadScheme::make_link_state() const {
  return std::make_unique<detail::ChunkInternState>();
}

void SpreadScheme::link_parses_stateful(
    LinkState& state,
    std::span<const std::unique_ptr<ParsedCert>> parsed) const {
  detail::intern_chunk_classes_stateful<SpreadParsed>(
      static_cast<detail::ChunkInternState&>(state), parsed);
}

void SpreadScheme::relink_parses(
    LinkState& state, std::span<const std::unique_ptr<ParsedCert>> parsed,
    std::span<const graph::NodeIndex> touched) const {
  detail::relink_chunk_classes<SpreadParsed>(
      static_cast<detail::ChunkInternState&>(state), parsed, touched);
}

std::vector<SchemeAttack> SpreadScheme::adversarial_labelings(
    const local::Configuration& cfg, util::Rng& rng) const {
  std::vector<SchemeAttack> attacks = splice_attacks(*this, cfg, rng);
  for (SchemeAttack& attack : attacks) attack.name = "splice:" + attack.name;
  return attacks;
}

core::Labeling SpreadScheme::mark(const local::Configuration& cfg) const {
  const core::Labeling base_lab = base_.mark(cfg);
  const graph::Graph& g = cfg.graph();
  const std::size_t n = g.n();
  PLS_ASSERT(base_lab.size() == n);
  if (n == 0) return {};

  // Longest common prefix X of all base certificates.
  std::size_t prefix_len = base_lab.certs.front().bit_size();
  for (const local::Certificate& c : base_lab.certs)
    prefix_len = std::min(prefix_len,
                          detail::lcp_bits(base_lab.certs.front(), c));

  // Per-component landmark (minimum-id node) and BFS distances from it.
  const graph::Components comps = graph::connected_components(g);
  std::vector<graph::NodeIndex> root(comps.count, graph::kInvalidNode);
  for (graph::NodeIndex v = 0; v < n; ++v) {
    graph::NodeIndex& r = root[comps.comp[v]];
    if (r == graph::kInvalidNode || g.id(v) < g.id(r)) r = v;
  }
  std::vector<std::uint32_t> dist(n, 0);
  std::vector<std::uint32_t> ecc(comps.count, 0);
  for (std::size_t c = 0; c < comps.count; ++c) {
    const graph::BfsResult bfs = graph::bfs(g, root[c]);
    for (graph::NodeIndex v = 0; v < n; ++v) {
      if (comps.comp[v] != c) continue;
      PLS_ASSERT(bfs.dist[v] != graph::BfsResult::kUnreachable);
      dist[v] = bfs.dist[v];
      ecc[c] = std::max(ecc[c], bfs.dist[v]);
    }
  }

  // Chunk count per component, capped so every residue class is inhabited,
  // and the k interleaved chunks of X.
  const util::BitString prefix =
      detail::slice_bits(base_lab.certs.front(), 0, prefix_len);
  std::vector<std::size_t> k_of(comps.count);
  // Chunks depend only on k, not on the component; memoize per distinct k.
  std::unordered_map<std::size_t, std::vector<util::BitString>> chunks_by_k;
  for (std::size_t c = 0; c < comps.count; ++c) {
    const std::size_t k =
        std::min<std::size_t>(t_ / 2 + 1, std::size_t{ecc[c]} + 1);
    k_of[c] = k;
    if (chunks_by_k.count(k) != 0) continue;
    chunks_by_k.emplace(k, detail::shard_chunks(prefix, k));
  }

  core::Labeling lab;
  lab.certs.reserve(n);
  for (graph::NodeIndex v = 0; v < n; ++v) {
    const std::size_t c = comps.comp[v];
    const std::size_t k = k_of[c];
    const std::size_t j = dist[v] % k;
    SpreadWire wire;
    wire.k = k;
    wire.residue = j;
    wire.suffix = detail::slice_bits(
        base_lab.certs[v], prefix_len,
        base_lab.certs[v].bit_size() - prefix_len);
    wire.chunk = chunks_by_k.at(k)[j];
    lab.certs.push_back(detail::encode_wire(wire));
  }
  return lab;
}

bool SpreadScheme::verify_ball(const RadiusContext& ctx) const {
  const BallView& ball = ctx.ball();
  const std::span<const BallMember> members = ball.members();

  static thread_local VerifyScratch scratch;

  // Certificates of the ball, parsed at most once per node: through the
  // session's shared cache when present, locally otherwise.  The cache path
  // also carries the interned chunk-class ids assigned by link_parses.
  std::vector<const SpreadWire*>& parsed = scratch.parsed;
  std::vector<std::uint32_t>& chunk_class = scratch.chunk_class;
  parsed.assign(members.size(), nullptr);
  chunk_class.assign(members.size(), SpreadParsed::kUnlinked);
  if (ctx.has_parse_cache()) {
    for (std::size_t i = 0; i < members.size(); ++i) {
      const auto* p = static_cast<const SpreadParsed*>(ctx.parsed(members[i].node));
      if (p == nullptr) return false;  // malformed certificate in the ball
      parsed[i] = &p->wire;
      chunk_class[i] = p->chunk_class;
    }
  } else {
    std::vector<SpreadWire>& local_parses = scratch.local_parses;
    local_parses.clear();
    local_parses.reserve(members.size());
    for (std::size_t i = 0; i < members.size(); ++i) {
      auto p = detail::parse_wire(*members[i].cert);
      if (!p) return false;
      local_parses.push_back(std::move(*p));
    }
    for (std::size_t i = 0; i < members.size(); ++i)
      parsed[i] = &local_parses[i];
  }

  // Agree on the chunk count.
  const std::uint64_t k = parsed.front()->k;
  for (const SpreadWire* p : parsed)
    if (p->k != k) return false;

  // Adjacent residues must be cyclically consecutive (distances from the
  // landmark differ by at most 1 across an edge).
  for (std::uint32_t i = 0; i < members.size(); ++i)
    for (const std::uint32_t nb : ball.neighbors_of(i)) {
      if (nb <= i) continue;
      const std::uint64_t diff =
          (parsed[i]->residue + k - parsed[nb]->residue) % k;
      if (diff != 0 && diff != 1 && diff != k - 1) return false;
    }

  // Chunk-class agreement and coverage.  Same-residue chunks must be
  // bit-identical; with a linked cache that is one id comparison per member.
  std::vector<std::uint32_t>& rep_of = scratch.rep_of;
  rep_of.assign(k, kNoMember);
  for (std::size_t i = 0; i < members.size(); ++i) {
    std::uint32_t& rep = rep_of[parsed[i]->residue];
    if (rep == kNoMember) {
      rep = static_cast<std::uint32_t>(i);
      continue;
    }
    // Within one call either every member is linked (cache path) or none is.
    const bool equal = chunk_class[i] != SpreadParsed::kUnlinked
                           ? chunk_class[i] == chunk_class[rep]
                           : parsed[i]->chunk == parsed[rep]->chunk;
    if (!equal) return false;
  }
  for (const std::uint32_t rep : rep_of)
    if (rep == kNoMember) return false;

  // Reassemble the shared prefix X (interleave-length check included).
  std::vector<const util::BitString*>& chunk_of = scratch.chunk_of;
  chunk_of.assign(k, nullptr);
  for (std::size_t j = 0; j < k; ++j) chunk_of[j] = &parsed[rep_of[j]]->chunk;
  const auto prefix = detail::reassemble_chunks(chunk_of);
  if (!prefix) return false;

  // Reconstruct the base certificates of the 1-hop neighborhood and run the
  // base decoder on them.
  auto reconstruct = [&](const SpreadWire& p) {
    util::BitWriter w;
    w.write_bits(prefix->bytes(), prefix->bit_size());
    w.write_bits(p.suffix.bytes(), p.suffix.bit_size());
    return local::Certificate::from_writer(std::move(w));
  };
  const local::Certificate own = reconstruct(*parsed.front());
  const std::span<const BallMember> layer1 = ball.layer(1);
  std::vector<local::Certificate>& neighbor_certs = scratch.neighbor_certs;
  neighbor_certs.clear();
  neighbor_certs.reserve(layer1.size());
  // Members are in BFS order: layer 1 starts at member index 1.
  for (std::size_t i = 0; i < layer1.size(); ++i)
    neighbor_certs.push_back(reconstruct(*parsed[1 + i]));

  std::vector<local::NeighborView>& views = scratch.views;
  views.clear();
  views.reserve(layer1.size());
  for (std::size_t i = 0; i < layer1.size(); ++i) {
    local::NeighborView nv;
    nv.cert = &neighbor_certs[i];
    nv.edge_weight = layer1[i].edge_weight;
    if (ctx.mode() == local::Visibility::kExtended) {
      nv.state = layer1[i].state;
      nv.id = layer1[i].id;
      nv.id_visible = true;
    }
    views.push_back(nv);
  }
  const local::VerifierContext base_ctx(ctx.id(), ctx.state(), own, views,
                                        ctx.mode(), ctx.network_size());
  return base_.verify(base_ctx);
}

std::size_t SpreadScheme::proof_size_bound(std::size_t n,
                                           std::size_t state_bits) const {
  // suffix + chunk never exceed a full base certificate (the chunk is at
  // most the factored prefix, the suffix is the rest), so the spread adds
  // only the header: k, residue, suffix length.  The residue field is
  // bit_width(k-1) wide with k <= t/2 + 1, so its bound is bit_width(t/2) —
  // not the 6-bit worst case of the k field itself.
  const std::size_t base = base_.proof_size_bound(n, state_bits);
  return kChunkCountField + util::bit_width_for(t_ / 2) +
         detail::varint_bits(base) + base;
}

}  // namespace pls::radius
