#include "radius/engine_t.hpp"

#include "radius/session.hpp"
#include "util/assert.hpp"

namespace pls::radius {

bool BallScheme::verify(const local::VerifierContext&) const {
  util::contract_failure(
      "precondition", "BallScheme runs in the radius-t engine (run_verifier_t)",
      __FILE__, __LINE__);
}

std::unique_ptr<ParsedCert> BallScheme::parse_cert(
    const local::Certificate&) const {
  util::contract_failure(
      "precondition", "parse_cert called on a scheme without a cert parser",
      __FILE__, __LINE__);
}

void BallScheme::link_parses(
    std::span<const std::unique_ptr<ParsedCert>>) const {}

std::unique_ptr<LinkState> BallScheme::make_link_state() const {
  return nullptr;  // no incremental link; delta runs fall back to link_parses
}

void BallScheme::link_parses_stateful(
    LinkState&, std::span<const std::unique_ptr<ParsedCert>>) const {
  util::contract_failure(
      "precondition",
      "link_parses_stateful called on a scheme without incremental link",
      __FILE__, __LINE__);
}

void BallScheme::relink_parses(LinkState&,
                               std::span<const std::unique_ptr<ParsedCert>>,
                               std::span<const graph::NodeIndex>) const {
  util::contract_failure(
      "precondition",
      "relink_parses called on a scheme without incremental link",
      __FILE__, __LINE__);
}

std::vector<SchemeAttack> BallScheme::adversarial_labelings(
    const local::Configuration&, util::Rng&) const {
  return {};
}

core::Verdict run_verifier_t(const core::Scheme& scheme,
                             const local::Configuration& cfg,
                             const core::Labeling& labeling, unsigned t) {
  SessionOptions options;
  options.threads = 1;
  // One-shot call: a retaining atlas would materialize the whole graph's
  // geometry (hundreds of MB at large t) for a single labeling with no
  // reuse to amortize it.  A zero-budget atlas keeps the peak at one
  // block — blocks are built, swept, and dropped — with identical
  // verdicts.  Callers verifying many labelings hold a session or a
  // BatchVerifier (and its warm atlas) themselves.
  options.atlas = std::make_shared<GeometryAtlas>(AtlasOptions{0, 64, 1});
  VerificationSession session(scheme, cfg, t, options);
  return session.run(labeling);
}

core::Verdict run_verifier_t_baseline(const core::Scheme& scheme,
                                      const local::Configuration& cfg,
                                      const core::Labeling& labeling,
                                      unsigned t) {
  PLS_REQUIRE(t >= 1);
  PLS_REQUIRE(labeling.size() == cfg.n());
  const auto* ball_scheme = dynamic_cast<const BallScheme*>(&scheme);
  if (ball_scheme != nullptr) PLS_REQUIRE(t >= ball_scheme->radius());

  const graph::Graph& g = cfg.graph();
  std::vector<bool> accept(cfg.n());

  if (ball_scheme == nullptr) {
    // A 1-round decoder reads only layer 1, whatever t is: evaluate it with
    // the shared per-node routine so the verdict matches run_verifier
    // bit-for-bit.
    std::vector<local::NeighborView> scratch;
    for (graph::NodeIndex v = 0; v < g.n(); ++v)
      accept[v] =
          core::detail::verify_one_round_at(scheme, cfg, labeling, v, scratch);
    return core::Verdict(std::move(accept));
  }

  BallBuilder builder;
  for (graph::NodeIndex v = 0; v < g.n(); ++v) {
    const BallView& ball = builder.build(cfg, labeling, v,
                                         ball_scheme->radius(),
                                         scheme.visibility());
    const RadiusContext ctx(ball, g.id(v), cfg.state(v), labeling.certs[v],
                            scheme.visibility(), g.n());
    accept[v] = ball_scheme->verify_ball(ctx);
  }
  return core::Verdict(std::move(accept));
}

bool completeness_holds_t(const core::Scheme& scheme,
                          const local::Configuration& cfg, unsigned t) {
  PLS_REQUIRE(scheme.language().contains(cfg));
  const core::Labeling labeling = scheme.mark(cfg);
  return run_verifier_t(scheme, cfg, labeling, t).all_accept();
}

std::size_t verification_round_bits_t(const core::Scheme& scheme,
                                      const local::Configuration& cfg,
                                      const core::Labeling& labeling,
                                      unsigned t) {
  PLS_REQUIRE(t >= 1);
  PLS_REQUIRE(labeling.size() == cfg.n());
  const graph::Graph& g = cfg.graph();

  // Node u forwards, over its t rounds, the payloads of its radius-(t-1)
  // ball across every incident edge; sum degree-weighted ball payloads.
  // t = 1: the ball is {u} and this is verification_round_bits exactly.
  std::size_t bits = 0;
  if (t == 1) {
    for (graph::NodeIndex u = 0; u < g.n(); ++u)
      bits += g.degree(u) *
              core::detail::node_payload_bits(scheme, cfg, labeling, u);
    return bits;
  }

  BallBuilder builder;
  for (graph::NodeIndex u = 0; u < g.n(); ++u) {
    const BallView& ball =
        builder.build(cfg, labeling, u, t - 1, scheme.visibility());
    std::size_t ball_payload = 0;
    for (const BallMember& m : ball.members())
      ball_payload +=
          core::detail::node_payload_bits(scheme, cfg, labeling, m.node);
    bits += g.degree(u) * ball_payload;
  }
  return bits;
}

}  // namespace pls::radius
