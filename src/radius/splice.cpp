#include "radius/splice.hpp"

#include <optional>
#include <utility>

#include "graph/algorithms.hpp"
#include "radius/spread_wire.hpp"
#include "util/assert.hpp"

namespace pls::radius {

namespace {

using detail::SpreadWire;

/// Region mask: the half of each component nearest a random seed node (by
/// BFS distance), so both regions are connected-ish and the seam is a
/// plausible frontier an adversary would pick.
std::vector<bool> near_region(const graph::Graph& g, util::Rng& rng) {
  const std::size_t n = g.n();
  std::vector<bool> near(n, false);
  if (n == 0) return near;
  const graph::Components comps = graph::connected_components(g);
  std::vector<std::uint32_t> dist(n, 0);
  std::vector<std::uint32_t> max_dist(comps.count, 0);
  const auto seed = static_cast<graph::NodeIndex>(rng.below(n));
  for (std::size_t c = 0; c < comps.count; ++c) {
    const graph::NodeIndex root =
        comps.comp[seed] == c ? seed : [&] {
          for (graph::NodeIndex v = 0; v < n; ++v)
            if (comps.comp[v] == c) return v;
          return graph::kInvalidNode;
        }();
    const graph::BfsResult bfs = graph::bfs(g, root);
    for (graph::NodeIndex v = 0; v < n; ++v) {
      if (comps.comp[v] != c) continue;
      dist[v] = bfs.dist[v];
      max_dist[c] = std::max(max_dist[c], bfs.dist[v]);
    }
  }
  for (graph::NodeIndex v = 0; v < n; ++v)
    near[v] = dist[v] <= max_dist[comps.comp[v]] / 2;
  return near;
}

/// Parses every certificate of a (marker-produced) labeling; the marker's
/// output always parses, so this asserts rather than rejects.
std::vector<SpreadWire> parse_all(const core::Labeling& lab) {
  std::vector<SpreadWire> wires;
  wires.reserve(lab.size());
  for (const local::Certificate& c : lab.certs) {
    auto p = detail::parse_wire(c);
    PLS_ASSERT(p.has_value());
    wires.push_back(std::move(*p));
  }
  return wires;
}

core::Labeling encode_all(const std::vector<SpreadWire>& wires) {
  core::Labeling lab;
  lab.certs.reserve(wires.size());
  for (const SpreadWire& w : wires) lab.certs.push_back(detail::encode_wire(w));
  return lab;
}

}  // namespace

std::vector<SpliceAttack> splice_attacks(const SpreadScheme& scheme,
                                         const local::Configuration& cfg,
                                         util::Rng& rng) {
  const graph::Graph& g = cfg.graph();
  const std::size_t n = g.n();
  std::vector<SpliceAttack> out;
  if (n == 0) return out;

  core::Labeling mark_a;
  core::Labeling mark_b;
  try {
    mark_a = scheme.mark(scheme.language().sample_legal(cfg.graph_ptr(), rng));
    mark_b = scheme.mark(scheme.language().sample_legal(cfg.graph_ptr(), rng));
  } catch (const std::logic_error&) {
    return out;  // language not constructible on this graph
  }

  const std::vector<bool> region = near_region(g, rng);
  const std::vector<SpreadWire> wires_a = parse_all(mark_a);
  const std::vector<SpreadWire> wires_b = parse_all(mark_b);

  // Two regions voting different reassembled prefixes: region A carries
  // instance A's spread certificates verbatim, region B instance B's.
  {
    core::Labeling lab;
    lab.certs.reserve(n);
    for (graph::NodeIndex v = 0; v < n; ++v)
      lab.certs.push_back(region[v] ? mark_a.certs[v] : mark_b.certs[v]);
    out.push_back({"region-prefix", std::move(lab)});
  }

  // Chunks and residues of A, residual suffixes of B: the reassembled prefix
  // is globally consistent but disagrees with the suffixes it is glued to.
  {
    std::vector<SpreadWire> wires = wires_a;
    for (graph::NodeIndex v = 0; v < n; ++v) wires[v].suffix = wires_b[v].suffix;
    out.push_back({"suffix-crossbreed", encode_all(wires)});
  }

  // Rotated residue assignment, regional and global: residues still change
  // by at most one across every edge, but the chunk a node carries belongs
  // to the class it previously claimed — any ball that reassembles across
  // the rotation stitches prefix bits into the wrong positions.
  {
    std::vector<SpreadWire> wires = wires_a;
    for (graph::NodeIndex v = 0; v < n; ++v)
      if (!region[v]) wires[v].residue = (wires[v].residue + 1) % wires[v].k;
    out.push_back({"residue-rotate-region", encode_all(wires)});
  }
  {
    std::vector<SpreadWire> wires = wires_a;
    for (graph::NodeIndex v = 0; v < n; ++v)
      wires[v].residue = (wires[v].residue + 1) % wires[v].k;
    out.push_back({"residue-rotate-global", encode_all(wires)});
  }

  // Chunk payloads of residue classes 0 and 1 swapped everywhere: each class
  // stays internally consistent, but the reassembled prefix is a
  // transposition of the real one.
  {
    std::vector<SpreadWire> wires = wires_a;
    std::optional<util::BitString> class0;
    std::optional<util::BitString> class1;
    for (const SpreadWire& w : wires) {
      if (w.k < 2) continue;
      if (w.residue == 0 && !class0) class0 = w.chunk;
      if (w.residue == 1 && !class1) class1 = w.chunk;
    }
    if (class0 && class1) {
      for (SpreadWire& w : wires) {
        if (w.residue == 0) w.chunk = *class1;
        if (w.residue == 1) w.chunk = *class0;
      }
      out.push_back({"chunk-crosswire", encode_all(wires)});
    }
  }

  return out;
}

}  // namespace pls::radius
