#include "radius/splice.hpp"

#include <algorithm>
#include <optional>
#include <unordered_map>
#include <utility>

#include "graph/algorithms.hpp"
#include "radius/spread_wire.hpp"
#include "util/assert.hpp"

namespace pls::radius {

namespace {

using detail::SpreadWire;

/// Region mask: the half of each component nearest a random seed node (by
/// BFS distance), so both regions are connected-ish and the seam is a
/// plausible frontier an adversary would pick.
std::vector<bool> near_region(const graph::Graph& g, util::Rng& rng) {
  const std::size_t n = g.n();
  std::vector<bool> near(n, false);
  if (n == 0) return near;
  const graph::Components comps = graph::connected_components(g);
  std::vector<std::uint32_t> dist(n, 0);
  std::vector<std::uint32_t> max_dist(comps.count, 0);
  const auto seed = static_cast<graph::NodeIndex>(rng.below(n));
  for (std::size_t c = 0; c < comps.count; ++c) {
    const graph::NodeIndex root =
        comps.comp[seed] == c ? seed : [&] {
          for (graph::NodeIndex v = 0; v < n; ++v)
            if (comps.comp[v] == c) return v;
          return graph::kInvalidNode;
        }();
    const graph::BfsResult bfs = graph::bfs(g, root);
    for (graph::NodeIndex v = 0; v < n; ++v) {
      if (comps.comp[v] != c) continue;
      dist[v] = bfs.dist[v];
      max_dist[c] = std::max(max_dist[c], bfs.dist[v]);
    }
  }
  for (graph::NodeIndex v = 0; v < n; ++v)
    near[v] = dist[v] <= max_dist[comps.comp[v]] / 2;
  return near;
}

/// Parses every certificate of a (marker-produced) labeling; the marker's
/// output always parses, so this asserts rather than rejects.
std::vector<SpreadWire> parse_all(const core::Labeling& lab) {
  std::vector<SpreadWire> wires;
  wires.reserve(lab.size());
  for (const local::Certificate& c : lab.certs) {
    auto p = detail::parse_wire(c);
    PLS_ASSERT(p.has_value());
    wires.push_back(std::move(*p));
  }
  return wires;
}

core::Labeling encode_all(const std::vector<SpreadWire>& wires) {
  core::Labeling lab;
  lab.certs.reserve(wires.size());
  for (const SpreadWire& w : wires) lab.certs.push_back(detail::encode_wire(w));
  return lab;
}

using detail::FragmentWire;

std::vector<FragmentWire> parse_all_fragment(const core::Labeling& lab) {
  std::vector<FragmentWire> wires;
  wires.reserve(lab.size());
  for (const local::Certificate& c : lab.certs) {
    auto p = detail::parse_fragment_wire(c);
    PLS_ASSERT(p.has_value());
    wires.push_back(std::move(*p));
  }
  return wires;
}

core::Labeling encode_all_fragment(const std::vector<FragmentWire>& wires) {
  core::Labeling lab;
  lab.certs.reserve(wires.size());
  for (const FragmentWire& w : wires)
    lab.certs.push_back(detail::encode_fragment_wire(w));
  return lab;
}

/// The representative chunk of every (region, residue) class of an honest
/// fragment marking (all classes are inhabited: k_r <= ecc_r + 1 and BFS
/// layers are contiguous).
std::unordered_map<std::uint64_t, std::vector<util::BitString>>
chunks_by_region(const std::vector<FragmentWire>& wires) {
  std::unordered_map<std::uint64_t, std::vector<util::BitString>> chunks;
  for (const FragmentWire& w : wires) {
    auto& slots = chunks[w.region];
    if (slots.size() < w.k) slots.resize(w.k);
    slots[w.residue] = w.chunk;
  }
  return chunks;
}

/// Reassembles a region's prefix from its per-class chunks through the
/// verifier's own shared routine; the marker's chunks always interleave
/// consistently, so this asserts rather than rejects.
util::BitString reassemble(const std::vector<util::BitString>& chunks) {
  std::vector<const util::BitString*> ptrs;
  ptrs.reserve(chunks.size());
  for (const util::BitString& c : chunks) ptrs.push_back(&c);
  auto prefix = detail::reassemble_chunks(ptrs);
  PLS_ASSERT(prefix.has_value());
  return std::move(*prefix);
}

}  // namespace

std::vector<SpliceAttack> splice_attacks(const SpreadScheme& scheme,
                                         const local::Configuration& cfg,
                                         util::Rng& rng) {
  const graph::Graph& g = cfg.graph();
  const std::size_t n = g.n();
  std::vector<SpliceAttack> out;
  if (n == 0) return out;

  core::Labeling mark_a;
  core::Labeling mark_b;
  try {
    mark_a = scheme.mark(scheme.language().sample_legal(cfg.graph_ptr(), rng));
    mark_b = scheme.mark(scheme.language().sample_legal(cfg.graph_ptr(), rng));
  } catch (const std::logic_error&) {
    return out;  // language not constructible on this graph
  }

  const std::vector<bool> region = near_region(g, rng);
  const std::vector<SpreadWire> wires_a = parse_all(mark_a);
  const std::vector<SpreadWire> wires_b = parse_all(mark_b);

  // Two regions voting different reassembled prefixes: region A carries
  // instance A's spread certificates verbatim, region B instance B's.
  {
    core::Labeling lab;
    lab.certs.reserve(n);
    for (graph::NodeIndex v = 0; v < n; ++v)
      lab.certs.push_back(region[v] ? mark_a.certs[v] : mark_b.certs[v]);
    out.push_back({"region-prefix", std::move(lab)});
  }

  // Chunks and residues of A, residual suffixes of B: the reassembled prefix
  // is globally consistent but disagrees with the suffixes it is glued to.
  {
    std::vector<SpreadWire> wires = wires_a;
    for (graph::NodeIndex v = 0; v < n; ++v) wires[v].suffix = wires_b[v].suffix;
    out.push_back({"suffix-crossbreed", encode_all(wires)});
  }

  // Rotated residue assignment, regional and global: residues still change
  // by at most one across every edge, but the chunk a node carries belongs
  // to the class it previously claimed — any ball that reassembles across
  // the rotation stitches prefix bits into the wrong positions.
  {
    std::vector<SpreadWire> wires = wires_a;
    for (graph::NodeIndex v = 0; v < n; ++v)
      if (!region[v]) wires[v].residue = (wires[v].residue + 1) % wires[v].k;
    out.push_back({"residue-rotate-region", encode_all(wires)});
  }
  {
    std::vector<SpreadWire> wires = wires_a;
    for (graph::NodeIndex v = 0; v < n; ++v)
      wires[v].residue = (wires[v].residue + 1) % wires[v].k;
    out.push_back({"residue-rotate-global", encode_all(wires)});
  }

  // Chunk payloads of residue classes 0 and 1 swapped everywhere: each class
  // stays internally consistent, but the reassembled prefix is a
  // transposition of the real one.
  {
    std::vector<SpreadWire> wires = wires_a;
    std::optional<util::BitString> class0;
    std::optional<util::BitString> class1;
    for (const SpreadWire& w : wires) {
      if (w.k < 2) continue;
      if (w.residue == 0 && !class0) class0 = w.chunk;
      if (w.residue == 1 && !class1) class1 = w.chunk;
    }
    if (class0 && class1) {
      for (SpreadWire& w : wires) {
        if (w.residue == 0) w.chunk = *class1;
        if (w.residue == 1) w.chunk = *class0;
      }
      out.push_back({"chunk-crosswire", encode_all(wires)});
    }
  }

  return out;
}

std::vector<SpliceAttack> fragment_splice_attacks(
    const FragmentSpreadScheme& scheme, const local::Configuration& cfg,
    util::Rng& rng) {
  const graph::Graph& g = cfg.graph();
  const std::size_t n = g.n();
  std::vector<SpliceAttack> out;
  if (n == 0) return out;

  core::Labeling mark_a;
  core::Labeling mark_b;
  try {
    mark_a = scheme.mark(scheme.language().sample_legal(cfg.graph_ptr(), rng));
    mark_b = scheme.mark(scheme.language().sample_legal(cfg.graph_ptr(), rng));
  } catch (const std::logic_error&) {
    return out;  // language not constructible on this graph
  }

  const std::vector<bool> region_mask = near_region(g, rng);
  const std::vector<FragmentWire> wires_a = parse_all_fragment(mark_a);
  const std::vector<FragmentWire> wires_b = parse_all_fragment(mark_b);

  // The global splice attacks re-mounted on the fragment wire.
  {
    core::Labeling lab;
    lab.certs.reserve(n);
    for (graph::NodeIndex v = 0; v < n; ++v)
      lab.certs.push_back(region_mask[v] ? mark_a.certs[v] : mark_b.certs[v]);
    out.push_back({"fragment-region-prefix", std::move(lab)});
  }
  {
    std::vector<FragmentWire> wires = wires_a;
    for (graph::NodeIndex v = 0; v < n; ++v)
      wires[v].suffix = wires_b[v].suffix;
    out.push_back({"fragment-suffix-crossbreed", encode_all_fragment(wires)});
  }
  {
    std::vector<FragmentWire> wires = wires_a;
    for (graph::NodeIndex v = 0; v < n; ++v)
      wires[v].residue = (wires[v].residue + 1) % wires[v].k;
    out.push_back({"fragment-residue-rotate", encode_all_fragment(wires)});
  }

  // Cross-region variants, whenever the honest marking has >= 2 regions.
  std::vector<std::uint64_t> regions;
  for (const FragmentWire& w : wires_a) regions.push_back(w.region);
  std::sort(regions.begin(), regions.end());
  regions.erase(std::unique(regions.begin(), regions.end()), regions.end());
  if (regions.size() < 2) return out;

  // Every region claims the cyclically-next region's name.  The partition
  // is untouched, but the region holding the globally minimal id now claims
  // a name larger than that id — the landmark binding must catch it.
  {
    std::unordered_map<std::uint64_t, std::uint64_t> next;
    for (std::size_t i = 0; i < regions.size(); ++i)
      next[regions[i]] = regions[(i + 1) % regions.size()];
    std::vector<FragmentWire> wires = wires_a;
    for (FragmentWire& w : wires) w.region = next.at(w.region);
    out.push_back({"region-id-rotate", encode_all_fragment(wires)});
  }

  const auto chunks = chunks_by_region(wires_a);

  // Two regions swap chunk payloads class-by-class: each stays internally
  // consistent while reassembling (a shard of) the other's prefix.  Prefer
  // an adjacent pair with equal factor — the hardest-to-detect crossing.
  {
    std::uint64_t r1 = regions[0];
    std::uint64_t r2 = regions[1];
    for (graph::EdgeIndex e = 0; e < g.m(); ++e) {
      const graph::Edge& ed = g.edge(e);
      const FragmentWire& wu = wires_a[ed.u];
      const FragmentWire& wv = wires_a[ed.v];
      if (wu.region != wv.region && wu.k == wv.k) {
        r1 = wu.region;
        r2 = wv.region;
        break;
      }
    }
    const auto& c1 = chunks.at(r1);
    const auto& c2 = chunks.at(r2);
    std::vector<FragmentWire> wires = wires_a;
    for (FragmentWire& w : wires) {
      if (w.region == r1 && w.residue < c2.size()) w.chunk = c2[w.residue];
      if (w.region == r2 && w.residue < c1.size()) w.chunk = c1[w.residue];
    }
    out.push_back({"fragment-chunk-crosswire", encode_all_fragment(wires)});
  }

  // A neighboring region's fully reassembled prefix, re-sharded with the
  // victim region's own factor and planted on its nodes: a *valid* prefix
  // glued onto foreign suffixes.
  {
    std::uint64_t victim = regions[0];
    std::uint64_t donor = regions[1];
    for (graph::EdgeIndex e = 0; e < g.m(); ++e) {
      const graph::Edge& ed = g.edge(e);
      if (wires_a[ed.u].region != wires_a[ed.v].region) {
        victim = wires_a[ed.u].region;
        donor = wires_a[ed.v].region;
        break;
      }
    }
    const util::BitString donor_prefix = reassemble(chunks.at(donor));
    const std::vector<util::BitString> planted =
        detail::shard_chunks(donor_prefix, chunks.at(victim).size());
    std::vector<FragmentWire> wires = wires_a;
    for (FragmentWire& w : wires)
      if (w.region == victim) w.chunk = planted[w.residue];
    out.push_back({"region-prefix-splice", encode_all_fragment(wires)});
  }

  return out;
}

}  // namespace pls::radius
