// Splice attacks on certificate spreading.
//
// SpreadScheme's soundness story has one structurally novel obligation the
// generic adversary strategies don't probe: the reassembled shared prefix
// must be *consistent across overlapping balls*.  The error-sensitivity
// literature (Feuilloley–Fraigniaud) frames exactly this failure mode:
// adversarial certificates that are locally well-formed everywhere but
// splice two incompatible global claims together.  This module builds such
// labelings deliberately:
//
//   * region-prefix:     two graph regions carry the spread markings of two
//                        different legal instances — two regions voting
//                        different reassembled prefixes;
//   * suffix-crossbreed: chunks/residues of one legal marking, residual
//                        suffixes of another;
//   * residue-rotate     (regional and global): every certificate keeps its
//                        chunk but claims the cyclically-next residue class,
//                        so balls reassemble a rotated — wrong — prefix
//                        while residues still look like BFS distances;
//   * chunk-crosswire:   the payloads of two residue classes are swapped
//                        globally, a transposition of the prefix bits that
//                        is internally consistent per class.
//
// The fragment spread (fragment_spread.hpp) adds a region decomposition, and
// with it region-crossing failure modes of its own:
//
//   * fragment-region-prefix / fragment-suffix-crossbreed /
//     fragment-residue-rotate: the global attacks re-mounted on the
//     fragment wire;
//   * region-id-rotate:  every region claims the next region's name — the
//                        partition is untouched, but a region is named by
//                        its minimum-id member, so the region holding the
//                        globally minimal id now claims a name above it;
//   * fragment-chunk-crosswire: two regions swap their chunk payloads
//                        class-by-class, each region staying internally
//                        consistent while reassembling the other's prefix;
//   * region-prefix-splice: one region's fully reassembled prefix is
//                        re-sharded with a neighboring region's factor and
//                        planted on that region's nodes, gluing a valid
//                        prefix onto foreign suffixes.
//
// Every attack is a labeling the t-round engine must reject somewhere when
// the configuration is illegal; the adversary suite (pls/adversary.hpp)
// feeds them through `attack` automatically for spread schemes.
#pragma once

#include <string>
#include <vector>

#include "radius/fragment_spread.hpp"
#include "radius/spread.hpp"
#include "util/rng.hpp"

namespace pls::radius {

/// Splice attacks are the spread scheme's SchemeAttack suite (the adversary
/// mounts them through BallScheme::adversarial_labelings).
using SpliceAttack = SchemeAttack;

/// Builds the splice-attack labelings for `scheme` on cfg's graph.  Returns
/// an empty vector when the base language is not constructible there (no
/// legal instance to splice from).
std::vector<SpliceAttack> splice_attacks(const SpreadScheme& scheme,
                                         const local::Configuration& cfg,
                                         util::Rng& rng);

/// The fragment-spread suite: the global attacks on the fragment wire plus
/// the cross-region attacks (region-id rotation, crossed fragment chunk
/// payloads, a neighbor region's prefix spliced in).  The region-crossing
/// variants appear whenever the honest marking has at least two regions.
std::vector<SpliceAttack> fragment_splice_attacks(
    const FragmentSpreadScheme& scheme, const local::Configuration& cfg,
    util::Rng& rng);

}  // namespace pls::radius
