// Radius-t verifier views: what a node learns in t verification rounds.
//
// A t-round verifier at node v sees its *ball* of radius t — every node at
// hop distance <= t, with that node's certificate always visible and its
// state/id additionally visible under Extended visibility (the same split as
// the 1-round views in local/views.hpp).  The ball's topology (who is at
// which distance, which ball members are adjacent) is structural knowledge in
// both modes, matching how ports are treated in the 1-round model and how
// t-PLS formalizations define the view.  Of the edge weights, only each
// member's BFS-tree entry edge is carried (BallMember::edge_weight — enough
// for the layer-1 bridge); a weighted radius-t scheme that compares
// arbitrary intra-ball weights would need them added to the adjacency CSR.
//
// BallBuilder materializes balls by BFS over the configuration graph.  The
// BFS and the ball-internal adjacency CSR are produced in one merged pass —
// by the time a member is scanned, every in-ball neighbor already has (or
// receives right then) its member slot, so each ball edge is touched exactly
// once.  Scratch state (epoch-stamped visited marks, member arrays, CSR
// buffers) persists across build() calls: a session sweeping adjacent
// centers reuses the same allocations and epoch marks instead of rebuilding
// the scratch from scratch, so an engine sweeping all n centers allocates
// O(n) once instead of per ball.  The returned BallView references that
// scratch and is invalidated by the next build() call.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "local/views.hpp"
#include "pls/certificate.hpp"

namespace pls::radius {

struct BallMember {
  graph::NodeIndex node = graph::kInvalidNode;  ///< dense simulation index
  std::uint32_t dist = 0;                       ///< hops from the center
  const local::Certificate* cert = nullptr;     ///< always visible
  const local::State* state = nullptr;          ///< Extended only
  graph::RawId id = 0;                          ///< Extended only
  bool id_visible = false;
  /// Weight of the BFS tree edge through which the member was first reached
  /// (1 for the center).  For layer-1 members this is the weight of the edge
  /// to the center, matching the 1-round NeighborView.
  graph::Weight edge_weight = 1;
};

class BallView {
 public:
  /// Members in BFS order: the center first, then layer 1 in the center's
  /// adjacency order, then layer 2, ...  The layer-1 ordering is what makes
  /// the 1-round bridge bit-for-bit identical to the 1-round engine.
  std::span<const BallMember> members() const noexcept { return members_; }

  std::size_t size() const noexcept { return members_.size(); }

  /// The requested radius t (layers beyond the component may be empty).
  unsigned radius() const noexcept { return radius_; }

  /// Members at hop distance exactly r, r in [0, radius()].
  std::span<const BallMember> layer(unsigned r) const {
    PLS_REQUIRE(r < layer_offsets_.size() - 1);
    return std::span<const BallMember>(members_).subspan(
        layer_offsets_[r], layer_offsets_[r + 1] - layer_offsets_[r]);
  }

  /// Ball-internal adjacency: indices (into members()) of the ball members
  /// adjacent to members()[member_index].
  std::span<const std::uint32_t> neighbors_of(std::uint32_t member_index) const {
    PLS_REQUIRE(member_index < members_.size());
    return std::span<const std::uint32_t>(adj_)
        .subspan(adj_offsets_[member_index],
                 adj_offsets_[member_index + 1] - adj_offsets_[member_index]);
  }

  /// True when the ball is the center's entire connected component, i.e.
  /// t >= the center's eccentricity (always detected, even when t exceeds
  /// the component's diameter).
  bool whole_component() const noexcept { return whole_component_; }

 private:
  friend class BallBuilder;
  std::vector<BallMember> members_;
  std::vector<std::uint32_t> layer_offsets_;  // size radius_+2
  std::vector<std::uint32_t> adj_offsets_;    // size members_.size()+1
  std::vector<std::uint32_t> adj_;
  unsigned radius_ = 0;
  bool whole_component_ = false;
};

class BallBuilder {
 public:
  /// Materializes the radius-t ball around `center`.  Requires t >= 1 (a
  /// verifier always runs at least one round; t = 0 is invalid input).  The
  /// returned view aliases builder-internal storage: it is valid until the
  /// next build() call on this builder.
  const BallView& build(const local::Configuration& cfg,
                        const core::Labeling& labeling,
                        graph::NodeIndex center, unsigned t,
                        local::Visibility mode);

  /// Test hook: forces the epoch counter so the wraparound reset is
  /// exercisable without 2^32 builds.  Not for production use.
  void set_epoch_for_testing(std::uint32_t epoch) noexcept { epoch_ = epoch; }

 private:
  BallView ball_;
  std::vector<std::uint32_t> visit_epoch_;  // per node: epoch of last visit
  std::vector<std::uint32_t> slot_;         // per node: member index this epoch
  std::uint32_t epoch_ = 0;
};

/// Base class for scheme-defined parsed certificates (the parse-once cache of
/// VerificationSession).  A BallScheme that overrides parse_cert returns its
/// own subclass; the session parses each node's certificate exactly once and
/// hands the per-node results to every verify_ball call through
/// RadiusContext::parsed.
class ParsedCert {
 public:
  virtual ~ParsedCert() = default;

 protected:
  ParsedCert() = default;
};

/// The full verifier input for one t-round evaluation: the center's own data
/// plus its ball.  The mirror of local::VerifierContext one level up.
class RadiusContext {
 public:
  RadiusContext(const BallView& ball, graph::RawId center_id,
                const local::State& center_state,
                const local::Certificate& center_cert, local::Visibility mode,
                std::size_t network_size,
                std::span<const ParsedCert* const> parsed_by_node = {})
      : ball_(&ball),
        id_(center_id),
        state_(&center_state),
        cert_(&center_cert),
        mode_(mode),
        network_size_(network_size),
        parsed_(parsed_by_node) {}

  const BallView& ball() const noexcept { return *ball_; }

  /// A node always knows its own identity, whatever the visibility mode.
  graph::RawId id() const noexcept { return id_; }
  const local::State& state() const noexcept { return *state_; }
  const local::Certificate& certificate() const noexcept { return *cert_; }
  local::Visibility mode() const noexcept { return mode_; }
  std::size_t network_size() const noexcept { return network_size_; }

  /// Parse-once cache (VerificationSession): true when every node's
  /// certificate was pre-parsed by the scheme's parse_cert hook.
  bool has_parse_cache() const noexcept { return !parsed_.empty(); }

  /// The cached parse of node v's certificate; nullptr means parse_cert
  /// rejected it as malformed (the scheme decides what that implies for the
  /// ball's verdict).  Requires has_parse_cache().
  const ParsedCert* parsed(graph::NodeIndex v) const {
    PLS_REQUIRE(v < parsed_.size());
    return parsed_[v];
  }

 private:
  const BallView* ball_;
  graph::RawId id_;
  const local::State* state_;
  const local::Certificate* cert_;
  local::Visibility mode_;
  std::size_t network_size_;
  std::span<const ParsedCert* const> parsed_;
};

}  // namespace pls::radius
