// Radius-t verifier views: what a node learns in t verification rounds.
//
// A t-round verifier at node v sees its *ball* of radius t — every node at
// hop distance <= t, with that node's certificate always visible and its
// state/id additionally visible under Extended visibility (the same split as
// the 1-round views in local/views.hpp).  The ball's topology (who is at
// which distance, which ball members are adjacent) is structural knowledge in
// both modes, matching how ports are treated in the 1-round model and how
// t-PLS formalizations define the view.  Of the edge weights, only each
// member's BFS-tree entry edge is carried (BallMember::edge_weight — enough
// for the layer-1 bridge); a weighted radius-t scheme that compares
// arbitrary intra-ball weights would need them added to the adjacency CSR.
//
// The representation is split along the staged verification pipeline:
//
//   Stage 1 — GEOMETRY.  GeometryStore holds the labeling-independent part
//   of a run of balls (member nodes, BFS layers, entry-edge weights, the
//   ball-internal adjacency CSR, the whole-component flag), built once per
//   (graph, t, center) by the shared layered-BFS core (graph/bfs_core.hpp)
//   and immutable afterwards.  Adjacency rows are *layer-partitioned*: the
//   entries of a layer-r member's row that point at layers <= r come first,
//   the layer-(r+1) entries after (GeometryView::row_mid).  That makes a
//   radius-t store serve every radius t' < t zero-copy — the t'-ball's
//   members are a prefix of the t-ball's, full rows stay full, and the
//   boundary layer's rows are cut at the partition point.  GeometryStore is
//   what the memory-budgeted GeometryAtlas (radius/atlas.hpp) caches and
//   shares across sessions, thread-pool slots, and t values.
//
//   Stage 3 — BINDING.  BallView is the per-(labeling, center) object the
//   decoders read: BallView::bind points an immutable GeometryView at one
//   configuration + labeling, filling in certificate/state/id pointers
//   without re-running any BFS.  The bound view aliases both the geometry
//   and its own member scratch; it is invalidated by the next bind.
//
// BallBuilder composes the two for callers outside the staged pipeline (the
// reference engine, tests): build() = build one center's geometry into
// private scratch + bind.  Scratch (epoch-stamped visited marks, member
// arrays, CSR buffers) persists across build() calls, so an engine sweeping
// adjacent centers allocates O(n) once instead of per ball.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/bfs_core.hpp"
#include "local/views.hpp"
#include "pls/certificate.hpp"

namespace pls::radius {

/// The labeling-independent record of one ball member.
struct GeomMember {
  graph::NodeIndex node = graph::kInvalidNode;  ///< dense simulation index
  std::uint32_t dist = 0;                       ///< hops from the center
  /// Weight of the BFS tree edge through which the member was first reached
  /// (1 for the center).
  graph::Weight edge_weight = 1;
};

/// A zero-copy window onto one center's geometry at a serving radius
/// <= the built radius.  Plain spans into GeometryStore (or BallBuilder)
/// storage; valid for as long as that storage is.
struct GeometryView {
  std::span<const GeomMember> members;        ///< BFS order, center first
  std::span<const std::uint32_t> layers;      ///< radius+2 offsets
  std::span<const std::uint32_t> row_begin;   ///< per member, +1 sentinel
  std::span<const std::uint32_t> row_mid;     ///< per member: <=r | r+1 split
  std::span<const std::uint32_t> adj;         ///< member-local slot ids
  unsigned radius = 0;
  bool whole_component = false;

  /// Ball-internal neighbors of members[i] (indices into members).  A
  /// boundary-layer row is cut at the partition point: its layer-(r+1)
  /// entries exist only past the serving radius.
  std::span<const std::uint32_t> neighbors_of(std::uint32_t i) const {
    const std::uint32_t begin = row_begin[i];
    const std::uint32_t end =
        members[i].dist == radius ? row_mid[i] : row_begin[i + 1];
    return adj.subspan(begin, end - begin);
  }
};

/// Immutable geometry for a run of centers over one (graph, t) — built
/// center by center through the shared layered-BFS core, then read-shared.
/// This is the single source of truth for ball geometry: BallBuilder, the
/// atlas, and the staged sweep all construct balls through it.
class GeometryStore {
 public:
  /// Discards all centers, keeping buffer capacity (scratch reuse).
  void clear();

  /// Builds and appends the radius-t ball geometry around `center`.
  /// Every center of one store must share the graph and t; requires t >= 1.
  /// `scratch`/`frontier` are the caller's reusable BFS scratch.
  void build_center(const graph::Graph& g, graph::NodeIndex center,
                    unsigned t, graph::VisitEpochSet& scratch,
                    std::vector<graph::NodeIndex>& frontier);

  std::size_t center_count() const noexcept { return centers_.size(); }
  unsigned radius() const noexcept { return t_; }

  /// The i-th built center's geometry at serving radius t' in [1, radius()].
  /// Serving below the built radius is the prefix view described above.
  GeometryView view(std::size_t i, unsigned serve_t) const;

  /// Resident bytes (the atlas's budget accounting unit).
  std::size_t bytes() const noexcept;

  /// Drops slack capacity after the final build_center (cached stores).
  void shrink_to_fit();

 private:
  friend struct GeometryBuildVisitor;

  struct CenterMeta {
    std::uint32_t member_begin = 0;  // into members_
    std::uint32_t layer_begin = 0;   // into layers_ (t+2 entries)
    std::uint32_t row_begin = 0;     // into row_begin_/row_mid_ (count+1)
    std::uint32_t adj_begin = 0;     // into adj_
    bool whole_component = true;
  };

  std::vector<GeomMember> members_;
  std::vector<std::uint32_t> layers_;
  std::vector<std::uint32_t> row_begin_;
  std::vector<std::uint32_t> row_mid_;
  std::vector<std::uint32_t> adj_;
  std::vector<CenterMeta> centers_;
  unsigned t_ = 0;
};

struct BallMember {
  graph::NodeIndex node = graph::kInvalidNode;  ///< dense simulation index
  std::uint32_t dist = 0;                       ///< hops from the center
  const local::Certificate* cert = nullptr;     ///< always visible
  const local::State* state = nullptr;          ///< Extended only
  graph::RawId id = 0;                          ///< Extended only
  bool id_visible = false;
  /// Weight of the BFS tree edge through which the member was first reached
  /// (1 for the center).  For layer-1 members this is the weight of the edge
  /// to the center, matching the 1-round NeighborView.
  graph::Weight edge_weight = 1;
};

class BallView {
 public:
  /// Members in BFS order: the center first, then layer 1 in the center's
  /// adjacency order, then layer 2, ...  The layer-1 ordering is what makes
  /// the 1-round bridge bit-for-bit identical to the 1-round engine.
  std::span<const BallMember> members() const noexcept { return members_; }

  std::size_t size() const noexcept { return members_.size(); }

  /// The requested radius t (layers beyond the component may be empty).
  unsigned radius() const noexcept { return radius_; }

  /// Members at hop distance exactly r, r in [0, radius()].
  std::span<const BallMember> layer(unsigned r) const {
    PLS_REQUIRE(r < layers_.size() - 1);
    return std::span<const BallMember>(members_).subspan(
        layers_[r], layers_[r + 1] - layers_[r]);
  }

  /// Ball-internal adjacency: indices (into members()) of the ball members
  /// adjacent to members()[member_index].
  std::span<const std::uint32_t> neighbors_of(std::uint32_t member_index) const {
    PLS_REQUIRE(member_index < members_.size());
    const std::uint32_t begin = row_begin_[member_index];
    const std::uint32_t end = members_[member_index].dist == radius_
                                  ? row_mid_[member_index]
                                  : row_begin_[member_index + 1];
    return adj_.subspan(begin, end - begin);
  }

  /// True when the ball is the center's entire connected component, i.e.
  /// t >= the center's eccentricity (always detected, even when t exceeds
  /// the component's diameter).
  bool whole_component() const noexcept { return whole_component_; }

  /// Stage-3 entry point: points this view at `geom` under (cfg, labeling),
  /// filling per-member certificate/state/id pointers — no BFS, no CSR
  /// work.  The view aliases `geom`'s storage; it is valid while that
  /// storage is and until the next bind() on this view.
  void bind(const GeometryView& geom, const local::Configuration& cfg,
            const core::Labeling& labeling, local::Visibility mode);

 private:
  std::vector<BallMember> members_;
  std::span<const std::uint32_t> layers_;
  std::span<const std::uint32_t> row_begin_;
  std::span<const std::uint32_t> row_mid_;
  std::span<const std::uint32_t> adj_;
  unsigned radius_ = 0;
  bool whole_component_ = false;
};

class BallBuilder {
 public:
  /// Materializes the radius-t ball around `center`: one GeometryStore
  /// build (private scratch) plus a bind.  Requires t >= 1 (a verifier
  /// always runs at least one round; t = 0 is invalid input).  The returned
  /// view aliases builder-internal storage: it is valid until the next
  /// build() call on this builder.
  const BallView& build(const local::Configuration& cfg,
                        const core::Labeling& labeling,
                        graph::NodeIndex center, unsigned t,
                        local::Visibility mode);

  /// Test hook: forces the epoch counter so the wraparound reset is
  /// exercisable without 2^32 builds.  Not for production use.
  void set_epoch_for_testing(std::uint32_t epoch) noexcept {
    scratch_.set_epoch_for_testing(epoch);
  }

 private:
  GeometryStore store_;
  graph::VisitEpochSet scratch_;
  std::vector<graph::NodeIndex> frontier_;
  BallView ball_;
};

/// Base class for scheme-defined parsed certificates (the parse-once cache of
/// the verification pipeline).  A BallScheme that overrides parse_cert
/// returns its own subclass; stage 2 parses each node's certificate exactly
/// once and hands the per-node results to every verify_ball call through
/// RadiusContext::parsed.
class ParsedCert {
 public:
  virtual ~ParsedCert() = default;

 protected:
  ParsedCert() = default;
};

/// The full verifier input for one t-round evaluation: the center's own data
/// plus its ball.  The mirror of local::VerifierContext one level up.
class RadiusContext {
 public:
  RadiusContext(const BallView& ball, graph::RawId center_id,
                const local::State& center_state,
                const local::Certificate& center_cert, local::Visibility mode,
                std::size_t network_size,
                std::span<const ParsedCert* const> parsed_by_node = {})
      : ball_(&ball),
        id_(center_id),
        state_(&center_state),
        cert_(&center_cert),
        mode_(mode),
        network_size_(network_size),
        parsed_(parsed_by_node) {}

  const BallView& ball() const noexcept { return *ball_; }

  /// A node always knows its own identity, whatever the visibility mode.
  graph::RawId id() const noexcept { return id_; }
  const local::State& state() const noexcept { return *state_; }
  const local::Certificate& certificate() const noexcept { return *cert_; }
  local::Visibility mode() const noexcept { return mode_; }
  std::size_t network_size() const noexcept { return network_size_; }

  /// Parse-once cache (stage 2): true when every node's certificate was
  /// pre-parsed by the scheme's parse_cert hook.
  bool has_parse_cache() const noexcept { return !parsed_.empty(); }

  /// The cached parse of node v's certificate; nullptr means parse_cert
  /// rejected it as malformed (the scheme decides what that implies for the
  /// ball's verdict).  Requires has_parse_cache().
  const ParsedCert* parsed(graph::NodeIndex v) const {
    PLS_REQUIRE(v < parsed_.size());
    return parsed_[v];
  }

 private:
  const BallView* ball_;
  graph::RawId id_;
  const local::State* state_;
  const local::Certificate* cert_;
  local::Visibility mode_;
  std::size_t network_size_;
  std::span<const ParsedCert* const> parsed_;
};

}  // namespace pls::radius
