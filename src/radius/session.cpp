#include "radius/session.hpp"

#include "util/assert.hpp"

namespace pls::radius {

VerificationSession::VerificationSession(const core::Scheme& scheme,
                                         const local::Configuration& cfg,
                                         unsigned t, SessionOptions options)
    : scheme_(scheme),
      ball_scheme_(dynamic_cast<const BallScheme*>(&scheme)),
      cfg_(cfg),
      t_(t),
      threads_(options.threads == 0 ? util::ThreadPool::hardware_threads()
                                    : options.threads) {
  PLS_REQUIRE(t >= 1);
  if (ball_scheme_ != nullptr) PLS_REQUIRE(t >= ball_scheme_->radius());
  if (threads_ > 1) pool_ = std::make_unique<util::ThreadPool>(threads_);
  slots_.resize(threads_);
}

core::Verdict VerificationSession::run(const core::Labeling& labeling) {
  PLS_REQUIRE(labeling.size() == cfg_.n());
  const graph::Graph& g = cfg_.graph();
  const std::size_t n = cfg_.n();
  accept_.assign(n, 0);

  // for_range with a 1-thread pool-less session degenerates to fn(0, 0, n)
  // on the calling thread: the sequential fallback shares this exact code.
  const auto sweep = [&](const util::ThreadPool::RangeFn& fn) {
    if (pool_ != nullptr) {
      pool_->for_range(n, fn);
    } else if (n > 0) {
      fn(0, 0, n);
    }
  };

  if (ball_scheme_ == nullptr) {
    // Plain 1-round scheme: the shared per-node routine, per-slot scratch.
    sweep([&](unsigned worker, std::size_t begin, std::size_t end) {
      std::vector<local::NeighborView>& scratch = slots_[worker].views;
      for (std::size_t v = begin; v < end; ++v)
        accept_[v] = core::detail::verify_one_round_at(
            scheme_, cfg_, labeling, static_cast<graph::NodeIndex>(v),
            scratch);
    });
  } else {
    // Phase 1 — parse-once: each node's certificate parsed exactly once per
    // labeling, in parallel (parse_cert is independent per node).
    std::span<const ParsedCert* const> cache;
    if (ball_scheme_->has_cert_parser()) {
      parsed_storage_.clear();
      parsed_storage_.resize(n);
      parsed_.assign(n, nullptr);
      sweep([&](unsigned, std::size_t begin, std::size_t end) {
        for (std::size_t v = begin; v < end; ++v) {
          parsed_storage_[v] = ball_scheme_->parse_cert(labeling.certs[v]);
          parsed_[v] = parsed_storage_[v].get();
        }
      });
      // Link phase: intern payloads repeated across the per-node parses
      // (spread chunk bit strings) into small ids, so the per-ball equality
      // checks of phase 2 compare ids.  Single-threaded between the phases;
      // the workers only read the linked parses.
      ball_scheme_->link_parses(parsed_storage_);
      cache = parsed_;
    }

    // Phase 2 — per-center ball verification.  Each slot's BallBuilder
    // sweeps the adjacent centers of its contiguous slice, reusing its
    // scratch between them.
    const unsigned radius = ball_scheme_->radius();
    const local::Visibility mode = scheme_.visibility();
    sweep([&](unsigned worker, std::size_t begin, std::size_t end) {
      BallBuilder& builder = slots_[worker].builder;
      for (std::size_t i = begin; i < end; ++i) {
        const auto v = static_cast<graph::NodeIndex>(i);
        const BallView& ball = builder.build(cfg_, labeling, v, radius, mode);
        const RadiusContext ctx(ball, g.id(v), cfg_.state(v),
                                labeling.certs[v], mode, n, cache);
        accept_[i] = ball_scheme_->verify_ball(ctx);
      }
    });
  }

  std::vector<bool> accept(n);
  for (std::size_t v = 0; v < n; ++v) accept[v] = accept_[v] != 0;
  return core::Verdict(std::move(accept));
}

}  // namespace pls::radius
