#include "radius/fragment_spread.hpp"

#include <algorithm>
#include <functional>
#include <limits>
#include <unordered_map>

#include "radius/parse_link.hpp"
#include "radius/splice.hpp"
#include "radius/spread_wire.hpp"
#include "util/assert.hpp"

namespace pls::radius {

namespace {

using detail::chunk_size;
using detail::FragmentWire;
using detail::kChunkCountField;

constexpr std::uint32_t kNoMember = std::numeric_limits<std::uint32_t>::max();
constexpr std::uint32_t kUnassigned =
    std::numeric_limits<std::uint32_t>::max();

/// The session's cached parse of one fragment-spread certificate.
struct FragmentParsed final : ParsedCert {
  static constexpr std::uint32_t kUnlinked =
      std::numeric_limits<std::uint32_t>::max();

  explicit FragmentParsed(FragmentWire w) : wire(std::move(w)) {}
  FragmentWire wire;
  /// Dense chunk-payload class assigned by link_parses: equal ids iff the
  /// chunks are bit-identical.  kUnlinked outside a session cache.
  std::uint32_t chunk_class = kUnlinked;
};

/// One region decomposition, fully resolved: dense region index per node,
/// landmark / in-region BFS distance / landmark eccentricity / certificate
/// LCP per region.  Built from a candidate label assignment by refining it
/// into connected components, so regions are connected by construction.
struct RegionStructure {
  std::vector<std::uint32_t> region_of;   ///< dense region index per node
  std::vector<std::uint32_t> dist;        ///< in-region BFS dist from landmark
  std::vector<graph::NodeIndex> landmark; ///< per region: min-id node
  std::vector<std::uint32_t> ecc;         ///< per region: landmark ecc
  std::vector<std::size_t> prefix_len;    ///< per region: LCP of member certs
  std::size_t count = 0;
};

RegionStructure build_structure(const graph::Graph& g,
                                const core::Labeling& base_lab,
                                std::span<const std::uint32_t> labels) {
  const std::size_t n = g.n();
  RegionStructure s;
  s.region_of.assign(n, kUnassigned);
  s.dist.assign(n, 0);

  // Refine the candidate labels into connected components of the
  // equal-label subgraph; candidates are hints, connectivity is ours.
  std::vector<graph::NodeIndex> queue;
  queue.reserve(n);
  for (graph::NodeIndex v = 0; v < n; ++v) {
    if (s.region_of[v] != kUnassigned) continue;
    const auto region = static_cast<std::uint32_t>(s.count++);
    s.region_of[v] = region;
    queue.clear();
    queue.push_back(v);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const graph::NodeIndex u = queue[head];
      for (const graph::AdjEntry& a : g.adjacency(u)) {
        if (labels[a.to] != labels[v]) continue;
        if (s.region_of[a.to] != kUnassigned) continue;
        s.region_of[a.to] = region;
        queue.push_back(a.to);
      }
    }
  }

  // Landmark (minimum raw id) per region.
  s.landmark.assign(s.count, graph::kInvalidNode);
  for (graph::NodeIndex v = 0; v < n; ++v) {
    graph::NodeIndex& lm = s.landmark[s.region_of[v]];
    if (lm == graph::kInvalidNode || g.id(v) < g.id(lm)) lm = v;
  }

  // One multi-source BFS over region-internal edges resolves every region's
  // distances at once (regions are disjoint, so the frontiers never mix).
  s.ecc.assign(s.count, 0);
  queue.clear();
  std::vector<bool> seen(n, false);
  for (const graph::NodeIndex lm : s.landmark) {
    seen[lm] = true;
    queue.push_back(lm);
  }
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const graph::NodeIndex u = queue[head];
    for (const graph::AdjEntry& a : g.adjacency(u)) {
      if (s.region_of[a.to] != s.region_of[u] || seen[a.to]) continue;
      seen[a.to] = true;
      s.dist[a.to] = s.dist[u] + 1;
      s.ecc[s.region_of[a.to]] =
          std::max(s.ecc[s.region_of[a.to]], s.dist[a.to]);
      queue.push_back(a.to);
    }
  }
  for (graph::NodeIndex v = 0; v < n; ++v) PLS_ASSERT(seen[v]);

  // Longest common certificate prefix per region (folded against the
  // landmark's certificate — the common prefix of a set is the minimum LCP
  // against any fixed member).
  s.prefix_len.assign(s.count, 0);
  for (std::size_t r = 0; r < s.count; ++r)
    s.prefix_len[r] = base_lab.certs[s.landmark[r]].bit_size();
  for (graph::NodeIndex v = 0; v < n; ++v) {
    const std::uint32_t r = s.region_of[v];
    s.prefix_len[r] =
        std::min(s.prefix_len[r],
                 detail::lcp_bits(base_lab.certs[s.landmark[r]],
                                  base_lab.certs[v]));
  }
  return s;
}

std::size_t factor_for(unsigned t, std::uint32_t ecc) {
  return std::min<std::size_t>(t / 2 + 1, std::size_t{ecc} + 1);
}

/// Exact certificate bits node v would encode to under structure s.
std::size_t node_bits(const graph::Graph& g, const core::Labeling& base_lab,
                      const RegionStructure& s, unsigned t,
                      graph::NodeIndex v) {
  const std::uint32_t r = s.region_of[v];
  const std::size_t k = factor_for(t, s.ecc[r]);
  const std::size_t suffix = base_lab.certs[v].bit_size() - s.prefix_len[r];
  return kChunkCountField + util::bit_width_for(k - 1) +
         detail::varint_bits(g.id(s.landmark[r])) +
         detail::varint_bits(suffix) + suffix +
         chunk_size(s.prefix_len[r], k, s.dist[v] % k);
}

/// Mechanical candidates for bases without a RegionProvider: connected
/// components of equal-prefix classes, thresholded at sampled per-edge LCP
/// values.  An edge joins two nodes into one class when their certificates
/// agree on at least L bits; LCPs are ultrametric (lcp(a,c) >=
/// min(lcp(a,b), lcp(b,c))), so every component's certificates share >= L
/// prefix bits.  Candidates are returned fine to coarse (descending L) —
/// lowering the threshold only merges components, which is the laminar
/// ordering the DP in mark() consumes.
std::vector<core::RegionAssignment> mechanical_candidates(
    const graph::Graph& g, const core::Labeling& base_lab) {
  constexpr std::size_t kMaxThresholds = 12;
  std::vector<std::size_t> edge_lcp(g.m());
  for (graph::EdgeIndex e = 0; e < g.m(); ++e) {
    const graph::Edge& ed = g.edge(e);
    edge_lcp[e] =
        detail::lcp_bits(base_lab.certs[ed.u], base_lab.certs[ed.v]);
  }
  std::vector<std::size_t> thresholds = edge_lcp;
  std::sort(thresholds.begin(), thresholds.end(),
            std::greater<std::size_t>());
  thresholds.erase(std::unique(thresholds.begin(), thresholds.end()),
                   thresholds.end());
  if (thresholds.size() > kMaxThresholds) {
    std::vector<std::size_t> sampled;
    sampled.reserve(kMaxThresholds);
    for (std::size_t i = 0; i < kMaxThresholds; ++i)
      sampled.push_back(
          thresholds[i * (thresholds.size() - 1) / (kMaxThresholds - 1)]);
    sampled.erase(std::unique(sampled.begin(), sampled.end()), sampled.end());
    thresholds = std::move(sampled);
  }

  std::vector<core::RegionAssignment> out;
  out.reserve(thresholds.size());
  std::vector<graph::NodeIndex> queue;
  for (const std::size_t L : thresholds) {
    core::RegionAssignment labels(g.n(), kUnassigned);
    std::uint32_t next = 0;
    for (graph::NodeIndex v = 0; v < g.n(); ++v) {
      if (labels[v] != kUnassigned) continue;
      labels[v] = next;
      queue.assign(1, v);
      for (std::size_t head = 0; head < queue.size(); ++head)
        for (const graph::AdjEntry& a : g.adjacency(queue[head])) {
          if (edge_lcp[a.edge] < L || labels[a.to] != kUnassigned) continue;
          labels[a.to] = next;
          queue.push_back(a.to);
        }
      ++next;
    }
    out.push_back(std::move(labels));
  }
  return out;
}

/// Per-thread scratch for verify_ball (see spread.cpp for the rationale).
struct VerifyScratch {
  std::vector<const FragmentWire*> parsed;
  std::vector<std::uint32_t> chunk_class;
  std::vector<FragmentWire> local_parses;
  std::unordered_map<std::uint64_t, std::uint32_t> group_index;
  std::vector<std::uint32_t> group_of;      ///< per member
  std::vector<std::uint64_t> group_k;       ///< per group
  std::vector<std::uint32_t> group_offset;  ///< per group: slot base
  std::vector<std::uint32_t> rep_of;        ///< per slot: member index
  std::vector<std::uint8_t> required;       ///< per group
  std::vector<const util::BitString*> chunk_of;
  std::vector<util::BitString> prefix_of;   ///< per group (required only)
  std::vector<local::Certificate> neighbor_certs;
  std::vector<local::NeighborView> views;
};

}  // namespace

FragmentSpreadScheme::FragmentSpreadScheme(const core::Scheme& base,
                                           unsigned t)
    : base_(base), t_(t) {
  PLS_REQUIRE(t >= 1 && t <= 63);
  name_ = "fragspread(t=" + std::to_string(t) + ")/" +
          std::string(base.name());
}

std::unique_ptr<ParsedCert> FragmentSpreadScheme::parse_cert(
    const local::Certificate& cert) const {
  auto wire = detail::parse_fragment_wire(cert);
  if (!wire) return nullptr;
  return std::make_unique<FragmentParsed>(std::move(*wire));
}

void FragmentSpreadScheme::link_parses(
    std::span<const std::unique_ptr<ParsedCert>> parsed) const {
  detail::intern_chunk_classes<FragmentParsed>(parsed);
}

std::unique_ptr<LinkState> FragmentSpreadScheme::make_link_state() const {
  return std::make_unique<detail::ChunkInternState>();
}

void FragmentSpreadScheme::link_parses_stateful(
    LinkState& state,
    std::span<const std::unique_ptr<ParsedCert>> parsed) const {
  detail::intern_chunk_classes_stateful<FragmentParsed>(
      static_cast<detail::ChunkInternState&>(state), parsed);
}

void FragmentSpreadScheme::relink_parses(
    LinkState& state, std::span<const std::unique_ptr<ParsedCert>> parsed,
    std::span<const graph::NodeIndex> touched) const {
  detail::relink_chunk_classes<FragmentParsed>(
      static_cast<detail::ChunkInternState&>(state), parsed, touched);
}

std::vector<SchemeAttack> FragmentSpreadScheme::adversarial_labelings(
    const local::Configuration& cfg, util::Rng& rng) const {
  std::vector<SchemeAttack> attacks = fragment_splice_attacks(*this, cfg, rng);
  for (SchemeAttack& attack : attacks) attack.name = "splice:" + attack.name;
  return attacks;
}

core::Labeling FragmentSpreadScheme::mark(
    const local::Configuration& cfg) const {
  const core::Labeling base_lab = base_.mark(cfg);
  const graph::Graph& g = cfg.graph();
  const std::size_t n = g.n();
  PLS_ASSERT(base_lab.size() == n);
  if (n == 0) return {};

  // Candidate decompositions, fine to coarse: the base scheme's own
  // structure when it exposes one (MST: Borůvka phases, singletons first),
  // else the mechanical equal-prefix components at descending LCP
  // thresholds; the trivial decomposition (one region per connected
  // component — exactly the global spread) closes the list, so the fragment
  // spread never does worse than the global one.
  std::vector<core::RegionAssignment> candidates;
  if (const auto* provider = dynamic_cast<const core::RegionProvider*>(&base_)) {
    for (core::RegionAssignment& cand : provider->region_candidates(cfg))
      candidates.push_back(std::move(cand));
  } else {
    for (core::RegionAssignment& cand : mechanical_candidates(g, base_lab))
      candidates.push_back(std::move(cand));
  }
  candidates.emplace_back(n, 0);

  // Both candidate families are laminar — Borůvka fragments only merge, and
  // lowering an LCP threshold only merges equal-prefix components — so the
  // best partition need not live on a single level: a bottom-up DP picks,
  // for every coarse region, either the region whole or the best mix of its
  // sub-regions, minimizing the maximum per-node certificate size over all
  // mixed-granularity partitions of the laminar family.
  struct Level {
    RegionStructure s;
    std::vector<std::size_t> best;       ///< per region: best achievable max
    std::vector<std::uint8_t> whole;     ///< per region: keep whole?
  };
  std::vector<Level> levels;
  levels.reserve(candidates.size());
  for (const core::RegionAssignment& cand : candidates) {
    Level level{build_structure(g, base_lab, cand), {}, {}};
    level.best.assign(level.s.count, 0);
    level.whole.assign(level.s.count, 1);
    for (graph::NodeIndex v = 0; v < n; ++v) {
      std::size_t& slot = level.best[level.s.region_of[v]];
      slot = std::max(slot, node_bits(g, base_lab, level.s, t_, v));
    }
    if (!levels.empty()) {
      // max over the children (previous, finer level) of each region; a
      // child's parent is the region holding its landmark.
      const Level& fine = levels.back();
      std::vector<std::size_t> child_max(level.s.count, 0);
      for (std::size_t c = 0; c < fine.s.count; ++c) {
        const std::uint32_t parent =
            level.s.region_of[fine.s.landmark[c]];
        child_max[parent] = std::max(child_max[parent], fine.best[c]);
      }
      for (std::size_t r = 0; r < level.s.count; ++r) {
        if (child_max[r] < level.best[r]) {
          level.best[r] = child_max[r];
          level.whole[r] = 0;
        }
      }
    }
    levels.push_back(std::move(level));
  }

  // Resolve each node's chosen level by walking top-down until a region
  // elects to stay whole (level 0 always does), then name the chosen piece
  // (level, region) as this node's final label.
  std::unordered_map<std::uint64_t, std::uint32_t> piece_label;
  core::RegionAssignment final_labels(n, 0);
  for (graph::NodeIndex v = 0; v < n; ++v) {
    std::size_t level = levels.size() - 1;
    while (level > 0 &&
           !levels[level].whole[levels[level].s.region_of[v]])
      --level;
    const std::uint64_t piece =
        (static_cast<std::uint64_t>(level) << 32) |
        levels[level].s.region_of[v];
    const auto [it, inserted] = piece_label.try_emplace(
        piece, static_cast<std::uint32_t>(piece_label.size()));
    final_labels[v] = it->second;
  }
  const RegionStructure best = build_structure(g, base_lab, final_labels);

  // Interleaved chunks of every region's prefix.
  std::vector<std::vector<util::BitString>> chunks(best.count);
  for (std::size_t r = 0; r < best.count; ++r) {
    const util::BitString& ref = base_lab.certs[best.landmark[r]];
    chunks[r] = detail::shard_chunks(
        detail::slice_bits(ref, 0, best.prefix_len[r]),
        factor_for(t_, best.ecc[r]));
  }

  core::Labeling lab;
  lab.certs.reserve(n);
  for (graph::NodeIndex v = 0; v < n; ++v) {
    const std::uint32_t r = best.region_of[v];
    const std::size_t k = factor_for(t_, best.ecc[r]);
    const std::size_t j = best.dist[v] % k;
    FragmentWire wire;
    wire.k = k;
    wire.residue = j;
    wire.region = g.id(best.landmark[r]);
    wire.suffix = detail::slice_bits(
        base_lab.certs[v], best.prefix_len[r],
        base_lab.certs[v].bit_size() - best.prefix_len[r]);
    wire.chunk = chunks[r][j];
    lab.certs.push_back(detail::encode_fragment_wire(wire));
  }
  return lab;
}

bool FragmentSpreadScheme::verify_ball(const RadiusContext& ctx) const {
  const BallView& ball = ctx.ball();
  const std::span<const BallMember> members = ball.members();

  static thread_local VerifyScratch scratch;

  // Certificates of the ball, parsed at most once per node; the cache path
  // carries the interned chunk-class ids.
  std::vector<const FragmentWire*>& parsed = scratch.parsed;
  std::vector<std::uint32_t>& chunk_class = scratch.chunk_class;
  parsed.assign(members.size(), nullptr);
  chunk_class.assign(members.size(), FragmentParsed::kUnlinked);
  if (ctx.has_parse_cache()) {
    for (std::size_t i = 0; i < members.size(); ++i) {
      const auto* p =
          static_cast<const FragmentParsed*>(ctx.parsed(members[i].node));
      if (p == nullptr) return false;  // malformed certificate in the ball
      parsed[i] = &p->wire;
      chunk_class[i] = p->chunk_class;
    }
  } else {
    std::vector<FragmentWire>& local_parses = scratch.local_parses;
    local_parses.clear();
    local_parses.reserve(members.size());
    for (std::size_t i = 0; i < members.size(); ++i) {
      auto p = detail::parse_fragment_wire(*members[i].cert);
      if (!p) return false;
      local_parses.push_back(std::move(*p));
    }
    for (std::size_t i = 0; i < members.size(); ++i)
      parsed[i] = &local_parses[i];
  }

  // Group the ball by region id; every member of a region group must agree
  // on the chunk count.
  std::unordered_map<std::uint64_t, std::uint32_t>& group_index =
      scratch.group_index;
  group_index.clear();
  std::vector<std::uint32_t>& group_of = scratch.group_of;
  std::vector<std::uint64_t>& group_k = scratch.group_k;
  group_of.assign(members.size(), 0);
  group_k.clear();
  for (std::size_t i = 0; i < members.size(); ++i) {
    const auto [it, inserted] = group_index.try_emplace(
        parsed[i]->region, static_cast<std::uint32_t>(group_k.size()));
    group_of[i] = it->second;
    if (inserted) {
      group_k.push_back(parsed[i]->k);
    } else if (group_k[it->second] != parsed[i]->k) {
      return false;
    }
  }

  // Region-id binding: a region is named by its minimum-id member, so no
  // node may claim a region id above its own id, and the landmark itself —
  // the one node whose id equals the region id — must sit at residue 0.
  // The center always knows its own id; under Extended visibility the same
  // bound applies to every ball member.
  const FragmentWire& own = *parsed.front();
  if (own.region > ctx.id()) return false;
  if (own.region == ctx.id() && own.residue != 0) return false;
  if (ctx.mode() == local::Visibility::kExtended) {
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (!members[i].id_visible) continue;
      if (parsed[i]->region > members[i].id) return false;
      if (parsed[i]->region == members[i].id && parsed[i]->residue != 0)
        return false;
    }
  }

  // Per-region chunk-class agreement: same region + same residue must carry
  // bit-identical chunks (one id comparison per member on the cache path).
  std::vector<std::uint32_t>& group_offset = scratch.group_offset;
  group_offset.assign(group_k.size() + 1, 0);
  for (std::size_t gi = 0; gi < group_k.size(); ++gi)
    group_offset[gi + 1] =
        group_offset[gi] + static_cast<std::uint32_t>(group_k[gi]);
  std::vector<std::uint32_t>& rep_of = scratch.rep_of;
  rep_of.assign(group_offset.back(), kNoMember);
  for (std::size_t i = 0; i < members.size(); ++i) {
    std::uint32_t& rep =
        rep_of[group_offset[group_of[i]] + parsed[i]->residue];
    if (rep == kNoMember) {
      rep = static_cast<std::uint32_t>(i);
      continue;
    }
    const bool equal = chunk_class[i] != FragmentParsed::kUnlinked
                           ? chunk_class[i] == chunk_class[rep]
                           : parsed[i]->chunk == parsed[rep]->chunk;
    if (!equal) return false;
  }

  // In-region residue adjacency: distances from the region landmark change
  // by at most one across a region-internal edge.  Cross-region ball edges
  // carry no residue relation — their consistency is the base decoder's
  // cross-edge predicates on the reconstructions below.
  for (std::uint32_t i = 0; i < members.size(); ++i)
    for (const std::uint32_t nb : ball.neighbors_of(i)) {
      if (nb <= i) continue;
      if (parsed[i]->region != parsed[nb]->region) continue;
      const std::uint64_t k = parsed[i]->k;
      const std::uint64_t diff =
          (parsed[i]->residue + k - parsed[nb]->residue) % k;
      if (diff != 0 && diff != 1 && diff != k - 1) return false;
    }

  // Reassemble the prefix of every *required* region — the center's own and
  // each 1-hop neighbor's (their coverage is guaranteed, see the header).
  // Other regions grazed by the outer ball get the consistency checks above
  // but need not be coverable.
  std::vector<std::uint8_t>& required = scratch.required;
  required.assign(group_k.size(), 0);
  required[group_of[0]] = 1;
  const std::span<const BallMember> layer1 = ball.layer(1);
  for (std::size_t i = 0; i < layer1.size(); ++i) required[group_of[1 + i]] = 1;

  std::vector<util::BitString>& prefix_of = scratch.prefix_of;
  prefix_of.assign(group_k.size(), util::BitString());
  std::vector<const util::BitString*>& chunk_of = scratch.chunk_of;
  for (std::size_t gi = 0; gi < group_k.size(); ++gi) {
    if (!required[gi]) continue;
    const std::uint64_t k = group_k[gi];
    chunk_of.assign(k, nullptr);
    for (std::uint64_t j = 0; j < k; ++j) {
      const std::uint32_t rep = rep_of[group_offset[gi] + j];
      if (rep == kNoMember) return false;  // a chunk class is missing
      chunk_of[j] = &parsed[rep]->chunk;
    }
    auto prefix = detail::reassemble_chunks(chunk_of);
    if (!prefix) return false;  // chunk lengths must interleave consistently
    prefix_of[gi] = std::move(*prefix);
  }

  // Reconstruct the base certificates of the 1-hop neighborhood — each from
  // its *own* region's prefix — and run the base decoder.
  auto reconstruct = [&](std::size_t member_index) {
    const util::BitString& prefix = prefix_of[group_of[member_index]];
    const FragmentWire& p = *parsed[member_index];
    util::BitWriter w;
    w.write_bits(prefix.bytes(), prefix.bit_size());
    w.write_bits(p.suffix.bytes(), p.suffix.bit_size());
    return local::Certificate::from_writer(std::move(w));
  };
  const local::Certificate own_cert = reconstruct(0);
  std::vector<local::Certificate>& neighbor_certs = scratch.neighbor_certs;
  neighbor_certs.clear();
  neighbor_certs.reserve(layer1.size());
  // Members are in BFS order: layer 1 starts at member index 1.
  for (std::size_t i = 0; i < layer1.size(); ++i)
    neighbor_certs.push_back(reconstruct(1 + i));

  std::vector<local::NeighborView>& views = scratch.views;
  views.clear();
  views.reserve(layer1.size());
  for (std::size_t i = 0; i < layer1.size(); ++i) {
    local::NeighborView nv;
    nv.cert = &neighbor_certs[i];
    nv.edge_weight = layer1[i].edge_weight;
    if (ctx.mode() == local::Visibility::kExtended) {
      nv.state = layer1[i].state;
      nv.id = layer1[i].id;
      nv.id_visible = true;
    }
    views.push_back(nv);
  }
  const local::VerifierContext base_ctx(ctx.id(), ctx.state(), own_cert,
                                        views, ctx.mode(),
                                        ctx.network_size());
  return base_.verify(base_ctx);
}

std::size_t FragmentSpreadScheme::proof_size_bound(
    std::size_t n, std::size_t state_bits) const {
  // suffix + chunk never exceed a full base certificate (the chunk is at
  // most the region prefix, the suffix is the rest), so the fragment spread
  // adds only its header: the k field, the residue (k <= t/2 + 1, so
  // bit_width(t/2) bits), the region id — a raw node id, bounded by the
  // standard "ids are polynomial in n" assumption (ids < 16n², as
  // schemes::id_varint_bound) — and the suffix length.
  const std::size_t base = base_.proof_size_bound(n, state_bits);
  return kChunkCountField + util::bit_width_for(t_ / 2) +
         detail::varint_bits(16 * n * n + 1) + detail::varint_bits(base) +
         base;
}

}  // namespace pls::radius
