#include "radius/ball.hpp"

#include "util/assert.hpp"

namespace pls::radius {

/// layered_bfs visitor appending one center's geometry to a GeometryStore.
/// Adjacency rows are written layer-partitioned: entries whose far end sits
/// at the scanning member's layer or below go straight into adj_, entries
/// one layer out are buffered in `tail` and flushed when the row closes —
/// that partition point (row_mid_) is what lets a radius-t store serve every
/// smaller radius zero-copy.
struct GeometryBuildVisitor {
  GeometryStore* s;
  const graph::Graph* g;
  std::uint32_t member_base;  // members_ size at center start
  std::uint32_t adj_base;     // adj_ size at center start
  std::vector<std::uint32_t> tail;
  bool row_open = false;
  bool whole = true;

  std::uint32_t rel_len() const {
    return static_cast<std::uint32_t>(s->adj_.size()) - adj_base;
  }

  void close_row() {
    if (!row_open) return;
    s->row_mid_.push_back(rel_len());
    s->adj_.insert(s->adj_.end(), tail.begin(), tail.end());
    tail.clear();
    row_open = false;
  }

  void discover(graph::NodeIndex v, std::uint32_t, std::uint32_t dist,
                graph::NodeIndex, graph::EdgeIndex entry_edge) {
    GeomMember m;
    m.node = v;
    m.dist = dist;
    m.edge_weight =
        entry_edge == graph::kInvalidEdge ? graph::Weight{1} : g->weight(entry_edge);
    s->members_.push_back(m);
  }

  void row(graph::NodeIndex, std::uint32_t, std::uint32_t) {
    close_row();
    s->row_begin_.push_back(rel_len());
    row_open = true;
  }

  void edge_in(std::uint32_t u_slot, std::uint32_t v_slot, std::uint32_t u_dist) {
    (void)u_slot;
    if (s->members_[member_base + v_slot].dist <= u_dist) {
      s->adj_.push_back(v_slot);
    } else {
      tail.push_back(v_slot);
    }
  }

  void edge_beyond(graph::NodeIndex, graph::EdgeIndex) { whole = false; }

  bool accept_edge(graph::EdgeIndex) const { return true; }

  void finish() {
    close_row();
    // Row sentinels: row_begin_ gets the end of the last row, row_mid_ a
    // matching dummy so both arrays share the (count+1)-per-center stride.
    s->row_begin_.push_back(rel_len());
    s->row_mid_.push_back(rel_len());
  }
};

void GeometryStore::clear() {
  members_.clear();
  layers_.clear();
  row_begin_.clear();
  row_mid_.clear();
  adj_.clear();
  centers_.clear();
  t_ = 0;
}

void GeometryStore::build_center(const graph::Graph& g,
                                 graph::NodeIndex center, unsigned t,
                                 graph::VisitEpochSet& scratch,
                                 std::vector<graph::NodeIndex>& frontier) {
  PLS_REQUIRE(t >= 1);
  PLS_REQUIRE(center < g.n());
  PLS_REQUIRE(centers_.empty() || t_ == t);
  t_ = t;

  CenterMeta meta;
  meta.member_begin = static_cast<std::uint32_t>(members_.size());
  meta.layer_begin = static_cast<std::uint32_t>(layers_.size());
  meta.row_begin = static_cast<std::uint32_t>(row_begin_.size());
  meta.adj_begin = static_cast<std::uint32_t>(adj_.size());

  GeometryBuildVisitor visitor{
      this, &g, meta.member_begin, meta.adj_begin, {}, false, true};
  graph::layered_bfs(g, center, t, scratch, frontier, visitor);
  visitor.finish();
  meta.whole_component = visitor.whole;

  // Layer offsets from the members' dists (BFS order => sorted by dist);
  // trailing empty layers repeat the member count.
  const auto count =
      static_cast<std::uint32_t>(members_.size()) - meta.member_begin;
  layers_.reserve(layers_.size() + t + 2);
  std::uint32_t idx = 0;
  for (unsigned r = 0; r <= t + 1; ++r) {
    while (idx < count && members_[meta.member_begin + idx].dist < r) ++idx;
    layers_.push_back(idx);
  }

  centers_.push_back(meta);
}

GeometryView GeometryStore::view(std::size_t i, unsigned serve_t) const {
  PLS_REQUIRE(i < centers_.size());
  PLS_REQUIRE(serve_t >= 1 && serve_t <= t_);
  const CenterMeta& c = centers_[i];
  const std::uint32_t adj_end = i + 1 < centers_.size()
                                    ? centers_[i + 1].adj_begin
                                    : static_cast<std::uint32_t>(adj_.size());
  const std::uint32_t count = layers_[c.layer_begin + serve_t + 1];

  GeometryView v;
  v.members = std::span<const GeomMember>(members_).subspan(c.member_begin, count);
  v.layers = std::span<const std::uint32_t>(layers_).subspan(c.layer_begin,
                                                             serve_t + 2);
  v.row_begin =
      std::span<const std::uint32_t>(row_begin_).subspan(c.row_begin, count + 1);
  v.row_mid =
      std::span<const std::uint32_t>(row_mid_).subspan(c.row_begin, count + 1);
  v.adj = std::span<const std::uint32_t>(adj_).subspan(c.adj_begin,
                                                       adj_end - c.adj_begin);
  v.radius = serve_t;
  v.whole_component =
      serve_t == t_
          ? c.whole_component
          : layers_[c.layer_begin + serve_t + 2] == layers_[c.layer_begin + serve_t + 1];
  return v;
}

std::size_t GeometryStore::bytes() const noexcept {
  return members_.size() * sizeof(GeomMember) +
         (layers_.size() + row_begin_.size() + row_mid_.size() + adj_.size()) *
             sizeof(std::uint32_t) +
         centers_.size() * sizeof(CenterMeta);
}

void GeometryStore::shrink_to_fit() {
  members_.shrink_to_fit();
  layers_.shrink_to_fit();
  row_begin_.shrink_to_fit();
  row_mid_.shrink_to_fit();
  adj_.shrink_to_fit();
  centers_.shrink_to_fit();
}

void BallView::bind(const GeometryView& geom, const local::Configuration& cfg,
                    const core::Labeling& labeling, local::Visibility mode) {
  const graph::Graph& g = cfg.graph();
  radius_ = geom.radius;
  whole_component_ = geom.whole_component;
  layers_ = geom.layers;
  row_begin_ = geom.row_begin;
  row_mid_ = geom.row_mid;
  adj_ = geom.adj;

  members_.clear();
  members_.reserve(geom.members.size());
  const bool extended = mode == local::Visibility::kExtended;
  for (const GeomMember& gm : geom.members) {
    BallMember m;
    m.node = gm.node;
    m.dist = gm.dist;
    m.edge_weight = gm.edge_weight;
    m.cert = &labeling.certs[gm.node];
    if (extended) {
      m.state = &cfg.state(gm.node);
      m.id = g.id(gm.node);
      m.id_visible = true;
    }
    members_.push_back(m);
  }
}

const BallView& BallBuilder::build(const local::Configuration& cfg,
                                   const core::Labeling& labeling,
                                   graph::NodeIndex center, unsigned t,
                                   local::Visibility mode) {
  PLS_REQUIRE(t >= 1);
  PLS_REQUIRE(center < cfg.n());
  PLS_REQUIRE(labeling.size() == cfg.n());
  store_.clear();
  store_.build_center(cfg.graph(), center, t, scratch_, frontier_);
  ball_.bind(store_.view(0, t), cfg, labeling, mode);
  return ball_;
}

}  // namespace pls::radius
