#include "radius/ball.hpp"

#include "util/assert.hpp"

namespace pls::radius {

const BallView& BallBuilder::build(const local::Configuration& cfg,
                                   const core::Labeling& labeling,
                                   graph::NodeIndex center, unsigned t,
                                   local::Visibility mode) {
  PLS_REQUIRE(t >= 1);
  PLS_REQUIRE(center < cfg.n());
  PLS_REQUIRE(labeling.size() == cfg.n());
  const graph::Graph& g = cfg.graph();

  if (visit_epoch_.size() != g.n() || epoch_ == UINT32_MAX) {
    visit_epoch_.assign(g.n(), 0);
    slot_.assign(g.n(), 0);
    epoch_ = 0;
  }
  ++epoch_;

  auto make_member = [&](graph::NodeIndex v, std::uint32_t dist,
                         graph::Weight via_weight) {
    BallMember m;
    m.node = v;
    m.dist = dist;
    m.cert = &labeling.certs[v];
    m.edge_weight = via_weight;
    if (mode == local::Visibility::kExtended) {
      m.state = &cfg.state(v);
      m.id = g.id(v);
      m.id_visible = true;
    }
    return m;
  };

  BallView& ball = ball_;
  ball.members_.clear();
  ball.layer_offsets_.assign(t + 2, 0);
  ball.adj_offsets_.clear();
  ball.adj_.clear();
  ball.radius_ = t;
  ball.whole_component_ = true;

  visit_epoch_[center] = epoch_;
  slot_[center] = 0;
  ball.members_.push_back(make_member(center, 0, 1));
  ball.layer_offsets_[1] = 1;

  // Merged layered BFS + CSR pass.  Scanning member i at layer r touches each
  // of its graph edges once: a neighbor at layer r-1 or r already has a slot
  // (all of layer r was discovered while scanning layer r-1), a neighbor at
  // layer r+1 gets its slot the moment it is discovered here, and a neighbor
  // past the last layer (only possible at r == t) marks the ball as a strict
  // subset of the component.  So each member's full CSR row — and the
  // whole-component flag — fall out of the single scan, with no separate
  // boundary or adjacency pass over the ball.
  for (unsigned r = 0; r <= t; ++r) {
    const std::uint32_t begin = ball.layer_offsets_[r];
    const std::uint32_t end = ball.layer_offsets_[r + 1];
    for (std::uint32_t i = begin; i < end; ++i) {
      const graph::NodeIndex u = ball.members_[i].node;
      ball.adj_offsets_.push_back(static_cast<std::uint32_t>(ball.adj_.size()));
      for (const graph::AdjEntry& a : g.adjacency(u)) {
        if (visit_epoch_[a.to] == epoch_) {
          ball.adj_.push_back(slot_[a.to]);
        } else if (r < t) {
          visit_epoch_[a.to] = epoch_;
          const auto s = static_cast<std::uint32_t>(ball.members_.size());
          slot_[a.to] = s;
          ball.members_.push_back(make_member(a.to, r + 1, g.weight(a.edge)));
          ball.adj_.push_back(s);
        } else {
          ball.whole_component_ = false;
        }
      }
    }
    if (r < t)
      ball.layer_offsets_[r + 2] =
          static_cast<std::uint32_t>(ball.members_.size());
  }
  ball.adj_offsets_.push_back(static_cast<std::uint32_t>(ball.adj_.size()));

  return ball_;
}

}  // namespace pls::radius
