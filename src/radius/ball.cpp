#include "radius/ball.hpp"

#include "util/assert.hpp"

namespace pls::radius {

const BallView& BallBuilder::build(const local::Configuration& cfg,
                                   const core::Labeling& labeling,
                                   graph::NodeIndex center, unsigned t,
                                   local::Visibility mode) {
  PLS_REQUIRE(t >= 1);
  PLS_REQUIRE(center < cfg.n());
  PLS_REQUIRE(labeling.size() == cfg.n());
  const graph::Graph& g = cfg.graph();

  if (visit_epoch_.size() != g.n() || epoch_ == UINT32_MAX) {
    visit_epoch_.assign(g.n(), 0);
    slot_.assign(g.n(), 0);
    epoch_ = 0;
  }
  ++epoch_;

  auto make_member = [&](graph::NodeIndex v, std::uint32_t dist,
                         graph::Weight via_weight) {
    BallMember m;
    m.node = v;
    m.dist = dist;
    m.cert = &labeling.certs[v];
    m.edge_weight = via_weight;
    if (mode == local::Visibility::kExtended) {
      m.state = &cfg.state(v);
      m.id = g.id(v);
      m.id_visible = true;
    }
    return m;
  };

  BallView& ball = ball_;
  ball.members_.clear();
  ball.layer_offsets_.assign(t + 2, 0);
  ball.radius_ = t;
  ball.whole_component_ = true;

  visit_epoch_[center] = epoch_;
  slot_[center] = 0;
  ball.members_.push_back(make_member(center, 0, 1));
  ball.layer_offsets_[1] = 1;

  // Layered BFS: the frontier of layer r is members_[offsets[r], offsets[r+1]).
  for (unsigned r = 0; r < t; ++r) {
    const std::uint32_t begin = ball.layer_offsets_[r];
    const std::uint32_t end = ball.layer_offsets_[r + 1];
    for (std::uint32_t i = begin; i < end; ++i) {
      const graph::NodeIndex u = ball.members_[i].node;
      for (const graph::AdjEntry& a : g.adjacency(u)) {
        if (visit_epoch_[a.to] == epoch_) continue;
        visit_epoch_[a.to] = epoch_;
        slot_[a.to] = static_cast<std::uint32_t>(ball.members_.size());
        ball.members_.push_back(make_member(a.to, r + 1, g.weight(a.edge)));
      }
    }
    ball.layer_offsets_[r + 2] = static_cast<std::uint32_t>(ball.members_.size());
  }

  // Unexplored neighbors beyond the last layer mean the ball is a strict
  // subset of the component.
  for (const BallMember& m : ball.layer(t)) {
    for (const graph::AdjEntry& a : g.adjacency(m.node))
      if (visit_epoch_[a.to] != epoch_) {
        ball.whole_component_ = false;
        break;
      }
    if (!ball.whole_component_) break;
  }

  // Ball-internal adjacency in CSR form over member indices.
  ball.adj_offsets_.assign(ball.members_.size() + 1, 0);
  ball.adj_.clear();
  for (std::uint32_t i = 0; i < ball.members_.size(); ++i) {
    ball.adj_offsets_[i] = static_cast<std::uint32_t>(ball.adj_.size());
    for (const graph::AdjEntry& a : g.adjacency(ball.members_[i].node))
      if (visit_epoch_[a.to] == epoch_) ball.adj_.push_back(slot_[a.to]);
  }
  ball.adj_offsets_[ball.members_.size()] =
      static_cast<std::uint32_t>(ball.adj_.size());

  return ball_;
}

}  // namespace pls::radius
