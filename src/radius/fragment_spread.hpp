// Fragment-aware certificate spreading: the region-decomposed t-PLS
// transform.
//
// SpreadScheme (spread.hpp) shards the *global* longest common prefix of the
// base certificates, which buys nothing for languages whose certificates
// share content regionally instead of globally — MST's Borůvka-phase
// certificates agree on the fragment name and chosen-edge records of every
// phase the fragment survives, but different fragments agree on different
// bits.  FragmentSpreadScheme generalizes the transform from one prefix to a
// region decomposition:
//
//   * The marker partitions the nodes into connected *regions* and factors
//     out each region's own longest common certificate prefix X_r.  Region
//     candidates come from the base scheme when it implements
//     core::RegionProvider (MstScheme: one candidate per Borůvka phase,
//     regions = that phase's fragments); otherwise they are computed
//     mechanically as connected components of equal-prefix classes — per-edge
//     certificate LCPs thresholded at sampled lengths.  The trivial
//     decomposition (one region per connected component — the global spread)
//     is always a candidate, and the marker keeps whichever candidate
//     minimizes the maximum per-node certificate size, so the fragment
//     spread never does worse than the global one.
//   * Each region shards X_r independently with its own factor
//     k_r = min(floor(t/2)+1, ecc_r+1), where ecc_r is the eccentricity of
//     the region's landmark (its minimum-id node) in the region-induced
//     subgraph.  A node stores its region id (the landmark's raw id), its
//     residue — in-region BFS distance from the landmark mod k_r — one
//     interleaved chunk of X_r, and its residual suffix.
//   * The verifier groups its ball by region id, checks per-region chunk
//     count and chunk-class agreement, in-region residue adjacency, and the
//     region-id bounds (a region is named by its minimum id, so no member
//     may have a smaller id than its region id, and a node whose own id *is*
//     the region id must sit at residue 0).  It then reassembles the prefix
//     of every region that contains the center or a 1-hop neighbor — the
//     radius-t ball provably contains all k_r chunk classes of each such
//     region: walking from a node at in-region distance d' towards the
//     landmark yields k_r consecutive layers when d' >= k_r-1, and otherwise
//     the ball reaches the landmark and every layer 0..k_r-1 within
//     1 + (k_r-2) + (k_r-1) <= t hops of the center — reconstructs the base
//     certificates of the center's 1-hop neighborhood, and runs the base
//     decoder.  Cross-region boundaries are therefore checked twice: the
//     spread layer binds region names and chunk classes, and the base
//     decoder re-checks the semantic cross-edge predicates (for MST:
//     outgoing-edge minimality and fragment merges) on the reconstructions.
//
// Certificates shrink from |X_r| + |suffix| to |X_r|/k_r + |suffix| + O(1)
// per node — the size–time tradeoff of the t-PLS literature, now realized
// for regionally-redundant languages; bench_radius_tradeoff measures the MST
// curve next to the spanning-tree one.
#pragma once

#include <string>

#include "radius/engine_t.hpp"

namespace pls::radius {

class FragmentSpreadScheme final : public BallScheme {
 public:
  /// Wraps `base` (which must outlive this scheme) as a radius-t scheme.
  /// Requires 1 <= t <= 63 (k must fit the 6-bit chunk-count field).
  FragmentSpreadScheme(const core::Scheme& base, unsigned t);

  std::string_view name() const noexcept override { return name_; }
  const core::Language& language() const noexcept override {
    return base_.language();
  }
  local::Visibility visibility() const noexcept override {
    return base_.visibility();
  }
  unsigned radius() const noexcept override { return t_; }

  core::Labeling mark(const local::Configuration& cfg) const override;
  bool verify_ball(const RadiusContext& ctx) const override;
  std::size_t proof_size_bound(std::size_t n,
                               std::size_t state_bits) const override;

  /// Parse-once support (session.hpp): the cached parse carries the wire's
  /// region id, so the session's cache is region-aware.
  bool has_cert_parser() const noexcept override { return true; }
  std::unique_ptr<ParsedCert> parse_cert(
      const local::Certificate& cert) const override;

  /// Interns chunk payloads into dense class ids after the parallel parse
  /// (equal id <=> bit-identical chunk), so per-ball chunk agreement on the
  /// session hot path compares ids, not BitStrings.
  void link_parses(
      std::span<const std::unique_ptr<ParsedCert>> parsed) const override;

  /// Incremental link (the delta path): same persistent interning table as
  /// the global spread's — region ids live in the wire, so only the chunk
  /// payload needs stable interning.
  std::unique_ptr<LinkState> make_link_state() const override;
  void link_parses_stateful(
      LinkState& state,
      std::span<const std::unique_ptr<ParsedCert>> parsed) const override;
  void relink_parses(
      LinkState& state, std::span<const std::unique_ptr<ParsedCert>> parsed,
      std::span<const graph::NodeIndex> touched) const override;

  /// The cross-region splice suite (splice.hpp): crossed fragment chunk
  /// payloads, rotated region ids, a neighbor region's reassembled prefix
  /// spliced in — the failure modes specific to region decomposition.
  std::vector<SchemeAttack> adversarial_labelings(
      const local::Configuration& cfg, util::Rng& rng) const override;

  const core::Scheme& base() const noexcept { return base_; }

 private:
  const core::Scheme& base_;
  unsigned t_;
  std::string name_;
};

}  // namespace pls::radius
