// Delta-aware incremental verification: the labeling-delta front door's
// supporting types (batch.hpp hosts the entry point itself).
//
// The t-PLS verifier's locality is the whole point of the model: a center's
// verdict is a pure function of the certificates inside its radius-t ball,
// so when a labeling differs from the previously verified one at only k
// nodes, only centers within hop distance t of those k nodes can change
// their verdict.  Error-sensitive PLS (Feuilloley–Fraigniaud) formalizes
// exactly this error-locality; the adversary's hill-climb — thousands of
// single-certificate candidates against one configuration — is the workload
// that cashes it in.  BatchVerifier::run_delta re-parses only the mutated
// certificates, re-links them with stable interned class ids, re-sweeps only
// the *dirty* centers, and splices the carried-forward verdicts of every
// clean center.
//
// DirtyIndex is the reverse-ball index of that pipeline: which centers'
// radius-r balls contain a given node?  Hop distance is symmetric, so the
// answer is exactly the node's own forward ball — the same layer-partitioned
// geometry the GeometryAtlas already caches per (graph epoch, radius, block).
// The index therefore derives the dirty set by reading ball membership from
// the atlas (each touched node is itself a dirty center of its own block, so
// a lookup never builds geometry the sweep won't want), deduplicating with
// an epoch-stamped visited set, and handing back the centers sorted — the
// order the sweep's static partition wants for block locality.  At r = 1 the
// ball is the closed neighborhood and the graph's adjacency answers
// directly, with no geometry at all (the plain 1-round schemes' path).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "radius/atlas.hpp"

namespace pls::radius {

/// The mutation set between the previously verified labeling and the next
/// candidate: every node whose certificate MAY differ.  An over-approximation
/// is always safe (listed-but-unchanged nodes are re-parsed and their
/// neighborhoods re-swept to the same verdicts); an under-approximation is a
/// contract violation — clean centers' verdicts are carried forward, not
/// re-checked.  Duplicates are allowed.
struct LabelingDelta {
  std::vector<graph::NodeIndex> touched;

  /// The exact mutation set: nodes whose certificates are not bit-identical
  /// between the two labelings.  O(n) certificate compares — callers that
  /// already know what they mutated (the hill-climb) should say so instead.
  static LabelingDelta diff(const core::Labeling& prev,
                            const core::Labeling& next);
};

/// Work counters of the delta path, the observable proof of its incremental
/// contract: an empty mutation set moves none of them, and a k-mutation run
/// re-parses exactly its touched list and re-sweeps exactly the dirty set.
struct DeltaStats {
  std::uint64_t delta_runs = 0;        ///< run_delta calls
  std::uint64_t empty_runs = 0;        ///< of those: no touched node at all
  std::uint64_t certs_reparsed = 0;    ///< stage-2 parses done by delta runs
  std::uint64_t links_incremental = 0; ///< relink_parses calls (stable ids)
  std::uint64_t links_full = 0;        ///< full-relink fallbacks
  std::uint64_t link_reseeds = 0;      ///< LinkState memory-bound rebuilds
                                       ///< (intern-table epoch resets)
  std::uint64_t centers_reswept = 0;   ///< stage-3 verify calls by delta runs
  std::uint64_t verdicts_carried = 0;  ///< clean centers spliced, not swept
};

/// Reverse-ball index over one graph: resolves a mutation set to the sorted,
/// deduplicated list of dirty centers (centers whose radius-r ball contains
/// a touched node).  Holds only epoch-stamped scratch; the geometry itself
/// stays in the atlas, shared with the sweep.
class DirtyIndex {
 public:
  /// Dirty centers of `touched` at radius r >= 1.  The returned span aliases
  /// index-internal storage: valid until the next collect() call.
  std::span<const graph::NodeIndex> collect(
      GeometryAtlas& atlas, const graph::Graph& g, unsigned r,
      std::span<const graph::NodeIndex> touched);

 private:
  void add(graph::NodeIndex center);

  graph::VisitEpochSet seen_;  ///< dedupe marks, O(1) reset per collect
  std::vector<graph::NodeIndex> dirty_;
};

}  // namespace pls::radius
