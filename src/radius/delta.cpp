#include "radius/delta.hpp"

#include <algorithm>

#include "pls/certificate.hpp"
#include "util/assert.hpp"

namespace pls::radius {

LabelingDelta LabelingDelta::diff(const core::Labeling& prev,
                                  const core::Labeling& next) {
  PLS_REQUIRE(prev.size() == next.size());
  LabelingDelta delta;
  for (graph::NodeIndex v = 0; v < prev.size(); ++v)
    if (!(prev.certs[v] == next.certs[v])) delta.touched.push_back(v);
  return delta;
}

void DirtyIndex::add(graph::NodeIndex center) {
  if (seen_.visited(center)) return;
  seen_.visit(center, 0);
  dirty_.push_back(center);
}

std::span<const graph::NodeIndex> DirtyIndex::collect(
    GeometryAtlas& atlas, const graph::Graph& g, unsigned r,
    std::span<const graph::NodeIndex> touched) {
  PLS_REQUIRE(r >= 1);
  seen_.reset(g.n());
  dirty_.clear();

  if (r == 1) {
    // The radius-1 ball is the closed neighborhood: adjacency answers
    // directly, no geometry needed (this is the plain 1-round schemes' path,
    // which never reads the atlas).
    for (const graph::NodeIndex v : touched) {
      PLS_REQUIRE(v < g.n());
      add(v);
      for (const graph::AdjEntry& a : g.adjacency(v)) add(a.to);
    }
  } else {
    // dist(u, v) <= r is symmetric: the centers whose radius-r ball contains
    // v are exactly the members of v's own radius-r ball, which the atlas
    // already caches (layer-partitioned, so a block built at any radius
    // >= r serves this lookup zero-copy).  v is itself a dirty center of
    // its own block, so the sweep will want every block requested here.
    std::shared_ptr<const GeometryBlock> block;
    for (const graph::NodeIndex v : touched) {
      PLS_REQUIRE(v < g.n());
      if (block == nullptr || !block->covers(v)) block = atlas.block(g, r, v);
      for (const GeomMember& m : block->ball(v, r).members) add(m.node);
    }
  }

  // Sorted dirty centers: deterministic sweep order, contiguous pool slices
  // walk blocks in index order (one block re-request per boundary), and the
  // verdict splice reads like the full sweep's.
  std::sort(dirty_.begin(), dirty_.end());
  return dirty_;
}

}  // namespace pls::radius
