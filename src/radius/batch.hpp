// Stages 2+3 of the verification pipeline, and its batch-labeling front end.
//
// The staged pipeline splits a radius-t verification into three separately
// owned stages:
//
//   1. GEOMETRY  — labeling-independent ball CSRs, owned by GeometryAtlas
//                  (atlas.hpp): built once per (graph, t, center), shared
//                  across sessions, thread slots, and t values.
//   2. PARSE/LINK — labeling-dependent, center-independent: each node's
//                  certificate parsed exactly once per labeling
//                  (BallScheme::parse_cert), then the single-threaded link
//                  phase interns repeated payloads (link_parses).
//   3. SWEEP     — per-center verify_ball over geometry bound to the
//                  labeling, fanned out over util::ThreadPool — by default
//                  the work-stealing chunked split (skewed ball sizes
//                  rebalance across slots), optionally the static
//                  contiguous partition (BatchOptions::sweep).
//
// BatchVerifier pins one (scheme, configuration, t) and verifies any number
// of labelings against it.  For a batch, the stages overlap: while the pool
// sweeps labeling i, the calling thread (slice 0 of the posted range is
// deferred, ThreadPool::post_range) parses and links labeling i+1 into the
// other half of a double buffer.  Verdicts are bit-identical to per-labeling
// sessions at every thread count — parse results are per-node and
// scheduling-independent, the link phase is deterministic, and each verdict
// depends only on its own labeling's stage-2 output — so the overlap is a
// pure wall-clock win.  threads = 1 degenerates to the strictly sequential
// parse -> link -> sweep per labeling, spawning no threads.
//
// On top of the batch, the verifier is *delta-aware*: run_delta verifies a
// labeling that differs from the previously verified one at a declared set
// of touched nodes, exploiting the model's error-locality — a center's
// verdict depends only on the certificates in its radius-t ball, so a
// k-certificate mutation can flip verdicts only within distance t of those
// k nodes.  The delta path (a) re-parses only the touched certificates into
// the resident half of the double-buffered parse cache, carrying every
// clean entry forward across the labeling boundary; (b) re-links them
// incrementally through BallScheme::relink_parses with per-verifier
// LinkState — stable class ids keep carried-forward parses comparable with
// fresh ones — falling back to a full link_parses for schemes without the
// hook; (c) resolves the dirty-center set through the reverse-ball index
// (DirtyIndex, delta.hpp — ball symmetry served by the geometry atlas) and
// sweeps only those over the pool, splicing carried-forward verdicts for
// the clean centers.  Verdicts are bit-identical to a from-scratch run at
// every thread count; DeltaStats is the observable proof that an empty
// delta does no stage work at all.  pls::core::attack feeds its hill-climb
// steps through this path.
//
// VerificationSession (session.hpp) is a batch-of-one over this class.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "obs/metrics.hpp"
#include "radius/atlas.hpp"
#include "radius/delta.hpp"
#include "radius/engine_t.hpp"
#include "util/thread_pool.hpp"

namespace pls::radius {

/// Keeps an externally owned buffer alive: labelings whose certificates
/// alias caller-managed memory (util::BitString::aliasing — the serving
/// tier's zero-copy wire path) pass one of these alongside, and the
/// verifier parks it in the ParsedLabeling half that parsed the labeling.
/// The pin is what makes the pipelining window safe: while the sweep of
/// labeling i overlaps the parse of labeling i+1, BOTH halves hold their
/// own buffer's pin, so releasing a request buffer early cannot yank bytes
/// out from under an in-flight stage.  The engine itself never reads a
/// labeling's raw certificate bytes after the run that verified it returns
/// (parse_cert outputs are owned copies; the delta path re-reads only the
/// NEXT labeling's touched certs), so callers may mutate or free a pinned
/// buffer once their run call returns — dropping the pin is then the
/// verifier's bookkeeping, not a correctness event.
using BufferPin = std::shared_ptr<const void>;

struct BatchOptions {
  /// Execution slots; 0 means util::ThreadPool::hardware_threads().
  /// 1 runs strictly sequentially on the calling thread (no worker threads).
  unsigned threads = 0;
  /// Geometry atlas to read/populate; null creates a private atlas with
  /// default AtlasOptions.  Share one atlas across verifiers to share
  /// geometry (it is thread-safe and keyed by graph epoch).
  std::shared_ptr<GeometryAtlas> atlas;
  /// Stage-latency sink (docs/metrics-schema.md: verify.* / delta.*
  /// histograms).  Null — the default — records nothing and reads no clock
  /// on any hot path; histogram handles are resolved once per name at
  /// construction, never per labeling.  Must outlive the verifier.
  obs::MetricsRegistry* metrics = nullptr;
  /// Stage-3 scheduler.  kStealing (the default) has the sweep claim
  /// fixed-size center chunks from a shared cursor
  /// (ThreadPool::post_range_stealing), so on skewed instances a slot that
  /// drew light balls takes load off the fat region instead of idling
  /// behind the static split.  kStatic keeps the contiguous deterministic
  /// partition (one slice per slot).  Verdict bytes are per-center disjoint
  /// and per-worker scratch is keyed by execution slot, so verdicts are
  /// bit-identical across both modes at every thread count.
  enum class SweepMode { kStealing, kStatic };
  SweepMode sweep = SweepMode::kStealing;
};

class BatchVerifier {
 public:
  /// Pins (scheme, cfg, t).  Both must outlive the verifier.  Requires
  /// t >= 1, and t >= scheme.radius() for ball schemes.
  BatchVerifier(const core::Scheme& scheme, const local::Configuration& cfg,
                unsigned t, BatchOptions options = {});

  /// Verifies every labeling of the span, pipelined as described above.
  /// verdicts[i] is bit-identical to a fresh per-labeling session (and to
  /// run_verifier_t_baseline) at every thread count.  `pins[i]` (optional,
  /// may be shorter than `labelings` or empty) keeps labeling i's aliased
  /// buffer alive through its parse + sweep window; see BufferPin.
  std::vector<core::Verdict> run(std::span<const core::Labeling> labelings,
                                 std::span<const BufferPin> pins = {});

  /// Batch of one; the geometry atlas still persists across calls, which is
  /// what the adversary's hill-climb loop amortizes.
  core::Verdict run_one(const core::Labeling& labeling,
                        BufferPin pin = nullptr);

  /// The delta front door.  Verifies `next` given that it differs from the
  /// *resident* labeling — the one the last successful run()/run_one()/
  /// run_delta() call verified (for run(span), the span's last element) —
  /// at most on delta.touched (an over-approximation is fine; see
  /// LabelingDelta).  Requires such a resident run; verdicts are
  /// bit-identical to run_one(next) at every thread count.  An empty
  /// mutation set does no parse, no link, and no sweep work (delta_stats()).
  core::Verdict run_delta(const core::Labeling& next,
                          const LabelingDelta& delta,
                          BufferPin pin = nullptr);

  /// Convenience for callers that did not track their mutations: diffs the
  /// two labelings (O(n) certificate compares — the hill-climb passes an
  /// explicit delta instead) and applies the delta.  `prev` must be the
  /// resident labeling.
  core::Verdict run_delta(const core::Labeling& prev,
                          const core::Labeling& next);

  /// Whether a resident labeling exists for run_delta to build on (set by
  /// every successful run, cleared while a run is in flight or after one
  /// throws).
  bool has_resident() const noexcept { return resident_valid_; }

  /// Cooperative cancellation: while set, every run checks the token at
  /// per-labeling boundaries (and, under the kStealing sweep, at every
  /// chunk-claim boundary inside the sweep via ThreadPool's
  /// RangeOptions::cancel; kStatic slices finish their slice first) and
  /// abandons the run with util::CancelledError.  An abandoned run leaves
  /// the verifier exactly like any other throwing run: no resident state
  /// (has_resident() false) and every buffer rebuilt from scratch by the
  /// next run, whose verdicts are therefore still bit-exact.  The token is
  /// read per run — the serving tier re-arms one token per request.  Null
  /// (the default) disables all checks.  Must outlive the runs it governs.
  void set_cancel(const util::CancelToken* cancel) noexcept {
    cancel_ = cancel;
  }

  /// Cumulative work counters of the delta path.
  const DeltaStats& delta_stats() const noexcept { return delta_stats_; }

  unsigned radius() const noexcept { return t_; }
  unsigned threads() const noexcept { return threads_; }
  const GeometryAtlas& atlas() const noexcept { return *atlas_; }
  const std::shared_ptr<GeometryAtlas>& atlas_ptr() const noexcept {
    return atlas_;
  }

 private:
  // Thread contract, in the terms the thread-safety analysis enforces
  // elsewhere: BatchVerifier is externally synchronized — one caller thread
  // drives run/run_one/run_delta, so no member below carries a capability
  // (there is deliberately no mutex to guard them with).  The only
  // cross-thread sharing is the posted sweep job: workers read `parsed_`,
  // `slots_` (their own slot), and the labeling, and write disjoint bytes of
  // an `accept_` half; ThreadPool's job hand-off (its annotated mutex,
  // util/thread_pool.hpp) is the happens-before edge in both directions.
  // The shared GeometryAtlas *is* internally locked and annotated
  // (atlas.hpp); everything else here must stay caller-thread-only.

  /// Stage-2 output for one labeling: the per-node parse-once cache, plus
  /// the pin of the buffer its labeling's certificates may alias.  The pin
  /// lives exactly as long as the half could be read by an in-flight stage:
  /// installed when the half is (re)parsed, dropped when the half is next
  /// rebuilt (the parses themselves are owned, so holding it longer is
  /// bookkeeping, not correctness — see BufferPin).
  struct ParsedLabeling {
    std::vector<std::unique_ptr<ParsedCert>> storage;
    std::vector<const ParsedCert*> view;
    std::vector<BufferPin> pins;
  };

  void parse_link(const core::Labeling& labeling, ParsedLabeling& out,
                  bool parallel);
  /// The one stage-3 per-center verify body, shared by the full sweep and
  /// the dirty re-sweep: slot i of the returned range job verifies center
  /// centers[i] (or center i itself when `centers` is empty — the full
  /// sweep) and writes accept[center].  The captured references must
  /// outlive the job's execution.
  util::ThreadPool::RangeFn sweep_fn(const core::Labeling& labeling,
                                     const ParsedLabeling& parsed,
                                     std::span<const graph::NodeIndex> centers,
                                     std::vector<std::uint8_t>& accept);
  /// Posts the stage-3 sweep of `labeling` over the pool and returns; the
  /// caller overlaps stage 2 of the next labeling, then calls
  /// pool_->finish_range().
  void post_sweep(const core::Labeling& labeling, const ParsedLabeling& parsed,
                  std::vector<std::uint8_t>& accept);
  /// Stage 3 of the delta path: re-verifies exactly `dirty` (sorted center
  /// list) against `labeling`, writing into the resident accept bytes;
  /// blocking (no pipelining — delta streams are adaptive).
  void sweep_dirty(const core::Labeling& labeling,
                   const ParsedLabeling& parsed,
                   std::span<const graph::NodeIndex> dirty,
                   std::vector<std::uint8_t>& accept);
  /// Publishes the completed stealing job's RangeStats (steal/chunk counts,
  /// per-slot busy time) to the metrics sinks; no-op under kStatic or with
  /// no registry.  Call after finish_range()/for_range_stealing returns.
  void record_sweep_stats();

  const core::Scheme& scheme_;
  const BallScheme* ball_scheme_;  // nullptr for plain 1-round schemes
  const local::Configuration& cfg_;
  unsigned t_;
  unsigned threads_;
  BatchOptions::SweepMode sweep_mode_;
  std::shared_ptr<GeometryAtlas> atlas_;
  std::unique_ptr<util::ThreadPool> pool_;

  struct Slot {
    BallView view;
    std::vector<local::NeighborView> views;  // plain 1-round scratch
  };
  std::vector<Slot> slots_;

  // The pipeline's double buffers, members so their capacity persists
  // across run()/run_one() calls — the adversary's hill-climb calls
  // run_one thousands of times per attack and must not reallocate per
  // candidate.  During run(), no labeling's parse outlives its iteration:
  // each buffer is rebuilt (clear + resize) before its labeling's sweep is
  // posted.  After a successful run, the LAST labeling's half stays behind
  // as the *resident* state (resident_ names it) — the carried-forward
  // parses and verdicts the delta path splices from and mutates in place.
  ParsedLabeling parsed_[2];
  std::vector<std::uint8_t> accept_[2];
  unsigned resident_ = 0;        ///< buffer half holding the resident state
  bool resident_valid_ = false;  ///< a resident labeling exists for deltas

  // Delta-path machinery: the reverse-ball index and the scheme's
  // persistent interning state (null when the scheme has no incremental
  // link — delta runs then fall back to a full link_parses).
  DirtyIndex dirty_index_;
  std::unique_ptr<LinkState> link_state_;
  DeltaStats delta_stats_;

  // Cooperative cancellation token (see set_cancel); caller-thread-only
  // like every other member — the pool reads it through RangeOptions.
  const util::CancelToken* cancel_ = nullptr;

  // Stage-latency histograms, resolved once from BatchOptions::metrics (all
  // null when no registry was supplied — ScopedTimer then reads no clock).
  struct StageMetrics {
    obs::Counter* labelings = nullptr;    ///< verify.labelings
    obs::Histogram* e2e = nullptr;        ///< verify.e2e_ns
    obs::Histogram* parse = nullptr;      ///< verify.parse_link_ns
    obs::Histogram* sweep = nullptr;      ///< verify.sweep_window_ns
    obs::Histogram* delta_e2e = nullptr;  ///< delta.e2e_ns
    obs::Histogram* delta_parse = nullptr;    ///< delta.reparse_link_ns
    obs::Histogram* delta_collect = nullptr;  ///< delta.collect_ns
    obs::Histogram* delta_sweep = nullptr;    ///< delta.resweep_ns
    obs::Counter* sweep_chunks = nullptr;     ///< verify.sweep_chunks
    obs::Counter* sweep_steals = nullptr;     ///< verify.sweep_steals
    obs::Histogram* worker_busy = nullptr;    ///< verify.worker_busy_ns
  };
  StageMetrics metrics_;
};

}  // namespace pls::radius
