// Stages 2+3 of the verification pipeline, and its batch-labeling front end.
//
// The staged pipeline splits a radius-t verification into three separately
// owned stages:
//
//   1. GEOMETRY  — labeling-independent ball CSRs, owned by GeometryAtlas
//                  (atlas.hpp): built once per (graph, t, center), shared
//                  across sessions, thread slots, and t values.
//   2. PARSE/LINK — labeling-dependent, center-independent: each node's
//                  certificate parsed exactly once per labeling
//                  (BallScheme::parse_cert), then the single-threaded link
//                  phase interns repeated payloads (link_parses).
//   3. SWEEP     — per-center verify_ball over geometry bound to the
//                  labeling, fanned out over util::ThreadPool with the
//                  static deterministic partition.
//
// BatchVerifier pins one (scheme, configuration, t) and verifies any number
// of labelings against it.  For a batch, the stages overlap: while the pool
// sweeps labeling i, the calling thread (slice 0 of the posted range is
// deferred, ThreadPool::post_range) parses and links labeling i+1 into the
// other half of a double buffer.  Verdicts are bit-identical to per-labeling
// sessions at every thread count — parse results are per-node and
// scheduling-independent, the link phase is deterministic, and each verdict
// depends only on its own labeling's stage-2 output — so the overlap is a
// pure wall-clock win.  threads = 1 degenerates to the strictly sequential
// parse -> link -> sweep per labeling, spawning no threads.
//
// VerificationSession (session.hpp) is a batch-of-one over this class;
// pls::core::attack hill-climbs through run_one with a per-attack atlas.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "radius/atlas.hpp"
#include "radius/engine_t.hpp"
#include "util/thread_pool.hpp"

namespace pls::radius {

struct BatchOptions {
  /// Execution slots; 0 means util::ThreadPool::hardware_threads().
  /// 1 runs strictly sequentially on the calling thread (no worker threads).
  unsigned threads = 0;
  /// Geometry atlas to read/populate; null creates a private atlas with
  /// default AtlasOptions.  Share one atlas across verifiers to share
  /// geometry (it is thread-safe and keyed by graph epoch).
  std::shared_ptr<GeometryAtlas> atlas;
};

class BatchVerifier {
 public:
  /// Pins (scheme, cfg, t).  Both must outlive the verifier.  Requires
  /// t >= 1, and t >= scheme.radius() for ball schemes.
  BatchVerifier(const core::Scheme& scheme, const local::Configuration& cfg,
                unsigned t, BatchOptions options = {});

  /// Verifies every labeling of the span, pipelined as described above.
  /// verdicts[i] is bit-identical to a fresh per-labeling session (and to
  /// run_verifier_t_baseline) at every thread count.
  std::vector<core::Verdict> run(std::span<const core::Labeling> labelings);

  /// Batch of one; the geometry atlas still persists across calls, which is
  /// what the adversary's hill-climb loop amortizes.
  core::Verdict run_one(const core::Labeling& labeling);

  unsigned radius() const noexcept { return t_; }
  unsigned threads() const noexcept { return threads_; }
  const GeometryAtlas& atlas() const noexcept { return *atlas_; }
  const std::shared_ptr<GeometryAtlas>& atlas_ptr() const noexcept {
    return atlas_;
  }

 private:
  /// Stage-2 output for one labeling: the per-node parse-once cache.
  struct ParsedLabeling {
    std::vector<std::unique_ptr<ParsedCert>> storage;
    std::vector<const ParsedCert*> view;
  };

  void parse_link(const core::Labeling& labeling, ParsedLabeling& out,
                  bool parallel);
  /// Posts the stage-3 sweep of `labeling` over the pool and returns; the
  /// caller overlaps stage 2 of the next labeling, then calls
  /// pool_->finish_range().
  void post_sweep(const core::Labeling& labeling, const ParsedLabeling& parsed,
                  std::vector<std::uint8_t>& accept);

  const core::Scheme& scheme_;
  const BallScheme* ball_scheme_;  // nullptr for plain 1-round schemes
  const local::Configuration& cfg_;
  unsigned t_;
  unsigned threads_;
  std::shared_ptr<GeometryAtlas> atlas_;
  std::unique_ptr<util::ThreadPool> pool_;

  struct Slot {
    BallView view;
    std::vector<local::NeighborView> views;  // plain 1-round scratch
  };
  std::vector<Slot> slots_;

  // The pipeline's double buffers, members so their capacity persists
  // across run()/run_one() calls — the adversary's hill-climb calls
  // run_one thousands of times per attack and must not reallocate per
  // candidate.  No labeling's parse outlives its iteration: each buffer is
  // rebuilt (clear + resize) before its labeling's sweep is posted.
  ParsedLabeling parsed_[2];
  std::vector<std::uint8_t> accept_[2];
};

}  // namespace pls::radius
