// Parse-once, parallel radius-t verification sessions.
//
// The naive radius-t sweep (run_verifier_t_baseline) re-parses every ball
// certificate at every center: O(n * |ball|) parse work, which at t = 8 on a
// few thousand nodes dwarfs the actual decoding.  A VerificationSession
// pins one (scheme, configuration, radius) triple and amortizes everything
// that is shared across the sweep — and across repeated sweeps, which is how
// the adversary's hill-climb uses it:
//
//   * parse-once: if the scheme implements BallScheme::parse_cert, each
//     node's certificate is parsed exactly once per labeling into a shared
//     per-node cache that every verify_ball call reads through
//     RadiusContext::parsed;
//   * ball reuse: each execution slot owns one BallBuilder whose
//     epoch-stamped scratch, member arrays and CSR buffers persist across
//     the adjacent centers of its slice (ball.hpp) — no per-ball allocation
//     or clearing, and the merged BFS+CSR pass touches each ball edge once;
//   * parallelism: per-node verdicts are independent, so the sweep fans out
//     over a util::ThreadPool with a static, deterministic partition.
//     Verdicts are bit-identical at every thread count — each slot writes
//     only its own slice of the accept buffer, and no verdict depends on
//     any other.  threads = 1 is the sequential fallback: no worker threads
//     are spawned and the traversal order equals the plain loop's.
//
// Plain 1-round schemes run through the session too (parallel over nodes,
// per-slot view scratch, same per-node routine as the 1-round engine), so
// run_verifier_t keeps its t = 1 bit-for-bit guarantee.
#pragma once

#include <memory>
#include <vector>

#include "radius/engine_t.hpp"
#include "util/thread_pool.hpp"

namespace pls::radius {

struct SessionOptions {
  /// Execution slots; 0 means util::ThreadPool::hardware_threads().
  /// 1 runs sequentially on the calling thread (no pool, no threads).
  unsigned threads = 0;
};

class VerificationSession {
 public:
  /// Pins (scheme, cfg, t).  Both must outlive the session.  Requires
  /// t >= 1, and t >= scheme.radius() for ball schemes.
  VerificationSession(const core::Scheme& scheme,
                      const local::Configuration& cfg, unsigned t,
                      SessionOptions options = {});

  /// Verifies one labeling; callable repeatedly with different labelings
  /// (the per-node parse cache is rebuilt per call, the ball/thread
  /// machinery is reused).  The verdict is independent of the thread count.
  core::Verdict run(const core::Labeling& labeling);

  unsigned radius() const noexcept { return t_; }
  unsigned threads() const noexcept { return threads_; }

 private:
  const core::Scheme& scheme_;
  const BallScheme* ball_scheme_;  // nullptr for plain 1-round schemes
  const local::Configuration& cfg_;
  unsigned t_;
  unsigned threads_;
  std::unique_ptr<util::ThreadPool> pool_;  // null when threads_ == 1

  struct Slot {
    BallBuilder builder;
    std::vector<local::NeighborView> views;
  };
  std::vector<Slot> slots_;

  // Parse-once cache, rebuilt by run(): owning storage plus the raw-pointer
  // view handed to RadiusContext (nullptr entry = malformed certificate).
  std::vector<std::unique_ptr<ParsedCert>> parsed_storage_;
  std::vector<const ParsedCert*> parsed_;

  std::vector<std::uint8_t> accept_;  // per-node verdicts (disjoint writes)
};

}  // namespace pls::radius
