// Parse-once, parallel radius-t verification sessions.
//
// A VerificationSession is the single-labeling entry point to the staged
// verification pipeline (Geometry -> Parse/Link -> Sweep, batch.hpp): it
// pins one (scheme, configuration, radius) triple and verifies one labeling
// per run() call, as a batch of one over BatchVerifier.  Everything shared
// across repeated runs is amortized:
//
//   * geometry: ball CSRs live in the session's GeometryAtlas (pass one in
//     through SessionOptions::atlas to share across sessions), so repeated
//     run() calls — the adversary's hill-climb — never rebuild a ball;
//   * parse-once: if the scheme implements BallScheme::parse_cert, each
//     node's certificate is parsed exactly once per labeling into a shared
//     per-node cache that every verify_ball call reads through
//     RadiusContext::parsed;
//   * parallelism: per-node verdicts are independent, so the sweep fans out
//     over a util::ThreadPool with a static, deterministic partition.
//     Verdicts are bit-identical at every thread count; threads = 1 is the
//     sequential fallback (no worker threads are spawned).
//
// Plain 1-round schemes run through the session too (parallel over nodes,
// per-slot view scratch, same per-node routine as the 1-round engine), so
// run_verifier_t keeps its t = 1 bit-for-bit guarantee.  Callers sweeping
// many labelings at once should hold a BatchVerifier directly and get the
// parse/sweep overlap on top.
#pragma once

#include "radius/batch.hpp"

namespace pls::radius {

/// Session construction options; identical to the batch verifier's.
using SessionOptions = BatchOptions;

class VerificationSession {
 public:
  /// Pins (scheme, cfg, t).  Both must outlive the session.  Requires
  /// t >= 1, and t >= scheme.radius() for ball schemes.
  VerificationSession(const core::Scheme& scheme,
                      const local::Configuration& cfg, unsigned t,
                      SessionOptions options = {})
      : batch_(scheme, cfg, t, std::move(options)) {}

  /// Verifies one labeling; callable repeatedly with different labelings
  /// (the per-node parse cache is rebuilt per call, the geometry and thread
  /// machinery are reused).  The verdict is independent of the thread count.
  core::Verdict run(const core::Labeling& labeling) {
    return batch_.run_one(labeling);
  }

  unsigned radius() const noexcept { return batch_.radius(); }
  unsigned threads() const noexcept { return batch_.threads(); }
  const GeometryAtlas& atlas() const noexcept { return batch_.atlas(); }

 private:
  BatchVerifier batch_;
};

}  // namespace pls::radius
