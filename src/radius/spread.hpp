// Certificate spreading: a mechanical 1-round scheme -> t-PLS transform.
//
// The classic 1-round schemes are redundant: large certificate fields (the
// root id of the spanning-tree schemes, for instance) are *identical* at
// every node, yet each node stores a full copy.  Spreading shards that
// shared part across space and lets the radius-t verifier reassemble it:
//
//   * The marker computes the base scheme's certificates, factors out the
//     longest common bit-prefix X of all of them, and cuts X into k
//     interleaved chunks (bit i of X goes to chunk i mod k).
//   * Each node stores one chunk — the one indexed by its BFS distance from
//     a per-component landmark (the minimum-id node), mod k — plus its own
//     residual suffix.  With k = min(floor(t/2)+1, eccentricity+1), every
//     radius-t ball provably contains all k chunk classes: either the ball
//     holds k consecutive BFS layers along the path towards the landmark, or
//     it reaches the landmark's neighborhood, which realizes layers 0..k-1.
//   * The verifier checks chunk-class agreement inside its ball, that
//     adjacent residues are cyclically consecutive, reassembles X, prepends
//     it to the suffixes of its 1-hop neighborhood, and runs the base
//     decoder on the reconstructed certificates.
//
// Certificates shrink from |X| + |suffix| to |X|/k + |suffix| + O(1): the
// size/t tradeoff of the t-PLS literature, measured in
// bench_radius_tradeoff.
//
// Wire format of a spread certificate (parse order):
//   [6 bits: k] [bit_width(k-1) bits: residue j] [varint: suffix bit-length]
//   [suffix bits] [remaining bits: chunk j of X]
#pragma once

#include <string>

#include "radius/engine_t.hpp"

namespace pls::radius {

class SpreadScheme final : public BallScheme {
 public:
  /// Wraps `base` (which must outlive this scheme) as a radius-t scheme.
  /// Requires 1 <= t <= 63 (k must fit the 6-bit chunk-count field).
  SpreadScheme(const core::Scheme& base, unsigned t);

  std::string_view name() const noexcept override { return name_; }
  const core::Language& language() const noexcept override {
    return base_.language();
  }
  local::Visibility visibility() const noexcept override {
    return base_.visibility();
  }
  unsigned radius() const noexcept override { return t_; }

  core::Labeling mark(const local::Configuration& cfg) const override;
  bool verify_ball(const RadiusContext& ctx) const override;
  std::size_t proof_size_bound(std::size_t n,
                               std::size_t state_bits) const override;

  /// Parse-once support (session.hpp): the wire format is parsed per node
  /// exactly once per labeling; verify_ball reads the shared cache and only
  /// falls back to parsing locally when run without a session cache.
  bool has_cert_parser() const noexcept override { return true; }
  std::unique_ptr<ParsedCert> parse_cert(
      const local::Certificate& cert) const override;

  /// Interns the parsed chunk payloads into dense class ids (equal id <=>
  /// bit-identical chunk), so verify_ball's chunk-agreement check compares
  /// ids instead of BitStrings on the session hot path.
  void link_parses(
      std::span<const std::unique_ptr<ParsedCert>> parsed) const override;

  /// Incremental link (the delta path): the interning table persists in the
  /// verifier's LinkState, so relinking a mutated node hands out ids stable
  /// against every carried-forward parse.
  std::unique_ptr<LinkState> make_link_state() const override;
  void link_parses_stateful(
      LinkState& state,
      std::span<const std::unique_ptr<ParsedCert>> parsed) const override;
  void relink_parses(
      LinkState& state, std::span<const std::unique_ptr<ParsedCert>> parsed,
      std::span<const graph::NodeIndex> touched) const override;

  /// The splice attack suite (splice.hpp): region-spliced prefixes, rotated
  /// residues, crossed chunks — the reassembly-specific failure modes.
  std::vector<SchemeAttack> adversarial_labelings(
      const local::Configuration& cfg, util::Rng& rng) const override;

  const core::Scheme& base() const noexcept { return base_; }

 private:
  const core::Scheme& base_;
  unsigned t_;
  std::string name_;
};

}  // namespace pls::radius
