#include "radius/atlas.hpp"

#include "obs/trace.hpp"
#include "util/assert.hpp"
#include "util/failpoint.hpp"

namespace pls::radius {

GeometryBlock::GeometryBlock(const graph::Graph& g,
                             graph::NodeIndex first_center,
                             graph::NodeIndex end_center, unsigned t)
    : first_(first_center), end_(end_center) {
  PLS_REQUIRE(first_center < end_center);
  PLS_REQUIRE(end_center <= g.n());
  graph::VisitEpochSet scratch;
  std::vector<graph::NodeIndex> frontier;
  for (graph::NodeIndex c = first_center; c < end_center; ++c)
    store_.build_center(g, c, t, scratch, frontier);
  store_.shrink_to_fit();
}

GeometryAtlas::GeometryAtlas(AtlasOptions options)
    : options_(options),
      sketch_(std::size_t{1} << 14, options.sketch_sample_period) {
  PLS_REQUIRE(options_.block_centers >= 1);
  PLS_REQUIRE(options_.turnover_period >= 1);
  PLS_REQUIRE(options_.sketch_sample_period >= 1);
}

std::uint64_t GeometryAtlas::key_hash(const Key& key) noexcept {
  // Distinct multipliers keep (epoch, index, t) triples from aliasing under
  // xor; the sketch's own splitmix finalizer does the real mixing.
  return key.graph_epoch * 0x9E3779B97F4A7C15ull ^
         std::uint64_t{key.block_index} * 0xC2B2AE3D27D4EB4Full ^
         std::uint64_t{key.t} * 0x165667B19E3779F9ull;
}

std::shared_ptr<const GeometryBlock> GeometryAtlas::block(
    const graph::Graph& g, unsigned t, graph::NodeIndex center) {
  PLS_REQUIRE(t >= 1);
  PLS_REQUIRE(center < g.n());
  // The lookup span covers the whole resolution — including any wait on an
  // in-flight build and a nested "atlas.build" on the miss path — because
  // that is the latency a sweep slot actually pays at a block boundary.
  PLS_TRACE_SPAN("atlas.lookup", center);
  const std::uint32_t index = center / options_.block_centers;
  const Key wanted{g.epoch(), index, t};

  util::MutexLock lock(mu_);
  // TinyLFU sees every lookup, hit or miss: admission compares the
  // contender's access frequency against victims', and both sides earn
  // their counts here.  (kScanResistant never reads the sketch; skipping
  // the writes keeps that policy's lock hold time unchanged.)
  if (options_.admission == Admission::kTinyLFU) sketch_.record(key_hash(wanted));
  while (true) {
    // Any resident block over the same centers with radius >= t serves the
    // lookup (smaller radii are prefixes); the map order makes the smallest
    // such radius the lower bound.
    auto it = entries_.lower_bound(wanted);
    if (it != entries_.end() && it->first.graph_epoch == wanted.graph_epoch &&
        it->first.block_index == wanted.block_index) {
      if (it->second->block == nullptr) {
        // In flight on another thread.  Hold the slot itself: even if the
        // finished block is bypassed by the budget (and its entry erased),
        // the builder hands it to us through the slot — in-flight dedup
        // must never degenerate into serialized rebuilds of one block.
        const std::shared_ptr<Slot> pending = it->second;
        while (pending->block == nullptr && pending->error == nullptr)
          built_cv_.wait(lock);
        if (pending->block != nullptr) {
          ++stats_.hits;
          return pending->block;
        }
        // The build failed: the builder published its exception through the
        // slot and erased the entry, so the key stays rebuildable — but THIS
        // wave of deduped callers all fail with the build's cause rather
        // than queueing up to repeat a build that just proved it can throw.
        std::rethrow_exception(pending->error);
      }
      ++stats_.hits;
      touch_locked(*it->second, it->first);
      // A prefix-serve hit is a use of the RESIDENT block: credit its key
      // too, or a larger-radius block serving smaller-t traffic would look
      // cold to admission despite carrying all of it.
      if (options_.admission == Admission::kTinyLFU && it->first.t != wanted.t)
        sketch_.record(key_hash(it->first));
      return it->second->block;
    }

    // Miss: claim the build, construct outside the lock.
    ++stats_.misses;
    auto [slot_it, inserted] =
        entries_.emplace(wanted, std::make_shared<Slot>());
    PLS_ASSERT(inserted);
    lock.unlock();

    const auto first =
        static_cast<graph::NodeIndex>(index * options_.block_centers);
    const auto end = static_cast<graph::NodeIndex>(
        std::min<std::size_t>(std::size_t{first} + options_.block_centers,
                              g.n()));
    std::shared_ptr<const GeometryBlock> built;
    try {
      PLS_TRACE_SPAN("atlas.build", index);
      // Chaos site: Action::kBadAlloc simulates the build OOMing — the
      // waiter-wakeup contract below is what the chaos suite regresses.
      PLS_FAILPOINT("radius.atlas.build");
      built = std::make_shared<const GeometryBlock>(g, first, end, t);
    } catch (...) {
      lock.lock();
      // Wake every deduped waiter WITH the failure (slot outlives the map
      // entry), and erase the entry so a later lookup may rebuild.
      slot_it->second->error = std::current_exception();
      entries_.erase(slot_it);
      built_cv_.notify_all();
      throw;
    }

    lock.lock();
    // Publish to any waiters first (through the shared slot), then decide
    // residency.  Admission is decided BEFORE retiring the smaller-radius
    // blocks this one supersedes: a bypassed contender must not evict
    // anything.
    slot_it->second->block = built;
    const std::size_t reclaimable = reclaimable_prefix_bytes_locked(wanted);
    const bool admit =
        options_.admission == Admission::kTinyLFU
            ? admit_tinylfu_locked(wanted, built->bytes(), reclaimable)
            : admit_locked(built->bytes(), reclaimable);
    if (admit) {
      retire_prefixes_locked(wanted);
      evict_for_locked(built->bytes());
      lru_.push_front(wanted);
      slot_it->second->lru = lru_.begin();
      charge_locked(wanted.t, built->bytes());
    } else {
      // Scan guard: hand the pinned block to the caller (and the waiters)
      // without caching it, so a cyclic sweep larger than the budget keeps
      // a stable resident subset instead of churning everything to a 0%
      // hit rate.
      entries_.erase(slot_it);
      ++stats_.bypassed;
    }
    built_cv_.notify_all();
    return built;
  }
}

void GeometryAtlas::touch_locked(Slot& slot, const Key& key) {
  (void)key;
  lru_.splice(lru_.begin(), lru_, slot.lru);
}

std::size_t GeometryAtlas::reclaimable_prefix_bytes_locked(
    const Key& key) const {
  std::size_t bytes = 0;
  auto it = entries_.lower_bound(Key{key.graph_epoch, key.block_index, 0});
  for (; it != entries_.end() && it->first.graph_epoch == key.graph_epoch &&
         it->first.block_index == key.block_index && it->first.t < key.t;
       ++it)
    if (it->second->block != nullptr) bytes += it->second->block->bytes();
  return bytes;
}

void GeometryAtlas::retire_prefixes_locked(const Key& key) {
  // A radius-t block strictly dominates every resident smaller-radius block
  // over the same centers (they are prefixes of it), so admitting the new
  // one must not leave the duplicates charged against the budget.
  auto it = entries_.lower_bound(Key{key.graph_epoch, key.block_index, 0});
  while (it != entries_.end() && it->first.graph_epoch == key.graph_epoch &&
         it->first.block_index == key.block_index && it->first.t < key.t) {
    if (it->second->block == nullptr) {  // another thread's in-flight build
      ++it;
      continue;
    }
    discharge_locked(it->first.t, it->second->block->bytes());
    lru_.erase(it->second->lru);
    it = entries_.erase(it);
    ++stats_.evictions;
  }
}

bool GeometryAtlas::admit_locked(std::size_t needed,
                                 std::size_t reclaimable) {
  if (needed > options_.byte_budget) return false;  // can never fit
  if (stats_.bytes_in_use - reclaimable + needed <= options_.byte_budget)
    return true;
  // The cache is full.  Only every turnover_period-th contender may
  // displace residents (LRU victims) — the rest bypass the cache.
  if (++denials_since_turnover_ < options_.turnover_period) return false;
  denials_since_turnover_ = 0;
  return true;
}

bool GeometryAtlas::admit_tinylfu_locked(const Key& key, std::size_t needed,
                                         std::size_t reclaimable) {
  if (needed > options_.byte_budget) return false;  // can never fit
  const std::size_t in_use = stats_.bytes_in_use - reclaimable;
  if (in_use + needed <= options_.byte_budget) return true;
  // Full: the contender must out-score every LRU victim it needs to
  // displace.  Walk the same back-to-front order evict_for_locked pops in,
  // accumulating freeable bytes; the first victim at least as popular as
  // the contender vetoes the whole admission (evicting a hotter block for
  // a colder one can only lower hit rate).
  const std::uint32_t contender = sketch_.estimate(key_hash(key));
  std::size_t freeable = 0;
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    if (in_use + needed <= options_.byte_budget + freeable) break;
    // Smaller-radius blocks over the contender's own centers are already
    // counted as reclaimable (retired on admit, not LRU-evicted).
    if (it->graph_epoch == key.graph_epoch &&
        it->block_index == key.block_index && it->t < key.t)
      continue;
    if (sketch_.estimate(key_hash(*it)) >= contender) {
      ++stats_.sketch_rejects;
      return false;
    }
    const auto entry = entries_.find(*it);
    PLS_ASSERT(entry != entries_.end() && entry->second->block != nullptr);
    freeable += entry->second->block->bytes();
  }
  return in_use + needed <= options_.byte_budget + freeable;
}

void GeometryAtlas::evict_for_locked(std::size_t needed) {
  PLS_TRACE_SPAN("atlas.evict", needed);
  while (stats_.bytes_in_use + needed > options_.byte_budget &&
         !lru_.empty()) {
    const Key victim = lru_.back();
    lru_.pop_back();
    auto it = entries_.find(victim);
    PLS_ASSERT(it != entries_.end() && it->second->block != nullptr);
    discharge_locked(victim.t, it->second->block->bytes());
    entries_.erase(it);  // holders' shared_ptrs keep the block alive
    ++stats_.evictions;
  }
  PLS_ASSERT(stats_.bytes_in_use + needed <= options_.byte_budget);
}

void GeometryAtlas::charge_locked(unsigned t, std::size_t bytes) {
  stats_.bytes_in_use += bytes;
  stats_.peak_bytes = std::max(stats_.peak_bytes, stats_.bytes_in_use);
  auto& rb = stats_.by_radius[t];
  rb.bytes_in_use += bytes;
  rb.peak_bytes = std::max(rb.peak_bytes, rb.bytes_in_use);
}

void GeometryAtlas::discharge_locked(unsigned t, std::size_t bytes) {
  PLS_ASSERT(stats_.bytes_in_use >= bytes);
  stats_.bytes_in_use -= bytes;
  auto it = stats_.by_radius.find(t);
  PLS_ASSERT(it != stats_.by_radius.end() && it->second.bytes_in_use >= bytes);
  it->second.bytes_in_use -= bytes;
}

AtlasStats GeometryAtlas::stats() const {
  util::MutexLock lock(mu_);
  return stats_;
}

}  // namespace pls::radius
