// Shared link-phase helpers for the spread schemes' parse caches.
//
// Both SpreadScheme and FragmentSpreadScheme implement the link hooks the
// same way: walk the session's per-node parse cache and intern each
// certificate's chunk payload into a dense class id (equal id <=>
// bit-identical chunk), so the per-ball chunk-agreement checks on the verify
// hot path compare ids instead of BitStrings.  The helpers are templated on
// the scheme's ParsedCert subclass, which must expose `wire.chunk` (the
// payload) and `chunk_class` (the slot to fill).
//
// Two variants serve the two pipeline entries:
//
//   * intern_chunk_classes — the stateless full link (BallScheme::
//     link_parses): one throwaway table per labeling, ids dense from 0 in
//     first-encounter order.
//   * ChunkInternState + the stateful pair — the delta path.  The table
//     lives in the verifier (BallScheme::make_link_state) and persists
//     across run_delta calls: a full link resets it (same ids as the
//     stateless variant, bit for bit), an incremental relink re-interns only
//     the touched nodes' payloads against it.  The table is append-only
//     between full links, which is exactly the relink_parses stability
//     contract: an id once handed out always means the same payload, so a
//     dirty ball mixing freshly relinked members with members carried
//     forward from any earlier run still compares classes correctly — in
//     particular a certificate mutated *back* to its previous value gets its
//     previous id again.
//
// Append-only is a leak under an unbounded mutation stream: every novel
// payload mints a new entry and nothing ever retires, even though at most n
// payloads are live (one per resident parse).  relink_chunk_classes therefore
// re-seeds — runs the O(n) stateful full link — once the table exceeds
// kReseedClassMultiple * n.  A full link is the stability contract's epoch
// boundary anyway: it resets the table and re-interns every resident parse in
// one pass, so no comparison ever mixes ids from both sides of the reset.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <unordered_map>

#include "radius/ball.hpp"
#include "radius/engine_t.hpp"
#include "util/assert.hpp"
#include "util/bitstring.hpp"

namespace pls::radius::detail {

/// The spread schemes' per-verifier link state: the chunk-payload interning
/// table shared by both stateful helpers below.
class ChunkInternState final : public LinkState {
 public:
  std::unordered_map<util::BitString, std::uint32_t, util::BitStringHash>
      classes;
};

/// Incremental relinks re-seed the intern table (O(n) full link) once it
/// exceeds this multiple of the resident parse count, bounding a delta
/// stream's memory at ~kReseedClassMultiple live-set sizes of dead ids.
inline constexpr std::size_t kReseedClassMultiple = 4;

template <typename Parsed>
void intern_into(
    std::unordered_map<util::BitString, std::uint32_t, util::BitStringHash>&
        classes,
    const std::unique_ptr<ParsedCert>& p) {
  if (p == nullptr) return;
  auto* sp = static_cast<Parsed*>(p.get());
  // Ids are minted from the table size: past 2^32 entries the cast would
  // wrap and silently alias two distinct payloads — the one failure a
  // verifier must never turn into a wrong verdict.  The re-seed bound keeps
  // real streams far below this; the check makes the contract explicit.
  PLS_ASSERT(classes.size() <=
             std::numeric_limits<std::uint32_t>::max());
  const auto [it, inserted] =
      classes.emplace(sp->wire.chunk, static_cast<std::uint32_t>(classes.size()));
  sp->chunk_class = it->second;
}

template <typename Parsed>
void intern_chunk_classes(
    std::span<const std::unique_ptr<ParsedCert>> parsed) {
  std::unordered_map<util::BitString, std::uint32_t, util::BitStringHash>
      classes;
  for (const std::unique_ptr<ParsedCert>& p : parsed)
    intern_into<Parsed>(classes, p);
}

/// Stateful full link: resets the table, then interns every parse — the
/// observable ids are identical to intern_chunk_classes's.
template <typename Parsed>
void intern_chunk_classes_stateful(
    ChunkInternState& state,
    std::span<const std::unique_ptr<ParsedCert>> parsed) {
  state.classes.clear();
  for (const std::unique_ptr<ParsedCert>& p : parsed)
    intern_into<Parsed>(state.classes, p);
}

/// Incremental relink: re-interns only `touched` entries against the
/// persistent (append-only since the last full link) table, then re-seeds
/// via the stateful full link if the table has outgrown its bound.
template <typename Parsed>
void relink_chunk_classes(ChunkInternState& state,
                          std::span<const std::unique_ptr<ParsedCert>> parsed,
                          std::span<const graph::NodeIndex> touched) {
  for (const graph::NodeIndex v : touched)
    intern_into<Parsed>(state.classes, parsed[v]);
  if (state.classes.size() > kReseedClassMultiple * parsed.size()) {
    intern_chunk_classes_stateful<Parsed>(state, parsed);
    ++state.reseeds;
  }
}

}  // namespace pls::radius::detail
