// Shared link-phase helper for the spread schemes' parse caches.
//
// Both SpreadScheme and FragmentSpreadScheme implement
// BallScheme::link_parses the same way: walk the session's per-node parse
// cache once and intern each certificate's chunk payload into a dense class
// id (equal id <=> bit-identical chunk), so the per-ball chunk-agreement
// checks on the verify hot path compare ids instead of BitStrings.  The
// helper is templated on the scheme's ParsedCert subclass, which must expose
// `wire.chunk` (the payload) and `chunk_class` (the slot to fill).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>

#include "radius/ball.hpp"
#include "util/bitstring.hpp"

namespace pls::radius::detail {

template <typename Parsed>
void intern_chunk_classes(
    std::span<const std::unique_ptr<ParsedCert>> parsed) {
  std::unordered_map<util::BitString, std::uint32_t, util::BitStringHash>
      classes;
  for (const std::unique_ptr<ParsedCert>& p : parsed) {
    if (p == nullptr) continue;
    auto* sp = static_cast<Parsed*>(p.get());
    const auto [it, inserted] = classes.emplace(
        sp->wire.chunk, static_cast<std::uint32_t>(classes.size()));
    sp->chunk_class = it->second;
  }
}

}  // namespace pls::radius::detail
