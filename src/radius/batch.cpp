#include "radius/batch.hpp"

#include "obs/trace.hpp"
#include "pls/engine.hpp"
#include "util/assert.hpp"

namespace pls::radius {

BatchVerifier::BatchVerifier(const core::Scheme& scheme,
                             const local::Configuration& cfg, unsigned t,
                             BatchOptions options)
    : scheme_(scheme),
      ball_scheme_(dynamic_cast<const BallScheme*>(&scheme)),
      cfg_(cfg),
      t_(t),
      threads_(options.threads == 0 ? util::ThreadPool::hardware_threads()
                                    : options.threads),
      sweep_mode_(options.sweep),
      atlas_(options.atlas != nullptr
                 ? std::move(options.atlas)
                 : std::make_shared<GeometryAtlas>()) {
  PLS_REQUIRE(t >= 1);
  if (ball_scheme_ != nullptr) PLS_REQUIRE(t >= ball_scheme_->radius());
  pool_ = std::make_unique<util::ThreadPool>(threads_);
  slots_.resize(threads_);
  // Per-verifier incremental-link state (null = scheme has no relink hook;
  // delta runs then fall back to a full link_parses pass).
  if (ball_scheme_ != nullptr && ball_scheme_->has_cert_parser())
    link_state_ = ball_scheme_->make_link_state();
  if (options.metrics != nullptr) {
    obs::MetricsRegistry& m = *options.metrics;
    metrics_.labelings = &m.counter("verify.labelings");
    metrics_.e2e = &m.histogram("verify.e2e_ns");
    metrics_.parse = &m.histogram("verify.parse_link_ns");
    metrics_.sweep = &m.histogram("verify.sweep_window_ns");
    metrics_.delta_e2e = &m.histogram("delta.e2e_ns");
    metrics_.delta_parse = &m.histogram("delta.reparse_link_ns");
    metrics_.delta_collect = &m.histogram("delta.collect_ns");
    metrics_.delta_sweep = &m.histogram("delta.resweep_ns");
    metrics_.sweep_chunks = &m.counter("verify.sweep_chunks");
    metrics_.sweep_steals = &m.counter("verify.sweep_steals");
    metrics_.worker_busy = &m.histogram("verify.worker_busy_ns");
  }
}

void BatchVerifier::record_sweep_stats() {
  if (sweep_mode_ != BatchOptions::SweepMode::kStealing) return;
  if (metrics_.sweep_chunks == nullptr) return;  // no registry supplied
  const util::RangeStats& stats = pool_->last_range_stats();
  metrics_.sweep_chunks->add(stats.chunks);
  metrics_.sweep_steals->add(stats.steals);
  for (const std::uint64_t busy : stats.worker_busy_ns)
    metrics_.worker_busy->record(busy);
}

void BatchVerifier::parse_link(const core::Labeling& labeling,
                               ParsedLabeling& out, bool parallel) {
  const std::size_t n = cfg_.n();
  out.pins.clear();  // the half's previous labeling is gone either way
  out.storage.clear();
  out.storage.resize(n);
  out.view.assign(n, nullptr);
  const auto parse_slice = [&](unsigned, std::size_t begin, std::size_t end) {
    for (std::size_t v = begin; v < end; ++v) {
      out.storage[v] = ball_scheme_->parse_cert(labeling.certs[v]);
      out.view[v] = out.storage[v].get();
    }
  };
  if (parallel) {
    pool_->for_range(n, parse_slice);
  } else {
    parse_slice(0, 0, n);
  }
  // Link phase: intern payloads repeated across the per-node parses into
  // small dense ids; single-threaded, the sweep workers only read the
  // linked parses.  With incremental-link support the full link goes
  // through the verifier's persistent LinkState (same observable ids), so
  // ANY full run leaves a table a later run_delta can relink against.
  if (link_state_ != nullptr) {
    ball_scheme_->link_parses_stateful(*link_state_, out.storage);
  } else {
    ball_scheme_->link_parses(out.storage);
  }
}

util::ThreadPool::RangeFn BatchVerifier::sweep_fn(
    const core::Labeling& labeling, const ParsedLabeling& parsed,
    std::span<const graph::NodeIndex> centers,
    std::vector<std::uint8_t>& accept) {
  // Empty `centers` = the identity map over [0, n) (the full sweep); a
  // non-empty SORTED list re-sweeps exactly those centers (the delta
  // path).  Sortedness is what keeps the block walk below incremental: a
  // contiguous slice re-requests a block only at block boundaries.
  const auto center_of = [centers](std::size_t i) {
    return centers.empty() ? static_cast<graph::NodeIndex>(i) : centers[i];
  };

  if (ball_scheme_ == nullptr) {
    // Plain 1-round scheme: the shared per-node routine, per-slot scratch.
    return [this, &labeling, &accept, center_of](unsigned worker,
                                                 std::size_t begin,
                                                 std::size_t end) {
      PLS_TRACE_SPAN("sweep.slot", worker);
      std::vector<local::NeighborView>& scratch = slots_[worker].views;
      for (std::size_t i = begin; i < end; ++i) {
        const graph::NodeIndex v = center_of(i);
        accept[v] = core::detail::verify_one_round_at(scheme_, cfg_, labeling,
                                                      v, scratch);
      }
    };
  }

  const std::span<const ParsedCert* const> cache =
      ball_scheme_->has_cert_parser()
          ? std::span<const ParsedCert* const>(parsed.view)
          : std::span<const ParsedCert* const>();
  const unsigned radius = ball_scheme_->radius();
  const local::Visibility mode = scheme_.visibility();
  return [this, &labeling, &accept, center_of, cache, radius, mode](
             unsigned worker, std::size_t begin, std::size_t end) {
    PLS_TRACE_SPAN("sweep.slot", worker);
    const graph::Graph& g = cfg_.graph();
    Slot& slot = slots_[worker];
    // The shared_ptr pins the current block across the slice even if the
    // atlas evicts it meanwhile.
    std::shared_ptr<const GeometryBlock> block;
    for (std::size_t i = begin; i < end; ++i) {
      const graph::NodeIndex v = center_of(i);
      if (block == nullptr || !block->covers(v))
        block = atlas_->block(g, radius, v);
      slot.view.bind(block->ball(v, radius), cfg_, labeling, mode);
      const RadiusContext ctx(slot.view, g.id(v), cfg_.state(v),
                              labeling.certs[v], mode, cfg_.n(), cache);
      accept[v] = ball_scheme_->verify_ball(ctx);
    }
  };
}

void BatchVerifier::post_sweep(const core::Labeling& labeling,
                               const ParsedLabeling& parsed,
                               std::vector<std::uint8_t>& accept) {
  const std::size_t n = cfg_.n();
  accept.assign(n, 0);
  if (sweep_mode_ == BatchOptions::SweepMode::kStealing) {
    // The token rides into the claim loop: an expired request abandons its
    // sweep at the next chunk boundary instead of finishing a labeling
    // nobody is waiting for.  (kStatic has no claim boundaries — there the
    // per-labeling checks in run()/run_delta() are the only ones.)
    pool_->post_range_stealing(n, sweep_fn(labeling, parsed, {}, accept),
                               util::RangeOptions{.cancel = cancel_});
  } else {
    pool_->post_range(n, sweep_fn(labeling, parsed, {}, accept));
  }
}

void BatchVerifier::sweep_dirty(const core::Labeling& labeling,
                                const ParsedLabeling& parsed,
                                std::span<const graph::NodeIndex> dirty,
                                std::vector<std::uint8_t>& accept) {
  PLS_ASSERT(accept.size() == cfg_.n());
  if (dirty.empty()) return;
  if (sweep_mode_ == BatchOptions::SweepMode::kStealing) {
    pool_->for_range_stealing(dirty.size(),
                              sweep_fn(labeling, parsed, dirty, accept),
                              util::RangeOptions{.cancel = cancel_});
    record_sweep_stats();
  } else {
    pool_->for_range(dirty.size(), sweep_fn(labeling, parsed, dirty, accept));
  }
}

std::vector<core::Verdict> BatchVerifier::run(
    std::span<const core::Labeling> labelings,
    std::span<const BufferPin> pins) {
  const std::size_t n = cfg_.n();
  for (const core::Labeling& lab : labelings)
    PLS_REQUIRE(lab.size() == n);
  // Pin of labeling i (nullptr when the caller passed none): parked in the
  // half that parses it so the overlap window holds both buffers alive.
  const auto pin_of = [pins](std::size_t i) {
    return i < pins.size() ? pins[i] : BufferPin();
  };
  const auto install_pin = [this, &pin_of](std::size_t i) {
    ParsedLabeling& half = parsed_[i % 2];
    half.pins.clear();
    if (BufferPin pin = pin_of(i); pin != nullptr)
      half.pins.push_back(std::move(pin));
  };

  std::vector<core::Verdict> verdicts;
  verdicts.reserve(labelings.size());
  if (labelings.empty()) return verdicts;  // resident state untouched

  const bool cached =
      ball_scheme_ != nullptr && ball_scheme_->has_cert_parser();

  // Cancellation observed before any buffer is touched leaves the resident
  // state intact; once past this point an abandoned run clears it like any
  // other throwing run.
  if (cancel_ != nullptr && cancel_->cancelled()) throw util::CancelledError();

  // The buffers are about to be rewritten; should anything below throw, no
  // delta may build on them until a full run completes again.
  resident_valid_ = false;

  // Stage 2 of the first labeling has nothing to overlap with — use the
  // idle pool.  parsed_/accept_ are the double buffers: stage 2 of
  // labeling i+1 fills the half the sweep of labeling i is not reading.
  if (cached) {
    PLS_TRACE_SPAN("parse.link", 0);
    obs::ScopedTimer parse_timer(metrics_.parse);
    parse_link(labelings[0], parsed_[0], /*parallel=*/true);
  }
  install_pin(0);

  if (metrics_.labelings != nullptr) metrics_.labelings->add(labelings.size());
  for (std::size_t i = 0; i < labelings.size(); ++i) {
    // Per-labeling cancellation boundary: the pool is quiescent here (the
    // previous iteration's finish_range completed), so abandoning between
    // labelings unwinds with no job in flight.
    if (cancel_ != nullptr && cancel_->cancelled())
      throw util::CancelledError();
    // verify.e2e_ns: one labeling's wall contribution to the batch — the
    // sweep window (including the overlapped stage-2 work of labeling i+1
    // on the calling thread) plus verdict materialization.
    obs::ScopedTimer e2e_timer(metrics_.e2e);
    {
      // The "sweep.window" span brackets post..finish on the calling
      // thread, so in a trace it structurally contains the "parse.link"
      // span of labeling i+1 — the pipelining overlap made visible.
      PLS_TRACE_SPAN("sweep.window", i);
      obs::ScopedTimer sweep_timer(metrics_.sweep);
      post_sweep(labelings[i], parsed_[i % 2], accept_[i % 2]);
      // Overlap window: the workers are sweeping labeling i (with threads =
      // 1 the sweep is merely deferred — strictly sequential, same
      // verdicts).  A stage-2 throw must not unwind past the posted sweep:
      // the workers are writing into this object's buffers under the
      // caller's feet, so quiesce them first.
      if (cached && i + 1 < labelings.size()) {
        try {
          PLS_TRACE_SPAN("parse.link", i + 1);
          obs::ScopedTimer parse_timer(metrics_.parse);
          parse_link(labelings[i + 1], parsed_[(i + 1) % 2],
                     /*parallel=*/false);
          install_pin(i + 1);
        } catch (...) {
          pool_->finish_range();
          throw;
        }
      }
      pool_->finish_range();
      record_sweep_stats();
    }

    std::vector<bool> bits(n);
    for (std::size_t v = 0; v < n; ++v) bits[v] = accept_[i % 2][v] != 0;
    verdicts.emplace_back(std::move(bits));
  }

  // The last labeling's stage-2 cache and verdict bytes stay behind as the
  // resident state run_delta mutates in place.
  resident_ = static_cast<unsigned>((labelings.size() - 1) % 2);
  resident_valid_ = true;
  return verdicts;
}

core::Verdict BatchVerifier::run_delta(const core::Labeling& next,
                                       const LabelingDelta& delta,
                                       BufferPin pin) {
  const std::size_t n = cfg_.n();
  PLS_REQUIRE(next.size() == n);
  PLS_REQUIRE(resident_valid_);  // a delta needs a full run to build on
  for (const graph::NodeIndex v : delta.touched) PLS_REQUIRE(v < n);
  ++delta_stats_.delta_runs;
  PLS_TRACE_SPAN("delta.run", delta.touched.size());
  obs::ScopedTimer e2e_timer(metrics_.delta_e2e);

  std::vector<std::uint8_t>& accept = accept_[resident_];
  const auto splice_verdict = [&] {
    std::vector<bool> bits(n);
    for (std::size_t v = 0; v < n; ++v) bits[v] = accept[v] != 0;
    return core::Verdict(std::move(bits));
  };

  if (delta.touched.empty()) {
    // Nothing differs from the resident labeling: no parse, no link, no
    // sweep — the verdict is the resident one, re-counted fresh (Verdict
    // caches its rejection count per object, so the splice never carries a
    // stale count).
    ++delta_stats_.empty_runs;
    return splice_verdict();
  }

  // Cancellation observed here — before any mutation — leaves the resident
  // base valid; past this point an abandoned delta invalidates it and the
  // next run must be a full one.
  if (cancel_ != nullptr && cancel_->cancelled()) throw util::CancelledError();

  // The resident buffers are inconsistent while we mutate them; they become
  // a valid delta base again only when this run completes.
  resident_valid_ = false;

  // Stage 2, incremental: re-parse exactly the touched certificates into
  // the resident cache (clean entries carry forward across the labeling
  // boundary), then re-link them — with stable ids through the scheme's
  // LinkState, or by the full-relink fallback, which reassigns every
  // resident entry consistently and is therefore equally correct.
  const bool cached =
      ball_scheme_ != nullptr && ball_scheme_->has_cert_parser();
  // The resident half's pins: the carried-forward parses are owned copies,
  // so earlier buffers' pins are no longer load-bearing — swap them for
  // the new frame's (defensively covering the parses just taken from it)
  // instead of accumulating one per delta across an unbounded stream.
  // Without a parse cache the half holds no views into any buffer at all,
  // so the pins are dropped outright.
  parsed_[resident_].pins.clear();
  if (cached && pin != nullptr)
    parsed_[resident_].pins.push_back(std::move(pin));
  if (cached) {
    PLS_TRACE_SPAN("delta.reparse", delta.touched.size());
    obs::ScopedTimer parse_timer(metrics_.delta_parse);
    ParsedLabeling& parsed = parsed_[resident_];
    PLS_ASSERT(parsed.storage.size() == n);
    for (const graph::NodeIndex v : delta.touched) {
      parsed.storage[v] = ball_scheme_->parse_cert(next.certs[v]);
      parsed.view[v] = parsed.storage[v].get();
    }
    delta_stats_.certs_reparsed += delta.touched.size();
    if (link_state_ != nullptr) {
      ball_scheme_->relink_parses(*link_state_, parsed.storage,
                                  delta.touched);
      ++delta_stats_.links_incremental;
      delta_stats_.link_reseeds = link_state_->reseeds;
    } else {
      ball_scheme_->link_parses(parsed.storage);
      ++delta_stats_.links_full;
    }
  }

  // Stage 3, dirty-center sweep: only centers whose decoding radius reaches
  // a touched node can change verdict; everyone else's is spliced from the
  // resident bytes untouched.  Plain 1-round decoders read layer 1 only, so
  // their dirty radius is 1 whatever t the verifier was pinned at.
  const unsigned dirty_radius =
      ball_scheme_ != nullptr ? ball_scheme_->radius() : 1u;
  std::span<const graph::NodeIndex> dirty;
  {
    PLS_TRACE_SPAN("delta.collect", delta.touched.size());
    obs::ScopedTimer collect_timer(metrics_.delta_collect);
    dirty = dirty_index_.collect(*atlas_, cfg_.graph(), dirty_radius,
                                 delta.touched);
  }
  delta_stats_.centers_reswept += dirty.size();
  delta_stats_.verdicts_carried += n - dirty.size();
  {
    PLS_TRACE_SPAN("delta.resweep", dirty.size());
    obs::ScopedTimer sweep_timer(metrics_.delta_sweep);
    sweep_dirty(next, parsed_[resident_], dirty, accept);
  }

  resident_valid_ = true;
  return splice_verdict();
}

core::Verdict BatchVerifier::run_delta(const core::Labeling& prev,
                                       const core::Labeling& next) {
  return run_delta(next, LabelingDelta::diff(prev, next));
}

core::Verdict BatchVerifier::run_one(const core::Labeling& labeling,
                                     BufferPin pin) {
  std::vector<core::Verdict> verdicts = run({&labeling, 1}, {&pin, 1});
  return std::move(verdicts.front());
}

}  // namespace pls::radius
