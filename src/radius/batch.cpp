#include "radius/batch.hpp"

#include "pls/engine.hpp"
#include "util/assert.hpp"

namespace pls::radius {

BatchVerifier::BatchVerifier(const core::Scheme& scheme,
                             const local::Configuration& cfg, unsigned t,
                             BatchOptions options)
    : scheme_(scheme),
      ball_scheme_(dynamic_cast<const BallScheme*>(&scheme)),
      cfg_(cfg),
      t_(t),
      threads_(options.threads == 0 ? util::ThreadPool::hardware_threads()
                                    : options.threads),
      atlas_(options.atlas != nullptr
                 ? std::move(options.atlas)
                 : std::make_shared<GeometryAtlas>()) {
  PLS_REQUIRE(t >= 1);
  if (ball_scheme_ != nullptr) PLS_REQUIRE(t >= ball_scheme_->radius());
  pool_ = std::make_unique<util::ThreadPool>(threads_);
  slots_.resize(threads_);
}

void BatchVerifier::parse_link(const core::Labeling& labeling,
                               ParsedLabeling& out, bool parallel) {
  const std::size_t n = cfg_.n();
  out.storage.clear();
  out.storage.resize(n);
  out.view.assign(n, nullptr);
  const auto parse_slice = [&](unsigned, std::size_t begin, std::size_t end) {
    for (std::size_t v = begin; v < end; ++v) {
      out.storage[v] = ball_scheme_->parse_cert(labeling.certs[v]);
      out.view[v] = out.storage[v].get();
    }
  };
  if (parallel) {
    pool_->for_range(n, parse_slice);
  } else {
    parse_slice(0, 0, n);
  }
  // Link phase: intern payloads repeated across the per-node parses into
  // small dense ids; single-threaded, the sweep workers only read the
  // linked parses.
  ball_scheme_->link_parses(out.storage);
}

void BatchVerifier::post_sweep(const core::Labeling& labeling,
                               const ParsedLabeling& parsed,
                               std::vector<std::uint8_t>& accept) {
  const std::size_t n = cfg_.n();
  accept.assign(n, 0);

  if (ball_scheme_ == nullptr) {
    // Plain 1-round scheme: the shared per-node routine, per-slot scratch.
    pool_->post_range(n, [this, &labeling, &accept](unsigned worker,
                                                    std::size_t begin,
                                                    std::size_t end) {
      std::vector<local::NeighborView>& scratch = slots_[worker].views;
      for (std::size_t v = begin; v < end; ++v)
        accept[v] = core::detail::verify_one_round_at(
            scheme_, cfg_, labeling, static_cast<graph::NodeIndex>(v),
            scratch);
    });
    return;
  }

  const std::span<const ParsedCert* const> cache =
      ball_scheme_->has_cert_parser()
          ? std::span<const ParsedCert* const>(parsed.view)
          : std::span<const ParsedCert* const>();
  const unsigned radius = ball_scheme_->radius();
  const local::Visibility mode = scheme_.visibility();
  pool_->post_range(n, [this, &labeling, &accept, cache, radius, mode](
                           unsigned worker, std::size_t begin,
                           std::size_t end) {
    const graph::Graph& g = cfg_.graph();
    Slot& slot = slots_[worker];
    // Each slot walks a contiguous slice, so it re-requests a block only at
    // block boundaries; the shared_ptr pins the block across the slice even
    // if the atlas evicts it meanwhile.
    std::shared_ptr<const GeometryBlock> block;
    for (std::size_t i = begin; i < end; ++i) {
      const auto v = static_cast<graph::NodeIndex>(i);
      if (block == nullptr || !block->covers(v))
        block = atlas_->block(g, radius, v);
      slot.view.bind(block->ball(v, radius), cfg_, labeling, mode);
      const RadiusContext ctx(slot.view, g.id(v), cfg_.state(v),
                              labeling.certs[v], mode, cfg_.n(), cache);
      accept[i] = ball_scheme_->verify_ball(ctx);
    }
  });
}

std::vector<core::Verdict> BatchVerifier::run(
    std::span<const core::Labeling> labelings) {
  const std::size_t n = cfg_.n();
  for (const core::Labeling& lab : labelings)
    PLS_REQUIRE(lab.size() == n);

  std::vector<core::Verdict> verdicts;
  verdicts.reserve(labelings.size());
  if (labelings.empty()) return verdicts;

  const bool cached =
      ball_scheme_ != nullptr && ball_scheme_->has_cert_parser();

  // Stage 2 of the first labeling has nothing to overlap with — use the
  // idle pool.  parsed_/accept_ are the double buffers: stage 2 of
  // labeling i+1 fills the half the sweep of labeling i is not reading.
  if (cached) parse_link(labelings[0], parsed_[0], /*parallel=*/true);

  for (std::size_t i = 0; i < labelings.size(); ++i) {
    post_sweep(labelings[i], parsed_[i % 2], accept_[i % 2]);
    // Overlap window: the workers are sweeping labeling i (with threads = 1
    // the sweep is merely deferred — strictly sequential, same verdicts).
    // A stage-2 throw must not unwind past the posted sweep: the workers
    // are writing into this object's buffers under the caller's feet, so
    // quiesce them first.
    if (cached && i + 1 < labelings.size()) {
      try {
        parse_link(labelings[i + 1], parsed_[(i + 1) % 2],
                   /*parallel=*/false);
      } catch (...) {
        pool_->finish_range();
        throw;
      }
    }
    pool_->finish_range();

    std::vector<bool> bits(n);
    for (std::size_t v = 0; v < n; ++v) bits[v] = accept_[i % 2][v] != 0;
    verdicts.emplace_back(std::move(bits));
  }
  return verdicts;
}

core::Verdict BatchVerifier::run_one(const core::Labeling& labeling) {
  std::vector<core::Verdict> verdicts = run({&labeling, 1});
  return std::move(verdicts.front());
}

}  // namespace pls::radius
