// TinyLFU frequency sketch (Einziger, Friedman & Manes).
//
// A 4-bit count-min sketch with periodic halving: record() bumps four
// saturating 4-bit counters chosen by independent hashes, estimate() reads
// their minimum, and every `sample_period` records every counter in the
// table is halved.  The halving is what makes the estimate a *recency-
// weighted* frequency — a block that was hot an epoch ago decays toward
// zero instead of squatting on its peak count forever — and the 4-bit
// saturation is what makes the whole sketch 16 counters per word: W
// distinct keys of history cost W/2 bytes, not a hash map.
//
// GeometryAtlas uses it for admission (AtlasOptions::admission =
// kTinyLFU): a freshly built block displaces LRU victims only if its
// estimated frequency beats theirs, so a one-shot scan (every key seen
// once) can never flush a skewed working set whose keys have counts > 1.
//
// Deterministic: the four hash seeds are compile-time constants, so equal
// record sequences produce equal estimates on every run and platform.
#pragma once

#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace pls::radius {

class FrequencySketch {
 public:
  /// `counters` is rounded up to a power of two (>= 64).  `sample_period`
  /// records between halvings; it trades retention (large) against
  /// adaptivity to workload shifts (small).
  explicit FrequencySketch(std::size_t counters = std::size_t{1} << 14,
                           std::uint64_t sample_period = 8192)
      : sample_period_(sample_period) {
    PLS_REQUIRE(sample_period_ >= 1);
    std::size_t n = 64;
    while (n < counters) n <<= 1;
    table_.assign(n / 16, 0);  // 16 4-bit counters per 64-bit word
    mask_ = n - 1;
  }

  /// One occurrence of `key_hash` (pre-mixed 64-bit hash of the key).
  void record(std::uint64_t key_hash) {
    const std::uint64_t h = spread(key_hash);
    for (unsigned i = 0; i < 4; ++i) {
      const std::size_t idx = index(h, i);
      const std::size_t word = idx >> 4;
      const unsigned slot = static_cast<unsigned>(idx & 15) * 4;
      if (((table_[word] >> slot) & 0xF) < 0xF)
        table_[word] += (std::uint64_t{1} << slot);
    }
    if (++samples_ >= sample_period_) halve();
  }

  /// Recency-weighted frequency estimate: min of the four counters, in
  /// [0, 15].  Never under-counts recorded occurrences (count-min), may
  /// over-count through collisions.
  std::uint32_t estimate(std::uint64_t key_hash) const {
    const std::uint64_t h = spread(key_hash);
    std::uint32_t best = 0xF;
    for (unsigned i = 0; i < 4; ++i) {
      const std::size_t idx = index(h, i);
      const std::uint32_t c = static_cast<std::uint32_t>(
          (table_[idx >> 4] >> ((idx & 15) * 4)) & 0xF);
      if (c < best) best = c;
    }
    return best;
  }

  std::uint64_t halvings() const noexcept { return halvings_; }

 private:
  /// splitmix64 finalizer: decorrelates structured key hashes (epoch and
  /// block index live in adjacent bit ranges) before index derivation.
  static std::uint64_t spread(std::uint64_t x) noexcept {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
  }

  std::size_t index(std::uint64_t h, unsigned i) const noexcept {
    static constexpr std::uint64_t kSeed[4] = {
        0xC3A5C85C97CB3127ull, 0xB492B66FBE98F273ull,
        0x9AE16A3B2F90404Full, 0xCBF29CE484222325ull};
    std::uint64_t v = (h + (h >> 32)) * kSeed[i];
    v += v >> 32;
    return static_cast<std::size_t>(v & mask_);
  }

  void halve() {
    for (std::uint64_t& w : table_) w = (w >> 1) & 0x7777777777777777ull;
    samples_ = 0;
    ++halvings_;
  }

  std::vector<std::uint64_t> table_;
  std::uint64_t mask_ = 0;
  std::uint64_t samples_ = 0;
  std::uint64_t sample_period_;
  std::uint64_t halvings_ = 0;
};

}  // namespace pls::radius
