// Radius-t verification engine (t-PLS).
//
// KKP05 fixes the verification time at one round and proves label-size lower
// bounds there; the t-PLS line of work (Ostrovsky–Perry–Rosenbaum,
// Filtser–Fischer) trades verification time against proof size: a verifier
// that runs t rounds sees its radius-t ball, and certificates can shrink by
// a ~t factor.  This engine generalizes pls::core::run_verifier to that
// model:
//
//   * plain 1-round schemes run unchanged at any t >= 1 (extra rounds add
//     information the decoder does not read), and at t = 1 the verdict is
//     bit-for-bit what run_verifier produces — same per-node routine;
//   * BallScheme implementations declare a radius and receive the full
//     RadiusContext;
//   * verification_round_bits_t accounts the message volume of t flooding
//     rounds (round r forwards what was learned in round r-1), reducing to
//     verification_round_bits at t = 1.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "pls/engine.hpp"
#include "radius/ball.hpp"
#include "util/rng.hpp"

namespace pls::radius {

/// A scheme-aware adversarial labeling: a strategy label plus the
/// certificates it assigns.  Produced by BallScheme::adversarial_labelings
/// and fed through the attack suite (pls/adversary.hpp).
struct SchemeAttack {
  std::string name;
  core::Labeling labeling;
};

/// Opaque per-verifier state of the incremental link path: whatever a scheme
/// must remember across a delta stream so relink_parses can hand out
/// *stable* ids — for the spread schemes, the append-only payload -> class
/// interning table (parse_link.hpp).  Owned by the BatchVerifier, created by
/// BallScheme::make_link_state, never shared between verifiers (link state
/// is mutated single-threaded in stage 2).
///
/// Thread contract (the compile-time analysis's terms): LinkState carries no
/// capability of its own — it is serialized by its owning BatchVerifier's
/// single-caller contract, mutated only in the stage-2 link phase, and the
/// sweep workers that later read the ids it minted are ordered behind that
/// mutation by the ThreadPool's job hand-off (pool mutex).  A scheme must
/// not stash shared mutable state here without adding a capability for it.
class LinkState {
 public:
  virtual ~LinkState() = default;

  /// Times the scheme rebuilt this state from scratch mid-stream to bound
  /// its memory (the spread schemes re-seed their append-only intern table
  /// once dead ids outnumber live ones, parse_link.hpp).  Cumulative over
  /// the state's lifetime; surfaced as DeltaStats::link_reseeds.
  std::uint64_t reseeds = 0;

 protected:
  LinkState() = default;
};

/// A scheme whose decoder reads a radius-t ball instead of the 1-hop view.
class BallScheme : public core::Scheme {
 public:
  /// The verification radius t >= 1 the decoder needs.
  virtual unsigned radius() const noexcept = 0;

  /// The decoder, run independently at every center.
  virtual bool verify_ball(const RadiusContext& ctx) const = 0;

  /// Parse-once hook.  A scheme that returns true here must override
  /// parse_cert; VerificationSession then parses every node's certificate
  /// exactly once per labeling and exposes the results to verify_ball via
  /// RadiusContext::parsed, instead of each of the O(n) overlapping balls
  /// re-parsing the same certificates.
  virtual bool has_cert_parser() const noexcept { return false; }

  /// Parses one certificate into the scheme's own ParsedCert subclass;
  /// nullptr means malformed (the scheme's verify_ball decides what a
  /// malformed member implies — for every scheme so far, reject).  Must be
  /// thread-safe: the session parses nodes in parallel.
  virtual std::unique_ptr<ParsedCert> parse_cert(
      const local::Certificate& cert) const;

  /// Link phase of the parse-once pipeline.  VerificationSession calls this
  /// once per labeling, after the parallel parse and before any verify_ball,
  /// with every node's parse (entries are null for malformed certificates).
  /// Schemes intern payloads repeated across nodes — the spread schemes'
  /// chunk bit strings — into small dense ids here, so the per-ball equality
  /// checks on the hot path compare ids instead of BitStrings.  Runs on one
  /// thread; the linked parses are read-shared by all workers afterwards.
  virtual void link_parses(
      std::span<const std::unique_ptr<ParsedCert>> parsed) const;

  /// Incremental-link support (the delta path, radius/delta.hpp).  A scheme
  /// that returns non-null state here must override both stateful hooks
  /// below; nullptr (the default) makes BatchVerifier::run_delta fall back
  /// to a full link_parses pass per delta — still correct (a full re-link
  /// assigns ids consistently across every resident parse, and clean
  /// centers' carried verdicts depend only on certificate bits), just O(n)
  /// instead of O(|touched|).
  virtual std::unique_ptr<LinkState> make_link_state() const;

  /// Stateful full link: same observable result as link_parses, and
  /// additionally records the interning tables in `state` so later
  /// relink_parses calls against the same parse cache hand out stable ids.
  /// BatchVerifier uses this on every full run when make_link_state
  /// returned non-null, so any full run can seed a delta stream.
  virtual void link_parses_stateful(
      LinkState& state,
      std::span<const std::unique_ptr<ParsedCert>> parsed) const;

  /// Incremental link: re-links only `touched` nodes' parses (the rest of
  /// `parsed` is carried forward from the run that last filled `state`).
  /// The stability contract that keeps mixed old/new comparisons valid:
  /// across every call sharing one `state` since its last full link, two
  /// parse entries carry the same class id iff their payloads are
  /// bit-identical — ids are never reused for different payloads.
  virtual void relink_parses(LinkState& state,
                             std::span<const std::unique_ptr<ParsedCert>> parsed,
                             std::span<const graph::NodeIndex> touched) const;

  /// Scheme-aware adversarial labelings for the attack suite: labelings
  /// that target the scheme's own structural invariants, beyond what the
  /// generic strategies can construct.  The adversary mounts every returned
  /// labeling.  Default: none.
  virtual std::vector<SchemeAttack> adversarial_labelings(
      const local::Configuration& cfg, util::Rng& rng) const;

  /// Ball schemes cannot run in the 1-round engine; use run_verifier_t.
  bool verify(const local::VerifierContext&) const override;
};

/// Runs the verifier at every node over radius-t balls.  Requires t >= 1
/// (t = 0 is invalid input), and t >= scheme.radius() for ball schemes (the
/// decoder is evaluated on exactly its declared radius).  This is the
/// sequential path: it delegates to a single-threaded VerificationSession
/// (session.hpp), so it still benefits from the parse-once cache; callers
/// that sweep many labelings over one configuration, or want the thread
/// pool, should hold a VerificationSession directly.
core::Verdict run_verifier_t(const core::Scheme& scheme,
                             const local::Configuration& cfg,
                             const core::Labeling& labeling, unsigned t);

/// The pre-session reference engine: one ball at a time, no parse cache, no
/// threading — every ball certificate is re-parsed at every center.  Kept as
/// the differential-testing oracle and the benchmark baseline
/// (bench_verify_scale measures the session against it).  Verdicts are
/// bit-identical to run_verifier_t and the session at every thread count.
core::Verdict run_verifier_t_baseline(const core::Scheme& scheme,
                                      const local::Configuration& cfg,
                                      const core::Labeling& labeling,
                                      unsigned t);

/// Completeness at radius t: marks cfg (must be legal), verifies all-accept.
bool completeness_holds_t(const core::Scheme& scheme,
                          const local::Configuration& cfg, unsigned t);

/// Message bits of t flooding rounds: in round r (1-based), every node sends
/// each neighbor the payloads (certificate, plus state/id when Extended) it
/// learned in round r-1, i.e. of the nodes at distance exactly r-1 from it.
/// Total over directed edges (u -> v): sum over r < t of the payloads of u's
/// distance-r layer.  At t = 1 this is verification_round_bits exactly.
std::size_t verification_round_bits_t(const core::Scheme& scheme,
                                      const local::Configuration& cfg,
                                      const core::Labeling& labeling,
                                      unsigned t);

}  // namespace pls::radius
