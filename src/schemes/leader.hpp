// LEADER — exactly one node is marked.
//
// States are single bits; the language holds when exactly one node carries 1.
// The classic Θ(log n) scheme certifies a spanning tree pointing at the
// leader: certificate = (root id, parent id, distance to root).  Acceptance
// everywhere forces a unique root (root-id agreement on a connected graph +
// the root's id equals the shared root id) which must be marked, and distance
// descent forces every other node to reach it, so no second leader can hide.
// The Ω(log n) lower bound is exercised by crossing leader-on-ring instances
// (experiment F3).
#pragma once

#include "pls/scheme.hpp"

namespace pls::schemes {

class LeaderLanguage final : public core::Language {
 public:
  std::string_view name() const noexcept override { return "leader"; }
  bool contains(const local::Configuration& cfg) const override;
  local::Configuration sample_legal(std::shared_ptr<const graph::Graph> g,
                                    util::Rng& rng) const override;

  /// Legal configuration with the leader at a chosen node.
  local::Configuration make_with_leader(std::shared_ptr<const graph::Graph> g,
                                        graph::NodeIndex leader) const;

  static local::State encode_flag(bool is_leader);
};

class LeaderScheme final : public core::Scheme {
 public:
  explicit LeaderScheme(const LeaderLanguage& language)
      : language_(language) {}

  std::string_view name() const noexcept override { return "leader/tree"; }
  const core::Language& language() const noexcept override {
    return language_;
  }

  core::Labeling mark(const local::Configuration& cfg) const override;
  bool verify(const local::VerifierContext& ctx) const override;
  std::size_t proof_size_bound(std::size_t n,
                               std::size_t state_bits) const override;

 private:
  const LeaderLanguage& language_;
};

}  // namespace pls::schemes
