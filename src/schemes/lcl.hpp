// Locally checkable labelings under the PLS lens (R7).
//
// The paper positions proof labeling schemes as the certificate-equipped
// generalization of Naor–Stockmeyer locally checkable labelings: an LCL
// predicate is verifiable with *empty* certificates once the verification
// round exposes neighbor states.  Three classic LCLs are provided, each with
// its 0-bit scheme:
//
//   * dominating set  — every node is in the set or adjacent to it,
//   * maximal matching — mutual partner pointers, no augmenting edge,
//   * maximal independent set — no adjacent members, no addable node.
//
// They broaden the soundness test surface and anchor the proof-size summary
// table's 0-bit rows.
#pragma once

#include "pls/scheme.hpp"

namespace pls::schemes {

class DominatingSetLanguage final : public core::Language {
 public:
  std::string_view name() const noexcept override { return "domset"; }
  bool contains(const local::Configuration& cfg) const override;
  /// Greedy dominating set along a random node order.
  local::Configuration sample_legal(std::shared_ptr<const graph::Graph> g,
                                    util::Rng& rng) const override;
  static local::State encode_member(bool in_set);
};

class DominatingSetScheme final : public core::Scheme {
 public:
  explicit DominatingSetScheme(const DominatingSetLanguage& language)
      : language_(language) {}
  std::string_view name() const noexcept override { return "domset/0bit"; }
  const core::Language& language() const noexcept override {
    return language_;
  }
  core::Labeling mark(const local::Configuration& cfg) const override;
  bool verify(const local::VerifierContext& ctx) const override;
  std::size_t proof_size_bound(std::size_t, std::size_t) const override {
    return 0;
  }

 private:
  const DominatingSetLanguage& language_;
};

class MaximalMatchingLanguage final : public core::Language {
 public:
  std::string_view name() const noexcept override { return "matching"; }
  bool contains(const local::Configuration& cfg) const override;
  /// Greedy maximal matching along a random edge order.
  local::Configuration sample_legal(std::shared_ptr<const graph::Graph> g,
                                    util::Rng& rng) const override;
};

class MaximalMatchingScheme final : public core::Scheme {
 public:
  explicit MaximalMatchingScheme(const MaximalMatchingLanguage& language)
      : language_(language) {}
  std::string_view name() const noexcept override { return "matching/0bit"; }
  const core::Language& language() const noexcept override {
    return language_;
  }
  core::Labeling mark(const local::Configuration& cfg) const override;
  bool verify(const local::VerifierContext& ctx) const override;
  std::size_t proof_size_bound(std::size_t, std::size_t) const override {
    return 0;
  }

 private:
  const MaximalMatchingLanguage& language_;
};

class MisLanguage final : public core::Language {
 public:
  std::string_view name() const noexcept override { return "mis"; }
  bool contains(const local::Configuration& cfg) const override;
  /// Greedy MIS along a random node order.
  local::Configuration sample_legal(std::shared_ptr<const graph::Graph> g,
                                    util::Rng& rng) const override;
  static local::State encode_member(bool in_set);
};

class MisScheme final : public core::Scheme {
 public:
  explicit MisScheme(const MisLanguage& language) : language_(language) {}
  std::string_view name() const noexcept override { return "mis/0bit"; }
  const core::Language& language() const noexcept override {
    return language_;
  }
  core::Labeling mark(const local::Configuration& cfg) const override;
  bool verify(const local::VerifierContext& ctx) const override;
  std::size_t proof_size_bound(std::size_t, std::size_t) const override {
    return 0;
  }

 private:
  const MisLanguage& language_;
};

}  // namespace pls::schemes
