// AGREE — all nodes hold the same s-bit value.
//
// The paper's canonical example of a language whose proof size is governed by
// the *state* size rather than the network size: in the strict model (the
// verification round carries certificates only), certifying agreement
// requires copying the value into the certificate — proof size Θ(s).  The
// upper bound is the scheme below; the matching lower bound is exercised by
// the crossing probe (experiment F3): two runs with different values whose
// certificates collide on the first b < s bits can be spliced across any edge
// of a path into an undetectable disagreement.
#pragma once

#include "pls/scheme.hpp"

namespace pls::schemes {

class AgreeLanguage final : public core::Language {
 public:
  explicit AgreeLanguage(unsigned value_bits);

  std::string_view name() const noexcept override { return "agree"; }
  bool contains(const local::Configuration& cfg) const override;
  local::Configuration sample_legal(std::shared_ptr<const graph::Graph> g,
                                    util::Rng& rng) const override;

  unsigned value_bits() const noexcept { return value_bits_; }

  /// State encoding helper: the fixed-width value itself.
  local::State encode_value(std::uint64_t value) const;

 private:
  unsigned value_bits_;
};

/// Certificate = the node's own value; verify = "my certificate equals my
/// state and all neighbor certificates equal mine".  Strict visibility.
class AgreeScheme final : public core::Scheme {
 public:
  explicit AgreeScheme(const AgreeLanguage& language) : language_(language) {}

  std::string_view name() const noexcept override { return "agree/copy"; }
  const core::Language& language() const noexcept override {
    return language_;
  }
  local::Visibility visibility() const noexcept override {
    return local::Visibility::kCertificatesOnly;
  }

  core::Labeling mark(const local::Configuration& cfg) const override;
  bool verify(const local::VerifierContext& ctx) const override;
  std::size_t proof_size_bound(std::size_t n,
                               std::size_t state_bits) const override;

 private:
  const AgreeLanguage& language_;
};

}  // namespace pls::schemes
