#include "schemes/coloring.hpp"

#include "util/assert.hpp"

namespace pls::schemes {

namespace {

std::optional<std::uint64_t> decode_color(const local::State& s,
                                          std::uint64_t num_colors) {
  util::BitReader r = s.reader();
  const auto c = r.read_varint();
  if (!c || !r.exhausted() || *c >= num_colors) return std::nullopt;
  return c;
}

}  // namespace

ColoringLanguage::ColoringLanguage(std::uint64_t num_colors)
    : num_colors_(num_colors) {
  PLS_REQUIRE(num_colors >= 2);
}

local::State ColoringLanguage::encode_color(std::uint64_t color) const {
  PLS_REQUIRE(color < num_colors_);
  util::BitWriter w;
  w.write_varint(color);
  return local::State::from_writer(std::move(w));
}

bool ColoringLanguage::contains(const local::Configuration& cfg) const {
  const graph::Graph& g = cfg.graph();
  std::vector<std::uint64_t> colors(g.n());
  for (graph::NodeIndex v = 0; v < g.n(); ++v) {
    const auto c = decode_color(cfg.state(v), num_colors_);
    if (!c) return false;
    colors[v] = *c;
  }
  for (const graph::Edge& e : g.edges())
    if (colors[e.u] == colors[e.v]) return false;
  return true;
}

local::Configuration ColoringLanguage::sample_legal(
    std::shared_ptr<const graph::Graph> g, util::Rng& rng) const {
  // Greedy coloring along a random node order.
  const auto order = rng.permutation(g->n());
  std::vector<std::uint64_t> colors(g->n(), num_colors_);
  for (const std::uint64_t vi : order) {
    const auto v = static_cast<graph::NodeIndex>(vi);
    std::vector<bool> used(g->degree(v) + 1, false);
    for (const graph::AdjEntry& a : g->adjacency(v))
      if (colors[a.to] < used.size()) used[colors[a.to]] = true;
    std::uint64_t c = 0;
    while (c < used.size() && used[c]) ++c;
    PLS_REQUIRE(c < num_colors_);  // needs num_colors >= Δ+1
    colors[v] = c;
  }
  std::vector<local::State> states;
  states.reserve(g->n());
  for (graph::NodeIndex v = 0; v < g->n(); ++v)
    states.push_back(encode_color(colors[v]));
  return local::Configuration(std::move(g), std::move(states));
}

core::Labeling ColoringScheme::mark(const local::Configuration& cfg) const {
  core::Labeling lab;
  lab.certs.assign(cfg.n(), local::Certificate{});  // zero bits
  return lab;
}

bool ColoringScheme::verify(const local::VerifierContext& ctx) const {
  const auto own = decode_color(ctx.state(), language_.num_colors());
  if (!own) return false;
  for (const local::NeighborView& nb : ctx.neighbors()) {
    if (nb.state == nullptr) return false;
    const auto theirs = decode_color(*nb.state, language_.num_colors());
    if (!theirs) return false;
    if (*theirs == *own) return false;
  }
  return true;
}

std::size_t ColoringScheme::proof_size_bound(std::size_t /*n*/,
                                             std::size_t /*state_bits*/) const {
  return 0;
}

}  // namespace pls::schemes
