// Scheme catalog: every (language, scheme) pair in one iterable bundle.
//
// Benches and tests sweep "all schemes"; the catalog owns the language and
// scheme objects together (schemes hold references into their languages) and
// records the instance-family preconditions each pair needs.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "pls/scheme.hpp"

namespace pls::schemes {

struct SchemeEntry {
  std::string label;
  std::shared_ptr<const core::Language> language;  // destroyed after scheme
  std::shared_ptr<const core::Scheme> scheme;
  bool needs_weighted = false;   ///< distinct-weight connected graphs only
  bool needs_bipartite = false;  ///< bipartite graphs only
};

struct CatalogOptions {
  unsigned agree_value_bits = 32;
  std::uint64_t coloring_colors = 64;  ///< must exceed the max degree used
};

/// The paper's scheme suite: agree, leader, acyclic, stp, stl, mstl,
/// bipartite, coloring, regular, plus the 0-bit LCL trio (dominating set,
/// maximal matching, maximal independent set).
std::vector<SchemeEntry> standard_catalog(const CatalogOptions& options = {});

}  // namespace pls::schemes
