// Distributed marker construction.
//
// The prover of a proof labeling scheme is an abstraction: "in practice, the
// certificates are provided by a distributed algorithm solving the task"
// (paper, introduction).  This module realizes that for the tree-based
// schemes: the network itself computes the (root id, parent id, distance)
// certificates by synchronous flooding, in O(diameter) rounds — no
// centralized oracle involved.  The result is byte-compatible with the
// centralized markers' layout and accepted by the same verifiers.
//
// Round and message accounting is returned so experiments can report the
// amortized cost of certification when it rides on the constructing
// algorithm.
#pragma once

#include "local/network.hpp"
#include "pls/certificate.hpp"

namespace pls::schemes {

struct DistributedMarking {
  core::Labeling labeling;
  std::size_t rounds = 0;
  std::size_t message_bits = 0;
};

/// Distributed marker for the leader scheme: BFS flooding from the (unique)
/// leader.  Precondition: the configuration is in `leader`.
DistributedMarking distributed_leader_marking(const local::Configuration& cfg);

/// Distributed marker for the stp scheme: the root learns it is the root
/// from its ⊥ pointer, and depths propagate down the pointer tree (children
/// adopt parent depth + 1).  Rounds = tree depth + O(1).
/// Precondition: the configuration is in `stp`.
DistributedMarking distributed_stp_marking(const local::Configuration& cfg);

}  // namespace pls::schemes
