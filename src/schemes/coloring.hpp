// PROPER k-COLORING — adjacent states differ.
//
// The paper situates proof labeling schemes as a strict generalization of
// locally checkable labelings [Naor–Stockmeyer]: a locally checkable
// predicate needs *no* certificate at all when the verification round carries
// neighbor states.  Proper coloring is the canonical example — the scheme
// below has proof size 0.
#pragma once

#include "pls/scheme.hpp"

namespace pls::schemes {

class ColoringLanguage final : public core::Language {
 public:
  explicit ColoringLanguage(std::uint64_t num_colors);

  std::string_view name() const noexcept override { return "coloring"; }
  bool contains(const local::Configuration& cfg) const override;

  /// Greedy coloring; precondition: num_colors >= max degree + 1.
  local::Configuration sample_legal(std::shared_ptr<const graph::Graph> g,
                                    util::Rng& rng) const override;

  std::uint64_t num_colors() const noexcept { return num_colors_; }

  local::State encode_color(std::uint64_t color) const;

 private:
  std::uint64_t num_colors_;
};

/// Zero-bit certificates: local checkability needs no proof.
class ColoringScheme final : public core::Scheme {
 public:
  explicit ColoringScheme(const ColoringLanguage& language)
      : language_(language) {}

  std::string_view name() const noexcept override { return "coloring/0bit"; }
  const core::Language& language() const noexcept override {
    return language_;
  }

  core::Labeling mark(const local::Configuration& cfg) const override;
  bool verify(const local::VerifierContext& ctx) const override;
  std::size_t proof_size_bound(std::size_t n,
                               std::size_t state_bits) const override;

 private:
  const ColoringLanguage& language_;
};

}  // namespace pls::schemes
