#include "schemes/mst.hpp"

#include <algorithm>
#include <queue>

#include "graph/algorithms.hpp"
#include "graph/mst.hpp"
#include "schemes/common.hpp"
#include "util/assert.hpp"

namespace pls::schemes {

namespace {

constexpr std::size_t kMaxPhaseRecords = 64;

struct PhaseRecord {
  graph::RawId frag = 0;
  graph::RawId t1_parent = 0;
  std::uint64_t t1_dist = 0;
  bool has_chosen = false;
  graph::RawId a = 0;  ///< chosen edge endpoint inside the fragment
  graph::RawId b = 0;  ///< chosen edge endpoint outside the fragment
  std::uint64_t w = 0;
  graph::RawId t2_parent = 0;
  std::uint64_t t2_dist = 0;
};

struct MstCert {
  std::vector<PhaseRecord> rec;
};

// Wire layout (see mst.hpp): shared fragment fields first, phases reversed —
// the fields all members of a fragment agree on form a certificate prefix —
// then the per-node tree fields in forward phase order.
std::optional<MstCert> parse(const local::Certificate& c) {
  util::BitReader r = c.reader();
  const auto count = r.read_varint();
  if (!count || *count == 0 || *count > kMaxPhaseRecords) return std::nullopt;
  MstCert cert;
  cert.rec.resize(static_cast<std::size_t>(*count));
  for (std::size_t i = cert.rec.size(); i-- > 0;) {
    PhaseRecord& rec = cert.rec[i];
    const auto frag = r.read_varint();
    const auto has = r.read_bit();
    if (!frag || !has) return std::nullopt;
    rec.frag = *frag;
    rec.has_chosen = *has;
    if (rec.has_chosen) {
      const auto a = r.read_varint();
      const auto b = r.read_varint();
      const auto w = r.read_varint();
      if (!a || !b || !w) return std::nullopt;
      rec.a = *a;
      rec.b = *b;
      rec.w = *w;
    }
  }
  for (PhaseRecord& rec : cert.rec) {
    const auto t1p = r.read_varint();
    const auto t1d = r.read_varint();
    if (!t1p || !t1d) return std::nullopt;
    rec.t1_parent = *t1p;
    rec.t1_dist = *t1d;
    if (rec.has_chosen) {
      const auto t2p = r.read_varint();
      const auto t2d = r.read_varint();
      if (!t2p || !t2d) return std::nullopt;
      rec.t2_parent = *t2p;
      rec.t2_dist = *t2d;
    }
  }
  if (!r.exhausted()) return std::nullopt;
  return cert;
}

local::Certificate serialize(const MstCert& cert) {
  util::BitWriter w;
  w.write_varint(cert.rec.size());
  for (std::size_t i = cert.rec.size(); i-- > 0;) {
    const PhaseRecord& rec = cert.rec[i];
    w.write_varint(rec.frag);
    w.write_bit(rec.has_chosen);
    if (rec.has_chosen) {
      w.write_varint(rec.a);
      w.write_varint(rec.b);
      w.write_varint(rec.w);
    }
  }
  for (const PhaseRecord& rec : cert.rec) {
    w.write_varint(rec.t1_parent);
    w.write_varint(rec.t1_dist);
    if (rec.has_chosen) {
      w.write_varint(rec.t2_parent);
      w.write_varint(rec.t2_dist);
    }
  }
  return local::Certificate::from_writer(std::move(w));
}

/// BFS trees inside each fragment, over tree edges only, from given roots.
/// Fills parent (id of parent node; root = self) and dist per node.
void fragment_bfs(const graph::Graph& g, const std::vector<bool>& tree_mask,
                  const std::vector<graph::NodeIndex>& fragment_of,
                  const std::vector<graph::NodeIndex>& roots,
                  std::vector<graph::NodeIndex>& parent,
                  std::vector<std::uint64_t>& dist) {
  parent.assign(g.n(), graph::kInvalidNode);
  dist.assign(g.n(), 0);
  std::vector<bool> seen(g.n(), false);
  std::queue<graph::NodeIndex> frontier;
  for (const graph::NodeIndex r : roots) {
    seen[r] = true;
    parent[r] = r;
    frontier.push(r);
  }
  while (!frontier.empty()) {
    const graph::NodeIndex v = frontier.front();
    frontier.pop();
    for (const graph::AdjEntry& a : g.adjacency(v)) {
      if (!tree_mask[a.edge]) continue;
      if (fragment_of[a.to] != fragment_of[v]) continue;
      if (seen[a.to]) continue;
      seen[a.to] = true;
      parent[a.to] = v;
      dist[a.to] = dist[v] + 1;
      frontier.push(a.to);
    }
  }
  for (graph::NodeIndex v = 0; v < g.n(); ++v) PLS_ASSERT(seen[v]);
}

}  // namespace

bool MstLanguage::contains(const local::Configuration& cfg) const {
  const graph::Graph& g = cfg.graph();
  if (!g.is_connected() || !g.has_distinct_weights()) return false;
  const auto mask = subgraph_mask_from_states(cfg);
  if (!mask) return false;
  if (!graph::is_spanning_tree(g, *mask)) return false;
  std::vector<bool> mst_mask(g.m(), false);
  for (const graph::EdgeIndex e : graph::kruskal(g)) mst_mask[e] = true;
  return *mask == mst_mask;
}

local::Configuration MstLanguage::sample_legal(
    std::shared_ptr<const graph::Graph> g, util::Rng& /*rng*/) const {
  PLS_REQUIRE(g->is_connected() && g->has_distinct_weights());
  std::vector<bool> mask(g->m(), false);
  for (const graph::EdgeIndex e : graph::kruskal(*g)) mask[e] = true;
  return make_from_mask(std::move(g), mask);
}

local::Configuration MstLanguage::make_from_mask(
    std::shared_ptr<const graph::Graph> g,
    const std::vector<bool>& mask) const {
  auto states = states_from_subgraph_mask(*g, mask);
  return local::Configuration(std::move(g), std::move(states));
}

core::Labeling MstScheme::mark(const local::Configuration& cfg) const {
  const graph::Graph& g = cfg.graph();
  const graph::BoruvkaRun run = graph::boruvka_with_history(g);
  const std::size_t R = run.phases.size();
  PLS_REQUIRE(R <= kMaxPhaseRecords);

  std::vector<MstCert> certs(g.n());
  for (graph::NodeIndex v = 0; v < g.n(); ++v) certs[v].rec.resize(R);

  std::vector<graph::NodeIndex> t_parent;
  std::vector<std::uint64_t> t_dist;
  for (std::size_t i = 0; i < R; ++i) {
    const graph::BoruvkaPhase& phase = run.phases[i];

    // Fragment names and T1 (rooted at the fragment representative).
    {
      std::vector<graph::NodeIndex> roots;
      for (graph::NodeIndex v = 0; v < g.n(); ++v)
        if (phase.fragment_of[v] == v) roots.push_back(v);
      fragment_bfs(g, run.mst_mask, phase.fragment_of, roots, t_parent,
                   t_dist);
      for (graph::NodeIndex v = 0; v < g.n(); ++v) {
        certs[v].rec[i].frag = g.id(phase.fragment_of[v]);
        certs[v].rec[i].t1_parent = g.id(t_parent[v]);
        certs[v].rec[i].t1_dist = t_dist[v];
      }
    }

    // Chosen edges and T2 (rooted at the inside endpoint of the chosen edge).
    if (!phase.chosen.empty()) {
      std::vector<graph::NodeIndex> t2_roots;
      // Per fragment: the inside endpoint of its chosen edge.
      std::vector<graph::NodeIndex> inside_of(g.n(), graph::kInvalidNode);
      for (const auto& [rep, e] : phase.chosen) {
        const graph::Edge& ed = g.edge(e);
        const graph::NodeIndex inside =
            phase.fragment_of[ed.u] == rep ? ed.u : ed.v;
        PLS_ASSERT(phase.fragment_of[inside] == rep);
        inside_of[rep] = inside;
        t2_roots.push_back(inside);
      }
      fragment_bfs(g, run.mst_mask, phase.fragment_of, t2_roots, t_parent,
                   t_dist);
      for (graph::NodeIndex v = 0; v < g.n(); ++v) {
        const graph::NodeIndex rep = phase.fragment_of[v];
        const auto it = phase.chosen.find(rep);
        PLS_ASSERT(it != phase.chosen.end());
        const graph::Edge& ed = g.edge(it->second);
        const graph::NodeIndex inside = inside_of[rep];
        const graph::NodeIndex outside = ed.u == inside ? ed.v : ed.u;
        PhaseRecord& rec = certs[v].rec[i];
        rec.has_chosen = true;
        rec.a = g.id(inside);
        rec.b = g.id(outside);
        rec.w = static_cast<std::uint64_t>(g.weight(it->second));
        rec.t2_parent = g.id(t_parent[v]);
        rec.t2_dist = t_dist[v];
      }
    }
  }

  core::Labeling lab;
  lab.certs.reserve(g.n());
  for (graph::NodeIndex v = 0; v < g.n(); ++v)
    lab.certs.push_back(serialize(certs[v]));
  return lab;
}

bool MstScheme::verify(const local::VerifierContext& ctx) const {
  const auto own_list = decode_adjacency_list(ctx.state());
  if (!own_list) return false;
  const auto own = parse(ctx.certificate());
  if (!own) return false;
  const std::size_t R = own->rec.size();

  struct NeighborData {
    graph::RawId id = 0;
    std::uint64_t weight = 0;
    MstCert cert;
    bool in_own_list = false;
  };
  std::vector<NeighborData> nbs;
  nbs.reserve(ctx.degree());
  std::size_t listed_found = 0;
  for (const local::NeighborView& nb : ctx.neighbors()) {
    if (!nb.id_visible || nb.state == nullptr) return false;
    NeighborData d;
    d.id = nb.id;
    d.weight = static_cast<std::uint64_t>(nb.edge_weight);
    auto c = parse(*nb.cert);
    if (!c) return false;
    if (c->rec.size() != R) return false;  // phase count agreement
    d.cert = std::move(*c);
    d.in_own_list =
        std::binary_search(own_list->begin(), own_list->end(), nb.id);
    if (d.in_own_list) ++listed_found;
    // Symmetry of the claimed edge set.
    const auto their_list = decode_adjacency_list(*nb.state);
    if (!their_list) return false;
    const bool they_list_me =
        std::binary_search(their_list->begin(), their_list->end(), ctx.id());
    if (d.in_own_list != they_list_me) return false;
    nbs.push_back(std::move(d));
  }
  if (listed_found != own_list->size()) return false;  // non-neighbor listed

  // Phase 0: singleton fragments.
  {
    const PhaseRecord& r0 = own->rec[0];
    if (r0.frag != ctx.id() || r0.t1_parent != ctx.id() || r0.t1_dist != 0)
      return false;
    if (r0.has_chosen && (r0.t2_dist != 0 || r0.a != ctx.id())) return false;
  }

  for (std::size_t i = 0; i < R; ++i) {
    const PhaseRecord& r = own->rec[i];

    // T1: fragment spanning tree rooted at the node named by the fragment.
    if (r.t1_dist == 0) {
      if (r.frag != ctx.id() || r.t1_parent != ctx.id()) return false;
    } else {
      bool ok = false;
      for (const NeighborData& nb : nbs) {
        if (nb.id != r.t1_parent) continue;
        const PhaseRecord& nr = nb.cert.rec[i];
        if (nr.frag == r.frag && nr.t1_dist + 1 == r.t1_dist &&
            nb.in_own_list) {
          ok = true;
        }
        break;
      }
      if (!ok) return false;
    }

    bool has_outgoing = false;
    for (const NeighborData& nb : nbs) {
      const PhaseRecord& nr = nb.cert.rec[i];
      if (nr.frag == r.frag) {
        // Same fragment: agree on the chosen edge, merge together.
        if (nr.has_chosen != r.has_chosen) return false;
        if (r.has_chosen &&
            (nr.a != r.a || nr.b != r.b || nr.w != r.w))
          return false;
        if (i + 1 < R && nb.cert.rec[i + 1].frag != own->rec[i + 1].frag)
          return false;
      } else {
        has_outgoing = true;
        // Outgoing minimality: no edge leaving my fragment may undercut the
        // chosen weight; equality only at the chosen edge itself.
        if (!r.has_chosen) return false;
        if (nb.weight < r.w) return false;
        if (nb.weight == r.w && !(r.a == ctx.id() && r.b == nb.id))
          return false;
      }
    }

    // Final phase: one fragment, no chosen edge, no outgoing neighbors.
    if (i + 1 == R) {
      if (r.has_chosen) return false;
      if (has_outgoing) return false;
    }

    if (r.has_chosen) {
      // T2: fragment spanning tree rooted at the inside endpoint.
      if (r.t2_dist == 0) {
        if (r.a != ctx.id()) return false;
        // The chosen edge must actually be incident to me, with the claimed
        // weight, leading outside my fragment, and the merge must happen.
        bool ok = false;
        for (const NeighborData& nb : nbs) {
          if (nb.id != r.b) continue;
          const PhaseRecord& nr = nb.cert.rec[i];
          if (nr.frag != r.frag && nb.weight == r.w && i + 1 < R &&
              nb.cert.rec[i + 1].frag == own->rec[i + 1].frag) {
            ok = true;
          }
          break;
        }
        if (!ok) return false;
      } else {
        bool ok = false;
        for (const NeighborData& nb : nbs) {
          if (nb.id != r.t2_parent) continue;
          const PhaseRecord& nr = nb.cert.rec[i];
          if (nr.frag == r.frag && nr.has_chosen &&
              nr.t2_dist + 1 == r.t2_dist && nb.in_own_list) {
            ok = true;
          }
          break;
        }
        if (!ok) return false;
      }
    }
  }

  // Coverage: every claimed tree edge is some fragment's chosen edge at the
  // phase where its endpoints' fragments merge — the cut property then puts
  // it in the MST.
  for (const NeighborData& nb : nbs) {
    if (!nb.in_own_list) continue;
    bool covered = false;
    for (std::size_t i = 0; i + 1 < R && !covered; ++i) {
      const PhaseRecord& rv = own->rec[i];
      const PhaseRecord& ru = nb.cert.rec[i];
      if (rv.frag == ru.frag) continue;
      if (own->rec[i + 1].frag != nb.cert.rec[i + 1].frag) continue;
      const bool mine = rv.has_chosen && rv.a == ctx.id() && rv.b == nb.id &&
                        rv.w == nb.weight;
      const bool theirs = ru.has_chosen && ru.a == nb.id &&
                          ru.b == ctx.id() && ru.w == nb.weight;
      if (mine || theirs) covered = true;
    }
    if (!covered) return false;
  }
  return true;
}

std::size_t MstScheme::proof_size_bound(std::size_t n,
                                        std::size_t /*state_bits*/) const {
  std::size_t phases = 1;
  std::size_t frags = n;
  while (frags > 1) {
    frags = (frags + 1) / 2;
    ++phases;
  }
  const std::size_t idb = id_varint_bound(n);
  const std::size_t per_phase = 3 * idb + 2 * varint_bits(n) + 1 +
                                varint_bits(16 * n * n + 1);
  return phases * per_phase + varint_bits(kMaxPhaseRecords);
}

std::size_t MstScheme::phase_records(const local::Configuration& cfg) const {
  return graph::boruvka_with_history(cfg.graph()).phases.size();
}

std::vector<core::RegionAssignment> MstScheme::region_candidates(
    const local::Configuration& cfg) const {
  const graph::BoruvkaRun run = graph::boruvka_with_history(cfg.graph());
  std::vector<core::RegionAssignment> out;
  out.reserve(run.phases.size());
  for (const graph::BoruvkaPhase& phase : run.phases)
    out.emplace_back(phase.fragment_of.begin(), phase.fragment_of.end());
  return out;
}

}  // namespace pls::schemes
