#include "schemes/acyclic.hpp"

#include "graph/algorithms.hpp"
#include "schemes/common.hpp"
#include "util/assert.hpp"

namespace pls::schemes {

std::optional<std::vector<std::optional<graph::NodeIndex>>>
AcyclicLanguage::decode_pointers(const local::Configuration& cfg) {
  return decode_pointer_states(cfg);
}

bool AcyclicLanguage::contains(const local::Configuration& cfg) const {
  const auto pointers = decode_pointers(cfg);
  if (!pointers) return false;
  return graph::pointer_cycles(*pointers).empty();
}

local::Configuration AcyclicLanguage::sample_legal(
    std::shared_ptr<const graph::Graph> g, util::Rng& rng) const {
  const auto root = static_cast<graph::NodeIndex>(rng.below(g->n()));
  const graph::BfsResult tree = graph::bfs(*g, root);
  std::vector<local::State> states;
  states.reserve(g->n());
  for (graph::NodeIndex v = 0; v < g->n(); ++v) {
    if (tree.parent[v] == graph::kInvalidNode || rng.chance(0.25)) {
      states.push_back(encode_pointer(std::nullopt));
    } else {
      states.push_back(encode_pointer(g->id(tree.parent[v])));
    }
  }
  return local::Configuration(std::move(g), std::move(states));
}

core::Labeling AcyclicScheme::mark(const local::Configuration& cfg) const {
  const auto pointers = AcyclicLanguage::decode_pointers(cfg);
  PLS_REQUIRE(pointers.has_value());
  const std::size_t n = cfg.n();

  // Distance to the root of each in-tree, by following pointers (memoized).
  std::vector<std::uint64_t> dist(n, 0);
  std::vector<std::uint8_t> done(n, 0);
  for (graph::NodeIndex start = 0; start < n; ++start) {
    // Walk to a resolved node or a root, then unwind.
    std::vector<graph::NodeIndex> stack;
    graph::NodeIndex v = start;
    while (!done[v] && (*pointers)[v].has_value()) {
      stack.push_back(v);
      v = *(*pointers)[v];
    }
    std::uint64_t base = done[v] ? dist[v] : 0;
    done[v] = 1;
    dist[v] = base;
    while (!stack.empty()) {
      const graph::NodeIndex u = stack.back();
      stack.pop_back();
      dist[u] = ++base;
      done[u] = 1;
    }
  }

  core::Labeling lab;
  lab.certs.reserve(n);
  for (graph::NodeIndex v = 0; v < n; ++v) {
    util::BitWriter w;
    w.write_varint(dist[v]);
    lab.certs.push_back(local::Certificate::from_writer(std::move(w)));
  }
  return lab;
}

bool AcyclicScheme::verify(const local::VerifierContext& ctx) const {
  const auto pointer = decode_pointer(ctx.state());
  if (!pointer) return false;

  auto parse_dist = [](const local::Certificate& c)
      -> std::optional<std::uint64_t> {
    util::BitReader r = c.reader();
    const auto d = r.read_varint();
    if (!d || !r.exhausted()) return std::nullopt;
    return d;
  };

  const auto own_dist = parse_dist(ctx.certificate());
  if (!own_dist) return false;

  if (!pointer->has_value()) return *own_dist == 0;

  // The pointer target must be a neighbor whose distance is mine minus one.
  for (const local::NeighborView& nb : ctx.neighbors()) {
    if (!nb.id_visible) return false;
    if (nb.id != **pointer) continue;
    const auto nb_dist = parse_dist(*nb.cert);
    if (!nb_dist) return false;
    return *own_dist == *nb_dist + 1;
  }
  return false;  // points at a non-neighbor
}

std::size_t AcyclicScheme::proof_size_bound(std::size_t n,
                                            std::size_t /*state_bits*/) const {
  return varint_bits(n);
}

}  // namespace pls::schemes
