// ACYCLIC — the pointer graph described by the states has no cycle.
//
// Every state is "⊥ or the id of a neighbor"; the union of the pointers must
// be acyclic (a relaxation of spanning tree: an in-forest).  The classic
// O(log n) scheme certifies each node's hop distance to the root of its
// in-tree; a cycle forces a distance violation at its maximum-distance node's
// predecessor.
#pragma once

#include "pls/scheme.hpp"

namespace pls::schemes {

class AcyclicLanguage final : public core::Language {
 public:
  std::string_view name() const noexcept override { return "acyclic"; }
  bool contains(const local::Configuration& cfg) const override;

  /// Samples a random in-forest: a BFS tree from a random root, with every
  /// non-root pointer independently cut to ⊥ with probability 1/4.
  local::Configuration sample_legal(std::shared_ptr<const graph::Graph> g,
                                    util::Rng& rng) const override;

  /// Decodes all pointer states into node indices; nullopt if any state is
  /// malformed or points at a non-neighbor.
  static std::optional<std::vector<std::optional<graph::NodeIndex>>>
  decode_pointers(const local::Configuration& cfg);
};

class AcyclicScheme final : public core::Scheme {
 public:
  explicit AcyclicScheme(const AcyclicLanguage& language)
      : language_(language) {}

  std::string_view name() const noexcept override { return "acyclic/dist"; }
  const core::Language& language() const noexcept override {
    return language_;
  }

  core::Labeling mark(const local::Configuration& cfg) const override;
  bool verify(const local::VerifierContext& ctx) const override;
  std::size_t proof_size_bound(std::size_t n,
                               std::size_t state_bits) const override;

 private:
  const AcyclicLanguage& language_;
};

}  // namespace pls::schemes
