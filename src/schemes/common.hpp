// Shared state encodings for the concrete languages.
//
// Node states are bit strings; the languages in this module interpret them as
// one of three shapes:
//   * pointer states     — "⊥ or the id of a neighbor" (acyclic, stp),
//   * adjacency lists    — "a strictly increasing list of neighbor ids"
//                          (stl, mstl, regular),
//   * fixed-width values — (agree, coloring, leader's single bit).
// Decoders are total and canonical: any deviation (trailing bits, unsorted
// list, overlong varint) decodes to nullopt, which every language treats as
// "not in the language" and every verifier treats as "reject".
#pragma once

#include <optional>
#include <vector>

#include "local/config.hpp"
#include "util/bitio.hpp"

namespace pls::schemes {

using local::Certificate;
using local::Configuration;
using local::State;

/// Pointer state: [1 bit present][varint id if present].
State encode_pointer(std::optional<graph::RawId> target);

/// Decodes a pointer state; outer nullopt means malformed.
std::optional<std::optional<graph::RawId>> decode_pointer(const State& s);

/// Decodes all pointer states of a configuration into node indices; nullopt
/// if any state is malformed or points at a non-neighbor.
std::optional<std::vector<std::optional<graph::NodeIndex>>>
decode_pointer_states(const Configuration& cfg);

/// Adjacency-list state: [varint count][varint ids, strictly increasing].
State encode_adjacency_list(std::vector<graph::RawId> ids);

/// Decodes an adjacency-list state; nullopt if malformed or not strictly
/// increasing.
std::optional<std::vector<graph::RawId>> decode_adjacency_list(const State& s);

/// Interprets every state as an adjacency list and returns the edge mask of
/// the described subgraph H_ℓ, or nullopt when any state is malformed, lists
/// a non-neighbor, or the listing is not symmetric (u lists v iff v lists u).
std::optional<std::vector<bool>> subgraph_mask_from_states(
    const Configuration& cfg);

/// Builds per-node adjacency-list states describing `edge_mask`.
std::vector<State> states_from_subgraph_mask(const graph::Graph& g,
                                             const std::vector<bool>& edge_mask);

/// Upper bound, in bits, of a varint encoding of `value`.
std::size_t varint_bits(std::uint64_t value);

/// Generous upper bound on the varint size of ids in an n-node network under
/// the standard "ids are polynomial in n" assumption (we allow ids < n^2·16).
std::size_t id_varint_bound(std::size_t n);

}  // namespace pls::schemes
