// BIPARTITE — the network itself is 2-colorable.
//
// A network property (states are ignored; they are empty strings in legal
// witnesses).  Certificate = one bit (the node's side); verify = "all my
// neighbors carry the opposite bit".  On a non-bipartite network every
// 2-coloring leaves a monochromatic edge, whose endpoints both reject —
// a 1-bit proof, showing proof size need not grow with n at all.
#pragma once

#include "pls/scheme.hpp"

namespace pls::schemes {

class BipartiteLanguage final : public core::Language {
 public:
  std::string_view name() const noexcept override { return "bipartite"; }
  bool contains(const local::Configuration& cfg) const override;

  /// Precondition: the graph is bipartite (the language is constructible
  /// only on its yes-instances).
  local::Configuration sample_legal(std::shared_ptr<const graph::Graph> g,
                                    util::Rng& rng) const override;
};

class BipartiteScheme final : public core::Scheme {
 public:
  explicit BipartiteScheme(const BipartiteLanguage& language)
      : language_(language) {}

  std::string_view name() const noexcept override { return "bipartite/1bit"; }
  const core::Language& language() const noexcept override {
    return language_;
  }
  local::Visibility visibility() const noexcept override {
    return local::Visibility::kCertificatesOnly;
  }

  core::Labeling mark(const local::Configuration& cfg) const override;
  bool verify(const local::VerifierContext& ctx) const override;
  std::size_t proof_size_bound(std::size_t n,
                               std::size_t state_bits) const override;

 private:
  const BipartiteLanguage& language_;
};

}  // namespace pls::schemes
