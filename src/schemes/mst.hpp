// MST — the states describe the unique minimum spanning tree.
//
// Language `mstl`: states are adjacency lists (as in stl) over a connected
// graph with pairwise distinct edge weights; the described edge set must be
// the (unique) MST.
//
// The scheme is the paper's O(log² n)-bit certification of a Borůvka run.
// The certificate of a node is one record per Borůvka phase (≤ ⌈log₂ n⌉ + 1
// records, O(log n) bits each):
//
//   frag      — the name of the node's fragment at this phase: the id of the
//               fragment's minimum-id node,
//   T1        — (parent id, distance): a spanning tree of the fragment rooted
//               at the node whose id *is* the fragment name; its parent edges
//               must be claimed tree edges,
//   chosen    — the fragment's minimum outgoing edge (inside endpoint id,
//               outside endpoint id, weight), absent only in the final phase,
//   T2        — (parent id, distance): a second spanning tree of the same
//               fragment rooted at the chosen edge's inside endpoint, so that
//               the endpoint's incidence to the claimed edge is certified.
//
// The verifier's local checks force, at every phase: fragments are connected
// and consistently named (T1 roots carry the fragment name as their own id,
// so a name cannot exist twice); adjacent same-fragment nodes agree on the
// chosen edge; every edge leaving a fragment weighs at least the fragment's
// chosen weight (with equality only at the chosen edge itself — weights are
// distinct); fragments merge along chosen edges and never split.  Each
// claimed tree edge must be some fragment's chosen edge at the phase where
// its endpoints' fragments merge — by the cut property that puts it in the
// MST — and the final phase's T1 spans the whole graph inside the claimed
// edges, so claimed ⊆ MST and claimed ⊇ a spanning tree: claimed = MST.
//
// Wire layout (parse order) — shared-first, phases reversed:
//
//   [varint R]
//   for i = R-1 .. 0:  [varint frag_i] [1 bit has_chosen_i]
//                      [varint a_i, b_i, w_i when chosen]
//   for i = 0 .. R-1:  [varint t1_parent_i] [varint t1_dist_i]
//                      [varint t2_parent_i, t2_dist_i when chosen]
//
// The first block holds exactly the fields every member of a fragment
// shares: all members of a phase-p fragment store identical
// (frag, chosen-edge) records for every phase >= p, and fragments only merge,
// so serializing those records from the final phase backwards makes the
// shared content a *prefix* — certificates of same-fragment nodes agree on
// [varint R] plus the records of phases R-1 down to p before diverging.
// That hierarchical prefix is what the fragment-aware spread transform
// (radius/fragment_spread.hpp) shards across radius-t balls; MstScheme
// exposes the matching region structure through core::RegionProvider (one
// candidate decomposition per Borůvka phase).  The per-node trees (T1/T2
// parents and distances) follow in the second block.
#pragma once

#include "pls/scheme.hpp"

namespace pls::schemes {

class MstLanguage final : public core::Language {
 public:
  std::string_view name() const noexcept override { return "mstl"; }

  /// False on graphs without distinct weights or connectivity (the MST
  /// setting of the paper assumes both).
  bool contains(const local::Configuration& cfg) const override;

  /// The unique MST, encoded as adjacency lists.  Deterministic; rng unused.
  local::Configuration sample_legal(std::shared_ptr<const graph::Graph> g,
                                    util::Rng& rng) const override;

  /// Adjacency-list configuration for an explicit edge mask (not necessarily
  /// the MST — used to build illegal instances).
  local::Configuration make_from_mask(std::shared_ptr<const graph::Graph> g,
                                      const std::vector<bool>& mask) const;
};

class MstScheme final : public core::Scheme, public core::RegionProvider {
 public:
  explicit MstScheme(const MstLanguage& language) : language_(language) {}

  std::string_view name() const noexcept override { return "mstl/boruvka"; }
  const core::Language& language() const noexcept override {
    return language_;
  }

  core::Labeling mark(const local::Configuration& cfg) const override;
  bool verify(const local::VerifierContext& ctx) const override;
  std::size_t proof_size_bound(std::size_t n,
                               std::size_t state_bits) const override;

  /// Number of phase records the marker emits for this configuration
  /// (exposed for the phase-structure experiment F2).
  std::size_t phase_records(const local::Configuration& cfg) const;

  /// The Borůvka phase structure as region candidates: one decomposition per
  /// phase, regions = that phase's fragments (phase 0 is all-singletons, the
  /// final phase one region).  All members of a phase-p fragment share the
  /// certificate prefix covering phases R-1..p of the shared block.
  std::vector<core::RegionAssignment> region_candidates(
      const local::Configuration& cfg) const override;

 private:
  const MstLanguage& language_;
};

}  // namespace pls::schemes
