#include "schemes/leader.hpp"

#include "graph/algorithms.hpp"
#include "schemes/common.hpp"
#include "util/assert.hpp"

namespace pls::schemes {

namespace {

struct LeaderCert {
  graph::RawId root = 0;
  graph::RawId parent = 0;
  std::uint64_t dist = 0;
};

std::optional<LeaderCert> parse(const local::Certificate& c) {
  util::BitReader r = c.reader();
  LeaderCert out;
  const auto root = r.read_varint();
  const auto parent = r.read_varint();
  const auto dist = r.read_varint();
  if (!root || !parent || !dist || !r.exhausted()) return std::nullopt;
  out.root = *root;
  out.parent = *parent;
  out.dist = *dist;
  return out;
}

std::optional<bool> decode_flag(const local::State& s) {
  util::BitReader r = s.reader();
  const auto bit = r.read_bit();
  if (!bit || !r.exhausted()) return std::nullopt;
  return *bit;
}

}  // namespace

local::State LeaderLanguage::encode_flag(bool is_leader) {
  return local::State::of_uint(is_leader ? 1 : 0, 1);
}

bool LeaderLanguage::contains(const local::Configuration& cfg) const {
  std::size_t leaders = 0;
  for (graph::NodeIndex v = 0; v < cfg.n(); ++v) {
    const auto flag = decode_flag(cfg.state(v));
    if (!flag) return false;
    if (*flag) ++leaders;
  }
  return leaders == 1;
}

local::Configuration LeaderLanguage::make_with_leader(
    std::shared_ptr<const graph::Graph> g, graph::NodeIndex leader) const {
  PLS_REQUIRE(leader < g->n());
  std::vector<local::State> states;
  states.reserve(g->n());
  for (graph::NodeIndex v = 0; v < g->n(); ++v)
    states.push_back(encode_flag(v == leader));
  return local::Configuration(std::move(g), std::move(states));
}

local::Configuration LeaderLanguage::sample_legal(
    std::shared_ptr<const graph::Graph> g, util::Rng& rng) const {
  const auto leader = static_cast<graph::NodeIndex>(rng.below(g->n()));
  return make_with_leader(std::move(g), leader);
}

core::Labeling LeaderScheme::mark(const local::Configuration& cfg) const {
  const graph::Graph& g = cfg.graph();
  graph::NodeIndex leader = graph::kInvalidNode;
  for (graph::NodeIndex v = 0; v < g.n(); ++v) {
    const auto flag = decode_flag(cfg.state(v));
    PLS_REQUIRE(flag.has_value());
    if (*flag) {
      PLS_REQUIRE(leader == graph::kInvalidNode);
      leader = v;
    }
  }
  PLS_REQUIRE(leader != graph::kInvalidNode);

  const graph::BfsResult tree = graph::bfs(g, leader);
  core::Labeling lab;
  lab.certs.reserve(g.n());
  for (graph::NodeIndex v = 0; v < g.n(); ++v) {
    util::BitWriter w;
    w.write_varint(g.id(leader));
    const graph::NodeIndex parent =
        tree.parent[v] == graph::kInvalidNode ? v : tree.parent[v];
    w.write_varint(g.id(parent));
    w.write_varint(tree.dist[v]);
    lab.certs.push_back(local::Certificate::from_writer(std::move(w)));
  }
  return lab;
}

bool LeaderScheme::verify(const local::VerifierContext& ctx) const {
  const auto flag = decode_flag(ctx.state());
  if (!flag) return false;
  const auto own = parse(ctx.certificate());
  if (!own) return false;

  std::vector<LeaderCert> nb_certs;
  nb_certs.reserve(ctx.degree());
  for (const local::NeighborView& nb : ctx.neighbors()) {
    const auto c = parse(*nb.cert);
    if (!c) return false;
    if (c->root != own->root) return false;  // root-id agreement
    nb_certs.push_back(*c);
  }

  if (own->dist == 0) {
    // The root must be the leader and carry the shared root id.
    if (!*flag) return false;
    if (own->root != ctx.id()) return false;
    if (own->parent != ctx.id()) return false;
  } else {
    // Non-roots must not be leaders and must have a parent one hop closer.
    if (*flag) return false;
    bool parent_ok = false;
    for (std::size_t i = 0; i < nb_certs.size(); ++i) {
      if (!ctx.neighbors()[i].id_visible) return false;
      if (ctx.neighbors()[i].id == own->parent &&
          nb_certs[i].dist + 1 == own->dist) {
        parent_ok = true;
        break;
      }
    }
    if (!parent_ok) return false;
  }
  return true;
}

std::size_t LeaderScheme::proof_size_bound(std::size_t n,
                                           std::size_t /*state_bits*/) const {
  return 2 * id_varint_bound(n) + varint_bits(n);
}

}  // namespace pls::schemes
