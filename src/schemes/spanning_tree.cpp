#include "schemes/spanning_tree.hpp"

#include <algorithm>
#include <unordered_map>

#include "graph/algorithms.hpp"
#include "schemes/common.hpp"
#include "util/assert.hpp"

namespace pls::schemes {

namespace {

struct TreeCert {
  graph::RawId root = 0;
  graph::RawId parent = 0;
  std::uint64_t dist = 0;
};

std::optional<TreeCert> parse(const local::Certificate& c) {
  util::BitReader r = c.reader();
  const auto root = r.read_varint();
  const auto parent = r.read_varint();
  const auto dist = r.read_varint();
  if (!root || !parent || !dist || !r.exhausted()) return std::nullopt;
  return TreeCert{*root, *parent, *dist};
}

local::Certificate make_cert(graph::RawId root, graph::RawId parent,
                             std::uint64_t dist) {
  util::BitWriter w;
  w.write_varint(root);
  w.write_varint(parent);
  w.write_varint(dist);
  return local::Certificate::from_writer(std::move(w));
}

}  // namespace

// ---------------------------------------------------------------------------
// stp: parent pointers
// ---------------------------------------------------------------------------

bool StpLanguage::contains(const local::Configuration& cfg) const {
  const auto pointers = decode_pointer_states(cfg);
  if (!pointers) return false;
  return graph::is_spanning_in_tree(cfg.graph(), *pointers);
}

local::Configuration StpLanguage::make_tree(
    std::shared_ptr<const graph::Graph> g, graph::NodeIndex root) const {
  PLS_REQUIRE(root < g->n());
  PLS_REQUIRE(g->is_connected());
  const graph::BfsResult tree = graph::bfs(*g, root);
  std::vector<local::State> states;
  states.reserve(g->n());
  for (graph::NodeIndex v = 0; v < g->n(); ++v) {
    if (tree.parent[v] == graph::kInvalidNode) {
      states.push_back(encode_pointer(std::nullopt));
    } else {
      states.push_back(encode_pointer(g->id(tree.parent[v])));
    }
  }
  return local::Configuration(std::move(g), std::move(states));
}

local::Configuration StpLanguage::sample_legal(
    std::shared_ptr<const graph::Graph> g, util::Rng& rng) const {
  const auto root = static_cast<graph::NodeIndex>(rng.below(g->n()));
  return make_tree(std::move(g), root);
}

core::Labeling StpScheme::mark(const local::Configuration& cfg) const {
  const auto pointers = decode_pointer_states(cfg);
  PLS_REQUIRE(pointers.has_value());
  const graph::Graph& g = cfg.graph();

  graph::NodeIndex root = graph::kInvalidNode;
  for (graph::NodeIndex v = 0; v < g.n(); ++v)
    if (!(*pointers)[v].has_value()) {
      PLS_REQUIRE(root == graph::kInvalidNode);
      root = v;
    }
  PLS_REQUIRE(root != graph::kInvalidNode);

  // Depth of every node along its pointer chain (memoized walk).
  std::vector<std::uint64_t> depth(g.n(), 0);
  std::vector<std::uint8_t> done(g.n(), 0);
  done[root] = 1;
  for (graph::NodeIndex start = 0; start < g.n(); ++start) {
    std::vector<graph::NodeIndex> stack;
    graph::NodeIndex v = start;
    while (!done[v]) {
      stack.push_back(v);
      PLS_REQUIRE((*pointers)[v].has_value());
      v = *(*pointers)[v];
    }
    std::uint64_t base = depth[v];
    while (!stack.empty()) {
      const graph::NodeIndex u = stack.back();
      stack.pop_back();
      depth[u] = ++base;
      done[u] = 1;
    }
  }

  core::Labeling lab;
  lab.certs.reserve(g.n());
  for (graph::NodeIndex v = 0; v < g.n(); ++v) {
    const graph::NodeIndex parent =
        (*pointers)[v].has_value() ? *(*pointers)[v] : v;
    lab.certs.push_back(make_cert(g.id(root), g.id(parent), depth[v]));
  }
  return lab;
}

bool StpScheme::verify(const local::VerifierContext& ctx) const {
  const auto pointer = decode_pointer(ctx.state());
  if (!pointer) return false;
  const auto own = parse(ctx.certificate());
  if (!own) return false;

  // Root-id agreement with every neighbor.
  std::vector<TreeCert> nb_certs;
  nb_certs.reserve(ctx.degree());
  for (const local::NeighborView& nb : ctx.neighbors()) {
    const auto c = parse(*nb.cert);
    if (!c) return false;
    if (c->root != own->root) return false;
    nb_certs.push_back(*c);
  }

  if (!pointer->has_value()) {
    // The root: distance 0 and the shared root id is mine.
    return own->dist == 0 && own->root == ctx.id();
  }
  if (own->dist == 0) return false;  // only the root may claim distance 0.
  // The certificate's parent field must match the state's pointer, and that
  // neighbor must be one hop closer to the root.
  if (own->parent != **pointer) return false;
  for (std::size_t i = 0; i < nb_certs.size(); ++i) {
    if (!ctx.neighbors()[i].id_visible) return false;
    if (ctx.neighbors()[i].id == **pointer)
      return nb_certs[i].dist + 1 == own->dist;
  }
  return false;  // pointer target is not a neighbor
}

std::size_t StpScheme::proof_size_bound(std::size_t n,
                                        std::size_t /*state_bits*/) const {
  return 2 * id_varint_bound(n) + varint_bits(n);
}

// ---------------------------------------------------------------------------
// stl: adjacency lists
// ---------------------------------------------------------------------------

bool StlLanguage::contains(const local::Configuration& cfg) const {
  const auto mask = subgraph_mask_from_states(cfg);
  if (!mask) return false;
  return graph::is_spanning_tree(cfg.graph(), *mask);
}

local::Configuration StlLanguage::make_from_mask(
    std::shared_ptr<const graph::Graph> g,
    const std::vector<bool>& mask) const {
  auto states = states_from_subgraph_mask(*g, mask);
  return local::Configuration(std::move(g), std::move(states));
}

local::Configuration StlLanguage::sample_legal(
    std::shared_ptr<const graph::Graph> g, util::Rng& rng) const {
  PLS_REQUIRE(g->is_connected());
  const auto root = static_cast<graph::NodeIndex>(rng.below(g->n()));
  const graph::BfsResult tree = graph::bfs(*g, root);
  std::vector<bool> mask(g->m(), false);
  for (graph::NodeIndex v = 0; v < g->n(); ++v) {
    if (tree.parent[v] == graph::kInvalidNode) continue;
    const auto e = g->find_edge(v, tree.parent[v]);
    PLS_ASSERT(e.has_value());
    mask[*e] = true;
  }
  return make_from_mask(std::move(g), mask);
}

core::Labeling StlScheme::mark(const local::Configuration& cfg) const {
  const auto mask = subgraph_mask_from_states(cfg);
  PLS_REQUIRE(mask.has_value());
  const graph::Graph& g = cfg.graph();

  // Deterministic root: the minimum-id node.
  const auto root_opt = g.find_by_id(g.min_id());
  PLS_ASSERT(root_opt.has_value());
  const graph::NodeIndex root = *root_opt;
  const graph::BfsResult tree = graph::bfs_on_subgraph(g, root, *mask);

  core::Labeling lab;
  lab.certs.reserve(g.n());
  for (graph::NodeIndex v = 0; v < g.n(); ++v) {
    PLS_REQUIRE(tree.dist[v] != graph::BfsResult::kUnreachable);
    const graph::NodeIndex parent =
        tree.parent[v] == graph::kInvalidNode ? v : tree.parent[v];
    lab.certs.push_back(make_cert(g.id(root), g.id(parent), tree.dist[v]));
  }
  return lab;
}

bool StlScheme::verify(const local::VerifierContext& ctx) const {
  const auto own_list = decode_adjacency_list(ctx.state());
  if (!own_list) return false;
  const auto own = parse(ctx.certificate());
  if (!own) return false;

  // Gather neighbor data, check root agreement, and check symmetry of the
  // adjacency lists (u lists v iff v lists u).
  std::unordered_map<graph::RawId, const TreeCert*> cert_of;
  std::vector<TreeCert> nb_certs(ctx.degree());
  for (std::size_t i = 0; i < ctx.degree(); ++i) {
    const local::NeighborView& nb = ctx.neighbors()[i];
    if (!nb.id_visible || nb.state == nullptr) return false;
    const auto c = parse(*nb.cert);
    if (!c) return false;
    if (c->root != own->root) return false;
    nb_certs[i] = *c;
    cert_of[nb.id] = &nb_certs[i];
    const auto their_list = decode_adjacency_list(*nb.state);
    if (!their_list) return false;
    const bool i_list_them =
        std::binary_search(own_list->begin(), own_list->end(), nb.id);
    const bool they_list_me =
        std::binary_search(their_list->begin(), their_list->end(), ctx.id());
    if (i_list_them != they_list_me) return false;
  }

  // Every listed node must be an actual neighbor.
  for (const graph::RawId id : *own_list)
    if (cert_of.find(id) == cert_of.end()) return false;

  if (own->dist == 0) {
    if (own->root != ctx.id()) return false;
    if (own->parent != ctx.id()) return false;
  } else {
    // My parent must be a listed tree edge, one hop closer to the root.
    if (!std::binary_search(own_list->begin(), own_list->end(), own->parent))
      return false;
    const auto it = cert_of.find(own->parent);
    if (it == cert_of.end()) return false;
    if (it->second->dist + 1 != own->dist) return false;
  }

  // Every listed edge must be a parent edge of exactly one side: this forces
  // the claimed edge set to coincide with the certified in-tree.
  for (const graph::RawId id : *own_list) {
    const TreeCert& other = *cert_of.at(id);
    const bool i_am_child = own->parent == id && own->dist == other.dist + 1;
    const bool they_are_child =
        other.parent == ctx.id() && other.dist == own->dist + 1;
    if (!i_am_child && !they_are_child) return false;
  }
  return true;
}

std::size_t StlScheme::proof_size_bound(std::size_t n,
                                        std::size_t /*state_bits*/) const {
  return 2 * id_varint_bound(n) + varint_bits(n);
}

}  // namespace pls::schemes
