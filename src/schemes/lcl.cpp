#include "schemes/lcl.hpp"

#include "schemes/common.hpp"
#include "util/assert.hpp"

namespace pls::schemes {

namespace {

std::optional<bool> decode_bit(const local::State& s) {
  util::BitReader r = s.reader();
  const auto bit = r.read_bit();
  if (!bit || !r.exhausted()) return std::nullopt;
  return bit;
}

core::Labeling empty_labeling(std::size_t n) {
  core::Labeling lab;
  lab.certs.assign(n, local::Certificate{});
  return lab;
}

}  // namespace

// ---------------------------------------------------------------------------
// dominating set
// ---------------------------------------------------------------------------

local::State DominatingSetLanguage::encode_member(bool in_set) {
  return local::State::of_uint(in_set ? 1 : 0, 1);
}

bool DominatingSetLanguage::contains(const local::Configuration& cfg) const {
  const graph::Graph& g = cfg.graph();
  std::vector<bool> member(g.n(), false);
  for (graph::NodeIndex v = 0; v < g.n(); ++v) {
    const auto bit = decode_bit(cfg.state(v));
    if (!bit) return false;
    member[v] = *bit;
  }
  for (graph::NodeIndex v = 0; v < g.n(); ++v) {
    if (member[v]) continue;
    bool dominated = false;
    for (const graph::AdjEntry& a : g.adjacency(v))
      if (member[a.to]) {
        dominated = true;
        break;
      }
    if (!dominated) return false;
  }
  return true;
}

local::Configuration DominatingSetLanguage::sample_legal(
    std::shared_ptr<const graph::Graph> g, util::Rng& rng) const {
  const graph::Graph& graph = *g;
  std::vector<bool> member(graph.n(), false);
  std::vector<bool> dominated(graph.n(), false);
  for (const std::uint64_t vi : rng.permutation(graph.n())) {
    const auto v = static_cast<graph::NodeIndex>(vi);
    if (dominated[v]) continue;
    member[v] = true;
    dominated[v] = true;
    for (const graph::AdjEntry& a : graph.adjacency(v)) dominated[a.to] = true;
  }
  std::vector<local::State> states;
  states.reserve(graph.n());
  for (graph::NodeIndex v = 0; v < graph.n(); ++v)
    states.push_back(encode_member(member[v]));
  return local::Configuration(std::move(g), std::move(states));
}

core::Labeling DominatingSetScheme::mark(
    const local::Configuration& cfg) const {
  return empty_labeling(cfg.n());
}

bool DominatingSetScheme::verify(const local::VerifierContext& ctx) const {
  const auto own = decode_bit(ctx.state());
  if (!own) return false;
  if (*own) return true;
  for (const local::NeighborView& nb : ctx.neighbors()) {
    if (nb.state == nullptr) return false;
    const auto theirs = decode_bit(*nb.state);
    if (!theirs) return false;
    if (*theirs) return true;
  }
  return false;  // neither in the set nor dominated
}

// ---------------------------------------------------------------------------
// maximal matching
// ---------------------------------------------------------------------------

bool MaximalMatchingLanguage::contains(const local::Configuration& cfg) const {
  const auto pointers = decode_pointer_states(cfg);
  if (!pointers) return false;
  const graph::Graph& g = cfg.graph();
  for (graph::NodeIndex v = 0; v < g.n(); ++v) {
    if ((*pointers)[v].has_value()) {
      const graph::NodeIndex u = *(*pointers)[v];
      if (!(*pointers)[u].has_value() || *(*pointers)[u] != v)
        return false;  // partners must be mutual
    } else {
      // Maximality: an unmatched node must have no unmatched neighbor.
      for (const graph::AdjEntry& a : g.adjacency(v))
        if (!(*pointers)[a.to].has_value()) return false;
    }
  }
  return true;
}

local::Configuration MaximalMatchingLanguage::sample_legal(
    std::shared_ptr<const graph::Graph> g, util::Rng& rng) const {
  const graph::Graph& graph = *g;
  std::vector<graph::NodeIndex> partner(graph.n(), graph::kInvalidNode);
  for (const std::uint64_t ei : rng.permutation(graph.m())) {
    const graph::Edge& e = graph.edge(static_cast<graph::EdgeIndex>(ei));
    if (partner[e.u] != graph::kInvalidNode ||
        partner[e.v] != graph::kInvalidNode)
      continue;
    partner[e.u] = e.v;
    partner[e.v] = e.u;
  }
  std::vector<local::State> states;
  states.reserve(graph.n());
  for (graph::NodeIndex v = 0; v < graph.n(); ++v) {
    if (partner[v] == graph::kInvalidNode) {
      states.push_back(encode_pointer(std::nullopt));
    } else {
      states.push_back(encode_pointer(graph.id(partner[v])));
    }
  }
  return local::Configuration(std::move(g), std::move(states));
}

core::Labeling MaximalMatchingScheme::mark(
    const local::Configuration& cfg) const {
  return empty_labeling(cfg.n());
}

bool MaximalMatchingScheme::verify(const local::VerifierContext& ctx) const {
  const auto own = decode_pointer(ctx.state());
  if (!own) return false;
  if (own->has_value()) {
    // My partner must be a neighbor pointing back at me.
    for (const local::NeighborView& nb : ctx.neighbors()) {
      if (!nb.id_visible || nb.state == nullptr) return false;
      if (nb.id != **own) continue;
      const auto theirs = decode_pointer(*nb.state);
      return theirs && theirs->has_value() && **theirs == ctx.id();
    }
    return false;  // partner is not a neighbor
  }
  // Unmatched: every neighbor must be matched (with someone).
  for (const local::NeighborView& nb : ctx.neighbors()) {
    if (nb.state == nullptr) return false;
    const auto theirs = decode_pointer(*nb.state);
    if (!theirs || !theirs->has_value()) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// maximal independent set
// ---------------------------------------------------------------------------

local::State MisLanguage::encode_member(bool in_set) {
  return local::State::of_uint(in_set ? 1 : 0, 1);
}

bool MisLanguage::contains(const local::Configuration& cfg) const {
  const graph::Graph& g = cfg.graph();
  std::vector<bool> member(g.n(), false);
  for (graph::NodeIndex v = 0; v < g.n(); ++v) {
    const auto bit = decode_bit(cfg.state(v));
    if (!bit) return false;
    member[v] = *bit;
  }
  for (const graph::Edge& e : g.edges())
    if (member[e.u] && member[e.v]) return false;  // independence
  for (graph::NodeIndex v = 0; v < g.n(); ++v) {
    if (member[v]) continue;
    bool blocked = false;
    for (const graph::AdjEntry& a : g.adjacency(v))
      if (member[a.to]) {
        blocked = true;
        break;
      }
    if (!blocked) return false;  // maximality
  }
  return true;
}

local::Configuration MisLanguage::sample_legal(
    std::shared_ptr<const graph::Graph> g, util::Rng& rng) const {
  const graph::Graph& graph = *g;
  std::vector<bool> member(graph.n(), false);
  std::vector<bool> blocked(graph.n(), false);
  for (const std::uint64_t vi : rng.permutation(graph.n())) {
    const auto v = static_cast<graph::NodeIndex>(vi);
    if (blocked[v]) continue;
    member[v] = true;
    blocked[v] = true;
    for (const graph::AdjEntry& a : graph.adjacency(v)) blocked[a.to] = true;
  }
  std::vector<local::State> states;
  states.reserve(graph.n());
  for (graph::NodeIndex v = 0; v < graph.n(); ++v)
    states.push_back(encode_member(member[v]));
  return local::Configuration(std::move(g), std::move(states));
}

core::Labeling MisScheme::mark(const local::Configuration& cfg) const {
  return empty_labeling(cfg.n());
}

bool MisScheme::verify(const local::VerifierContext& ctx) const {
  const auto own = decode_bit(ctx.state());
  if (!own) return false;
  bool has_member_neighbor = false;
  for (const local::NeighborView& nb : ctx.neighbors()) {
    if (nb.state == nullptr) return false;
    const auto theirs = decode_bit(*nb.state);
    if (!theirs) return false;
    if (*theirs) has_member_neighbor = true;
  }
  return *own ? !has_member_neighbor : has_member_neighbor;
}

}  // namespace pls::schemes
