#include "schemes/common.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace pls::schemes {

State encode_pointer(std::optional<graph::RawId> target) {
  util::BitWriter w;
  w.write_bit(target.has_value());
  if (target) w.write_varint(*target);
  return State::from_writer(std::move(w));
}

std::optional<std::optional<graph::RawId>> decode_pointer(const State& s) {
  util::BitReader r = s.reader();
  const auto present = r.read_bit();
  if (!present) return std::nullopt;
  if (!*present) {
    if (!r.exhausted()) return std::nullopt;
    return std::optional<graph::RawId>{std::nullopt};
  }
  const auto id = r.read_varint();
  if (!id || !r.exhausted()) return std::nullopt;
  return std::optional<graph::RawId>{*id};
}

std::optional<std::vector<std::optional<graph::NodeIndex>>>
decode_pointer_states(const Configuration& cfg) {
  const graph::Graph& g = cfg.graph();
  std::vector<std::optional<graph::NodeIndex>> pointers(g.n());
  for (graph::NodeIndex v = 0; v < g.n(); ++v) {
    const auto p = decode_pointer(cfg.state(v));
    if (!p) return std::nullopt;
    if (!p->has_value()) continue;
    const auto target = g.find_by_id(**p);
    if (!target) return std::nullopt;
    if (!g.find_edge(v, *target)) return std::nullopt;  // must be a neighbor
    pointers[v] = *target;
  }
  return pointers;
}

State encode_adjacency_list(std::vector<graph::RawId> ids) {
  std::sort(ids.begin(), ids.end());
  PLS_REQUIRE(std::adjacent_find(ids.begin(), ids.end()) == ids.end());
  util::BitWriter w;
  w.write_varint(ids.size());
  for (const graph::RawId id : ids) w.write_varint(id);
  return State::from_writer(std::move(w));
}

std::optional<std::vector<graph::RawId>> decode_adjacency_list(const State& s) {
  util::BitReader r = s.reader();
  const auto count = r.read_varint();
  if (!count || *count > (1u << 20)) return std::nullopt;
  std::vector<graph::RawId> ids;
  ids.reserve(static_cast<std::size_t>(*count));
  graph::RawId prev = 0;
  for (std::uint64_t i = 0; i < *count; ++i) {
    const auto id = r.read_varint();
    if (!id) return std::nullopt;
    if (i > 0 && *id <= prev) return std::nullopt;  // canonical: increasing
    prev = *id;
    ids.push_back(*id);
  }
  if (!r.exhausted()) return std::nullopt;
  return ids;
}

std::optional<std::vector<bool>> subgraph_mask_from_states(
    const Configuration& cfg) {
  const graph::Graph& g = cfg.graph();
  std::vector<bool> mask(g.m(), false);
  // listed[v] = decoded list of v (validated below).
  std::vector<std::vector<graph::RawId>> listed(g.n());
  for (graph::NodeIndex v = 0; v < g.n(); ++v) {
    auto list = decode_adjacency_list(cfg.state(v));
    if (!list) return std::nullopt;
    listed[v] = std::move(*list);
  }
  for (graph::NodeIndex v = 0; v < g.n(); ++v) {
    for (const graph::RawId id : listed[v]) {
      const auto u = g.find_by_id(id);
      if (!u) return std::nullopt;
      const auto e = g.find_edge(v, *u);
      if (!e) return std::nullopt;  // listed node is not a neighbor
      // Symmetry: u must list v as well.
      if (!std::binary_search(listed[*u].begin(), listed[*u].end(), g.id(v)))
        return std::nullopt;
      mask[*e] = true;
    }
  }
  return mask;
}

std::vector<State> states_from_subgraph_mask(
    const graph::Graph& g, const std::vector<bool>& edge_mask) {
  PLS_REQUIRE(edge_mask.size() == g.m());
  std::vector<State> states;
  states.reserve(g.n());
  for (graph::NodeIndex v = 0; v < g.n(); ++v) {
    std::vector<graph::RawId> ids;
    for (const graph::AdjEntry& a : g.adjacency(v))
      if (edge_mask[a.edge]) ids.push_back(g.id(a.to));
    states.push_back(encode_adjacency_list(std::move(ids)));
  }
  return states;
}

std::size_t varint_bits(std::uint64_t value) {
  const unsigned width = util::bit_width_for(value);
  return 8u * ((width + 6u) / 7u);
}

std::size_t id_varint_bound(std::size_t n) {
  const std::uint64_t max_id =
      16u * static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(n) + 1;
  return varint_bits(max_id);
}

}  // namespace pls::schemes
