#include "schemes/regular.hpp"

#include <algorithm>

#include "schemes/common.hpp"
#include "util/assert.hpp"

namespace pls::schemes {

bool RegularLanguage::contains(const local::Configuration& cfg) const {
  const auto mask = subgraph_mask_from_states(cfg);
  if (!mask) return false;
  const graph::Graph& g = cfg.graph();
  std::vector<std::size_t> deg(g.n(), 0);
  for (graph::EdgeIndex e = 0; e < g.m(); ++e)
    if ((*mask)[e]) {
      ++deg[g.edge(e).u];
      ++deg[g.edge(e).v];
    }
  for (graph::NodeIndex v = 1; v < g.n(); ++v)
    if (deg[v] != deg[0]) return false;
  return true;
}

local::Configuration RegularLanguage::sample_legal(
    std::shared_ptr<const graph::Graph> g, util::Rng& rng) const {
  // Try a perfect matching greedily (1-regular); fall back to 0-regular.
  std::vector<bool> mask(g->m(), false);
  std::vector<bool> matched(g->n(), false);
  auto order = rng.permutation(g->m());
  for (const std::uint64_t ei : order) {
    const auto e = static_cast<graph::EdgeIndex>(ei);
    const graph::Edge& ed = g->edge(e);
    if (matched[ed.u] || matched[ed.v]) continue;
    matched[ed.u] = matched[ed.v] = true;
    mask[e] = true;
  }
  const bool perfect =
      std::all_of(matched.begin(), matched.end(), [](bool b) { return b; });
  if (!perfect) mask.assign(g->m(), false);  // 0-regular fallback
  auto states = states_from_subgraph_mask(*g, mask);
  return local::Configuration(std::move(g), std::move(states));
}

local::Configuration RegularLanguage::make_full_subgraph(
    std::shared_ptr<const graph::Graph> g) const {
  std::vector<bool> mask(g->m(), true);
  auto states = states_from_subgraph_mask(*g, mask);
  return local::Configuration(std::move(g), std::move(states));
}

core::Labeling RegularScheme::mark(const local::Configuration& cfg) const {
  const auto list0 = decode_adjacency_list(cfg.state(0));
  PLS_REQUIRE(list0.has_value());
  const std::uint64_t degree = list0->size();
  util::BitWriter w;
  w.write_varint(degree);
  const local::Certificate cert = local::Certificate::from_writer(std::move(w));
  core::Labeling lab;
  lab.certs.assign(cfg.n(), cert);
  return lab;
}

bool RegularScheme::verify(const local::VerifierContext& ctx) const {
  const auto own_list = decode_adjacency_list(ctx.state());
  if (!own_list) return false;

  util::BitReader r = ctx.certificate().reader();
  const auto claimed = r.read_varint();
  if (!claimed || !r.exhausted()) return false;
  if (*claimed != own_list->size()) return false;

  std::size_t listed_neighbors = 0;
  for (const local::NeighborView& nb : ctx.neighbors()) {
    if (!nb.id_visible || nb.state == nullptr) return false;
    // Degree agreement.
    util::BitReader nr = nb.cert->reader();
    const auto theirs = nr.read_varint();
    if (!theirs || !nr.exhausted()) return false;
    if (*theirs != *claimed) return false;
    // Symmetry of the description.
    const auto their_list = decode_adjacency_list(*nb.state);
    if (!their_list) return false;
    const bool i_list_them =
        std::binary_search(own_list->begin(), own_list->end(), nb.id);
    const bool they_list_me =
        std::binary_search(their_list->begin(), their_list->end(), ctx.id());
    if (i_list_them != they_list_me) return false;
    if (i_list_them) ++listed_neighbors;
  }
  // Every listed node must be an actual neighbor.
  return listed_neighbors == own_list->size();
}

std::size_t RegularScheme::proof_size_bound(std::size_t n,
                                            std::size_t /*state_bits*/) const {
  return varint_bits(n);
}

}  // namespace pls::schemes
