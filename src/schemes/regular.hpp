// REGULAR — the subgraph described by the states is regular.
//
// States are adjacency lists; the language holds when the described subgraph
// H_ℓ has all degrees equal.  A compact scheme exists (certificate = the
// common degree; verify = my list length equals it and all neighbors claim
// the same degree).  The language matters mostly as a *negative* example for
// the error-sensitivity extension: gluing two regular graphs of different
// degrees yields an instance that is far from the language yet rejected at
// only O(1) nodes — no scheme for `regular` can be error-sensitive
// (src/sensitivity reproduces the construction).
#pragma once

#include "pls/scheme.hpp"

namespace pls::schemes {

class RegularLanguage final : public core::Language {
 public:
  std::string_view name() const noexcept override { return "regular"; }
  bool contains(const local::Configuration& cfg) const override;

  /// H_ℓ = a maximal matching greedily built on the graph (1-regular is the
  /// easy witness; empty subgraph would be 0-regular but degenerate — we use
  /// the matching when possible and fall back to the empty subgraph).
  local::Configuration sample_legal(std::shared_ptr<const graph::Graph> g,
                                    util::Rng& rng) const override;

  /// Adjacency-list configuration describing the full graph (legal iff the
  /// graph itself is regular).
  local::Configuration make_full_subgraph(
      std::shared_ptr<const graph::Graph> g) const;
};

class RegularScheme final : public core::Scheme {
 public:
  explicit RegularScheme(const RegularLanguage& language)
      : language_(language) {}

  std::string_view name() const noexcept override { return "regular/degree"; }
  const core::Language& language() const noexcept override {
    return language_;
  }

  core::Labeling mark(const local::Configuration& cfg) const override;
  bool verify(const local::VerifierContext& ctx) const override;
  std::size_t proof_size_bound(std::size_t n,
                               std::size_t state_bits) const override;

 private:
  const RegularLanguage& language_;
};

}  // namespace pls::schemes
