#include "schemes/distributed_marker.hpp"

#include "schemes/common.hpp"
#include "util/assert.hpp"

namespace pls::schemes {

namespace {

// Protocol state during construction:
//   [1 bit   set?]
//   if set: [varint root][varint parent][varint dist]
//   [1 bit   has_pointer?]            (stp only; leader stores the flag bit)
//   if has_pointer: [varint pointer]
struct BuildState {
  bool set = false;
  graph::RawId root = 0;
  graph::RawId parent = 0;
  std::uint64_t dist = 0;
  bool has_pointer = false;
  graph::RawId pointer = 0;
};

local::State encode_build(const BuildState& s) {
  util::BitWriter w;
  w.write_bit(s.set);
  if (s.set) {
    w.write_varint(s.root);
    w.write_varint(s.parent);
    w.write_varint(s.dist);
  }
  w.write_bit(s.has_pointer);
  if (s.has_pointer) w.write_varint(s.pointer);
  return local::State::from_writer(std::move(w));
}

std::optional<BuildState> decode_build(const local::State& s) {
  util::BitReader r = s.reader();
  BuildState out;
  const auto set = r.read_bit();
  if (!set) return std::nullopt;
  out.set = *set;
  if (out.set) {
    const auto root = r.read_varint();
    const auto parent = r.read_varint();
    const auto dist = r.read_varint();
    if (!root || !parent || !dist) return std::nullopt;
    out.root = *root;
    out.parent = *parent;
    out.dist = *dist;
  }
  const auto has_ptr = r.read_bit();
  if (!has_ptr) return std::nullopt;
  out.has_pointer = *has_ptr;
  if (out.has_pointer) {
    const auto ptr = r.read_varint();
    if (!ptr) return std::nullopt;
    out.pointer = *ptr;
  }
  if (!r.exhausted()) return std::nullopt;
  return out;
}

/// Runs `step` to quiescence, accumulating rounds and message bits, then
/// extracts (root, parent, dist) certificates from the final states.
DistributedMarking run_and_extract(local::SyncNetwork& net,
                                   const local::StepFn& step,
                                   std::size_t max_rounds) {
  DistributedMarking out;
  for (std::size_t round = 0; round < max_rounds; ++round) {
    const local::RoundStats stats = net.step(step);
    ++out.rounds;
    out.message_bits += stats.message_bits;
    if (stats.changed_nodes == 0) break;
  }
  const graph::Graph& g = net.graph();
  out.labeling.certs.reserve(g.n());
  for (graph::NodeIndex v = 0; v < g.n(); ++v) {
    const auto s = decode_build(net.states()[v]);
    PLS_ASSERT(s.has_value() && s->set);
    util::BitWriter w;
    w.write_varint(s->root);
    w.write_varint(s->parent);
    w.write_varint(s->dist);
    out.labeling.certs.push_back(local::Certificate::from_writer(std::move(w)));
  }
  return out;
}

}  // namespace

DistributedMarking distributed_leader_marking(
    const local::Configuration& cfg) {
  const graph::Graph& g = cfg.graph();

  // Initial protocol states: the leader is the seed.
  std::vector<local::State> init;
  init.reserve(g.n());
  for (graph::NodeIndex v = 0; v < g.n(); ++v) {
    util::BitReader r = cfg.state(v).reader();
    const auto flag = r.read_bit();
    PLS_REQUIRE(flag.has_value() && r.exhausted());
    BuildState s;
    if (*flag) {
      s.set = true;
      s.root = g.id(v);
      s.parent = g.id(v);
      s.dist = 0;
    }
    init.push_back(encode_build(s));
  }

  // BFS flooding: an unset node adopts (root, parent = that neighbor,
  // dist + 1) from the minimum-distance set neighbor it sees.
  const local::StepFn step = [](graph::RawId /*me*/, const local::State& own,
                                std::span<const local::NeighborState> nbs) {
    const auto mine = decode_build(own);
    PLS_ASSERT(mine.has_value());
    if (mine->set) return own;
    BuildState best = *mine;
    for (const local::NeighborState& nb : nbs) {
      const auto theirs = decode_build(*nb.state);
      if (!theirs || !theirs->set) continue;
      if (!best.set || theirs->dist + 1 < best.dist) {
        best.set = true;
        best.root = theirs->root;
        best.parent = nb.id;
        best.dist = theirs->dist + 1;
      }
    }
    return encode_build(best);
  };

  local::SyncNetwork net(cfg.graph_ptr(), std::move(init));
  return run_and_extract(net, step, g.n() + 2);
}

DistributedMarking distributed_stp_marking(const local::Configuration& cfg) {
  const graph::Graph& g = cfg.graph();
  const auto pointers = decode_pointer_states(cfg);
  PLS_REQUIRE(pointers.has_value());

  std::vector<local::State> init;
  init.reserve(g.n());
  for (graph::NodeIndex v = 0; v < g.n(); ++v) {
    BuildState s;
    if ((*pointers)[v].has_value()) {
      s.has_pointer = true;
      s.pointer = g.id(*(*pointers)[v]);
    } else {
      // The root knows it is the root immediately.
      s.set = true;
      s.root = g.id(v);
      s.parent = g.id(v);
      s.dist = 0;
    }
    init.push_back(encode_build(s));
  }

  // Depths propagate down the pointer tree: a node becomes set once its
  // parent (the pointer target) is set.
  const local::StepFn step = [](graph::RawId /*me*/, const local::State& own,
                                std::span<const local::NeighborState> nbs) {
    const auto mine = decode_build(own);
    PLS_ASSERT(mine.has_value());
    if (mine->set || !mine->has_pointer) return own;
    for (const local::NeighborState& nb : nbs) {
      if (nb.id != mine->pointer) continue;
      const auto theirs = decode_build(*nb.state);
      if (!theirs || !theirs->set) break;
      BuildState next = *mine;
      next.set = true;
      next.root = theirs->root;
      next.parent = nb.id;
      next.dist = theirs->dist + 1;
      return encode_build(next);
    }
    return own;
  };

  local::SyncNetwork net(cfg.graph_ptr(), std::move(init));
  return run_and_extract(net, step, g.n() + 2);
}

}  // namespace pls::schemes
