#include "schemes/agree.hpp"

#include "util/assert.hpp"

namespace pls::schemes {

AgreeLanguage::AgreeLanguage(unsigned value_bits) : value_bits_(value_bits) {
  PLS_REQUIRE(value_bits >= 1 && value_bits <= 64);
}

local::State AgreeLanguage::encode_value(std::uint64_t value) const {
  return local::State::of_uint(value, value_bits_);
}

bool AgreeLanguage::contains(const local::Configuration& cfg) const {
  if (cfg.n() == 0) return false;
  const local::State& first = cfg.state(0);
  if (first.bit_size() != value_bits_) return false;
  for (graph::NodeIndex v = 1; v < cfg.n(); ++v)
    if (cfg.state(v) != first) return false;
  return true;
}

local::Configuration AgreeLanguage::sample_legal(
    std::shared_ptr<const graph::Graph> g, util::Rng& rng) const {
  const std::uint64_t value =
      value_bits_ == 64 ? rng.bits() : rng.below(std::uint64_t{1} << value_bits_);
  std::vector<local::State> states(g->n(), encode_value(value));
  return local::Configuration(std::move(g), std::move(states));
}

core::Labeling AgreeScheme::mark(const local::Configuration& cfg) const {
  // Certificate = the (common) value; simply copy every node's state.
  core::Labeling lab;
  lab.certs.reserve(cfg.n());
  for (graph::NodeIndex v = 0; v < cfg.n(); ++v)
    lab.certs.push_back(cfg.state(v));
  return lab;
}

bool AgreeScheme::verify(const local::VerifierContext& ctx) const {
  if (ctx.state().bit_size() != language_.value_bits()) return false;
  if (ctx.certificate() != ctx.state()) return false;
  for (const local::NeighborView& nb : ctx.neighbors())
    if (*nb.cert != ctx.certificate()) return false;
  return true;
}

std::size_t AgreeScheme::proof_size_bound(std::size_t /*n*/,
                                          std::size_t state_bits) const {
  return state_bits;
}

}  // namespace pls::schemes
