#include "schemes/bipartite.hpp"

#include "graph/algorithms.hpp"
#include "util/assert.hpp"

namespace pls::schemes {

bool BipartiteLanguage::contains(const local::Configuration& cfg) const {
  // A network property: states must be empty, the graph must be 2-colorable.
  for (graph::NodeIndex v = 0; v < cfg.n(); ++v)
    if (!cfg.state(v).empty()) return false;
  return graph::bipartition(cfg.graph()).has_value();
}

local::Configuration BipartiteLanguage::sample_legal(
    std::shared_ptr<const graph::Graph> g, util::Rng& /*rng*/) const {
  PLS_REQUIRE(graph::bipartition(*g).has_value());
  std::vector<local::State> states(g->n());
  return local::Configuration(std::move(g), std::move(states));
}

core::Labeling BipartiteScheme::mark(const local::Configuration& cfg) const {
  const auto coloring = graph::bipartition(cfg.graph());
  PLS_REQUIRE(coloring.has_value());
  core::Labeling lab;
  lab.certs.reserve(cfg.n());
  for (graph::NodeIndex v = 0; v < cfg.n(); ++v)
    lab.certs.push_back(local::Certificate::of_uint((*coloring)[v], 1));
  return lab;
}

bool BipartiteScheme::verify(const local::VerifierContext& ctx) const {
  if (!ctx.state().empty()) return false;
  util::BitReader r = ctx.certificate().reader();
  const auto own = r.read_bit();
  if (!own || !r.exhausted()) return false;
  for (const local::NeighborView& nb : ctx.neighbors()) {
    util::BitReader nr = nb.cert->reader();
    const auto theirs = nr.read_bit();
    if (!theirs || !nr.exhausted()) return false;
    if (*theirs == *own) return false;
  }
  return true;
}

std::size_t BipartiteScheme::proof_size_bound(std::size_t /*n*/,
                                              std::size_t /*state_bits*/) const {
  return 1;
}

}  // namespace pls::schemes
