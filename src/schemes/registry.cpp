#include "schemes/registry.hpp"

#include "schemes/acyclic.hpp"
#include "schemes/agree.hpp"
#include "schemes/bipartite.hpp"
#include "schemes/coloring.hpp"
#include "schemes/lcl.hpp"
#include "schemes/leader.hpp"
#include "schemes/mst.hpp"
#include "schemes/regular.hpp"
#include "schemes/spanning_tree.hpp"

namespace pls::schemes {

namespace {

template <typename LanguageT, typename SchemeT, typename... LangArgs>
SchemeEntry make_entry(std::string label, LangArgs&&... args) {
  auto language = std::make_shared<const LanguageT>(
      std::forward<LangArgs>(args)...);
  auto scheme = std::make_shared<const SchemeT>(*language);
  SchemeEntry entry;
  entry.label = std::move(label);
  entry.language = language;
  entry.scheme = scheme;
  return entry;
}

}  // namespace

std::vector<SchemeEntry> standard_catalog(const CatalogOptions& options) {
  std::vector<SchemeEntry> catalog;
  catalog.push_back(
      make_entry<AgreeLanguage, AgreeScheme>("agree", options.agree_value_bits));
  catalog.push_back(make_entry<LeaderLanguage, LeaderScheme>("leader"));
  catalog.push_back(make_entry<AcyclicLanguage, AcyclicScheme>("acyclic"));
  catalog.push_back(make_entry<StpLanguage, StpScheme>("stp"));
  catalog.push_back(make_entry<StlLanguage, StlScheme>("stl"));
  {
    SchemeEntry mst = make_entry<MstLanguage, MstScheme>("mstl");
    mst.needs_weighted = true;
    catalog.push_back(std::move(mst));
  }
  {
    SchemeEntry bip = make_entry<BipartiteLanguage, BipartiteScheme>("bipartite");
    bip.needs_bipartite = true;
    catalog.push_back(std::move(bip));
  }
  catalog.push_back(make_entry<ColoringLanguage, ColoringScheme>(
      "coloring", options.coloring_colors));
  catalog.push_back(make_entry<RegularLanguage, RegularScheme>("regular"));
  catalog.push_back(
      make_entry<DominatingSetLanguage, DominatingSetScheme>("domset"));
  catalog.push_back(
      make_entry<MaximalMatchingLanguage, MaximalMatchingScheme>("matching"));
  catalog.push_back(make_entry<MisLanguage, MisScheme>("mis"));
  return catalog;
}

}  // namespace pls::schemes
