// Spanning tree, in both encodings the paper's results distinguish.
//
//   * stp — each state is "⊥ or the id of the parent neighbor"; the pointers
//     must form a single in-tree spanning the network.
//   * stl — each state is the adjacency list of the node's incident tree
//     edges; the listed edge set must be a spanning tree.
//
// Both admit the classic Θ(log n) scheme: certificate = (root id, parent id,
// distance to root).  Root-id agreement on a connected graph pins down a
// unique root; distance descent over parent edges makes the claimed edge set
// acyclic, connected and spanning.  The encodings differ for the
// error-sensitivity extension (stl is error-sensitive, stp provably is not —
// see src/sensitivity), which is why both are first-class here.
#pragma once

#include "pls/scheme.hpp"

namespace pls::schemes {

/// Spanning tree by parent pointers.
class StpLanguage final : public core::Language {
 public:
  std::string_view name() const noexcept override { return "stp"; }
  bool contains(const local::Configuration& cfg) const override;

  /// Random BFS in-tree from a random root.
  local::Configuration sample_legal(std::shared_ptr<const graph::Graph> g,
                                    util::Rng& rng) const override;

  /// BFS in-tree from a chosen root.
  local::Configuration make_tree(std::shared_ptr<const graph::Graph> g,
                                 graph::NodeIndex root) const;
};

/// Spanning tree by adjacency lists.
class StlLanguage final : public core::Language {
 public:
  std::string_view name() const noexcept override { return "stl"; }
  bool contains(const local::Configuration& cfg) const override;

  /// Random BFS tree from a random root, encoded as adjacency lists.
  local::Configuration sample_legal(std::shared_ptr<const graph::Graph> g,
                                    util::Rng& rng) const override;

  /// Adjacency-list configuration for an explicit tree edge mask.
  local::Configuration make_from_mask(std::shared_ptr<const graph::Graph> g,
                                      const std::vector<bool>& mask) const;
};

/// (root id, parent id, distance) scheme for the pointer encoding.
class StpScheme final : public core::Scheme {
 public:
  explicit StpScheme(const StpLanguage& language) : language_(language) {}

  std::string_view name() const noexcept override { return "stp/root-dist"; }
  const core::Language& language() const noexcept override {
    return language_;
  }

  core::Labeling mark(const local::Configuration& cfg) const override;
  bool verify(const local::VerifierContext& ctx) const override;
  std::size_t proof_size_bound(std::size_t n,
                               std::size_t state_bits) const override;

 private:
  const StpLanguage& language_;
};

/// (root id, parent id, distance) scheme for the adjacency-list encoding.
class StlScheme final : public core::Scheme {
 public:
  explicit StlScheme(const StlLanguage& language) : language_(language) {}

  std::string_view name() const noexcept override { return "stl/root-dist"; }
  const core::Language& language() const noexcept override {
    return language_;
  }

  core::Labeling mark(const local::Configuration& cfg) const override;
  bool verify(const local::VerifierContext& ctx) const override;
  std::size_t proof_size_bound(std::size_t n,
                               std::size_t state_bits) const override;

 private:
  const StlLanguage& language_;
};

}  // namespace pls::schemes
