#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <limits>

#include "util/assert.hpp"
#include "util/failpoint.hpp"

namespace pls::serve {

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      atlas_(options_.atlas != nullptr
                 ? options_.atlas
                 : std::make_shared<radius::GeometryAtlas>()) {
  // A zero quantum could never cover any request's cost (>= 1), so the DRR
  // loop in serve_next would cycle tenants forever without serving.
  PLS_REQUIRE(options_.quantum >= 1);
  if (options_.metrics != nullptr) {
    requests_ = &options_.metrics->counter("serve.requests");
    rejected_frames_ = &options_.metrics->counter("serve.rejected_frames");
    shed_ = &options_.metrics->counter("serve.shed");
    expired_ = &options_.metrics->counter("serve.expired");
    cancelled_sweeps_ = &options_.metrics->counter("serve.cancelled_sweeps");
    faults_ = &options_.metrics->counter("serve.faults");
    deadline_slack_ = &options_.metrics->histogram("serve.deadline_slack_ns");
  }
}

Server::~Server() = default;

std::uint64_t Server::now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint32_t Server::add_tenant(std::string name, const core::Scheme& scheme,
                                 const local::Configuration& cfg, unsigned t) {
  PLS_REQUIRE(t >= 1);
  Tenant tenant;
  tenant.name = std::move(name);
  tenant.scheme = &scheme;
  tenant.cfg = &cfg;
  tenant.t = t;
  if (options_.metrics != nullptr)
    tenant.latency =
        &options_.metrics->histogram("serve.latency_ns." + tenant.name);
  tenants_.push_back(std::move(tenant));
  return static_cast<std::uint32_t>(tenants_.size() - 1);
}

radius::BatchVerifier& Server::verifier_for(Tenant& tenant) {
  if (tenant.verifier == nullptr) {
    radius::BatchOptions opts;
    opts.threads = options_.threads;
    opts.atlas = atlas_;
    opts.metrics = options_.metrics;
    opts.sweep = options_.sweep;
    tenant.verifier = std::make_unique<radius::BatchVerifier>(
        *tenant.scheme, *tenant.cfg, tenant.t, std::move(opts));
  }
  return *tenant.verifier;
}

void Server::submit(Frame frame, std::uint64_t arrival_ns) {
  PLS_REQUIRE(frame != nullptr);
  const std::uint64_t seq = next_seq_++;
  if (requests_ != nullptr) requests_->add(1);

  // Validate everything knowable without running: frame integrity, then
  // consistency with the claimed tenant.  A frame that fails here never
  // touches a DRR queue, so malformed traffic can't bill a victim tenant.
  const auto reject_now =
      [&](std::uint32_t tenant_id, const char* reason,
          Rejection rejection = Rejection{RejectKind::kMalformed, 0}) {
        rejected_.push_back(
            Rejected{tenant_id, arrival_ns, seq, reason, rejection});
        ++queued_;
        // serve.rejected_frames keeps its original meaning — wire/tenant
        // validation failures; shed and expired flows have their own
        // counters, so dashboards never conflate garbage with overload.
        if (rejection.kind == RejectKind::kMalformed &&
            rejected_frames_ != nullptr)
          rejected_frames_->add(1);
      };

#if defined(PROOFLAB_FAILPOINTS)
  // Chaos site: deterministically corrupt this frame before parse — an even
  // draw truncates, an odd draw flips a magic byte.  Both malformations are
  // guaranteed-reject, so injected wire faults exercise the rejection path
  // without ever serving a corrupted-but-parseable frame (verdict identity
  // with the offline oracle is preserved by construction).
  if (const std::optional<std::uint64_t> drawn =
          util::failpoint::draw("serve.wire_ingest");
      drawn.has_value() && !frame->empty()) {
    std::vector<std::uint8_t> bytes = *frame;
    if (*drawn % 2 == 0)
      bytes.resize((*drawn / 2) % bytes.size());
    else
      bytes[0] ^= 0xA5;
    frame = std::make_shared<const std::vector<std::uint8_t>>(std::move(bytes));
  }
#endif

  const char* error = nullptr;
  std::optional<RequestView> view =
      RequestView::parse(std::span<const std::uint8_t>(*frame), &error);
  if (!view.has_value()) {
    reject_now(0, error);
    return;
  }
  const std::uint32_t id = view->tenant_id();
  if (id >= tenants_.size()) {
    reject_now(id, "unknown tenant id");
    return;
  }
  Tenant& tenant = tenants_[id];
  if (view->node_count() != tenant.cfg->n()) {
    reject_now(id, "node_count does not match tenant configuration");
    return;
  }
  if (view->graph_epoch() != tenant.cfg->graph().epoch()) {
    reject_now(id, "graph_epoch does not match tenant graph");
    return;
  }
  if (view->t() != tenant.t) {
    reject_now(id, "radius t does not match tenant");
    return;
  }
  // A delta needs a base labeling to apply to.  The tenant queue is FIFO,
  // so "a full frame was queued (or served) before this delta" is decidable
  // right here — rejecting now keeps the doomed request from consuming the
  // tenant's DRR deficit at dispatch.
  if (view->kind() == WireKind::kDelta && !tenant.base_queued) {
    reject_now(id, "delta before any full labeling");
    return;
  }

  // Deadline: a v2 frame's TTL counts from ITS arrival timestamp (the
  // producer's clock never enters the picture).  Already-expired requests
  // are refused admission — queueing work that can only be dropped later
  // wastes the queue bound on the doomed.
  std::uint64_t deadline_ns = 0;
  if (const std::uint64_t ttl = view->ttl_ns(); ttl != 0) {
    deadline_ns = arrival_ns > std::numeric_limits<std::uint64_t>::max() - ttl
                      ? std::numeric_limits<std::uint64_t>::max()
                      : arrival_ns + ttl;
    if (now_ns() >= deadline_ns) {
      if (expired_ != nullptr) expired_->add(1);
      reject_now(id, "deadline expired before admission",
                 Rejection{RejectKind::kExpired, 0});
      return;
    }
  }

  // Load shedding: the bound is per tenant, so one tenant's burst can never
  // grow another's queue.  The retry hint prices the CURRENT total backlog
  // at the measured service rate — an upper bound on the wait for room,
  // since DRR is work-conserving.
  const std::uint64_t cost = std::max<std::uint64_t>(1, view->payload_count());
  if (options_.max_queued_cost != 0 &&
      tenant.queued_cost + cost > options_.max_queued_cost) {
    if (shed_ != nullptr) shed_->add(1);
    reject_now(id, "tenant queue over max_queued_cost",
               Rejection{RejectKind::kOverloaded, retry_after_hint(cost)});
    return;
  }

  // Only an ADMITTED full establishes the delta base promise (a shed or
  // expired full never reaches the queue, so deltas behind it stay refused).
  if (view->kind() == WireKind::kFull) tenant.base_queued = true;

  tenant.queued_cost += cost;
  queued_cost_total_ += cost;
  tenant.queue.push_back(Request{std::move(frame), std::move(*view),
                                 arrival_ns, seq, deadline_ns, cost});
  ++queued_;
}

std::optional<Server::Response> Server::serve_next() {
  // Submit-time rejections surface first: they carry no verification work,
  // so making them wait behind a DRR round would only skew their latency.
  if (!rejected_.empty()) {
    const Rejected r = rejected_.front();
    rejected_.pop_front();
    --queued_;
    Response response;
    response.tenant_id = r.tenant_id;
    response.seq = r.seq;
    response.wire_ok = false;
    response.error = r.reason;
    response.rejection = r.rejection;
    response.latency_ns = now_ns() - r.arrival_ns;
    return response;
  }
  if (queued_ == 0 || tenants_.empty()) return std::nullopt;

  // Deficit round-robin: each turn credits the tenant one quantum; it then
  // serves head requests while the deficit covers their cost.  serve_next
  // returns one request per call, so the "mid-turn" state (credited, spent)
  // persists in rr_cursor_/turn_credited_/deficit across calls.
  for (;;) {
    Tenant& tenant = tenants_[rr_cursor_];
    if (tenant.queue.empty()) {
      // An idle tenant carries no deficit forward — DRR's anti-burst rule:
      // you can't bank credit while you have nothing to serve.
      tenant.deficit = 0;
      turn_credited_ = false;
      rr_cursor_ = (rr_cursor_ + 1) % tenants_.size();
      continue;
    }
    // A head request whose deadline already passed is dropped BEFORE any
    // verification work — a late verdict is never silently served.
    // Lateness is not service: it charges no DRR deficit and does not
    // consume the turn (the tenant's live head is judged under the same
    // credit on the next call).
    if (const Request& head = tenant.queue.front();
        head.deadline_ns != 0 && now_ns() >= head.deadline_ns) {
      Request request = std::move(tenant.queue.front());
      tenant.queue.pop_front();
      --queued_;
      tenant.queued_cost -= request.cost;
      queued_cost_total_ -= request.cost;
      // The dropped frame's state transition never happens: a full that
      // expires here never installs its labeling, an intermediate delta
      // leaves the chain missing one update.  Every delta queued behind it
      // would therefore verify against a base the client never submitted it
      // for — same stream-consistency rule as an abandoned run, so the base
      // is dropped and those deltas fail fast until the next full re-seeds.
      abandon_base(tenant);
      if (expired_ != nullptr) expired_->add(1);
      Response response;
      response.tenant_id = request.view.tenant_id();
      response.seq = request.seq;
      response.error = "deadline expired before dispatch";
      response.rejection = Rejection{RejectKind::kExpired, 0};
      response.latency_ns = now_ns() - request.arrival_ns;
      return response;
    }
    if (!turn_credited_) {
      tenant.deficit += options_.quantum;
      turn_credited_ = true;
    }
    const std::uint64_t cost = tenant.queue.front().cost;
    if (tenant.deficit < cost) {
      // Not this turn; the deficit persists (a request costlier than one
      // quantum accumulates credit over successive rounds).
      turn_credited_ = false;
      rr_cursor_ = (rr_cursor_ + 1) % tenants_.size();
      continue;
    }
    tenant.deficit -= cost;
    Request request = std::move(tenant.queue.front());
    tenant.queue.pop_front();
    --queued_;
    tenant.queued_cost -= request.cost;
    queued_cost_total_ -= request.cost;
    return dispatch(tenant, std::move(request));
  }
}

std::vector<Server::Response> Server::drain() {
  std::vector<Response> responses;
  while (std::optional<Response> r = serve_next())
    responses.push_back(std::move(*r));
  return responses;
}

Server::Response Server::dispatch(Tenant& tenant, Request request) {
  Response response;
  response.tenant_id = request.view.tenant_id();
  response.seq = request.seq;

  radius::BatchVerifier& verifier = verifier_for(tenant);
  // Arm the deadline for cooperative cancellation: the verifier polls the
  // token at labeling boundaries and the stealing sweep at chunk claims.
  // Deadline 0 never fires.  The token is reset per request, so one member
  // suffices under the single-dispatcher thread contract.
  cancel_.reset(request.deadline_ns);
  verifier.set_cancel(&cancel_);
  const std::uint64_t service_start = now_ns();
  try {
    if (request.view.kind() == WireKind::kFull) {
      // Zero copy: the labeling's certificates alias the frame; the frame's
      // pin rides into the verifier's parse cache alongside them.
      core::Labeling labeling;
      labeling.certs = request.view.certs();
      response.verdict = verifier.run_one(labeling, request.frame);
      tenant.current = std::move(labeling);
      tenant.pins.clear();
      tenant.pins.push_back(request.frame);
    } else {
      // submit() admits a delta only behind an admitted full, and
      // dispatching that full installs tenant.current — but the base is
      // gone when an earlier run was abandoned (deadline, fault) or when
      // the full (or an intermediate delta) was dropped at dispatch for
      // expiry.  Verifying a delta against any other base would yield a
      // verdict for a labeling the client never submitted; fail fast, the
      // client's recovery is a fresh full.  The reason is cause-neutral:
      // both abandonment and an expired drop end here.
      if (tenant.current.certs.empty()) {
        response.error = "no delta base resident";
        response.rejection = Rejection{RejectKind::kCancelled, 0};
        response.latency_ns = now_ns() - request.arrival_ns;
        return response;
      }
      // Swap the touched certificates into the tenant's current labeling in
      // place (O(k), no per-request copy of the other n-k) and run the delta
      // against it.
      radius::LabelingDelta delta;
      delta.touched = request.view.touched();
      const std::vector<local::Certificate>& fresh = request.view.certs();
      for (std::size_t i = 0; i < delta.touched.size(); ++i)
        tenant.current.certs[delta.touched[i]] = fresh[i];
      response.verdict =
          verifier.run_delta(tenant.current, delta, request.frame);
      tenant.pins.push_back(request.frame);
      if (tenant.pins.size() > kMaxTenantPins) {
        // Consolidation bound: own every certificate's bytes and release the
        // accumulated request buffers, so an unbounded delta stream pins a
        // bounded set of frames.
        for (local::Certificate& cert : tenant.current.certs)
          cert = cert.materialize();
        tenant.pins.clear();
      }
    }
  } catch (const util::CancelledError&) {
    // The deadline fired mid-run: the sweep stopped cooperatively at a
    // chunk/labeling boundary.  The verifier keeps no resident state from
    // an abandoned run, but tenant.current may be half-updated by THIS
    // request (a delta's certs swapped in, a full's install skipped), so
    // the base is dropped — the next run is bit-exact from a clean slate.
    abandon_base(tenant);
    if (expired_ != nullptr) expired_->add(1);
    if (cancelled_sweeps_ != nullptr) cancelled_sweeps_->add(1);
    response.error = "deadline expired during verification";
    response.rejection = Rejection{RejectKind::kExpired, 0};
    response.latency_ns = now_ns() - request.arrival_ns;
    return response;
  } catch (const std::exception&) {
    // Containment: an internal fault (an atlas build OOM, an injected
    // fault) fails THIS request, never the server.  Same base-loss rule as
    // cancellation — the run stopped at an arbitrary point.
    abandon_base(tenant);
    if (faults_ != nullptr) faults_->add(1);
    response.error = "internal fault during verification";
    response.rejection = Rejection{RejectKind::kFaulted, 0};
    response.latency_ns = now_ns() - request.arrival_ns;
    return response;
  }
  const std::uint64_t end = now_ns();
  // Service-rate EWMA (ns per cost unit) behind retry_after hints; 1/8 new
  // weight tracks load shifts within a few dozen dispatches without letting
  // one outlier dominate.  Updated before the late-completion check below:
  // a run that finished past its deadline is a genuine rate sample, and
  // overload is exactly the regime the hints must price.
  const double per_cost = static_cast<double>(end - service_start) /
                          static_cast<double>(request.cost);
  ewma_ns_per_cost_ = ewma_ns_per_cost_ == 0.0
                          ? per_cost
                          : 0.125 * per_cost + 0.875 * ewma_ns_per_cost_;
  // A sweep whose chunks were all claimed before the deadline token tripped
  // completes instead of throwing — recheck here, so a verdict that missed
  // its deadline is withheld by SOME checkpoint on every path.  Unlike the
  // mid-run abandonment above, the run finished: tenant.current now equals
  // exactly the labeling stream the client submitted, so the base stays
  // resident and queued deltas behind this request remain verdict-exact.
  if (request.deadline_ns != 0 && end >= request.deadline_ns) {
    if (expired_ != nullptr) expired_->add(1);
    response.verdict = core::Verdict{};
    response.error = "deadline expired after verification";
    response.rejection = Rejection{RejectKind::kExpired, 0};
    response.latency_ns = end - request.arrival_ns;
    return response;
  }
  response.wire_ok = true;
  response.latency_ns = end - request.arrival_ns;
  if (tenant.latency != nullptr) tenant.latency->record(response.latency_ns);
  // Deadline slack of SERVED requests: how close to the edge the server
  // runs.  A p1 near zero says deadlines are about to start firing (and it
  // is strictly positive — an exactly-on-deadline finish is already late).
  if (request.deadline_ns != 0 && deadline_slack_ != nullptr)
    deadline_slack_->record(request.deadline_ns - end);
  return response;
}

void Server::abandon_base(Tenant& tenant) {
  tenant.current = core::Labeling{};
  tenant.pins.clear();
}

std::uint64_t Server::retry_after_hint(std::uint64_t cost) const noexcept {
  if (ewma_ns_per_cost_ == 0.0) return 0;
  return static_cast<std::uint64_t>(
      ewma_ns_per_cost_ * static_cast<double>(queued_cost_total_ + cost));
}

}  // namespace pls::serve
