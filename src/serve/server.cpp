#include "serve/server.hpp"

#include <chrono>

#include "util/assert.hpp"

namespace pls::serve {

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      atlas_(options_.atlas != nullptr
                 ? options_.atlas
                 : std::make_shared<radius::GeometryAtlas>()) {
  // A zero quantum could never cover any request's cost (>= 1), so the DRR
  // loop in serve_next would cycle tenants forever without serving.
  PLS_REQUIRE(options_.quantum >= 1);
  if (options_.metrics != nullptr) {
    requests_ = &options_.metrics->counter("serve.requests");
    rejected_frames_ = &options_.metrics->counter("serve.rejected_frames");
  }
}

Server::~Server() = default;

std::uint64_t Server::now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint32_t Server::add_tenant(std::string name, const core::Scheme& scheme,
                                 const local::Configuration& cfg, unsigned t) {
  PLS_REQUIRE(t >= 1);
  Tenant tenant;
  tenant.name = std::move(name);
  tenant.scheme = &scheme;
  tenant.cfg = &cfg;
  tenant.t = t;
  if (options_.metrics != nullptr)
    tenant.latency =
        &options_.metrics->histogram("serve.latency_ns." + tenant.name);
  tenants_.push_back(std::move(tenant));
  return static_cast<std::uint32_t>(tenants_.size() - 1);
}

radius::BatchVerifier& Server::verifier_for(Tenant& tenant) {
  if (tenant.verifier == nullptr) {
    radius::BatchOptions opts;
    opts.threads = options_.threads;
    opts.atlas = atlas_;
    opts.metrics = options_.metrics;
    opts.sweep = options_.sweep;
    tenant.verifier = std::make_unique<radius::BatchVerifier>(
        *tenant.scheme, *tenant.cfg, tenant.t, std::move(opts));
  }
  return *tenant.verifier;
}

void Server::submit(Frame frame, std::uint64_t arrival_ns) {
  PLS_REQUIRE(frame != nullptr);
  const std::uint64_t seq = next_seq_++;
  if (requests_ != nullptr) requests_->add(1);

  // Validate everything knowable without running: frame integrity, then
  // consistency with the claimed tenant.  A frame that fails here never
  // touches a DRR queue, so malformed traffic can't bill a victim tenant.
  const auto reject_now = [&](std::uint32_t tenant_id, const char* reason) {
    rejected_.push_back(Rejected{tenant_id, arrival_ns, seq, reason});
    ++queued_;
    if (rejected_frames_ != nullptr) rejected_frames_->add(1);
  };

  const char* error = nullptr;
  std::optional<RequestView> view =
      RequestView::parse(std::span<const std::uint8_t>(*frame), &error);
  if (!view.has_value()) {
    reject_now(0, error);
    return;
  }
  const std::uint32_t id = view->tenant_id();
  if (id >= tenants_.size()) {
    reject_now(id, "unknown tenant id");
    return;
  }
  Tenant& tenant = tenants_[id];
  if (view->node_count() != tenant.cfg->n()) {
    reject_now(id, "node_count does not match tenant configuration");
    return;
  }
  if (view->graph_epoch() != tenant.cfg->graph().epoch()) {
    reject_now(id, "graph_epoch does not match tenant graph");
    return;
  }
  if (view->t() != tenant.t) {
    reject_now(id, "radius t does not match tenant");
    return;
  }
  // A delta needs a base labeling to apply to.  The tenant queue is FIFO,
  // so "a full frame was queued (or served) before this delta" is decidable
  // right here — rejecting now keeps the doomed request from consuming the
  // tenant's DRR deficit at dispatch.
  if (view->kind() == WireKind::kDelta && !tenant.base_queued) {
    reject_now(id, "delta before any full labeling");
    return;
  }
  if (view->kind() == WireKind::kFull) tenant.base_queued = true;

  tenant.queue.push_back(
      Request{std::move(frame), std::move(*view), arrival_ns, seq});
  ++queued_;
}

std::optional<Server::Response> Server::serve_next() {
  // Submit-time rejections surface first: they carry no verification work,
  // so making them wait behind a DRR round would only skew their latency.
  if (!rejected_.empty()) {
    const Rejected r = rejected_.front();
    rejected_.pop_front();
    --queued_;
    Response response;
    response.tenant_id = r.tenant_id;
    response.seq = r.seq;
    response.wire_ok = false;
    response.error = r.reason;
    response.latency_ns = now_ns() - r.arrival_ns;
    return response;
  }
  if (queued_ == 0 || tenants_.empty()) return std::nullopt;

  // Deficit round-robin: each turn credits the tenant one quantum; it then
  // serves head requests while the deficit covers their cost.  serve_next
  // returns one request per call, so the "mid-turn" state (credited, spent)
  // persists in rr_cursor_/turn_credited_/deficit across calls.
  for (;;) {
    Tenant& tenant = tenants_[rr_cursor_];
    if (tenant.queue.empty()) {
      // An idle tenant carries no deficit forward — DRR's anti-burst rule:
      // you can't bank credit while you have nothing to serve.
      tenant.deficit = 0;
      turn_credited_ = false;
      rr_cursor_ = (rr_cursor_ + 1) % tenants_.size();
      continue;
    }
    if (!turn_credited_) {
      tenant.deficit += options_.quantum;
      turn_credited_ = true;
    }
    const std::uint64_t cost =
        std::max<std::uint64_t>(1, tenant.queue.front().view.payload_count());
    if (tenant.deficit < cost) {
      // Not this turn; the deficit persists (a request costlier than one
      // quantum accumulates credit over successive rounds).
      turn_credited_ = false;
      rr_cursor_ = (rr_cursor_ + 1) % tenants_.size();
      continue;
    }
    tenant.deficit -= cost;
    Request request = std::move(tenant.queue.front());
    tenant.queue.pop_front();
    --queued_;
    return dispatch(tenant, std::move(request));
  }
}

std::vector<Server::Response> Server::drain() {
  std::vector<Response> responses;
  while (std::optional<Response> r = serve_next())
    responses.push_back(std::move(*r));
  return responses;
}

Server::Response Server::dispatch(Tenant& tenant, Request request) {
  Response response;
  response.tenant_id = request.view.tenant_id();
  response.seq = request.seq;

  radius::BatchVerifier& verifier = verifier_for(tenant);
  if (request.view.kind() == WireKind::kFull) {
    // Zero copy: the labeling's certificates alias the frame; the frame's
    // pin rides into the verifier's parse cache alongside them.
    core::Labeling labeling;
    labeling.certs = request.view.certs();
    response.verdict = verifier.run_one(labeling, request.frame);
    tenant.current = std::move(labeling);
    tenant.pins.clear();
    tenant.pins.push_back(request.frame);
  } else {
    // submit() rejects any delta not preceded by a full frame in the
    // tenant's FIFO queue, and dispatching a full always installs
    // tenant.current — so a base labeling is resident here.
    PLS_ASSERT(!tenant.current.certs.empty());
    // Swap the touched certificates into the tenant's current labeling in
    // place (O(k), no per-request copy of the other n-k) and run the delta
    // against it.
    radius::LabelingDelta delta;
    delta.touched = request.view.touched();
    const std::vector<local::Certificate>& fresh = request.view.certs();
    for (std::size_t i = 0; i < delta.touched.size(); ++i)
      tenant.current.certs[delta.touched[i]] = fresh[i];
    response.verdict =
        verifier.run_delta(tenant.current, delta, request.frame);
    tenant.pins.push_back(request.frame);
    if (tenant.pins.size() > kMaxTenantPins) {
      // Consolidation bound: own every certificate's bytes and release the
      // accumulated request buffers, so an unbounded delta stream pins a
      // bounded set of frames.
      for (local::Certificate& cert : tenant.current.certs)
        cert = cert.materialize();
      tenant.pins.clear();
    }
  }
  response.wire_ok = true;
  response.latency_ns = now_ns() - request.arrival_ns;
  if (tenant.latency != nullptr) tenant.latency->record(response.latency_ns);
  return response;
}

}  // namespace pls::serve
