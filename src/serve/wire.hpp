// The serving tier's request wire format (versions 1 and 2).
//
// A request frame carries one labeling — full or delta — for one tenant's
// pinned (scheme, configuration, t).  The layout is little-endian and
// byte-aligned so a parser never shifts across byte boundaries and every
// certificate payload lands on a byte edge, which is what makes ZERO-COPY
// ingestion possible: RequestView hands each certificate to the verifier as
// a util::BitString::aliasing view into the frame itself — no bytes are
// copied between the socket buffer and BallScheme::parse_cert.
//
// Frame layout (all integers little-endian):
//
//   offset  size  field
//   ------  ----  --------------------------------------------------------
//        0     4  magic "PLSW" (bytes 0x50 0x4C 0x53 0x57)
//        4     2  version        (1, or 2 when the frame carries a TTL)
//        6     2  kind           (0 = full labeling, 1 = delta)
//        8     4  tenant_id      (Server::add_tenant's id)
//       12     4  node_count     (n of the tenant's configuration)
//       16     8  graph_epoch    (graph::Graph::epoch of the tenant's graph)
//       24     4  payload_count  (full: == node_count; delta: touched nodes)
//       28     4  t              (verification radius the tenant is pinned at)
//   ------  ----  -------- version 2 only -------------------------------
//       32     8  ttl_ns         (request time-to-live from its arrival
//                                 timestamp; > 0 — "no deadline" is spelled
//                                 as a version-1 frame, keeping one
//                                 canonical encoding per request)
//   ------  ----  -------- payload records, byte-aligned ------------------
//   full:   per node v = 0..n-1, in order:
//             u32 cert_bits, then ceil(cert_bits / 8) certificate bytes
//             (BitWriter layout: bit k in byte k/8 at position k%8)
//   delta:  per touched entry, node ids STRICTLY increasing:
//             u32 node, u32 cert_bits, then ceil(cert_bits / 8) bytes
//
// Version 1 frames remain fully accepted — a v1 frame is exactly a v2 frame
// with no TTL (ttl_ns() reads 0).  parse() dispatches on the version field;
// records start right after the version's header.
//
// Wire bytes are untrusted.  parse() validates the entire frame up front —
// magic, version, kind, count consistency, payload_count against what the
// frame's bytes could physically hold (so no allocation is ever sized from
// an unproven count), per-record bounds, strictly sorted delta nodes, and
// zero trailing bytes (one canonical encoding per request) — and rejects
// with a reason on the first violation; it never reads past the span it
// was given.  A parsed view holds ONLY offsets into
// the frame: the caller owns the frame's lifetime and must keep it alive
// and byte-stable while any certificate view from it is read (the Server
// pins the buffer for exactly this — see serve/server.hpp and
// radius::BufferPin).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "pls/certificate.hpp"

namespace pls::serve {

inline constexpr std::uint32_t kWireMagic = 0x57534C50u;  // "PLSW"
inline constexpr std::uint16_t kWireVersion = 1;
inline constexpr std::uint16_t kWireVersionTtl = 2;
inline constexpr std::size_t kWireHeaderBytes = 32;
inline constexpr std::size_t kWireHeaderBytesTtl = 40;  // v1 header + u64 ttl

enum class WireKind : std::uint16_t { kFull = 0, kDelta = 1 };

/// Encode a full-labeling request frame (the client/bench side; the server
/// side never copies certificate bytes out of a frame).  `ttl_ns` > 0 emits
/// a version-2 frame carrying the deadline; 0 (the default) emits the
/// byte-identical version-1 frame of earlier releases.
std::vector<std::uint8_t> encode_full(std::uint32_t tenant_id,
                                      std::uint64_t graph_epoch, unsigned t,
                                      const core::Labeling& labeling,
                                      std::uint64_t ttl_ns = 0);

/// Encode a delta request: `touched` (strictly increasing) nodes take their
/// new certificates from `next`.  `ttl_ns` as in encode_full.
std::vector<std::uint8_t> encode_delta(std::uint32_t tenant_id,
                                       std::uint64_t graph_epoch, unsigned t,
                                       std::uint32_t node_count,
                                       std::span<const graph::NodeIndex> touched,
                                       const core::Labeling& next,
                                       std::uint64_t ttl_ns = 0);

/// A fully validated view of one request frame.  Construction (parse) does
/// all bounds checking; the accessors are then total.  Holds aliasing
/// BitStrings into the frame — see the lifetime contract above.
class RequestView {
 public:
  /// Validates `frame` end to end; nullopt on any malformation, with a
  /// static-lifetime reason in *error when provided.  Never reads outside
  /// `frame`.
  static std::optional<RequestView> parse(std::span<const std::uint8_t> frame,
                                          const char** error = nullptr);

  WireKind kind() const noexcept { return kind_; }
  std::uint32_t tenant_id() const noexcept { return tenant_id_; }
  std::uint32_t node_count() const noexcept { return node_count_; }
  std::uint64_t graph_epoch() const noexcept { return graph_epoch_; }
  std::uint32_t payload_count() const noexcept { return payload_count_; }
  unsigned t() const noexcept { return t_; }
  /// Time-to-live from the request's arrival timestamp; 0 = no deadline
  /// (every version-1 frame, or never on the wire for version 2).
  std::uint64_t ttl_ns() const noexcept { return ttl_ns_; }

  /// The certificate payloads, aliasing the frame.  kFull: one per node in
  /// node order.  kDelta: one per touched entry, parallel to touched().
  const std::vector<local::Certificate>& certs() const noexcept {
    return certs_;
  }
  /// kDelta only: the strictly increasing touched node ids.
  const std::vector<graph::NodeIndex>& touched() const noexcept {
    return touched_;
  }

 private:
  RequestView() = default;

  WireKind kind_ = WireKind::kFull;
  std::uint32_t tenant_id_ = 0;
  std::uint32_t node_count_ = 0;
  std::uint64_t graph_epoch_ = 0;
  std::uint32_t payload_count_ = 0;
  unsigned t_ = 0;
  std::uint64_t ttl_ns_ = 0;
  std::vector<local::Certificate> certs_;
  std::vector<graph::NodeIndex> touched_;
};

}  // namespace pls::serve
