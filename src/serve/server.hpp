// The multi-tenant serving front end.
//
// A tenant is one pinned (scheme, configuration, t) — the unit the rest of
// the pipeline already verifies against.  The Server owns ONE GeometryAtlas
// shared by every tenant (many (scheme, cfg, t) configurations genuinely
// contend for one geometry budget; AtlasStats::by_radius attributes the
// pressure) and one lazily built BatchVerifier per tenant, created on the
// tenant's first request so an idle tenant costs nothing but its queue.
//
// Scheduling is deficit round-robin over per-tenant FIFO queues: each
// tenant's turn adds `quantum` cost units to its deficit, and it serves
// requests while the deficit covers the head request's cost (its payload
// count — a full labeling costs n, a k-node delta costs k).  A hot tenant
// that keeps its queue full therefore gets the same long-run service *rate*
// as everyone else and cannot starve cold tenants; the per-tenant
// serve.latency_ns histograms are the observable proof (the CI smoke gates
// no tenant's p99 above 3x the best).
//
// Zero-copy ingestion: submit() takes SHARED ownership of the frame buffer
// (radius::BufferPin), requests are parsed at dispatch time (RequestView),
// and the parsed certificates alias the frame straight into the verifier's
// parse cache — the pin rides along into ParsedLabeling, so a producer may
// drop its handle the moment submit() returns and the bytes stay alive
// through any parse/sweep overlap window.  The producer must not MUTATE a
// submitted buffer until its response comes back (the serve/test suite
// asserts both directions of this contract); after that, the engine holds
// no bit-dependence on the frame (see BufferPin in radius/batch.hpp).
//
// Delta requests verify against the tenant's CURRENT labeling (the last one
// verified for it): touched certificates are swapped in as aliased views
// and run through BatchVerifier::run_delta.  The tenant accumulates one
// frame pin per aliased generation and consolidates — materializes every
// certificate into owned storage and drops all pins — when the set exceeds
// kMaxTenantPins, so an unbounded delta stream holds a bounded set of
// request buffers, not all of history.
//
// Thread contract: like BatchVerifier, the Server is externally
// synchronized — one dispatcher thread calls submit()/serve_next()/drain().
// Parallelism lives inside each verifier's sweep (ServerOptions::threads),
// and the shared atlas is internally locked.  Verdicts are bit-identical to
// the in-memory run/run_delta path at every thread count: the aliased
// certificates are bit-equal to their owned counterparts, and everything
// downstream of parse is the unmodified pipeline.
//
// OVERLOAD CONTROL (docs/serving.md §5).  Under sustained overload the
// server sheds instead of queueing without bound:
//
//   * Admission: ServerOptions::max_queued_cost bounds each tenant's queued
//     cost (payload counts).  A submit that would exceed the bound is shed
//     with Rejection{kOverloaded, retry_after_ns} — the hint is the time to
//     drain the current backlog at the EWMA-measured service rate.  The
//     bound is PER TENANT: one tenant's burst can never grow another's
//     queue (each tenant's cost is accounted separately).
//   * Deadlines: a version-2 frame carries a TTL; deadline = arrival + TTL.
//     Checked at submit (expired frames are never admitted), at dispatch
//     (expired head requests are dropped before any verification work,
//     charge no DRR deficit, and invalidate the tenant's delta base — the
//     dropped frame's state transition never happened, so deltas queued
//     behind it fail fast instead of verifying against a base the client
//     never submitted them for), cooperatively inside the sweep via
//     util::CancelToken (the pool polls at chunk-claim boundaries, the
//     verifier at labeling boundaries), and once more after the run — a
//     sweep whose chunks were all claimed before the token tripped runs to
//     completion, and its late verdict is still withheld (kExpired).  A
//     late verdict is therefore never served by any path.
//   * Containment: a run that throws — expiry mid-sweep or an internal
//     fault such as an allocation failure in an atlas build — fails THAT
//     request, never the server.  The tenant's delta base is cleared
//     (the abandoned run may have half-applied it), so queued deltas fail
//     fast with kCancelled until the next full frame rebuilds the base.
//
// Every flow is counted: serve.shed, serve.expired, serve.cancelled_sweeps,
// serve.faults, and the serve.deadline_slack_ns histogram (slack of served
// deadline-carrying requests — how close to the edge the server runs).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "radius/batch.hpp"
#include "serve/wire.hpp"
#include "util/cancel.hpp"

namespace pls::serve {

/// Machine-readable classification of a non-served response.  `error` says
/// WHY for humans; `kind` says WHAT for retry logic — a client backs off on
/// kOverloaded, re-submits a fresh request on kExpired, and must send a full
/// labeling after kCancelled (its delta base is gone).
enum class RejectKind : std::uint8_t {
  kNone = 0,    ///< the response carries a verdict (wire_ok)
  kMalformed,   ///< frame failed wire/tenant validation at submit
  kOverloaded,  ///< shed at submit: the tenant's queue bound was exceeded
  kExpired,     ///< deadline passed — at submit, dispatch, mid-sweep, or
                ///< after a run that completed past its deadline
  kCancelled,   ///< no delta base resident (an earlier run was abandoned or
                ///< an earlier frame was dropped at dispatch for expiry)
  kFaulted,     ///< verification aborted by an internal fault
};

struct Rejection {
  RejectKind kind = RejectKind::kNone;
  /// kOverloaded only: when the backlog ahead of this request would drain at
  /// the EWMA-measured service rate — an upper bound on the wait, since DRR
  /// is work-conserving.  0 = no estimate yet (nothing served so far).
  std::uint64_t retry_after_ns = 0;
};

struct ServerOptions {
  /// Sweep threads per tenant verifier; 0 = hardware concurrency.
  unsigned threads = 0;
  /// The shared geometry budget; null creates a private default atlas.
  std::shared_ptr<radius::GeometryAtlas> atlas;
  /// Sink for per-tenant serve.latency_ns histograms and serve.* counters;
  /// null records nothing.  Must outlive the server.
  obs::MetricsRegistry* metrics = nullptr;
  /// DRR quantum in cost units (certificate payloads) added to a tenant's
  /// deficit per turn.  Larger quanta lower switching overhead but coarsen
  /// short-term fairness; the default covers one mid-size delta burst.
  /// Must be >= 1 (constructor-enforced): every request costs at least one
  /// unit, so a zero quantum could never serve anything.
  std::uint64_t quantum = 256;
  /// Stage-3 scheduler for every tenant verifier.
  radius::BatchOptions::SweepMode sweep =
      radius::BatchOptions::SweepMode::kStealing;
  /// Admission bound on each tenant's queued cost (sum of per-request costs,
  /// cost = max(1, payload_count)).  A submit that would push the tenant
  /// past the bound is shed with RejectKind::kOverloaded and a retry-after
  /// hint.  0 (the default) = unbounded, the pre-overload-control behavior.
  std::uint64_t max_queued_cost = 0;
};

class Server {
 public:
  /// A frame buffer the server may pin: shared ownership of immutable bytes.
  using Frame = std::shared_ptr<const std::vector<std::uint8_t>>;

  /// Aliased-generation bound per tenant before certificates are
  /// materialized and the held frame pins dropped.
  static constexpr std::size_t kMaxTenantPins = 8;

  explicit Server(ServerOptions options = {});
  ~Server();

  /// Registers a tenant; returns the tenant id requests must carry.  The
  /// scheme and configuration must outlive the server.  `name` keys the
  /// tenant's metrics (serve.latency_ns.<name>).
  std::uint32_t add_tenant(std::string name, const core::Scheme& scheme,
                           const local::Configuration& cfg, unsigned t);

  struct Response {
    std::uint32_t tenant_id = 0;   ///< from the frame (0 if header unreadable)
    std::uint64_t seq = 0;         ///< submission order, 0-based
    bool wire_ok = false;          ///< parsed, matched a tenant, verifiable
    const char* error = nullptr;   ///< static reason when !wire_ok
    Rejection rejection;           ///< kind + retry hint when !wire_ok
    core::Verdict verdict;         ///< empty when !wire_ok
    std::uint64_t latency_ns = 0;  ///< completion - arrival
  };

  /// Enqueues a frame.  `arrival_ns` is the open-loop arrival timestamp
  /// (steady-clock ns) latency is measured from; pass now_ns() for
  /// closed-loop callers.  The server shares ownership of the buffer until
  /// the request completes (zero-copy pinning); the producer must not
  /// mutate the bytes until then.  Frames that fail parsing, don't match
  /// their claimed tenant's (n, epoch, t), or send a delta before any full
  /// labeling are rejected at submit — queuing garbage under the claimed
  /// tenant would let an attacker consume a victim's DRR budget — and
  /// surface as error Responses ahead of the next serve_next().
  void submit(Frame frame, std::uint64_t arrival_ns);

  /// Serves one request under DRR; nullopt when everything is drained.
  std::optional<Response> serve_next();

  /// Serves until all queues are empty; responses in completion order.
  std::vector<Response> drain();

  std::size_t queued() const noexcept { return queued_; }
  const std::shared_ptr<radius::GeometryAtlas>& atlas() const noexcept {
    return atlas_;
  }
  /// Monotonic steady-clock ns, the timebase submit() expects.
  static std::uint64_t now_ns() noexcept;

 private:
  struct Request {
    Frame frame;
    RequestView view;  ///< aliases *frame (validated at submit)
    std::uint64_t arrival_ns = 0;
    std::uint64_t seq = 0;
    std::uint64_t deadline_ns = 0;  ///< arrival + ttl; 0 = no deadline
    std::uint64_t cost = 1;         ///< max(1, payload_count), DRR units
  };

  struct Tenant {
    std::string name;
    const core::Scheme* scheme = nullptr;
    const local::Configuration* cfg = nullptr;
    unsigned t = 0;
    std::unique_ptr<radius::BatchVerifier> verifier;  ///< lazy
    std::deque<Request> queue;
    std::uint64_t deficit = 0;
    /// Sum of queued request costs — what max_queued_cost bounds.
    std::uint64_t queued_cost = 0;
    /// A full frame has been queued (the FIFO queue then guarantees every
    /// later delta dispatches with a base labeling resident).
    bool base_queued = false;
    // The tenant's current labeling (delta base): certificates may alias
    // the frames in `pins`; consolidated to owned storage when the pin set
    // exceeds kMaxTenantPins.
    core::Labeling current;
    std::vector<radius::BufferPin> pins;
    obs::Histogram* latency = nullptr;  ///< serve.latency_ns.<name>
  };

  /// A submit-time rejection waiting to surface as a Response (the frame
  /// itself is already released — nothing verifiable to pin).
  struct Rejected {
    std::uint32_t tenant_id = 0;
    std::uint64_t arrival_ns = 0;
    std::uint64_t seq = 0;
    const char* reason = nullptr;
    Rejection rejection;  ///< kMalformed, kOverloaded, or kExpired
  };

  radius::BatchVerifier& verifier_for(Tenant& tenant);
  Response dispatch(Tenant& tenant, Request request);
  /// Drops the tenant's delta base after an abandoned or faulted run (the
  /// run may have half-applied a delta to `current`, so nothing about it is
  /// trustworthy) or after a dispatch-expiry drop (the dropped frame's
  /// state transition never happened, so the resident base no longer
  /// matches the stream deltas behind it were submitted against).  Queued
  /// deltas then fail fast (kCancelled) until the next full frame rebuilds
  /// the base.
  static void abandon_base(Tenant& tenant);
  /// Backlog-drain estimate for a shed request of `cost` units (see
  /// Rejection::retry_after_ns).
  std::uint64_t retry_after_hint(std::uint64_t cost) const noexcept;

  ServerOptions options_;
  std::shared_ptr<radius::GeometryAtlas> atlas_;
  std::vector<Tenant> tenants_;
  std::deque<Rejected> rejected_;  ///< FIFO, served ahead of the DRR rounds
  std::size_t rr_cursor_ = 0;      ///< tenant whose DRR turn is current/next
  bool turn_credited_ = false;     ///< quantum already added this turn
  std::size_t queued_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t queued_cost_total_ = 0;  ///< across tenants, for retry hints

  /// Per-request deadline token handed to the dispatching verifier; reset
  /// before each run (the dispatcher is single-threaded, so one suffices).
  util::CancelToken cancel_;
  /// EWMA of service ns per cost unit over completed dispatches; 0 until
  /// the first completion.  Feeds retry_after_hint.
  double ewma_ns_per_cost_ = 0.0;

  obs::Counter* requests_ = nullptr;          ///< serve.requests
  obs::Counter* rejected_frames_ = nullptr;   ///< serve.rejected_frames
  obs::Counter* shed_ = nullptr;              ///< serve.shed
  obs::Counter* expired_ = nullptr;           ///< serve.expired
  obs::Counter* cancelled_sweeps_ = nullptr;  ///< serve.cancelled_sweeps
  obs::Counter* faults_ = nullptr;            ///< serve.faults
  obs::Histogram* deadline_slack_ = nullptr;  ///< serve.deadline_slack_ns
};

}  // namespace pls::serve
