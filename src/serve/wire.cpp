#include "serve/wire.hpp"

#include "util/assert.hpp"

namespace pls::serve {

namespace {

std::uint16_t rd_u16(const std::uint8_t* p) noexcept {
  return static_cast<std::uint16_t>(p[0] | (std::uint16_t{p[1]} << 8));
}

std::uint32_t rd_u32(const std::uint8_t* p) noexcept {
  return p[0] | (std::uint32_t{p[1]} << 8) | (std::uint32_t{p[2]} << 16) |
         (std::uint32_t{p[3]} << 24);
}

std::uint64_t rd_u64(const std::uint8_t* p) noexcept {
  return rd_u32(p) | (std::uint64_t{rd_u32(p + 4)} << 32);
}

void wr_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void wr_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (unsigned i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void wr_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (unsigned i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void wr_header(std::vector<std::uint8_t>& out, WireKind kind,
               std::uint32_t tenant_id, std::uint64_t graph_epoch,
               std::uint32_t node_count, std::uint32_t payload_count,
               unsigned t, std::uint64_t ttl_ns) {
  wr_u32(out, kWireMagic);
  // One canonical encoding per request: no deadline is SPELLED version 1
  // (a v2 frame with ttl 0 does not exist on the wire).
  wr_u16(out, ttl_ns == 0 ? kWireVersion : kWireVersionTtl);
  wr_u16(out, static_cast<std::uint16_t>(kind));
  wr_u32(out, tenant_id);
  wr_u32(out, node_count);
  wr_u64(out, graph_epoch);
  wr_u32(out, payload_count);
  wr_u32(out, static_cast<std::uint32_t>(t));
  if (ttl_ns != 0) wr_u64(out, ttl_ns);
}

void wr_cert(std::vector<std::uint8_t>& out, const local::Certificate& cert) {
  const std::size_t bits = cert.bit_size();
  PLS_REQUIRE(bits <= 0xFFFFFFFFu);
  wr_u32(out, static_cast<std::uint32_t>(bits));
  const std::uint8_t* data = cert.data();
  const std::size_t nbytes = (bits + 7) / 8;
  out.insert(out.end(), data, data + nbytes);
  // Canonical frames: pad bits above `bits` in the last byte must be zero
  // (BitWriter-built certs already are; an aliased re-encode might not be).
  if (bits % 8 != 0)
    out.back() &= static_cast<std::uint8_t>((1u << (bits % 8)) - 1);
}

}  // namespace

std::vector<std::uint8_t> encode_full(std::uint32_t tenant_id,
                                      std::uint64_t graph_epoch, unsigned t,
                                      const core::Labeling& labeling,
                                      std::uint64_t ttl_ns) {
  PLS_REQUIRE(!labeling.certs.empty());
  std::vector<std::uint8_t> out;
  out.reserve(kWireHeaderBytesTtl + labeling.size() * 4 +
              (labeling.total_bits() + 7) / 8);
  wr_header(out, WireKind::kFull, tenant_id, graph_epoch,
            static_cast<std::uint32_t>(labeling.size()),
            static_cast<std::uint32_t>(labeling.size()), t, ttl_ns);
  for (const local::Certificate& cert : labeling.certs) wr_cert(out, cert);
  return out;
}

std::vector<std::uint8_t> encode_delta(
    std::uint32_t tenant_id, std::uint64_t graph_epoch, unsigned t,
    std::uint32_t node_count, std::span<const graph::NodeIndex> touched,
    const core::Labeling& next, std::uint64_t ttl_ns) {
  PLS_REQUIRE(next.size() == node_count);
  std::vector<std::uint8_t> out;
  wr_header(out, WireKind::kDelta, tenant_id, graph_epoch, node_count,
            static_cast<std::uint32_t>(touched.size()), t, ttl_ns);
  for (std::size_t i = 0; i < touched.size(); ++i) {
    const graph::NodeIndex v = touched[i];
    PLS_REQUIRE(v < node_count);
    PLS_REQUIRE(i == 0 || touched[i - 1] < v);  // strictly increasing
    wr_u32(out, static_cast<std::uint32_t>(v));
    wr_cert(out, next.certs[v]);
  }
  return out;
}

std::optional<RequestView> RequestView::parse(
    std::span<const std::uint8_t> frame, const char** error) {
  const auto fail = [error](const char* reason) -> std::optional<RequestView> {
    if (error != nullptr) *error = reason;
    return std::nullopt;
  };
  if (error != nullptr) *error = nullptr;

  if (frame.size() < kWireHeaderBytes) return fail("frame shorter than header");
  const std::uint8_t* p = frame.data();
  if (rd_u32(p) != kWireMagic) return fail("bad magic");
  const std::uint16_t version = rd_u16(p + 4);
  if (version != kWireVersion && version != kWireVersionTtl)
    return fail("unsupported version");
  // Version picks the header size; the fixed fields share their offsets, v2
  // appends the TTL.  "frame shorter than header" re-checks against the v2
  // size before the TTL is read.
  const std::size_t header_bytes =
      version == kWireVersionTtl ? kWireHeaderBytesTtl : kWireHeaderBytes;
  if (frame.size() < header_bytes) return fail("frame shorter than header");
  const std::uint16_t kind_raw = rd_u16(p + 6);
  if (kind_raw > static_cast<std::uint16_t>(WireKind::kDelta))
    return fail("unknown frame kind");

  RequestView v;
  v.kind_ = static_cast<WireKind>(kind_raw);
  v.tenant_id_ = rd_u32(p + 8);
  v.node_count_ = rd_u32(p + 12);
  v.graph_epoch_ = rd_u64(p + 16);
  v.payload_count_ = rd_u32(p + 24);
  v.t_ = rd_u32(p + 28);
  if (version == kWireVersionTtl) {
    v.ttl_ns_ = rd_u64(p + 32);
    // Canonicality: "no deadline" has exactly one spelling — version 1.
    if (v.ttl_ns_ == 0) return fail("zero ttl in versioned-ttl frame");
  }
  if (v.node_count_ == 0) return fail("zero node_count");
  if (v.t_ < 1) return fail("t must be >= 1");
  if (v.kind_ == WireKind::kFull && v.payload_count_ != v.node_count_)
    return fail("full frame payload_count != node_count");
  if (v.kind_ == WireKind::kDelta && v.payload_count_ > v.node_count_)
    return fail("delta payload_count exceeds node_count");

  // Before sizing ANY allocation from the untrusted count, prove the count
  // could fit: every record occupies at least 4 bytes (its cert_bits field;
  // 8 for a delta record, which prepends a node id), so a payload_count the
  // remaining bytes cannot hold is rejected header-only — a 32-byte frame
  // claiming 2^32-1 records must reject here, not drive a multi-GB
  // reserve() into std::bad_alloc.
  const std::size_t size = frame.size();
  const bool is_delta = v.kind_ == WireKind::kDelta;
  const std::size_t min_record_bytes = is_delta ? 8 : 4;
  if (std::uint64_t{v.payload_count_} * min_record_bytes > size - header_bytes)
    return fail("payload_count exceeds frame capacity");

  // Single strict pass over the records.  `off` never exceeds frame.size()
  // and every length is re-checked against the REMAINING bytes before any
  // access — an adversarial cert_bits cannot move the cursor past the end,
  // and size_t arithmetic never wraps (bits is widened before rounding up).
  std::size_t off = header_bytes;
  v.certs_.reserve(v.payload_count_);
  if (is_delta) v.touched_.reserve(v.payload_count_);
  for (std::uint32_t i = 0; i < v.payload_count_; ++i) {
    if (is_delta) {
      if (size - off < 4) return fail("truncated delta node id");
      const std::uint32_t node = rd_u32(p + off);
      off += 4;
      if (node >= v.node_count_) return fail("delta node out of range");
      if (!v.touched_.empty() && node <= v.touched_.back())
        return fail("delta nodes not strictly increasing");
      v.touched_.push_back(node);
    }
    if (size - off < 4) return fail("truncated cert_bits field");
    const std::uint32_t bits = rd_u32(p + off);
    off += 4;
    const std::size_t nbytes = (std::size_t{bits} + 7) / 8;
    if (size - off < nbytes) return fail("certificate bytes truncated");
    if (bits % 8 != 0 && (p[off + nbytes - 1] >> (bits % 8)) != 0)
      return fail("nonzero certificate padding bits");
    v.certs_.push_back(local::Certificate::aliasing(p + off, bits));
    off += nbytes;
  }
  if (off != size) return fail("trailing bytes after last record");
  return v;
}

}  // namespace pls::serve
