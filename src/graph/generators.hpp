// Graph generators: the instance families the experiments run on.
//
// All generators produce connected simple graphs with sequential ids 1..n;
// `relabel_random` / `reweight_random` derive variants with random distinct
// ids / weights.  The crossing gadgets at the bottom implement the cut-and-
// splice constructions used by the lower-bound machinery (two copies of a
// graph glued along a 2-edge cut, and two different graphs glued the same
// way).
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace pls::graph {

using util::Rng;

Graph path(std::size_t n);
Graph cycle(std::size_t n);
Graph star(std::size_t n);            ///< node 0 is the center, n >= 2 total
Graph complete(std::size_t n);
Graph grid(std::size_t rows, std::size_t cols);
Graph balanced_binary_tree(std::size_t n);
/// Spine of length `spine` where spine node i carries `legs` pendant leaves.
Graph caterpillar(std::size_t spine, std::size_t legs);

/// Uniformly random labelled tree (Prüfer-like attachment: node i attaches to
/// a uniform previous node — random recursive tree; connected by design).
Graph random_tree(std::size_t n, Rng& rng);

/// Connected Erdős–Rényi-style graph: a random spanning tree plus
/// `extra_edges` additional distinct random edges.
Graph random_connected(std::size_t n, std::size_t extra_edges, Rng& rng);

/// Random d-regular graph via the pairing model (retries until simple).
/// Requires n*d even, d < n.
Graph random_regular(std::size_t n, std::size_t d, Rng& rng);

/// Same structure, fresh ids: a random injection into [1, id_space].
/// id_space defaults (0) to 4n so ids still fit in O(log n) bits.
Graph relabel_random(const Graph& g, Rng& rng, RawId id_space = 0);

/// Same structure, random distinct weights: a permutation of {1..m}.
Graph reweight_random(const Graph& g, Rng& rng);

/// Same structure and ids, weights given explicitly (size m).
Graph reweight(const Graph& g, const std::vector<Weight>& weights);

/// The crossing gadget of the lower-bound arguments: take two node-disjoint
/// graphs A and B, remove edge (a1,a2) from A and (b1,b2) from B, and add the
/// cross edges (a1,b1) and (a2,b2).  Endpoint indices refer to A resp. B;
/// in the result, A occupies indices [0, |A|) and B occupies [|A|, |A|+|B|).
/// Ids of B are shifted by `id_shift` to stay distinct.
struct CrossedPair {
  Graph graph;
  NodeIndex a1, a2, b1, b2;  ///< indices of the four cut nodes in `graph`
};
CrossedPair cross_graphs(const Graph& a, NodeIndex a1, NodeIndex a2,
                         const Graph& b, NodeIndex b1, NodeIndex b2,
                         RawId id_shift);

/// Disjoint union of A and B plus a single bridge edge (a1, b1).
Graph union_with_bridge(const Graph& a, NodeIndex a1, const Graph& b,
                        NodeIndex b1, RawId id_shift);

}  // namespace pls::graph
