#include "graph/generators.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <unordered_set>

#include "util/assert.hpp"

namespace pls::graph {

namespace {

Graph::Builder sequential_nodes(std::size_t n) {
  Graph::Builder b;
  for (std::size_t i = 0; i < n; ++i) b.add_node(static_cast<RawId>(i + 1));
  return b;
}

}  // namespace

Graph path(std::size_t n) {
  PLS_REQUIRE(n >= 1);
  auto b = sequential_nodes(n);
  for (std::size_t i = 0; i + 1 < n; ++i)
    b.add_edge(static_cast<NodeIndex>(i), static_cast<NodeIndex>(i + 1));
  return std::move(b).build();
}

Graph cycle(std::size_t n) {
  PLS_REQUIRE(n >= 3);
  auto b = sequential_nodes(n);
  for (std::size_t i = 0; i < n; ++i)
    b.add_edge(static_cast<NodeIndex>(i), static_cast<NodeIndex>((i + 1) % n));
  return std::move(b).build();
}

Graph star(std::size_t n) {
  PLS_REQUIRE(n >= 2);
  auto b = sequential_nodes(n);
  for (std::size_t i = 1; i < n; ++i)
    b.add_edge(0, static_cast<NodeIndex>(i));
  return std::move(b).build();
}

Graph complete(std::size_t n) {
  PLS_REQUIRE(n >= 2);
  auto b = sequential_nodes(n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      b.add_edge(static_cast<NodeIndex>(i), static_cast<NodeIndex>(j));
  return std::move(b).build();
}

Graph grid(std::size_t rows, std::size_t cols) {
  PLS_REQUIRE(rows >= 1 && cols >= 1 && rows * cols >= 2);
  auto b = sequential_nodes(rows * cols);
  auto at = [cols](std::size_t r, std::size_t c) {
    return static_cast<NodeIndex>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(at(r, c), at(r, c + 1));
      if (r + 1 < rows) b.add_edge(at(r, c), at(r + 1, c));
    }
  return std::move(b).build();
}

Graph balanced_binary_tree(std::size_t n) {
  PLS_REQUIRE(n >= 1);
  auto b = sequential_nodes(n);
  for (std::size_t i = 1; i < n; ++i)
    b.add_edge(static_cast<NodeIndex>((i - 1) / 2), static_cast<NodeIndex>(i));
  return std::move(b).build();
}

Graph caterpillar(std::size_t spine, std::size_t legs) {
  PLS_REQUIRE(spine >= 1);
  const std::size_t n = spine * (1 + legs);
  auto b = sequential_nodes(n);
  for (std::size_t i = 0; i + 1 < spine; ++i)
    b.add_edge(static_cast<NodeIndex>(i), static_cast<NodeIndex>(i + 1));
  std::size_t next = spine;
  for (std::size_t i = 0; i < spine; ++i)
    for (std::size_t l = 0; l < legs; ++l)
      b.add_edge(static_cast<NodeIndex>(i), static_cast<NodeIndex>(next++));
  return std::move(b).build();
}

Graph random_tree(std::size_t n, Rng& rng) {
  PLS_REQUIRE(n >= 1);
  auto b = sequential_nodes(n);
  for (std::size_t i = 1; i < n; ++i) {
    const auto parent = static_cast<NodeIndex>(rng.below(i));
    b.add_edge(parent, static_cast<NodeIndex>(i));
  }
  return std::move(b).build();
}

Graph random_connected(std::size_t n, std::size_t extra_edges, Rng& rng) {
  PLS_REQUIRE(n >= 1);
  const std::size_t max_extra = n * (n - 1) / 2 - (n - 1);
  PLS_REQUIRE(extra_edges <= max_extra);
  auto b = sequential_nodes(n);
  std::set<std::pair<NodeIndex, NodeIndex>> used;
  // Random recursive tree backbone.
  for (std::size_t i = 1; i < n; ++i) {
    const auto parent = static_cast<NodeIndex>(rng.below(i));
    b.add_edge(parent, static_cast<NodeIndex>(i));
    used.emplace(std::min<NodeIndex>(parent, static_cast<NodeIndex>(i)),
                 std::max<NodeIndex>(parent, static_cast<NodeIndex>(i)));
  }
  std::size_t added = 0;
  while (added < extra_edges) {
    const auto u = static_cast<NodeIndex>(rng.below(n));
    const auto v = static_cast<NodeIndex>(rng.below(n));
    if (u == v) continue;
    const auto key = std::make_pair(std::min(u, v), std::max(u, v));
    if (!used.emplace(key).second) continue;
    b.add_edge(u, v);
    ++added;
  }
  return std::move(b).build();
}

Graph random_regular(std::size_t n, std::size_t d, Rng& rng) {
  PLS_REQUIRE(n >= 2 && d >= 1 && d < n && (n * d) % 2 == 0);
  // Pairing model with rejection; retry until the multigraph is simple and
  // connected.  For the modest n/d used in experiments this converges fast.
  for (int attempt = 0; attempt < 2000; ++attempt) {
    std::vector<NodeIndex> stubs;
    stubs.reserve(n * d);
    for (std::size_t v = 0; v < n; ++v)
      for (std::size_t k = 0; k < d; ++k)
        stubs.push_back(static_cast<NodeIndex>(v));
    rng.shuffle(stubs);
    std::set<std::pair<NodeIndex, NodeIndex>> used;
    bool simple = true;
    for (std::size_t i = 0; i < stubs.size(); i += 2) {
      const NodeIndex u = stubs[i], v = stubs[i + 1];
      if (u == v) {
        simple = false;
        break;
      }
      if (!used.emplace(std::min(u, v), std::max(u, v)).second) {
        simple = false;
        break;
      }
    }
    if (!simple) continue;
    auto b = sequential_nodes(n);
    for (const auto& [u, v] : used) b.add_edge(u, v);
    Graph g = std::move(b).build();
    if (g.is_connected()) return g;
  }
  throw std::runtime_error("random_regular: no simple connected pairing found");
}

Graph relabel_random(const Graph& g, Rng& rng, RawId id_space) {
  if (id_space == 0) id_space = static_cast<RawId>(4 * g.n());
  PLS_REQUIRE(id_space >= g.n());
  std::unordered_set<RawId> chosen;
  std::vector<RawId> fresh;
  fresh.reserve(g.n());
  while (fresh.size() < g.n()) {
    const RawId candidate = 1 + rng.below(id_space);
    if (chosen.insert(candidate).second) fresh.push_back(candidate);
  }
  Graph::Builder b;
  for (std::size_t v = 0; v < g.n(); ++v) b.add_node(fresh[v]);
  for (const Edge& e : g.edges()) b.add_edge(e.u, e.v, e.w);
  return std::move(b).build();
}

Graph reweight_random(const Graph& g, Rng& rng) {
  std::vector<Weight> ws(g.m());
  for (std::size_t i = 0; i < ws.size(); ++i)
    ws[i] = static_cast<Weight>(i + 1);
  rng.shuffle(ws);
  return reweight(g, ws);
}

Graph reweight(const Graph& g, const std::vector<Weight>& weights) {
  PLS_REQUIRE(weights.size() == g.m());
  Graph::Builder b;
  for (std::size_t v = 0; v < g.n(); ++v) b.add_node(g.id(static_cast<NodeIndex>(v)));
  for (EdgeIndex e = 0; e < g.m(); ++e) {
    const Edge& ed = g.edge(e);
    b.add_edge(ed.u, ed.v, weights[e]);
  }
  return std::move(b).build();
}

CrossedPair cross_graphs(const Graph& a, NodeIndex a1, NodeIndex a2,
                         const Graph& b, NodeIndex b1, NodeIndex b2,
                         RawId id_shift) {
  PLS_REQUIRE(a.find_edge(a1, a2).has_value());
  PLS_REQUIRE(b.find_edge(b1, b2).has_value());
  Graph::Builder out;
  for (std::size_t v = 0; v < a.n(); ++v)
    out.add_node(a.id(static_cast<NodeIndex>(v)));
  for (std::size_t v = 0; v < b.n(); ++v)
    out.add_node(b.id(static_cast<NodeIndex>(v)) + id_shift);
  const auto shift = static_cast<NodeIndex>(a.n());
  for (const Edge& e : a.edges())
    if (!((e.u == std::min(a1, a2) && e.v == std::max(a1, a2))))
      out.add_edge(e.u, e.v, e.w);
  for (const Edge& e : b.edges())
    if (!((e.u == std::min(b1, b2) && e.v == std::max(b1, b2))))
      out.add_edge(e.u + shift, e.v + shift, e.w);
  out.add_edge(a1, b1 + shift);
  out.add_edge(a2, b2 + shift);
  return CrossedPair{std::move(out).build(), a1, a2,
                     static_cast<NodeIndex>(b1 + shift),
                     static_cast<NodeIndex>(b2 + shift)};
}

Graph union_with_bridge(const Graph& a, NodeIndex a1, const Graph& b,
                        NodeIndex b1, RawId id_shift) {
  PLS_REQUIRE(a1 < a.n() && b1 < b.n());
  Graph::Builder out;
  for (std::size_t v = 0; v < a.n(); ++v)
    out.add_node(a.id(static_cast<NodeIndex>(v)));
  for (std::size_t v = 0; v < b.n(); ++v)
    out.add_node(b.id(static_cast<NodeIndex>(v)) + id_shift);
  const auto shift = static_cast<NodeIndex>(a.n());
  for (const Edge& e : a.edges()) out.add_edge(e.u, e.v, e.w);
  for (const Edge& e : b.edges()) out.add_edge(e.u + shift, e.v + shift, e.w);
  out.add_edge(a1, static_cast<NodeIndex>(b1 + shift));
  return std::move(out).build();
}

}  // namespace pls::graph
