#include "graph/graph.hpp"

#include <algorithm>
#include <atomic>
#include <queue>
#include <set>
#include <sstream>
#include <stdexcept>

#include "util/assert.hpp"

namespace pls::graph {

namespace {

std::uint64_t next_graph_epoch() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

NodeIndex Graph::Builder::add_node(RawId id) {
  auto [it, inserted] = by_id_.emplace(id, static_cast<NodeIndex>(ids_.size()));
  if (!inserted)
    throw std::invalid_argument("Graph::Builder: duplicate node id " +
                                std::to_string(id));
  ids_.push_back(id);
  return it->second;
}

EdgeIndex Graph::Builder::add_edge(NodeIndex u, NodeIndex v, Weight w) {
  if (u >= ids_.size() || v >= ids_.size())
    throw std::invalid_argument("Graph::Builder: edge endpoint out of range");
  if (u == v)
    throw std::invalid_argument("Graph::Builder: self-loop on node " +
                                std::to_string(ids_[u]));
  edges_.push_back(Edge{std::min(u, v), std::max(u, v), w});
  return static_cast<EdgeIndex>(edges_.size() - 1);
}

Graph Graph::Builder::build() && {
  // Reject parallel edges.
  {
    std::set<std::pair<NodeIndex, NodeIndex>> seen;
    for (const Edge& e : edges_)
      if (!seen.emplace(e.u, e.v).second)
        throw std::invalid_argument("Graph::Builder: parallel edge");
  }

  Graph g;
  g.epoch_ = next_graph_epoch();
  g.ids_ = std::move(ids_);
  g.edges_ = std::move(edges_);
  g.by_id_ = std::move(by_id_);

  const std::size_t n = g.ids_.size();

  // CSR adjacency, sorted by neighbor index within each node.
  std::vector<std::uint32_t> deg(n, 0);
  for (const Edge& e : g.edges_) {
    ++deg[e.u];
    ++deg[e.v];
  }
  g.adj_offsets_.assign(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v)
    g.adj_offsets_[v + 1] = g.adj_offsets_[v] + deg[v];
  g.adj_flat_.resize(g.adj_offsets_[n]);
  std::vector<std::uint32_t> cursor(g.adj_offsets_.begin(),
                                    g.adj_offsets_.end() - 1);
  for (EdgeIndex e = 0; e < g.edges_.size(); ++e) {
    const Edge& ed = g.edges_[e];
    g.adj_flat_[cursor[ed.u]++] = AdjEntry{ed.v, e};
    g.adj_flat_[cursor[ed.v]++] = AdjEntry{ed.u, e};
  }
  for (std::size_t v = 0; v < n; ++v) {
    auto begin = g.adj_flat_.begin() + g.adj_offsets_[v];
    auto end = g.adj_flat_.begin() + g.adj_offsets_[v + 1];
    std::sort(begin, end,
              [](const AdjEntry& a, const AdjEntry& b) { return a.to < b.to; });
  }

  // Connectivity (BFS from node 0).
  if (n == 0) {
    g.connected_ = false;
  } else {
    std::vector<bool> seen(n, false);
    std::queue<NodeIndex> frontier;
    frontier.push(0);
    seen[0] = true;
    std::size_t visited = 1;
    while (!frontier.empty()) {
      const NodeIndex v = frontier.front();
      frontier.pop();
      for (const AdjEntry& a : g.adjacency(v)) {
        if (!seen[a.to]) {
          seen[a.to] = true;
          ++visited;
          frontier.push(a.to);
        }
      }
    }
    g.connected_ = (visited == n);
  }

  // Distinct weights?
  {
    std::vector<Weight> ws;
    ws.reserve(g.edges_.size());
    for (const Edge& e : g.edges_) ws.push_back(e.w);
    std::sort(ws.begin(), ws.end());
    g.distinct_weights_ =
        std::adjacent_find(ws.begin(), ws.end()) == ws.end();
  }

  if (n > 0) {
    g.max_id_ = *std::max_element(g.ids_.begin(), g.ids_.end());
    g.min_id_ = *std::min_element(g.ids_.begin(), g.ids_.end());
  }
  return g;
}

std::span<const AdjEntry> Graph::adjacency(NodeIndex v) const {
  PLS_REQUIRE(v < n());
  return {adj_flat_.data() + adj_offsets_[v],
          adj_flat_.data() + adj_offsets_[v + 1]};
}

NodeIndex Graph::other_endpoint(EdgeIndex e, NodeIndex v) const {
  const Edge& ed = edges_.at(e);
  PLS_REQUIRE(ed.u == v || ed.v == v);
  return ed.u == v ? ed.v : ed.u;
}

std::optional<EdgeIndex> Graph::find_edge(NodeIndex u, NodeIndex v) const {
  PLS_REQUIRE(u < n() && v < n());
  auto adj = adjacency(u);
  auto it = std::lower_bound(
      adj.begin(), adj.end(), v,
      [](const AdjEntry& a, NodeIndex target) { return a.to < target; });
  if (it != adj.end() && it->to == v) return it->edge;
  return std::nullopt;
}

std::optional<NodeIndex> Graph::find_by_id(RawId id) const {
  auto it = by_id_.find(id);
  if (it == by_id_.end()) return std::nullopt;
  return it->second;
}

std::string Graph::describe() const {
  std::ostringstream os;
  os << "graph(n=" << n() << ", m=" << m()
     << (connected_ ? ", connected" : ", disconnected")
     << (distinct_weights_ ? ", distinct-weights" : "") << ")";
  return os.str();
}

}  // namespace pls::graph
