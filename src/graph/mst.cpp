#include "graph/mst.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

#include "graph/dsu.hpp"
#include "util/assert.hpp"

namespace pls::graph {

namespace {

void require_mst_input(const Graph& g) {
  PLS_REQUIRE(g.n() >= 1);
  PLS_REQUIRE(g.is_connected());
  PLS_REQUIRE(g.has_distinct_weights());
}

}  // namespace

std::vector<EdgeIndex> kruskal(const Graph& g) {
  require_mst_input(g);
  std::vector<EdgeIndex> order(g.m());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&g](EdgeIndex a, EdgeIndex b) {
    return g.weight(a) < g.weight(b);
  });
  Dsu dsu(g.n());
  std::vector<EdgeIndex> tree;
  tree.reserve(g.n() - 1);
  for (const EdgeIndex e : order) {
    if (dsu.unite(g.edge(e).u, g.edge(e).v)) tree.push_back(e);
    if (tree.size() == g.n() - 1) break;
  }
  PLS_ASSERT(tree.size() == g.n() - 1);
  return tree;
}

std::vector<EdgeIndex> prim(const Graph& g) {
  require_mst_input(g);
  using Item = std::pair<Weight, EdgeIndex>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  std::vector<bool> in_tree(g.n(), false);
  std::vector<EdgeIndex> tree;
  tree.reserve(g.n() - 1);

  auto add_node = [&](NodeIndex v) {
    in_tree[v] = true;
    for (const AdjEntry& a : g.adjacency(v))
      if (!in_tree[a.to]) heap.emplace(g.weight(a.edge), a.edge);
  };
  add_node(0);
  while (!heap.empty() && tree.size() < g.n() - 1) {
    const auto [w, e] = heap.top();
    heap.pop();
    const Edge& ed = g.edge(e);
    if (in_tree[ed.u] && in_tree[ed.v]) continue;
    tree.push_back(e);
    add_node(in_tree[ed.u] ? ed.v : ed.u);
  }
  PLS_ASSERT(tree.size() == g.n() - 1);
  return tree;
}

Weight total_weight(const Graph& g, const std::vector<EdgeIndex>& edges) {
  Weight sum = 0;
  for (const EdgeIndex e : edges) sum += g.weight(e);
  return sum;
}

BoruvkaRun boruvka_with_history(const Graph& g) {
  require_mst_input(g);
  BoruvkaRun run;
  run.mst_mask.assign(g.m(), false);

  Dsu dsu(g.n());

  // Fragment representative = minimum-raw-id node; recomputed each phase.
  auto snapshot_fragments = [&]() {
    std::vector<NodeIndex> rep_min(g.n(), kInvalidNode);
    for (NodeIndex v = 0; v < g.n(); ++v) {
      const NodeIndex root = dsu.find(v);
      if (rep_min[root] == kInvalidNode || g.id(v) < g.id(rep_min[root]))
        rep_min[root] = v;
    }
    std::vector<NodeIndex> fragment_of(g.n());
    for (NodeIndex v = 0; v < g.n(); ++v)
      fragment_of[v] = rep_min[dsu.find(v)];
    return fragment_of;
  };

  while (true) {
    BoruvkaPhase phase;
    phase.fragment_of = snapshot_fragments();
    if (dsu.component_count() == 1) {
      run.phases.push_back(std::move(phase));
      break;
    }
    // Minimum outgoing edge per fragment.
    std::unordered_map<NodeIndex, EdgeIndex> best;
    for (EdgeIndex e = 0; e < g.m(); ++e) {
      const Edge& ed = g.edge(e);
      const NodeIndex fu = phase.fragment_of[ed.u];
      const NodeIndex fv = phase.fragment_of[ed.v];
      if (fu == fv) continue;
      for (const NodeIndex f : {fu, fv}) {
        auto it = best.find(f);
        if (it == best.end() || g.weight(e) < g.weight(it->second))
          best[f] = e;
      }
    }
    PLS_ASSERT(!best.empty());
    for (const auto& [fragment, e] : best) {
      if (!run.mst_mask[e]) {
        run.mst_mask[e] = true;
        run.mst_edges.push_back(e);
      }
      dsu.unite(g.edge(e).u, g.edge(e).v);
    }
    phase.chosen = std::move(best);
    run.phases.push_back(std::move(phase));
  }

  PLS_ASSERT(run.mst_edges.size() == g.n() - 1);
  // Borůvka halves (at least) the fragment count per phase.
  std::size_t bound = 1;
  std::size_t frags = g.n();
  while (frags > 1) {
    frags = (frags + 1) / 2;
    ++bound;
  }
  PLS_ASSERT(run.phases.size() <= bound);
  return run;
}

}  // namespace pls::graph
