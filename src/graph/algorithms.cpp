#include "graph/algorithms.hpp"

#include <algorithm>
#include <queue>

#include "graph/bfs_core.hpp"
#include "graph/dsu.hpp"
#include "util/assert.hpp"

namespace pls::graph {

namespace {

/// layered_bfs visitor recording the classic dist/parent arrays.  This is
/// the ground-truth end of the shared BFS core — the radius-t geometry
/// builder (radius/ball.cpp) drives the same traversal, so ball layer
/// structure and these distances cannot drift apart.
struct DistParentVisitor {
  BfsResult* r;
  const std::vector<bool>* edge_mask;

  void discover(NodeIndex v, std::uint32_t, std::uint32_t dist,
                NodeIndex parent, EdgeIndex) {
    r->dist[v] = dist;
    r->parent[v] = parent;
  }
  void row(NodeIndex, std::uint32_t, std::uint32_t) {}
  void edge_in(std::uint32_t, std::uint32_t, std::uint32_t) {}
  void edge_beyond(NodeIndex, EdgeIndex) {}
  bool accept_edge(EdgeIndex e) const {
    return edge_mask == nullptr || (*edge_mask)[e];
  }
};

BfsResult bfs_impl(const Graph& g, NodeIndex root,
                   const std::vector<bool>* edge_mask) {
  PLS_REQUIRE(root < g.n());
  BfsResult r;
  r.dist.assign(g.n(), BfsResult::kUnreachable);
  r.parent.assign(g.n(), kInvalidNode);
  VisitEpochSet scratch;
  std::vector<NodeIndex> frontier;
  layered_bfs(g, root, BfsResult::kUnreachable, scratch, frontier,
              DistParentVisitor{&r, edge_mask});
  return r;
}

}  // namespace

BfsResult bfs(const Graph& g, NodeIndex root) { return bfs_impl(g, root, nullptr); }

BfsResult bfs_on_subgraph(const Graph& g, NodeIndex root,
                          const std::vector<bool>& edge_mask) {
  PLS_REQUIRE(edge_mask.size() == g.m());
  return bfs_impl(g, root, &edge_mask);
}

Components connected_components(const Graph& g) {
  std::vector<bool> all(g.m(), true);
  return components_of_subgraph(g, all);
}

Components components_of_subgraph(const Graph& g,
                                  const std::vector<bool>& edge_mask) {
  PLS_REQUIRE(edge_mask.size() == g.m());
  Components c;
  c.comp.assign(g.n(), std::numeric_limits<std::uint32_t>::max());
  for (NodeIndex start = 0; start < g.n(); ++start) {
    if (c.comp[start] != std::numeric_limits<std::uint32_t>::max()) continue;
    const auto id = static_cast<std::uint32_t>(c.count++);
    std::queue<NodeIndex> frontier;
    frontier.push(start);
    c.comp[start] = id;
    while (!frontier.empty()) {
      const NodeIndex v = frontier.front();
      frontier.pop();
      for (const AdjEntry& a : g.adjacency(v)) {
        if (!edge_mask[a.edge]) continue;
        if (c.comp[a.to] != std::numeric_limits<std::uint32_t>::max()) continue;
        c.comp[a.to] = id;
        frontier.push(a.to);
      }
    }
  }
  return c;
}

std::optional<std::vector<std::uint8_t>> bipartition(const Graph& g) {
  std::vector<std::uint8_t> color(g.n(), 2);  // 2 = unassigned
  for (NodeIndex start = 0; start < g.n(); ++start) {
    if (color[start] != 2) continue;
    color[start] = 0;
    std::queue<NodeIndex> frontier;
    frontier.push(start);
    while (!frontier.empty()) {
      const NodeIndex v = frontier.front();
      frontier.pop();
      for (const AdjEntry& a : g.adjacency(v)) {
        if (color[a.to] == 2) {
          color[a.to] = static_cast<std::uint8_t>(1 - color[v]);
          frontier.push(a.to);
        } else if (color[a.to] == color[v]) {
          return std::nullopt;
        }
      }
    }
  }
  return color;
}

std::size_t diameter(const Graph& g) {
  PLS_REQUIRE(g.is_connected());
  std::size_t best = 0;
  for (NodeIndex v = 0; v < g.n(); ++v) {
    const BfsResult r = bfs(g, v);
    for (const std::uint32_t d : r.dist)
      best = std::max<std::size_t>(best, d);
  }
  return best;
}

bool is_spanning_tree(const Graph& g, const std::vector<bool>& edge_mask) {
  PLS_REQUIRE(edge_mask.size() == g.m());
  const std::size_t selected =
      static_cast<std::size_t>(std::count(edge_mask.begin(), edge_mask.end(), true));
  if (g.n() == 0 || selected != g.n() - 1) return false;
  return components_of_subgraph(g, edge_mask).count == 1;
}

bool is_forest(const Graph& g, const std::vector<bool>& edge_mask) {
  PLS_REQUIRE(edge_mask.size() == g.m());
  Dsu dsu(g.n());
  for (EdgeIndex e = 0; e < g.m(); ++e) {
    if (!edge_mask[e]) continue;
    if (!dsu.unite(g.edge(e).u, g.edge(e).v)) return false;
  }
  return true;
}

std::vector<std::vector<NodeIndex>> pointer_cycles(
    const std::vector<std::optional<NodeIndex>>& pointers) {
  const std::size_t n = pointers.size();
  std::vector<std::vector<NodeIndex>> cycles;
  // 0 = unvisited, 1 = on current walk, 2 = finished.
  std::vector<std::uint8_t> mark(n, 0);
  std::vector<std::uint32_t> walk_pos(n, 0);
  for (std::size_t start = 0; start < n; ++start) {
    if (mark[start] != 0) continue;
    std::vector<NodeIndex> walk;
    NodeIndex v = static_cast<NodeIndex>(start);
    while (true) {
      if (mark[v] == 1) {
        // Found a new cycle: the suffix of the walk from v's position.
        std::vector<NodeIndex> cycle(walk.begin() + walk_pos[v], walk.end());
        cycles.push_back(std::move(cycle));
        break;
      }
      if (mark[v] == 2) break;  // rejoins an already-processed path
      mark[v] = 1;
      walk_pos[v] = static_cast<std::uint32_t>(walk.size());
      walk.push_back(v);
      if (!pointers[v].has_value()) break;  // reached a root
      PLS_REQUIRE(*pointers[v] < n);
      v = *pointers[v];
    }
    for (const NodeIndex u : walk) mark[u] = 2;
  }
  return cycles;
}

bool is_spanning_in_tree(const Graph& g,
                         const std::vector<std::optional<NodeIndex>>& pointers) {
  if (pointers.size() != g.n() || g.n() == 0) return false;
  std::size_t roots = 0;
  std::vector<bool> mask(g.m(), false);
  for (NodeIndex v = 0; v < g.n(); ++v) {
    if (!pointers[v].has_value()) {
      ++roots;
      continue;
    }
    const auto e = g.find_edge(v, *pointers[v]);
    if (!e) return false;  // pointer must follow an actual edge
    mask[*e] = true;
  }
  if (roots != 1) return false;
  if (!pointer_cycles(pointers).empty()) return false;
  // n-1 pointer edges, acyclic, following graph edges => spanning tree.
  const std::size_t selected =
      static_cast<std::size_t>(std::count(mask.begin(), mask.end(), true));
  return selected == g.n() - 1 && is_spanning_tree(g, mask);
}

}  // namespace pls::graph
