// Disjoint-set union (union by size + path compression).
//
// Used by Kruskal, Borůvka and the certificate repair algorithms.  Kept
// header-only: it is tiny and hot.
#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

#include "util/assert.hpp"

namespace pls::graph {

class Dsu {
 public:
  explicit Dsu(std::size_t n) : parent_(n), size_(n, 1), count_(n) {
    std::iota(parent_.begin(), parent_.end(), 0u);
  }

  std::uint32_t find(std::uint32_t x) {
    PLS_REQUIRE(x < parent_.size());
    std::uint32_t root = x;
    while (parent_[root] != root) root = parent_[root];
    while (parent_[x] != root) {
      const std::uint32_t next = parent_[x];
      parent_[x] = root;
      x = next;
    }
    return root;
  }

  /// Merge the sets containing a and b; returns false if already merged.
  bool unite(std::uint32_t a, std::uint32_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    --count_;
    return true;
  }

  bool same(std::uint32_t a, std::uint32_t b) { return find(a) == find(b); }

  std::size_t component_count() const noexcept { return count_; }
  std::size_t component_size(std::uint32_t x) { return size_[find(x)]; }
  std::size_t universe_size() const noexcept { return parent_.size(); }

 private:
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint32_t> size_;
  std::size_t count_;
};

}  // namespace pls::graph
