// Centralized graph algorithms.
//
// These are the "ground truth" deciders used by languages (`contains`),
// markers (BFS trees, components), and tests.  They are deliberately simple
// and obviously-correct implementations: the interesting distributed logic
// lives in the verifiers, and these routines are what the verifiers are
// checked against.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace pls::graph {

struct BfsResult {
  /// Hop distance from the root; kUnreachable when not reachable.
  std::vector<std::uint32_t> dist;
  /// BFS parent; kInvalidNode for the root and unreachable nodes.
  std::vector<NodeIndex> parent;
  static constexpr std::uint32_t kUnreachable =
      std::numeric_limits<std::uint32_t>::max();
};

BfsResult bfs(const Graph& g, NodeIndex root);

/// BFS restricted to a subset of edges (mask of size m).
BfsResult bfs_on_subgraph(const Graph& g, NodeIndex root,
                          const std::vector<bool>& edge_mask);

struct Components {
  std::vector<std::uint32_t> comp;  ///< component id per node, in [0, count)
  std::size_t count = 0;
};

Components connected_components(const Graph& g);

/// Components of the spanning subgraph induced by `edge_mask` (all nodes).
Components components_of_subgraph(const Graph& g,
                                  const std::vector<bool>& edge_mask);

/// Proper 2-coloring if one exists (graph must be connected for a canonical
/// answer; works per-component otherwise).
std::optional<std::vector<std::uint8_t>> bipartition(const Graph& g);

/// Exact diameter via all-pairs BFS. Intended for n up to a few thousand.
std::size_t diameter(const Graph& g);

/// True iff `edge_mask` selects exactly the edges of a spanning tree of g.
bool is_spanning_tree(const Graph& g, const std::vector<bool>& edge_mask);

/// True iff `edge_mask` selects an acyclic edge set.
bool is_forest(const Graph& g, const std::vector<bool>& edge_mask);

/// Functional-pointer-graph analysis, used by the `acyclic` and spanning-tree
/// (parent-pointer) languages.  pointers[v] is v's successor or nullopt.
/// Returns all directed cycles (each as a list of node indices); the
/// structure is acyclic iff the result is empty.  Each node has out-degree
/// at most 1, so cycles are vertex-disjoint.
std::vector<std::vector<NodeIndex>> pointer_cycles(
    const std::vector<std::optional<NodeIndex>>& pointers);

/// True iff the pointer structure forms a single tree spanning all nodes and
/// oriented towards a unique root (exactly one nullopt, no cycles, underlying
/// edges connect the graph).  `g` supplies the edge set the pointers must
/// respect (pointers[v], when set, must be a neighbor of v in g).
bool is_spanning_in_tree(const Graph& g,
                         const std::vector<std::optional<NodeIndex>>& pointers);

}  // namespace pls::graph
