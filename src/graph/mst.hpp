// Minimum spanning tree algorithms.
//
// Kruskal and Prim are reference implementations used as ground truth and
// baselines.  Borůvka is the algorithm the O(log² n)-bit MST proof labeling
// scheme encodes: `boruvka_with_history` records, for every phase, the
// fragment partition and the minimum outgoing edge chosen by each fragment —
// exactly the data the marker serializes into per-node certificates.
//
// All MST routines require a connected graph with pairwise distinct edge
// weights (so the MST is unique); this matches the paper's setting.
#pragma once

#include <unordered_map>
#include <vector>

#include "graph/graph.hpp"

namespace pls::graph {

/// Edge set of the unique MST, by increasing weight.
std::vector<EdgeIndex> kruskal(const Graph& g);

/// Edge set of the unique MST (Prim from node 0), unsorted.
std::vector<EdgeIndex> prim(const Graph& g);

Weight total_weight(const Graph& g, const std::vector<EdgeIndex>& edges);

struct BoruvkaPhase {
  /// Fragment representative per node at the start of this phase; the
  /// representative is the fragment's minimum-raw-id node.
  std::vector<NodeIndex> fragment_of;
  /// Minimum-weight outgoing edge per fragment, keyed by representative.
  /// Empty in the final phase (a single fragment remains).
  std::unordered_map<NodeIndex, EdgeIndex> chosen;
};

struct BoruvkaRun {
  /// phases.front() is the all-singletons phase; phases.back() is the
  /// single-fragment phase with no chosen edges.
  std::vector<BoruvkaPhase> phases;
  std::vector<EdgeIndex> mst_edges;
  std::vector<bool> mst_mask;  ///< size m; mst_mask[e] iff e is an MST edge

  std::size_t merge_phases() const noexcept { return phases.size() - 1; }
};

BoruvkaRun boruvka_with_history(const Graph& g);

}  // namespace pls::graph
