// Immutable simple graphs with node identities and optional edge weights.
//
// The paper's networks are connected simple undirected graphs whose nodes
// carry globally unique identifiers; MST additionally assumes pairwise
// distinct edge weights.  Graph is a value type built once through
// Graph::Builder (which validates simplicity and id uniqueness) and never
// mutated afterwards — configurations, labelings and experiments all share
// graphs by const reference.
//
// Representation: CSR adjacency over dense node indices [0, n).  The dense
// index is a simulation artifact; algorithms that model what a *node* can see
// must only use raw ids, degrees and edge weights (the verifier contexts in
// src/local enforce this).
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace pls::graph {

using NodeIndex = std::uint32_t;  ///< dense simulation index in [0, n)
using EdgeIndex = std::uint32_t;  ///< dense edge index in [0, m)
using RawId = std::uint64_t;      ///< the identifier a node actually knows
using Weight = std::int64_t;      ///< edge weight (distinct for MST inputs)

inline constexpr NodeIndex kInvalidNode =
    std::numeric_limits<NodeIndex>::max();
inline constexpr EdgeIndex kInvalidEdge =
    std::numeric_limits<EdgeIndex>::max();

struct Edge {
  NodeIndex u = kInvalidNode;
  NodeIndex v = kInvalidNode;
  Weight w = 1;
};

/// One adjacency slot: the neighbor and the id of the connecting edge.
struct AdjEntry {
  NodeIndex to = kInvalidNode;
  EdgeIndex edge = kInvalidEdge;
};

class Graph {
 public:
  class Builder {
   public:
    Builder() = default;

    /// Registers a node with the given raw identifier; returns its index.
    /// Throws std::invalid_argument on duplicate ids.
    NodeIndex add_node(RawId id);

    /// Adds an undirected edge; self-loops and parallel edges are rejected.
    EdgeIndex add_edge(NodeIndex u, NodeIndex v, Weight w = 1);

    /// Finalizes the graph. The builder must not be reused afterwards.
    Graph build() &&;

    std::size_t num_nodes() const noexcept { return ids_.size(); }

   private:
    std::vector<RawId> ids_;
    std::vector<Edge> edges_;
    std::unordered_map<RawId, NodeIndex> by_id_;
  };

  std::size_t n() const noexcept { return ids_.size(); }
  std::size_t m() const noexcept { return edges_.size(); }

  RawId id(NodeIndex v) const { return ids_.at(v); }
  std::span<const RawId> ids() const noexcept { return ids_; }

  std::size_t degree(NodeIndex v) const {
    return adjacency(v).size();
  }

  /// Neighbors of v, sorted by neighbor index.
  std::span<const AdjEntry> adjacency(NodeIndex v) const;

  std::span<const Edge> edges() const noexcept { return edges_; }
  const Edge& edge(EdgeIndex e) const { return edges_.at(e); }
  Weight weight(EdgeIndex e) const { return edges_.at(e).w; }

  NodeIndex other_endpoint(EdgeIndex e, NodeIndex v) const;

  /// Edge between u and v, if present (binary search, O(log deg)).
  std::optional<EdgeIndex> find_edge(NodeIndex u, NodeIndex v) const;

  /// Node with the given raw id, if present.
  std::optional<NodeIndex> find_by_id(RawId id) const;

  bool is_connected() const noexcept { return connected_; }

  /// True when all edge weights are pairwise distinct (MST precondition).
  bool has_distinct_weights() const noexcept { return distinct_weights_; }

  RawId max_id() const noexcept { return max_id_; }
  RawId min_id() const noexcept { return min_id_; }

  /// Process-unique identity of this built graph, assigned by
  /// Builder::build and never reused within a process.  Copies share the
  /// epoch of the original — they are bit-identical, so anything keyed on
  /// the epoch (the radius-t geometry atlas) stays correct.  Graphs are
  /// immutable, so equal epochs imply equal topology for a cache's lifetime.
  std::uint64_t epoch() const noexcept { return epoch_; }

  /// Human-readable one-line summary, e.g. "graph(n=16, m=24, connected)".
  std::string describe() const;

 private:
  friend class Builder;
  Graph() = default;

  std::vector<RawId> ids_;
  std::vector<Edge> edges_;
  std::vector<AdjEntry> adj_flat_;
  std::vector<std::uint32_t> adj_offsets_;  // size n+1
  std::unordered_map<RawId, NodeIndex> by_id_;
  bool connected_ = false;
  bool distinct_weights_ = false;
  RawId max_id_ = 0;
  RawId min_id_ = 0;
  std::uint64_t epoch_ = 0;
};

}  // namespace pls::graph
