// Shared visited-epoch BFS core.
//
// Two BFS families used to carry their own visited-set logic: the
// centralized ground-truth queries in graph/algorithms.cpp (dist/parent
// arrays reallocated per call) and the radius-t ball construction in
// radius/ball.cpp (epoch-stamped scratch persisting across centers).  The
// geometry atlas makes ball geometry a cached, shared artifact, so there must
// be exactly one definition of "the layered BFS order from a root" — this
// header is it.  Both callers drive `layered_bfs` below; what differs is only
// the visitor they plug in.
//
// VisitEpochSet is the O(1)-reset membership structure: each node carries the
// epoch of its last visit plus a payload slot (its discovery index).  Bumping
// the epoch invalidates every mark at once; the arrays are reallocated only
// when the graph size changes or the 32-bit epoch wraps.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "util/assert.hpp"

namespace pls::graph {

class VisitEpochSet {
 public:
  /// Starts a fresh visit epoch over `n` nodes: every previous mark becomes
  /// invalid in O(1) (O(n) only on first use, size change, or epoch wrap).
  void reset(std::size_t n) {
    if (epoch_of_.size() != n || epoch_ == UINT32_MAX) {
      epoch_of_.assign(n, 0);
      slot_.assign(n, 0);
      epoch_ = 0;
    }
    ++epoch_;
  }

  bool visited(NodeIndex v) const { return epoch_of_[v] == epoch_; }

  void visit(NodeIndex v, std::uint32_t slot) {
    epoch_of_[v] = epoch_;
    slot_[v] = slot;
  }

  /// Payload of the current epoch's visit (the discovery index assigned by
  /// layered_bfs).  Only meaningful when visited(v).
  std::uint32_t slot(NodeIndex v) const { return slot_[v]; }

  /// Test hook: forces the epoch counter so the wraparound reset is
  /// exercisable without 2^32 resets.  Not for production use.
  void set_epoch_for_testing(std::uint32_t epoch) noexcept { epoch_ = epoch; }

 private:
  std::vector<std::uint32_t> epoch_of_;  // per node: epoch of last visit
  std::vector<std::uint32_t> slot_;      // per node: slot in that epoch
  std::uint32_t epoch_ = 0;
};

/// The single layered-BFS driver.  Expands from `root` up to hop distance
/// `max_depth`, assigning each reached node a dense discovery slot (root = 0,
/// then layer by layer, within a layer in the scanning nodes' adjacency
/// order — the order every ball view and BFS tree in the codebase exposes).
///
/// The visitor observes the traversal through five hooks:
///   * discover(v, slot, dist, parent, entry_edge) — once per reached node,
///     in slot order; the root has parent = kInvalidNode and
///     entry_edge = kInvalidEdge.
///   * row(u, u_slot, u_dist) — u's edge scan starts (slot order again).
///   * edge_in(u_slot, v_slot, v_dist) — a scanned edge whose far end is in
///     the traversal (already discovered, or discovered by this very edge).
///   * edge_beyond(u, e) — a scanned edge leaving the depth limit (far end
///     not expanded; only possible when u_dist == max_depth).
///   * accept_edge(e) — traversal-wide edge filter; return false to make the
///     edge invisible (the subgraph BFS of graph/algorithms.cpp).
///
/// `scratch` supplies the visited marks and discovery slots; `frontier` is
/// the reusable discovery-order queue (cleared here, left holding the
/// traversal order on return).
template <typename Visitor>
void layered_bfs(const Graph& g, NodeIndex root, std::uint32_t max_depth,
                 VisitEpochSet& scratch, std::vector<NodeIndex>& frontier,
                 Visitor&& visitor) {
  PLS_REQUIRE(root < g.n());
  scratch.reset(g.n());
  frontier.clear();

  scratch.visit(root, 0);
  frontier.push_back(root);
  visitor.discover(root, 0, 0, kInvalidNode, kInvalidEdge);

  std::size_t layer_begin = 0;
  for (std::uint32_t dist = 0; dist <= max_depth; ++dist) {
    const std::size_t layer_end = frontier.size();
    if (layer_begin == layer_end) break;  // component exhausted early
    for (std::size_t i = layer_begin; i < layer_end; ++i) {
      const NodeIndex u = frontier[i];
      const auto u_slot = static_cast<std::uint32_t>(i);
      visitor.row(u, u_slot, dist);
      for (const AdjEntry& a : g.adjacency(u)) {
        if (!visitor.accept_edge(a.edge)) continue;
        if (scratch.visited(a.to)) {
          visitor.edge_in(u_slot, scratch.slot(a.to), dist);
        } else if (dist < max_depth) {
          const auto v_slot = static_cast<std::uint32_t>(frontier.size());
          scratch.visit(a.to, v_slot);
          frontier.push_back(a.to);
          visitor.discover(a.to, v_slot, dist + 1, u, a.edge);
          visitor.edge_in(u_slot, v_slot, dist);
        } else {
          visitor.edge_beyond(u, a.edge);
        }
      }
    }
    layer_begin = layer_end;
  }
}

}  // namespace pls::graph
