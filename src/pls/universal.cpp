#include "pls/universal.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/assert.hpp"

namespace pls::core {

namespace {

// Safety cap on the encoded network size an adversarial certificate may
// claim; keeps allocations bounded (real certificates are far smaller).
constexpr std::size_t kMaxEncodedNodes = 1u << 14;

struct Encoded {
  std::size_t n = 0;
  std::vector<graph::RawId> ids;
  std::vector<local::State> states;
  std::vector<bool> matrix;            // n*n, row-major
  std::vector<graph::Weight> weights;  // per present edge (i<j), row-major
  std::size_t idx = 0;                 // this node's claimed position
};

std::optional<Encoded> parse(const Certificate& cert) {
  util::BitReader r = cert.reader();
  Encoded e;
  const auto n = r.read_varint();
  if (!n || *n == 0 || *n > kMaxEncodedNodes) return std::nullopt;
  e.n = static_cast<std::size_t>(*n);

  e.ids.reserve(e.n);
  e.states.reserve(e.n);
  for (std::size_t i = 0; i < e.n; ++i) {
    const auto id = r.read_varint();
    if (!id) return std::nullopt;
    const auto state_bits = r.read_varint();
    if (!state_bits || *state_bits > r.remaining()) return std::nullopt;
    util::BitWriter w;
    for (std::uint64_t b = 0; b < *state_bits; ++b) {
      const auto bit = r.read_bit();
      if (!bit) return std::nullopt;
      w.write_bit(*bit);
    }
    e.ids.push_back(*id);
    e.states.push_back(local::State::from_writer(std::move(w)));
  }

  e.matrix.resize(e.n * e.n);
  for (std::size_t i = 0; i < e.n * e.n; ++i) {
    const auto bit = r.read_bit();
    if (!bit) return std::nullopt;
    e.matrix[i] = *bit;
  }

  // Structural sanity: symmetric, no self-loops.
  for (std::size_t i = 0; i < e.n; ++i) {
    if (e.matrix[i * e.n + i]) return std::nullopt;
    for (std::size_t j = i + 1; j < e.n; ++j)
      if (e.matrix[i * e.n + j] != e.matrix[j * e.n + i]) return std::nullopt;
  }

  for (std::size_t i = 0; i < e.n; ++i)
    for (std::size_t j = i + 1; j < e.n; ++j)
      if (e.matrix[i * e.n + j]) {
        const auto w = r.read_varint();
        if (!w) return std::nullopt;
        e.weights.push_back(static_cast<graph::Weight>(*w));
      }

  const unsigned idx_width = util::bit_width_for(e.n - 1);
  const auto idx = r.read_uint(idx_width);
  if (!idx || *idx >= e.n) return std::nullopt;
  e.idx = static_cast<std::size_t>(*idx);
  if (!r.exhausted()) return std::nullopt;  // no trailing garbage

  // Distinct ids (a truthful description has them; cheap to enforce here).
  std::unordered_set<graph::RawId> seen(e.ids.begin(), e.ids.end());
  if (seen.size() != e.n) return std::nullopt;
  return e;
}

/// The description minus the position claim; equal across all nodes of a
/// truthful marking.
bool same_description(const Encoded& a, const Encoded& b) {
  return a.n == b.n && a.ids == b.ids && a.states == b.states &&
         a.matrix == b.matrix && a.weights == b.weights;
}

local::Configuration decode_configuration(const Encoded& e) {
  graph::Graph::Builder b;
  for (std::size_t i = 0; i < e.n; ++i) b.add_node(e.ids[i]);
  std::size_t w = 0;
  for (std::size_t i = 0; i < e.n; ++i)
    for (std::size_t j = i + 1; j < e.n; ++j)
      if (e.matrix[i * e.n + j])
        b.add_edge(static_cast<graph::NodeIndex>(i),
                   static_cast<graph::NodeIndex>(j), e.weights[w++]);
  auto g = std::make_shared<const graph::Graph>(std::move(b).build());
  return local::Configuration(std::move(g), e.states);
}

}  // namespace

UniversalScheme::UniversalScheme(const Language& inner)
    : inner_(inner), name_(std::string("universal(") +
                           std::string(inner.name()) + ")") {}

Labeling UniversalScheme::mark(const local::Configuration& cfg) const {
  const graph::Graph& g = cfg.graph();
  const std::size_t n = g.n();
  PLS_REQUIRE(n >= 1 && n <= kMaxEncodedNodes);

  // Common description, shared by all nodes.
  util::BitWriter common;
  common.write_varint(n);
  for (graph::NodeIndex v = 0; v < n; ++v) {
    common.write_varint(g.id(v));
    common.write_varint(cfg.state(v).bit_size());
    common.write_bits(cfg.state(v).bytes(), cfg.state(v).bit_size());
  }
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      const bool present =
          g.find_edge(static_cast<graph::NodeIndex>(i),
                      static_cast<graph::NodeIndex>(j))
              .has_value();
      common.write_bit(present);
    }
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) {
      const auto e = g.find_edge(static_cast<graph::NodeIndex>(i),
                                 static_cast<graph::NodeIndex>(j));
      if (e) common.write_varint(static_cast<std::uint64_t>(g.weight(*e)));
    }
  const std::vector<std::uint8_t> blob = common.bytes();
  const std::size_t blob_bits = common.bit_size();

  const unsigned idx_width = util::bit_width_for(n - 1);
  Labeling lab;
  lab.certs.reserve(n);
  for (graph::NodeIndex v = 0; v < n; ++v) {
    util::BitWriter w;
    w.write_bits(blob, blob_bits);
    w.write_uint(v, idx_width);
    lab.certs.push_back(Certificate::from_writer(std::move(w)));
  }
  return lab;
}

bool UniversalScheme::verify(const local::VerifierContext& ctx) const {
  const auto own = parse(ctx.certificate());
  if (!own) return false;

  // My own row of the description must be truthful.
  if (own->ids[own->idx] != ctx.id()) return false;
  if (own->states[own->idx] != ctx.state()) return false;

  // My described neighborhood must match my actual ports: same degree, and
  // (for weighted graphs) the same multiset of incident edge weights.
  std::vector<std::size_t> described_neighbors;
  std::vector<graph::Weight> described_weights;
  {
    std::size_t w = 0;
    for (std::size_t i = 0; i < own->n; ++i)
      for (std::size_t j = i + 1; j < own->n; ++j)
        if (own->matrix[i * own->n + j]) {
          if (i == own->idx) {
            described_neighbors.push_back(j);
            described_weights.push_back(own->weights[w]);
          } else if (j == own->idx) {
            described_neighbors.push_back(i);
            described_weights.push_back(own->weights[w]);
          }
          ++w;
        }
  }
  if (described_neighbors.size() != ctx.degree()) return false;
  {
    std::vector<graph::Weight> actual;
    actual.reserve(ctx.degree());
    for (const local::NeighborView& nb : ctx.neighbors())
      actual.push_back(nb.edge_weight);
    std::sort(actual.begin(), actual.end());
    std::vector<graph::Weight> described = described_weights;
    std::sort(described.begin(), described.end());
    if (actual != described) return false;
  }

  // Every neighbor must carry the same description and claim a position that
  // is one of my described neighbors, all positions distinct.
  std::unordered_set<std::size_t> claimed;
  for (const local::NeighborView& nb : ctx.neighbors()) {
    const auto other = parse(*nb.cert);
    if (!other) return false;
    if (!same_description(*own, *other)) return false;
    if (!own->matrix[own->idx * own->n + other->idx]) return false;
    if (!claimed.insert(other->idx).second) return false;
  }

  // Finally: the described configuration must satisfy the language.
  return inner_.contains(decode_configuration(*own));
}

std::size_t UniversalScheme::proof_size_bound(std::size_t n,
                                              std::size_t state_bits) const {
  // varints cost <= 8/7 * width + 8 bits; generous closed form:
  return n * n + n * (state_bits + 160) + 128;
}

}  // namespace pls::core
