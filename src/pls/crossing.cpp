#include "pls/crossing.hpp"

#include <unordered_set>

#include "util/assert.hpp"

namespace pls::core {

CrossingFamily make_family(const Scheme& scheme,
                           std::vector<local::Configuration> configs,
                           std::vector<bool> left) {
  PLS_REQUIRE(!configs.empty());
  CrossingFamily family;
  family.left = std::move(left);
  PLS_REQUIRE(family.left.size() == configs.front().n());
  const graph::Graph* g = &configs.front().graph();
  for (auto& cfg : configs) {
    PLS_REQUIRE(&cfg.graph() == g);
    PLS_REQUIRE(scheme.language().contains(cfg));
    Labeling lab = scheme.mark(cfg);
    family.instances.push_back(LabeledInstance{std::move(cfg), std::move(lab)});
  }
  return family;
}

std::vector<graph::NodeIndex> boundary_nodes(const graph::Graph& g,
                                             const std::vector<bool>& left) {
  PLS_REQUIRE(left.size() == g.n());
  std::vector<graph::NodeIndex> out;
  for (graph::NodeIndex v = 0; v < g.n(); ++v) {
    bool on_boundary = false;
    for (const graph::AdjEntry& a : g.adjacency(v))
      if (left[a.to] != left[v]) {
        on_boundary = true;
        break;
      }
    if (on_boundary) out.push_back(v);
  }
  return out;
}

PairProbe probe_pair(const Scheme& scheme, const CrossingFamily& family,
                     std::size_t ia, std::size_t ib, std::size_t mask_bits) {
  PLS_REQUIRE(ia < family.instances.size() && ib < family.instances.size());
  const LabeledInstance& A = family.instances[ia];
  const LabeledInstance& B = family.instances[ib];
  const graph::Graph& g = A.cfg.graph();
  const std::vector<bool>& left = family.left;

  // Hybrid configuration and hybrid certificates.
  std::vector<local::State> states;
  states.reserve(g.n());
  Labeling hybrid;
  hybrid.certs.reserve(g.n());
  for (graph::NodeIndex v = 0; v < g.n(); ++v) {
    const LabeledInstance& origin = left[v] ? A : B;
    states.push_back(origin.cfg.state(v));
    hybrid.certs.push_back(origin.lab.certs[v]);
  }
  const local::Configuration spliced(A.cfg.graph_ptr(), std::move(states));

  PairProbe probe;
  probe.spliced_illegal = !scheme.language().contains(spliced);
  probe.rejections_full =
      run_verifier(scheme, spliced, hybrid).rejections();

  // Views identical at the mask: every node incident to a cut edge must have
  // certificates (and, in extended visibility, states) that agree between A
  // and B — then each node's masked view in the hybrid coincides with its
  // masked view in its origin instance, where the verifier accepts.
  probe.views_identical = true;
  const bool extended = scheme.visibility() == local::Visibility::kExtended;
  for (const graph::NodeIndex v : boundary_nodes(g, left)) {
    const Certificate& ca = A.lab.certs[v];
    const Certificate& cb = B.lab.certs[v];
    if (ca.prefix(mask_bits) != cb.prefix(mask_bits)) {
      probe.views_identical = false;
      break;
    }
    if (extended && A.cfg.state(v) != B.cfg.state(v)) {
      probe.views_identical = false;
      break;
    }
  }
  return probe;
}

SweepRow sweep_mask(const Scheme& scheme, const CrossingFamily& family,
                    std::size_t mask_bits, std::size_t max_pairs) {
  SweepRow row;
  row.mask_bits = mask_bits;
  const std::size_t k = family.instances.size();
  for (std::size_t i = 0; i < k && row.pairs_tested < max_pairs; ++i) {
    for (std::size_t j = i + 1; j < k && row.pairs_tested < max_pairs; ++j) {
      const PairProbe probe = probe_pair(scheme, family, i, j, mask_bits);
      ++row.pairs_tested;
      if (probe.spliced_illegal) ++row.illegal_pairs;
      if (probe.fooled()) ++row.fooled_pairs;
    }
  }
  return row;
}

std::size_t distinct_boundary_signatures(const CrossingFamily& family,
                                         std::size_t mask_bits) {
  PLS_REQUIRE(!family.instances.empty());
  const graph::Graph& g = family.instances.front().cfg.graph();
  const auto boundary = boundary_nodes(g, family.left);
  std::unordered_set<std::size_t> seen;
  for (const LabeledInstance& inst : family.instances) {
    std::size_t h = 1469598103934665603ull;
    for (const graph::NodeIndex v : boundary) {
      const Certificate masked = inst.lab.certs[v].prefix(mask_bits);
      h = h * 1099511628211ull + masked.hash();
    }
    seen.insert(h);
  }
  return seen.size();
}

}  // namespace pls::core
