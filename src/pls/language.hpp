// Distributed languages: the predicates proof labeling schemes certify.
//
// A distributed language is a Turing-decidable set of configurations
// (definition in Section 2 of the paper).  `contains` is the centralized
// ground-truth decider; `sample_legal` witnesses constructibility (every
// graph admits a legal state assignment), which the paper assumes throughout.
#pragma once

#include <memory>
#include <string_view>

#include "graph/graph.hpp"
#include "local/config.hpp"
#include "util/rng.hpp"

namespace pls::core {

class Language {
 public:
  virtual ~Language() = default;

  Language() = default;
  Language(const Language&) = delete;
  Language& operator=(const Language&) = delete;

  virtual std::string_view name() const noexcept = 0;

  /// Centralized decider (ground truth for every experiment).
  virtual bool contains(const local::Configuration& cfg) const = 0;

  /// Produces a legal configuration on the given graph.  Randomness lets
  /// experiments draw distinct witnesses (different roots, leaders, ...).
  /// Preconditions (e.g. weighted graph for MST) are stated per language.
  virtual local::Configuration sample_legal(
      std::shared_ptr<const graph::Graph> g, util::Rng& rng) const = 0;
};

}  // namespace pls::core
