// Labelings: one certificate per node, with proof-size accounting.
//
// The proof size of a scheme — the paper's complexity measure — is the
// maximum certificate length (in bits) the marker assigns over all nodes of
// an n-node network.  Labeling tracks exactly that.
#pragma once

#include <vector>

#include "local/config.hpp"

namespace pls::core {

using local::Certificate;

struct Labeling {
  std::vector<Certificate> certs;

  std::size_t size() const noexcept { return certs.size(); }

  const Certificate& at(graph::NodeIndex v) const { return certs.at(v); }

  /// Proof size: maximum certificate bits over all nodes.
  std::size_t max_bits() const noexcept {
    std::size_t best = 0;
    for (const Certificate& c : certs)
      if (c.bit_size() > best) best = c.bit_size();
    return best;
  }

  std::size_t total_bits() const noexcept {
    std::size_t sum = 0;
    for (const Certificate& c : certs) sum += c.bit_size();
    return sum;
  }

  /// Every certificate truncated to its first `nbits` bits (used by the
  /// lower-bound probes to model a scheme restricted to a bit budget).
  Labeling prefix_mask(std::size_t nbits) const {
    Labeling out;
    out.certs.reserve(certs.size());
    for (const Certificate& c : certs) out.certs.push_back(c.prefix(nbits));
    return out;
  }
};

}  // namespace pls::core
