#include "pls/compose.hpp"

#include <stdexcept>

#include "util/assert.hpp"

namespace pls::core {

namespace {

struct SplitCert {
  Certificate first;
  Certificate second;
};

std::optional<SplitCert> split(const Certificate& cert) {
  util::BitReader r = cert.reader();
  const auto len1 = r.read_varint();
  if (!len1 || *len1 > r.remaining()) return std::nullopt;
  util::BitWriter w1;
  for (std::uint64_t i = 0; i < *len1; ++i) {
    const auto bit = r.read_bit();
    if (!bit) return std::nullopt;
    w1.write_bit(*bit);
  }
  util::BitWriter w2;
  while (r.remaining() > 0) {
    const auto bit = r.read_bit();
    if (!bit) return std::nullopt;
    w2.write_bit(*bit);
  }
  return SplitCert{Certificate::from_writer(std::move(w1)),
                   Certificate::from_writer(std::move(w2))};
}

}  // namespace

ConjunctionLanguage::ConjunctionLanguage(const Language& a, const Language& b,
                                         const Language& witness)
    : a_(a),
      b_(b),
      witness_(witness),
      name_(std::string(a.name()) + "&" + std::string(b.name())) {}

bool ConjunctionLanguage::contains(const local::Configuration& cfg) const {
  return a_.contains(cfg) && b_.contains(cfg);
}

local::Configuration ConjunctionLanguage::sample_legal(
    std::shared_ptr<const graph::Graph> g, util::Rng& rng) const {
  local::Configuration cfg = witness_.sample_legal(std::move(g), rng);
  if (!contains(cfg))
    throw std::logic_error(
        "ConjunctionLanguage: witness sampler produced a configuration "
        "outside the conjunction");
  return cfg;
}

ConjunctionScheme::ConjunctionScheme(const ConjunctionLanguage& language,
                                     const Scheme& s1, const Scheme& s2)
    : language_(language),
      s1_(s1),
      s2_(s2),
      visibility_(s1.visibility() == local::Visibility::kExtended ||
                          s2.visibility() == local::Visibility::kExtended
                      ? local::Visibility::kExtended
                      : local::Visibility::kCertificatesOnly),
      name_(std::string(s1.name()) + "&" + std::string(s2.name())) {
  PLS_REQUIRE(&s1.language() == &language.first());
  PLS_REQUIRE(&s2.language() == &language.second());
}

Labeling ConjunctionScheme::mark(const local::Configuration& cfg) const {
  const Labeling lab1 = s1_.mark(cfg);
  const Labeling lab2 = s2_.mark(cfg);
  Labeling out;
  out.certs.reserve(cfg.n());
  for (graph::NodeIndex v = 0; v < cfg.n(); ++v) {
    util::BitWriter w;
    w.write_varint(lab1.certs[v].bit_size());
    w.write_bits(lab1.certs[v].bytes(), lab1.certs[v].bit_size());
    w.write_bits(lab2.certs[v].bytes(), lab2.certs[v].bit_size());
    out.certs.push_back(Certificate::from_writer(std::move(w)));
  }
  return out;
}

bool ConjunctionScheme::verify(const local::VerifierContext& ctx) const {
  const auto own = split(ctx.certificate());
  if (!own) return false;

  std::vector<SplitCert> halves;
  halves.reserve(ctx.degree());
  for (const local::NeighborView& nb : ctx.neighbors()) {
    auto h = split(*nb.cert);
    if (!h) return false;
    halves.push_back(std::move(*h));
  }

  auto run_half = [&](const Scheme& scheme, const Certificate& own_half,
                      auto pick) {
    std::vector<local::NeighborView> views(ctx.degree());
    for (std::size_t i = 0; i < ctx.degree(); ++i) {
      views[i] = ctx.neighbors()[i];
      views[i].cert = pick(halves[i]);
    }
    const local::VerifierContext sub(ctx.id(), ctx.state(), own_half, views,
                                     ctx.mode(), ctx.network_size());
    return scheme.verify(sub);
  };

  return run_half(s1_, own->first,
                  [](const SplitCert& h) { return &h.first; }) &&
         run_half(s2_, own->second,
                  [](const SplitCert& h) { return &h.second; });
}

std::size_t ConjunctionScheme::proof_size_bound(std::size_t n,
                                                std::size_t state_bits) const {
  return s1_.proof_size_bound(n, state_bits) +
         s2_.proof_size_bound(n, state_bits) + 64;
}

}  // namespace pls::core
