// Strict-visibility adapter (experiment T6).
//
// The 2005 model's verification round carries certificates only.  Any scheme
// written against the extended view (neighbor ids and states visible) can be
// mechanically converted: the adapter prepends each node's (id, state) to its
// certificate, and the adapted verifier (a) checks that a node's own claim is
// truthful and (b) reconstructs the extended views of all neighbors from
// their claims.  If every node accepts, every claim is truthful — a lying
// node rejects itself — so the inner scheme's soundness carries over.  The
// measurable cost is +(64 + s + O(1)) certificate bits per node.
#pragma once

#include <memory>
#include <string>

#include "pls/scheme.hpp"

namespace pls::core {

class StrictAdapter final : public Scheme {
 public:
  /// The inner scheme must outlive the adapter.
  explicit StrictAdapter(const Scheme& inner);

  std::string_view name() const noexcept override { return name_; }
  const Language& language() const noexcept override {
    return inner_.language();
  }
  local::Visibility visibility() const noexcept override {
    return local::Visibility::kCertificatesOnly;
  }

  Labeling mark(const local::Configuration& cfg) const override;
  bool verify(const local::VerifierContext& ctx) const override;
  std::size_t proof_size_bound(std::size_t n,
                               std::size_t state_bits) const override;

 private:
  const Scheme& inner_;
  std::string name_;
};

}  // namespace pls::core
