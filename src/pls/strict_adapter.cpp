#include "pls/strict_adapter.hpp"

#include "util/assert.hpp"

namespace pls::core {

namespace {

struct Claim {
  graph::RawId id = 0;
  local::State state;
  Certificate inner;
};

std::optional<Claim> parse(const Certificate& cert) {
  util::BitReader r = cert.reader();
  Claim c;
  const auto id = r.read_varint();
  if (!id) return std::nullopt;
  c.id = *id;
  const auto state_bits = r.read_varint();
  if (!state_bits || *state_bits > r.remaining()) return std::nullopt;
  util::BitWriter sw;
  for (std::uint64_t i = 0; i < *state_bits; ++i) {
    const auto bit = r.read_bit();
    if (!bit) return std::nullopt;
    sw.write_bit(*bit);
  }
  c.state = local::State::from_writer(std::move(sw));
  util::BitWriter cw;
  while (r.remaining() > 0) {
    const auto bit = r.read_bit();
    if (!bit) return std::nullopt;
    cw.write_bit(*bit);
  }
  c.inner = Certificate::from_writer(std::move(cw));
  return c;
}

}  // namespace

StrictAdapter::StrictAdapter(const Scheme& inner)
    : inner_(inner),
      name_(std::string("strict(") + std::string(inner.name()) + ")") {
  PLS_REQUIRE(inner.visibility() == local::Visibility::kExtended);
}

Labeling StrictAdapter::mark(const local::Configuration& cfg) const {
  const Labeling inner = inner_.mark(cfg);
  const graph::Graph& g = cfg.graph();
  Labeling out;
  out.certs.reserve(cfg.n());
  for (graph::NodeIndex v = 0; v < cfg.n(); ++v) {
    util::BitWriter w;
    w.write_varint(g.id(v));
    w.write_varint(cfg.state(v).bit_size());
    w.write_bits(cfg.state(v).bytes(), cfg.state(v).bit_size());
    w.write_bits(inner.certs[v].bytes(), inner.certs[v].bit_size());
    out.certs.push_back(Certificate::from_writer(std::move(w)));
  }
  return out;
}

bool StrictAdapter::verify(const local::VerifierContext& ctx) const {
  const auto own = parse(ctx.certificate());
  if (!own) return false;
  // A node vouches for its own claim; neighbors' claims are vouched for by
  // the neighbors themselves.
  if (own->id != ctx.id() || own->state != ctx.state()) return false;

  std::vector<Claim> claims;
  claims.reserve(ctx.degree());
  for (const local::NeighborView& nb : ctx.neighbors()) {
    auto claim = parse(*nb.cert);
    if (!claim) return false;
    claims.push_back(std::move(claim.value()));
  }

  std::vector<local::NeighborView> synthetic(ctx.degree());
  for (std::size_t i = 0; i < claims.size(); ++i) {
    synthetic[i].cert = &claims[i].inner;
    synthetic[i].state = &claims[i].state;
    synthetic[i].id = claims[i].id;
    synthetic[i].id_visible = true;
    synthetic[i].edge_weight = ctx.neighbors()[i].edge_weight;
  }
  const local::VerifierContext inner_ctx(
      ctx.id(), ctx.state(), own->inner, synthetic,
      local::Visibility::kExtended, ctx.network_size());
  return inner_.verify(inner_ctx);
}

std::size_t StrictAdapter::proof_size_bound(std::size_t n,
                                            std::size_t state_bits) const {
  return inner_.proof_size_bound(n, state_bits) + state_bits + 96;
}

}  // namespace pls::core
