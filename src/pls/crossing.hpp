// The crossing engine: the paper's lower-bound machinery, made executable.
//
// The cut-and-splice argument: take two legal labeled instances over the same
// graph and a bipartition (left, right) of the nodes; build the hybrid
// configuration that copies states (and certificates) from instance A on the
// left and from instance B on the right.  If
//   (1) the hybrid configuration is illegal, and
//   (2) at a bit budget b, the certificates of every node incident to the cut
//       agree between A and B on their first b bits (and, in extended
//       visibility, the cut nodes' states agree),
// then every node's b-bit view in the hybrid equals its view in a legal
// instance, where it must accept — so *any* verifier limited to b-bit
// certificates accepts an illegal instance: it is fooled.  Pigeonhole over a
// large instance family forces (2) whenever 2^(b · |boundary|) is smaller
// than the number of pairwise-spliceable instances, which yields the Ω(log n)
// lower bounds for spanning tree and leader, and Ω(s) for agreement.
//
// probe_pair checks (1) and (2) exactly; sweep_mask counts fooled pairs as a
// function of b; distinct_boundary_signatures reports how many distinct
// boundary certificate tuples the scheme actually uses — the log of which is
// the certificate bits the scheme provably needs at the boundary.
#pragma once

#include <cstddef>
#include <vector>

#include "pls/engine.hpp"

namespace pls::core {

struct LabeledInstance {
  local::Configuration cfg;
  Labeling lab;
};

/// A family of legal labeled instances over one common graph, plus the
/// bipartition used for splicing.
struct CrossingFamily {
  std::vector<LabeledInstance> instances;
  std::vector<bool> left;  ///< size n
};

/// Marks every configuration with the scheme's prover.  All configurations
/// must be legal and share the same graph.
CrossingFamily make_family(const Scheme& scheme,
                           std::vector<local::Configuration> configs,
                           std::vector<bool> left);

/// Nodes incident to at least one cut edge (edges with endpoints on both
/// sides of `left`).
std::vector<graph::NodeIndex> boundary_nodes(const graph::Graph& g,
                                             const std::vector<bool>& left);

struct PairProbe {
  bool spliced_illegal = false;
  /// All nodes' b-bit views in the hybrid equal their views in their origin
  /// instance (the precondition for the fooling argument).
  bool views_identical = false;
  /// What the *actual* (full-width) verifier does on the hybrid certificates;
  /// for a sound scheme this is >= 1 whenever the splice is illegal.
  std::size_t rejections_full = 0;

  bool fooled() const noexcept { return spliced_illegal && views_identical; }
};

/// Splices left(A=ia) with right(B=ib) under a b-bit certificate mask.
PairProbe probe_pair(const Scheme& scheme, const CrossingFamily& family,
                     std::size_t ia, std::size_t ib, std::size_t mask_bits);

struct SweepRow {
  std::size_t mask_bits = 0;
  std::size_t pairs_tested = 0;
  std::size_t illegal_pairs = 0;  ///< splice produced an illegal configuration
  std::size_t fooled_pairs = 0;   ///< illegal and views identical at this mask
};

/// Probes all unordered instance pairs (capped at `max_pairs`).
SweepRow sweep_mask(const Scheme& scheme, const CrossingFamily& family,
                    std::size_t mask_bits, std::size_t max_pairs = 10000);

/// Number of distinct boundary certificate tuples across the family at the
/// given mask.  ceil(log2(.)) of this is the boundary information the scheme
/// genuinely transmits.
std::size_t distinct_boundary_signatures(const CrossingFamily& family,
                                         std::size_t mask_bits);

}  // namespace pls::core
