// Verification engine: runs a scheme's decoder over a configuration.
//
// The engine materializes, for every node, exactly the view the visibility
// mode allows (local/views.hpp) and evaluates the verifier once per node —
// i.e., it simulates the single verification round of the LOCAL model.
// The radius-t generalization (multi-round verification over balls) lives in
// radius/engine_t.hpp and shares the per-node routine below.
#pragma once

#include <limits>
#include <vector>

#include "local/config.hpp"
#include "pls/scheme.hpp"

namespace pls::core {

class Verdict {
 public:
  Verdict() = default;
  explicit Verdict(std::vector<bool> accept_flags)
      : accept_(std::move(accept_flags)) {}

  /// Per-node accept flags.
  const std::vector<bool>& accept() const noexcept { return accept_; }

  /// Mutation goes through the class so the cached count can't go stale.
  void set_accept(graph::NodeIndex v, bool a) {
    accept_.at(v) = a;
    rejections_ = kNotCounted;
  }

  /// Number of rejecting nodes.  Counted once and cached; the adversary's
  /// hill-climb loop calls this once per candidate labeling, so the scan must
  /// not repeat in `all_accept()` / `rejecting_nodes()`.
  std::size_t rejections() const noexcept {
    if (rejections_ == kNotCounted) {
      std::size_t k = 0;
      for (const bool a : accept_)
        if (!a) ++k;
      rejections_ = k;
    }
    return rejections_;
  }

  bool all_accept() const noexcept { return rejections() == 0; }

  /// Fraction of nodes rejecting, in [0, 1] (0 on an empty verdict).  The
  /// telemetry scalar error-sensitive schemes make meaningful: it tracks the
  /// configuration's distance from the language (obs/density.hpp).
  double rejection_density() const noexcept {
    return accept_.empty() ? 0.0
                           : static_cast<double>(rejections()) /
                                 static_cast<double>(accept_.size());
  }

  std::vector<graph::NodeIndex> rejecting_nodes() const {
    std::vector<graph::NodeIndex> out;
    out.reserve(rejections());
    for (graph::NodeIndex v = 0; v < accept_.size(); ++v)
      if (!accept_[v]) out.push_back(v);
    return out;
  }

  /// Per-node rejection mask (the complement of `accept`).
  std::vector<bool> rejected() const {
    std::vector<bool> out(accept_.size());
    for (std::size_t v = 0; v < accept_.size(); ++v) out[v] = !accept_[v];
    return out;
  }

 private:
  static constexpr std::size_t kNotCounted =
      std::numeric_limits<std::size_t>::max();
  std::vector<bool> accept_;
  mutable std::size_t rejections_ = kNotCounted;
};

/// Runs the verifier at every node with the given certificates.
Verdict run_verifier(const Scheme& scheme, const local::Configuration& cfg,
                     const Labeling& labeling);

/// Completeness check: marks cfg (must be legal) and verifies all-accept.
bool completeness_holds(const Scheme& scheme, const local::Configuration& cfg);

/// Message-bits accounting for the verification round: every edge carries
/// each endpoint's certificate (plus state/id in Extended mode).
std::size_t verification_round_bits(const Scheme& scheme,
                                    const local::Configuration& cfg,
                                    const Labeling& labeling);

namespace detail {

/// One node's single-round verdict.  `scratch` is caller-owned so sweeps
/// reuse one allocation; the t-round engine calls this for plain (1-round)
/// schemes, which is what makes run_verifier_t(_, _, _, 1) bit-for-bit equal
/// to run_verifier.  Safe to call concurrently for different nodes as long
/// as each caller owns its `scratch` — the parallel VerificationSession
/// (radius/session.hpp) relies on this, so don't add shared mutable state.
bool verify_one_round_at(const Scheme& scheme, const local::Configuration& cfg,
                         const Labeling& labeling, graph::NodeIndex v,
                         std::vector<local::NeighborView>& scratch);

/// Bits one node contributes to a message (certificate, plus state and id
/// under Extended visibility).
std::size_t node_payload_bits(const Scheme& scheme,
                              const local::Configuration& cfg,
                              const Labeling& labeling, graph::NodeIndex v);

}  // namespace detail

}  // namespace pls::core
