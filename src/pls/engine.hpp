// Verification engine: runs a scheme's decoder over a configuration.
//
// The engine materializes, for every node, exactly the view the visibility
// mode allows (local/views.hpp) and evaluates the verifier once per node —
// i.e., it simulates the single verification round of the LOCAL model.
#pragma once

#include <vector>

#include "local/config.hpp"
#include "pls/scheme.hpp"

namespace pls::core {

struct Verdict {
  std::vector<bool> accept;  ///< per node

  std::size_t rejections() const noexcept {
    std::size_t k = 0;
    for (const bool a : accept)
      if (!a) ++k;
    return k;
  }
  bool all_accept() const noexcept { return rejections() == 0; }

  std::vector<graph::NodeIndex> rejecting_nodes() const {
    std::vector<graph::NodeIndex> out;
    for (graph::NodeIndex v = 0; v < accept.size(); ++v)
      if (!accept[v]) out.push_back(v);
    return out;
  }

  /// Per-node rejection mask (the complement of `accept`).
  std::vector<bool> rejected() const {
    std::vector<bool> out(accept.size());
    for (std::size_t v = 0; v < accept.size(); ++v) out[v] = !accept[v];
    return out;
  }
};

/// Runs the verifier at every node with the given certificates.
Verdict run_verifier(const Scheme& scheme, const local::Configuration& cfg,
                     const Labeling& labeling);

/// Completeness check: marks cfg (must be legal) and verifies all-accept.
bool completeness_holds(const Scheme& scheme, const local::Configuration& cfg);

/// Message-bits accounting for the verification round: every edge carries
/// each endpoint's certificate (plus state/id in Extended mode).
std::size_t verification_round_bits(const Scheme& scheme,
                                    const local::Configuration& cfg,
                                    const Labeling& labeling);

}  // namespace pls::core
