// Scheme composition: certifying conjunctions.
//
// Proof labeling schemes compose: if L1 and L2 have schemes of proof size
// p1(n) and p2(n) over the same state encoding, then L1 ∧ L2 has a scheme of
// size p1 + p2 + O(1) — concatenate the certificates (with a length prefix so
// the verifier can split them) and run both verifiers.  Completeness is
// immediate; soundness holds because a configuration outside the conjunction
// is outside one of the conjuncts, whose verifier then rejects somewhere for
// *any* certificate half.  The paper uses this implicitly whenever a scheme
// layers several certified structures (e.g. MST = log n layered fragment
// certifications + a spanning-tree layer).
#pragma once

#include <memory>
#include <string>

#include "pls/scheme.hpp"

namespace pls::core {

/// The intersection of two languages over the same state encoding.
class ConjunctionLanguage final : public Language {
 public:
  /// Both operands must outlive the conjunction.  `sample_legal` draws from
  /// `witness` (the operand whose witnesses are expected to satisfy both;
  /// callers pick languages whose witnesses coincide, e.g. stl ∧ acyclic-ish
  /// pairs) and *checks* membership in both, throwing if the sample fails.
  ConjunctionLanguage(const Language& a, const Language& b,
                      const Language& witness);

  std::string_view name() const noexcept override { return name_; }
  bool contains(const local::Configuration& cfg) const override;
  local::Configuration sample_legal(std::shared_ptr<const graph::Graph> g,
                                    util::Rng& rng) const override;

  const Language& first() const noexcept { return a_; }
  const Language& second() const noexcept { return b_; }

 private:
  const Language& a_;
  const Language& b_;
  const Language& witness_;
  std::string name_;
};

/// Certificate = [varint |c1|][c1][c2]; verify = both verifiers accept on
/// their half.  Visibility is the weaker (extended if either needs it).
class ConjunctionScheme final : public Scheme {
 public:
  ConjunctionScheme(const ConjunctionLanguage& language, const Scheme& s1,
                    const Scheme& s2);

  std::string_view name() const noexcept override { return name_; }
  const Language& language() const noexcept override { return language_; }
  local::Visibility visibility() const noexcept override {
    return visibility_;
  }

  Labeling mark(const local::Configuration& cfg) const override;
  bool verify(const local::VerifierContext& ctx) const override;
  std::size_t proof_size_bound(std::size_t n,
                               std::size_t state_bits) const override;

 private:
  const ConjunctionLanguage& language_;
  const Scheme& s1_;
  const Scheme& s2_;
  local::Visibility visibility_;
  std::string name_;
};

}  // namespace pls::core
