#include "pls/adversary.hpp"

#include <algorithm>
#include <unordered_map>

#include "radius/batch.hpp"
#include "util/assert.hpp"

namespace pls::core {

namespace {

/// Radius the attack runs the engine at: never below the scheme's own
/// requirement, so ball schemes always go through the t-round engine.
unsigned effective_radius(const Scheme& scheme, unsigned requested) {
  const auto* ball = dynamic_cast<const radius::BallScheme*>(&scheme);
  const unsigned need = ball != nullptr ? ball->radius() : 1;
  return std::max(std::max(requested, 1u), need);
}

Labeling uniform_labeling(std::size_t n, const Certificate& c) {
  Labeling lab;
  lab.certs.assign(n, c);
  return lab;
}

Labeling random_labeling(std::size_t n, std::size_t max_bits,
                         util::Rng& rng) {
  Labeling lab;
  lab.certs.reserve(n);
  for (std::size_t v = 0; v < n; ++v) {
    const std::size_t nbits = rng.below(max_bits + 1);
    lab.certs.push_back(local::random_state(nbits, rng));
  }
  return lab;
}

}  // namespace

AttackReport attack(const Scheme& scheme, const local::Configuration& cfg,
                    util::Rng& rng, const AttackOptions& options) {
  const std::size_t n = cfg.n();
  AttackReport report;
  report.min_rejections = n + 1;  // sentinel: worse than any real verdict

  // One batch verifier — and therefore ONE geometry atlas — for the whole
  // attack: thousands of candidate labelings are verified against the same
  // (scheme, cfg, t) triple, so ball geometry is built once per center and
  // each candidate pays only its own parse + sweep.  Sequential
  // (threads = 1): attack results must not depend on the host's core count,
  // and the hill-climb is adaptive (candidate i+1 depends on verdict i), so
  // there is no batch to pipeline.
  const unsigned t = effective_radius(scheme, options.rounds);
  radius::BatchOptions batch_options;
  batch_options.threads = 1;
  radius::BatchVerifier verifier(scheme, cfg, t, batch_options);
  auto consider = [&](const Labeling& lab, const std::string& strategy) {
    const Verdict verdict = verifier.run_one(lab);
    const std::size_t rej = verdict.rejections();
    if (rej < report.min_rejections) {
      report.min_rejections = rej;
      report.best_strategy = strategy;
      report.best_labeling = lab;
    }
  };

  // 1. Trivial certificates.
  consider(uniform_labeling(n, Certificate{}), "empty");
  {
    util::BitWriter w;
    const std::size_t bound =
        std::min(options.max_cert_bits,
                 scheme.proof_size_bound(n, cfg.max_state_bits()));
    for (std::size_t i = 0; i < bound; ++i) w.write_bit(false);
    consider(uniform_labeling(n, Certificate::from_writer(std::move(w))),
             "zeros");
  }

  // 2. State-derived certificates: copy each node's own state (fools schemes
  // whose certificates restate local data), and the most common state
  // uniformly (fools agreement-style schemes everywhere except the
  // minority).
  {
    Labeling copy_states;
    copy_states.certs.reserve(n);
    for (graph::NodeIndex v = 0; v < n; ++v)
      copy_states.certs.push_back(cfg.state(v));
    consider(copy_states, "copy-states");

    std::unordered_map<Certificate, std::size_t, util::BitStringHash> counts;
    for (graph::NodeIndex v = 0; v < n; ++v) ++counts[cfg.state(v)];
    const auto majority = std::max_element(
        counts.begin(), counts.end(),
        [](const auto& a, const auto& b) { return a.second < b.second; });
    consider(uniform_labeling(n, majority->first), "majority-state");
  }

  // 3. Honest splice: the marker's certificates for legal configurations on
  // the same graph.  This is the strongest generic attack — it feeds the
  // verifier locally-consistent data.  Some languages are not constructible
  // on some graphs (e.g. a network property on a no-instance); the strategy
  // is simply unavailable then.
  bool splice_available = true;
  for (std::size_t s = 0; s < options.splice_sources && splice_available;
       ++s) {
    try {
      const local::Configuration legal =
          scheme.language().sample_legal(cfg.graph_ptr(), rng);
      consider(scheme.mark(legal), "honest-splice");
    } catch (const std::logic_error&) {
      splice_available = false;
    }
  }

  // 4. Scheme-aware attacks: labelings the scheme itself declares as its
  // structural failure modes (for spread schemes, the splice suite — two
  // regions voting different prefixes, rotated residues, crossed chunks).
  if (const auto* ball = dynamic_cast<const radius::BallScheme*>(&scheme)) {
    for (radius::SchemeAttack& attack : ball->adversarial_labelings(cfg, rng))
      consider(attack.labeling, attack.name);
  }

  // 5. Random certificates.
  for (std::size_t trial = 0; trial < options.random_trials; ++trial)
    consider(random_labeling(n, options.max_cert_bits, rng), "random");

  // 6. Hill climbing from the best labeling found so far: replace one node's
  // certificate with a candidate drawn from (a) another node's certificate,
  // (b) a fresh legal marking, or (c) random bits; keep the move if the
  // rejection count does not increase.  Each step is a single-certificate
  // mutation of the previously verified candidate — exactly the delta
  // path's workload — so after one full seeding run the climb goes through
  // run_delta: only the mutated node is re-parsed and only the centers
  // whose ball reaches it are re-swept, with bit-identical verdicts.
  {
    Labeling current = report.best_labeling;
    std::size_t current_rej = report.min_rejections;
    Labeling donor;
    if (splice_available) {
      donor = scheme.mark(scheme.language().sample_legal(cfg.graph_ptr(), rng));
    } else {
      donor = random_labeling(n, options.max_cert_bits, rng);
    }
    // Seed the delta stream: make `current` the verifier's resident
    // labeling.  Deterministic engine, so re-verifying the best labeling
    // reproduces its recorded rejection count.  Skipped when the climb
    // below would not run at all — the seed exists only for the deltas.
    if (options.hill_climb_steps > 0 && current_rej > 0) {
      const std::size_t seeded_rej = verifier.run_one(current).rejections();
      PLS_ASSERT(seeded_rej == current_rej);
    }
    // Mutations of `current` not yet reflected in the resident labeling: a
    // rejected move's node stays touched, because reverting its certificate
    // is itself a mutation relative to the verified candidate.
    radius::LabelingDelta delta;
    for (std::size_t step = 0;
         step < options.hill_climb_steps && current_rej > 0; ++step) {
      const auto v = static_cast<graph::NodeIndex>(rng.below(n));
      const Certificate saved = current.certs[v];
      switch (rng.below(3)) {
        case 0:
          current.certs[v] = current.certs[rng.below(n)];
          break;
        case 1:
          current.certs[v] = donor.certs[v];
          break;
        default:
          current.certs[v] =
              local::random_state(rng.below(options.max_cert_bits + 1), rng);
          break;
      }
      delta.touched.push_back(v);
      const std::size_t rej = verifier.run_delta(current, delta).rejections();
      if (rej <= current_rej) {
        delta.touched.clear();
        current_rej = rej;
        if (rej < report.min_rejections) {
          report.min_rejections = rej;
          report.best_strategy = "hill-climb";
          report.best_labeling = current;
        }
      } else {
        current.certs[v] = saved;
        delta.touched.assign(1, v);
      }
    }
  }

  PLS_ASSERT(report.min_rejections <= n);
  return report;
}

std::size_t exhaustive_min_rejections(const Scheme& scheme,
                                      const local::Configuration& cfg,
                                      std::size_t max_bits) {
  PLS_REQUIRE(max_bits <= 8);
  const unsigned t = effective_radius(scheme, 1);
  radius::BatchOptions batch_options;
  batch_options.threads = 1;
  radius::BatchVerifier verifier(scheme, cfg, t, batch_options);
  // All bit strings of length 0..max_bits.
  std::vector<Certificate> alphabet;
  for (std::size_t len = 0; len <= max_bits; ++len)
    for (std::uint64_t value = 0; value < (std::uint64_t{1} << len); ++value) {
      util::BitWriter w;
      w.write_uint(value, static_cast<unsigned>(len));
      alphabet.push_back(Certificate::from_writer(std::move(w)));
    }

  const std::size_t n = cfg.n();
  PLS_REQUIRE(n <= 8);
  std::size_t best = n;
  std::vector<std::size_t> pick(n, 0);
  Labeling lab;
  lab.certs.assign(n, Certificate{});
  while (true) {
    for (std::size_t v = 0; v < n; ++v) lab.certs[v] = alphabet[pick[v]];
    best = std::min(best, verifier.run_one(lab).rejections());
    if (best == 0) return 0;
    // Odometer increment.
    std::size_t v = 0;
    while (v < n && ++pick[v] == alphabet.size()) {
      pick[v] = 0;
      ++v;
    }
    if (v == n) break;
  }
  return best;
}

}  // namespace pls::core
