#include "pls/engine.hpp"

#include "util/assert.hpp"

namespace pls::core {

namespace detail {

bool verify_one_round_at(const Scheme& scheme, const local::Configuration& cfg,
                         const Labeling& labeling, graph::NodeIndex v,
                         std::vector<local::NeighborView>& scratch) {
  const graph::Graph& g = cfg.graph();
  const local::Visibility mode = scheme.visibility();
  scratch.clear();
  for (const graph::AdjEntry& a : g.adjacency(v)) {
    local::NeighborView nv;
    nv.cert = &labeling.certs[a.to];
    nv.edge_weight = g.weight(a.edge);
    if (mode == local::Visibility::kExtended) {
      nv.state = &cfg.state(a.to);
      nv.id = g.id(a.to);
      nv.id_visible = true;
    }
    scratch.push_back(nv);
  }
  const local::VerifierContext ctx(g.id(v), cfg.state(v), labeling.certs[v],
                                   scratch, mode, g.n());
  return scheme.verify(ctx);
}

std::size_t node_payload_bits(const Scheme& scheme,
                              const local::Configuration& cfg,
                              const Labeling& labeling, graph::NodeIndex v) {
  std::size_t bits = labeling.certs[v].bit_size();
  if (scheme.visibility() == local::Visibility::kExtended)
    bits += cfg.state(v).bit_size() + 64;  // state + id
  return bits;
}

}  // namespace detail

Verdict run_verifier(const Scheme& scheme, const local::Configuration& cfg,
                     const Labeling& labeling) {
  PLS_REQUIRE(labeling.size() == cfg.n());
  const graph::Graph& g = cfg.graph();

  std::vector<bool> accept(cfg.n());
  std::vector<local::NeighborView> scratch;
  for (graph::NodeIndex v = 0; v < g.n(); ++v)
    accept[v] = detail::verify_one_round_at(scheme, cfg, labeling, v, scratch);
  return Verdict(std::move(accept));
}

bool completeness_holds(const Scheme& scheme,
                        const local::Configuration& cfg) {
  PLS_REQUIRE(scheme.language().contains(cfg));
  const Labeling labeling = scheme.mark(cfg);
  return run_verifier(scheme, cfg, labeling).all_accept();
}

std::size_t verification_round_bits(const Scheme& scheme,
                                    const local::Configuration& cfg,
                                    const Labeling& labeling) {
  PLS_REQUIRE(labeling.size() == cfg.n());
  const graph::Graph& g = cfg.graph();
  std::size_t bits = 0;
  for (const graph::Edge& e : g.edges())
    for (const graph::NodeIndex v : {e.u, e.v})
      bits += detail::node_payload_bits(scheme, cfg, labeling, v);
  return bits;
}

}  // namespace pls::core
