// Proof labeling schemes: the prover/verifier pair (M, D).
//
// A scheme is correct for its language L when
//   * completeness: for every (G, states) in L, the marker's certificates
//     make the verifier accept at every node, and
//   * soundness: for every (G, states) not in L and *every* certificate
//     assignment, the verifier rejects at >= 1 node.
// The engine (engine.hpp) checks the first property directly and attacks the
// second with the adversary suite (adversary.hpp).
//
// Contract notes:
//   * `mark` has the precondition language().contains(cfg) — the prover is an
//     oracle that only ever sees legal configurations.
//   * `verify` must be total: certificates come from an adversary, so any
//     parse failure or malformed field is a *reject*, never a throw/UB.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "local/views.hpp"
#include "pls/certificate.hpp"
#include "pls/language.hpp"

namespace pls::core {

class Scheme {
 public:
  virtual ~Scheme() = default;

  Scheme() = default;
  Scheme(const Scheme&) = delete;
  Scheme& operator=(const Scheme&) = delete;

  virtual std::string_view name() const noexcept = 0;

  virtual const Language& language() const noexcept = 0;

  /// What the verification round carries (see local/views.hpp).
  virtual local::Visibility visibility() const noexcept {
    return local::Visibility::kExtended;
  }

  /// The marker (prover). Precondition: language().contains(cfg).
  virtual Labeling mark(const local::Configuration& cfg) const = 0;

  /// The decoder (verifier), run independently at every node.
  virtual bool verify(const local::VerifierContext& ctx) const = 0;

  /// Proof-size upper bound for n-node networks with `state_bits`-bit states
  /// (the theory column of the experiment tables).
  virtual std::size_t proof_size_bound(std::size_t n,
                                       std::size_t state_bits) const = 0;
};

/// One candidate region decomposition of a configuration's nodes: a region
/// label per node (labels are opaque; equal label = same region).  Nodes that
/// share a region are expected to share a long common prefix of their
/// certificates — the consumer (radius::FragmentSpreadScheme) refines every
/// candidate into connected components and measures the actual prefixes, so
/// candidates are hints, never trusted.
using RegionAssignment = std::vector<std::uint32_t>;

/// Optional side-interface for schemes whose certificates have a known
/// region structure (MST's Borůvka fragments: all members of a phase-p
/// fragment share the fragment's name and chosen-edge records for every
/// phase >= p).  A scheme implements this alongside Scheme; transforms that
/// shard shared certificate content discover it via dynamic_cast and pick
/// the best candidate.  Schemes without it get their regions computed
/// mechanically from certificate prefixes.
class RegionProvider {
 public:
  virtual ~RegionProvider() = default;

  /// Candidate decompositions, *fine to coarse and laminar*: each
  /// candidate's regions must refine the next candidate's (Borůvka
  /// fragments only merge across phases, which is exactly this shape).
  /// The consumer's bottom-up DP (radius::FragmentSpreadScheme::mark)
  /// relies on that ordering to map each level's regions to their parents
  /// in the next.  Precondition: language().contains(cfg) — region
  /// structure is marker-side knowledge.
  virtual std::vector<RegionAssignment> region_candidates(
      const local::Configuration& cfg) const = 0;
};

}  // namespace pls::core
