// Proof labeling schemes: the prover/verifier pair (M, D).
//
// A scheme is correct for its language L when
//   * completeness: for every (G, states) in L, the marker's certificates
//     make the verifier accept at every node, and
//   * soundness: for every (G, states) not in L and *every* certificate
//     assignment, the verifier rejects at >= 1 node.
// The engine (engine.hpp) checks the first property directly and attacks the
// second with the adversary suite (adversary.hpp).
//
// Contract notes:
//   * `mark` has the precondition language().contains(cfg) — the prover is an
//     oracle that only ever sees legal configurations.
//   * `verify` must be total: certificates come from an adversary, so any
//     parse failure or malformed field is a *reject*, never a throw/UB.
#pragma once

#include <string_view>

#include "local/views.hpp"
#include "pls/certificate.hpp"
#include "pls/language.hpp"

namespace pls::core {

class Scheme {
 public:
  virtual ~Scheme() = default;

  Scheme() = default;
  Scheme(const Scheme&) = delete;
  Scheme& operator=(const Scheme&) = delete;

  virtual std::string_view name() const noexcept = 0;

  virtual const Language& language() const noexcept = 0;

  /// What the verification round carries (see local/views.hpp).
  virtual local::Visibility visibility() const noexcept {
    return local::Visibility::kExtended;
  }

  /// The marker (prover). Precondition: language().contains(cfg).
  virtual Labeling mark(const local::Configuration& cfg) const = 0;

  /// The decoder (verifier), run independently at every node.
  virtual bool verify(const local::VerifierContext& ctx) const = 0;

  /// Proof-size upper bound for n-node networks with `state_bits`-bit states
  /// (the theory column of the experiment tables).
  virtual std::size_t proof_size_bound(std::size_t n,
                                       std::size_t state_bits) const = 0;
};

}  // namespace pls::core
