// The universal proof labeling scheme.
//
// Theorem (paper, Section "every decidable family is certifiable"): every
// Turing-decidable distributed language admits a proof labeling scheme with
// certificates of O(n² + n·s) bits — the certificate is a full description
// of the configuration (id table, state table, adjacency matrix with
// weights) plus the node's own position in that description.  The verifier
// checks that the description is consistent with what it sees locally, that
// all neighbors carry the *same* description, and that the described
// configuration satisfies the language (running the centralized decider).
//
// Works in the strict visibility mode (neighbor certificates only): a node's
// position claim is verified by the node itself, so a consistent, globally
// accepted description is necessarily truthful.
//
// For weighted languages the weight table makes the encoding sound only when
// edge weights are pairwise distinct (a node can only check the *multiset* of
// its incident weights; distinctness pins the assignment down).  This matches
// the MST setting.
#pragma once

#include <string>

#include "pls/scheme.hpp"

namespace pls::core {

class UniversalScheme final : public Scheme {
 public:
  /// The inner language must outlive the scheme.
  explicit UniversalScheme(const Language& inner);

  std::string_view name() const noexcept override { return name_; }
  const Language& language() const noexcept override { return inner_; }
  local::Visibility visibility() const noexcept override {
    return local::Visibility::kCertificatesOnly;
  }

  Labeling mark(const local::Configuration& cfg) const override;
  bool verify(const local::VerifierContext& ctx) const override;
  std::size_t proof_size_bound(std::size_t n,
                               std::size_t state_bits) const override;

 private:
  const Language& inner_;
  std::string name_;
};

}  // namespace pls::core
