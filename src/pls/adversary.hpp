// Adversarial provers.
//
// Soundness quantifies over *every* certificate assignment, which no test can
// enumerate in general.  This suite attacks a scheme on an illegal
// configuration from several directions and reports the smallest rejection
// count any attack achieved:
//
//   * trivial certificates (empty / all-zeros at the scheme's size bound),
//   * honest-splice: certificates copied from the marker's output on *legal*
//     configurations over the same graph (the paper's crossing attack),
//   * random certificates, and
//   * hill-climbing: local search over per-node certificate replacements that
//     actively minimizes the number of rejecting nodes.
//
// For tiny instances, `exhaustive_min_rejections` enumerates every
// certificate assignment up to a bit budget — real soundness, brute-forced.
#pragma once

#include <cstddef>
#include <string>

#include "pls/engine.hpp"
#include "util/rng.hpp"

namespace pls::core {

struct AttackOptions {
  std::size_t random_trials = 8;
  std::size_t splice_sources = 4;    ///< legal instances to copy labels from
  std::size_t hill_climb_steps = 400;
  std::size_t max_cert_bits = 128;   ///< random certificate length cap
  /// Verification radius the suite attacks at (radius/engine_t.hpp).  The
  /// effective radius is max(rounds, scheme's declared radius), so ball
  /// schemes are always attacked through the t-round engine at their own
  /// radius.  For plain 1-round schemes the setting is a no-op: their
  /// decoders read only layer 1 and run_verifier_t evaluates them through
  /// the shared 1-round routine whatever t is.
  unsigned rounds = 1;
};

struct AttackReport {
  std::size_t min_rejections = 0;   ///< best (for the adversary) outcome
  std::string best_strategy;        ///< which attack achieved it
  Labeling best_labeling;           ///< the witnessing certificates
};

/// Attacks `cfg` (need not be illegal; on legal configs this measures how
/// robust acceptance is).  Returns the minimum rejection count achieved.
AttackReport attack(const Scheme& scheme, const local::Configuration& cfg,
                    util::Rng& rng, const AttackOptions& options = {});

/// Exact minimum rejection count over *all* labelings where every certificate
/// has at most `max_bits` bits.  Cost is (2^(max_bits+1)-1)^n verdicts; keep
/// n and max_bits tiny.
std::size_t exhaustive_min_rejections(const Scheme& scheme,
                                      const local::Configuration& cfg,
                                      std::size_t max_bits);

}  // namespace pls::core
