#include "selfstab/alarm.hpp"

#include <memory>

#include "util/assert.hpp"
#include "util/bitio.hpp"

namespace pls::selfstab {

namespace {

// Aggregation state: [1 bit alarm][varint source id if alarm].
struct Knowledge {
  bool alarm = false;
  graph::RawId source = 0;
};

local::State encode(const Knowledge& k) {
  util::BitWriter w;
  w.write_bit(k.alarm);
  if (k.alarm) w.write_varint(k.source);
  return local::State::from_writer(std::move(w));
}

std::optional<Knowledge> decode(const local::State& s) {
  util::BitReader r = s.reader();
  Knowledge k;
  const auto alarm = r.read_bit();
  if (!alarm) return std::nullopt;
  k.alarm = *alarm;
  if (k.alarm) {
    const auto src = r.read_varint();
    if (!src) return std::nullopt;
    k.source = *src;
  }
  if (!r.exhausted()) return std::nullopt;
  return k;
}

}  // namespace

AlarmResult converge_alarm(const graph::Graph& g,
                           const std::vector<bool>& rejected) {
  PLS_REQUIRE(rejected.size() == g.n());

  std::vector<local::State> init;
  init.reserve(g.n());
  for (graph::NodeIndex v = 0; v < g.n(); ++v) {
    Knowledge k;
    if (rejected[v]) {
      k.alarm = true;
      k.source = g.id(v);
    }
    init.push_back(encode(k));
  }

  const local::StepFn step = [](graph::RawId /*me*/, const local::State& own,
                                std::span<const local::NeighborState> nbs) {
    auto mine = decode(own);
    PLS_ASSERT(mine.has_value());
    Knowledge best = *mine;
    for (const local::NeighborState& nb : nbs) {
      const auto theirs = decode(*nb.state);
      if (!theirs || !theirs->alarm) continue;
      if (!best.alarm || theirs->source < best.source) {
        best.alarm = true;
        best.source = theirs->source;
      }
    }
    return encode(best);
  };

  auto shared = std::make_shared<const graph::Graph>(g);
  local::SyncNetwork net(shared, std::move(init));
  AlarmResult result;
  for (std::size_t round = 0; round < g.n() + 1; ++round) {
    const local::RoundStats stats = net.step(step);
    ++result.rounds;
    result.message_bits += stats.message_bits;
    if (stats.changed_nodes == 0) break;
  }

  // Every node now holds the same knowledge (connected graph).
  const auto final_knowledge = decode(net.states()[0]);
  PLS_ASSERT(final_knowledge.has_value());
  result.alarm = final_knowledge->alarm;
  result.source_id = final_knowledge->source;
  return result;
}

}  // namespace pls::selfstab
