#include "selfstab/spanning_tree_ss.hpp"

#include <algorithm>

#include "graph/algorithms.hpp"
#include "util/assert.hpp"
#include "util/bitio.hpp"

namespace pls::selfstab {

local::State encode_tree_state(const TreeState& s) {
  util::BitWriter w;
  w.write_varint(s.root);
  w.write_varint(s.dist);
  w.write_varint(s.parent);
  return local::State::from_writer(std::move(w));
}

std::optional<TreeState> decode_tree_state(const local::State& s) {
  util::BitReader r = s.reader();
  const auto root = r.read_varint();
  const auto dist = r.read_varint();
  const auto parent = r.read_varint();
  if (!root || !dist || !parent || !r.exhausted()) return std::nullopt;
  return TreeState{*root, *dist, *parent};
}

SpanningTreeProtocol::SpanningTreeProtocol(std::uint64_t dist_bound)
    : dist_bound_(dist_bound) {
  PLS_REQUIRE(dist_bound >= 1);
}

local::StepFn SpanningTreeProtocol::step() const {
  const std::uint64_t bound = dist_bound_;
  return [bound](graph::RawId me, const local::State& /*own*/,
                 std::span<const local::NeighborState> neighbors) {
    // Candidate: become my own root...
    TreeState best{me, 0, me};
    // ...or attach to the neighbor advertising the smallest (root, dist).
    for (const local::NeighborState& nb : neighbors) {
      const auto ns = decode_tree_state(*nb.state);
      if (!ns) continue;  // corrupted neighbor: ignore this round
      if (ns->dist + 1 > bound) continue;  // ghost-root flush
      const TreeState candidate{ns->root, ns->dist + 1, nb.id};
      if (candidate.root < best.root ||
          (candidate.root == best.root && candidate.dist < best.dist)) {
        best = candidate;
      }
    }
    return encode_tree_state(best);
  };
}

std::vector<local::State> SpanningTreeProtocol::legitimate(
    const graph::Graph& g) const {
  const auto root = g.find_by_id(g.min_id());
  PLS_REQUIRE(root.has_value());
  const graph::BfsResult tree = graph::bfs(g, *root);
  std::vector<local::State> states;
  states.reserve(g.n());
  for (graph::NodeIndex v = 0; v < g.n(); ++v) {
    // The BFS rule attaches to the minimum-id neighbor among those one hop
    // closer to the root (the rule's deterministic tie-break is "first
    // smallest (root, dist)" which scans neighbors in adjacency order; we
    // reproduce it so `legitimate` is exactly the protocol's fixed point).
    graph::NodeIndex parent = v;
    for (const graph::AdjEntry& a : g.adjacency(v)) {
      if (tree.dist[a.to] + 1 == tree.dist[v]) {
        if (parent == v) parent = a.to;
      }
    }
    TreeState s;
    s.root = g.min_id();
    s.dist = tree.dist[v];
    s.parent = v == *root ? g.id(v) : g.id(parent);
    states.push_back(encode_tree_state(s));
  }
  return states;
}

bool SpanningTreeProtocol::locally_ok(
    graph::RawId me, const local::State& own,
    std::span<const local::NeighborState> neighbors) {
  const auto s = decode_tree_state(own);
  if (!s) return false;
  // Root-id agreement with every neighbor.
  for (const local::NeighborState& nb : neighbors) {
    const auto ns = decode_tree_state(*nb.state);
    if (!ns || ns->root != s->root) return false;
  }
  if (s->dist == 0) return s->root == me && s->parent == me;
  for (const local::NeighborState& nb : neighbors) {
    if (nb.id != s->parent) continue;
    const auto ns = decode_tree_state(*nb.state);
    return ns && ns->dist + 1 == s->dist;
  }
  return false;  // parent is not a neighbor
}

std::vector<graph::NodeIndex> SpanningTreeProtocol::detectors(
    const graph::Graph& g, const std::vector<local::State>& states) {
  PLS_REQUIRE(states.size() == g.n());
  std::vector<graph::NodeIndex> out;
  std::vector<local::NeighborState> scratch;
  for (graph::NodeIndex v = 0; v < g.n(); ++v) {
    scratch.clear();
    for (const graph::AdjEntry& a : g.adjacency(v))
      scratch.push_back(
          local::NeighborState{g.id(a.to), g.weight(a.edge), &states[a.to]});
    if (!locally_ok(g.id(v), states[v], scratch)) out.push_back(v);
  }
  return out;
}

}  // namespace pls::selfstab
