// Alarm convergecast: from local rejection to a global, located alarm.
//
// A proof labeling scheme guarantees that *some* node rejects an illegal
// configuration; operationally, the system then needs the alarm to reach an
// operator or a recovery coordinator.  This module runs the standard
// O(diameter)-round aggregation: every node repeatedly merges what it knows
// (the minimum id of any rejecting node, and the count of distinct alarms is
// approximated by the OR) with its neighbors' knowledge, so after
// eccentricity-many rounds every node — in particular any designated sink —
// knows whether an alarm exists and where the smallest-id alarm came from.
#pragma once

#include "local/network.hpp"
#include "pls/engine.hpp"

namespace pls::selfstab {

struct AlarmResult {
  bool alarm = false;               ///< any node rejected
  graph::RawId source_id = 0;       ///< minimum id among rejecting nodes
  std::size_t rounds = 0;           ///< rounds until every node knew
  std::size_t message_bits = 0;
};

/// Floods the verdict of a verification round through the network until
/// every node knows (OR of alarms, min of sources).  `rejected` is the
/// per-node rejection mask from the verifier.
AlarmResult converge_alarm(const graph::Graph& g,
                           const std::vector<bool>& rejected);

}  // namespace pls::selfstab
