#include "selfstab/daemon.hpp"

#include "util/assert.hpp"

namespace pls::selfstab {

namespace {

/// What `step` would produce at v given the current global states.
local::State evaluate_rule(const graph::Graph& g,
                           const std::vector<local::State>& states,
                           const local::StepFn& step, graph::NodeIndex v,
                           std::vector<local::NeighborState>& scratch) {
  scratch.clear();
  for (const graph::AdjEntry& a : g.adjacency(v))
    scratch.push_back(
        local::NeighborState{g.id(a.to), g.weight(a.edge), &states[a.to]});
  return step(g.id(v), states[v], scratch);
}

}  // namespace

DaemonRun run_under_daemon(const graph::Graph& g,
                           std::vector<local::State>& states,
                           const local::StepFn& step, DaemonKind daemon,
                           util::Rng& rng, std::size_t max_steps) {
  PLS_REQUIRE(states.size() == g.n());
  DaemonRun run;
  std::vector<local::NeighborState> scratch;

  for (std::size_t s = 0; s < max_steps; ++s) {
    // Enabled nodes and their pending states (computed from the pre-step
    // configuration — daemon semantics fire rules against what the chosen
    // nodes currently see).
    std::vector<graph::NodeIndex> enabled;
    std::vector<local::State> pending(g.n());
    for (graph::NodeIndex v = 0; v < g.n(); ++v) {
      local::State next = evaluate_rule(g, states, step, v, scratch);
      if (next != states[v]) {
        enabled.push_back(v);
        pending[v] = std::move(next);
      }
    }
    if (enabled.empty()) {
      run.converged = true;
      return run;
    }
    ++run.steps;

    std::vector<graph::NodeIndex> chosen;
    switch (daemon) {
      case DaemonKind::kSynchronous:
        chosen = enabled;
        break;
      case DaemonKind::kCentral:
        chosen.push_back(enabled[rng.below(enabled.size())]);
        break;
      case DaemonKind::kDistributed:
        for (const graph::NodeIndex v : enabled)
          if (rng.chance(0.5)) chosen.push_back(v);
        if (chosen.empty())
          chosen.push_back(enabled[rng.below(enabled.size())]);
        break;
    }
    for (const graph::NodeIndex v : chosen) states[v] = pending[v];
    run.activations += chosen.size();
  }
  return run;  // converged stays false
}

}  // namespace pls::selfstab
