// Daemon-based (asynchronous) execution for self-stabilizing protocols.
//
// The self-stabilization literature models the scheduler as an adversarial
// *daemon* that decides which enabled nodes execute their rule at each step:
//
//   * kSynchronous — every enabled node fires (the SyncNetwork semantics),
//   * kCentral     — exactly one enabled node fires per step,
//   * kDistributed — a nonempty subset of the enabled nodes fires.
//
// A node is *enabled* when its rule would change its state.  A protocol is
// self-stabilizing when it reaches (and stays in) a legitimate configuration
// under every daemon; the tests drive the spanning-tree protocol through all
// three.  The daemon's choices here are randomized (seeded), which is the
// standard way to exercise adversarial schedules reproducibly.
#pragma once

#include "local/network.hpp"
#include "util/rng.hpp"

namespace pls::selfstab {

enum class DaemonKind { kSynchronous, kCentral, kDistributed };

struct DaemonRun {
  std::size_t steps = 0;        ///< daemon steps executed
  std::size_t activations = 0;  ///< total node activations across all steps
  bool converged = false;       ///< no node enabled at the end
};

/// Runs `step` under the given daemon until no node is enabled or
/// `max_steps` is exhausted.  `states` is updated in place.
DaemonRun run_under_daemon(const graph::Graph& g,
                           std::vector<local::State>& states,
                           const local::StepFn& step, DaemonKind daemon,
                           util::Rng& rng, std::size_t max_steps);

}  // namespace pls::selfstab
