#include "selfstab/mis_ss.hpp"

#include "util/assert.hpp"
#include "util/bitio.hpp"

namespace pls::selfstab {

namespace {

bool read_member(const local::State& s) {
  util::BitReader r = s.reader();
  const auto bit = r.read_bit();
  // A malformed state counts as "not a member"; the rule then rewrites it
  // into a canonical 1-bit state, which is the self-stabilizing repair.
  return bit.has_value() && r.exhausted() && *bit;
}

}  // namespace

local::StepFn MisProtocol::step() {
  return [](graph::RawId me, const local::State& own,
            std::span<const local::NeighborState> neighbors) {
    const bool member = read_member(own);
    bool smaller_member_neighbor = false;
    bool any_member_neighbor = false;
    for (const local::NeighborState& nb : neighbors) {
      if (!read_member(*nb.state)) continue;
      any_member_neighbor = true;
      if (nb.id < me) smaller_member_neighbor = true;
    }
    bool next = member;
    if (member && smaller_member_neighbor) next = false;  // defer to smaller
    if (!member && !any_member_neighbor) next = true;     // join
    return local::State::of_uint(next ? 1 : 0, 1);
  };
}

bool MisProtocol::locally_ok(const local::State& own,
                             std::span<const local::NeighborState> neighbors) {
  util::BitReader r = own.reader();
  const auto bit = r.read_bit();
  if (!bit || !r.exhausted()) return false;
  bool member_neighbor = false;
  for (const local::NeighborState& nb : neighbors) {
    util::BitReader nr = nb.state->reader();
    const auto theirs = nr.read_bit();
    if (!theirs || !nr.exhausted()) return false;
    if (*theirs) member_neighbor = true;
  }
  return *bit ? !member_neighbor : member_neighbor;
}

std::vector<graph::NodeIndex> MisProtocol::detectors(
    const graph::Graph& g, const std::vector<local::State>& states) {
  PLS_REQUIRE(states.size() == g.n());
  std::vector<graph::NodeIndex> out;
  std::vector<local::NeighborState> scratch;
  for (graph::NodeIndex v = 0; v < g.n(); ++v) {
    scratch.clear();
    for (const graph::AdjEntry& a : g.adjacency(v))
      scratch.push_back(
          local::NeighborState{g.id(a.to), g.weight(a.edge), &states[a.to]});
    if (!locally_ok(states[v], scratch)) out.push_back(v);
  }
  return out;
}

}  // namespace pls::selfstab
