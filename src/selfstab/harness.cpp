#include "selfstab/harness.hpp"

#include <memory>

#include "local/config.hpp"
#include "obs/density.hpp"
#include "pls/engine.hpp"
#include "util/assert.hpp"

namespace pls::selfstab {

namespace {

/// The protocol's own fallback candidate ("become my own root") — the state
/// a reset node restarts from.
local::State self_root_state(const graph::Graph& g, graph::NodeIndex v) {
  TreeState s;
  s.root = g.id(v);
  s.dist = 0;
  s.parent = g.id(v);
  return encode_tree_state(s);
}

}  // namespace

FaultExperiment run_fault_experiment(const graph::Graph& g, std::size_t k,
                                     util::Rng& rng,
                                     const FaultOptions& options) {
  PLS_REQUIRE(k <= g.n());
  const SpanningTreeProtocol protocol(g.n());

  std::vector<local::State> states = protocol.legitimate(g);

  // Inject k faults.
  const auto perm = rng.permutation(g.n());
  for (std::size_t i = 0; i < k; ++i) {
    const auto v = static_cast<graph::NodeIndex>(perm[i]);
    if (rng.chance(options.plausible_fault_probability)) {
      TreeState fake;
      fake.root = 1 + rng.below(g.max_id());
      fake.dist = rng.below(g.n() + 1);
      fake.parent = 1 + rng.below(g.max_id());
      states[v] = encode_tree_state(fake);
    } else {
      states[v] = local::random_state(states[v].bit_size(), rng);
    }
  }

  FaultExperiment result;
  result.corrupted = k;
  const std::vector<graph::NodeIndex> detect =
      SpanningTreeProtocol::detectors(g, states);
  result.detectors_immediate = detect.size();
  result.rejection_density =
      g.n() == 0 ? 0.0
                 : static_cast<double>(detect.size()) /
                       static_cast<double>(g.n());

  if (options.metrics != nullptr) {
    std::vector<bool> accept(g.n(), true);
    for (const graph::NodeIndex v : detect) accept[v] = false;
    const core::Verdict verdict(std::move(accept));
    if (options.density_regions > 1) {
      const std::vector<std::uint32_t> region_of =
          obs::bfs_partition(g, options.density_regions);
      obs::record_density(*options.metrics, verdict, region_of);
    } else {
      obs::record_density(*options.metrics, verdict);
    }
  }

  // Density-proportional recovery: the detector tells us not just THAT the
  // configuration broke but HOW MUCH of it did, so a low density justifies
  // restarting only where the damage is visible instead of everywhere.
  if (options.local_recovery_density >= 0.0 && !detect.empty()) {
    result.local_recovery =
        result.rejection_density <= options.local_recovery_density;
    if (result.local_recovery) {
      std::vector<bool> reset(g.n(), false);
      // The detectors' closed neighborhoods: where the damage is locally
      // visible.  Faults invisible even to their neighbors (if any) are left
      // to the protocol dynamics, which still run to quiescence below.
      for (const graph::NodeIndex v : detect) {
        reset[v] = true;
        for (const graph::AdjEntry& a : g.adjacency(v)) reset[a.to] = true;
      }
      for (graph::NodeIndex v = 0; v < g.n(); ++v) {
        if (!reset[v]) continue;
        states[v] = self_root_state(g, v);
        ++result.reset_nodes;
      }
    } else {
      for (graph::NodeIndex v = 0; v < g.n(); ++v)
        states[v] = self_root_state(g, v);
      result.reset_nodes = g.n();
    }
  }

  // Run the protocol to quiescence.  A copy of the graph is not needed: the
  // network shares it.
  auto shared = std::make_shared<const graph::Graph>(g);
  local::SyncNetwork net(shared, std::move(states));
  const std::size_t budget =
      options.max_rounds != 0 ? options.max_rounds : 4 * g.n() + 16;
  const std::size_t rounds = net.run_until_quiescent(protocol.step(), budget);
  result.converged = rounds <= budget;
  result.stabilization_rounds = rounds;

  const std::vector<local::State>& final_states = net.states();
  result.legitimate_after = final_states == protocol.legitimate(g);
  result.silent_after =
      SpanningTreeProtocol::detectors(g, final_states).empty();
  return result;
}

}  // namespace pls::selfstab
