#include "selfstab/harness.hpp"

#include <memory>

#include "local/config.hpp"
#include "util/assert.hpp"

namespace pls::selfstab {

FaultExperiment run_fault_experiment(const graph::Graph& g, std::size_t k,
                                     util::Rng& rng,
                                     const FaultOptions& options) {
  PLS_REQUIRE(k <= g.n());
  const SpanningTreeProtocol protocol(g.n());

  std::vector<local::State> states = protocol.legitimate(g);

  // Inject k faults.
  const auto perm = rng.permutation(g.n());
  for (std::size_t i = 0; i < k; ++i) {
    const auto v = static_cast<graph::NodeIndex>(perm[i]);
    if (rng.chance(options.plausible_fault_probability)) {
      TreeState fake;
      fake.root = 1 + rng.below(g.max_id());
      fake.dist = rng.below(g.n() + 1);
      fake.parent = 1 + rng.below(g.max_id());
      states[v] = encode_tree_state(fake);
    } else {
      states[v] = local::random_state(states[v].bit_size(), rng);
    }
  }

  FaultExperiment result;
  result.corrupted = k;
  result.detectors_immediate = SpanningTreeProtocol::detectors(g, states).size();

  // Run the protocol to quiescence.  A copy of the graph is not needed: the
  // network shares it.
  auto shared = std::make_shared<const graph::Graph>(g);
  local::SyncNetwork net(shared, std::move(states));
  const std::size_t budget =
      options.max_rounds != 0 ? options.max_rounds : 4 * g.n() + 16;
  const std::size_t rounds = net.run_until_quiescent(protocol.step(), budget);
  result.converged = rounds <= budget;
  result.stabilization_rounds = rounds;

  const std::vector<local::State>& final_states = net.states();
  result.legitimate_after = final_states == protocol.legitimate(g);
  result.silent_after =
      SpanningTreeProtocol::detectors(g, final_states).empty();
  return result;
}

}  // namespace pls::selfstab
