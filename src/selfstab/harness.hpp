// Fault-injection harness for the self-stabilization experiments (F4).
//
// Starting from the legitimate configuration, corrupt k node states with
// random (well-formed or garbage) values, then measure: how many nodes detect
// the fault in the very next verification round, how many rounds the
// protocol needs to re-stabilize, and whether the result is silent and
// legitimate again.
#pragma once

#include <cstddef>

#include "selfstab/spanning_tree_ss.hpp"
#include "util/rng.hpp"

namespace pls::obs {
class MetricsRegistry;
}  // namespace pls::obs

namespace pls::selfstab {

struct FaultExperiment {
  std::size_t corrupted = 0;            ///< k, the number of faulty nodes
  std::size_t detectors_immediate = 0;  ///< local checks failing at round 0
  std::size_t stabilization_rounds = 0; ///< rounds until no state changes
  bool converged = false;               ///< quiesced within the round budget
  bool legitimate_after = false;        ///< exact legitimate configuration
  bool silent_after = false;            ///< no detector fires at the end
  double rejection_density = 0.0;       ///< detectors / n at round 0
  bool local_recovery = false;          ///< density policy chose local reset
  std::size_t reset_nodes = 0;          ///< states re-seeded before the run
};

struct FaultOptions {
  std::size_t max_rounds = 0;  ///< 0 = use 4n + 16
  /// Probability that a corrupted state is a well-formed (root, dist, parent)
  /// triple with random values, rather than raw garbage bits.
  double plausible_fault_probability = 0.5;
  /// Proportional-recovery policy, driven by the round-0 rejection density
  /// (the gauge an error-sensitive detector provides): when the density is
  /// positive and at most this threshold, only the detectors' closed
  /// neighborhoods restart from self-root states before the protocol runs —
  /// work proportional to the damage; above it the whole network restarts
  /// (global reset).  Negative (default) disables recovery seeding: the raw
  /// protocol dynamics of the published F4 table.
  double local_recovery_density = -1.0;
  /// Telemetry sink for the round-0 detection verdict (the density.*
  /// histograms of obs::record_density, with per-region densities over
  /// `density_regions` BFS-Voronoi parts when nonzero).  Null records
  /// nothing.
  obs::MetricsRegistry* metrics = nullptr;
  std::size_t density_regions = 0;
};

FaultExperiment run_fault_experiment(const graph::Graph& g, std::size_t k,
                                     util::Rng& rng,
                                     const FaultOptions& options = {});

}  // namespace pls::selfstab
