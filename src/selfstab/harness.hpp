// Fault-injection harness for the self-stabilization experiments (F4).
//
// Starting from the legitimate configuration, corrupt k node states with
// random (well-formed or garbage) values, then measure: how many nodes detect
// the fault in the very next verification round, how many rounds the
// protocol needs to re-stabilize, and whether the result is silent and
// legitimate again.
#pragma once

#include <cstddef>

#include "selfstab/spanning_tree_ss.hpp"
#include "util/rng.hpp"

namespace pls::selfstab {

struct FaultExperiment {
  std::size_t corrupted = 0;            ///< k, the number of faulty nodes
  std::size_t detectors_immediate = 0;  ///< local checks failing at round 0
  std::size_t stabilization_rounds = 0; ///< rounds until no state changes
  bool converged = false;               ///< quiesced within the round budget
  bool legitimate_after = false;        ///< exact legitimate configuration
  bool silent_after = false;            ///< no detector fires at the end
};

struct FaultOptions {
  std::size_t max_rounds = 0;  ///< 0 = use 4n + 16
  /// Probability that a corrupted state is a well-formed (root, dist, parent)
  /// triple with random values, rather than raw garbage bits.
  double plausible_fault_probability = 0.5;
};

FaultExperiment run_fault_experiment(const graph::Graph& g, std::size_t k,
                                     util::Rng& rng,
                                     const FaultOptions& options = {});

}  // namespace pls::selfstab
