// Self-stabilizing maximal independent set with 0-bit PLS detection.
//
// A second instance of the paper's application pattern, at the opposite end
// of the certificate-size spectrum from the spanning tree: the MIS predicate
// is locally checkable, so its proof labeling scheme needs no certificates at
// all — the protocol's own states are everything the 1-round detector reads.
//
// Rule (classic id-based MIS):
//   join   — not a member and no neighbor member,
//   defer  — a member with a smaller-id member neighbor leaves.
// Under the central daemon this converges from any state (each activation
// either removes a conflict involving the locally-smallest id or fills an
// uncovered spot); the tests also drive it synchronously and distributed.
#pragma once

#include "local/network.hpp"

namespace pls::selfstab {

class MisProtocol {
 public:
  /// The self-stabilizing transition rule.
  static local::StepFn step();

  /// 1-round local detector == the 0-bit MIS verifier: true = consistent.
  static bool locally_ok(const local::State& own,
                         std::span<const local::NeighborState> neighbors);

  static std::vector<graph::NodeIndex> detectors(
      const graph::Graph& g, const std::vector<local::State>& states);
};

}  // namespace pls::selfstab
