// Silent self-stabilizing spanning tree with proof-labeling detection.
//
// The paper motivates proof labeling schemes as the detection layer of
// self-stabilizing protocols: a *silent* protocol writes both its output and
// the scheme's certificates into node states; in every round each node runs
// the 1-round verifier over its neighborhood and, on rejection, resets /
// recomputes its state locally.  Once the global state is legitimate, no
// state changes and every local check passes.
//
// The protocol here is the classic min-id BFS-tree construction: states are
// (root id, distance, parent id) — note this *is* the spanning-tree
// certificate of the stp scheme, so the local detector is exactly the
// proof-labeling verifier and detection latency after a transient fault is a
// single round.  A distance bound (n is known) flushes ghost roots, giving
// O(n)-round stabilization from arbitrary corruption.
#pragma once

#include <optional>

#include "local/network.hpp"

namespace pls::selfstab {

struct TreeState {
  graph::RawId root = 0;
  std::uint64_t dist = 0;
  graph::RawId parent = 0;

  friend bool operator==(const TreeState&, const TreeState&) = default;
};

local::State encode_tree_state(const TreeState& s);
std::optional<TreeState> decode_tree_state(const local::State& s);

class SpanningTreeProtocol {
 public:
  /// dist_bound: any value >= n flushes states whose root does not exist.
  explicit SpanningTreeProtocol(std::uint64_t dist_bound);

  /// The self-stabilizing transition rule (one synchronous round).
  local::StepFn step() const;

  /// The legitimate configuration on g: BFS tree of the minimum-id node.
  std::vector<local::State> legitimate(const graph::Graph& g) const;

  /// The 1-round local detector (the proof-labeling verifier run on the
  /// state-embedded certificates): true = this node sees no inconsistency.
  static bool locally_ok(graph::RawId me, const local::State& own,
                         std::span<const local::NeighborState> neighbors);

  /// Runs the detector at every node; returns the rejecting node indices.
  static std::vector<graph::NodeIndex> detectors(
      const graph::Graph& g, const std::vector<local::State>& states);

  std::uint64_t dist_bound() const noexcept { return dist_bound_; }

 private:
  std::uint64_t dist_bound_;
};

}  // namespace pls::selfstab
