// Clang Thread Safety Analysis annotations — compiler-enforced locking.
//
// The pipeline's two load-bearing invariants — verdicts are bit-identical at
// every thread count, and observability never perturbs them — were guarded
// only at runtime (TSan jobs, differential fuzzing), which catches the
// schedules and inputs we happen to run.  These macros move the locking half
// of that guarantee to compile time: every mutex-owning type names its
// capability, every guarded member names its mutex, and Clang's
// -Wthread-safety -Wthread-safety-beta analysis (the CI `analysis` job builds
// with them as errors) rejects any access path the annotations do not prove.
//
// The macros expand to Clang attributes under Clang and to nothing elsewhere,
// so GCC/MSVC builds are unaffected.  Use them through util::Mutex /
// util::MutexLock (mutex.hpp) — annotating raw std::mutex does not work
// because the standard library's methods carry no attributes.
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html (the
// macro set below is the canonical one from that document, PLS_-prefixed).
#pragma once

#if defined(__clang__) && !defined(SWIG)
#define PLS_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define PLS_THREAD_ANNOTATION__(x)  // no-op off Clang
#endif

/// Declares a class to be a capability (lockable).  The string names it in
/// diagnostics ("mutex", "role", ...).
#define PLS_CAPABILITY(x) PLS_THREAD_ANNOTATION__(capability(x))

/// Declares an RAII class whose lifetime acquires/releases a capability.
#define PLS_SCOPED_CAPABILITY PLS_THREAD_ANNOTATION__(scoped_lockable)

/// Data member readable/writable only while holding `x`.
#define PLS_GUARDED_BY(x) PLS_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer member whose *pointee* is protected by `x` (the pointer itself is
/// not).
#define PLS_PT_GUARDED_BY(x) PLS_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Acquisition-order edges for deadlock detection (-Wthread-safety-beta).
#define PLS_ACQUIRED_BEFORE(...) \
  PLS_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define PLS_ACQUIRED_AFTER(...) \
  PLS_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

/// Function requires the listed capabilities held (exclusively / shared) on
/// entry, and does not release them.
#define PLS_REQUIRES(...) \
  PLS_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define PLS_REQUIRES_SHARED(...) \
  PLS_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability (must not be held on entry).
#define PLS_ACQUIRE(...) \
  PLS_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define PLS_ACQUIRE_SHARED(...) \
  PLS_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (must be held on entry).
#define PLS_RELEASE(...) \
  PLS_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define PLS_RELEASE_SHARED(...) \
  PLS_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))

/// Function attempts the acquisition; first argument is the success value.
#define PLS_TRY_ACQUIRE(...) \
  PLS_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

/// Function must NOT be called with the listed capabilities held.
#define PLS_EXCLUDES(...) PLS_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the capability guarding its result.
#define PLS_RETURN_CAPABILITY(x) PLS_THREAD_ANNOTATION__(lock_returned(x))

/// Escape hatch; every use needs a written happens-before argument.
#define PLS_NO_THREAD_SAFETY_ANALYSIS \
  PLS_THREAD_ANNOTATION__(no_thread_safety_analysis)

// ---------------------------------------------------------------------------
// Hot-path tag — the anchor of prooflab-lint rule R1.
// ---------------------------------------------------------------------------
// PLS_HOT marks a *per-event leaf*: a function executed once per recorded
// event / per verified member on the sweep hot path (span enter/exit,
// Counter::add, Histogram::record, TraceRecorder::record, BallView::bind).
// Tagged functions must never allocate or take a lock — prooflab-lint R1
// rejects alloc/lock constructs inside them, which is what keeps the
// disabled-span cost at ~1 ns and observability out of the verdict path.
// Driver-level sweep slices are deliberately NOT tagged: they amortize one
// atlas lookup (a lock) per block boundary by design; their per-event inner
// work goes through the tagged leaves.
//
// The tag doubles as an optimizer hint (hot attribute) on GCC and Clang.
#if defined(__GNUC__) || defined(__clang__)
#define PLS_HOT __attribute__((hot))
#else
#define PLS_HOT
#endif
