// Deterministic fault injection: a seeded failpoint registry.
//
// A failpoint is a named site in production code where a test can arm a
// fault: throw std::bad_alloc, throw FaultInjected, stall for a fixed delay,
// or (via draw()) hand the site a seeded value to implement its own fault
// semantics (e.g. the wire-ingest site truncates the frame at a drawn
// offset).  Whether a given hit fires is decided by a per-site
// util::Rng(seed) Bernoulli draw — no ambient entropy, no clocks — so a
// single-threaded replay with the same seed fires the same faults at the
// same hits, which is what lets the chaos tests assert exact shed/expired
// counts per seed.
//
// Sites are compiled out by default: the PLS_FAILPOINT macro expands to an
// empty statement unless the build defines PROOFLAB_FAILPOINTS (CMake
// -DPROOFLAB_FAILPOINTS=ON).  The registry itself always compiles (it is a
// few dozen lines) so tooling links either way.  The disarmed fast path for
// compiled-in sites is one relaxed atomic load of the armed-site count.
//
// Sites live OUTSIDE per-event verdict leaves by rule: prooflab-lint R1
// rejects PLS_FAILPOINT in PLS_HOT bodies and R5 rejects it in decoder
// functions, so injection can never perturb the verdict path it is testing.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace pls::util::failpoint {

/// What an armed site does when a hit fires.
enum class Action : std::uint8_t {
  kBadAlloc = 0,  ///< throw std::bad_alloc (simulated allocation failure)
  kError = 1,     ///< throw FaultInjected (simulated internal fault)
  kDelay = 2,     ///< sleep for Plan::delay_ns (simulated stall)
};

/// Armed behavior of one site.
struct Plan {
  Action action = Action::kError;
  /// Per-hit fire probability, decided by the site's seeded Rng.  1.0 fires
  /// every hit (order-independent, deterministic at any thread count);
  /// fractional probabilities are deterministic per seed when the site is
  /// only hit from one thread (hit order fixes the draw sequence).
  double probability = 1.0;
  std::uint64_t seed = 0;       ///< seeds the site's private util::Rng
  std::uint64_t max_fires = 0;  ///< stop firing after this many (0 = no cap)
  std::uint64_t delay_ns = 0;   ///< kDelay stall length
};

/// The exception Action::kError throws.  `site()` names the failpoint so a
/// test (or a server fault counter) can attribute the injected fault.
class FaultInjected : public std::runtime_error {
 public:
  explicit FaultInjected(const char* site)
      : std::runtime_error(std::string("injected fault at ") + site),
        site_(site) {}
  const char* site() const noexcept { return site_; }

 private:
  const char* site_;
};

/// Arms (or re-arms, resetting counters and the Rng) the named site.
void arm(std::string_view site, const Plan& plan);
/// Disarms one site / every site.  Hit and fire counters are discarded.
void disarm(std::string_view site);
void disarm_all();

/// Times the site was evaluated / actually fired since it was armed
/// (0 for sites that are not armed).
std::uint64_t hits(std::string_view site);
std::uint64_t fires(std::string_view site);

/// The hook PLS_FAILPOINT expands to: no-op unless `site` is armed; on a
/// firing hit performs the plan's action (kBadAlloc/kError throw, kDelay
/// sleeps then returns).
void evaluate(const char* site);

/// For sites implementing custom fault semantics: decides fire/no-fire
/// exactly like evaluate() but never throws or sleeps — on a firing hit
/// returns a value drawn from the site's Rng for the caller to interpret
/// (the plan's Action is ignored).  nullopt = not armed or did not fire.
std::optional<std::uint64_t> draw(const char* site);

}  // namespace pls::util::failpoint

#if defined(PROOFLAB_FAILPOINTS)
#define PLS_FAILPOINT(site) ::pls::util::failpoint::evaluate(site)
#else
#define PLS_FAILPOINT(site) \
  do {                      \
  } while (false)
#endif
