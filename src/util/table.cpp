#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/assert.hpp"

namespace pls::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  PLS_REQUIRE(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  PLS_REQUIRE(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::format_double(double v) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(3) << v;
  return os.str();
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    out << "|";
    for (std::size_t c = 0; c < row.size(); ++c)
      out << " " << std::setw(static_cast<int>(widths[c])) << std::left
          << row[c] << " |";
    out << "\n";
  };

  print_row(headers_);
  out << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c)
    out << std::string(widths[c] + 2, '-') << "|";
  out << "\n";
  for (const auto& row : rows_) print_row(row);
}

}  // namespace pls::util
