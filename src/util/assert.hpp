// Precondition / invariant checking for the prooflab library.
//
// Following the Core Guidelines (I.5/I.6), public entry points state their
// preconditions with PLS_REQUIRE, which throws std::logic_error with enough
// context to identify the violated contract.  Internal invariants that are
// unreachable unless the library itself is broken use PLS_ASSERT, which is
// compiled to the same check (these simulations are not hot enough for the
// check to matter, and a loud failure beats silent corruption in a verifier).
#pragma once

#include <stdexcept>
#include <string>

namespace pls::util {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  throw std::logic_error(std::string(kind) + " violated: `" + expr + "` at " +
                         file + ":" + std::to_string(line));
}

}  // namespace pls::util

#define PLS_REQUIRE(expr)                                                  \
  do {                                                                     \
    if (!(expr))                                                           \
      ::pls::util::contract_failure("precondition", #expr, __FILE__,       \
                                    __LINE__);                             \
  } while (false)

#define PLS_ASSERT(expr)                                                   \
  do {                                                                     \
    if (!(expr))                                                           \
      ::pls::util::contract_failure("invariant", #expr, __FILE__,          \
                                    __LINE__);                             \
  } while (false)
