// Fixed-size worker pool for embarrassingly-parallel sweeps.
//
// The radius-t engine evaluates one independent verdict per node, so the only
// parallel primitive the codebase needs is a blocking parallel-for over a
// dense index range.  ThreadPool provides exactly that in two flavors:
//
//   * for_range/post_range — the STATIC split: [0, n) cut into
//     `thread_count()` contiguous slices (the same partition every call, so
//     work assignment — and therefore any per-worker scratch reuse — is
//     deterministic), one slice per worker.  Slice 0 always runs on the
//     calling thread; a 1-thread pool therefore spawns no threads at all and
//     is the sequential fallback path, byte-for-byte the same traversal
//     order as a plain loop.  Right when per-index work is uniform; on
//     skewed instances whole cores idle behind the one fat slice.
//   * for_range_stealing/post_range_stealing — the WORK-STEALING split:
//     [0, n) cut into fixed-size chunks claimed from a shared atomic cursor
//     (chunked claiming — the degenerate all-stealing deque).  Assignment is
//     first-come, so a worker that drew light chunks immediately takes load
//     off a straggler; per-worker scratch stays valid because `worker` still
//     names the executing slot, and callers whose writes are per-index
//     disjoint (the sweep) get bit-identical results at every thread count
//     even though the assignment is no longer deterministic.  Per-job
//     steal/chunk counts and per-worker busy time come back through
//     last_range_stats().
//
// Exceptions thrown by `fn` are captured (first one wins) and rethrown on
// the calling thread after every slice has finished, so the pool is never
// left with a wedged worker.  A stealing worker stops claiming after its
// first exception; the remaining chunks drain to its peers.
// Locking discipline is compiler-checked: every cross-thread member is
// GUARDED_BY(mu_) and Clang's thread-safety analysis (util/thread_annotations
// .hpp, the CI `analysis` job) rejects unlocked access paths; the one
// intentionally unguarded shared member is the chunk cursor, an explicit
// relaxed atomic (uniqueness of the claimed index is all it must provide —
// the job hand-off mutex supplies every happens-before edge).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "util/cancel.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace pls::util {

/// Tuning knobs of a work-stealing range job.
struct RangeOptions {
  /// Indices per claimed chunk; 0 picks a heuristic (about 16 chunks per
  /// execution slot, clamped to >= 1) — small enough to rebalance a skewed
  /// instance, large enough that the shared-cursor fetch_add is noise.
  std::size_t chunk = 0;
  /// Cooperative cancellation: polled before every chunk claim.  A claimant
  /// that observes a cancelled token stops claiming; the job completes with
  /// CancelledError iff the range was left uncovered and no chunk threw a
  /// real exception (a real exception always wins — the caller learns what
  /// actually broke, not that someone also pulled the plug).  If every chunk
  /// was already claimed and executed when the cancel landed, the range is
  /// complete and nothing is thrown.  Must outlive the job.
  const CancelToken* cancel = nullptr;
};

/// What the most recent stealing job actually did, aggregated at
/// finish_range: the observability feed for the sweep scheduler.
struct RangeStats {
  std::uint64_t chunks = 0;  ///< chunks executed across all workers
  std::uint64_t steals = 0;  ///< chunks run by a slot other than the static
                             ///< owner of that chunk index — the load the
                             ///< static split would have misplaced
  bool cancelled = false;    ///< range abandoned with chunks unexecuted
                             ///< (RangeOptions::cancel observed in time)
  std::vector<std::uint64_t> worker_busy_ns;  ///< per-slot claim-loop wall
                                              ///< time (size thread_count())
};

class ThreadPool {
 public:
  /// A pool with `threads` >= 1 execution slots (including the caller).
  /// `threads` == 1 spawns no worker threads.
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned thread_count() const noexcept { return threads_; }

  /// fn(worker, begin, end): worker in [0, thread_count()) identifies the
  /// execution slot (stable across calls — index per-worker scratch with it),
  /// [begin, end) the contiguous slice of [0, n) it owns.  Empty slices are
  /// not invoked.  Blocks until the whole range is covered.
  using RangeFn = std::function<void(unsigned worker, std::size_t begin,
                                     std::size_t end)>;
  void for_range(std::size_t n, const RangeFn& fn);

  /// Asynchronous variant for software pipelining: posts the job and returns
  /// immediately — worker threads start slices 1..thread_count()-1 right
  /// away, while slice 0 is deferred until finish_range(), where it runs on
  /// the calling thread.  Between the two calls the caller may do unrelated
  /// work (the batch verifier parses labeling i+1 there while the workers
  /// sweep labeling i).  The static partition, and therefore any per-worker
  /// scratch reuse, is identical to for_range's; a 1-thread pool simply runs
  /// the whole range inside finish_range(), so the sequential path still
  /// spawns nothing.  At most one posted range may be outstanding;
  /// for_range(n, fn) == post_range(n, fn) + finish_range().
  void post_range(std::size_t n, RangeFn fn);

  /// Completes the posted range: runs slice 0 here, blocks until every
  /// worker slice has finished, and rethrows the first captured exception.
  void finish_range();

  /// Work-stealing parallel-for: fn runs once per claimed chunk, with
  /// `worker` the executing slot and [begin, end) that chunk.  Same blocking
  /// contract as for_range; assignment is nondeterministic, so callers must
  /// write disjoint per-index outputs (the sweep does) for reproducible
  /// results.  A 1-thread pool claims the chunks in index order — the same
  /// traversal as a plain loop, no threads spawned.
  void for_range_stealing(std::size_t n, const RangeFn& fn,
                          RangeOptions options = {});

  /// Asynchronous stealing variant, post_range's pipelining contract: the
  /// workers start claiming immediately, the calling thread joins the claim
  /// loop inside finish_range().  At most one posted range (of either
  /// flavor) may be outstanding.
  void post_range_stealing(std::size_t n, RangeFn fn, RangeOptions options = {});

  /// Stats of the most recent *stealing* job completed by this pool
  /// (for_range_stealing or post_range_stealing + finish_range); valid until
  /// the next stealing job starts.  Calling-thread-only, like the pool's
  /// other bookkeeping between post and finish.
  const RangeStats& last_range_stats() const noexcept { return last_stats_; }

  /// Static owner of chunk `c` when `chunks` chunk indices are contiguously
  /// split over `threads` slots — the baseline a "steal" is counted against.
  static unsigned chunk_home(std::size_t c, std::size_t chunks,
                             unsigned threads) noexcept {
    return static_cast<unsigned>(((c + 1) * threads - 1) / chunks);
  }

  /// Slice `worker` of the static partition of [0, n) into `threads` parts.
  static std::pair<std::size_t, std::size_t> slice(std::size_t n,
                                                   unsigned threads,
                                                   unsigned worker) noexcept {
    return {n * worker / threads, n * (worker + 1) / threads};
  }

  /// std::thread::hardware_concurrency, clamped to >= 1.
  static unsigned hardware_threads() noexcept;

 private:
  /// One slot's contribution to a stealing job, accumulated in locals during
  /// the claim loop and committed to worker_stats_ under mu_ at job end.
  struct WorkerTotals {
    std::uint64_t chunks = 0;
    std::uint64_t steals = 0;
    std::uint64_t busy_ns = 0;
  };

  /// Shared cancellation outcome is derived at join time, not carried per
  /// worker: the range was cancelled iff fewer chunks executed than exist
  /// and no chunk threw — see join_workers_stealing.

  void worker_loop(unsigned worker);
  void start_workers(const RangeFn* fn, std::size_t n, bool stealing,
                     std::size_t chunk, std::size_t chunk_count,
                     const CancelToken* cancel) PLS_EXCLUDES(mu_);
  void join_workers(const RangeFn& fn, std::size_t n) PLS_EXCLUDES(mu_);
  void join_workers_stealing(const RangeFn& fn, std::size_t n,
                             std::size_t chunk, std::size_t chunk_count,
                             const CancelToken* cancel) PLS_EXCLUDES(mu_);
  /// The claim loop: grabs chunks off steal_next_ until the range is
  /// exhausted, `cancel` reads cancelled, or fn throws (the returned error
  /// stops this slot's claiming but not its peers').  Fills `totals`; never
  /// throws itself.
  std::exception_ptr run_stealing(unsigned worker, const RangeFn& fn,
                                  std::size_t n, std::size_t chunk,
                                  std::size_t chunk_count,
                                  const CancelToken* cancel,
                                  WorkerTotals& totals) noexcept;
  std::size_t default_chunk(std::size_t n) const noexcept;

  const unsigned threads_;
  std::vector<std::thread> workers_;

  Mutex mu_;
  CondVar start_cv_;  // signals workers: a new job is posted
  CondVar done_cv_;   // signals caller: all slices finished
  // Handed from the caller to the workers and back under mu_.
  const RangeFn* job_ PLS_GUARDED_BY(mu_) = nullptr;  // valid while job runs
  std::size_t job_n_ PLS_GUARDED_BY(mu_) = 0;
  std::uint64_t generation_ PLS_GUARDED_BY(mu_) = 0;  // bumped per job
  unsigned remaining_ PLS_GUARDED_BY(mu_) = 0;  // worker slices outstanding
  std::exception_ptr first_error_ PLS_GUARDED_BY(mu_);
  bool stopping_ PLS_GUARDED_BY(mu_) = false;
  // Stealing-job parameters, published to the workers with the job under
  // mu_; per-slot totals are committed back under the same lock the job-end
  // remaining_ decrement already takes, so the stealing path adds no lock
  // acquisitions beyond the static path's.
  bool job_stealing_ PLS_GUARDED_BY(mu_) = false;
  std::size_t job_chunk_ PLS_GUARDED_BY(mu_) = 1;
  std::size_t job_chunk_count_ PLS_GUARDED_BY(mu_) = 0;
  const CancelToken* job_cancel_ PLS_GUARDED_BY(mu_) = nullptr;
  std::vector<WorkerTotals> worker_stats_ PLS_GUARDED_BY(mu_);
  // The chunk claim cursor.  Deliberately NOT guarded: fetch_add(relaxed)
  // only has to hand every claimant a unique index — all data the chunks
  // read or write is ordered by the job hand-off mutex (publish at
  // start_workers, collect at the remaining_ == 0 wait), never by this
  // cursor.  Reset (relaxed) before each stealing job's publication; quiesced
  // workers cannot observe the reset early because they re-read the job only
  // after the generation_ bump behind the same mutex.
  std::atomic<std::size_t> steal_next_{0};
  // post_range bookkeeping: touched only by the calling thread between
  // post_range and finish_range (the workers read the job through job_),
  // so these are caller-local, not guarded.
  RangeFn posted_fn_;      // owning copy for post_range jobs
  std::size_t posted_n_ = 0;
  bool posted_ = false;    // a post_range awaits finish_range
  bool posted_stealing_ = false;
  std::size_t posted_chunk_ = 1;
  std::size_t posted_chunk_count_ = 0;
  const CancelToken* posted_cancel_ = nullptr;
  RangeStats last_stats_;  // assembled at finish of a stealing job
};

}  // namespace pls::util
