// Fixed-size worker pool for embarrassingly-parallel sweeps.
//
// The radius-t engine evaluates one independent verdict per node, so the only
// parallel primitive the codebase needs is a blocking parallel-for over a
// dense index range.  ThreadPool provides exactly that: `for_range(n, fn)`
// splits [0, n) into `thread_count()` contiguous slices (the same static
// partition every call, so work assignment — and therefore any per-worker
// scratch reuse — is deterministic), runs one slice per worker, and blocks
// until all slices finish.  Slice 0 always runs on the calling thread; a
// 1-thread pool therefore spawns no threads at all and is the sequential
// fallback path, byte-for-byte the same traversal order as a plain loop.
//
// Exceptions thrown by `fn` are captured (first one wins) and rethrown on
// the calling thread after every slice has finished, so the pool is never
// left with a wedged worker.
// Locking discipline is compiler-checked: every cross-thread member is
// GUARDED_BY(mu_) and Clang's thread-safety analysis (util/thread_annotations
// .hpp, the CI `analysis` job) rejects unlocked access paths.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace pls::util {

class ThreadPool {
 public:
  /// A pool with `threads` >= 1 execution slots (including the caller).
  /// `threads` == 1 spawns no worker threads.
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned thread_count() const noexcept { return threads_; }

  /// fn(worker, begin, end): worker in [0, thread_count()) identifies the
  /// execution slot (stable across calls — index per-worker scratch with it),
  /// [begin, end) the contiguous slice of [0, n) it owns.  Empty slices are
  /// not invoked.  Blocks until the whole range is covered.
  using RangeFn = std::function<void(unsigned worker, std::size_t begin,
                                     std::size_t end)>;
  void for_range(std::size_t n, const RangeFn& fn);

  /// Asynchronous variant for software pipelining: posts the job and returns
  /// immediately — worker threads start slices 1..thread_count()-1 right
  /// away, while slice 0 is deferred until finish_range(), where it runs on
  /// the calling thread.  Between the two calls the caller may do unrelated
  /// work (the batch verifier parses labeling i+1 there while the workers
  /// sweep labeling i).  The static partition, and therefore any per-worker
  /// scratch reuse, is identical to for_range's; a 1-thread pool simply runs
  /// the whole range inside finish_range(), so the sequential path still
  /// spawns nothing.  At most one posted range may be outstanding;
  /// for_range(n, fn) == post_range(n, fn) + finish_range().
  void post_range(std::size_t n, RangeFn fn);

  /// Completes the posted range: runs slice 0 here, blocks until every
  /// worker slice has finished, and rethrows the first captured exception.
  void finish_range();

  /// Slice `worker` of the static partition of [0, n) into `threads` parts.
  static std::pair<std::size_t, std::size_t> slice(std::size_t n,
                                                   unsigned threads,
                                                   unsigned worker) noexcept {
    return {n * worker / threads, n * (worker + 1) / threads};
  }

  /// std::thread::hardware_concurrency, clamped to >= 1.
  static unsigned hardware_threads() noexcept;

 private:
  void worker_loop(unsigned worker);
  void start_workers(const RangeFn* fn, std::size_t n) PLS_EXCLUDES(mu_);
  void join_workers(const RangeFn& fn, std::size_t n) PLS_EXCLUDES(mu_);

  const unsigned threads_;
  std::vector<std::thread> workers_;

  Mutex mu_;
  CondVar start_cv_;  // signals workers: a new job is posted
  CondVar done_cv_;   // signals caller: all slices finished
  // Handed from the caller to the workers and back under mu_.
  const RangeFn* job_ PLS_GUARDED_BY(mu_) = nullptr;  // valid while job runs
  std::size_t job_n_ PLS_GUARDED_BY(mu_) = 0;
  std::uint64_t generation_ PLS_GUARDED_BY(mu_) = 0;  // bumped per job
  unsigned remaining_ PLS_GUARDED_BY(mu_) = 0;  // worker slices outstanding
  std::exception_ptr first_error_ PLS_GUARDED_BY(mu_);
  bool stopping_ PLS_GUARDED_BY(mu_) = false;
  // post_range bookkeeping: touched only by the calling thread between
  // post_range and finish_range (the workers read the job through job_),
  // so these are caller-local, not guarded.
  RangeFn posted_fn_;      // owning copy for post_range jobs
  std::size_t posted_n_ = 0;
  bool posted_ = false;    // a post_range awaits finish_range
};

}  // namespace pls::util
