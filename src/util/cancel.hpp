// Cooperative cancellation for sweeps in flight.
//
// A CancelToken is a one-word flag plus an optional absolute deadline that
// long-running work polls at natural boundaries — the thread pool checks it
// before every chunk claim, the batch verifier between labelings.  Nothing is
// ever interrupted mid-chunk: cancellation is a request, honored at the next
// poll, so every per-index write that did happen is complete and the caller
// can reason about exactly which state survives an abandoned run.
//
// Ownership/threading contract mirrors the pool's job hand-off: reset() is
// called only while no job using the token is in flight (the pool's
// post/finish mutex supplies the happens-before edge); cancel() may be called
// from any thread at any time.  Both the flag and the deadline are relaxed
// atomics — a poll that misses a concurrent cancel() by one chunk is
// acceptable by design, and all data ordering comes from the mutex hand-off,
// never from the token.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>

namespace pls::util {

/// Thrown by the pool / batch verifier when a range or run was abandoned on a
/// cancelled token and no real exception occurred.  A real exception from the
/// workload always wins over this (first-exception-propagation contract).
class CancelledError : public std::runtime_error {
 public:
  CancelledError() : std::runtime_error("operation cancelled") {}
};

class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Re-arms the token for a new unit of work: clears the flag and installs
  /// `deadline_ns` (steady-clock absolute, 0 = no deadline).  Call only while
  /// no job polling this token is in flight.
  void reset(std::uint64_t deadline_ns = 0) noexcept {
    cancelled_.store(false, std::memory_order_relaxed);
    deadline_ns_.store(deadline_ns, std::memory_order_relaxed);
  }

  /// Requests cancellation.  Safe from any thread; idempotent.
  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }

  /// True once cancel() was called or the deadline passed.  Cheap enough to
  /// poll per chunk claim: one relaxed load, plus a clock read only for
  /// tokens that actually carry a deadline.
  bool cancelled() const noexcept {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    const std::uint64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
    return deadline != 0 && now_ns() >= deadline;
  }

  /// The installed deadline (0 = none).
  std::uint64_t deadline_ns() const noexcept {
    return deadline_ns_.load(std::memory_order_relaxed);
  }

  /// Steady-clock nanoseconds — the timebase deadlines are expressed in
  /// (matches serve::Server::now_ns).
  static std::uint64_t now_ns() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<std::uint64_t> deadline_ns_{0};
};

}  // namespace pls::util
