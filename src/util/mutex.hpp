// Annotated mutex wrappers — the capability types Clang TSA reasons about.
//
// std::mutex carries no thread-safety attributes, so code locking it directly
// is invisible to -Wthread-safety.  These zero-overhead wrappers give every
// lock in the codebase a name the analysis can track:
//
//   * util::Mutex      — a std::mutex declared as a TSA capability.
//   * util::MutexLock  — the ONE way to hold a Mutex: a scoped capability
//                        over std::unique_lock, with annotated unlock()/
//                        lock() for the handful of sites (atlas build dedup)
//                        that drop the lock mid-scope to do work outside it.
//   * util::CondVar    — condition variable waiting through a MutexLock.
//                        Waits release and reacquire the same capability, a
//                        net no-op the analysis does not need to model; use
//                        the explicit `while (!pred) cv.wait(lock);` form —
//                        a predicate lambda would read guarded members from
//                        a context the analysis cannot connect to the lock.
//
// Everything forwards straight to the std primitives — same codegen, no
// extra state beyond what std::unique_lock already keeps.
#pragma once

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace pls::util {

class CondVar;

/// A std::mutex the thread-safety analysis can see.  Prefer MutexLock over
/// calling lock()/unlock() directly.
class PLS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() PLS_ACQUIRE() { mu_.lock(); }
  void unlock() PLS_RELEASE() { mu_.unlock(); }
  bool try_lock() PLS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

/// RAII holder of a Mutex (TSA scoped capability).  Constructed locked;
/// unlock()/lock() support the drop-the-lock-mid-scope pattern, and the
/// destructor releases only if currently held (std::unique_lock semantics).
class PLS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) PLS_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() PLS_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Drops the lock before its scope ends (e.g. to build outside it).
  void unlock() PLS_RELEASE() { lock_.unlock(); }

  /// Reacquires after an unlock().
  void lock() PLS_ACQUIRE() { lock_.lock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable over util::Mutex.  wait() atomically releases the
/// MutexLock's mutex and reacquires it before returning — capability-neutral,
/// so it carries no TSA annotation; guarded state read around a wait is
/// still checked at the call site, which holds the MutexLock.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(MutexLock& lock) { cv_.wait(lock.lock_); }
  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace pls::util
