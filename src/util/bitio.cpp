#include "util/bitio.hpp"

namespace pls::util {

void BitWriter::write_uint(std::uint64_t value, unsigned width) {
  PLS_REQUIRE(width <= 64);
  for (unsigned i = 0; i < width; ++i) {
    const std::size_t byte = nbits_ / 8;
    const unsigned offset = static_cast<unsigned>(nbits_ % 8);
    if (byte == bytes_.size()) bytes_.push_back(0);
    if ((value >> i) & 1u) bytes_[byte] |= static_cast<std::uint8_t>(1u << offset);
    ++nbits_;
  }
}

void BitWriter::write_varint(std::uint64_t value) {
  do {
    const std::uint64_t group = value & 0x7Fu;
    value >>= 7;
    write_uint(group, 7);
    write_bit(value != 0);
  } while (value != 0);
}

void BitWriter::write_bits(const std::vector<std::uint8_t>& bytes,
                           std::size_t nbits) {
  PLS_REQUIRE(nbits <= bytes.size() * 8);
  write_bits(bytes.data(), nbits);
}

void BitWriter::write_bits(const std::uint8_t* bytes, std::size_t nbits) {
  PLS_REQUIRE(nbits == 0 || bytes != nullptr);
  for (std::size_t i = 0; i < nbits; ++i) {
    const bool bit = (bytes[i / 8] >> (i % 8)) & 1u;
    write_bit(bit);
  }
}

std::vector<std::uint8_t> BitWriter::take_bytes() noexcept {
  nbits_ = 0;
  return std::move(bytes_);
}

std::optional<std::uint64_t> BitReader::read_uint(unsigned width) noexcept {
  if (failed_ || width > 64 || remaining() < width) {
    failed_ = true;
    return std::nullopt;
  }
  std::uint64_t value = 0;
  for (unsigned i = 0; i < width; ++i) {
    const std::size_t byte = pos_ / 8;
    const unsigned offset = static_cast<unsigned>(pos_ % 8);
    if ((data_[byte] >> offset) & 1u) value |= (std::uint64_t{1} << i);
    ++pos_;
  }
  return value;
}

std::optional<bool> BitReader::read_bit() noexcept {
  auto v = read_uint(1);
  if (!v) return std::nullopt;
  return *v != 0;
}

std::optional<std::uint64_t> BitReader::read_varint() noexcept {
  const std::size_t start = pos_;
  std::uint64_t value = 0;
  unsigned shift = 0;
  for (;;) {
    auto group = read_uint(7);
    auto cont = read_bit();
    if (!group || !cont || shift >= 64 ||
        (shift > 57 && (*group >> (64 - shift)) != 0) ||
        (!*cont && shift > 0 && *group == 0)) {
      // Truncated; an overlong encoding (a group past bit 63, or group bits
      // that would shift out above bit 63 — shift 63 keeps only bit 0); or
      // a non-minimal one (a zero FINAL group after the first contributes
      // nothing and would alias the shorter encoding of the same value).
      pos_ = start;
      failed_ = true;
      return std::nullopt;
    }
    value |= (*group << shift);
    if (!*cont) return value;
    shift += 7;
  }
}

unsigned bit_width_for(std::uint64_t value) noexcept {
  unsigned w = 1;
  while (value >>= 1) ++w;
  return w;
}

}  // namespace pls::util
