// Deterministic random number generation.
//
// Every experiment in this repository is reproducible from an explicit seed:
// there is no global RNG and no wall-clock seeding (Core Guidelines I.2 —
// avoid non-const global state).  Rng is a thin, value-semantic wrapper over
// std::mt19937_64 with the handful of draws the library needs, plus `split()`
// for handing independent streams to sub-experiments.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "util/assert.hpp"

namespace pls::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  std::uint64_t below(std::uint64_t bound) {
    PLS_REQUIRE(bound > 0);
    return std::uniform_int_distribution<std::uint64_t>(0, bound - 1)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t between(std::int64_t lo, std::int64_t hi) {
    PLS_REQUIRE(lo <= hi);
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Raw 64 random bits.
  std::uint64_t bits() { return engine_(); }

  /// Bernoulli draw with probability p in [0,1].
  bool chance(double p) {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_) < p;
  }

  /// Uniform double in [0,1).
  double uniform01() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Independent child stream; deterministic function of this stream's state.
  Rng split() { return Rng(engine_()); }

  /// Fisher-Yates shuffle of a vector.
  template <typename T>
  void shuffle(std::vector<T>& xs) {
    for (std::size_t i = xs.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(xs[i - 1], xs[j]);
    }
  }

  /// A random permutation of {0, 1, ..., n-1}.
  std::vector<std::uint64_t> permutation(std::size_t n) {
    std::vector<std::uint64_t> p(n);
    for (std::size_t i = 0; i < n; ++i) p[i] = i;
    shuffle(p);
    return p;
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace pls::util
