// Immutable-ish bit string value type.
//
// Node states and certificates are both binary strings in the paper's model;
// BitString is the common value type (hashable, comparable) with bit-exact
// length accounting.  Construction goes through BitWriter; consumption goes
// through BitReader, which fails softly on truncated/garbage input (an
// adversarial certificate must produce "reject", never undefined behavior).
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "util/assert.hpp"
#include "util/bitio.hpp"

namespace pls::util {

class BitString {
 public:
  BitString() = default;

  BitString(std::vector<std::uint8_t> bytes, std::size_t nbits)
      : bytes_(std::move(bytes)), nbits_(nbits) {
    PLS_REQUIRE(nbits_ <= bytes_.size() * 8);
  }

  /// Consume a writer's buffer.
  static BitString from_writer(BitWriter&& w) {
    const std::size_t nbits = w.bit_size();
    return BitString(w.take_bytes(), nbits);
  }

  /// Single fixed-width value convenience.
  static BitString of_uint(std::uint64_t value, unsigned width) {
    BitWriter w;
    w.write_uint(value, width);
    return from_writer(std::move(w));
  }

  BitReader reader() const noexcept { return BitReader(bytes_, nbits_); }

  std::size_t bit_size() const noexcept { return nbits_; }
  bool empty() const noexcept { return nbits_ == 0; }
  const std::vector<std::uint8_t>& bytes() const noexcept { return bytes_; }

  /// First `nbits` bits (for truncation/masking experiments).
  BitString prefix(std::size_t nbits) const {
    if (nbits >= nbits_) return *this;
    BitWriter w;
    w.write_bits(bytes_, nbits);
    return from_writer(std::move(w));
  }

  friend bool operator==(const BitString& a, const BitString& b) {
    if (a.nbits_ != b.nbits_) return false;
    const std::size_t full = a.nbits_ / 8;
    for (std::size_t i = 0; i < full; ++i)
      if (a.bytes_[i] != b.bytes_[i]) return false;
    const unsigned rest = static_cast<unsigned>(a.nbits_ % 8);
    if (rest != 0) {
      const std::uint8_t mask = static_cast<std::uint8_t>((1u << rest) - 1);
      if ((a.bytes_[full] & mask) != (b.bytes_[full] & mask)) return false;
    }
    return true;
  }
  friend bool operator!=(const BitString& a, const BitString& b) {
    return !(a == b);
  }

  std::size_t hash() const noexcept {
    std::size_t h = std::hash<std::size_t>{}(nbits_);
    const std::size_t full = nbits_ / 8;
    for (std::size_t i = 0; i < full; ++i)
      h = h * 1099511628211ull + bytes_[i];
    const unsigned rest = static_cast<unsigned>(nbits_ % 8);
    if (rest != 0)
      h = h * 1099511628211ull +
          (bytes_[full] & static_cast<std::uint8_t>((1u << rest) - 1));
    return h;
  }

 private:
  std::vector<std::uint8_t> bytes_;
  std::size_t nbits_ = 0;
};

struct BitStringHash {
  std::size_t operator()(const BitString& s) const noexcept { return s.hash(); }
};

}  // namespace pls::util
