// Immutable-ish bit string value type.
//
// Node states and certificates are both binary strings in the paper's model;
// BitString is the common value type (hashable, comparable) with bit-exact
// length accounting.  Construction goes through BitWriter; consumption goes
// through BitReader, which fails softly on truncated/garbage input (an
// adversarial certificate must produce "reject", never undefined behavior).
//
// Storage comes in two modes:
//
//   * OWNED (the default): the string holds its bytes in a vector, like any
//     value type.  Everything constructed through BitWriter is owned.
//   * ALIASING (BitString::aliasing): the string is a non-owning view over
//     caller-managed memory — the zero-copy ingestion mode of the serving
//     tier (serve/wire.hpp), where certificates alias the request buffer
//     instead of being copied out of it.  The caller owns the lifetime: the
//     aliased bytes must stay valid and unmodified for as long as ANY copy
//     of the string is read (copies alias the same memory; they never
//     silently materialize).  materialize() produces an owned deep copy
//     when the buffer is about to go away.
//
// All readers (reader(), operator==, hash, prefix) go through data(), so the
// two modes are observably identical bit-for-bit; bytes() — the owned
// vector — is only for owned strings (write-side plumbing).
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "util/assert.hpp"
#include "util/bitio.hpp"

namespace pls::util {

class BitString {
 public:
  BitString() = default;

  BitString(std::vector<std::uint8_t> bytes, std::size_t nbits)
      : owned_(std::move(bytes)), nbits_(nbits) {
    PLS_REQUIRE(nbits_ <= owned_.size() * 8);
    data_ = owned_.data();
  }

  /// Non-owning view over `nbits` bits at `data` (little-endian within each
  /// byte, same layout BitWriter produces).  The caller guarantees the
  /// pointed-to bytes outlive every copy of the returned string and stay
  /// bit-stable while any of them is read — the zero-copy wire-ingestion
  /// contract (serve/wire.hpp pins the request buffer for exactly this).
  static BitString aliasing(const std::uint8_t* data, std::size_t nbits) {
    PLS_REQUIRE(nbits == 0 || data != nullptr);
    BitString s;
    s.data_ = data;
    s.nbits_ = nbits;
    s.aliased_ = true;
    return s;
  }

  // Copies and moves must re-point data_ at the destination's own vector in
  // owned mode (the default member-wise copy would alias the SOURCE's
  // buffer); aliasing strings keep aliasing the same external memory.
  BitString(const BitString& other)
      : owned_(other.owned_), nbits_(other.nbits_), aliased_(other.aliased_) {
    data_ = aliased_ ? other.data_ : owned_.data();
  }
  BitString(BitString&& other) noexcept
      : owned_(std::move(other.owned_)),
        nbits_(other.nbits_),
        aliased_(other.aliased_) {
    data_ = aliased_ ? other.data_ : owned_.data();
    other.owned_.clear();
    other.data_ = nullptr;
    other.nbits_ = 0;
    other.aliased_ = false;
  }
  BitString& operator=(const BitString& other) {
    if (this != &other) {
      owned_ = other.owned_;
      nbits_ = other.nbits_;
      aliased_ = other.aliased_;
      data_ = aliased_ ? other.data_ : owned_.data();
    }
    return *this;
  }
  BitString& operator=(BitString&& other) noexcept {
    if (this != &other) {
      owned_ = std::move(other.owned_);
      nbits_ = other.nbits_;
      aliased_ = other.aliased_;
      data_ = aliased_ ? other.data_ : owned_.data();
      other.owned_.clear();
      other.data_ = nullptr;
      other.nbits_ = 0;
      other.aliased_ = false;
    }
    return *this;
  }

  /// Consume a writer's buffer.
  static BitString from_writer(BitWriter&& w) {
    const std::size_t nbits = w.bit_size();
    return BitString(w.take_bytes(), nbits);
  }

  /// Single fixed-width value convenience.
  static BitString of_uint(std::uint64_t value, unsigned width) {
    BitWriter w;
    w.write_uint(value, width);
    return from_writer(std::move(w));
  }

  BitReader reader() const noexcept { return BitReader(data_, nbits_); }

  std::size_t bit_size() const noexcept { return nbits_; }
  bool empty() const noexcept { return nbits_ == 0; }

  /// Raw little-endian-within-byte bit storage: ceil(bit_size()/8) readable
  /// bytes (null only when empty).  Valid in both modes — the read-side
  /// accessor everything bit-level goes through.
  const std::uint8_t* data() const noexcept { return data_; }

  /// Whether this string aliases caller-managed memory (see aliasing()).
  bool is_aliasing() const noexcept { return aliased_; }

  /// The owned byte vector; owned strings only (an aliasing string has no
  /// vector to hand out — use data()/materialize()).
  const std::vector<std::uint8_t>& bytes() const {
    PLS_REQUIRE(!aliased_);
    return owned_;
  }

  /// An owned deep copy (identity for already-owned strings): the escape
  /// hatch when an aliased buffer is about to be released.
  BitString materialize() const {
    if (!aliased_) return *this;
    std::vector<std::uint8_t> copy(data_, data_ + (nbits_ + 7) / 8);
    return BitString(std::move(copy), nbits_);
  }

  /// First `nbits` bits (for truncation/masking experiments).
  BitString prefix(std::size_t nbits) const {
    if (nbits >= nbits_) return materialize();
    BitWriter w;
    w.write_bits(data_, nbits);
    return from_writer(std::move(w));
  }

  friend bool operator==(const BitString& a, const BitString& b) {
    if (a.nbits_ != b.nbits_) return false;
    const std::size_t full = a.nbits_ / 8;
    for (std::size_t i = 0; i < full; ++i)
      if (a.data_[i] != b.data_[i]) return false;
    const unsigned rest = static_cast<unsigned>(a.nbits_ % 8);
    if (rest != 0) {
      const std::uint8_t mask = static_cast<std::uint8_t>((1u << rest) - 1);
      if ((a.data_[full] & mask) != (b.data_[full] & mask)) return false;
    }
    return true;
  }
  friend bool operator!=(const BitString& a, const BitString& b) {
    return !(a == b);
  }

  std::size_t hash() const noexcept {
    std::size_t h = std::hash<std::size_t>{}(nbits_);
    const std::size_t full = nbits_ / 8;
    for (std::size_t i = 0; i < full; ++i)
      h = h * 1099511628211ull + data_[i];
    const unsigned rest = static_cast<unsigned>(nbits_ % 8);
    if (rest != 0)
      h = h * 1099511628211ull +
          (data_[full] & static_cast<std::uint8_t>((1u << rest) - 1));
    return h;
  }

 private:
  std::vector<std::uint8_t> owned_;
  const std::uint8_t* data_ = nullptr;  ///< owned_.data() or external memory
  std::size_t nbits_ = 0;
  bool aliased_ = false;
};

struct BitStringHash {
  std::size_t operator()(const BitString& s) const noexcept { return s.hash(); }
};

}  // namespace pls::util
