#include "util/failpoint.hpp"

#include <atomic>
#include <chrono>
#include <map>
#include <new>
#include <thread>
#include <utility>

#include "util/mutex.hpp"
#include "util/rng.hpp"
#include "util/thread_annotations.hpp"

namespace pls::util::failpoint {

namespace {

struct Site {
  Plan plan;
  Rng rng;
  std::uint64_t hits = 0;
  std::uint64_t fires = 0;

  explicit Site(const Plan& p) : plan(p), rng(p.seed) {}
};

struct Registry {
  Mutex mu;
  // Disarmed fast path: evaluate()/draw() bail on this count without taking
  // the lock, so compiled-in sites cost one relaxed load when nothing is
  // armed.  Relaxed is enough — arming happens-before the hits a test cares
  // about through the test's own sequencing, never through this counter.
  std::atomic<std::uint64_t> armed{0};
  std::map<std::string, Site, std::less<>> sites PLS_GUARDED_BY(mu);
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: sites may be hit at exit
  return *r;
}

struct Fired {
  Plan plan;
  std::uint64_t value = 0;  ///< drawn payload for draw() sites
};

/// Decides whether this hit fires; on fire returns the plan and a drawn value.
std::optional<Fired> decide(const char* site_name) {
  Registry& r = registry();
  MutexLock lock(r.mu);
  const auto it = r.sites.find(std::string_view(site_name));
  if (it == r.sites.end()) return std::nullopt;
  Site& site = it->second;
  ++site.hits;
  if (site.plan.max_fires != 0 && site.fires >= site.plan.max_fires)
    return std::nullopt;
  if (site.plan.probability < 1.0 && !site.rng.chance(site.plan.probability))
    return std::nullopt;
  ++site.fires;
  return Fired{site.plan, site.rng.bits()};
}

}  // namespace

void arm(std::string_view site, const Plan& plan) {
  Registry& r = registry();
  MutexLock lock(r.mu);
  const auto it = r.sites.find(site);
  if (it == r.sites.end()) {
    r.sites.emplace(std::string(site), Site(plan));
    r.armed.fetch_add(1, std::memory_order_relaxed);
  } else {
    it->second = Site(plan);  // re-arm: fresh Rng and counters
  }
}

void disarm(std::string_view site) {
  Registry& r = registry();
  MutexLock lock(r.mu);
  if (r.sites.erase(std::string(site)) != 0)
    r.armed.fetch_sub(1, std::memory_order_relaxed);
}

void disarm_all() {
  Registry& r = registry();
  MutexLock lock(r.mu);
  r.armed.store(0, std::memory_order_relaxed);
  r.sites.clear();
}

std::uint64_t hits(std::string_view site) {
  Registry& r = registry();
  MutexLock lock(r.mu);
  const auto it = r.sites.find(site);
  return it == r.sites.end() ? 0 : it->second.hits;
}

std::uint64_t fires(std::string_view site) {
  Registry& r = registry();
  MutexLock lock(r.mu);
  const auto it = r.sites.find(site);
  return it == r.sites.end() ? 0 : it->second.fires;
}

void evaluate(const char* site) {
  Registry& r = registry();
  if (r.armed.load(std::memory_order_relaxed) == 0) return;
  const std::optional<Fired> fired = decide(site);
  if (!fired) return;
  // Act outside the lock: a sleeping or throwing site must not serialize
  // other sites (or other threads hitting this one).
  switch (fired->plan.action) {
    case Action::kBadAlloc:
      throw std::bad_alloc();
    case Action::kError:
      throw FaultInjected(site);
    case Action::kDelay:
      if (fired->plan.delay_ns != 0)
        std::this_thread::sleep_for(
            std::chrono::nanoseconds(fired->plan.delay_ns));
      return;
  }
}

std::optional<std::uint64_t> draw(const char* site) {
  Registry& r = registry();
  if (r.armed.load(std::memory_order_relaxed) == 0) return std::nullopt;
  const std::optional<Fired> fired = decide(site);
  if (!fired) return std::nullopt;
  return fired->value;
}

}  // namespace pls::util::failpoint
