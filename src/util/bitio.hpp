// Bit-exact serialization for certificates.
//
// Proof size — the paper's complexity measure — is counted in *bits*, so all
// certificate encodings go through BitWriter/BitReader rather than through
// byte-oriented serialization.  The writer packs little-endian-within-byte
// (bit k of the stream lives in byte k/8 at position k%8), and the reader is
// total: reads past the end fail softly by returning std::nullopt, because a
// verifier must treat a malformed (adversarial) certificate as "reject", not
// as a crash.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "util/assert.hpp"

namespace pls::util {

class BitWriter {
 public:
  BitWriter() = default;

  /// Append the low `width` bits of `value` (LSB first). width in [0,64].
  void write_uint(std::uint64_t value, unsigned width);

  /// Append a single bit.
  void write_bit(bool bit) { write_uint(bit ? 1 : 0, 1); }

  /// LEB128-style varint: 7 payload bits + 1 continuation bit per group.
  void write_varint(std::uint64_t value);

  /// Append another bit string verbatim.
  void write_bits(const std::vector<std::uint8_t>& bytes, std::size_t nbits);

  /// Same, from raw bit storage (BitString::data() layout).
  void write_bits(const std::uint8_t* bytes, std::size_t nbits);

  std::size_t bit_size() const noexcept { return nbits_; }
  const std::vector<std::uint8_t>& bytes() const noexcept { return bytes_; }

  /// Move the accumulated buffer out; the writer is reset.
  std::vector<std::uint8_t> take_bytes() noexcept;

 private:
  std::vector<std::uint8_t> bytes_;
  std::size_t nbits_ = 0;
};

// Every read_* checks the remaining bit count BEFORE touching storage and
// fails closed: a failed read returns nullopt, does not advance the cursor,
// and latches the sticky failed() flag.  Once failed, every subsequent read
// also returns nullopt, so a decoder that forgets to check one intermediate
// result still cannot be steered by bits past the end — it can only reject.
// Varint decoding is canonical: overlong encodings (group bits that would
// be discarded above bit 63) AND non-minimal ones (a redundant zero final
// group, which decodes identically to the shorter encoding) are rejected,
// so on the wire path two distinct byte strings never decode to the same
// value.
class BitReader {
 public:
  BitReader(const std::uint8_t* data, std::size_t nbits) noexcept
      : data_(data), nbits_(nbits) {
    PLS_ASSERT(nbits == 0 || data != nullptr);
  }
  BitReader(const std::vector<std::uint8_t>& bytes, std::size_t nbits) noexcept
      : BitReader(bytes.data(), nbits) {
    PLS_ASSERT(nbits <= bytes.size() * 8);
  }

  /// Read `width` bits as an unsigned value; nullopt if not enough bits left.
  std::optional<std::uint64_t> read_uint(unsigned width) noexcept;

  std::optional<bool> read_bit() noexcept;

  /// LEB128-style varint; nullopt on truncation, on overlong encodings
  /// that would discard nonzero bits above bit 63, and on non-minimal
  /// encodings ending in a redundant zero group (canonical decoding).
  std::optional<std::uint64_t> read_varint() noexcept;

  std::size_t remaining() const noexcept { return nbits_ - pos_; }
  bool exhausted() const noexcept { return pos_ == nbits_; }
  std::size_t position() const noexcept { return pos_; }

  /// Sticky: true once any read has failed.  ok() is the single check a
  /// multi-field decoder needs at the end of a parse.
  bool failed() const noexcept { return failed_; }
  bool ok() const noexcept { return !failed_; }

 private:
  const std::uint8_t* data_;
  std::size_t nbits_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

/// Number of bits needed to represent `value` (0 -> 1, so every value has a
/// nonzero fixed width when used as a field size).
unsigned bit_width_for(std::uint64_t value) noexcept;

}  // namespace pls::util
