#include "util/thread_pool.hpp"

#include "obs/trace.hpp"
#include "util/assert.hpp"

namespace pls::util {

ThreadPool::ThreadPool(unsigned threads) : threads_(threads) {
  PLS_REQUIRE(threads >= 1);
  workers_.reserve(threads_ - 1);
  for (unsigned w = 1; w < threads_; ++w)
    workers_.emplace_back([this, w] { worker_loop(w); });
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

unsigned ThreadPool::hardware_threads() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void ThreadPool::worker_loop(unsigned worker) {
  std::uint64_t seen = 0;
  while (true) {
    const RangeFn* fn = nullptr;
    std::size_t n = 0;
    {
      MutexLock lock(mu_);
      // Explicit wait loop (not the predicate-lambda overload): the guarded
      // reads stay in a scope the thread-safety analysis can tie to `lock`.
      while (!stopping_ && generation_ == seen) start_cv_.wait(lock);
      if (stopping_) return;
      seen = generation_;
      fn = job_;
      n = job_n_;
    }
    const auto [begin, end] = slice(n, threads_, worker);
    std::exception_ptr error;
    if (begin < end) {
      try {
        // Span per executed slice: exposes per-slot skew (a straggling
        // worker shows as one long "pool.slice" while its peers idle).
        PLS_TRACE_SPAN("pool.slice", worker);
        (*fn)(worker, begin, end);
      } catch (...) {
        error = std::current_exception();
      }
    }
    {
      MutexLock lock(mu_);
      if (error && !first_error_) first_error_ = std::move(error);
      if (--remaining_ == 0) done_cv_.notify_one();
    }
  }
}

void ThreadPool::for_range(std::size_t n, const RangeFn& fn) {
  PLS_REQUIRE(!posted_);
  if (n == 0) return;
  if (threads_ == 1) {
    PLS_TRACE_SPAN("pool.slice", 0);
    fn(0, 0, n);
    return;
  }
  start_workers(&fn, n);
  join_workers(fn, n);
}

void ThreadPool::post_range(std::size_t n, RangeFn fn) {
  PLS_REQUIRE(!posted_);
  posted_fn_ = std::move(fn);
  posted_ = true;
  posted_n_ = n;
  if (n == 0 || threads_ == 1) return;  // whole range runs in finish_range
  start_workers(&posted_fn_, n);
}

void ThreadPool::finish_range() {
  PLS_REQUIRE(posted_);
  posted_ = false;
  const std::size_t n = posted_n_;
  if (n == 0) return;
  if (threads_ == 1) {
    // Sequential fallback: the deferred range is the plain loop.
    PLS_TRACE_SPAN("pool.slice", 0);
    posted_fn_(0, 0, n);
    return;
  }
  join_workers(posted_fn_, n);
}

void ThreadPool::start_workers(const RangeFn* fn, std::size_t n) {
  {
    MutexLock lock(mu_);
    job_ = fn;
    job_n_ = n;
    remaining_ = threads_ - 1;
    first_error_ = nullptr;
    ++generation_;
  }
  start_cv_.notify_all();
}

void ThreadPool::join_workers(const RangeFn& fn, std::size_t n) {
  // The caller owns slice 0; its exception still waits for the workers so
  // the pool is quiescent before it propagates.
  std::exception_ptr own_error;
  const auto [begin, end] = slice(n, threads_, 0);
  if (begin < end) {
    try {
      PLS_TRACE_SPAN("pool.slice", 0);
      fn(0, begin, end);
    } catch (...) {
      own_error = std::current_exception();
    }
  }

  std::exception_ptr error;
  {
    MutexLock lock(mu_);
    while (remaining_ != 0) done_cv_.wait(lock);
    job_ = nullptr;
    error = own_error ? std::move(own_error) : std::move(first_error_);
    first_error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace pls::util
