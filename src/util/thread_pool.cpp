#include "util/thread_pool.hpp"

#include <algorithm>
#include <chrono>

#include "obs/trace.hpp"
#include "util/assert.hpp"
#include "util/failpoint.hpp"

namespace pls::util {

namespace {

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

ThreadPool::ThreadPool(unsigned threads)
    : threads_(threads), worker_stats_(threads) {
  PLS_REQUIRE(threads >= 1);
  workers_.reserve(threads_ - 1);
  for (unsigned w = 1; w < threads_; ++w)
    workers_.emplace_back([this, w] { worker_loop(w); });
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

unsigned ThreadPool::hardware_threads() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

std::size_t ThreadPool::default_chunk(std::size_t n) const noexcept {
  // ~16 chunks per slot: fine enough that one fat region rebalances across
  // the pool, coarse enough that the shared-cursor fetch_add stays noise.
  return std::max<std::size_t>(1, n / (std::size_t{threads_} * 16));
}

std::exception_ptr ThreadPool::run_stealing(unsigned worker, const RangeFn& fn,
                                            std::size_t n, std::size_t chunk,
                                            std::size_t chunk_count,
                                            const CancelToken* cancel,
                                            WorkerTotals& totals) noexcept {
  std::exception_ptr error;
  const std::uint64_t start = now_ns();
  while (true) {
    // Cooperative cancellation boundary: checked before every claim, so a
    // chunk already in flight completes (its per-index writes are whole)
    // but no further work is taken once the token trips.
    if (cancel != nullptr && cancel->cancelled()) break;
    // Relaxed: uniqueness of the claimed index is the only requirement; the
    // chunk's data dependencies are ordered by the job hand-off mutex.
    const std::size_t c = steal_next_.fetch_add(1, std::memory_order_relaxed);
    if (c >= chunk_count) break;
    const std::size_t begin = c * chunk;
    const std::size_t end = std::min(n, begin + chunk);
    try {
      // Span per executed chunk: a straggler's load shows as its chunks
      // migrating to peer slots instead of one long stuck slice.
      PLS_TRACE_SPAN("pool.chunk", worker);
      // Chaos site: a stalled chunk (Action::kDelay) must only move work to
      // peer slots and stretch deadlines — never change a verdict bit.
      PLS_FAILPOINT("pool.chunk");
      fn(worker, begin, end);
    } catch (...) {
      error = std::current_exception();
      break;  // stop claiming; peers drain the rest
    }
    ++totals.chunks;
    if (chunk_home(c, chunk_count, threads_) != worker) ++totals.steals;
  }
  totals.busy_ns += now_ns() - start;
  return error;
}

void ThreadPool::worker_loop(unsigned worker) {
  std::uint64_t seen = 0;
  while (true) {
    const RangeFn* fn = nullptr;
    std::size_t n = 0;
    bool stealing = false;
    std::size_t chunk = 1;
    std::size_t chunk_count = 0;
    const CancelToken* cancel = nullptr;
    {
      MutexLock lock(mu_);
      // Explicit wait loop (not the predicate-lambda overload): the guarded
      // reads stay in a scope the thread-safety analysis can tie to `lock`.
      while (!stopping_ && generation_ == seen) start_cv_.wait(lock);
      if (stopping_) return;
      seen = generation_;
      fn = job_;
      n = job_n_;
      stealing = job_stealing_;
      chunk = job_chunk_;
      chunk_count = job_chunk_count_;
      cancel = job_cancel_;
    }
    std::exception_ptr error;
    WorkerTotals totals;
    if (stealing) {
      error = run_stealing(worker, *fn, n, chunk, chunk_count, cancel, totals);
    } else {
      const auto [begin, end] = slice(n, threads_, worker);
      if (begin < end) {
        try {
          // Span per executed slice: exposes per-slot skew (a straggling
          // worker shows as one long "pool.slice" while its peers idle).
          PLS_TRACE_SPAN("pool.slice", worker);
          (*fn)(worker, begin, end);
        } catch (...) {
          error = std::current_exception();
        }
      }
    }
    {
      MutexLock lock(mu_);
      if (error && !first_error_) first_error_ = std::move(error);
      if (stealing) worker_stats_[worker] = totals;
      if (--remaining_ == 0) done_cv_.notify_one();
    }
  }
}

void ThreadPool::for_range(std::size_t n, const RangeFn& fn) {
  PLS_REQUIRE(!posted_);
  if (n == 0) return;
  if (threads_ == 1) {
    PLS_TRACE_SPAN("pool.slice", 0);
    fn(0, 0, n);
    return;
  }
  start_workers(&fn, n, /*stealing=*/false, 1, 0, nullptr);
  join_workers(fn, n);
}

void ThreadPool::for_range_stealing(std::size_t n, const RangeFn& fn,
                                    RangeOptions options) {
  PLS_REQUIRE(!posted_);
  if (n == 0) {
    last_stats_ = RangeStats{};
    last_stats_.worker_busy_ns.assign(threads_, 0);
    return;
  }
  const std::size_t chunk =
      options.chunk != 0 ? options.chunk : default_chunk(n);
  const std::size_t chunk_count = (n + chunk - 1) / chunk;
  if (threads_ == 1) {
    // Sequential fallback: one claimant drains the cursor in index order —
    // the same traversal as a plain loop, split into contiguous calls; no
    // threads spawned, no steals possible.
    steal_next_.store(0, std::memory_order_relaxed);
    WorkerTotals own;
    const std::exception_ptr error =
        run_stealing(0, fn, n, chunk, chunk_count, options.cancel, own);
    last_stats_.chunks = own.chunks;
    last_stats_.steals = own.steals;
    last_stats_.cancelled = !error && own.chunks != chunk_count;
    last_stats_.worker_busy_ns.assign(1, own.busy_ns);
    if (error) std::rethrow_exception(error);
    if (last_stats_.cancelled) throw CancelledError();
    return;
  }
  start_workers(&fn, n, /*stealing=*/true, chunk, chunk_count, options.cancel);
  join_workers_stealing(fn, n, chunk, chunk_count, options.cancel);
}

void ThreadPool::post_range(std::size_t n, RangeFn fn) {
  PLS_REQUIRE(!posted_);
  posted_fn_ = std::move(fn);
  posted_ = true;
  posted_stealing_ = false;
  posted_n_ = n;
  if (n == 0 || threads_ == 1) return;  // whole range runs in finish_range
  start_workers(&posted_fn_, n, /*stealing=*/false, 1, 0, nullptr);
}

void ThreadPool::post_range_stealing(std::size_t n, RangeFn fn,
                                     RangeOptions options) {
  PLS_REQUIRE(!posted_);
  posted_fn_ = std::move(fn);
  posted_ = true;
  posted_stealing_ = true;
  posted_n_ = n;
  posted_chunk_ = options.chunk != 0 ? options.chunk : default_chunk(n);
  posted_chunk_count_ = (n + posted_chunk_ - 1) / posted_chunk_;
  posted_cancel_ = options.cancel;
  if (n == 0 || threads_ == 1) return;  // whole range runs in finish_range
  start_workers(&posted_fn_, n, /*stealing=*/true, posted_chunk_,
                posted_chunk_count_, posted_cancel_);
}

void ThreadPool::finish_range() {
  PLS_REQUIRE(posted_);
  posted_ = false;
  const std::size_t n = posted_n_;
  if (posted_stealing_) {
    if (n == 0) {
      last_stats_ = RangeStats{};
      last_stats_.worker_busy_ns.assign(threads_, 0);
      return;
    }
    if (threads_ == 1) {
      steal_next_.store(0, std::memory_order_relaxed);
      WorkerTotals own;
      const std::exception_ptr error =
          run_stealing(0, posted_fn_, n, posted_chunk_, posted_chunk_count_,
                       posted_cancel_, own);
      last_stats_.chunks = own.chunks;
      last_stats_.steals = own.steals;
      last_stats_.cancelled = !error && own.chunks != posted_chunk_count_;
      last_stats_.worker_busy_ns.assign(1, own.busy_ns);
      if (error) std::rethrow_exception(error);
      if (last_stats_.cancelled) throw CancelledError();
      return;
    }
    join_workers_stealing(posted_fn_, n, posted_chunk_, posted_chunk_count_,
                          posted_cancel_);
    return;
  }
  if (n == 0) return;
  if (threads_ == 1) {
    // Sequential fallback: the deferred range is the plain loop.
    PLS_TRACE_SPAN("pool.slice", 0);
    posted_fn_(0, 0, n);
    return;
  }
  join_workers(posted_fn_, n);
}

void ThreadPool::start_workers(const RangeFn* fn, std::size_t n, bool stealing,
                               std::size_t chunk, std::size_t chunk_count,
                               const CancelToken* cancel) {
  // Reset the cursor before publishing the job: the generation_ bump under
  // mu_ is the release edge workers synchronize with, so no worker can read
  // the new job without also observing the reset cursor.
  if (stealing) steal_next_.store(0, std::memory_order_relaxed);
  {
    MutexLock lock(mu_);
    job_ = fn;
    job_n_ = n;
    job_stealing_ = stealing;
    job_chunk_ = chunk;
    job_chunk_count_ = chunk_count;
    job_cancel_ = cancel;
    if (stealing)
      std::fill(worker_stats_.begin(), worker_stats_.end(), WorkerTotals{});
    remaining_ = threads_ - 1;
    first_error_ = nullptr;
    ++generation_;
  }
  start_cv_.notify_all();
}

void ThreadPool::join_workers(const RangeFn& fn, std::size_t n) {
  // The caller owns slice 0; its exception still waits for the workers so
  // the pool is quiescent before it propagates.
  std::exception_ptr own_error;
  const auto [begin, end] = slice(n, threads_, 0);
  if (begin < end) {
    try {
      PLS_TRACE_SPAN("pool.slice", 0);
      fn(0, begin, end);
    } catch (...) {
      own_error = std::current_exception();
    }
  }

  std::exception_ptr error;
  {
    MutexLock lock(mu_);
    while (remaining_ != 0) done_cv_.wait(lock);
    job_ = nullptr;
    error = own_error ? std::move(own_error) : std::move(first_error_);
    first_error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::join_workers_stealing(const RangeFn& fn, std::size_t n,
                                       std::size_t chunk,
                                       std::size_t chunk_count,
                                       const CancelToken* cancel) {
  // The caller is claimant 0: it joins the chunk race instead of owning a
  // fixed slice, so a skewed prefix cannot pin the calling thread either.
  WorkerTotals own;
  const std::exception_ptr own_error =
      run_stealing(0, fn, n, chunk, chunk_count, cancel, own);

  std::exception_ptr error;
  bool cancelled = false;
  {
    MutexLock lock(mu_);
    while (remaining_ != 0) done_cv_.wait(lock);
    job_ = nullptr;
    job_cancel_ = nullptr;
    worker_stats_[0] = own;
    last_stats_.chunks = 0;
    last_stats_.steals = 0;
    last_stats_.worker_busy_ns.assign(threads_, 0);
    for (unsigned w = 0; w < threads_; ++w) {
      last_stats_.chunks += worker_stats_[w].chunks;
      last_stats_.steals += worker_stats_[w].steals;
      last_stats_.worker_busy_ns[w] = worker_stats_[w].busy_ns;
    }
    error = own_error ? std::move(own_error) : std::move(first_error_);
    first_error_ = nullptr;
    // The range was cancelled iff chunks were left unexecuted and nothing
    // threw.  A real exception always wins over cancellation — even when a
    // cancel raced the same job — so callers see what actually broke.  If
    // every chunk executed before the claimants observed the token, the
    // range is complete and cancellation is a no-op.
    cancelled = !error && last_stats_.chunks != chunk_count;
    last_stats_.cancelled = cancelled;
  }
  if (error) std::rethrow_exception(error);
  if (cancelled) throw CancelledError();
}

}  // namespace pls::util
