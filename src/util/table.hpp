// Aligned-column table printing for the benchmark harness.
//
// Every experiment binary prints its results as a paper-style table; this
// helper keeps the output format identical across binaries so EXPERIMENTS.md
// can quote it directly.
#pragma once

#include <iosfwd>
#include <string>
#include <type_traits>
#include <vector>

namespace pls::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append one row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats arithmetic cells with to_string-like rules.
  template <typename... Cells>
  void row(const Cells&... cells) {
    add_row({format_cell(cells)...});
  }

  void print(std::ostream& out) const;

  std::size_t num_rows() const noexcept { return rows_.size(); }

 private:
  template <typename T>
  static std::string format_cell(const T& value) {
    if constexpr (std::is_convertible_v<T, std::string>) {
      return std::string(value);
    } else if constexpr (std::is_floating_point_v<T>) {
      return format_double(static_cast<double>(value));
    } else {
      return std::to_string(value);
    }
  }
  static std::string format_double(double v);

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pls::util
