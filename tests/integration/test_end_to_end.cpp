// End-to-end flows across modules: construct → mark → verify → corrupt →
// detect → (self-stab) recover, plus the universal scheme and the strict
// adapter driven through the whole catalog.
#include <gtest/gtest.h>

#include "pls/strict_adapter.hpp"
#include "pls/universal.hpp"
#include "schemes/registry.hpp"
#include "schemes/spanning_tree.hpp"
#include "selfstab/harness.hpp"
#include "sensitivity/analysis.hpp"
#include "sensitivity/counterexamples.hpp"
#include "testing/helpers.hpp"

namespace pls {
namespace {

using pls::testing::share;

std::shared_ptr<const graph::Graph> instance_for(
    const schemes::SchemeEntry& entry, util::Rng& rng) {
  if (entry.needs_weighted)
    return share(
        graph::reweight_random(graph::random_connected(14, 10, rng), rng));
  if (entry.needs_bipartite) return share(graph::grid(3, 5));
  return share(graph::random_connected(14, 10, rng));
}

TEST(EndToEnd, MarkVerifyCorruptDetectForWholeCatalog) {
  util::Rng rng(101);
  for (const schemes::SchemeEntry& entry : schemes::standard_catalog()) {
    auto g = instance_for(entry, rng);
    const local::Configuration legal = entry.language->sample_legal(g, rng);

    // 1. The prover's certificates convince everyone.
    const core::Labeling lab = entry.scheme->mark(legal);
    EXPECT_TRUE(core::run_verifier(*entry.scheme, legal, lab).all_accept())
        << entry.label;

    // 2. Corrupting states while keeping the old certificates is detected
    // whenever the result is illegal.
    for (int trial = 0; trial < 5; ++trial) {
      const auto corrupted = local::corrupt_random_states(legal, 2, rng);
      if (entry.language->contains(corrupted.config)) continue;
      EXPECT_GE(
          core::run_verifier(*entry.scheme, corrupted.config, lab).rejections(),
          1u)
          << entry.label;
    }
  }
}

TEST(EndToEnd, UniversalSchemeCoversEveryCatalogLanguage) {
  util::Rng rng(103);
  for (const schemes::SchemeEntry& entry : schemes::standard_catalog()) {
    // Keep instances small: universal certificates are O(n^2).
    std::shared_ptr<const graph::Graph> g;
    if (entry.needs_weighted) {
      g = share(graph::reweight_random(graph::cycle(7), rng));
    } else if (entry.needs_bipartite) {
      g = share(graph::cycle(8));
    } else {
      g = share(graph::cycle(7));
    }
    const core::UniversalScheme universal(*entry.language);
    const local::Configuration legal = entry.language->sample_legal(g, rng);
    EXPECT_TRUE(core::completeness_holds(universal, legal)) << entry.label;

    for (int trial = 0; trial < 4; ++trial) {
      const auto corrupted = local::corrupt_random_states(legal, 1, rng);
      if (entry.language->contains(corrupted.config)) continue;
      const core::Labeling honest = universal.mark(legal);
      EXPECT_GE(core::run_verifier(universal, corrupted.config, honest)
                    .rejections(),
                1u)
          << entry.label;
      break;
    }
  }
}

TEST(EndToEnd, StrictAdapterPreservesContractAcrossCatalog) {
  util::Rng rng(107);
  for (const schemes::SchemeEntry& entry : schemes::standard_catalog()) {
    if (entry.scheme->visibility() != local::Visibility::kExtended) continue;
    const core::StrictAdapter strict(*entry.scheme);
    auto g = instance_for(entry, rng);
    const local::Configuration legal = entry.language->sample_legal(g, rng);
    EXPECT_TRUE(core::completeness_holds(strict, legal)) << entry.label;
    EXPECT_GE(strict.mark(legal).max_bits(),
              entry.scheme->mark(legal).max_bits())
        << entry.label;
  }
}

TEST(EndToEnd, SelfStabilizationUsesPlsDetection) {
  // The full loop the paper motivates: legitimate state -> transient faults
  // -> local detection (1 round) -> recovery -> silence.
  util::Rng rng(109);
  const graph::Graph g = graph::grid(4, 5);
  const selfstab::FaultExperiment result =
      selfstab::run_fault_experiment(g, 4, rng);
  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(result.legitimate_after);
  EXPECT_TRUE(result.silent_after);
}

TEST(EndToEnd, SensitivityContrastStlVersusStp) {
  // The encoding of the same task decides how many nodes see a fault: the
  // stp counterexample pins rejections at 2 for arbitrarily large distance,
  // while stl corruptions are rejected in proportion to their size.
  const sensitivity::CounterexampleResult stp =
      sensitivity::stp_path_counterexample(32);
  EXPECT_EQ(stp.rejections, 2u);
  EXPECT_GE(stp.distance_lower_bound, 16u);

  const schemes::StlLanguage stl_language;
  const schemes::StlScheme stl_scheme(stl_language);
  util::Rng rng(113);
  auto g = share(graph::random_connected(24, 12, rng));
  const auto legal = stl_language.sample_legal(g, rng);
  const sensitivity::SensitivityRow row = sensitivity::measure(
      stl_scheme, legal, sensitivity::corrupt_adjacency_list, 5, rng);
  EXPECT_GE(row.min_rejections, 5u);
}

}  // namespace
}  // namespace pls
