// Second integration layer: pieces that span three or more modules at once —
// universal over weighted languages, crossing over stl, alarms after
// adversarial attacks, conjunctions under the adversary suite.
#include <gtest/gtest.h>

#include "pls/compose.hpp"
#include "pls/crossing.hpp"
#include "pls/strict_adapter.hpp"
#include "pls/universal.hpp"
#include "schemes/lcl.hpp"
#include "schemes/mst.hpp"
#include "schemes/spanning_tree.hpp"
#include "selfstab/alarm.hpp"
#include "testing/helpers.hpp"

namespace pls {
namespace {

using pls::testing::share;

TEST(CrossModule, UniversalOverMstIsCompleteAndSized) {
  // The universal scheme must handle weighted languages: the weight table is
  // part of the encoding and the verifier checks incident weight multisets.
  const schemes::MstLanguage language;
  const core::UniversalScheme universal(language);
  util::Rng rng(3);
  auto g = share(graph::reweight_random(graph::cycle(8), rng));
  const auto cfg = language.sample_legal(g, rng);
  testing::expect_complete(universal, cfg);

  // Replaying the certificates on a differently-weighted copy fails: some
  // node's incident weight multiset no longer matches.
  auto g2 = share(graph::reweight_random(graph::cycle(8), rng));
  if (!(g2->edges()[0].w == g->edges()[0].w)) {
    const auto cfg2 = language.sample_legal(g2, rng);
    const core::Labeling honest = universal.mark(cfg);
    EXPECT_GE(core::run_verifier(universal, cfg2, honest).rejections(), 1u);
  }
}

TEST(CrossModule, CrossingFamilyOverStl) {
  // Spanning trees rooted at different nodes, spliced across the middle of a
  // path: same underlying tree (the path itself), different orientations in
  // the certificates.  Splices keep the same edge set, so they stay legal —
  // the crossing engine must report them as such (a sanity check that
  // "illegal" is decided by the language, not assumed).
  const schemes::StlLanguage language;
  const schemes::StlScheme inner(language);
  const core::StrictAdapter scheme(inner);
  const std::size_t n = 10;
  auto g = share(graph::path(n));
  std::vector<bool> mask(g->m(), true);
  std::vector<local::Configuration> configs;
  configs.push_back(language.make_from_mask(g, mask));
  configs.push_back(language.make_from_mask(g, mask));
  std::vector<bool> left(n, false);
  for (std::size_t i = 0; i < n / 2; ++i) left[i] = true;
  const core::CrossingFamily family =
      core::make_family(scheme, std::move(configs), left);
  const core::PairProbe probe = core::probe_pair(scheme, family, 0, 1, 1000);
  EXPECT_FALSE(probe.spliced_illegal);  // identical states: still the tree
}

TEST(CrossModule, AttackThenAlarmLocatesAWitness) {
  const schemes::StlLanguage language;
  const schemes::StlScheme scheme(language);
  util::Rng rng(7);
  auto g = share(graph::random_connected(18, 9, rng));
  const auto legal = language.sample_legal(g, rng);

  // Corrupt, attack (adversary picks certificates), then converge the alarm.
  for (int trial = 0; trial < 6; ++trial) {
    const auto corrupted = local::corrupt_random_states(legal, 2, rng);
    if (language.contains(corrupted.config)) continue;
    const core::AttackReport report =
        core::attack(scheme, corrupted.config, rng);
    ASSERT_GE(report.min_rejections, 1u);
    const core::Verdict verdict =
        core::run_verifier(scheme, corrupted.config, report.best_labeling);
    const selfstab::AlarmResult alarm =
        selfstab::converge_alarm(*g, verdict.rejected());
    EXPECT_TRUE(alarm.alarm);
    break;
  }
}

TEST(CrossModule, ConjunctionUnderFullAttackSuite) {
  const schemes::DominatingSetLanguage domset;
  const schemes::MisLanguage mis;
  const core::ConjunctionLanguage conjunction(domset, mis, mis);
  const schemes::DominatingSetScheme s1(domset);
  const schemes::MisScheme s2(mis);
  const core::ConjunctionScheme scheme(conjunction, s1, s2);

  auto g = share(graph::grid(3, 5));
  // Independent but not dominating: one corner member only.
  std::vector<local::State> states(g->n(),
                                   schemes::MisLanguage::encode_member(false));
  states[0] = schemes::MisLanguage::encode_member(true);
  const local::Configuration cfg(g, states);
  ASSERT_FALSE(conjunction.contains(cfg));
  testing::expect_sound(scheme, cfg, 11);
}

TEST(CrossModule, StrictAdapterComposesWithConjunction) {
  // strict(conjunction(stl, stl)): three wrappers deep, still correct.
  const schemes::StlLanguage stl;
  const core::ConjunctionLanguage both(stl, stl, stl);
  const schemes::StlScheme a(stl);
  const schemes::StlScheme b(stl);
  const core::ConjunctionScheme composed(both, a, b);
  const core::StrictAdapter strict(composed);

  util::Rng rng(13);
  auto g = share(graph::grid(3, 4));
  const auto cfg = both.sample_legal(g, rng);
  testing::expect_complete(strict, cfg);

  std::vector<bool> all(g->m(), true);
  const schemes::StlLanguage helper;
  const auto illegal = helper.make_from_mask(g, all);
  if (!both.contains(illegal)) testing::expect_sound(strict, illegal, 17);
}

}  // namespace
}  // namespace pls
