// Shared fixtures for the scheme tests: instance families and assertion
// helpers used across the suite.
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "pls/adversary.hpp"
#include "pls/engine.hpp"

namespace pls::testing {

inline std::shared_ptr<const graph::Graph> share(graph::Graph g) {
  return std::make_shared<const graph::Graph>(std::move(g));
}

/// The standard unweighted instance family used by completeness sweeps.
inline std::vector<std::shared_ptr<const graph::Graph>> unweighted_family(
    std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::shared_ptr<const graph::Graph>> out;
  out.push_back(share(graph::path(1)));
  out.push_back(share(graph::path(2)));
  out.push_back(share(graph::path(9)));
  out.push_back(share(graph::cycle(8)));
  out.push_back(share(graph::cycle(9)));
  out.push_back(share(graph::star(10)));
  out.push_back(share(graph::grid(4, 5)));
  out.push_back(share(graph::complete(6)));
  out.push_back(share(graph::balanced_binary_tree(15)));
  out.push_back(share(graph::random_tree(24, rng)));
  out.push_back(share(graph::random_connected(30, 15, rng)));
  out.push_back(share(graph::relabel_random(graph::grid(3, 4), rng)));
  return out;
}

/// Weighted (distinct weights, connected) instances for MST.
inline std::vector<std::shared_ptr<const graph::Graph>> weighted_family(
    std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::shared_ptr<const graph::Graph>> out;
  out.push_back(share(graph::reweight_random(graph::path(2), rng)));
  out.push_back(share(graph::reweight_random(graph::path(9), rng)));
  out.push_back(share(graph::reweight_random(graph::cycle(10), rng)));
  out.push_back(share(graph::reweight_random(graph::grid(4, 4), rng)));
  out.push_back(share(graph::reweight_random(graph::complete(7), rng)));
  out.push_back(
      share(graph::reweight_random(graph::random_connected(25, 20, rng), rng)));
  return out;
}

/// Asserts the scheme's full contract on a legal configuration:
/// marker certificates verify everywhere and respect the size bound.
inline void expect_complete(const core::Scheme& scheme,
                            const local::Configuration& cfg) {
  ASSERT_TRUE(scheme.language().contains(cfg));
  const core::Labeling lab = scheme.mark(cfg);
  const core::Verdict verdict = core::run_verifier(scheme, cfg, lab);
  EXPECT_TRUE(verdict.all_accept())
      << scheme.name() << " rejected a legal configuration at "
      << verdict.rejections() << " nodes on " << cfg.graph().describe();
  EXPECT_LE(lab.max_bits(),
            scheme.proof_size_bound(cfg.n(), cfg.max_state_bits()))
      << scheme.name() << " exceeded its proof-size bound on "
      << cfg.graph().describe();
}

/// Asserts soundness against the adversary suite on an illegal configuration.
inline void expect_sound(const core::Scheme& scheme,
                         const local::Configuration& cfg, std::uint64_t seed,
                         const core::AttackOptions& options = {}) {
  ASSERT_FALSE(scheme.language().contains(cfg));
  util::Rng rng(seed);
  const core::AttackReport report = core::attack(scheme, cfg, rng, options);
  EXPECT_GE(report.min_rejections, 1u)
      << scheme.name() << " was fooled by strategy '" << report.best_strategy
      << "' on " << cfg.graph().describe();
}

}  // namespace pls::testing
