// BatchVerifier: the pipelined batch front end must be bit-identical to
// per-labeling sessions and to the naive reference engine at every thread
// count — including the stage-2 hazard the pipeline introduces: the parse
// cache of labeling i+1 is filled WHILE the sweep of labeling i runs, so a
// stale or crossed parse would be an ordering bug, not a logic bug.  These
// tests pin both down, plus the satellite regression: a parse cached for one
// labeling must be unreachable from any other labeling's sweep, by
// construction (double-buffered ParsedLabeling, rebuilt per labeling).
#include "radius/batch.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "radius/fragment_spread.hpp"
#include "radius/spread.hpp"
#include "schemes/registry.hpp"
#include "schemes/spanning_tree.hpp"
#include "testing/helpers.hpp"

namespace pls::radius {
namespace {

using core::Labeling;
using core::Verdict;
using pls::testing::share;

std::shared_ptr<const graph::Graph> graph_for(
    const schemes::SchemeEntry& entry, util::Rng& rng) {
  if (entry.needs_weighted)
    return share(
        graph::reweight_random(graph::random_connected(16, 10, rng), rng));
  if (entry.needs_bipartite) return share(graph::grid(2, 8));
  return share(graph::random_connected(16, 10, rng));
}

Labeling random_labeling(std::size_t n, util::Rng& rng) {
  Labeling lab;
  for (std::size_t v = 0; v < n; ++v)
    lab.certs.push_back(local::random_state(rng.below(96), rng));
  return lab;
}

void expect_batch_equals_baselines(const core::Scheme& scheme,
                                   const local::Configuration& cfg,
                                   unsigned t,
                                   std::span<const Labeling> labs,
                                   const std::string& label) {
  std::vector<Verdict> oracle;
  oracle.reserve(labs.size());
  for (const Labeling& lab : labs)
    oracle.push_back(run_verifier_t_baseline(scheme, cfg, lab, t));

  for (const unsigned threads : {1u, 2u, util::ThreadPool::hardware_threads()}) {
    BatchOptions options;
    options.threads = threads;
    BatchVerifier batch(scheme, cfg, t, options);
    const std::vector<Verdict> got = batch.run(labs);
    ASSERT_EQ(got.size(), labs.size());
    for (std::size_t i = 0; i < labs.size(); ++i)
      EXPECT_EQ(oracle[i].accept(), got[i].accept())
          << label << " labeling " << i << " threads " << threads;
  }
}

// Registry-wide: every scheme, honest + garbage batches, all thread counts.
TEST(BatchVerifier, RegistryBatchesMatchPerLabelingBaseline) {
  util::Rng rng(50901);
  for (const schemes::SchemeEntry& entry : schemes::standard_catalog()) {
    auto g = graph_for(entry, rng);
    const local::Configuration cfg = entry.language->sample_legal(g, rng);
    std::vector<Labeling> labs;
    labs.push_back(entry.scheme->mark(cfg));
    for (int i = 0; i < 3; ++i) labs.push_back(random_labeling(cfg.n(), rng));
    expect_batch_equals_baselines(*entry.scheme, cfg, 1, labs,
                                  entry.label + "/plain");

    const FragmentSpreadScheme spread(*entry.scheme, 2);
    std::vector<Labeling> spread_labs;
    spread_labs.push_back(spread.mark(cfg));
    for (int i = 0; i < 3; ++i)
      spread_labs.push_back(random_labeling(cfg.n(), rng));
    expect_batch_equals_baselines(spread, cfg, 2, spread_labs,
                                  entry.label + "/spread");
  }
}

// The satellite regression: certificates SWAP between consecutive labelings
// of a batch.  If any stage-2 parse leaked across the pipeline's double
// buffer (labeling i's sweep reading labeling i+1's half-built cache, or a
// cache surviving a labeling change), these verdicts would diverge from the
// per-labeling oracle — nodes would be judged on another labeling's parse.
TEST(BatchVerifier, SwappedCertificatesAcrossBatchNeverReuseStaleParses) {
  const schemes::StpLanguage language;
  const schemes::StpScheme base(language);
  const SpreadScheme spread(base, 4);
  util::Rng rng(50902);
  auto g = share(graph::random_connected(22, 14, rng));
  const local::Configuration cfg = language.sample_legal(g, rng);

  const Labeling honest = spread.mark(cfg);
  std::vector<Labeling> labs;
  labs.push_back(honest);
  // Alternate: full rotation, selective swaps, back to honest — adjacent
  // labelings differ exactly where a stale parse would bite.
  Labeling rotated = honest;
  std::rotate(rotated.certs.begin(), rotated.certs.begin() + 1,
              rotated.certs.end());
  labs.push_back(rotated);
  labs.push_back(honest);
  Labeling swapped = honest;
  for (std::size_t v = 0; v + 1 < swapped.certs.size(); v += 2)
    std::swap(swapped.certs[v], swapped.certs[v + 1]);
  labs.push_back(swapped);
  labs.push_back(honest);
  Labeling malformed = honest;
  malformed.certs[3] = local::Certificate{};
  labs.push_back(malformed);
  labs.push_back(honest);

  expect_batch_equals_baselines(spread, cfg, 4, labs, "swap-batch");
}

// run_one interleaved with run(): the single-labeling path shares the atlas
// and buffers with the batch path; interleaving must not leak state either.
TEST(BatchVerifier, RunOneInterleavedWithBatches) {
  const schemes::StpLanguage language;
  const schemes::StpScheme base(language);
  const SpreadScheme spread(base, 2);
  util::Rng rng(50903);
  auto g = share(graph::grid(4, 5));
  const local::Configuration cfg = language.sample_legal(g, rng);
  const Labeling honest = spread.mark(cfg);

  BatchOptions options;
  options.threads = 2;
  BatchVerifier batch(spread, cfg, 2, options);
  for (int round = 0; round < 3; ++round) {
    Labeling tampered = honest;
    tampered.certs[rng.below(cfg.n())] = local::random_state(24, rng);
    EXPECT_EQ(batch.run_one(tampered).accept(),
              run_verifier_t_baseline(spread, cfg, tampered, 2).accept());
    std::vector<Labeling> labs = {honest, tampered, honest};
    const std::vector<Verdict> got = batch.run(labs);
    for (std::size_t i = 0; i < labs.size(); ++i)
      EXPECT_EQ(got[i].accept(),
                run_verifier_t_baseline(spread, cfg, labs[i], 2).accept());
  }
  // Geometry was shared across all of it: exactly one build per block.
  EXPECT_GT(batch.atlas().stats().hits, 0u);
}

TEST(BatchVerifier, EmptyBatchAndInputValidation) {
  const schemes::StpLanguage language;
  const schemes::StpScheme base(language);
  const SpreadScheme spread(base, 4);
  auto g = share(graph::path(5));
  const auto cfg = language.make_tree(g, 0);

  BatchVerifier batch(spread, cfg, 4);
  EXPECT_TRUE(batch.run({}).empty());
  Labeling wrong;
  wrong.certs.assign(2, local::Certificate{});
  std::vector<Labeling> labs = {wrong};
  EXPECT_THROW(batch.run(labs), std::logic_error);
  EXPECT_THROW(BatchVerifier(spread, cfg, 0), std::logic_error);
  EXPECT_THROW(BatchVerifier(spread, cfg, 2), std::logic_error);
}

// The throughput claim's correctness half, in miniature: a batch over one
// shared atlas equals the rebuild-every-run loop (budget-0 atlas) verdict
// for verdict.
TEST(BatchVerifier, WarmAtlasEqualsRebuildLoop) {
  const schemes::StpLanguage language;
  const schemes::StpScheme base(language);
  const SpreadScheme spread(base, 4);
  util::Rng rng(50904);
  auto g = share(graph::random_connected(28, 16, rng));
  const local::Configuration cfg = language.sample_legal(g, rng);

  std::vector<Labeling> labs;
  labs.push_back(spread.mark(cfg));
  for (int i = 0; i < 5; ++i) {
    Labeling next = labs.back();
    next.certs[rng.below(cfg.n())] = local::random_state(rng.below(48), rng);
    labs.push_back(std::move(next));
  }

  BatchOptions warm_options;
  warm_options.threads = 1;
  BatchVerifier warm(spread, cfg, 4, warm_options);

  BatchOptions cold_options;
  cold_options.threads = 1;
  cold_options.atlas = std::make_shared<GeometryAtlas>(AtlasOptions{0, 16});
  BatchVerifier cold(spread, cfg, 4, cold_options);

  const std::vector<Verdict> warm_verdicts = warm.run(labs);
  for (std::size_t i = 0; i < labs.size(); ++i)
    EXPECT_EQ(warm_verdicts[i].accept(), cold.run_one(labs[i]).accept());

  EXPECT_GT(warm.atlas().stats().hits, 0u);
  EXPECT_EQ(cold.atlas().stats().hits, 0u);
  EXPECT_EQ(cold.atlas().stats().bytes_in_use, 0u);
}

/// A deliberately skewed instance: a dense chorded ring on the lowest
/// `core` indices (fat radius-t balls, all inside the static split's first
/// slice) with `chains` sparse tails of `chain_len` nodes hanging off it
/// (tiny balls).  The shape the work-stealing sweep exists for.
graph::Graph skewed_core_chain_graph(std::size_t core, std::size_t chains,
                                     std::size_t chain_len) {
  graph::Graph::Builder b;
  const std::size_t n = core + chains * chain_len;
  for (std::size_t v = 0; v < n; ++v)
    b.add_node(static_cast<graph::RawId>(v));
  for (std::size_t v = 0; v < core; ++v)
    b.add_edge(static_cast<graph::NodeIndex>(v),
               static_cast<graph::NodeIndex>((v + 1) % core));
  // Deterministic chords (strides coprime-ish to the ring, distinct from
  // each other's complements) — dense without duplicate edges.
  for (const std::size_t stride : {std::size_t{5}, std::size_t{11}}) {
    for (std::size_t v = 0; v < core; ++v)
      b.add_edge(static_cast<graph::NodeIndex>(v),
                 static_cast<graph::NodeIndex>((v + stride) % core));
  }
  std::size_t next = core;
  for (std::size_t c = 0; c < chains; ++c) {
    auto prev = static_cast<graph::NodeIndex>(c % core);
    for (std::size_t i = 0; i < chain_len; ++i) {
      const auto v = static_cast<graph::NodeIndex>(next++);
      b.add_edge(prev, v);
      prev = v;
    }
  }
  return std::move(b).build();
}

// The scheduler gate: on the skewed instance, the static and work-stealing
// sweeps must produce bit-identical verdicts at threads {1, 2, hw} — for
// full pipelined batches and for the delta path's dirty re-sweep — even
// though the stealing assignment is nondeterministic.
TEST(BatchVerifier, SkewedInstanceIdenticalAcrossSchedulersAndThreads) {
  const schemes::StpLanguage language;
  const schemes::StpScheme base(language);
  const SpreadScheme spread(base, 4);
  util::Rng rng(50905);
  auto g = share(skewed_core_chain_graph(48, 12, 24));
  const local::Configuration cfg = language.sample_legal(g, rng);

  std::vector<Labeling> labs;
  labs.push_back(spread.mark(cfg));
  Labeling tampered_core = labs[0];
  tampered_core.certs[20] = local::random_state(32, rng);
  labs.push_back(tampered_core);
  labs.push_back(random_labeling(cfg.n(), rng));

  std::vector<Verdict> oracle;
  for (const Labeling& lab : labs)
    oracle.push_back(run_verifier_t_baseline(spread, cfg, lab, 4));

  // One fixed delta on top of the batch's last labeling: a core cert and a
  // chain-tail cert flip back to honest.
  const auto tail = static_cast<graph::NodeIndex>(cfg.n() - 1);
  Labeling delta_next = labs.back();
  delta_next.certs[10] = labs[0].certs[10];
  delta_next.certs[tail] = labs[0].certs[tail];
  const Verdict delta_oracle =
      run_verifier_t_baseline(spread, cfg, delta_next, 4);

  for (const unsigned threads :
       {1u, 2u, util::ThreadPool::hardware_threads()}) {
    for (const BatchOptions::SweepMode mode :
         {BatchOptions::SweepMode::kStatic,
          BatchOptions::SweepMode::kStealing}) {
      BatchOptions options;
      options.threads = threads;
      options.sweep = mode;
      BatchVerifier batch(spread, cfg, 4, options);
      const std::vector<Verdict> got = batch.run(labs);
      ASSERT_EQ(got.size(), labs.size());
      const bool stealing = mode == BatchOptions::SweepMode::kStealing;
      for (std::size_t i = 0; i < labs.size(); ++i)
        EXPECT_EQ(oracle[i].accept(), got[i].accept())
            << "labeling " << i << " threads " << threads << " stealing "
            << stealing;
      LabelingDelta delta;
      delta.touched = {10, tail};
      EXPECT_EQ(batch.run_delta(delta_next, delta).accept(),
                delta_oracle.accept())
          << "delta threads " << threads << " stealing " << stealing;
    }
  }
}

/// An aliased twin of `src`: one contiguous byte buffer (a stand-in for a
/// wire frame) plus a labeling whose certificates alias into it zero-copy.
struct AliasedCopy {
  Labeling lab;
  std::shared_ptr<std::vector<std::uint8_t>> buffer;
};

AliasedCopy alias_of(const Labeling& src) {
  AliasedCopy out;
  std::size_t total = 0;
  for (const local::Certificate& c : src.certs)
    total += (c.bit_size() + 7) / 8;
  out.buffer = std::make_shared<std::vector<std::uint8_t>>(total);
  std::size_t off = 0;
  for (const local::Certificate& c : src.certs) {
    const std::size_t nbytes = (c.bit_size() + 7) / 8;
    if (nbytes > 0) std::copy_n(c.data(), nbytes, out.buffer->data() + off);
    out.lab.certs.push_back(
        local::Certificate::aliasing(out.buffer->data() + off, c.bit_size()));
    off += nbytes;
  }
  return out;
}

// The zero-copy pin contract, producer side: aliased labelings with their
// buffers passed as pins are bit-identical to owned ones, and the producer
// may drop every handle — labelings AND buffers — the moment run() returns.
// The overlap window (stage 2 of labeling i+1 during the sweep of labeling
// i) is defensively pinned: the engine's parse halves hold the buffers, so
// the post-run delta below reads no freed memory (the ASan job proves it).
TEST(BatchVerifier, PinnedAliasedLabelingsMatchOwnedAndOutliveTheProducer) {
  const schemes::StpLanguage language;
  const schemes::StpScheme base(language);
  const SpreadScheme spread(base, 2);
  util::Rng rng(50906);
  auto g = share(graph::random_connected(18, 10, rng));
  const local::Configuration cfg = language.sample_legal(g, rng);
  const Labeling honest = spread.mark(cfg);
  Labeling tampered = honest;
  tampered.certs[5] = local::random_state(32, rng);
  const std::vector<Labeling> owned = {honest, tampered, honest};

  Labeling delta_next = honest;
  delta_next.certs[2] = local::random_state(24, rng);
  LabelingDelta delta;
  delta.touched = {2};
  const Verdict delta_oracle =
      run_verifier_t_baseline(spread, cfg, delta_next, 2);

  for (const unsigned threads : {1u, 2u}) {
    BatchOptions options;
    options.threads = threads;
    BatchVerifier batch(spread, cfg, 2, options);
    {
      std::vector<Labeling> aliased;
      std::vector<BufferPin> pins;
      for (const Labeling& lab : owned) {
        AliasedCopy copy = alias_of(lab);
        aliased.push_back(std::move(copy.lab));
        pins.push_back(std::move(copy.buffer));
      }
      const std::vector<Verdict> got = batch.run(aliased, pins);
      ASSERT_EQ(got.size(), owned.size());
      for (std::size_t i = 0; i < owned.size(); ++i)
        EXPECT_EQ(got[i].accept(),
                  run_verifier_t_baseline(spread, cfg, owned[i], 2).accept())
            << "labeling " << i << " threads " << threads;
      // Producer teardown: aliases and buffer handles die here; only the
      // pins inside the verifier keep the bytes alive.
    }
    EXPECT_EQ(batch.run_delta(delta_next, delta).accept(),
              delta_oracle.accept())
        << "threads " << threads;
  }
}

// The other direction of the contract: once run_one has returned, the
// engine holds no raw-byte dependence on the labeling's buffer — the
// producer may scribble over it, and resident state (parse cache, verdict
// bytes, delta base) is unaffected.
TEST(BatchVerifier, BufferMutationAfterRunReturnsCannotChangeVerdicts) {
  const schemes::StpLanguage language;
  const schemes::StpScheme base(language);
  const SpreadScheme spread(base, 2);
  util::Rng rng(50907);
  auto g = share(graph::random_connected(18, 10, rng));
  const local::Configuration cfg = language.sample_legal(g, rng);
  const Labeling honest = spread.mark(cfg);

  Labeling delta_next = honest;
  delta_next.certs[2] = local::random_state(24, rng);
  LabelingDelta delta;
  delta.touched = {2};

  BatchOptions options;
  options.threads = 2;
  BatchVerifier batch(spread, cfg, 2, options);

  AliasedCopy copy = alias_of(honest);
  const Verdict first = batch.run_one(copy.lab, copy.buffer);
  EXPECT_EQ(first.accept(),
            run_verifier_t_baseline(spread, cfg, honest, 2).accept());

  copy.lab = Labeling{};  // the aliases go first...
  for (std::uint8_t& byte : *copy.buffer) byte = 0xFF;  // ...then the bytes

  EXPECT_EQ(batch.run_delta(delta_next, delta).accept(),
            run_verifier_t_baseline(spread, cfg, delta_next, 2).accept());
  EXPECT_EQ(batch.run_one(honest).accept(),
            run_verifier_t_baseline(spread, cfg, honest, 2).accept());
}

}  // namespace
}  // namespace pls::radius
