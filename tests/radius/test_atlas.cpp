// GeometryAtlas: the cached geometry must be indistinguishable from a fresh
// BallBuilder build — for every center, radius, graph, and sharing pattern —
// while the byte budget and LRU accounting hold at every step.
#include "radius/atlas.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "radius/sketch.hpp"

#include "graph/generators.hpp"
#include "radius/session.hpp"
#include "radius/spread.hpp"
#include "schemes/spanning_tree.hpp"
#include "testing/helpers.hpp"

namespace pls::radius {
namespace {

using pls::testing::share;

local::Configuration trivial_config(std::shared_ptr<const graph::Graph> g) {
  std::vector<local::State> states(g->n(), local::State{});
  return local::Configuration(std::move(g), std::move(states));
}

core::Labeling numbered_labeling(std::size_t n) {
  core::Labeling lab;
  for (std::size_t v = 0; v < n; ++v) {
    util::BitWriter w;
    w.write_uint(v, 16);
    lab.certs.push_back(local::Certificate::from_writer(std::move(w)));
  }
  return lab;
}

/// Structural equality of a bound view against the BallBuilder oracle.
void expect_same_ball(const BallView& a, const BallView& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.radius(), b.radius());
  EXPECT_EQ(a.whole_component(), b.whole_component());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const BallMember& ma = a.members()[i];
    const BallMember& mb = b.members()[i];
    EXPECT_EQ(ma.node, mb.node);
    EXPECT_EQ(ma.dist, mb.dist);
    EXPECT_EQ(ma.edge_weight, mb.edge_weight);
    EXPECT_EQ(ma.cert, mb.cert);
    EXPECT_EQ(ma.state, mb.state);
    EXPECT_EQ(ma.id, mb.id);
    EXPECT_EQ(ma.id_visible, mb.id_visible);
  }
  for (unsigned r = 0; r <= a.radius(); ++r)
    ASSERT_EQ(a.layer(r).size(), b.layer(r).size()) << "layer " << r;
  for (std::uint32_t i = 0; i < a.size(); ++i) {
    const auto na = a.neighbors_of(i);
    const auto nb = b.neighbors_of(i);
    ASSERT_EQ(na.size(), nb.size()) << "member " << i;
    for (std::size_t j = 0; j < na.size(); ++j) EXPECT_EQ(na[j], nb[j]);
  }
}

void expect_atlas_matches_builder(GeometryAtlas& atlas,
                                  const local::Configuration& cfg,
                                  const core::Labeling& lab, unsigned t,
                                  local::Visibility mode) {
  BallBuilder builder;
  BallView bound;
  for (graph::NodeIndex v = 0; v < cfg.n(); ++v) {
    const auto block = atlas.block(cfg.graph(), t, v);
    bound.bind(block->ball(v, t), cfg, lab, mode);
    expect_same_ball(bound, builder.build(cfg, lab, v, t, mode));
  }
}

TEST(GeometryAtlas, MatchesBuilderOnRandomGraphs) {
  util::Rng rng(7001);
  for (int instance = 0; instance < 3; ++instance) {
    auto g = share(graph::random_connected(30 + 7 * instance, 20, rng));
    const auto cfg = trivial_config(g);
    const auto lab = numbered_labeling(g->n());
    for (const unsigned t : {1u, 2u, 4u, 9u}) {
      GeometryAtlas atlas;
      expect_atlas_matches_builder(atlas, cfg, lab, t,
                                   local::Visibility::kExtended);
      expect_atlas_matches_builder(atlas, cfg, lab, t,
                                   local::Visibility::kCertificatesOnly);
    }
  }
}

// The prefix property: a block built at radius t serves every t' < t with
// geometry equal to a direct radius-t' build (members are a prefix, boundary
// rows are cut at the layer partition, whole_component is re-derived).
TEST(GeometryAtlas, LargerRadiusServesSmallerByPrefix) {
  util::Rng rng(7002);
  auto g = share(graph::random_connected(40, 28, rng));
  const auto cfg = trivial_config(g);
  const auto lab = numbered_labeling(g->n());

  GeometryAtlas atlas;
  // Warm the atlas at t = 8; all smaller radii must be served without a
  // single additional build.
  for (graph::NodeIndex v = 0; v < g->n(); ++v) atlas.block(*g, 8, v);
  const std::uint64_t misses_after_warmup = atlas.stats().misses;

  BallBuilder builder;
  BallView bound;
  for (const unsigned t : {1u, 2u, 3u, 5u, 8u}) {
    for (graph::NodeIndex v = 0; v < g->n(); ++v) {
      const auto block = atlas.block(*g, t, v);
      EXPECT_GE(block->radius(), t);
      bound.bind(block->ball(v, t), cfg, lab, local::Visibility::kExtended);
      expect_same_ball(bound,
                       builder.build(cfg, lab, v, t,
                                     local::Visibility::kExtended));
    }
  }
  EXPECT_EQ(atlas.stats().misses, misses_after_warmup);
  EXPECT_GT(atlas.stats().hits, 0u);
}

// Ascending radii must not leave redundant prefixes resident: admitting a
// radius-8 block retires the radius-2 block over the same centers (a strict
// prefix of it), and later radius-2 lookups hit the radius-8 block.
TEST(GeometryAtlas, AscendingRadiusRetiresPrefixBlocks) {
  util::Rng rng(7012);
  auto g = share(graph::random_connected(40, 28, rng));

  GeometryAtlas atlas;
  for (graph::NodeIndex v = 0; v < g->n(); ++v) atlas.block(*g, 2, v);
  const AtlasStats after_t2 = atlas.stats();
  const std::size_t t2_bytes = after_t2.bytes_in_use;
  ASSERT_GT(t2_bytes, 0u);

  for (graph::NodeIndex v = 0; v < g->n(); ++v) atlas.block(*g, 8, v);
  const AtlasStats after_t8 = atlas.stats();
  // Every t=2 block was superseded by its t=8 cover...
  EXPECT_EQ(after_t8.evictions, after_t2.misses);
  // ...so residency equals the t=8 geometry alone, not the sum of both.
  GeometryAtlas only_t8;
  for (graph::NodeIndex v = 0; v < g->n(); ++v) only_t8.block(*g, 8, v);
  EXPECT_EQ(after_t8.bytes_in_use, only_t8.stats().bytes_in_use);

  // And t=2 is now served by the t=8 blocks: hits only, no new builds.
  const std::uint64_t misses_before = after_t8.misses;
  for (graph::NodeIndex v = 0; v < g->n(); ++v) atlas.block(*g, 2, v);
  EXPECT_EQ(atlas.stats().misses, misses_before);
}

TEST(GeometryAtlas, DisconnectedGraphAndPendantNodes) {
  // Two components (a path and a triangle) exercise whole_component and
  // empty trailing layers through the prefix view.
  graph::Graph::Builder b;
  for (graph::RawId id = 0; id < 8; ++id) b.add_node(100 + id);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  b.add_edge(3, 4);  // path 0-1-2-3-4
  b.add_edge(5, 6);
  b.add_edge(6, 7);
  b.add_edge(5, 7);  // triangle 5-6-7
  auto g = share(std::move(b).build());
  const auto cfg = trivial_config(g);
  const auto lab = numbered_labeling(g->n());

  GeometryAtlas atlas;
  for (const unsigned t : {1u, 2u, 6u}) {
    expect_atlas_matches_builder(atlas, cfg, lab, t,
                                 local::Visibility::kExtended);
  }
  // Triangle members see the whole component from t = 2 on.
  const auto block = atlas.block(*g, 2, 5);
  EXPECT_TRUE(block->ball(5, 2).whole_component);
  EXPECT_FALSE(atlas.block(*g, 2, 0)->ball(0, 2).whole_component);
}

TEST(GeometryAtlas, RespectsByteBudgetAndEvictsLru) {
  util::Rng rng(7003);
  auto g = share(graph::random_connected(96, 60, rng));

  // First find out how big one block is, then budget for about three.
  AtlasOptions probe_options;
  probe_options.block_centers = 16;
  GeometryAtlas probe(probe_options);
  const std::size_t block_bytes = probe.block(*g, 4, 0)->bytes();
  ASSERT_GT(block_bytes, 0u);

  AtlasOptions options;
  options.block_centers = 16;
  options.byte_budget = 3 * block_bytes + block_bytes / 2;
  options.turnover_period = 1;  // pure LRU: every contender displaces
  GeometryAtlas atlas(options);
  for (int sweep = 0; sweep < 3; ++sweep) {
    for (graph::NodeIndex v = 0; v < g->n(); ++v) {
      atlas.block(*g, 4, v);
      // The budget must hold after every single insertion, not just at the
      // end of a sweep.
      EXPECT_LE(atlas.stats().bytes_in_use, options.byte_budget);
    }
  }
  const AtlasStats stats = atlas.stats();
  EXPECT_GT(stats.evictions, 0u);
  // 96 centers / 16 per block = 6 blocks a sweep, at most ~3 resident: the
  // pure-LRU scan pattern must keep missing.
  EXPECT_GT(stats.misses, 6u);
  // Admission happens before accounting, so the budget also bounds the peak.
  EXPECT_LE(stats.peak_bytes, options.byte_budget);
}

// The default policy is scan-resistant: a cyclic sweep whose working set
// exceeds the budget keeps a stable resident subset (partial hit rate)
// instead of LRU-churning to zero hits.
TEST(GeometryAtlas, ScanLargerThanBudgetStillHits) {
  util::Rng rng(7013);
  auto g = share(graph::random_connected(96, 60, rng));

  AtlasOptions probe_options;
  probe_options.block_centers = 16;
  GeometryAtlas probe(probe_options);
  const std::size_t block_bytes = probe.block(*g, 4, 0)->bytes();

  AtlasOptions options;
  options.block_centers = 16;
  options.byte_budget = 3 * block_bytes + block_bytes / 2;
  GeometryAtlas atlas(options);  // default turnover_period
  for (int sweep = 0; sweep < 4; ++sweep)
    for (graph::NodeIndex v = 0; v < g->n(); ++v) {
      atlas.block(*g, 4, v);
      EXPECT_LE(atlas.stats().bytes_in_use, options.byte_budget);
    }
  const AtlasStats stats = atlas.stats();
  // Roughly half the blocks fit, so from sweep 2 on the resident subset
  // keeps hitting; some blocks bypass the cache by design.
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.bypassed, 0u);
}

TEST(GeometryAtlas, ZeroBudgetCachesNothingButStaysCorrect) {
  util::Rng rng(7004);
  auto g = share(graph::random_connected(24, 12, rng));
  const auto cfg = trivial_config(g);
  const auto lab = numbered_labeling(g->n());

  AtlasOptions options;
  options.byte_budget = 0;
  options.block_centers = 4;
  GeometryAtlas atlas(options);
  expect_atlas_matches_builder(atlas, cfg, lab, 3,
                               local::Visibility::kExtended);
  const AtlasStats stats = atlas.stats();
  EXPECT_EQ(stats.bytes_in_use, 0u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.bypassed, stats.misses);
}

TEST(GeometryAtlas, KeyedByGraphEpochAcrossGraphs) {
  util::Rng rng(7005);
  auto g1 = share(graph::random_connected(20, 10, rng));
  auto g2 = share(graph::random_connected(20, 10, rng));
  ASSERT_NE(g1->epoch(), g2->epoch());

  GeometryAtlas atlas;
  const auto cfg1 = trivial_config(g1);
  const auto cfg2 = trivial_config(g2);
  const auto lab = numbered_labeling(20);
  // Interleaved lookups over two graphs through one atlas must never mix
  // geometry.
  expect_atlas_matches_builder(atlas, cfg1, lab, 3,
                               local::Visibility::kExtended);
  expect_atlas_matches_builder(atlas, cfg2, lab, 3,
                               local::Visibility::kExtended);
  expect_atlas_matches_builder(atlas, cfg1, lab, 3,
                               local::Visibility::kExtended);
  EXPECT_GT(atlas.stats().hits, 0u);
}

// One atlas shared by two sessions over the same configuration: the second
// session's sweep is served entirely from cache.
TEST(GeometryAtlas, SharedAcrossSessions) {
  const schemes::StpLanguage language;
  const schemes::StpScheme base(language);
  const SpreadScheme spread(base, 4);
  util::Rng rng(7006);
  auto g = share(graph::random_connected(26, 14, rng));
  const local::Configuration cfg = language.sample_legal(g, rng);
  const core::Labeling honest = spread.mark(cfg);

  auto atlas = std::make_shared<GeometryAtlas>();
  SessionOptions options;
  options.threads = 1;
  options.atlas = atlas;
  VerificationSession first(spread, cfg, 4, options);
  const core::Verdict v1 = first.run(honest);
  const std::uint64_t misses_after_first = atlas->stats().misses;

  VerificationSession second(spread, cfg, 4, options);
  const core::Verdict v2 = second.run(honest);
  EXPECT_EQ(atlas->stats().misses, misses_after_first);
  EXPECT_GT(atlas->stats().hits, 0u);
  EXPECT_EQ(v1.accept(), v2.accept());
}

// Concurrent lookups (including same-block races) return consistent pinned
// blocks; the TSan CI job runs this with real interleavings.
TEST(GeometryAtlas, ConcurrentLookupsAreConsistent) {
  util::Rng rng(7007);
  auto g = share(graph::random_connected(64, 40, rng));

  AtlasOptions options;
  options.block_centers = 8;
  options.byte_budget = 1 << 16;  // small: eviction races with lookups
  GeometryAtlas atlas(options);

  std::vector<std::thread> threads;
  for (int w = 0; w < 4; ++w) {
    threads.emplace_back([&atlas, &g, w] {
      for (int round = 0; round < 3; ++round)
        for (graph::NodeIndex v = 0; v < g->n(); ++v) {
          const unsigned t = 1 + static_cast<unsigned>((w + round) % 3);
          const auto block = atlas.block(*g, t, v);
          EXPECT_TRUE(block->covers(v));
          EXPECT_GE(block->radius(), t);
          EXPECT_GT(block->ball(v, t).members.size(), 0u);
        }
    });
  }
  for (std::thread& t : threads) t.join();
  const AtlasStats stats = atlas.stats();
  EXPECT_GT(stats.misses, 0u);
}

// Phase accounting is the difference of two snapshots (benches bracket
// warmup vs. measurement this way): AtlasStats::since reports the phase's
// traffic alone, while residency — the blocks themselves and bytes_in_use —
// carries through, so a phase over a warm atlas reports pure hits.  Unlike
// the retired reset_stats, a snapshot taken mid-traffic cannot misattribute
// another thread's lookups to the wrong phase.
TEST(GeometryAtlas, SnapshotDiffReportsOnePhaseOverAWarmAtlas) {
  util::Rng rng(7008);
  auto g = share(graph::random_connected(48, 30, rng));
  GeometryAtlas atlas;
  for (graph::NodeIndex v = 0; v < g->n(); ++v) atlas.block(*g, 2, v);
  const AtlasStats warm = atlas.stats();
  EXPECT_GT(warm.misses, 0u);
  EXPECT_GT(warm.bytes_in_use, 0u);

  // A snapshot diffed against itself is the empty phase.
  const AtlasStats empty = warm.since(warm);
  EXPECT_EQ(empty.hits, 0u);
  EXPECT_EQ(empty.misses, 0u);
  EXPECT_EQ(empty.evictions, 0u);
  EXPECT_EQ(empty.bypassed, 0u);
  EXPECT_EQ(empty.bytes_in_use, warm.bytes_in_use);
  EXPECT_EQ(empty.hit_rate(), 0.0);

  // The warm blocks are still resident: the second sweep's phase is all
  // hits, and the lifetime counters still hold the warmup misses.
  for (graph::NodeIndex v = 0; v < g->n(); ++v) atlas.block(*g, 2, v);
  const AtlasStats phase = atlas.stats().since(warm);
  EXPECT_EQ(phase.misses, 0u);
  EXPECT_GT(phase.hits, 0u);
  EXPECT_EQ(phase.hit_rate(), 1.0);
  EXPECT_EQ(phase.bytes_in_use, warm.bytes_in_use);
  EXPECT_EQ(atlas.stats().misses, warm.misses);
}

TEST(FrequencySketch, CountMinSaturatesAtFifteen) {
  FrequencySketch sketch(64, /*sample_period=*/1u << 20);
  EXPECT_EQ(sketch.estimate(42), 0u);
  for (int i = 0; i < 7; ++i) sketch.record(42);
  // Count-min never under-counts (collisions can only over-count).
  EXPECT_GE(sketch.estimate(42), 7u);
  for (int i = 0; i < 40; ++i) sketch.record(42);
  EXPECT_EQ(sketch.estimate(42), 15u);  // saturated, no wrap past 0xF
  EXPECT_EQ(sketch.halvings(), 0u);
}

TEST(FrequencySketch, PeriodicHalvingDecaysEveryCounter) {
  FrequencySketch sketch(1u << 10, /*sample_period=*/64);
  for (int i = 0; i < 12; ++i) sketch.record(7);
  EXPECT_GE(sketch.estimate(7), 12u);
  // Unrelated traffic trips the sample period; the halving caps every
  // counter in the table at 15/2 = 7, so the hot key decays too.
  std::uint64_t key = 1000;
  while (sketch.halvings() == 0) sketch.record(key++);
  EXPECT_LE(sketch.estimate(7), 7u);
}

// TinyLFU admission: in the LRU-churn scenario — a budget holding exactly
// one block, hot lookups interleaved with a cold rotation — pure LRU
// evicts the hot block moments before every reuse (zero hits), while the
// frequency sketch vetoes each cold contender (estimate ~1) against the
// hot resident and keeps hitting.  The zipf-stream A/B against the default
// scan-resistant policy is the bench's job; this pins the admission
// mechanism itself, deterministically.
TEST(GeometryAtlas, TinyLfuKeepsTheHotBlockWhereLruChurns) {
  util::Rng rng(7014);
  auto g = share(graph::random_connected(96, 60, rng));

  // One lookup per block visit (as a sweep holding its pinned block would
  // issue).  Budget = the largest block: any single block fits, no two fit
  // together (asserted), so residency is exactly one block at all times.
  AtlasOptions probe_options;
  probe_options.block_centers = 16;
  GeometryAtlas probe(probe_options);
  std::vector<std::size_t> sizes;
  for (graph::NodeIndex first = 0; first < g->n(); first += 16)
    sizes.push_back(probe.block(*g, 4, first)->bytes());
  std::sort(sizes.begin(), sizes.end());
  ASSERT_GT(sizes.front() + sizes[1], sizes.back())
      << "budget must hold one block but never two";

  AtlasOptions base;
  base.block_centers = 16;
  base.byte_budget = sizes.back();
  const auto run_stream = [&](GeometryAtlas& atlas) {
    for (int i = 0; i < 3; ++i) atlas.block(*g, 4, 0);  // seed hot frequency
    for (int round = 0; round < 10; ++round) {
      atlas.block(*g, 4, 0);  // hot: always block 0
      const auto cold = static_cast<graph::NodeIndex>(16 * (1 + round % 5));
      atlas.block(*g, 4, cold);
    }
  };

  AtlasOptions tiny = base;
  tiny.admission = Admission::kTinyLFU;
  GeometryAtlas tiny_atlas(tiny);
  run_stream(tiny_atlas);
  const AtlasStats tiny_stats = tiny_atlas.stats();

  AtlasOptions lru = base;
  lru.turnover_period = 1;  // kScanResistant degenerates to pure LRU
  GeometryAtlas lru_atlas(lru);
  run_stream(lru_atlas);
  const AtlasStats lru_stats = lru_atlas.stats();

  // Every cold contender lost to the hot resident's frequency...
  EXPECT_GT(tiny_stats.sketch_rejects, 0u);
  // ...so the hot block hit on every revisit; LRU churned it out each time.
  EXPECT_EQ(tiny_stats.hits, 12u);  // 2 warmup revisits + 10 rounds
  // LRU: 2 warmup revisits + round 0's hot lookup (the first cold arrival
  // is what starts the churn), then every later hot lookup misses.
  EXPECT_EQ(lru_stats.hits, 3u);
  EXPECT_GT(tiny_stats.hits, lru_stats.hits);
  EXPECT_LE(tiny_stats.bytes_in_use, base.byte_budget);
  EXPECT_LE(tiny_stats.peak_bytes, base.byte_budget);

  // And it is still resident now: one more hot lookup, zero builds.
  const AtlasStats before_final = tiny_atlas.stats();
  tiny_atlas.block(*g, 4, 0);
  const AtlasStats final_phase = tiny_atlas.stats().since(before_final);
  EXPECT_EQ(final_phase.misses, 0u);
  EXPECT_EQ(final_phase.hits, 1u);
}

std::size_t by_radius_sum(const AtlasStats& stats) {
  std::size_t sum = 0;
  for (const auto& [t, rb] : stats.by_radius) sum += rb.bytes_in_use;
  return sum;
}

// The per-radius residency gauges: attribution always sums to the global
// bytes_in_use, and prefix retirement moves bytes between radii instead of
// leaking them.
TEST(GeometryAtlas, ByRadiusResidencySumsToTotalAndTracksRetirement) {
  util::Rng rng(7015);
  auto g1 = share(graph::random_connected(30, 18, rng));
  auto g2 = share(graph::random_connected(26, 14, rng));

  GeometryAtlas atlas;
  for (graph::NodeIndex v = 0; v < g1->n(); ++v) atlas.block(*g1, 2, v);
  for (graph::NodeIndex v = 0; v < g2->n(); ++v) atlas.block(*g2, 5, v);
  const AtlasStats mixed = atlas.stats();
  ASSERT_GT(mixed.by_radius.at(2).bytes_in_use, 0u);
  ASSERT_GT(mixed.by_radius.at(5).bytes_in_use, 0u);
  EXPECT_EQ(by_radius_sum(mixed), mixed.bytes_in_use);
  for (const auto& [t, rb] : mixed.by_radius)
    EXPECT_GE(rb.peak_bytes, rb.bytes_in_use) << "radius " << t;

  // Ascending g1 to t = 8 retires its t = 2 prefixes: radius 2 drains to
  // zero residency (its peak stays), radius 8 takes the bytes over, and the
  // attribution still sums exactly.
  for (graph::NodeIndex v = 0; v < g1->n(); ++v) atlas.block(*g1, 8, v);
  const AtlasStats after = atlas.stats();
  EXPECT_EQ(after.by_radius.at(2).bytes_in_use, 0u);
  EXPECT_EQ(after.by_radius.at(2).peak_bytes,
            mixed.by_radius.at(2).peak_bytes);
  EXPECT_GT(after.by_radius.at(8).bytes_in_use, 0u);
  EXPECT_EQ(by_radius_sum(after), after.bytes_in_use);
}

}  // namespace
}  // namespace pls::radius
