// Splice attacks on SpreadScheme: adversarial certificates that are locally
// well-formed but stitch together incompatible global claims (two regions
// voting different reassembled prefixes, rotated residue assignments,
// crossed chunk payloads) must be rejected somewhere by the t-round engine
// on every illegal configuration.
#include "radius/splice.hpp"

#include <gtest/gtest.h>

#include <set>

#include "radius/session.hpp"
#include "schemes/common.hpp"
#include "schemes/spanning_tree.hpp"
#include "testing/helpers.hpp"

namespace pls::radius {
namespace {

using pls::testing::share;

/// Every splice variant must leave at least one rejecting node on an
/// illegal configuration.
void expect_splices_rejected(const SpreadScheme& spread,
                             const local::Configuration& cfg,
                             std::uint64_t seed) {
  ASSERT_FALSE(spread.language().contains(cfg));
  util::Rng rng(seed);
  const std::vector<SpliceAttack> attacks = splice_attacks(spread, cfg, rng);
  ASSERT_FALSE(attacks.empty());
  for (const SpliceAttack& attack : attacks) {
    const core::Verdict verdict =
        run_verifier_t(spread, cfg, attack.labeling, spread.radius());
    EXPECT_GE(verdict.rejections(), 1u)
        << spread.name() << " accepted splice '" << attack.name << "' on "
        << cfg.graph().describe();
  }
}

local::Configuration meet_in_the_middle(std::size_t n) {
  auto g = share(graph::path(n));
  std::vector<local::State> states;
  for (std::size_t v = 0; v < n; ++v) {
    if (v == 0 || v == n - 1) {
      states.push_back(schemes::encode_pointer(std::nullopt));
    } else if (v < n / 2) {
      states.push_back(
          schemes::encode_pointer(g->id(static_cast<graph::NodeIndex>(v - 1))));
    } else {
      states.push_back(
          schemes::encode_pointer(g->id(static_cast<graph::NodeIndex>(v + 1))));
    }
  }
  return local::Configuration(g, states);
}

TEST(Splice, AllVariantsRejectedOnMeetInTheMiddle) {
  const schemes::StpLanguage language;
  const schemes::StpScheme base(language);
  for (const unsigned t : {2u, 4u, 8u}) {
    const SpreadScheme spread(base, t);
    expect_splices_rejected(spread, meet_in_the_middle(12), 211 + t);
  }
}

TEST(Splice, AllVariantsRejectedOnPointerCycle) {
  const schemes::StpLanguage language;
  const schemes::StpScheme base(language);
  auto g = share(graph::cycle(9));
  std::vector<local::State> states;
  for (std::size_t v = 0; v < 9; ++v)
    states.push_back(schemes::encode_pointer(
        g->id(static_cast<graph::NodeIndex>((v + 1) % 9))));
  const local::Configuration cfg(g, states);
  for (const unsigned t : {2u, 4u, 8u}) {
    const SpreadScheme spread(base, t);
    expect_splices_rejected(spread, cfg, 223 + t);
  }
}

TEST(Splice, AllVariantsRejectedOnTwoRoots) {
  const schemes::StpLanguage language;
  const schemes::StpScheme base(language);
  for (const unsigned t : {2u, 4u, 8u}) {
    const SpreadScheme spread(base, t);
    auto g = share(graph::grid(3, 4));
    auto cfg = language.make_tree(g, 0).with_state(
        11, schemes::encode_pointer(std::nullopt));
    expect_splices_rejected(spread, cfg, 227 + t);
  }
}

// A rotated residue assignment on a *legal* configuration reassembles the
// prefix bits into the wrong positions: the spanning-tree root id changes,
// and the decoder's root-id/own-id binding must catch it at the root.
TEST(Splice, GlobalResidueRotationRejectedOnLegalTree) {
  const schemes::StpLanguage language;
  const schemes::StpScheme base(language);
  const SpreadScheme spread(base, 4);
  util::Rng rng(229);
  auto g = share(graph::relabel_random(graph::random_tree(24, rng), rng,
                                       graph::RawId{1} << 40));
  const auto cfg = language.sample_legal(g, rng);
  util::Rng attack_rng(233);
  for (const SpliceAttack& attack : splice_attacks(spread, cfg, attack_rng)) {
    if (attack.name != "residue-rotate-global") continue;
    const core::Verdict verdict =
        run_verifier_t(spread, cfg, attack.labeling, 4);
    EXPECT_GE(verdict.rejections(), 1u);
  }
}

TEST(Splice, AttackRosterIsComplete) {
  const schemes::StpLanguage language;
  const schemes::StpScheme base(language);
  const SpreadScheme spread(base, 8);
  util::Rng rng(239);
  auto g = share(graph::grid(4, 4));
  const auto cfg = language.sample_legal(g, rng);
  util::Rng attack_rng(241);
  std::set<std::string> names;
  for (const SpliceAttack& attack : splice_attacks(spread, cfg, attack_rng))
    names.insert(attack.name);
  EXPECT_EQ(names, (std::set<std::string>{
                       "region-prefix", "suffix-crossbreed",
                       "residue-rotate-region", "residue-rotate-global",
                       "chunk-crosswire"}));
}

// The adversary suite now reports splice strategies for spread schemes; on
// an illegal configuration none of them may reach zero rejections (this is
// the integration path expect_sound exercises).
TEST(Splice, AdversaryIntegrationStaysSound) {
  const schemes::StpLanguage language;
  const schemes::StpScheme base(language);
  for (const unsigned t : {2u, 4u}) {
    const SpreadScheme spread(base, t);
    pls::testing::expect_sound(spread, meet_in_the_middle(10), 251 + t);
  }
}

}  // namespace
}  // namespace pls::radius
