// Splice attacks on the spread schemes: adversarial certificates that are
// locally well-formed but stitch together incompatible global claims (two
// regions voting different reassembled prefixes, rotated residue
// assignments, crossed chunk payloads — and for the fragment spread, rotated
// region names, fragment payloads swapped between regions, and a neighbor
// region's reassembled prefix spliced in) must be rejected somewhere by the
// t-round engine, at every thread count, on every illegal configuration.
#include "radius/splice.hpp"

#include <gtest/gtest.h>

#include <set>

#include "radius/session.hpp"
#include "radius/spread_wire.hpp"
#include "schemes/common.hpp"
#include "schemes/mst.hpp"
#include "schemes/spanning_tree.hpp"
#include "testing/helpers.hpp"

namespace pls::radius {
namespace {

using pls::testing::share;

/// Every splice variant must leave at least one rejecting node on an
/// illegal configuration.
void expect_splices_rejected(const SpreadScheme& spread,
                             const local::Configuration& cfg,
                             std::uint64_t seed) {
  ASSERT_FALSE(spread.language().contains(cfg));
  util::Rng rng(seed);
  const std::vector<SpliceAttack> attacks = splice_attacks(spread, cfg, rng);
  ASSERT_FALSE(attacks.empty());
  for (const SpliceAttack& attack : attacks) {
    const core::Verdict verdict =
        run_verifier_t(spread, cfg, attack.labeling, spread.radius());
    EXPECT_GE(verdict.rejections(), 1u)
        << spread.name() << " accepted splice '" << attack.name << "' on "
        << cfg.graph().describe();
  }
}

local::Configuration meet_in_the_middle(std::size_t n) {
  auto g = share(graph::path(n));
  std::vector<local::State> states;
  for (std::size_t v = 0; v < n; ++v) {
    if (v == 0 || v == n - 1) {
      states.push_back(schemes::encode_pointer(std::nullopt));
    } else if (v < n / 2) {
      states.push_back(
          schemes::encode_pointer(g->id(static_cast<graph::NodeIndex>(v - 1))));
    } else {
      states.push_back(
          schemes::encode_pointer(g->id(static_cast<graph::NodeIndex>(v + 1))));
    }
  }
  return local::Configuration(g, states);
}

TEST(Splice, AllVariantsRejectedOnMeetInTheMiddle) {
  const schemes::StpLanguage language;
  const schemes::StpScheme base(language);
  for (const unsigned t : {2u, 4u, 8u}) {
    const SpreadScheme spread(base, t);
    expect_splices_rejected(spread, meet_in_the_middle(12), 211 + t);
  }
}

TEST(Splice, AllVariantsRejectedOnPointerCycle) {
  const schemes::StpLanguage language;
  const schemes::StpScheme base(language);
  auto g = share(graph::cycle(9));
  std::vector<local::State> states;
  for (std::size_t v = 0; v < 9; ++v)
    states.push_back(schemes::encode_pointer(
        g->id(static_cast<graph::NodeIndex>((v + 1) % 9))));
  const local::Configuration cfg(g, states);
  for (const unsigned t : {2u, 4u, 8u}) {
    const SpreadScheme spread(base, t);
    expect_splices_rejected(spread, cfg, 223 + t);
  }
}

TEST(Splice, AllVariantsRejectedOnTwoRoots) {
  const schemes::StpLanguage language;
  const schemes::StpScheme base(language);
  for (const unsigned t : {2u, 4u, 8u}) {
    const SpreadScheme spread(base, t);
    auto g = share(graph::grid(3, 4));
    auto cfg = language.make_tree(g, 0).with_state(
        11, schemes::encode_pointer(std::nullopt));
    expect_splices_rejected(spread, cfg, 227 + t);
  }
}

// A rotated residue assignment on a *legal* configuration reassembles the
// prefix bits into the wrong positions: the spanning-tree root id changes,
// and the decoder's root-id/own-id binding must catch it at the root.
TEST(Splice, GlobalResidueRotationRejectedOnLegalTree) {
  const schemes::StpLanguage language;
  const schemes::StpScheme base(language);
  const SpreadScheme spread(base, 4);
  util::Rng rng(229);
  auto g = share(graph::relabel_random(graph::random_tree(24, rng), rng,
                                       graph::RawId{1} << 40));
  const auto cfg = language.sample_legal(g, rng);
  util::Rng attack_rng(233);
  for (const SpliceAttack& attack : splice_attacks(spread, cfg, attack_rng)) {
    if (attack.name != "residue-rotate-global") continue;
    const core::Verdict verdict =
        run_verifier_t(spread, cfg, attack.labeling, 4);
    EXPECT_GE(verdict.rejections(), 1u);
  }
}

TEST(Splice, AttackRosterIsComplete) {
  const schemes::StpLanguage language;
  const schemes::StpScheme base(language);
  const SpreadScheme spread(base, 8);
  util::Rng rng(239);
  auto g = share(graph::grid(4, 4));
  const auto cfg = language.sample_legal(g, rng);
  util::Rng attack_rng(241);
  std::set<std::string> names;
  for (const SpliceAttack& attack : splice_attacks(spread, cfg, attack_rng))
    names.insert(attack.name);
  EXPECT_EQ(names, (std::set<std::string>{
                       "region-prefix", "suffix-crossbreed",
                       "residue-rotate-region", "residue-rotate-global",
                       "chunk-crosswire"}));
}

// The adversary suite now reports splice strategies for spread schemes; on
// an illegal configuration none of them may reach zero rejections (this is
// the integration path expect_sound exercises).
TEST(Splice, AdversaryIntegrationStaysSound) {
  const schemes::StpLanguage language;
  const schemes::StpScheme base(language);
  for (const unsigned t : {2u, 4u}) {
    const SpreadScheme spread(base, t);
    pls::testing::expect_sound(spread, meet_in_the_middle(10), 251 + t);
  }
}

// ---------------------------------------------------------------------------
// Cross-region attacks on the fragment spread.
// ---------------------------------------------------------------------------

/// Every fragment splice variant must leave >= 1 rejecting node on an
/// illegal configuration, and the verdict must say so at every thread count
/// (the parallel session is the production path the adversary drives).
void expect_fragment_splices_rejected(const FragmentSpreadScheme& spread,
                                      const local::Configuration& cfg,
                                      std::uint64_t seed) {
  ASSERT_FALSE(spread.language().contains(cfg));
  util::Rng rng(seed);
  const std::vector<SpliceAttack> attacks =
      fragment_splice_attacks(spread, cfg, rng);
  ASSERT_FALSE(attacks.empty());
  for (const SpliceAttack& attack : attacks) {
    for (const unsigned threads : {1u, 2u, 0u}) {  // 0 = hardware
      SessionOptions options;
      options.threads = threads;
      VerificationSession session(spread, cfg, spread.radius(), options);
      EXPECT_GE(session.run(attack.labeling).rejections(), 1u)
          << spread.name() << " accepted fragment splice '" << attack.name
          << "' at threads=" << session.threads() << " on "
          << cfg.graph().describe();
    }
  }
}

/// A connected spanning tree that is not the MST: a cycle's MST drops the
/// unique heaviest edge; this drops a different one.
local::Configuration wrong_cycle_tree(const schemes::MstLanguage& language,
                                      std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  auto g = share(graph::reweight_random(graph::cycle(n), rng));
  graph::EdgeIndex heaviest = 0;
  for (graph::EdgeIndex e = 1; e < g->m(); ++e)
    if (g->weight(e) > g->weight(heaviest)) heaviest = e;
  std::vector<bool> mask(g->m(), true);
  mask[heaviest == 0 ? 1 : 0] = false;
  return language.make_from_mask(g, mask);
}

TEST(Splice, FragmentVariantsRejectedOnWrongMstAtEveryThreadCount) {
  const schemes::MstLanguage language;
  const schemes::MstScheme base(language);
  for (const unsigned t : {2u, 4u, 8u}) {
    const FragmentSpreadScheme spread(base, t);
    expect_fragment_splices_rejected(spread, wrong_cycle_tree(language, 10, 401 + t),
                                     409 + t);
  }
}

TEST(Splice, FragmentVariantsRejectedOnStpTwoRoots) {
  const schemes::StpLanguage language;
  const schemes::StpScheme base(language);
  for (const unsigned t : {2u, 4u, 8u}) {
    const FragmentSpreadScheme spread(base, t);
    auto g = share(graph::grid(3, 4));
    auto cfg = language.make_tree(g, 0).with_state(
        11, schemes::encode_pointer(std::nullopt));
    expect_fragment_splices_rejected(spread, cfg, 419 + t);
  }
}

/// A sizable weighted instance whose fragment decomposition is nontrivial:
/// the cross-region attack variants must all be present and, on a *legal*
/// configuration, the region-id rotation must still be rejected — a region
/// is named by its minimum-id member, and rotating names gives the region
/// holding the globally minimal id a name above it.
TEST(Splice, FragmentRosterAndRegionRotationOnLegalMst) {
  const schemes::MstLanguage language;
  const schemes::MstScheme base(language);
  const FragmentSpreadScheme spread(base, 4);
  util::Rng rng(431);
  auto g = share(graph::relabel_random(
      graph::reweight_random(graph::random_connected(96, 48, rng), rng), rng,
      graph::RawId{1} << 40));
  const auto cfg = language.sample_legal(g, rng);

  // How many regions does the honest marking carry?
  std::set<std::uint64_t> regions;
  for (const local::Certificate& c : spread.mark(cfg).certs) {
    const auto wire = detail::parse_fragment_wire(c);
    ASSERT_TRUE(wire.has_value());
    regions.insert(wire->region);
  }

  util::Rng attack_rng(433);
  std::set<std::string> names;
  for (const SpliceAttack& attack :
       fragment_splice_attacks(spread, cfg, attack_rng))
    names.insert(attack.name);
  std::set<std::string> expected{"fragment-region-prefix",
                                 "fragment-suffix-crossbreed",
                                 "fragment-residue-rotate"};
  if (regions.size() > 1) {
    expected.insert("region-id-rotate");
    expected.insert("fragment-chunk-crosswire");
    expected.insert("region-prefix-splice");
  }
  EXPECT_EQ(names, expected);
  ASSERT_GT(regions.size(), 1u)
      << "instance too small for a nontrivial decomposition";

  util::Rng rerun_rng(433);
  for (const SpliceAttack& attack :
       fragment_splice_attacks(spread, cfg, rerun_rng)) {
    if (attack.name != "region-id-rotate") continue;
    for (const unsigned threads : {1u, 2u, 0u}) {
      SessionOptions options;
      options.threads = threads;
      VerificationSession session(spread, cfg, 4, options);
      EXPECT_GE(session.run(attack.labeling).rejections(), 1u)
          << "threads=" << session.threads();
    }
  }
}

// The fragment attacks ride the adversary suite the same way the global
// ones do: expect_sound must stay sound with them in the roster.
TEST(Splice, FragmentAdversaryIntegrationStaysSound) {
  const schemes::MstLanguage language;
  const schemes::MstScheme base(language);
  for (const unsigned t : {2u, 4u}) {
    const FragmentSpreadScheme spread(base, t);
    pls::testing::expect_sound(spread, wrong_cycle_tree(language, 8, 439 + t),
                               443 + t);
  }
}

}  // namespace
}  // namespace pls::radius
