// FragmentSpreadScheme: completeness and soundness of the region-decomposed
// t-PLS transform, the per-region proof-size bound, and the MST tradeoff it
// exists to realize.
#include "radius/fragment_spread.hpp"

#include <gtest/gtest.h>

#include <set>

#include "radius/session.hpp"
#include "radius/spread_wire.hpp"
#include "schemes/agree.hpp"
#include "schemes/common.hpp"
#include "schemes/mst.hpp"
#include "schemes/registry.hpp"
#include "schemes/spanning_tree.hpp"
#include "testing/helpers.hpp"

namespace pls::radius {
namespace {

using pls::testing::share;

void expect_complete_t(const FragmentSpreadScheme& scheme,
                       const local::Configuration& cfg) {
  ASSERT_TRUE(scheme.language().contains(cfg));
  const core::Labeling lab = scheme.mark(cfg);
  const core::Verdict verdict =
      run_verifier_t(scheme, cfg, lab, scheme.radius());
  EXPECT_TRUE(verdict.all_accept())
      << scheme.name() << " rejected a legal configuration at "
      << verdict.rejections() << " nodes on " << cfg.graph().describe();
  EXPECT_LE(lab.max_bits(),
            scheme.proof_size_bound(cfg.n(), cfg.max_state_bits()))
      << scheme.name() << " exceeded its proof-size bound on "
      << cfg.graph().describe();
}

TEST(FragmentSpread, MstCompletenessSweep) {
  const schemes::MstLanguage language;
  const schemes::MstScheme base(language);
  for (const unsigned t : {1u, 2u, 4u, 8u}) {
    const FragmentSpreadScheme spread(base, t);
    for (auto& g : pls::testing::weighted_family(307)) {
      util::Rng rng(311);
      expect_complete_t(spread, language.sample_legal(g, rng));
    }
  }
}

TEST(FragmentSpread, StpCompletenessSweep) {
  const schemes::StpLanguage language;
  const schemes::StpScheme base(language);
  for (const unsigned t : {2u, 4u, 8u}) {
    const FragmentSpreadScheme spread(base, t);
    for (auto& g : pls::testing::unweighted_family(313)) {
      util::Rng rng(317);
      expect_complete_t(spread, language.sample_legal(g, rng));
    }
  }
}

// The full adversary suite (including the fragment splice attacks) drives
// the t-round engine against the fragment spread on illegal configurations.
TEST(FragmentSpread, MstSoundOnWrongSpanningTree) {
  const schemes::MstLanguage language;
  const schemes::MstScheme base(language);
  util::Rng grng(331);
  auto g = share(graph::reweight_random(graph::cycle(8), grng));
  // A cycle's MST drops the unique maximum-weight edge; dropping any other
  // edge yields a spanning tree that is connected but not minimal.
  graph::EdgeIndex heaviest = 0;
  for (graph::EdgeIndex e = 1; e < g->m(); ++e)
    if (g->weight(e) > g->weight(heaviest)) heaviest = e;
  std::vector<bool> mask(g->m(), true);
  mask[heaviest == 0 ? 1 : 0] = false;
  const local::Configuration cfg = language.make_from_mask(g, mask);
  ASSERT_FALSE(language.contains(cfg));
  for (const unsigned t : {2u, 4u}) {
    const FragmentSpreadScheme spread(base, t);
    pls::testing::expect_sound(spread, cfg, 337 + t);
  }
}

TEST(FragmentSpread, StpSoundOnTwoRoots) {
  const schemes::StpLanguage language;
  const schemes::StpScheme base(language);
  auto g = share(graph::path(6));
  auto cfg = language.make_tree(g, 0).with_state(
      3, schemes::encode_pointer(std::nullopt));
  for (const unsigned t : {2u, 4u, 8u}) {
    const FragmentSpreadScheme spread(base, t);
    pls::testing::expect_sound(spread, cfg, 347);
  }
}

TEST(FragmentSpread, TamperedCertificateRejected) {
  const schemes::MstLanguage language;
  const schemes::MstScheme base(language);
  const FragmentSpreadScheme spread(base, 4);
  util::Rng rng(349);
  auto g = share(graph::reweight_random(graph::grid(4, 4), rng));
  const auto cfg = language.sample_legal(g, rng);
  core::Labeling lab = spread.mark(cfg);
  lab.certs[5] = local::random_state(lab.certs[5].bit_size(), rng);
  EXPECT_GE(run_verifier_t(spread, cfg, lab, 4).rejections(), 1u);
}

// A region is named by its minimum-id member: inflating one node's claimed
// region id above its own id must be caught by the landmark binding even
// when everything else stays consistent.
TEST(FragmentSpread, RegionIdAboveOwnIdRejected) {
  const schemes::MstLanguage language;
  const schemes::MstScheme base(language);
  const FragmentSpreadScheme spread(base, 4);
  util::Rng rng(353);
  auto g = share(graph::reweight_random(graph::path(7), rng));
  const auto cfg = language.sample_legal(g, rng);
  core::Labeling lab = spread.mark(cfg);
  // The landmark of the minimum node's region *is* the global minimum id:
  // bump every certificate's region id past it.
  for (graph::NodeIndex v = 0; v < cfg.n(); ++v) {
    auto wire = detail::parse_fragment_wire(lab.certs[v]);
    ASSERT_TRUE(wire.has_value());
    wire->region = g->max_id() + 1;
    lab.certs[v] = detail::encode_fragment_wire(*wire);
  }
  EXPECT_GE(run_verifier_t(spread, cfg, lab, 4).rejections(), 1u);
}

TEST(FragmentSpread, RadiusBeyondDiameterStillComplete) {
  const schemes::MstLanguage language;
  const schemes::MstScheme base(language);
  const FragmentSpreadScheme spread(base, 32);
  util::Rng rng(359);
  auto g = share(graph::reweight_random(graph::path(6), rng));
  expect_complete_t(spread, language.sample_legal(g, rng));
}

// Region decomposition works per component: two components, landmark BFS
// and chunk classes confined to each, certificates-only visibility.
TEST(FragmentSpread, DisconnectedAgreeComponents) {
  const schemes::AgreeLanguage language(48);
  const schemes::AgreeScheme base(language);
  const FragmentSpreadScheme spread(base, 4);
  graph::Graph::Builder b;
  for (graph::RawId id = 1; id <= 7; ++id) b.add_node(id);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);  // path 0-1-2-3
  b.add_edge(4, 5);
  b.add_edge(5, 6);  // path 4-5-6
  auto g = share(std::move(b).build());
  ASSERT_FALSE(g->is_connected());
  std::vector<local::State> states(
      g->n(), language.encode_value(0xBEEF'CAFE'1234ull));
  const local::Configuration cfg(g, states);
  ASSERT_TRUE(language.contains(cfg));
  const core::Labeling lab = spread.mark(cfg);
  EXPECT_TRUE(run_verifier_t(spread, cfg, lab, 4).all_accept());
}

TEST(FragmentSpread, InvalidRadiiRejected) {
  const schemes::MstLanguage language;
  const schemes::MstScheme base(language);
  EXPECT_THROW(FragmentSpreadScheme(base, 0), std::logic_error);
  EXPECT_THROW(FragmentSpreadScheme(base, 64), std::logic_error);
  const FragmentSpreadScheme spread(base, 4);
  util::Rng rng(367);
  auto g = share(graph::reweight_random(graph::path(5), rng));
  const auto cfg = language.sample_legal(g, rng);
  const core::Labeling lab = spread.mark(cfg);
  EXPECT_THROW(run_verifier_t(spread, cfg, lab, 2), std::logic_error);
  EXPECT_THROW(core::run_verifier(spread, cfg, lab), std::logic_error);
}

// The point of the subsystem: MST's Borůvka certificates share content per
// fragment, and the fragment decomposition converts that into a max
// certificate strictly below the base scheme's — which the *global* spread
// cannot do to any comparable degree, because the shared content sits in
// per-fragment prefixes.  At this small n the curve is strict into t = 2
// and monotone beyond (the per-node T1/T2 fields dominate the maximum once
// the shareable prefix is sharded; bench_radius_tradeoff measures the
// strict full-curve decrease at n = 4096).
TEST(FragmentSpread, MstMaxBitsDecreaseWithRadius) {
  const schemes::MstLanguage language;
  const schemes::MstScheme base(language);
  util::Rng rng(373);
  auto g = share(graph::relabel_random(
      graph::reweight_random(graph::random_connected(256, 128, rng), rng),
      rng, graph::RawId{1} << 56));
  const auto cfg = language.sample_legal(g, rng);

  const std::size_t base_bits = base.mark(cfg).max_bits();
  std::size_t prev = base_bits;
  for (const unsigned t : {2u, 4u, 8u}) {
    const FragmentSpreadScheme spread(base, t);
    const std::size_t bits = spread.mark(cfg).max_bits();
    EXPECT_LE(bits, prev) << "t=" << t;
    prev = bits;
  }
  // The whole sweep must beat the base certificate by a real margin, not a
  // header's worth: the fragment decomposition sharded per-fragment content
  // the global transform cannot see.
  EXPECT_LT(prev + 64, base_bits);
}

// The decomposition actually engages for MST: the marked certificates carry
// more than one region, i.e. the evaluator preferred a Borůvka phase over
// the trivial global candidate.
TEST(FragmentSpread, MstDecompositionIsNontrivial) {
  const schemes::MstLanguage language;
  const schemes::MstScheme base(language);
  const FragmentSpreadScheme spread(base, 4);
  util::Rng rng(379);
  auto g = share(graph::relabel_random(
      graph::reweight_random(graph::random_connected(256, 128, rng), rng),
      rng, graph::RawId{1} << 56));
  const auto cfg = language.sample_legal(g, rng);
  const core::Labeling lab = spread.mark(cfg);
  std::set<std::uint64_t> regions;
  for (const local::Certificate& c : lab.certs) {
    const auto wire = detail::parse_fragment_wire(c);
    ASSERT_TRUE(wire.has_value());
    regions.insert(wire->region);
  }
  EXPECT_GT(regions.size(), 1u);
}

// Registry-wide proof-size bound property: every marked fragment-spread
// certificate fits the bound at every radius, with the per-region factor
// header (k, residue, region id, suffix length) measured independently by
// parsing the wire rather than restating the production formula.
TEST(FragmentSpread, ProofSizeBoundCoversRegistryAtAllRadii) {
  util::Rng rng(383);
  for (const schemes::SchemeEntry& entry : schemes::standard_catalog()) {
    std::shared_ptr<const graph::Graph> g;
    if (entry.needs_weighted) {
      g = share(graph::reweight_random(graph::random_connected(14, 10, rng),
                                       rng));
    } else if (entry.needs_bipartite) {
      g = share(graph::grid(2, 7));
    } else {
      g = share(graph::random_connected(14, 10, rng));
    }
    const local::Configuration cfg = entry.language->sample_legal(g, rng);
    for (const unsigned t : {1u, 2u, 4u, 8u}) {
      const FragmentSpreadScheme spread(*entry.scheme, t);
      const core::Labeling lab = spread.mark(cfg);
      const std::size_t bound =
          spread.proof_size_bound(cfg.n(), cfg.max_state_bits());
      EXPECT_GE(bound, lab.max_bits())
          << spread.name() << " bound below an actual certificate on "
          << cfg.graph().describe();

      // Independent header check: header = total - suffix - chunk must fit
      // the bound's header budget (bound - base bound) at every node.
      const std::size_t base_bound =
          entry.scheme->proof_size_bound(cfg.n(), cfg.max_state_bits());
      ASSERT_GE(bound, base_bound);
      const std::size_t header_budget = bound - base_bound;
      for (const local::Certificate& cert : lab.certs) {
        const auto wire = detail::parse_fragment_wire(cert);
        ASSERT_TRUE(wire.has_value()) << spread.name();
        const std::size_t measured_header = cert.bit_size() -
                                            wire->suffix.bit_size() -
                                            wire->chunk.bit_size();
        EXPECT_LE(measured_header, header_budget) << spread.name();
      }

      // And the transform is complete across the whole registry.
      const core::Verdict verdict = run_verifier_t(spread, cfg, lab, t);
      EXPECT_TRUE(verdict.all_accept())
          << spread.name() << " rejected a legal configuration on "
          << cfg.graph().describe();
    }
  }
}

}  // namespace
}  // namespace pls::radius
