// BallView geometry: layers, orderings, component boundaries, visibility.
#include "radius/ball.hpp"

#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "testing/helpers.hpp"

namespace pls::radius {
namespace {

using pls::testing::share;

local::Configuration trivial_config(std::shared_ptr<const graph::Graph> g) {
  std::vector<local::State> states(g->n());
  return local::Configuration(std::move(g), std::move(states));
}

core::Labeling numbered_labeling(std::size_t n) {
  core::Labeling lab;
  for (std::size_t v = 0; v < n; ++v)
    lab.certs.push_back(local::Certificate::of_uint(v, 16));
  return lab;
}

TEST(BallView, PathLayersAndBoundary) {
  auto g = share(graph::path(7));
  const auto cfg = trivial_config(g);
  const auto lab = numbered_labeling(7);
  BallBuilder builder;

  const BallView& ball =
      builder.build(cfg, lab, 3, 2, local::Visibility::kExtended);
  EXPECT_EQ(ball.size(), 5u);
  EXPECT_EQ(ball.layer(0).size(), 1u);
  EXPECT_EQ(ball.layer(0)[0].node, 3u);
  EXPECT_EQ(ball.layer(1).size(), 2u);
  EXPECT_EQ(ball.layer(2).size(), 2u);
  EXPECT_FALSE(ball.whole_component());

  const BallView& full =
      builder.build(cfg, lab, 3, 3, local::Visibility::kExtended);
  EXPECT_EQ(full.size(), 7u);
  EXPECT_TRUE(full.whole_component());
}

TEST(BallView, RadiusBeyondDiameterIsWholeComponent) {
  auto g = share(graph::path(5));
  const auto cfg = trivial_config(g);
  const auto lab = numbered_labeling(5);
  BallBuilder builder;
  const BallView& ball =
      builder.build(cfg, lab, 0, 10, local::Visibility::kExtended);
  EXPECT_EQ(ball.size(), 5u);
  EXPECT_TRUE(ball.whole_component());
  EXPECT_EQ(ball.radius(), 10u);
  for (unsigned r = 5; r <= 10; ++r) EXPECT_TRUE(ball.layer(r).empty());
}

TEST(BallView, DisconnectedGraphStaysInComponent) {
  graph::Graph::Builder b;
  for (graph::RawId id = 1; id <= 5; ++id) b.add_node(id);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(0, 2);  // triangle 0-1-2
  b.add_edge(3, 4);  // separate edge 3-4
  auto g = share(std::move(b).build());
  ASSERT_FALSE(g->is_connected());
  const auto cfg = trivial_config(g);
  const auto lab = numbered_labeling(5);
  BallBuilder builder;

  const BallView& triangle =
      builder.build(cfg, lab, 0, 4, local::Visibility::kExtended);
  EXPECT_EQ(triangle.size(), 3u);
  EXPECT_TRUE(triangle.whole_component());

  const BallView& pair =
      builder.build(cfg, lab, 3, 4, local::Visibility::kExtended);
  EXPECT_EQ(pair.size(), 2u);
  EXPECT_TRUE(pair.whole_component());
  EXPECT_EQ(pair.layer(1)[0].node, 4u);
}

TEST(BallView, RadiusZeroIsInvalidInput) {
  auto g = share(graph::path(3));
  const auto cfg = trivial_config(g);
  const auto lab = numbered_labeling(3);
  BallBuilder builder;
  EXPECT_THROW(builder.build(cfg, lab, 0, 0, local::Visibility::kExtended),
               std::logic_error);
}

TEST(BallView, LayerOneMatchesAdjacencyOrderAndWeights) {
  util::Rng rng(97);
  auto g = share(graph::reweight_random(graph::grid(3, 4), rng));
  const auto cfg = trivial_config(g);
  const auto lab = numbered_labeling(g->n());
  BallBuilder builder;
  for (graph::NodeIndex v = 0; v < g->n(); ++v) {
    const BallView& ball =
        builder.build(cfg, lab, v, 3, local::Visibility::kExtended);
    const auto layer1 = ball.layer(1);
    const auto adj = g->adjacency(v);
    ASSERT_EQ(layer1.size(), adj.size());
    for (std::size_t i = 0; i < adj.size(); ++i) {
      EXPECT_EQ(layer1[i].node, adj[i].to);
      EXPECT_EQ(layer1[i].edge_weight, g->weight(adj[i].edge));
      EXPECT_EQ(layer1[i].cert, &lab.certs[adj[i].to]);
    }
  }
}

TEST(BallView, DistancesMatchBfs) {
  util::Rng rng(101);
  auto g = share(graph::random_connected(40, 25, rng));
  const auto cfg = trivial_config(g);
  const auto lab = numbered_labeling(g->n());
  BallBuilder builder;
  for (graph::NodeIndex v = 0; v < g->n(); ++v) {
    const graph::BfsResult bfs = graph::bfs(*g, v);
    const BallView& ball =
        builder.build(cfg, lab, v, 4, local::Visibility::kExtended);
    std::size_t within = 0;
    for (graph::NodeIndex u = 0; u < g->n(); ++u)
      if (bfs.dist[u] <= 4) ++within;
    EXPECT_EQ(ball.size(), within);
    for (const BallMember& m : ball.members())
      EXPECT_EQ(m.dist, bfs.dist[m.node]);
  }
}

TEST(BallView, InternalAdjacencyMatchesGraph) {
  util::Rng rng(103);
  auto g = share(graph::random_connected(20, 15, rng));
  const auto cfg = trivial_config(g);
  const auto lab = numbered_labeling(g->n());
  BallBuilder builder;
  const BallView& ball =
      builder.build(cfg, lab, 0, 2, local::Visibility::kExtended);
  for (std::uint32_t i = 0; i < ball.size(); ++i) {
    const graph::NodeIndex u = ball.members()[i].node;
    for (const std::uint32_t nb : ball.neighbors_of(i)) {
      const graph::NodeIndex w = ball.members()[nb].node;
      EXPECT_TRUE(g->find_edge(u, w).has_value());
    }
    // Every graph neighbor inside the ball must be listed.
    std::size_t inside = 0;
    for (const graph::AdjEntry& a : g->adjacency(u)) {
      for (const BallMember& m : ball.members())
        if (m.node == a.to) {
          ++inside;
          break;
        }
    }
    EXPECT_EQ(ball.neighbors_of(i).size(), inside);
  }
}

/// Full structural equality of two ball views (members, layers, internal
/// adjacency, component flag) — the oracle for the builder-reuse regressions.
void expect_same_ball(const BallView& a, const BallView& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.radius(), b.radius());
  EXPECT_EQ(a.whole_component(), b.whole_component());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const BallMember& ma = a.members()[i];
    const BallMember& mb = b.members()[i];
    EXPECT_EQ(ma.node, mb.node);
    EXPECT_EQ(ma.dist, mb.dist);
    EXPECT_EQ(ma.edge_weight, mb.edge_weight);
    EXPECT_EQ(ma.cert, mb.cert);
    EXPECT_EQ(ma.state, mb.state);
    EXPECT_EQ(ma.id, mb.id);
    EXPECT_EQ(ma.id_visible, mb.id_visible);
  }
  for (unsigned r = 0; r <= a.radius(); ++r)
    EXPECT_EQ(a.layer(r).size(), b.layer(r).size()) << "layer " << r;
  for (std::uint32_t i = 0; i < a.size(); ++i) {
    const auto na = a.neighbors_of(i);
    const auto nb = b.neighbors_of(i);
    ASSERT_EQ(na.size(), nb.size()) << "member " << i;
    for (std::size_t j = 0; j < na.size(); ++j) EXPECT_EQ(na[j], nb[j]);
  }
}

/// Regression: a builder carrying scratch sized for a larger graph must not
/// leak stale visit marks or slots into balls of a smaller graph (the
/// scratch reset is keyed on graph size).
TEST(BallBuilder, SmallerGraphAfterLargerIsClean) {
  util::Rng rng(919);
  auto big = share(graph::random_connected(40, 30, rng));
  auto small = share(graph::path(5));
  const auto big_cfg = trivial_config(big);
  const auto small_cfg = trivial_config(small);
  const auto big_lab = numbered_labeling(big->n());
  const auto small_lab = numbered_labeling(small->n());

  BallBuilder reused;
  for (graph::NodeIndex v = 0; v < big->n(); ++v)
    reused.build(big_cfg, big_lab, v, 3, local::Visibility::kExtended);

  for (graph::NodeIndex v = 0; v < small->n(); ++v)
    for (const unsigned t : {1u, 2u, 4u}) {
      BallBuilder fresh;
      expect_same_ball(
          fresh.build(small_cfg, small_lab, v, t, local::Visibility::kExtended),
          reused.build(small_cfg, small_lab, v, t,
                       local::Visibility::kExtended));
    }
}

/// Regression: alternating between two same-size graphs must not mix their
/// scratch (same n means no size-triggered reset — the epoch stamps alone
/// must keep the visit marks and slots apart).
TEST(BallBuilder, InterleavedSameSizeGraphsStayApart) {
  auto cycle = share(graph::cycle(8));
  auto grid = share(graph::grid(2, 4));
  ASSERT_EQ(cycle->n(), grid->n());
  const auto cycle_cfg = trivial_config(cycle);
  const auto grid_cfg = trivial_config(grid);
  const auto lab = numbered_labeling(8);

  BallBuilder reused;
  for (graph::NodeIndex v = 0; v < 8; ++v) {
    BallBuilder fresh_cycle;
    BallBuilder fresh_grid;
    expect_same_ball(
        fresh_cycle.build(cycle_cfg, lab, v, 2, local::Visibility::kExtended),
        reused.build(cycle_cfg, lab, v, 2, local::Visibility::kExtended));
    expect_same_ball(
        fresh_grid.build(grid_cfg, lab, v, 2, local::Visibility::kExtended),
        reused.build(grid_cfg, lab, v, 2, local::Visibility::kExtended));
  }
}

/// Regression: the epoch counter wraps after 2^32 - 1 builds; the reset must
/// clear every stale visit mark (a mark stamped UINT32_MAX would otherwise
/// collide with a post-reset epoch).  The test drives the counter across the
/// boundary with the test hook and checks every ball against a fresh
/// builder.
TEST(BallBuilder, EpochWraparoundResetsScratch) {
  util::Rng rng(929);
  auto g = share(graph::random_connected(12, 8, rng));
  const auto cfg = trivial_config(g);
  const auto lab = numbered_labeling(g->n());

  BallBuilder reused;
  // Seed the scratch with real marks, then jump next to the wrap.
  for (graph::NodeIndex v = 0; v < g->n(); ++v)
    reused.build(cfg, lab, v, 2, local::Visibility::kExtended);
  reused.set_epoch_for_testing(UINT32_MAX - 3);

  for (int step = 0; step < 8; ++step) {
    const auto v = static_cast<graph::NodeIndex>(step % g->n());
    BallBuilder fresh;
    expect_same_ball(
        fresh.build(cfg, lab, v, 3, local::Visibility::kExtended),
        reused.build(cfg, lab, v, 3, local::Visibility::kExtended));
  }
}

TEST(BallView, VisibilityControlsStatesAndIds) {
  auto g = share(graph::cycle(5));
  const auto cfg = trivial_config(g);
  const auto lab = numbered_labeling(5);
  BallBuilder builder;

  const BallView& strict =
      builder.build(cfg, lab, 0, 2, local::Visibility::kCertificatesOnly);
  for (const BallMember& m : strict.members()) {
    EXPECT_EQ(m.state, nullptr);
    EXPECT_FALSE(m.id_visible);
    EXPECT_NE(m.cert, nullptr);
  }

  const BallView& extended =
      builder.build(cfg, lab, 0, 2, local::Visibility::kExtended);
  for (const BallMember& m : extended.members()) {
    EXPECT_NE(m.state, nullptr);
    EXPECT_TRUE(m.id_visible);
    EXPECT_EQ(m.id, g->id(m.node));
  }
}

}  // namespace
}  // namespace pls::radius
