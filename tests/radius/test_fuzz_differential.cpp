// Differential fuzz: the production verify path (VerificationSession, with
// its parse-once cache, link-phase interning, merged BFS+CSR ball reuse and
// thread-pool fan-out) must stay *bit-identical* to the naive reference
// engine run_verifier_t_baseline on adversarial input, not just on honest
// markings.  Seeded random graphs × random certificate corruptions — bit
// flips, truncations, random replacements, cert swaps — swept over every
// registry scheme, radii t ∈ {1, 2, 4}, and thread counts {1, 2, hardware},
// for both the plain scheme at radius t and its fragment spread.  This turns
// PR 2's "bit-identical at every thread count" claim into a standing fuzzed
// property.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "radius/batch.hpp"
#include "radius/fragment_spread.hpp"
#include "radius/session.hpp"
#include "schemes/registry.hpp"
#include "testing/helpers.hpp"

namespace pls::radius {
namespace {

using pls::testing::share;

/// One random corruption of one node's certificate.
core::Labeling mutate(const core::Labeling& lab, util::Rng& rng) {
  core::Labeling out = lab;
  if (out.size() == 0) return out;
  const std::size_t v = rng.below(out.size());
  switch (rng.below(4)) {
    case 0: {  // flip one bit
      const std::size_t bits = out.certs[v].bit_size();
      if (bits == 0) break;
      const std::size_t i = rng.below(bits);
      std::vector<std::uint8_t> bytes = out.certs[v].bytes();
      bytes[i / 8] ^= static_cast<std::uint8_t>(1u << (i % 8));
      out.certs[v] = local::Certificate(std::move(bytes), bits);
      break;
    }
    case 1: {  // truncate
      out.certs[v] =
          out.certs[v].prefix(rng.below(out.certs[v].bit_size() + 1));
      break;
    }
    case 2: {  // replace with random bits
      out.certs[v] = local::random_state(rng.below(96), rng);
      break;
    }
    default: {  // swap two nodes' certificates
      const std::size_t u = rng.below(out.size());
      std::swap(out.certs[v], out.certs[u]);
      break;
    }
  }
  return out;
}

/// Asserts session(threads ∈ {1, 2, hardware}) ≡ baseline on `labeling`.
void expect_engines_agree(const core::Scheme& scheme,
                          const local::Configuration& cfg, unsigned t,
                          const core::Labeling& labeling,
                          const std::string& what) {
  const core::Verdict oracle =
      run_verifier_t_baseline(scheme, cfg, labeling, t);
  for (const unsigned threads : {1u, 2u, 0u}) {  // 0 = hardware
    SessionOptions options;
    options.threads = threads;
    VerificationSession session(scheme, cfg, t, options);
    const core::Verdict got = session.run(labeling);
    ASSERT_EQ(oracle.accept(), got.accept())
        << scheme.name() << " diverged from the baseline at threads="
        << session.threads() << " (" << what << ") on "
        << cfg.graph().describe();
  }
}

void fuzz_scheme(const core::Scheme& scheme, const local::Configuration& cfg,
                 unsigned t, std::uint64_t seed, std::size_t mutations) {
  const core::Labeling honest = scheme.mark(cfg);
  expect_engines_agree(scheme, cfg, t, honest, "honest marking");
  util::Rng rng(seed);
  for (std::size_t m = 0; m < mutations; ++m)
    expect_engines_agree(scheme, cfg, t, mutate(honest, rng),
                         "mutation " + std::to_string(m));
}

TEST(FuzzDifferential, RegistrySchemesAllEnginesAgree) {
  util::Rng rng(0xD1FFu);
  for (const schemes::SchemeEntry& entry : schemes::standard_catalog()) {
    std::shared_ptr<const graph::Graph> g;
    if (entry.needs_weighted) {
      g = share(graph::reweight_random(graph::random_connected(18, 12, rng),
                                       rng));
    } else if (entry.needs_bipartite) {
      g = share(graph::grid(3, 6));
    } else {
      g = share(graph::random_connected(18, 12, rng));
    }
    const local::Configuration cfg = entry.language->sample_legal(g, rng);
    for (const unsigned t : {1u, 2u, 4u}) {
      // The registry scheme itself, run at radius t (1-round decoders are
      // radius-invariant; the engines still must agree bit-for-bit)...
      fuzz_scheme(*entry.scheme, cfg, t, 0xF00Du ^ (t * 7919), 8);
      // ...and its fragment spread, whose parse cache, interning and
      // region-grouped verify_ball are the hot paths under test.
      const FragmentSpreadScheme spread(*entry.scheme, t);
      fuzz_scheme(spread, cfg, t, 0xBEEFu ^ (t * 104729), 8);
    }
  }
}

// The batch pipeline under the same fuzz: a whole mutation trail is run as
// ONE BatchVerifier batch (stage 2 of labeling i+1 overlapping the sweep of
// labeling i, all labelings sharing one geometry atlas) and must stay
// bit-identical to per-labeling baseline verdicts.  This is the differential
// form of the parse-cache invalidation regression: adjacent labelings in the
// trail differ by certificate swaps and rewrites, so any parse (or geometry)
// surviving a labeling boundary would flip a verdict here.
TEST(FuzzDifferential, BatchedMutationTrailsMatchPerLabelingBaseline) {
  util::Rng rng(0xBA7C4u);
  const auto catalog = schemes::standard_catalog();
  for (const schemes::SchemeEntry& entry : catalog) {
    std::shared_ptr<const graph::Graph> g;
    if (entry.needs_weighted) {
      g = share(graph::reweight_random(graph::random_connected(16, 10, rng),
                                       rng));
    } else if (entry.needs_bipartite) {
      g = share(graph::grid(3, 5));
    } else {
      g = share(graph::random_connected(16, 10, rng));
    }
    const local::Configuration cfg = entry.language->sample_legal(g, rng);
    const FragmentSpreadScheme spread(*entry.scheme, 2);

    std::vector<core::Labeling> trail;
    trail.push_back(spread.mark(cfg));
    for (int m = 0; m < 6; ++m) trail.push_back(mutate(trail.back(), rng));

    std::vector<core::Verdict> oracle;
    for (const core::Labeling& lab : trail)
      oracle.push_back(run_verifier_t_baseline(spread, cfg, lab, 2));

    for (const unsigned threads : {1u, 2u, 0u}) {  // 0 = hardware
      BatchOptions options;
      options.threads = threads;
      BatchVerifier batch(spread, cfg, 2, options);
      const std::vector<core::Verdict> got = batch.run(trail);
      ASSERT_EQ(got.size(), trail.size());
      for (std::size_t i = 0; i < trail.size(); ++i)
        ASSERT_EQ(oracle[i].accept(), got[i].accept())
            << entry.label << " trail step " << i << " threads "
            << batch.threads();
    }
  }
}

// A second, smaller sweep over a graph family with structure the random
// instances lack (paths, cycles, stars: long balls, pendant nodes).
TEST(FuzzDifferential, StructuredGraphsAllEnginesAgree) {
  const auto catalog = schemes::standard_catalog();
  const schemes::SchemeEntry* stp = nullptr;
  for (const schemes::SchemeEntry& entry : catalog)
    if (entry.label == "stp") stp = &entry;
  ASSERT_NE(stp, nullptr);
  util::Rng rng(0x57A7u);
  for (auto& g : {share(graph::path(13)), share(graph::cycle(12)),
                  share(graph::star(9))}) {
    const local::Configuration cfg = stp->language->sample_legal(g, rng);
    for (const unsigned t : {2u, 4u}) {
      const FragmentSpreadScheme spread(*stp->scheme, t);
      fuzz_scheme(spread, cfg, t, 0xCAFEu ^ (t * 31), 10);
    }
  }
}

}  // namespace
}  // namespace pls::radius
