// Differential fuzz: the production verify path (VerificationSession, with
// its parse-once cache, link-phase interning, merged BFS+CSR ball reuse and
// thread-pool fan-out) must stay *bit-identical* to the naive reference
// engine run_verifier_t_baseline on adversarial input, not just on honest
// markings.  Seeded random graphs × random certificate corruptions — bit
// flips, truncations, random replacements, cert swaps — swept over every
// registry scheme, radii t ∈ {1, 2, 4}, and thread counts {1, 2, hardware},
// for both the plain scheme at radius t and its fragment spread.  This turns
// PR 2's "bit-identical at every thread count" claim into a standing fuzzed
// property.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "radius/batch.hpp"
#include "radius/delta.hpp"
#include "radius/fragment_spread.hpp"
#include "radius/session.hpp"
#include "schemes/registry.hpp"
#include "testing/helpers.hpp"

namespace pls::radius {
namespace {

using pls::testing::share;

/// One random corruption of one node's certificate.  When `touched` is
/// given, the mutated nodes are appended to it (the delta replay's declared
/// mutation set — an over-approximation when the corruption is a no-op,
/// which is exactly what LabelingDelta permits).
core::Labeling mutate(const core::Labeling& lab, util::Rng& rng,
                      std::vector<graph::NodeIndex>* touched = nullptr) {
  core::Labeling out = lab;
  if (out.size() == 0) return out;
  const std::size_t v = rng.below(out.size());
  if (touched != nullptr) touched->push_back(static_cast<graph::NodeIndex>(v));
  switch (rng.below(4)) {
    case 0: {  // flip one bit
      const std::size_t bits = out.certs[v].bit_size();
      if (bits == 0) break;
      const std::size_t i = rng.below(bits);
      std::vector<std::uint8_t> bytes = out.certs[v].bytes();
      bytes[i / 8] ^= static_cast<std::uint8_t>(1u << (i % 8));
      out.certs[v] = local::Certificate(std::move(bytes), bits);
      break;
    }
    case 1: {  // truncate
      out.certs[v] =
          out.certs[v].prefix(rng.below(out.certs[v].bit_size() + 1));
      break;
    }
    case 2: {  // replace with random bits
      out.certs[v] = local::random_state(rng.below(96), rng);
      break;
    }
    default: {  // swap two nodes' certificates
      const std::size_t u = rng.below(out.size());
      if (touched != nullptr)
        touched->push_back(static_cast<graph::NodeIndex>(u));
      std::swap(out.certs[v], out.certs[u]);
      break;
    }
  }
  return out;
}

/// Asserts session(threads ∈ {1, 2, hardware}) ≡ baseline on `labeling`.
void expect_engines_agree(const core::Scheme& scheme,
                          const local::Configuration& cfg, unsigned t,
                          const core::Labeling& labeling,
                          const std::string& what) {
  const core::Verdict oracle =
      run_verifier_t_baseline(scheme, cfg, labeling, t);
  for (const unsigned threads : {1u, 2u, 0u}) {  // 0 = hardware
    SessionOptions options;
    options.threads = threads;
    VerificationSession session(scheme, cfg, t, options);
    const core::Verdict got = session.run(labeling);
    ASSERT_EQ(oracle.accept(), got.accept())
        << scheme.name() << " diverged from the baseline at threads="
        << session.threads() << " (" << what << ") on "
        << cfg.graph().describe();
  }
}

void fuzz_scheme(const core::Scheme& scheme, const local::Configuration& cfg,
                 unsigned t, std::uint64_t seed, std::size_t mutations) {
  const core::Labeling honest = scheme.mark(cfg);
  expect_engines_agree(scheme, cfg, t, honest, "honest marking");
  util::Rng rng(seed);
  for (std::size_t m = 0; m < mutations; ++m)
    expect_engines_agree(scheme, cfg, t, mutate(honest, rng),
                         "mutation " + std::to_string(m));
}

TEST(FuzzDifferential, RegistrySchemesAllEnginesAgree) {
  util::Rng rng(0xD1FFu);
  for (const schemes::SchemeEntry& entry : schemes::standard_catalog()) {
    std::shared_ptr<const graph::Graph> g;
    if (entry.needs_weighted) {
      g = share(graph::reweight_random(graph::random_connected(18, 12, rng),
                                       rng));
    } else if (entry.needs_bipartite) {
      g = share(graph::grid(3, 6));
    } else {
      g = share(graph::random_connected(18, 12, rng));
    }
    const local::Configuration cfg = entry.language->sample_legal(g, rng);
    for (const unsigned t : {1u, 2u, 4u}) {
      // The registry scheme itself, run at radius t (1-round decoders are
      // radius-invariant; the engines still must agree bit-for-bit)...
      fuzz_scheme(*entry.scheme, cfg, t, 0xF00Du ^ (t * 7919), 8);
      // ...and its fragment spread, whose parse cache, interning and
      // region-grouped verify_ball are the hot paths under test.
      const FragmentSpreadScheme spread(*entry.scheme, t);
      fuzz_scheme(spread, cfg, t, 0xBEEFu ^ (t * 104729), 8);
    }
  }
}

// The batch pipeline AND the delta path under the same fuzz: a whole
// mutation trail is run (a) as ONE BatchVerifier batch (stage 2 of labeling
// i+1 overlapping the sweep of labeling i, all labelings sharing one
// geometry atlas), and (b) as a delta stream — one full seeding run, then
// run_delta per step with exactly the mutated nodes declared.  Both must
// stay bit-identical to per-labeling baseline verdicts at every thread
// count.  The batch leg is the differential form of the parse-cache
// invalidation regression (adjacent labelings differ by swaps and rewrites,
// so any parse or geometry surviving a labeling boundary flips a verdict);
// the delta leg additionally fuzzes carry-forward itself — stale interned
// class ids, dirty-set under-approximation, or a mis-spliced verdict all
// diverge here.  Every trail deliberately contains a mutate-BACK step (a
// certificate restored to its previous value, the stable-interning trap)
// and a step touching the component's landmark — the min-id node whose
// certificate binds the region/residue structure of the spread schemes.
TEST(FuzzDifferential, BatchedMutationTrailsMatchPerLabelingBaseline) {
  util::Rng rng(0xBA7C4u);
  const auto catalog = schemes::standard_catalog();
  for (const schemes::SchemeEntry& entry : catalog) {
    std::shared_ptr<const graph::Graph> g;
    if (entry.needs_weighted) {
      g = share(graph::reweight_random(graph::random_connected(16, 10, rng),
                                       rng));
    } else if (entry.needs_bipartite) {
      g = share(graph::grid(3, 5));
    } else {
      g = share(graph::random_connected(16, 10, rng));
    }
    const local::Configuration cfg = entry.language->sample_legal(g, rng);

    graph::NodeIndex landmark = 0;
    for (graph::NodeIndex v = 1; v < g->n(); ++v)
      if (g->id(v) < g->id(landmark)) landmark = v;

    // The plain registry scheme's own trail through the delta path (its
    // decoders are radius-invariant, so one t is enough: dirty sets are the
    // closed neighborhoods of the mutated nodes).
    {
      std::vector<core::Labeling> trail;
      std::vector<LabelingDelta> deltas;
      trail.push_back(entry.scheme->mark(cfg));
      for (int m = 0; m < 4; ++m) {
        std::vector<graph::NodeIndex> touched;
        core::Labeling next = mutate(trail.back(), rng, &touched);
        trail.push_back(std::move(next));
        deltas.push_back(LabelingDelta{std::move(touched)});
      }
      std::vector<core::Verdict> oracle;
      for (const core::Labeling& lab : trail)
        oracle.push_back(run_verifier_t_baseline(*entry.scheme, cfg, lab, 2));
      for (const unsigned threads : {1u, 2u, 0u}) {
        BatchOptions options;
        options.threads = threads;
        BatchVerifier delta_verifier(*entry.scheme, cfg, 2, options);
        ASSERT_EQ(oracle[0].accept(),
                  delta_verifier.run_one(trail[0]).accept());
        for (std::size_t i = 1; i < trail.size(); ++i)
          ASSERT_EQ(oracle[i].accept(),
                    delta_verifier.run_delta(trail[i], deltas[i - 1]).accept())
              << entry.label << " plain delta step " << i << " threads "
              << delta_verifier.threads();
      }
    }

    for (const unsigned t : {1u, 2u, 4u}) {
      const FragmentSpreadScheme spread(*entry.scheme, t);

      std::vector<core::Labeling> trail;
      std::vector<LabelingDelta> deltas;  // per step, vs the previous one
      trail.push_back(spread.mark(cfg));
      const auto push = [&](core::Labeling lab,
                            std::vector<graph::NodeIndex> touched) {
        trail.push_back(std::move(lab));
        deltas.push_back(LabelingDelta{std::move(touched)});
      };
      for (int m = 0; m < 3; ++m) {
        std::vector<graph::NodeIndex> touched;
        core::Labeling next = mutate(trail.back(), rng, &touched);
        push(std::move(next), std::move(touched));
      }
      {
        // Mutate one certificate back to its honest (initial) value.
        const auto v = static_cast<graph::NodeIndex>(rng.below(cfg.n()));
        core::Labeling next = trail.back();
        next.certs[v] = trail.front().certs[v];
        push(std::move(next), {v});
        // Corrupt the landmark, then restore it.
        core::Labeling tampered = trail.back();
        tampered.certs[landmark] = local::random_state(rng.below(64), rng);
        push(std::move(tampered), {landmark});
        core::Labeling restored = trail.back();
        restored.certs[landmark] = trail.front().certs[landmark];
        push(std::move(restored), {landmark});
      }

      std::vector<core::Verdict> oracle;
      for (const core::Labeling& lab : trail)
        oracle.push_back(run_verifier_t_baseline(spread, cfg, lab, t));

      for (const unsigned threads : {1u, 2u, 0u}) {  // 0 = hardware
        BatchOptions options;
        options.threads = threads;
        BatchVerifier batch(spread, cfg, t, options);
        const std::vector<core::Verdict> got = batch.run(trail);
        ASSERT_EQ(got.size(), trail.size());
        for (std::size_t i = 0; i < trail.size(); ++i)
          ASSERT_EQ(oracle[i].accept(), got[i].accept())
              << entry.label << " trail step " << i << " threads "
              << batch.threads();

        // The same trail as a delta stream over a fresh verifier.
        BatchVerifier delta_verifier(spread, cfg, t, options);
        ASSERT_EQ(oracle[0].accept(),
                  delta_verifier.run_one(trail[0]).accept());
        for (std::size_t i = 1; i < trail.size(); ++i)
          ASSERT_EQ(oracle[i].accept(),
                    delta_verifier.run_delta(trail[i], deltas[i - 1]).accept())
              << entry.label << " delta step " << i << " t " << t
              << " threads " << delta_verifier.threads();
      }
    }
  }
}

// A second, smaller sweep over a graph family with structure the random
// instances lack (paths, cycles, stars: long balls, pendant nodes).
TEST(FuzzDifferential, StructuredGraphsAllEnginesAgree) {
  const auto catalog = schemes::standard_catalog();
  const schemes::SchemeEntry* stp = nullptr;
  for (const schemes::SchemeEntry& entry : catalog)
    if (entry.label == "stp") stp = &entry;
  ASSERT_NE(stp, nullptr);
  util::Rng rng(0x57A7u);
  for (auto& g : {share(graph::path(13)), share(graph::cycle(12)),
                  share(graph::star(9))}) {
    const local::Configuration cfg = stp->language->sample_legal(g, rng);
    for (const unsigned t : {2u, 4u}) {
      const FragmentSpreadScheme spread(*stp->scheme, t);
      fuzz_scheme(spread, cfg, t, 0xCAFEu ^ (t * 31), 10);
    }
  }
}

}  // namespace
}  // namespace pls::radius
