// The delta path's own contract tests (the differential fuzz in
// test_fuzz_differential.cpp replays whole mutation trails through it;
// these pin the mechanism): the reverse-ball index equals brute-force
// distance, an empty mutation set does literally no stage work, stable
// interning survives a mutate-back, the full-relink fallback serves schemes
// without the incremental hook, and run_delta is bit-identical to a
// from-scratch run at every thread count.
#include "radius/delta.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "graph/algorithms.hpp"
#include "radius/batch.hpp"
#include "radius/fragment_spread.hpp"
#include "radius/parse_link.hpp"
#include "radius/spread.hpp"
#include "schemes/spanning_tree.hpp"
#include "testing/helpers.hpp"

namespace pls::radius {
namespace {

using core::Labeling;
using core::Verdict;
using pls::testing::share;

Labeling random_labeling(std::size_t n, util::Rng& rng) {
  Labeling lab;
  for (std::size_t v = 0; v < n; ++v)
    lab.certs.push_back(local::random_state(rng.below(96), rng));
  return lab;
}

/// Brute-force dirty set: every center within hop distance r of a touched
/// node, via per-source BFS over the whole graph.
std::vector<graph::NodeIndex> brute_dirty(
    const graph::Graph& g, unsigned r,
    std::span<const graph::NodeIndex> touched) {
  std::vector<bool> dirty(g.n(), false);
  for (const graph::NodeIndex v : touched) {
    const graph::BfsResult bfs = graph::bfs(g, v);
    for (graph::NodeIndex u = 0; u < g.n(); ++u)
      if (bfs.dist[u] != graph::BfsResult::kUnreachable && bfs.dist[u] <= r)
        dirty[u] = true;
  }
  std::vector<graph::NodeIndex> out;
  for (graph::NodeIndex u = 0; u < g.n(); ++u)
    if (dirty[u]) out.push_back(u);
  return out;
}

TEST(LabelingDelta, DiffFindsExactlyTheMutatedNodes) {
  util::Rng rng(61001);
  Labeling prev = random_labeling(12, rng);
  Labeling next = prev;
  next.certs[3] = local::random_state(40, rng);
  next.certs[7] = local::Certificate{};
  // A same-value rewrite is NOT a difference.
  next.certs[5] = prev.certs[5];
  const LabelingDelta delta = LabelingDelta::diff(prev, next);
  EXPECT_EQ(delta.touched, (std::vector<graph::NodeIndex>{3, 7}));
  EXPECT_TRUE(LabelingDelta::diff(prev, prev).touched.empty());

  Labeling shorter = prev;
  shorter.certs.pop_back();
  EXPECT_THROW(LabelingDelta::diff(prev, shorter), std::logic_error);
}

TEST(DirtyIndex, MatchesBruteForceDistance) {
  util::Rng rng(61002);
  const std::vector<std::shared_ptr<const graph::Graph>> graphs = {
      share(graph::path(17)), share(graph::cycle(12)), share(graph::star(9)),
      share(graph::grid(4, 6)), share(graph::random_connected(40, 25, rng))};
  GeometryAtlas atlas;
  DirtyIndex index;
  for (const auto& g : graphs) {
    for (const unsigned r : {1u, 2u, 4u}) {
      for (int trial = 0; trial < 4; ++trial) {
        std::vector<graph::NodeIndex> touched;
        const std::size_t k = 1 + rng.below(3);
        for (std::size_t i = 0; i < k; ++i)
          touched.push_back(
              static_cast<graph::NodeIndex>(rng.below(g->n())));
        // Duplicates are allowed and must not duplicate dirty centers.
        touched.push_back(touched.front());
        const auto got = index.collect(atlas, *g, r, touched);
        EXPECT_EQ(std::vector<graph::NodeIndex>(got.begin(), got.end()),
                  brute_dirty(*g, r, touched))
            << g->describe() << " r=" << r;
      }
    }
  }
}

TEST(BatchVerifierDelta, RequiresAResidentRun) {
  const schemes::StpLanguage language;
  const schemes::StpScheme base(language);
  const SpreadScheme spread(base, 2);
  util::Rng rng(61003);
  auto g = share(graph::random_connected(14, 8, rng));
  const local::Configuration cfg = language.sample_legal(g, rng);
  const Labeling honest = spread.mark(cfg);

  BatchVerifier verifier(spread, cfg, 2);
  EXPECT_FALSE(verifier.has_resident());
  EXPECT_THROW(verifier.run_delta(honest, LabelingDelta{}), std::logic_error);
  verifier.run_one(honest);
  EXPECT_TRUE(verifier.has_resident());
  // An empty run() leaves the resident state alone.
  EXPECT_TRUE(verifier.run({}).empty());
  EXPECT_TRUE(verifier.has_resident());

  LabelingDelta out_of_range;
  out_of_range.touched = {static_cast<graph::NodeIndex>(cfg.n())};
  EXPECT_THROW(verifier.run_delta(honest, out_of_range), std::logic_error);
}

TEST(BatchVerifierDelta, EmptyDeltaDoesNoWorkAndSplicesTheVerdict) {
  const schemes::StpLanguage language;
  const schemes::StpScheme base(language);
  const SpreadScheme spread(base, 4);
  util::Rng rng(61004);
  auto g = share(graph::random_connected(20, 12, rng));
  const local::Configuration cfg = language.sample_legal(g, rng);

  Labeling tampered = spread.mark(cfg);
  tampered.certs[5] = local::random_state(33, rng);

  BatchVerifier verifier(spread, cfg, 4);
  const Verdict full = verifier.run_one(tampered);
  const DeltaStats before = verifier.delta_stats();
  EXPECT_EQ(before.delta_runs, 0u);

  const Verdict spliced = verifier.run_delta(tampered, LabelingDelta{});
  EXPECT_EQ(spliced.accept(), full.accept());
  // Rejection-count semantics: the spliced verdict counts its own bits.
  EXPECT_EQ(spliced.rejections(), full.rejections());

  const DeltaStats after = verifier.delta_stats();
  EXPECT_EQ(after.delta_runs, 1u);
  EXPECT_EQ(after.empty_runs, 1u);
  EXPECT_EQ(after.certs_reparsed, 0u);
  EXPECT_EQ(after.links_incremental, 0u);
  EXPECT_EQ(after.links_full, 0u);
  EXPECT_EQ(after.centers_reswept, 0u);
  EXPECT_EQ(after.verdicts_carried, 0u);
}

/// One delta step checked against a from-scratch verifier, at every thread
/// count, with the stats accounted against the brute-force dirty set.
void expect_delta_matches_full(const core::Scheme& scheme,
                               const local::Configuration& cfg, unsigned t,
                               const Labeling& start,
                               const std::vector<Labeling>& stream,
                               const std::vector<LabelingDelta>& deltas) {
  ASSERT_EQ(stream.size(), deltas.size());
  for (const unsigned threads : {1u, 2u, 0u}) {  // 0 = hardware
    BatchOptions options;
    options.threads = threads;
    BatchVerifier delta_verifier(scheme, cfg, t, options);
    BatchVerifier full_verifier(scheme, cfg, t, options);
    ASSERT_EQ(delta_verifier.run_one(start).accept(),
              full_verifier.run_one(start).accept());
    for (std::size_t i = 0; i < stream.size(); ++i) {
      const Verdict expect = full_verifier.run_one(stream[i]);
      const Verdict got = delta_verifier.run_delta(stream[i], deltas[i]);
      ASSERT_EQ(expect.accept(), got.accept())
          << scheme.name() << " step " << i << " threads "
          << delta_verifier.threads();
    }
  }
}

TEST(BatchVerifierDelta, SingleMutationsMatchFullRunsIncludingMutateBack) {
  const schemes::StpLanguage language;
  const schemes::StpScheme base(language);
  util::Rng rng(61005);
  auto g = share(graph::random_connected(26, 16, rng));
  const local::Configuration cfg = language.sample_legal(g, rng);

  for (const unsigned t : {2u, 4u}) {
    const SpreadScheme spread(base, t);
    const Labeling honest = spread.mark(cfg);

    // Landmark of the (single) component: the minimum-id node — mutating it
    // exercises the residue-0 binding and the chunk the landmark carries.
    graph::NodeIndex landmark = 0;
    for (graph::NodeIndex v = 1; v < g->n(); ++v)
      if (g->id(v) < g->id(landmark)) landmark = v;

    std::vector<Labeling> stream;
    std::vector<LabelingDelta> deltas;
    const auto push = [&](Labeling lab, std::vector<graph::NodeIndex> touched) {
      stream.push_back(std::move(lab));
      deltas.push_back(LabelingDelta{std::move(touched)});
    };

    Labeling cur = honest;
    cur.certs[9] = local::random_state(41, rng);
    push(cur, {9});
    // Mutate BACK to the honest value: the re-interned chunk must get its
    // old class id back (stable interning), and the verdict must return to
    // all-accept.
    cur.certs[9] = honest.certs[9];
    push(cur, {9});
    // Touch the landmark.
    cur.certs[landmark] = local::random_state(17, rng);
    push(cur, {landmark});
    cur.certs[landmark] = honest.certs[landmark];
    push(cur, {landmark});
    // Copy another node's certificate (equal-payload interning across
    // nodes), declared with a duplicate and an untouched extra node — an
    // over-approximated delta must behave identically.
    cur.certs[3] = cur.certs[12];
    push(cur, {3, 3, 5});

    expect_delta_matches_full(spread, cfg, t, honest, stream, deltas);
  }
}

TEST(BatchVerifierDelta, DeltaAfterBatchBuildsOnTheLastLabeling) {
  const schemes::StpLanguage language;
  const schemes::StpScheme base(language);
  const SpreadScheme spread(base, 2);
  util::Rng rng(61006);
  auto g = share(graph::grid(4, 6));
  const local::Configuration cfg = language.sample_legal(g, rng);
  const Labeling honest = spread.mark(cfg);

  Labeling second = honest;
  second.certs[2] = local::random_state(12, rng);
  Labeling third = second;
  third.certs[11] = local::random_state(30, rng);
  const std::vector<Labeling> batch = {honest, second, third};

  BatchVerifier verifier(spread, cfg, 2);
  verifier.run(batch);  // resident = `third`
  Labeling next = third;
  next.certs[11] = honest.certs[11];
  LabelingDelta delta;
  delta.touched = {11};
  const Verdict got = verifier.run_delta(next, delta);
  EXPECT_EQ(got.accept(),
            run_verifier_t_baseline(spread, cfg, next, 2).accept());
  // And the two-labeling convenience overload diffs for us.
  Labeling final = next;
  final.certs[2] = honest.certs[2];
  const Verdict got2 = verifier.run_delta(next, final);
  EXPECT_EQ(got2.accept(),
            run_verifier_t_baseline(spread, cfg, final, 2).accept());
  EXPECT_TRUE(got2.all_accept());  // back to the honest marking
}

TEST(BatchVerifierDelta, StatsAccountReparsesAndDirtySweeps) {
  const schemes::StpLanguage language;
  const schemes::StpScheme base(language);
  const SpreadScheme spread(base, 2);
  util::Rng rng(61007);
  auto g = share(graph::path(15));  // balls are small and easy to count
  const local::Configuration cfg = language.sample_legal(g, rng);
  const Labeling honest = spread.mark(cfg);

  BatchVerifier verifier(spread, cfg, 2);
  verifier.run_one(honest);

  Labeling next = honest;
  next.certs[7] = local::random_state(21, rng);
  LabelingDelta delta;
  delta.touched = {7};
  verifier.run_delta(next, delta);

  const DeltaStats stats = verifier.delta_stats();
  EXPECT_EQ(stats.delta_runs, 1u);
  EXPECT_EQ(stats.certs_reparsed, 1u);
  EXPECT_EQ(stats.links_incremental, 1u);
  EXPECT_EQ(stats.links_full, 0u);
  // On a path, B(7, 2) = {5, 6, 7, 8, 9}.
  EXPECT_EQ(stats.centers_reswept, 5u);
  EXPECT_EQ(stats.verdicts_carried, cfg.n() - 5u);
}

// Plain 1-round schemes go through the delta path too: their decoders read
// only layer 1, so the dirty radius is 1 whatever t the verifier is pinned
// at — and no geometry atlas traffic happens at all.
TEST(BatchVerifierDelta, PlainSchemesUseRadiusOneDirtySets) {
  const schemes::StpLanguage language;
  const schemes::StpScheme stp(language);
  util::Rng rng(61008);
  auto g = share(graph::star(9));
  const local::Configuration cfg = language.sample_legal(g, rng);
  const Labeling honest = stp.mark(cfg);

  BatchVerifier verifier(stp, cfg, 3);
  verifier.run_one(honest);
  Labeling next = honest;
  next.certs[4] = local::random_state(9, rng);  // a leaf of the star
  LabelingDelta delta;
  delta.touched = {4};
  const Verdict got = verifier.run_delta(next, delta);
  EXPECT_EQ(got.accept(),
            run_verifier_t_baseline(stp, cfg, next, 3).accept());
  // Dirty = the leaf and the hub, not the whole star.
  EXPECT_EQ(verifier.delta_stats().centers_reswept, 2u);
  EXPECT_EQ(verifier.atlas().stats().misses, 0u);
}

/// A ball scheme with a parse cache but no incremental link: accept iff
/// every ball member's certificate length is congruent to the center's
/// mod 4 (arbitrary, total, and sensitive to any length mutation).  Its
/// delta runs must take the full-relink fallback and still be exact.
class NoRelinkScheme final : public BallScheme {
 public:
  explicit NoRelinkScheme(const core::Language& language)
      : language_(language) {}

  std::string_view name() const noexcept override { return "norelink"; }
  const core::Language& language() const noexcept override {
    return language_;
  }
  unsigned radius() const noexcept override { return 2; }

  core::Labeling mark(const local::Configuration& cfg) const override {
    core::Labeling lab;
    lab.certs.assign(cfg.n(), local::Certificate{});
    return lab;
  }

  std::size_t proof_size_bound(std::size_t, std::size_t) const override {
    return 0;
  }

  bool has_cert_parser() const noexcept override { return true; }
  std::unique_ptr<ParsedCert> parse_cert(
      const local::Certificate& cert) const override {
    auto parsed = std::make_unique<Parsed>();
    parsed->len = cert.bit_size();
    return parsed;
  }

  bool verify_ball(const RadiusContext& ctx) const override {
    const auto len_of = [&](std::size_t i) {
      const BallMember& m = ctx.ball().members()[i];
      if (ctx.has_parse_cache())
        return static_cast<const Parsed*>(ctx.parsed(m.node))->len;
      return m.cert->bit_size();
    };
    const std::size_t own = len_of(0) % 4;
    for (std::size_t i = 1; i < ctx.ball().size(); ++i)
      if (len_of(i) % 4 != own) return false;
    return true;
  }

 private:
  struct Parsed final : ParsedCert {
    std::size_t len = 0;
  };
  const core::Language& language_;
};

TEST(BatchVerifierDelta, SchemesWithoutRelinkFallBackToFullLink) {
  const schemes::StpLanguage language;
  const NoRelinkScheme scheme(language);
  util::Rng rng(61009);
  auto g = share(graph::random_connected(18, 10, rng));
  const local::Configuration cfg = language.sample_legal(g, rng);

  Labeling cur = random_labeling(cfg.n(), rng);
  BatchVerifier verifier(scheme, cfg, 2);
  verifier.run_one(cur);
  for (int step = 0; step < 6; ++step) {
    const auto v = static_cast<graph::NodeIndex>(rng.below(cfg.n()));
    cur.certs[v] = local::random_state(rng.below(64), rng);
    LabelingDelta delta;
    delta.touched = {v};
    const Verdict got = verifier.run_delta(cur, delta);
    EXPECT_EQ(got.accept(),
              run_verifier_t_baseline(scheme, cfg, cur, 2).accept())
        << "step " << step;
  }
  EXPECT_EQ(verifier.delta_stats().links_full, 6u);
  EXPECT_EQ(verifier.delta_stats().links_incremental, 0u);
}

// The fragment spread's delta runs under region structure: mutations of
// region-interior, landmark, and region-id-bearing certificates all replay
// exactly (the fuzz harness covers this registry-wide; this is the directed
// version on MST-like regional redundancy via the mechanical candidates).
TEST(BatchVerifierDelta, FragmentSpreadDeltasMatchFullRuns) {
  const schemes::StpLanguage language;
  const schemes::StpScheme base(language);
  const FragmentSpreadScheme spread(base, 4);
  util::Rng rng(61010);
  auto g = share(graph::random_connected(24, 14, rng));
  const local::Configuration cfg = language.sample_legal(g, rng);
  const Labeling honest = spread.mark(cfg);

  std::vector<Labeling> stream;
  std::vector<LabelingDelta> deltas;
  Labeling cur = honest;
  for (int step = 0; step < 8; ++step) {
    const auto v = static_cast<graph::NodeIndex>(rng.below(cfg.n()));
    cur.certs[v] = step % 3 == 2 ? honest.certs[v]
                                 : local::random_state(rng.below(80), rng);
    stream.push_back(cur);
    deltas.push_back(LabelingDelta{{v}});
  }
  expect_delta_matches_full(spread, cfg, 4, honest, stream, deltas);
}

// ---- Bounded link state (the satellite bugfix) ----------------------------
//
// The intern table is append-only between full links, so a mutation stream
// that keeps inventing payloads is the worst case: without the re-seed it
// grows one entry per step forever.  These tests drive exactly that stream.

/// Minimal stand-in satisfying the parse_link template contract
/// (`wire.chunk` payload + `chunk_class` slot) — the real SpreadParsed /
/// FragmentParsed are translation-unit-local to their schemes.
struct FakeParsed final : ParsedCert {
  struct Wire {
    util::BitString chunk;
  } wire;
  std::uint32_t chunk_class = 0;
};

TEST(ChunkInternState, RelinkReseedsKeepTheTableBounded) {
  constexpr std::size_t kN = 64;
  constexpr int kSteps = 10000;
  std::vector<std::unique_ptr<ParsedCert>> parsed;
  for (std::size_t v = 0; v < kN; ++v) {
    auto p = std::make_unique<FakeParsed>();
    p->wire.chunk = util::BitString::of_uint(v, 32);
    parsed.push_back(std::move(p));
  }
  detail::ChunkInternState state;
  detail::intern_chunk_classes_stateful<FakeParsed>(state, parsed);
  ASSERT_EQ(state.classes.size(), kN);

  std::size_t peak = state.classes.size();
  std::uint64_t fresh = kN;  // every step's payload is novel
  for (int step = 0; step < kSteps; ++step) {
    const auto v = static_cast<graph::NodeIndex>(step % kN);
    static_cast<FakeParsed*>(parsed[v].get())->wire.chunk =
        util::BitString::of_uint(fresh++, 32);
    const graph::NodeIndex touched[] = {v};
    detail::relink_chunk_classes<FakeParsed>(state, parsed, touched);
    peak = std::max(peak, state.classes.size());
  }
  // Bounded: one relink can overshoot the bound by its own touched set (one
  // entry here) before the re-seed snaps the table back to the live set.
  EXPECT_LE(peak, detail::kReseedClassMultiple * kN + 1);
  // And the stream genuinely exercised the bound, roughly every
  // (kReseedClassMultiple - 1) * kN novel payloads.
  EXPECT_GE(state.reseeds, static_cast<std::uint64_t>(
                kSteps / ((detail::kReseedClassMultiple) * kN)));

  // Id coherence after many epochs: equal payloads share a class, distinct
  // payloads never do — the contract every carried-forward comparison rests
  // on.
  std::vector<std::uint32_t> classes;
  for (const auto& p : parsed)
    classes.push_back(static_cast<const FakeParsed*>(p.get())->chunk_class);
  for (std::size_t a = 0; a < kN; ++a)
    for (std::size_t b = a + 1; b < kN; ++b) {
      const auto* pa = static_cast<const FakeParsed*>(parsed[a].get());
      const auto* pb = static_cast<const FakeParsed*>(parsed[b].get());
      EXPECT_EQ(pa->wire.chunk == pb->wire.chunk, classes[a] == classes[b]);
    }
}

// End to end: a >=10k-step single-certificate mutation stream through
// run_delta, every verdict checked against a from-scratch run, with the
// re-seed observable through DeltaStats and the table bounded throughout
// (if it were not, the peak-assertion above would fail first — here the
// gate is that re-seeding never perturbs a verdict).
TEST(BatchVerifierDelta, TenThousandStepStreamStaysExactAndReseeds) {
  const schemes::StpLanguage language;
  const schemes::StpScheme base(language);
  const SpreadScheme spread(base, 2);
  util::Rng rng(61011);
  auto g = share(graph::random_connected(24, 14, rng));
  const local::Configuration cfg = language.sample_legal(g, rng);
  const Labeling honest = spread.mark(cfg);

  BatchVerifier delta_verifier(spread, cfg, 2);
  BatchVerifier full_verifier(spread, cfg, 2);
  delta_verifier.run_one(honest);

  Labeling cur = honest;
  int divergences = 0;
  for (int step = 0; step < 10000; ++step) {
    const auto v = static_cast<graph::NodeIndex>(rng.below(cfg.n()));
    // Mostly novel payloads (the table-growing worst case), with periodic
    // mutate-backs so stable interning across re-seed epochs is exercised.
    cur.certs[v] = step % 7 == 6 ? honest.certs[v]
                                 : local::random_state(24 + rng.below(40), rng);
    LabelingDelta delta;
    delta.touched = {v};
    const Verdict got = delta_verifier.run_delta(cur, delta);
    const Verdict expect = full_verifier.run_one(cur);
    if (got.accept() != expect.accept()) {
      ++divergences;
      ASSERT_LT(divergences, 5) << "step " << step;  // fail loud, not 10k times
      ADD_FAILURE() << "verdict divergence at step " << step;
    }
  }
  const DeltaStats stats = delta_verifier.delta_stats();
  EXPECT_EQ(stats.delta_runs, 10000u);
  EXPECT_EQ(stats.links_incremental, 10000u);
  EXPECT_GT(stats.link_reseeds, 0u);  // the bound really triggered
}

}  // namespace
}  // namespace pls::radius
