// SpreadScheme: completeness and soundness of the mechanical 1-round ->
// t-PLS transform, plus the proof-size/t tradeoff it exists to demonstrate.
#include "radius/spread.hpp"

#include <gtest/gtest.h>

#include "radius/spread_wire.hpp"
#include "schemes/agree.hpp"
#include "schemes/common.hpp"
#include "schemes/mst.hpp"
#include "schemes/registry.hpp"
#include "schemes/spanning_tree.hpp"
#include "testing/helpers.hpp"

namespace pls::radius {
namespace {

using pls::testing::share;

void expect_complete_t(const SpreadScheme& scheme,
                       const local::Configuration& cfg) {
  ASSERT_TRUE(scheme.language().contains(cfg));
  const core::Labeling lab = scheme.mark(cfg);
  const core::Verdict verdict =
      run_verifier_t(scheme, cfg, lab, scheme.radius());
  EXPECT_TRUE(verdict.all_accept())
      << scheme.name() << " rejected a legal configuration at "
      << verdict.rejections() << " nodes on " << cfg.graph().describe();
  EXPECT_LE(lab.max_bits(),
            scheme.proof_size_bound(cfg.n(), cfg.max_state_bits()))
      << scheme.name() << " exceeded its proof-size bound on "
      << cfg.graph().describe();
}

TEST(Spread, StpCompletenessSweep) {
  const schemes::StpLanguage language;
  const schemes::StpScheme base(language);
  for (const unsigned t : {1u, 2u, 4u, 8u}) {
    const SpreadScheme spread(base, t);
    for (auto& g : pls::testing::unweighted_family(131)) {
      util::Rng rng(137);
      expect_complete_t(spread, language.sample_legal(g, rng));
    }
  }
}

TEST(Spread, StlCompletenessSweep) {
  const schemes::StlLanguage language;
  const schemes::StlScheme base(language);
  for (const unsigned t : {2u, 4u, 8u}) {
    const SpreadScheme spread(base, t);
    for (auto& g : pls::testing::unweighted_family(139)) {
      util::Rng rng(149);
      expect_complete_t(spread, language.sample_legal(g, rng));
    }
  }
}

TEST(Spread, MstCompletenessSweep) {
  const schemes::MstLanguage language;
  const schemes::MstScheme base(language);
  for (const unsigned t : {2u, 4u}) {
    const SpreadScheme spread(base, t);
    for (auto& g : pls::testing::weighted_family(151)) {
      util::Rng rng(157);
      expect_complete_t(spread, language.sample_legal(g, rng));
    }
  }
}

// The full adversary suite drives the t-round engine against the spread
// spanning-tree scheme on the classic illegal configurations.
TEST(Spread, StpSoundOnMeetInTheMiddle) {
  const schemes::StpLanguage language;
  const schemes::StpScheme base(language);
  const std::size_t n = 8;
  auto g = share(graph::path(n));
  std::vector<local::State> states;
  for (std::size_t v = 0; v < n; ++v) {
    if (v == 0 || v == n - 1) {
      states.push_back(schemes::encode_pointer(std::nullopt));
    } else if (v < n / 2) {
      states.push_back(
          schemes::encode_pointer(g->id(static_cast<graph::NodeIndex>(v - 1))));
    } else {
      states.push_back(
          schemes::encode_pointer(g->id(static_cast<graph::NodeIndex>(v + 1))));
    }
  }
  const local::Configuration cfg(g, states);
  for (const unsigned t : {2u, 4u, 8u}) {
    const SpreadScheme spread(base, t);
    pls::testing::expect_sound(spread, cfg, 163);
  }
}

TEST(Spread, StpSoundOnCycle) {
  const schemes::StpLanguage language;
  const schemes::StpScheme base(language);
  auto g = share(graph::cycle(6));
  std::vector<local::State> states;
  for (std::size_t v = 0; v < 6; ++v)
    states.push_back(schemes::encode_pointer(
        g->id(static_cast<graph::NodeIndex>((v + 1) % 6))));
  const local::Configuration cfg(g, states);
  for (const unsigned t : {2u, 4u, 8u}) {
    const SpreadScheme spread(base, t);
    pls::testing::expect_sound(spread, cfg, 167);
  }
}

TEST(Spread, StpSoundOnTwoRoots) {
  const schemes::StpLanguage language;
  const schemes::StpScheme base(language);
  auto g = share(graph::path(6));
  auto cfg = language.make_tree(g, 0).with_state(
      3, schemes::encode_pointer(std::nullopt));
  for (const unsigned t : {2u, 4u, 8u}) {
    const SpreadScheme spread(base, t);
    pls::testing::expect_sound(spread, cfg, 173);
  }
}

TEST(Spread, TamperedCertificateRejected) {
  const schemes::StpLanguage language;
  const schemes::StpScheme base(language);
  const SpreadScheme spread(base, 4);
  util::Rng rng(179);
  auto g = share(graph::grid(4, 4));
  const auto cfg = language.sample_legal(g, rng);
  core::Labeling lab = spread.mark(cfg);
  // Flip the chunk bits of one node by replacing its certificate wholesale.
  lab.certs[5] = local::random_state(lab.certs[5].bit_size(), rng);
  EXPECT_GE(run_verifier_t(spread, cfg, lab, 4).rejections(), 1u);
}

TEST(Spread, RadiusBeyondDiameterStillComplete) {
  const schemes::StpLanguage language;
  const schemes::StpScheme base(language);
  const SpreadScheme spread(base, 32);
  auto g = share(graph::path(6));  // diameter 5 << 32
  expect_complete_t(spread, language.make_tree(g, 2));
}

// Spreading works per component: certificates-only visibility, two
// components, landmark BFS and chunk classes confined to each.
TEST(Spread, DisconnectedAgreeComponents) {
  const schemes::AgreeLanguage language(48);
  const schemes::AgreeScheme base(language);
  const SpreadScheme spread(base, 4);
  graph::Graph::Builder b;
  for (graph::RawId id = 1; id <= 7; ++id) b.add_node(id);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);  // path 0-1-2-3
  b.add_edge(4, 5);
  b.add_edge(5, 6);  // path 4-5-6
  auto g = share(std::move(b).build());
  ASSERT_FALSE(g->is_connected());
  std::vector<local::State> states(
      g->n(), language.encode_value(0xBEEF'CAFE'1234ull));
  const local::Configuration cfg(g, states);
  ASSERT_TRUE(language.contains(cfg));
  const core::Labeling lab = spread.mark(cfg);
  EXPECT_TRUE(run_verifier_t(spread, cfg, lab, 4).all_accept());
}

TEST(Spread, InvalidRadiiRejected) {
  const schemes::StpLanguage language;
  const schemes::StpScheme base(language);
  EXPECT_THROW(SpreadScheme(base, 0), std::logic_error);
  EXPECT_THROW(SpreadScheme(base, 64), std::logic_error);
  // Running a radius-4 scheme in a radius-2 engine is invalid input too.
  const SpreadScheme spread(base, 4);
  auto g = share(graph::path(5));
  const auto cfg = language.make_tree(g, 0);
  const core::Labeling lab = spread.mark(cfg);
  EXPECT_THROW(run_verifier_t(spread, cfg, lab, 2), std::logic_error);
}

TEST(Spread, BallSchemeRejectsOneRoundEngine) {
  const schemes::StpLanguage language;
  const schemes::StpScheme base(language);
  const SpreadScheme spread(base, 2);
  auto g = share(graph::path(4));
  const auto cfg = language.make_tree(g, 0);
  const core::Labeling lab = spread.mark(cfg);
  EXPECT_THROW(core::run_verifier(spread, cfg, lab), std::logic_error);
}

// The point of the subsystem: with a large id space the shared prefix (the
// root id) dominates the spanning-tree certificate, and spreading it over
// radius-t balls shrinks the maximum certificate as t grows.
TEST(Spread, MaxBitsDecreaseWithRadius) {
  const schemes::StpLanguage language;
  const schemes::StpScheme base(language);
  util::Rng rng(191);
  auto g = share(graph::relabel_random(graph::random_connected(256, 128, rng),
                                       rng, graph::RawId{1} << 56));
  const auto cfg = language.sample_legal(g, rng);

  std::size_t prev = base.mark(cfg).max_bits();
  for (const unsigned t : {2u, 4u, 8u}) {
    const SpreadScheme spread(base, t);
    const std::size_t bits = spread.mark(cfg).max_bits();
    EXPECT_LT(bits, prev) << "t=" << t;
    prev = bits;
  }
}

// The spread header's residue field is sized by the actual chunk-count cap
// k <= t/2 + 1, not by the 6-bit worst case of the k field: the bound must
// still dominate every marker output across the registry, and shrink as the
// old hardcoded bit_width(62) residue bound is replaced.
TEST(Spread, ProofSizeBoundCoversRegistryAtAllRadii) {
  util::Rng rng(941);
  for (const schemes::SchemeEntry& entry : schemes::standard_catalog()) {
    std::shared_ptr<const graph::Graph> g;
    if (entry.needs_weighted) {
      g = share(graph::reweight_random(graph::random_connected(14, 10, rng),
                                       rng));
    } else if (entry.needs_bipartite) {
      g = share(graph::grid(2, 7));
    } else {
      g = share(graph::random_connected(14, 10, rng));
    }
    const local::Configuration cfg = entry.language->sample_legal(g, rng);
    for (const unsigned t : {1u, 2u, 4u, 8u}) {
      const SpreadScheme spread(*entry.scheme, t);
      const core::Labeling lab = spread.mark(cfg);
      const std::size_t bound =
          spread.proof_size_bound(cfg.n(), cfg.max_state_bits());
      EXPECT_GE(bound, lab.max_bits())
          << spread.name() << " bound below an actual certificate on "
          << cfg.graph().describe();

      // Independent header check: measure the real header of every marked
      // certificate by parsing it (header = total - suffix - chunk) and
      // assert the bound's header budget covers it.  This catches a residue
      // field undercount without restating the production formula.
      const std::size_t base_bound =
          entry.scheme->proof_size_bound(cfg.n(), cfg.max_state_bits());
      ASSERT_GE(bound, base_bound);
      const std::size_t header_budget = bound - base_bound;
      for (const local::Certificate& cert : lab.certs) {
        const auto wire = detail::parse_wire(cert);
        ASSERT_TRUE(wire.has_value()) << spread.name();
        const std::size_t measured_header = cert.bit_size() -
                                            wire->suffix.bit_size() -
                                            wire->chunk.bit_size();
        EXPECT_LE(measured_header, header_budget) << spread.name();
      }

      // Tightness regression: the residue field is sized by k <= t/2 + 1,
      // so for t <= 8 the bound must be strictly below the old formula that
      // budgeted the residue at the k field's 6-bit ceiling.
      EXPECT_LT(bound, base_bound + detail::kChunkCountField +
                           util::bit_width_for(62) +
                           detail::varint_bits(base_bound))
          << spread.name();
    }
  }
}

}  // namespace
}  // namespace pls::radius
