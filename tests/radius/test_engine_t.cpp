// run_verifier_t: t = 1 equivalence with the 1-round engine across the full
// scheme registry, radius-invariance of 1-round decoders, input validation,
// and t-round message accounting.
#include "radius/engine_t.hpp"

#include <gtest/gtest.h>

#include "schemes/leader.hpp"
#include "schemes/registry.hpp"
#include "testing/helpers.hpp"

namespace pls::radius {
namespace {

using core::Labeling;
using core::Verdict;
using pls::testing::share;

std::shared_ptr<const graph::Graph> graph_for(
    const schemes::SchemeEntry& entry, util::Rng& rng) {
  if (entry.needs_weighted)
    return share(
        graph::reweight_random(graph::random_connected(12, 8, rng), rng));
  if (entry.needs_bipartite) return share(graph::grid(2, 6));
  return share(graph::random_connected(12, 8, rng));
}

Labeling random_labeling(std::size_t n, util::Rng& rng) {
  Labeling lab;
  for (std::size_t v = 0; v < n; ++v)
    lab.certs.push_back(local::random_state(rng.below(96), rng));
  return lab;
}

void expect_same_verdict(const Verdict& a, const Verdict& b,
                         const std::string& label) {
  ASSERT_EQ(a.accept().size(), b.accept().size()) << label;
  for (std::size_t v = 0; v < a.accept().size(); ++v)
    EXPECT_EQ(a.accept()[v], b.accept()[v]) << label << " node " << v;
  EXPECT_EQ(a.rejections(), b.rejections()) << label;
}

// Property test over the whole registry: at t = 1 the radius engine is the
// 1-round engine, on honest certificates, corrupted states, and garbage
// certificates alike.
TEST(EngineT, RadiusOneMatchesRunVerifierOnFullRegistry) {
  util::Rng rng(20250'7);
  for (const schemes::SchemeEntry& entry : schemes::standard_catalog()) {
    auto g = graph_for(entry, rng);
    const local::Configuration legal = entry.language->sample_legal(g, rng);
    const Labeling honest = entry.scheme->mark(legal);

    expect_same_verdict(core::run_verifier(*entry.scheme, legal, honest),
                        run_verifier_t(*entry.scheme, legal, honest, 1),
                        entry.label + "/honest");

    const auto corrupted = local::corrupt_random_states(legal, 3, rng);
    expect_same_verdict(
        core::run_verifier(*entry.scheme, corrupted.config, honest),
        run_verifier_t(*entry.scheme, corrupted.config, honest, 1),
        entry.label + "/corrupted");

    for (int trial = 0; trial < 10; ++trial) {
      const Labeling garbage = random_labeling(legal.n(), rng);
      expect_same_verdict(core::run_verifier(*entry.scheme, legal, garbage),
                          run_verifier_t(*entry.scheme, legal, garbage, 1),
                          entry.label + "/garbage");
    }
  }
}

// A 1-round decoder reads only layer 1: extra rounds must not change its
// verdict.
TEST(EngineT, PlainSchemesAreRadiusInvariant) {
  util::Rng rng(311);
  for (const schemes::SchemeEntry& entry : schemes::standard_catalog()) {
    auto g = graph_for(entry, rng);
    const local::Configuration legal = entry.language->sample_legal(g, rng);
    const Labeling honest = entry.scheme->mark(legal);
    const Verdict base = run_verifier_t(*entry.scheme, legal, honest, 1);
    for (const unsigned t : {2u, 5u})
      expect_same_verdict(base, run_verifier_t(*entry.scheme, legal, honest, t),
                          entry.label);
  }
}

TEST(EngineT, RadiusZeroIsInvalidInput) {
  const schemes::LeaderLanguage language;
  const schemes::LeaderScheme scheme(language);
  auto g = share(graph::path(4));
  const auto cfg = language.make_with_leader(g, 1);
  const Labeling lab = scheme.mark(cfg);
  EXPECT_THROW(run_verifier_t(scheme, cfg, lab, 0), std::logic_error);
  EXPECT_THROW(completeness_holds_t(scheme, cfg, 0), std::logic_error);
  EXPECT_THROW(verification_round_bits_t(scheme, cfg, lab, 0),
               std::logic_error);
}

TEST(EngineT, LabelingSizeMismatchThrows) {
  const schemes::LeaderLanguage language;
  const schemes::LeaderScheme scheme(language);
  auto g = share(graph::path(4));
  const auto cfg = language.make_with_leader(g, 1);
  Labeling wrong;
  wrong.certs.assign(2, local::Certificate{});
  EXPECT_THROW(run_verifier_t(scheme, cfg, wrong, 1), std::logic_error);
}

TEST(EngineT, CompletenessHoldsAcrossRadii) {
  const schemes::LeaderLanguage language;
  const schemes::LeaderScheme scheme(language);
  auto g = share(graph::grid(3, 3));
  const auto cfg = language.make_with_leader(g, 4);
  for (const unsigned t : {1u, 2u, 4u, 16u})
    EXPECT_TRUE(completeness_holds_t(scheme, cfg, t)) << "t=" << t;
}

TEST(EngineT, RoundBitsReduceToOneRoundAtTOne) {
  util::Rng rng(509);
  for (const schemes::SchemeEntry& entry : schemes::standard_catalog()) {
    auto g = graph_for(entry, rng);
    const local::Configuration legal = entry.language->sample_legal(g, rng);
    const Labeling honest = entry.scheme->mark(legal);
    EXPECT_EQ(verification_round_bits_t(*entry.scheme, legal, honest, 1),
              core::verification_round_bits(*entry.scheme, legal, honest))
        << entry.label;
  }
}

// Hand-computed flooding volume on a path: round r forwards the payloads of
// the distance-(r-1) layer across every incident edge.
TEST(EngineT, RoundBitsFloodingOnPath) {
  const schemes::LeaderLanguage language;
  const schemes::LeaderScheme scheme(language);
  auto g = share(graph::path(3));
  const auto cfg = language.make_with_leader(g, 0);
  const Labeling lab = scheme.mark(cfg);

  auto payload = [&](graph::NodeIndex v) {
    return lab.certs[v].bit_size() + cfg.state(v).bit_size() + 64;
  };
  const std::size_t p0 = payload(0), p1 = payload(1), p2 = payload(2);
  // deg(0)=deg(2)=1, deg(1)=2; radius-1 balls: {0,1}, {0,1,2}, {1,2}.
  const std::size_t expected =
      1 * (p0 + p1) + 2 * (p0 + p1 + p2) + 1 * (p1 + p2);
  EXPECT_EQ(verification_round_bits_t(scheme, cfg, lab, 2), expected);
}

TEST(EngineT, RoundBitsMonotoneInRadius) {
  const schemes::LeaderLanguage language;
  const schemes::LeaderScheme scheme(language);
  auto g = share(graph::cycle(9));
  const auto cfg = language.make_with_leader(g, 2);
  const Labeling lab = scheme.mark(cfg);
  std::size_t prev = 0;
  for (const unsigned t : {1u, 2u, 3u, 4u}) {
    const std::size_t bits = verification_round_bits_t(scheme, cfg, lab, t);
    EXPECT_GT(bits, prev) << "t=" << t;
    prev = bits;
  }
}

}  // namespace
}  // namespace pls::radius
