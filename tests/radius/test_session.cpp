// VerificationSession: parse-once + parallel sweeps must be bit-identical to
// the sequential path and to the pre-session reference engine, across the
// full scheme registry, random graphs, and thread counts 1 / 2 / hardware.
#include "radius/session.hpp"

#include <gtest/gtest.h>

#include "radius/spread.hpp"
#include "schemes/registry.hpp"
#include "schemes/spanning_tree.hpp"
#include "testing/helpers.hpp"

namespace pls::radius {
namespace {

using core::Labeling;
using core::Verdict;
using pls::testing::share;

std::shared_ptr<const graph::Graph> graph_for(
    const schemes::SchemeEntry& entry, util::Rng& rng) {
  if (entry.needs_weighted)
    return share(
        graph::reweight_random(graph::random_connected(14, 10, rng), rng));
  if (entry.needs_bipartite) return share(graph::grid(2, 7));
  return share(graph::random_connected(14, 10, rng));
}

Labeling random_labeling(std::size_t n, util::Rng& rng) {
  Labeling lab;
  for (std::size_t v = 0; v < n; ++v)
    lab.certs.push_back(local::random_state(rng.below(96), rng));
  return lab;
}

void expect_same_verdict(const Verdict& a, const Verdict& b,
                         const std::string& label) {
  ASSERT_EQ(a.accept().size(), b.accept().size()) << label;
  for (std::size_t v = 0; v < a.accept().size(); ++v)
    EXPECT_EQ(a.accept()[v], b.accept()[v]) << label << " node " << v;
}

/// The tentpole property: run_verifier_t (sequential session), the
/// pre-session baseline, and parallel sessions at 2 and hardware threads
/// all return bit-identical verdicts.
void expect_engines_agree(const core::Scheme& scheme,
                          const local::Configuration& cfg,
                          const Labeling& lab, unsigned t,
                          const std::string& label) {
  const Verdict reference = run_verifier_t_baseline(scheme, cfg, lab, t);
  expect_same_verdict(reference, run_verifier_t(scheme, cfg, lab, t),
                      label + "/sequential-session");
  for (const unsigned threads :
       {2u, util::ThreadPool::hardware_threads()}) {
    SessionOptions options;
    options.threads = threads;
    VerificationSession session(scheme, cfg, t, options);
    expect_same_verdict(reference, session.run(lab),
                        label + "/threads=" + std::to_string(threads));
  }
}

// Property test over the whole registry: plain 1-round schemes through the
// session, on honest, corrupted-state, and garbage labelings.
TEST(Session, RegistryVerdictsMatchAcrossThreadCounts) {
  util::Rng rng(40902);
  for (const schemes::SchemeEntry& entry : schemes::standard_catalog()) {
    auto g = graph_for(entry, rng);
    const local::Configuration legal = entry.language->sample_legal(g, rng);
    const Labeling honest = entry.scheme->mark(legal);
    expect_engines_agree(*entry.scheme, legal, honest, 1,
                         entry.label + "/honest");

    const auto corrupted = local::corrupt_random_states(legal, 3, rng);
    expect_engines_agree(*entry.scheme, corrupted.config, honest, 2,
                         entry.label + "/corrupted");

    for (int trial = 0; trial < 4; ++trial)
      expect_engines_agree(*entry.scheme, legal,
                           random_labeling(legal.n(), rng), 1,
                           entry.label + "/garbage");
  }
}

// Ball schemes: the parse-once cache plus the thread pool must not change a
// single verdict bit relative to the cache-less, sequential baseline.
TEST(Session, SpreadVerdictsMatchAcrossThreadCounts) {
  const schemes::StpLanguage language;
  const schemes::StpScheme base(language);
  util::Rng rng(40903);
  for (const unsigned t : {2u, 4u, 8u}) {
    const SpreadScheme spread(base, t);
    for (int instance = 0; instance < 3; ++instance) {
      auto g = share(graph::random_connected(20 + 5 * instance, 12, rng));
      const local::Configuration cfg = language.sample_legal(g, rng);
      const Labeling honest = spread.mark(cfg);
      expect_engines_agree(spread, cfg, honest, t, "spread-honest");

      Labeling tampered = honest;
      tampered.certs[rng.below(cfg.n())] =
          local::random_state(24, rng);
      expect_engines_agree(spread, cfg, tampered, t, "spread-tampered");

      expect_engines_agree(spread, cfg, random_labeling(cfg.n(), rng), t,
                           "spread-garbage");
    }
  }
}

// One session, many labelings: the adversary's usage pattern.  The parse
// cache is rebuilt per run; ball scratch persists.
TEST(Session, ReuseAcrossLabelingsMatchesFreshEngines) {
  const schemes::StpLanguage language;
  const schemes::StpScheme base(language);
  const SpreadScheme spread(base, 4);
  util::Rng rng(40904);
  auto g = share(graph::grid(4, 5));
  const local::Configuration cfg = language.sample_legal(g, rng);

  SessionOptions options;
  options.threads = 2;
  VerificationSession session(spread, cfg, 4, options);
  const Labeling honest = spread.mark(cfg);
  for (int round = 0; round < 5; ++round) {
    Labeling lab = honest;
    for (int k = 0; k < round; ++k)
      lab.certs[rng.below(cfg.n())] = local::random_state(rng.below(40), rng);
    expect_same_verdict(run_verifier_t_baseline(spread, cfg, lab, 4),
                        session.run(lab), "round " + std::to_string(round));
  }
}

// A certificate the parser rejects (parse_cert -> nullptr) must reject every
// ball that contains the node, identically with and without the cache.
TEST(Session, MalformedCertificatesRejectThroughCache) {
  const schemes::StpLanguage language;
  const schemes::StpScheme base(language);
  const SpreadScheme spread(base, 2);
  util::Rng rng(40905);
  auto g = share(graph::path(7));
  const local::Configuration cfg = language.sample_legal(g, rng);
  Labeling lab = spread.mark(cfg);
  lab.certs[3] = local::Certificate{};  // empty: k field unreadable
  const Verdict reference = run_verifier_t_baseline(spread, cfg, lab, 2);
  EXPECT_GE(reference.rejections(), 1u);
  expect_engines_agree(spread, cfg, lab, 2, "malformed");
}

TEST(Session, PlainSchemeMatchesOneRoundEngine) {
  util::Rng rng(40906);
  for (const schemes::SchemeEntry& entry : schemes::standard_catalog()) {
    auto g = graph_for(entry, rng);
    const local::Configuration legal = entry.language->sample_legal(g, rng);
    const Labeling honest = entry.scheme->mark(legal);
    SessionOptions options;
    options.threads = 2;
    VerificationSession session(*entry.scheme, legal, 1, options);
    expect_same_verdict(core::run_verifier(*entry.scheme, legal, honest),
                        session.run(honest), entry.label);
  }
}

TEST(Session, InputValidation) {
  const schemes::StpLanguage language;
  const schemes::StpScheme base(language);
  const SpreadScheme spread(base, 4);
  auto g = share(graph::path(5));
  const auto cfg = language.make_tree(g, 0);
  // t = 0 and t below the scheme's radius are invalid input.
  EXPECT_THROW(VerificationSession(spread, cfg, 0), std::logic_error);
  EXPECT_THROW(VerificationSession(spread, cfg, 2), std::logic_error);
  // Labeling size mismatch is caught per run.
  VerificationSession session(spread, cfg, 4);
  core::Labeling wrong;
  wrong.certs.assign(2, local::Certificate{});
  EXPECT_THROW(session.run(wrong), std::logic_error);
}

}  // namespace
}  // namespace pls::radius
