#include "local/network.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "graph/generators.hpp"

namespace pls::local {
namespace {

std::shared_ptr<const graph::Graph> shared(graph::Graph g) {
  return std::make_shared<const graph::Graph>(std::move(g));
}

/// Max-propagation protocol: every node adopts the maximum value it sees.
StepFn max_protocol() {
  return [](graph::RawId, const State& own,
            std::span<const NeighborState> neighbors) {
    auto read = [](const State& s) {
      util::BitReader r = s.reader();
      return r.read_uint(32).value_or(0);
    };
    std::uint64_t best = read(own);
    for (const NeighborState& nb : neighbors)
      best = std::max(best, read(*nb.state));
    return State::of_uint(best, 32);
  };
}

TEST(SyncNetwork, MaxPropagatesInDiameterRounds) {
  auto g = shared(graph::path(6));
  std::vector<State> init(6, State::of_uint(0, 32));
  init[0] = State::of_uint(77, 32);
  SyncNetwork net(g, init);
  // Diameter of the path is 5: after 5 rounds everyone holds 77.
  for (int round = 0; round < 5; ++round) net.step(max_protocol());
  for (const State& s : net.states()) EXPECT_EQ(s, State::of_uint(77, 32));
}

TEST(SyncNetwork, StepIsSynchronous) {
  // On a path with the max at one end, values move exactly one hop per round.
  auto g = shared(graph::path(4));
  std::vector<State> init(4, State::of_uint(0, 32));
  init[0] = State::of_uint(9, 32);
  SyncNetwork net(g, init);
  net.step(max_protocol());
  EXPECT_EQ(net.states()[1], State::of_uint(9, 32));
  EXPECT_EQ(net.states()[2], State::of_uint(0, 32));  // not yet
}

TEST(SyncNetwork, RoundStatsCountChanges) {
  auto g = shared(graph::path(4));
  std::vector<State> init(4, State::of_uint(0, 32));
  init[0] = State::of_uint(9, 32);
  SyncNetwork net(g, init);
  const RoundStats s1 = net.step(max_protocol());
  EXPECT_EQ(s1.changed_nodes, 1u);  // only node 1 changes
  // Message bits: each node receives the state of each neighbor; path(4) has
  // 3 edges and 2 directions each, 32 bits per message.
  EXPECT_EQ(s1.message_bits, 6u * 32u);
}

TEST(SyncNetwork, RunUntilQuiescent) {
  auto g = shared(graph::grid(3, 3));
  std::vector<State> init(9, State::of_uint(1, 32));
  init[8] = State::of_uint(100, 32);
  SyncNetwork net(g, init);
  const std::size_t rounds = net.run_until_quiescent(max_protocol(), 50);
  EXPECT_LE(rounds, 6u);  // diameter 4, +1 quiescence-confirming round
  for (const State& s : net.states()) EXPECT_EQ(s, State::of_uint(100, 32));
}

TEST(SyncNetwork, NonConvergenceReportsBudgetPlusOne) {
  // A protocol that never settles: every node increments its value.
  auto g = shared(graph::path(2));
  StepFn tick = [](graph::RawId, const State& own,
                   std::span<const NeighborState>) {
    util::BitReader r = own.reader();
    return State::of_uint(r.read_uint(32).value_or(0) + 1, 32);
  };
  SyncNetwork net(g, std::vector<State>(2, State::of_uint(0, 32)));
  EXPECT_EQ(net.run_until_quiescent(tick, 10), 11u);
}

TEST(SyncNetwork, ConfigurationSnapshot) {
  auto g = shared(graph::path(3));
  SyncNetwork net(g, std::vector<State>(3, State::of_uint(4, 8)));
  const Configuration cfg = net.configuration();
  EXPECT_EQ(cfg.n(), 3u);
  EXPECT_EQ(cfg.state(1), State::of_uint(4, 8));
}

}  // namespace
}  // namespace pls::local
