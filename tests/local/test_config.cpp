#include "local/config.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "graph/generators.hpp"

namespace pls::local {
namespace {

std::shared_ptr<const graph::Graph> shared_path(std::size_t n) {
  return std::make_shared<const graph::Graph>(graph::path(n));
}

Configuration uniform_config(std::shared_ptr<const graph::Graph> g,
                             std::uint64_t value, unsigned bits) {
  std::vector<State> states(g->n(), State::of_uint(value, bits));
  return Configuration(std::move(g), std::move(states));
}

TEST(Configuration, RequiresMatchingStateCount) {
  auto g = shared_path(3);
  std::vector<State> two(2);
  EXPECT_THROW(Configuration(g, two), std::logic_error);
}

TEST(Configuration, RequiresGraph) {
  EXPECT_THROW(Configuration(nullptr, {}), std::logic_error);
}

TEST(Configuration, WithStateReplacesOneNode) {
  auto cfg = uniform_config(shared_path(4), 5, 8);
  const auto cfg2 = cfg.with_state(2, State::of_uint(9, 8));
  EXPECT_EQ(cfg2.state(2), State::of_uint(9, 8));
  EXPECT_EQ(cfg2.state(1), State::of_uint(5, 8));
  EXPECT_EQ(cfg.state(2), State::of_uint(5, 8));  // original untouched
}

TEST(Configuration, HammingDistance) {
  auto g = shared_path(5);
  const auto a = uniform_config(g, 1, 4);
  auto b = a.with_state(0, State::of_uint(2, 4))
               .with_state(3, State::of_uint(2, 4));
  EXPECT_EQ(a.hamming_distance(b), 2u);
  EXPECT_EQ(b.hamming_distance(a), 2u);
  EXPECT_EQ(a.hamming_distance(a), 0u);
}

TEST(Configuration, MaxStateBits) {
  auto g = shared_path(3);
  std::vector<State> states = {State::of_uint(1, 2), State::of_uint(1, 10),
                               State::of_uint(1, 5)};
  Configuration cfg(g, states);
  EXPECT_EQ(cfg.max_state_bits(), 10u);
}

TEST(RandomState, HasRequestedLength) {
  util::Rng rng(1);
  for (const std::size_t bits : {0u, 1u, 7u, 8u, 63u, 64u, 65u, 200u})
    EXPECT_EQ(random_state(bits, rng).bit_size(), bits);
}

TEST(Corruption, TouchesExactlyKNodes) {
  util::Rng rng(2);
  const auto cfg = uniform_config(shared_path(20), 3, 16);
  const CorruptionResult r = corrupt_random_states(cfg, 5, rng);
  EXPECT_EQ(r.corrupted.size(), 5u);
  // The corrupted configuration differs from the original at most at the
  // chosen nodes (a random state may coincide, hence <=).
  EXPECT_LE(cfg.hamming_distance(r.config), 5u);
  for (graph::NodeIndex v = 0; v < cfg.n(); ++v) {
    const bool chosen = std::find(r.corrupted.begin(), r.corrupted.end(), v) !=
                        r.corrupted.end();
    if (!chosen) {
      EXPECT_EQ(cfg.state(v), r.config.state(v));
    }
  }
}

TEST(Corruption, PreservesStateLength) {
  util::Rng rng(3);
  const auto cfg = uniform_config(shared_path(6), 1, 12);
  const CorruptionResult r = corrupt_random_states(cfg, 6, rng);
  for (graph::NodeIndex v = 0; v < cfg.n(); ++v)
    EXPECT_EQ(r.config.state(v).bit_size(), 12u);
}

TEST(Corruption, KTooLargeThrows) {
  util::Rng rng(4);
  const auto cfg = uniform_config(shared_path(3), 1, 4);
  EXPECT_THROW(corrupt_random_states(cfg, 4, rng), std::logic_error);
}

}  // namespace
}  // namespace pls::local
