#include <gtest/gtest.h>

#include "pls/engine.hpp"
#include "schemes/acyclic.hpp"
#include "schemes/common.hpp"
#include "schemes/lcl.hpp"
#include "schemes/leader.hpp"
#include "schemes/spanning_tree.hpp"
#include "sensitivity/analysis.hpp"
#include "testing/helpers.hpp"

namespace pls::sensitivity {
namespace {

using pls::testing::share;

TEST(ExactDistance, ZeroForLegalConfigurations) {
  const schemes::LeaderLanguage language;
  auto g = share(graph::path(5));
  const auto cfg = language.make_with_leader(g, 2);
  EXPECT_EQ(exact_distance(language, cfg, membership_bit_candidates(), 3),
            std::optional<std::size_t>(0));
}

TEST(ExactDistance, LeaderFormulaMatches) {
  const schemes::LeaderLanguage language;
  auto g = share(graph::path(6));
  // k extra leaders => distance exactly k; zero leaders => distance 1.
  auto cfg = language.make_with_leader(g, 0);
  cfg = cfg.with_state(2, schemes::LeaderLanguage::encode_flag(true));
  cfg = cfg.with_state(4, schemes::LeaderLanguage::encode_flag(true));
  EXPECT_EQ(exact_distance(language, cfg, membership_bit_candidates(), 4),
            std::optional<std::size_t>(2));

  std::vector<local::State> none(6,
                                 schemes::LeaderLanguage::encode_flag(false));
  EXPECT_EQ(exact_distance(language, local::Configuration(g, none),
                           membership_bit_candidates(), 4),
            std::optional<std::size_t>(1));
}

TEST(ExactDistance, CycleChainIsExactlyK) {
  const schemes::AcyclicLanguage language;
  for (const std::size_t k : {1u, 2u, 3u}) {
    const CycleChainInstance inst = make_cycle_chain(k);
    EXPECT_EQ(exact_distance(language, inst.config,
                             pointer_candidates(inst.config), k + 1),
              std::optional<std::size_t>(k))
        << "k=" << k;
  }
}

TEST(ExactDistance, StpMeetInTheMiddleIsHalfN) {
  const schemes::StpLanguage language;
  const std::size_t n = 8;
  auto g = share(graph::path(n));
  std::vector<local::State> states;
  for (std::size_t v = 0; v < n; ++v) {
    if (v == 0 || v == n - 1) {
      states.push_back(schemes::encode_pointer(std::nullopt));
    } else if (v < n / 2) {
      states.push_back(
          schemes::encode_pointer(g->id(static_cast<graph::NodeIndex>(v - 1))));
    } else {
      states.push_back(
          schemes::encode_pointer(g->id(static_cast<graph::NodeIndex>(v + 1))));
    }
  }
  const local::Configuration cfg(g, states);
  // The analytic claim behind the counterexample: distance is exactly n/2.
  EXPECT_EQ(exact_distance(language, cfg, pointer_candidates(cfg), n / 2 + 1),
            std::optional<std::size_t>(n / 2));
}

TEST(ExactDistance, StlDroppedEdgeIsOne) {
  const schemes::StlLanguage language;
  auto g = share(graph::path(5));
  std::vector<bool> mask(g->m(), true);
  auto cfg = language.make_from_mask(g, mask);
  // Drop node 2's edge to node 3.
  cfg = cfg.with_state(
      2, schemes::encode_adjacency_list({g->id(1)}));
  ASSERT_FALSE(language.contains(cfg));
  EXPECT_EQ(
      exact_distance(language, cfg, adjacency_subset_candidates(cfg), 2),
      std::optional<std::size_t>(1));
}

TEST(ExactDistance, ReportsNulloptWhenBudgetTooSmall) {
  const schemes::LeaderLanguage language;
  auto g = share(graph::path(6));
  auto cfg = language.make_with_leader(g, 0);
  for (const graph::NodeIndex extra : {2u, 3u, 4u, 5u})
    cfg = cfg.with_state(extra, schemes::LeaderLanguage::encode_flag(true));
  // Distance is 4 but the budget is 2.
  EXPECT_EQ(exact_distance(language, cfg, membership_bit_candidates(), 2),
            std::nullopt);
}

TEST(Proximity, RejectionsLandNearTheFaultForStl) {
  const schemes::StlLanguage language;
  const schemes::StlScheme scheme(language);
  auto g = share(graph::grid(4, 5));
  util::Rng rng(3);
  const auto legal = language.sample_legal(g, rng);
  const core::Labeling honest = scheme.mark(legal);

  // Corrupt one node's list; run the verifier with the old certificates.
  const graph::NodeIndex victim = 7;
  auto list = schemes::decode_adjacency_list(legal.state(victim));
  ASSERT_TRUE(list.has_value() && !list->empty());
  list->pop_back();
  const auto corrupted = legal.with_state(
      victim, schemes::encode_adjacency_list(std::move(*list)));
  ASSERT_FALSE(language.contains(corrupted));

  const core::Verdict verdict = core::run_verifier(scheme, corrupted, honest);
  ASSERT_GE(verdict.rejections(), 1u);
  const ProximityReport report =
      detection_proximity(corrupted, verdict.rejected(), {victim});
  EXPECT_LE(report.max_hops, 1u);  // symmetry violations fire at the edge
}

TEST(Proximity, StpCounterexampleDetectsFarFromFixes) {
  // The flip side: for the stp splice, the two rejecting nodes sit at the
  // middle while the repairs live in a whole half — mean distance to the
  // "corrupted" half boundary stays small but the construction shows the
  // *fix* can be far; here we simply check the measurement plumbing on a
  // multi-source set.
  const schemes::StpLanguage language;
  auto g = share(graph::path(8));
  const auto cfg = language.make_tree(g, 0);
  std::vector<bool> rejecting(8, false);
  rejecting[3] = rejecting[4] = true;
  const ProximityReport report =
      detection_proximity(cfg, rejecting, {0, 1, 2, 3});
  EXPECT_EQ(report.rejecting, 2u);
  EXPECT_EQ(report.max_hops, 1u);  // node 4 is one hop from node 3
}

}  // namespace
}  // namespace pls::sensitivity
