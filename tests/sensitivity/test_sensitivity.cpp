#include <gtest/gtest.h>

#include "schemes/acyclic.hpp"
#include "schemes/common.hpp"
#include "schemes/agree.hpp"
#include "schemes/leader.hpp"
#include "schemes/mst.hpp"
#include "schemes/spanning_tree.hpp"
#include "sensitivity/analysis.hpp"
#include "sensitivity/counterexamples.hpp"
#include "testing/helpers.hpp"

namespace pls::sensitivity {
namespace {

using pls::testing::share;

TEST(CycleChain, ExactDistanceConstruction) {
  const schemes::AcyclicLanguage language;
  for (const std::size_t k : {1u, 3u, 5u}) {
    const CycleChainInstance inst = make_cycle_chain(k);
    EXPECT_EQ(inst.cycles, k);
    EXPECT_EQ(inst.config.n(), 3 * k);
    EXPECT_FALSE(language.contains(inst.config));
    // Breaking one pointer per cycle lands back in the language: the
    // distance is indeed at most k (and the cycles argument makes it >= k).
    auto states = inst.config.states();
    for (std::size_t j = 0; j < k; ++j)
      states[3 * j] = schemes::encode_pointer(std::nullopt);
    EXPECT_TRUE(
        language.contains(inst.config.with_states(std::move(states))));
  }
}

TEST(Sensitivity, AcyclicRejectionsScaleWithCycles) {
  const schemes::AcyclicLanguage language;
  const schemes::AcyclicScheme scheme(language);
  std::size_t previous = 0;
  for (const std::size_t k : {1u, 2u, 4u, 6u}) {
    const CycleChainInstance inst = make_cycle_chain(k);
    util::Rng rng(k);
    const core::AttackReport report = core::attack(scheme, inst.config, rng);
    EXPECT_GE(report.min_rejections, k) << "k=" << k;
    EXPECT_GE(report.min_rejections, previous);
    previous = report.min_rejections;
  }
}

TEST(Sensitivity, LeaderExtraLeadersEachReject) {
  const schemes::LeaderLanguage language;
  const schemes::LeaderScheme scheme(language);
  auto g = share(graph::grid(4, 5));
  util::Rng rng(7);
  const auto legal = language.sample_legal(g, rng);
  for (const std::size_t k : {1u, 3u, 6u}) {
    const SensitivityRow row =
        measure(scheme, legal, corrupt_leader, k, rng);
    // Every extra leader rejects regardless of certificates, so the ratio
    // stays >= 1 (up to the corruption occasionally hitting the original
    // leader, hence >= k-1 conservatively).
    EXPECT_GE(row.min_rejections, k - 1) << "k=" << k;
  }
}

TEST(Sensitivity, AgreeMinorityRejections) {
  const schemes::AgreeLanguage language(16);
  const schemes::AgreeScheme scheme(language);
  auto g = share(graph::path(12));
  util::Rng rng(11);
  const auto legal = language.sample_legal(g, rng);
  const SensitivityRow row = measure(scheme, legal, corrupt_agree, 3, rng);
  EXPECT_GE(row.min_rejections, 1u);
}

TEST(Sensitivity, StlDroppedEdgesRejectAtLeastPerCorruption) {
  const schemes::StlLanguage language;
  const schemes::StlScheme scheme(language);
  util::Rng gen(13);
  auto g = share(graph::random_connected(20, 10, gen));
  util::Rng rng(17);
  const auto legal = language.sample_legal(g, rng);
  for (const std::size_t k : {1u, 2u, 4u}) {
    const SensitivityRow row =
        measure(scheme, legal, corrupt_adjacency_list, k, rng);
    // Dropping a listed edge breaks listing symmetry; both endpoints of each
    // dropped edge reject on states alone, so at least ~k nodes reject.
    EXPECT_GE(row.min_rejections, k) << "k=" << k;
  }
}

TEST(Sensitivity, MstlDroppedEdgesDetected) {
  const schemes::MstLanguage language;
  const schemes::MstScheme scheme(language);
  util::Rng setup(19);
  auto g = share(graph::reweight_random(
      graph::random_connected(16, 12, setup), setup));
  util::Rng rng(23);
  const auto legal = language.sample_legal(g, rng);
  const SensitivityRow row =
      measure(scheme, legal, corrupt_adjacency_list, 3, rng);
  EXPECT_GE(row.min_rejections, 3u);
}

TEST(Counterexample, StpPathFlatline) {
  // Distance grows linearly with n; rejections stay at 2.
  for (const std::size_t n : {8u, 16u, 32u, 64u}) {
    const CounterexampleResult r = stp_path_counterexample(n);
    EXPECT_TRUE(r.illegal);
    EXPECT_EQ(r.rejections, 2u) << "n=" << n;
    EXPECT_EQ(r.distance_lower_bound, n / 2);
  }
}

TEST(Counterexample, StpPathRequiresEvenN) {
  EXPECT_THROW(stp_path_counterexample(7), std::logic_error);
}

TEST(Counterexample, RegularGluingFourRejections) {
  util::Rng rng(29);
  for (const std::size_t side : {8u, 16u, 24u}) {
    util::Rng local_rng(side);
    const CounterexampleResult r =
        regular_gluing_counterexample(side, side, 3, local_rng);
    EXPECT_TRUE(r.illegal);
    EXPECT_EQ(r.rejections, 4u) << "side=" << side;
    EXPECT_GE(r.distance_lower_bound, side - 4);
  }
}

TEST(Sensitivity, MeasureRejectsLegalBaseRequirement) {
  const schemes::LeaderLanguage language;
  const schemes::LeaderScheme scheme(language);
  auto g = share(graph::path(4));
  std::vector<local::State> none(4,
                                 schemes::LeaderLanguage::encode_flag(false));
  const local::Configuration illegal(g, none);
  util::Rng rng(31);
  EXPECT_THROW(measure(scheme, illegal, corrupt_leader, 1, rng),
               std::logic_error);
}

}  // namespace
}  // namespace pls::sensitivity
