// MetricsRegistry / Histogram: the log-bucket quantile error bound, the
// merge-commutativity that makes concurrent recording deterministic, and the
// snapshot-diff phase accounting that replaced reset-style brackets.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "radius/atlas.hpp"
#include "util/rng.hpp"

namespace pls::obs {
namespace {

TEST(Histogram, BucketRoundTripAndWidthBound) {
  std::vector<std::uint64_t> probes;
  for (std::uint64_t v = 0; v < 64; ++v) probes.push_back(v);
  for (unsigned shift = 4; shift < 63; ++shift) {
    const std::uint64_t p = std::uint64_t{1} << shift;
    probes.insert(probes.end(), {p - 1, p, p + 1, p + p / 3});
  }
  probes.push_back(~std::uint64_t{0});
  for (const std::uint64_t v : probes) {
    const std::size_t b = Histogram::bucket_of(v);
    ASSERT_LT(b, Histogram::kBuckets) << v;
    const std::uint64_t upper = Histogram::bucket_upper(b);
    EXPECT_GE(upper, v);
    // The reported value (the bucket upper bound) overshoots by at most
    // 1/16 of the true value: the quantile error guarantee, bucket-wise.
    EXPECT_LE(upper - v, v / Histogram::kSub) << v;
    // Upper bounds are tight: the next value starts a new bucket.
    if (upper != ~std::uint64_t{0}) {
      EXPECT_EQ(Histogram::bucket_of(upper + 1), b + 1) << v;
    }
  }
}

TEST(Histogram, QuantileWithinRelativeErrorOfExactOrderStatistic) {
  Histogram h;
  std::vector<std::uint64_t> values;
  util::Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    // Spread over six octaves so the log buckets actually matter.
    const std::uint64_t v = rng.below(std::uint64_t{1} << (8 + 2 * (i % 7)));
    values.push_back(v);
    h.record(v);
  }
  std::sort(values.begin(), values.end());
  const HistogramSnapshot snap = h.snapshot();
  ASSERT_EQ(snap.count, values.size());
  for (const double q : {0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    std::size_t rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(values.size())));
    if (rank == 0) rank = 1;
    const std::uint64_t exact = values[rank - 1];
    const std::uint64_t est = snap.quantile(q);
    EXPECT_GE(est, exact) << "q=" << q;
    EXPECT_LE(est - exact, exact / Histogram::kSub) << "q=" << q;
  }
}

TEST(Histogram, ConcurrentMergeIsDeterministic) {
  // The same per-thread value multisets, recorded under two different
  // interleavings (4 threads vs sequential), must produce identical buckets:
  // counts commute.
  const auto values_for = [](unsigned t) {
    std::vector<std::uint64_t> out;
    util::Rng rng(100 + t);
    for (int i = 0; i < 20000; ++i)
      out.push_back(rng.below(std::uint64_t{1} << 40));
    return out;
  };

  Histogram concurrent;
  {
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < 4; ++t)
      threads.emplace_back([&concurrent, vals = values_for(t)] {
        for (const std::uint64_t v : vals) concurrent.record(v);
      });
    for (std::thread& th : threads) th.join();
  }
  Histogram sequential;
  for (unsigned t = 0; t < 4; ++t)
    for (const std::uint64_t v : values_for(t)) sequential.record(v);

  const HistogramSnapshot a = concurrent.snapshot();
  const HistogramSnapshot b = sequential.snapshot();
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.sum, b.sum);
  EXPECT_EQ(a.min, b.min);
  EXPECT_EQ(a.max, b.max);
  EXPECT_EQ(a.buckets, b.buckets);
}

TEST(Histogram, SnapshotDiffIsolatesOnePhase) {
  Histogram h;
  for (const std::uint64_t v : {5u, 100u, 7000u}) h.record(v);
  const HistogramSnapshot before = h.snapshot();
  for (const std::uint64_t v : {9u, 9u, 50000u}) h.record(v);
  const HistogramSnapshot phase = h.snapshot().since(before);

  Histogram only_phase;
  for (const std::uint64_t v : {9u, 9u, 50000u}) only_phase.record(v);
  const HistogramSnapshot expected = only_phase.snapshot();
  EXPECT_EQ(phase.count, expected.count);
  EXPECT_EQ(phase.sum, expected.sum);
  EXPECT_EQ(phase.buckets, expected.buckets);
  EXPECT_EQ(phase.min, expected.min);
  EXPECT_EQ(phase.max, expected.max);
}

TEST(MetricsRegistry, StableHandlesAndSnapshotDiff) {
  MetricsRegistry registry;
  Counter& c = registry.counter("verify.labelings");
  EXPECT_EQ(&c, &registry.counter("verify.labelings"));  // resolved once
  Histogram& h = registry.histogram("verify.e2e_ns");
  EXPECT_EQ(&h, &registry.histogram("verify.e2e_ns"));

  c.add(3);
  h.record(1000);
  const MetricsSnapshot before = registry.snapshot();
  c.add(2);
  h.record(2000);
  registry.set_gauge("atlas.hit_rate", 0.75);
  const MetricsSnapshot phase = registry.snapshot().since(before);
  EXPECT_EQ(phase.counters.at("verify.labelings"), 2u);
  EXPECT_EQ(phase.histograms.at("verify.e2e_ns").count, 1u);
  EXPECT_DOUBLE_EQ(phase.gauges.at("atlas.hit_rate"), 0.75);  // level, not diff
}

TEST(MetricsRegistry, SnapshotJsonIsWellFormed) {
  MetricsRegistry registry;
  registry.counter("verify.labelings").add(4);
  registry.histogram("verify.e2e_ns").record(12345);
  registry.set_gauge("atlas.hit_rate", 0.5);
  std::ostringstream out;
  registry.snapshot().write_json(out);  // PLS_REQUIREs balanced output
  const std::string json = out.str();
  EXPECT_NE(json.find("\"verify.labelings\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_NE(json.find("\"atlas.hit_rate\""), std::string::npos);
}

TEST(ScopedTimer, NullHistogramRecordsNothing) {
  { ScopedTimer t(nullptr); }  // must not crash or read the clock
  Histogram h;
  { ScopedTimer t(&h); }
  EXPECT_EQ(h.snapshot().count, 1u);
}

TEST(Absorb, AtlasStatsExportPerRadiusResidencyGauges) {
  radius::AtlasStats stats;
  stats.hits = 5;
  stats.misses = 3;
  stats.sketch_rejects = 2;
  stats.bytes_in_use = 300;
  stats.peak_bytes = 400;
  stats.by_radius[2] = {100, 150};
  stats.by_radius[8] = {200, 250};

  MetricsRegistry registry;
  absorb(registry, stats);
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.gauges.at("atlas.sketch_rejects"), 2.0);
  EXPECT_EQ(snap.gauges.at("atlas.bytes_in_use"), 300.0);
  // The per-radius attribution rides the same export door with a stable
  // ".r<t>" suffix per built radius.
  EXPECT_EQ(snap.gauges.at("atlas.bytes_in_use.r2"), 100.0);
  EXPECT_EQ(snap.gauges.at("atlas.peak_bytes.r2"), 150.0);
  EXPECT_EQ(snap.gauges.at("atlas.bytes_in_use.r8"), 200.0);
  EXPECT_EQ(snap.gauges.at("atlas.peak_bytes.r8"), 250.0);
}

}  // namespace
}  // namespace pls::obs
