// Rejection-density telemetry: partition/aggregation arithmetic, the
// registry recording path, and the error-sensitivity classification — the
// exact-distance cycle-chain family must classify as error-sensitive
// (min rejections monotone and growing in the planted distance).
#include "obs/density.hpp"

#include <gtest/gtest.h>

#include <set>

#include "graph/generators.hpp"
#include "pls/engine.hpp"
#include "schemes/acyclic.hpp"
#include "schemes/leader.hpp"
#include "sensitivity/analysis.hpp"
#include "testing/helpers.hpp"

namespace pls::obs {
namespace {

using pls::testing::share;

TEST(Verdict, RejectionDensityIsTheRejectingFraction) {
  EXPECT_DOUBLE_EQ(core::Verdict{}.rejection_density(), 0.0);
  core::Verdict v(std::vector<bool>{true, false, true, false, true, true,
                                    true, true});
  EXPECT_DOUBLE_EQ(v.rejection_density(), 0.25);
}

TEST(BfsPartition, CoversDeterministicallyAndClampsRegions) {
  const graph::Graph g = graph::grid(6, 6);
  const std::vector<std::uint32_t> regions = bfs_partition(g, 4);
  ASSERT_EQ(regions.size(), g.n());
  std::set<std::uint32_t> used(regions.begin(), regions.end());
  EXPECT_EQ(used.size(), 4u);  // every seed claims a nonempty region
  for (const std::uint32_t r : regions) EXPECT_LT(r, 4u);
  EXPECT_EQ(regions, bfs_partition(g, 4));  // deterministic

  // More regions than nodes clamps; single region is the trivial partition.
  const graph::Graph p = graph::path(3);
  for (const std::uint32_t r : bfs_partition(p, 10)) EXPECT_LT(r, 3u);
  for (const std::uint32_t r : bfs_partition(p, 1)) EXPECT_EQ(r, 0u);
}

TEST(RegionDensity, CountsRejectionsPerRegion) {
  const graph::Graph g = graph::path(6);
  // path(6) split in 2: BFS-Voronoi gives {0,1,2} and {3,4,5}.
  const std::vector<std::uint32_t> regions = bfs_partition(g, 2);
  core::Verdict v(std::vector<bool>{true, false, true, false, false, true});
  const std::vector<RegionDensity> rows = region_rejection_density(v, regions);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].nodes + rows[1].nodes, 6u);
  EXPECT_EQ(rows[0].rejections + rows[1].rejections, 3u);
  for (const RegionDensity& row : rows)
    EXPECT_DOUBLE_EQ(row.density, static_cast<double>(row.rejections) /
                                      static_cast<double>(row.nodes));
}

TEST(RecordDensity, FeedsTheRegistryHistograms) {
  MetricsRegistry registry;
  const graph::Graph g = graph::grid(4, 4);
  std::vector<bool> accept(g.n(), true);
  accept[0] = accept[5] = false;  // 2/16 = 12.5%
  const core::Verdict v(std::move(accept));
  record_density(registry, v, bfs_partition(g, 4));

  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.histograms.at("density.rejections").count, 1u);
  EXPECT_EQ(snap.histograms.at("density.rejections").sum, 2u);
  EXPECT_EQ(snap.histograms.at("density.fraction_ppm").sum, 125000u);
  EXPECT_EQ(snap.histograms.at("density.region_ppm").count, 4u);
}

TEST(CorruptRandomState, RewritesExactlyTheChosenNodes) {
  const schemes::LeaderLanguage language;
  auto g = share(graph::cycle(8));
  util::Rng rng(5);
  const local::Configuration legal = language.sample_legal(g, rng);
  const std::vector<graph::NodeIndex> nodes{2, 5};
  const local::Configuration corrupted =
      corrupt_random_state(legal, nodes, rng);
  for (graph::NodeIndex v = 0; v < legal.n(); ++v) {
    EXPECT_EQ(corrupted.state(v).bit_size(), legal.state(v).bit_size());
    if (v != 2 && v != 5) {
      EXPECT_EQ(corrupted.state(v), legal.state(v));
    }
  }
}

TEST(DensityCurve, LeaderCurveIsErrorSensitive) {
  // The leader scheme detects every planted extra-leader flag: the
  // adversary-minimized rejection count tracks k, so the classifier must
  // call the measured curve error-sensitive.
  const schemes::LeaderLanguage language;
  const schemes::LeaderScheme scheme(language);
  util::Rng graph_rng(11);
  auto g = share(graph::random_connected(24, 12, graph_rng));
  util::Rng rng(13);
  const local::Configuration legal = language.sample_legal(g, rng);

  core::AttackOptions options;
  options.hill_climb_steps = 60;
  options.random_trials = 3;
  options.splice_sources = 2;
  const std::vector<std::size_t> planted{1, 2, 4};
  const DensityCurve curve = measure_density_curve(
      scheme, legal, sensitivity::corrupt_leader, planted, rng, options);
  ASSERT_EQ(curve.points.size(), 3u);
  EXPECT_TRUE(curve.monotone);
  EXPECT_TRUE(curve.error_sensitive);
  for (std::size_t i = 0; i < planted.size(); ++i) {
    EXPECT_EQ(curve.points[i].planted, planted[i]);
    // Every planted extra leader is visible: rejections >= k.
    EXPECT_GE(curve.points[i].min_rejections, planted[i]);
  }
}

TEST(DensityCurve, ExactDistanceCycleChainIsMonotoneAndGrows) {
  // The anchor family: k disjoint pointer cycles sit at Hamming distance
  // exactly k from `acyclic`.  Rejections under the minimizing adversary
  // must not decrease as k grows, and must grow across the sweep — the
  // test-asserted error-sensitivity witness.
  const schemes::AcyclicLanguage language;
  const schemes::AcyclicScheme scheme(language);
  core::AttackOptions options;
  options.hill_climb_steps = 60;
  options.random_trials = 3;
  options.splice_sources = 2;

  std::vector<std::size_t> rejections;
  for (const std::size_t k : {1u, 2u, 4u}) {
    const sensitivity::CycleChainInstance inst =
        sensitivity::make_cycle_chain(k);
    EXPECT_EQ(inst.cycles, k);
    util::Rng rng(17 + k);
    const core::AttackReport report =
        core::attack(scheme, inst.config, rng, options);
    EXPECT_GE(report.min_rejections, 1u);  // soundness at every distance
    rejections.push_back(report.min_rejections);
  }
  for (std::size_t i = 1; i < rejections.size(); ++i)
    EXPECT_GE(rejections[i], rejections[i - 1]) << "k step " << i;
  EXPECT_GT(rejections.back(), rejections.front());
}

}  // namespace
}  // namespace pls::obs
