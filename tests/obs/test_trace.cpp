// TraceRecorder: span nesting, the disabled path recording nothing, the
// chrome-trace export shape — and the pipeline's overlap window: a 2-labeling
// batch must show labeling 1's parse span nested inside labeling 0's sweep
// window on the calling thread.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "radius/batch.hpp"
#include "radius/spread.hpp"
#include "schemes/spanning_tree.hpp"
#include "testing/helpers.hpp"

namespace pls::obs {
namespace {

TEST(TraceRecorder, DisabledSpansRecordNothing) {
  TraceRecorder::disable();
  { PLS_TRACE_SPAN("should.not.appear", 1); }
  TraceRecorder::enable();
  TraceRecorder::disable();
  EXPECT_TRUE(TraceRecorder::events().empty());  // enable() cleared history
}

#if defined(PROOFLAB_NO_TRACE)

// The zero-overhead build: every span compiles to an empty statement, so
// even an *enabled* recorder sees nothing, and the export is still a
// well-formed (empty) trace.  The recording tests below only exist in the
// compiled-in configuration.
TEST(TraceRecorder, CompiledOutSpansRecordNothingEvenWhenEnabled) {
  TraceRecorder::enable();
  {
    PLS_TRACE_SPAN("outer", 0);
    PLS_TRACE_SPAN("inner", 1);
  }
  TraceRecorder::disable();
  EXPECT_TRUE(TraceRecorder::events().empty());
  std::ostringstream out;
  TraceRecorder::export_chrome_trace(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

#else  // tracing compiled in

using Event = TraceRecorder::Event;

/// Spans are half-open [start, start+dur); containment is the structural
/// claim "inner ran inside outer".
bool contains(const Event& outer, const Event& inner) {
  return outer.tid == inner.tid && inner.start_ns >= outer.start_ns &&
         inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns;
}

const Event* find_event(const std::vector<Event>& events, std::string name,
                        std::uint64_t arg) {
  for (const Event& e : events)
    if (name == e.name && e.arg == arg) return &e;
  return nullptr;
}

TEST(TraceRecorder, NestedSpansAreContainedAndOrdered) {
  TraceRecorder::enable();
  {
    PLS_TRACE_SPAN("outer", 0);
    {
      PLS_TRACE_SPAN("inner", 1);
    }
    {
      PLS_TRACE_SPAN("inner", 2);
    }
  }
  TraceRecorder::disable();
  const std::vector<Event> events = TraceRecorder::events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(TraceRecorder::dropped(), 0u);

  const Event* outer = find_event(events, "outer", 0);
  const Event* first = find_event(events, "inner", 1);
  const Event* second = find_event(events, "inner", 2);
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(first, nullptr);
  ASSERT_NE(second, nullptr);
  EXPECT_TRUE(contains(*outer, *first));
  EXPECT_TRUE(contains(*outer, *second));
  EXPECT_LE(first->start_ns + first->dur_ns, second->start_ns);
  // events() is sorted by start time; the outer span started first.
  EXPECT_EQ(std::string(events.front().name), "outer");
}

TEST(TraceRecorder, ChromeTraceExportIsWellFormedJson) {
  TraceRecorder::enable();
  {
    PLS_TRACE_SPAN("alpha", 7);
    PLS_TRACE_SPAN("beta");  // no arg
  }
  TraceRecorder::disable();
  std::ostringstream out;
  TraceRecorder::export_chrome_trace(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"alpha\""), std::string::npos);
  EXPECT_NE(json.find("\"beta\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  // Balanced object/array delimiters (the writer PLS_REQUIREs this too).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(TraceRecorder, BatchTraceShowsParseSweepOverlapWindow) {
  // Two labelings through the pipelined batch: while labeling 0's sweep is
  // posted (the "sweep.window" span on the calling thread), the calling
  // thread parses labeling 1 ("parse.link" arg 1).  The trace must show that
  // overlap structurally: parse(1) nested inside window(0), same tid.
  const schemes::StpLanguage language;
  const schemes::StpScheme base(language);
  const radius::SpreadScheme scheme(base, 2);
  auto g = testing::share(graph::grid(6, 6));
  const local::Configuration cfg = language.make_tree(g, 0);
  const core::Labeling lab = scheme.mark(cfg);
  const std::vector<core::Labeling> labelings{lab, lab};

  radius::BatchOptions options;
  options.threads = 2;
  // The static split: its deterministic one-slice-per-slot fan-out is what
  // the per-slot span assertions below rely on (under stealing a fast
  // claimant may legitimately drain every chunk before a peer wakes).
  options.sweep = radius::BatchOptions::SweepMode::kStatic;
  radius::BatchVerifier verifier(scheme, cfg, 2, options);

  TraceRecorder::enable();
  const std::vector<core::Verdict> verdicts =
      verifier.run(std::span<const core::Labeling>(labelings));
  TraceRecorder::disable();
  ASSERT_EQ(verdicts.size(), 2u);
  EXPECT_TRUE(verdicts[0].all_accept());
  EXPECT_TRUE(verdicts[1].all_accept());

  const std::vector<Event> events = TraceRecorder::events();
  const Event* window0 = find_event(events, "sweep.window", 0);
  const Event* parse1 = find_event(events, "parse.link", 1);
  ASSERT_NE(window0, nullptr);
  ASSERT_NE(parse1, nullptr);
  EXPECT_TRUE(contains(*window0, *parse1))
      << "labeling 1's parse must run inside labeling 0's sweep window";
  // The fan-out is visible too: a sweep slot span per pool slot.
  EXPECT_NE(find_event(events, "sweep.slot", 0), nullptr);
  EXPECT_NE(find_event(events, "sweep.slot", 1), nullptr);
}

TEST(TraceRecorder, StealingSweepShowsClaimedChunkSpans) {
  // The work-stealing default: every claimed chunk is a "pool.chunk" span
  // and its verify body still opens "sweep.slot" — per chunk, not per
  // slice.  Which slot claims how many chunks is timing-dependent, so the
  // assertions count spans, not per-slot coverage.
  const schemes::StpLanguage language;
  const schemes::StpScheme base(language);
  const radius::SpreadScheme scheme(base, 2);
  auto g = testing::share(graph::grid(6, 6));
  const local::Configuration cfg = language.make_tree(g, 0);
  const core::Labeling lab = scheme.mark(cfg);

  radius::BatchOptions options;
  options.threads = 2;
  radius::BatchVerifier verifier(scheme, cfg, 2, options);

  TraceRecorder::enable();
  const core::Verdict verdict = verifier.run_one(lab);
  TraceRecorder::disable();
  EXPECT_TRUE(verdict.all_accept());

  std::size_t chunk_spans = 0;
  std::size_t slot_spans = 0;
  for (const Event& e : TraceRecorder::events()) {
    if (std::string("pool.chunk") == e.name) ++chunk_spans;
    if (std::string("sweep.slot") == e.name) ++slot_spans;
  }
  // 36 centers, 2 slots, default chunk = max(1, 36/32) = 1: one claimed
  // chunk (and one verify-body span) per center, however they land.
  EXPECT_EQ(chunk_spans, cfg.n());
  EXPECT_EQ(slot_spans, cfg.n());
}

#endif  // PROOFLAB_NO_TRACE

}  // namespace
}  // namespace pls::obs
