#include "pls/strict_adapter.hpp"

#include <gtest/gtest.h>

#include "pls/adversary.hpp"
#include "schemes/leader.hpp"
#include "schemes/spanning_tree.hpp"
#include "testing/helpers.hpp"

namespace pls::core {
namespace {

using testing::share;

TEST(StrictAdapter, RequiresExtendedInner) {
  const schemes::LeaderLanguage language;
  const schemes::LeaderScheme inner(language);
  const StrictAdapter adapted(inner);  // fine: leader is extended
  EXPECT_EQ(adapted.visibility(), local::Visibility::kCertificatesOnly);
  EXPECT_EQ(adapted.name(), "strict(leader/tree)");
}

TEST(StrictAdapter, CompletenessForLeader) {
  const schemes::LeaderLanguage language;
  const schemes::LeaderScheme inner(language);
  const StrictAdapter adapted(inner);
  for (auto& g : testing::unweighted_family(37)) {
    util::Rng rng(41);
    testing::expect_complete(adapted, language.sample_legal(g, rng));
  }
}

TEST(StrictAdapter, CompletenessForStl) {
  const schemes::StlLanguage language;
  const schemes::StlScheme inner(language);
  const StrictAdapter adapted(inner);
  util::Rng rng(43);
  auto g = share(graph::random_connected(20, 10, rng));
  testing::expect_complete(adapted, language.sample_legal(g, rng));
}

TEST(StrictAdapter, SoundnessAgainstAttack) {
  const schemes::LeaderLanguage language;
  const schemes::LeaderScheme inner(language);
  const StrictAdapter adapted(inner);
  auto g = share(graph::grid(3, 4));
  auto cfg = language.make_with_leader(g, 2).with_state(
      9, schemes::LeaderLanguage::encode_flag(true));
  testing::expect_sound(adapted, cfg, 47);
}

TEST(StrictAdapter, LyingAboutOwnStateRejected) {
  // Take honest adapted certificates, then change one node's *state*: the
  // embedded claim no longer matches, and that node itself must reject.
  const schemes::LeaderLanguage language;
  const schemes::LeaderScheme inner(language);
  const StrictAdapter adapted(inner);
  auto g = share(graph::path(5));
  const auto cfg = language.make_with_leader(g, 2);
  const Labeling certs = adapted.mark(cfg);
  const auto tampered =
      cfg.with_state(4, schemes::LeaderLanguage::encode_flag(true));
  const Verdict verdict = run_verifier(adapted, tampered, certs);
  EXPECT_FALSE(verdict.accept()[4]);
}

TEST(StrictAdapter, OverheadIsStatePlusId) {
  const schemes::LeaderLanguage language;
  const schemes::LeaderScheme inner(language);
  const StrictAdapter adapted(inner);
  auto g = share(graph::cycle(16));
  const auto cfg = language.make_with_leader(g, 3);
  const std::size_t inner_bits = inner.mark(cfg).max_bits();
  const std::size_t adapted_bits = adapted.mark(cfg).max_bits();
  EXPECT_GT(adapted_bits, inner_bits);
  // id varint (<= 16 bits here) + state length varint + 1-bit state.
  EXPECT_LE(adapted_bits, inner_bits + 64);
  EXPECT_LE(adapted_bits,
            adapted.proof_size_bound(cfg.n(), cfg.max_state_bits()));
}

TEST(StrictAdapter, GarbageCertificatesRejected) {
  const schemes::LeaderLanguage language;
  const schemes::LeaderScheme inner(language);
  const StrictAdapter adapted(inner);
  auto g = share(graph::path(3));
  const auto cfg = language.make_with_leader(g, 1);
  Labeling empty;
  empty.certs.assign(3, Certificate{});
  EXPECT_EQ(run_verifier(adapted, cfg, empty).rejections(), 3u);
}

}  // namespace
}  // namespace pls::core
