#include "pls/crossing.hpp"

#include <gtest/gtest.h>

#include "pls/strict_adapter.hpp"
#include "schemes/agree.hpp"
#include "schemes/leader.hpp"
#include "schemes/spanning_tree.hpp"
#include "testing/helpers.hpp"

namespace pls::core {
namespace {

using testing::share;

std::vector<bool> first_half_mask(std::size_t n) {
  std::vector<bool> left(n, false);
  for (std::size_t i = 0; i < n / 2; ++i) left[i] = true;
  return left;
}

TEST(Crossing, BoundaryNodesOnPath) {
  const graph::Graph g = graph::path(8);
  const auto boundary = boundary_nodes(g, first_half_mask(8));
  ASSERT_EQ(boundary.size(), 2u);
  EXPECT_EQ(boundary[0], 3u);
  EXPECT_EQ(boundary[1], 4u);
}

TEST(Crossing, BoundaryNodesOnRing) {
  const graph::Graph g = graph::cycle(8);
  const auto boundary = boundary_nodes(g, first_half_mask(8));
  EXPECT_EQ(boundary.size(), 4u);  // two cut edges, four endpoints
}

TEST(Crossing, MakeFamilyRejectsIllegalInstances) {
  const schemes::LeaderLanguage language;
  const schemes::LeaderScheme scheme(language);
  auto g = share(graph::path(4));
  std::vector<local::State> none(4,
                                 schemes::LeaderLanguage::encode_flag(false));
  EXPECT_THROW(
      make_family(scheme, {local::Configuration(g, none)}, first_half_mask(4)),
      std::logic_error);
}

class AgreeCrossing : public ::testing::Test {
 protected:
  AgreeCrossing() : language_(16), scheme_(language_) {
    auto g = share(graph::path(8));
    std::vector<local::Configuration> configs;
    // 32 distinct 16-bit values: guaranteed collisions at small masks.
    for (std::uint64_t v = 0; v < 32; ++v) {
      const std::uint64_t value = v * 2053 + 17;  // spread over 16 bits
      std::vector<local::State> states(8, language_.encode_value(value));
      configs.emplace_back(g, std::move(states));
    }
    family_ = make_family(scheme_, std::move(configs), first_half_mask(8));
  }

  schemes::AgreeLanguage language_;
  schemes::AgreeScheme scheme_;
  CrossingFamily family_;
};

TEST_F(AgreeCrossing, AllSplicesAreIllegal) {
  const SweepRow row = sweep_mask(scheme_, family_, 16);
  EXPECT_EQ(row.pairs_tested, 32u * 31u / 2u);
  EXPECT_EQ(row.illegal_pairs, row.pairs_tested);  // all values distinct
}

TEST_F(AgreeCrossing, FullWidthNeverFooled) {
  const SweepRow row = sweep_mask(scheme_, family_, 16);
  EXPECT_EQ(row.fooled_pairs, 0u);
}

TEST_F(AgreeCrossing, ZeroBitsAlwaysFooled) {
  const SweepRow row = sweep_mask(scheme_, family_, 0);
  EXPECT_EQ(row.fooled_pairs, row.illegal_pairs);
}

TEST_F(AgreeCrossing, IntermediateMaskPartiallyFooled) {
  const SweepRow row = sweep_mask(scheme_, family_, 3);
  EXPECT_GT(row.fooled_pairs, 0u);  // 32 values over 8 buckets must collide
  EXPECT_LT(row.fooled_pairs, row.illegal_pairs);
}

TEST_F(AgreeCrossing, FooledPairsMonotoneInMask) {
  std::size_t prev = family_.instances.size() * family_.instances.size();
  for (const std::size_t b : {0u, 2u, 4u, 8u, 16u}) {
    const SweepRow row = sweep_mask(scheme_, family_, b);
    EXPECT_LE(row.fooled_pairs, prev);
    prev = row.fooled_pairs;
  }
}

TEST_F(AgreeCrossing, SignatureCountGrowsWithMask) {
  EXPECT_EQ(distinct_boundary_signatures(family_, 16), 32u);
  EXPECT_LE(distinct_boundary_signatures(family_, 2), 4u);
  EXPECT_EQ(distinct_boundary_signatures(family_, 0), 1u);
}

TEST_F(AgreeCrossing, FullVerifierCatchesEverySplice) {
  // Even when the masked views collide, the real (full-width) verifier
  // rejects: this is the scheme being sound at its actual proof size.
  const PairProbe probe = probe_pair(scheme_, family_, 0, 1, 2);
  EXPECT_TRUE(probe.spliced_illegal);
  EXPECT_GE(probe.rejections_full, 1u);
}

TEST(CrossingLeader, TwoLeaderSpliceOnRing) {
  const schemes::LeaderLanguage language;
  const schemes::LeaderScheme inner(language);
  const StrictAdapter scheme(inner);
  auto g = share(graph::cycle(16));
  std::vector<local::Configuration> configs;
  // Leaders deep inside the left half and deep inside the right half.
  for (const graph::NodeIndex p : {2u, 3u, 4u, 5u, 10u, 11u, 12u, 13u})
    configs.push_back(language.make_with_leader(g, p));
  const CrossingFamily family =
      make_family(scheme, std::move(configs), first_half_mask(16));

  // A left-leader with a right-leader: the splice has two leaders (illegal);
  // boundary states agree (no leader near the cut).
  const PairProbe zero = probe_pair(scheme, family, 0, 4, 0);
  EXPECT_TRUE(zero.spliced_illegal);
  EXPECT_TRUE(zero.views_identical);  // 0-bit certificates: always fooled
  const PairProbe full = probe_pair(scheme, family, 0, 4, 100000);
  EXPECT_TRUE(full.spliced_illegal);
  EXPECT_FALSE(full.views_identical);  // root ids differ at the boundary
  EXPECT_GE(full.rejections_full, 1u);

  // Two left-leaders: the splice is the left instance itself (legal).
  const PairProbe same_side = probe_pair(scheme, family, 0, 1, 0);
  EXPECT_FALSE(same_side.spliced_illegal);
}

TEST(CrossingStp, MeetInTheMiddlePath) {
  const schemes::StpLanguage language;
  const schemes::StpScheme inner(language);
  const StrictAdapter scheme(inner);
  const std::size_t n = 12;
  auto g = share(graph::path(n));
  std::vector<local::Configuration> configs;
  configs.push_back(language.make_tree(g, 0));      // everyone points left
  configs.push_back(language.make_tree(g, n - 1));  // everyone points right
  const CrossingFamily family =
      make_family(scheme, std::move(configs), first_half_mask(n));

  // left-half of tree-rooted-at-0 + right-half of tree-rooted-at-(n-1):
  // pointers meet in the middle — two roots, illegal, distance ~ n/2, yet
  // with the spliced certificates only the two middle nodes can reject.
  const PairProbe probe = probe_pair(scheme, family, 0, 1, 100000);
  EXPECT_TRUE(probe.spliced_illegal);
  EXPECT_FALSE(probe.views_identical);
  EXPECT_LE(probe.rejections_full, 2u);
  EXPECT_GE(probe.rejections_full, 1u);
}

}  // namespace
}  // namespace pls::core
