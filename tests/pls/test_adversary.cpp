#include "pls/adversary.hpp"

#include <gtest/gtest.h>

#include "schemes/agree.hpp"
#include "schemes/leader.hpp"
#include "testing/helpers.hpp"

namespace pls::core {
namespace {

using testing::share;

TEST(Adversary, CannotFoolLeaderWithTwoLeaders) {
  const schemes::LeaderLanguage language;
  const schemes::LeaderScheme scheme(language);
  auto g = share(graph::cycle(8));
  auto cfg = language.make_with_leader(g, 1).with_state(
      5, schemes::LeaderLanguage::encode_flag(true));
  ASSERT_FALSE(language.contains(cfg));
  util::Rng rng(1);
  const AttackReport report = attack(scheme, cfg, rng);
  EXPECT_GE(report.min_rejections, 1u);
  EXPECT_EQ(report.best_labeling.size(), cfg.n());
}

TEST(Adversary, CannotFoolLeaderWithNoLeader) {
  const schemes::LeaderLanguage language;
  const schemes::LeaderScheme scheme(language);
  auto g = share(graph::path(6));
  std::vector<local::State> states(
      6, schemes::LeaderLanguage::encode_flag(false));
  const local::Configuration cfg(g, states);
  ASSERT_FALSE(language.contains(cfg));
  util::Rng rng(2);
  EXPECT_GE(attack(scheme, cfg, rng).min_rejections, 1u);
}

TEST(Adversary, FindsAcceptanceOnLegalViaHonestSplice) {
  // agree's marker output does not depend on which legal instance the splice
  // samples only when values coincide; but a legal configuration's *own*
  // certificates are reachable by hill climbing from honest splices.  We only
  // assert the sanity direction: the reported labeling indeed achieves the
  // reported rejection count.
  const schemes::AgreeLanguage language(8);
  const schemes::AgreeScheme scheme(language);
  auto g = share(graph::path(4));
  util::Rng rng(3);
  const auto cfg = language.sample_legal(g, rng);
  const AttackReport report = attack(scheme, cfg, rng);
  const Verdict check = run_verifier(scheme, cfg, report.best_labeling);
  EXPECT_EQ(check.rejections(), report.min_rejections);
}

TEST(Adversary, ReportIsReproducible) {
  const schemes::LeaderLanguage language;
  const schemes::LeaderScheme scheme(language);
  auto g = share(graph::grid(3, 3));
  auto cfg = language.make_with_leader(g, 0).with_state(
      8, schemes::LeaderLanguage::encode_flag(true));
  util::Rng rng1(7), rng2(7);
  const AttackReport a = attack(scheme, cfg, rng1);
  const AttackReport b = attack(scheme, cfg, rng2);
  EXPECT_EQ(a.min_rejections, b.min_rejections);
  EXPECT_EQ(a.best_strategy, b.best_strategy);
}

TEST(Adversary, ExhaustiveMatchesOnTinyInstance) {
  // agree on a 2-node path with 1-bit values, nodes disagreeing: any
  // certificate assignment must be rejected somewhere (exhaustively checked).
  const schemes::AgreeLanguage language(1);
  const schemes::AgreeScheme scheme(language);
  auto g = share(graph::path(2));
  std::vector<local::State> states = {language.encode_value(0),
                                      language.encode_value(1)};
  const local::Configuration cfg(g, states);
  ASSERT_FALSE(language.contains(cfg));
  EXPECT_GE(exhaustive_min_rejections(scheme, cfg, 2), 1u);
}

TEST(Adversary, ExhaustiveFindsAcceptingAssignmentOnLegal) {
  const schemes::AgreeLanguage language(1);
  const schemes::AgreeScheme scheme(language);
  auto g = share(graph::path(2));
  std::vector<local::State> states = {language.encode_value(1),
                                      language.encode_value(1)};
  const local::Configuration cfg(g, states);
  ASSERT_TRUE(language.contains(cfg));
  EXPECT_EQ(exhaustive_min_rejections(scheme, cfg, 1), 0u);
}

TEST(Adversary, ExhaustiveLeaderLowerBoundTiny) {
  // leader on path(3) with two leaders: certificates up to 2 bits cannot
  // rescue it (the real scheme needs more bits, but *no* 2-bit assignment
  // works either — exhaustively verified soundness).
  const schemes::LeaderLanguage language;
  const schemes::LeaderScheme scheme(language);
  auto g = share(graph::path(3));
  auto cfg = language.make_with_leader(g, 0).with_state(
      2, schemes::LeaderLanguage::encode_flag(true));
  EXPECT_GE(exhaustive_min_rejections(scheme, cfg, 2), 1u);
}

TEST(Adversary, ExhaustiveGuardsAgainstBlowup) {
  const schemes::AgreeLanguage language(1);
  const schemes::AgreeScheme scheme(language);
  auto g = share(graph::path(2));
  util::Rng rng(5);
  const auto cfg = language.sample_legal(g, rng);
  EXPECT_THROW(exhaustive_min_rejections(scheme, cfg, 20), std::logic_error);
}

}  // namespace
}  // namespace pls::core
