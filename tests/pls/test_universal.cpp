#include "pls/universal.hpp"

#include <gtest/gtest.h>

#include "pls/adversary.hpp"
#include "schemes/leader.hpp"
#include "schemes/spanning_tree.hpp"
#include "testing/helpers.hpp"

namespace pls::core {
namespace {

using testing::share;

TEST(Universal, CompletenessForLeader) {
  const schemes::LeaderLanguage language;
  const UniversalScheme scheme(language);
  for (auto& g : testing::unweighted_family(11)) {
    util::Rng rng(13);
    const auto cfg = language.sample_legal(g, rng);
    testing::expect_complete(scheme, cfg);
  }
}

TEST(Universal, CompletenessForStl) {
  const schemes::StlLanguage language;
  const UniversalScheme scheme(language);
  util::Rng rng(17);
  auto g = share(graph::grid(3, 3));
  testing::expect_complete(scheme, language.sample_legal(g, rng));
}

TEST(Universal, SoundAgainstAttackSuite) {
  const schemes::LeaderLanguage language;
  const UniversalScheme scheme(language);
  auto g = share(graph::cycle(6));
  auto cfg = language.make_with_leader(g, 0).with_state(
      3, schemes::LeaderLanguage::encode_flag(true));
  // Universal certificates are big; keep the attack cheap but real.
  AttackOptions options;
  options.hill_climb_steps = 60;
  options.random_trials = 4;
  testing::expect_sound(scheme, cfg, 19, options);
}

TEST(Universal, ForeignDescriptionRejected) {
  // Certificates describing a *different* (legal) configuration over the
  // same graph: every node's own-row check catches the state mismatch.
  const schemes::LeaderLanguage language;
  const UniversalScheme scheme(language);
  auto g = share(graph::path(5));
  const auto with0 = language.make_with_leader(g, 0);
  const auto with4 = language.make_with_leader(g, 4);
  const Labeling honest_for_0 = scheme.mark(with0);
  const Verdict verdict = run_verifier(scheme, with4, honest_for_0);
  EXPECT_GE(verdict.rejections(), 1u);
  // Specifically the nodes whose states differ (0 and 4) must reject.
  EXPECT_FALSE(verdict.accept()[0]);
  EXPECT_FALSE(verdict.accept()[4]);
}

TEST(Universal, WrongTopologyRejected) {
  // Present certificates marked on a 6-cycle to nodes of a 6-path (same ids,
  // different wiring): some node must notice its neighborhood row is wrong.
  const schemes::LeaderLanguage language;
  const UniversalScheme scheme(language);
  auto ring = share(graph::cycle(6));
  auto line = share(graph::path(6));
  const auto ring_cfg = language.make_with_leader(ring, 2);
  const auto line_cfg = language.make_with_leader(line, 2);
  const Labeling ring_certs = scheme.mark(ring_cfg);
  const Verdict verdict = run_verifier(scheme, line_cfg, ring_certs);
  EXPECT_GE(verdict.rejections(), 1u);
}

TEST(Universal, ProofSizeWithinBound) {
  const schemes::LeaderLanguage language;
  const UniversalScheme scheme(language);
  for (const std::size_t n : {2u, 8u, 24u}) {
    auto g = share(graph::cycle(std::max<std::size_t>(n, 3)));
    util::Rng rng(23);
    const auto cfg = language.sample_legal(g, rng);
    const Labeling lab = scheme.mark(cfg);
    EXPECT_LE(lab.max_bits(),
              scheme.proof_size_bound(cfg.n(), cfg.max_state_bits()));
  }
}

TEST(Universal, ProofSizeGrowsQuadratically) {
  const schemes::LeaderLanguage language;
  const UniversalScheme scheme(language);
  util::Rng rng(29);
  auto small = share(graph::cycle(8));
  auto large = share(graph::cycle(64));
  const auto cfg_small = language.sample_legal(small, rng);
  const auto cfg_large = language.sample_legal(large, rng);
  const std::size_t bits_small = scheme.mark(cfg_small).max_bits();
  const std::size_t bits_large = scheme.mark(cfg_large).max_bits();
  // 4x nodes => at least ~10x certificate (n^2 term dominates eventually).
  EXPECT_GE(bits_large, 8 * bits_small);
}

TEST(Universal, GarbageCertificatesRejected) {
  const schemes::LeaderLanguage language;
  const UniversalScheme scheme(language);
  auto g = share(graph::path(4));
  const auto cfg = language.make_with_leader(g, 1);
  util::Rng rng(31);
  Labeling garbage;
  for (int v = 0; v < 4; ++v)
    garbage.certs.push_back(local::random_state(200, rng));
  EXPECT_GE(run_verifier(scheme, cfg, garbage).rejections(), 1u);
}

TEST(Universal, NameMentionsInnerLanguage) {
  const schemes::LeaderLanguage language;
  const UniversalScheme scheme(language);
  EXPECT_EQ(scheme.name(), "universal(leader)");
  EXPECT_EQ(scheme.visibility(), local::Visibility::kCertificatesOnly);
}

}  // namespace
}  // namespace pls::core
