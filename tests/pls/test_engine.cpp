#include "pls/engine.hpp"

#include <gtest/gtest.h>

#include "schemes/leader.hpp"
#include "testing/helpers.hpp"

namespace pls::core {
namespace {

using testing::share;

TEST(Engine, RunVerifierReportsPerNodeVerdicts) {
  const schemes::LeaderLanguage language;
  const schemes::LeaderScheme scheme(language);
  auto g = share(graph::path(5));
  const auto cfg = language.make_with_leader(g, 2);
  const Labeling lab = scheme.mark(cfg);
  const Verdict verdict = run_verifier(scheme, cfg, lab);
  EXPECT_EQ(verdict.accept().size(), 5u);
  EXPECT_TRUE(verdict.all_accept());
  EXPECT_EQ(verdict.rejections(), 0u);
  EXPECT_TRUE(verdict.rejecting_nodes().empty());
}

TEST(Engine, RejectingNodesListed) {
  const schemes::LeaderLanguage language;
  const schemes::LeaderScheme scheme(language);
  auto g = share(graph::path(5));
  const auto cfg = language.make_with_leader(g, 2);
  // Empty certificates: every node fails to parse and rejects.
  Labeling empty;
  empty.certs.assign(5, Certificate{});
  const Verdict verdict = run_verifier(scheme, cfg, empty);
  EXPECT_EQ(verdict.rejections(), 5u);
  EXPECT_EQ(verdict.rejecting_nodes().size(), 5u);
}

TEST(Engine, LabelingSizeMismatchThrows) {
  const schemes::LeaderLanguage language;
  const schemes::LeaderScheme scheme(language);
  auto g = share(graph::path(3));
  const auto cfg = language.make_with_leader(g, 0);
  Labeling wrong;
  wrong.certs.assign(2, Certificate{});
  EXPECT_THROW(run_verifier(scheme, cfg, wrong), std::logic_error);
}

TEST(Engine, CompletenessHoldsOnLegal) {
  const schemes::LeaderLanguage language;
  const schemes::LeaderScheme scheme(language);
  auto g = share(graph::grid(3, 3));
  EXPECT_TRUE(completeness_holds(scheme, language.make_with_leader(g, 4)));
}

TEST(Engine, CompletenessPreconditionOnIllegal) {
  const schemes::LeaderLanguage language;
  const schemes::LeaderScheme scheme(language);
  auto g = share(graph::path(3));
  // Two leaders: not in the language; completeness_holds requires legality.
  auto cfg = language.make_with_leader(g, 0).with_state(
      2, schemes::LeaderLanguage::encode_flag(true));
  EXPECT_THROW(completeness_holds(scheme, cfg), std::logic_error);
}

TEST(Engine, VerificationRoundBits) {
  const schemes::LeaderLanguage language;
  const schemes::LeaderScheme scheme(language);
  auto g = share(graph::path(3));  // 2 edges
  const auto cfg = language.make_with_leader(g, 0);
  const Labeling lab = scheme.mark(cfg);
  const std::size_t bits = verification_round_bits(scheme, cfg, lab);
  // Each edge carries both endpoint certificates plus (extended mode) both
  // states and ids.
  std::size_t expected = 0;
  for (const graph::Edge& e : g->edges())
    for (const graph::NodeIndex v : {e.u, e.v})
      expected += lab.certs[v].bit_size() + cfg.state(v).bit_size() + 64;
  EXPECT_EQ(bits, expected);
}

TEST(Engine, LabelingAccounting) {
  Labeling lab;
  lab.certs.push_back(Certificate::of_uint(1, 3));
  lab.certs.push_back(Certificate::of_uint(1, 10));
  lab.certs.push_back(Certificate{});
  EXPECT_EQ(lab.max_bits(), 10u);
  EXPECT_EQ(lab.total_bits(), 13u);
  const Labeling masked = lab.prefix_mask(4);
  EXPECT_EQ(masked.max_bits(), 4u);
  EXPECT_EQ(masked.certs[0].bit_size(), 3u);
}

}  // namespace
}  // namespace pls::core
