// Verifier totality fuzzing.
//
// The verifier must be total: certificates come from an untrusted prover, so
// arbitrary bit strings — truncated, overlong, structurally absurd — must
// produce accept/reject decisions, never exceptions or crashes.  The same
// holds for language deciders over corrupted *states*.  These tests throw
// thousands of random and adversarially-shaped inputs at every scheme.
#include <gtest/gtest.h>

#include "pls/compose.hpp"
#include "pls/strict_adapter.hpp"
#include "pls/universal.hpp"
#include "schemes/registry.hpp"
#include "testing/helpers.hpp"

namespace pls::core {
namespace {

using testing::share;

std::shared_ptr<const graph::Graph> fuzz_graph(
    const schemes::SchemeEntry& entry, util::Rng& rng) {
  if (entry.needs_weighted)
    return share(
        graph::reweight_random(graph::random_connected(10, 8, rng), rng));
  if (entry.needs_bipartite) return share(graph::grid(2, 5));
  return share(graph::random_connected(10, 8, rng));
}

Labeling fuzz_labeling(std::size_t n, util::Rng& rng, std::size_t max_bits) {
  Labeling lab;
  for (std::size_t v = 0; v < n; ++v)
    lab.certs.push_back(local::random_state(rng.below(max_bits + 1), rng));
  return lab;
}

TEST(Fuzz, RandomCertificatesNeverCrashAnyScheme) {
  util::Rng rng(424242);
  for (const schemes::SchemeEntry& entry : schemes::standard_catalog()) {
    auto g = fuzz_graph(entry, rng);
    const local::Configuration cfg = entry.language->sample_legal(g, rng);
    for (int trial = 0; trial < 40; ++trial) {
      const Labeling lab = fuzz_labeling(cfg.n(), rng, 160);
      const Verdict verdict = run_verifier(*entry.scheme, cfg, lab);
      EXPECT_EQ(verdict.accept().size(), cfg.n()) << entry.label;
    }
  }
}

TEST(Fuzz, RandomStatesNeverCrashDecidersOrVerifiers) {
  util::Rng rng(777);
  for (const schemes::SchemeEntry& entry : schemes::standard_catalog()) {
    auto g = fuzz_graph(entry, rng);
    const local::Configuration legal = entry.language->sample_legal(g, rng);
    const Labeling honest = entry.scheme->mark(legal);
    for (int trial = 0; trial < 30; ++trial) {
      // Random states of random sizes (not just same-length corruptions).
      std::vector<local::State> states;
      for (std::size_t v = 0; v < legal.n(); ++v)
        states.push_back(local::random_state(rng.below(64), rng));
      const local::Configuration garbage = legal.with_states(states);
      (void)entry.language->contains(garbage);  // must not throw
      const Verdict verdict = run_verifier(*entry.scheme, garbage, honest);
      EXPECT_EQ(verdict.accept().size(), legal.n()) << entry.label;
    }
  }
}

TEST(Fuzz, MutatedHonestCertificatesNeverCrash) {
  // Bit-level mutations of honest certificates: the nastiest parse inputs
  // are near-valid ones.
  util::Rng rng(31337);
  for (const schemes::SchemeEntry& entry : schemes::standard_catalog()) {
    auto g = fuzz_graph(entry, rng);
    const local::Configuration cfg = entry.language->sample_legal(g, rng);
    const Labeling honest = entry.scheme->mark(cfg);
    for (int trial = 0; trial < 30; ++trial) {
      Labeling mutated = honest;
      const auto v = static_cast<graph::NodeIndex>(rng.below(cfg.n()));
      const local::Certificate& c = mutated.certs[v];
      switch (rng.below(3)) {
        case 0:  // truncate
          mutated.certs[v] = c.prefix(rng.below(c.bit_size() + 1));
          break;
        case 1: {  // extend with random bits
          util::BitWriter w;
          w.write_bits(c.bytes(), c.bit_size());
          w.write_uint(rng.bits(), 17);
          mutated.certs[v] = local::Certificate::from_writer(std::move(w));
          break;
        }
        default: {  // flip one bit
          if (c.bit_size() == 0) break;
          std::vector<std::uint8_t> bytes = c.bytes();
          const std::size_t bit = rng.below(c.bit_size());
          bytes[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
          mutated.certs[v] = local::Certificate(bytes, c.bit_size());
          break;
        }
      }
      const Verdict verdict = run_verifier(*entry.scheme, cfg, mutated);
      EXPECT_EQ(verdict.accept().size(), cfg.n()) << entry.label;
    }
  }
}

TEST(Fuzz, UniversalParserSurvivesGarbage) {
  // Catalog entry 1 is leader; the universal scheme wraps its language.
  const schemes::SchemeEntry entry = schemes::standard_catalog()[1];
  const UniversalScheme universal(*entry.language);
  util::Rng rng(555);
  auto g = share(graph::cycle(6));
  const local::Configuration cfg = entry.language->sample_legal(g, rng);
  for (int trial = 0; trial < 60; ++trial) {
    const Labeling lab = fuzz_labeling(cfg.n(), rng, 600);
    const Verdict verdict = run_verifier(universal, cfg, lab);
    EXPECT_EQ(verdict.accept().size(), cfg.n());
  }
}

TEST(Fuzz, StrictAdapterSurvivesGarbage) {
  const auto catalog = schemes::standard_catalog();
  util::Rng rng(999);
  for (const schemes::SchemeEntry& entry : catalog) {
    if (entry.scheme->visibility() != local::Visibility::kExtended) continue;
    const StrictAdapter strict(*entry.scheme);
    auto g = fuzz_graph(entry, rng);
    const local::Configuration cfg = entry.language->sample_legal(g, rng);
    for (int trial = 0; trial < 15; ++trial) {
      const Labeling lab = fuzz_labeling(cfg.n(), rng, 200);
      (void)run_verifier(strict, cfg, lab);
    }
  }
}

TEST(Fuzz, EveryTruncationPointOfEveryEncoderIsHandled) {
  // The BitReader hardening regression, end to end: take each registry
  // scheme's own encoder output and cut one certificate at EVERY bit
  // position.  Each truncation lands mid-field in some decoder read; all of
  // them must fail closed into a verdict — no crash, no out-of-bounds read
  // (the ASan job runs this with poisoned redzones).
  util::Rng rng(46368);
  for (const schemes::SchemeEntry& entry : schemes::standard_catalog()) {
    auto g = fuzz_graph(entry, rng);
    const local::Configuration cfg = entry.language->sample_legal(g, rng);
    const Labeling honest = entry.scheme->mark(cfg);
    for (const std::size_t v :
         {std::size_t{0}, cfg.n() / 2, cfg.n() - 1}) {
      for (std::size_t cut = 0; cut < honest.certs[v].bit_size(); ++cut) {
        Labeling truncated = honest;
        truncated.certs[v] = honest.certs[v].prefix(cut);
        const Verdict verdict = run_verifier(*entry.scheme, cfg, truncated);
        EXPECT_EQ(verdict.accept().size(), cfg.n())
            << entry.label << " node " << v << " cut " << cut;
      }
    }
  }
}

TEST(Fuzz, BitReaderNeverReadsOutOfBounds) {
  util::Rng rng(2024);
  for (int trial = 0; trial < 200; ++trial) {
    const local::State s = local::random_state(rng.below(96), rng);
    util::BitReader r = s.reader();
    // Random sequence of reads; all failures must be soft.
    for (int op = 0; op < 20; ++op) {
      switch (rng.below(3)) {
        case 0:
          (void)r.read_bit();
          break;
        case 1:
          (void)r.read_uint(static_cast<unsigned>(rng.below(65)));
          break;
        default:
          (void)r.read_varint();
          break;
      }
    }
    EXPECT_LE(r.position(), s.bit_size());
  }
}

}  // namespace
}  // namespace pls::core
