#include "pls/compose.hpp"

#include <gtest/gtest.h>

#include "schemes/lcl.hpp"
#include "schemes/spanning_tree.hpp"
#include "testing/helpers.hpp"

namespace pls::core {
namespace {

using testing::share;

// A natural conjunction over the same 1-bit state encoding: dominating set
// AND independence+maximality = maximal independent set states also form a
// dominating set (every MIS is dominating, so MIS witnesses satisfy both).
class MisConjunctionFixture : public ::testing::Test {
 protected:
  MisConjunctionFixture()
      : conjunction_(domset_, mis_, /*witness=*/mis_),
        domset_scheme_(domset_),
        mis_scheme_(mis_),
        scheme_(conjunction_, domset_scheme_, mis_scheme_) {}

  schemes::DominatingSetLanguage domset_;
  schemes::MisLanguage mis_;
  ConjunctionLanguage conjunction_;
  schemes::DominatingSetScheme domset_scheme_;
  schemes::MisScheme mis_scheme_;
  ConjunctionScheme scheme_;
};

TEST_F(MisConjunctionFixture, NameAndBound) {
  EXPECT_EQ(conjunction_.name(), "domset&mis");
  EXPECT_EQ(scheme_.name(), "domset/0bit&mis/0bit");
  EXPECT_EQ(scheme_.proof_size_bound(100, 1), 64u);  // framing only
}

TEST_F(MisConjunctionFixture, ContainsIsIntersection) {
  auto g = share(graph::path(5));
  // In-set at both ends only: dominating? no (middle of a 5-path uncovered).
  std::vector<local::State> states(5,
                                   schemes::MisLanguage::encode_member(false));
  states[0] = schemes::MisLanguage::encode_member(true);
  states[4] = schemes::MisLanguage::encode_member(true);
  const local::Configuration cfg(g, states);
  EXPECT_FALSE(conjunction_.contains(cfg));

  // Alternating set: in both languages.
  std::vector<local::State> alternating;
  for (int v = 0; v < 5; ++v)
    alternating.push_back(schemes::MisLanguage::encode_member(v % 2 == 0));
  EXPECT_TRUE(conjunction_.contains(local::Configuration(g, alternating)));
}

TEST_F(MisConjunctionFixture, Completeness) {
  for (auto& g : testing::unweighted_family(61)) {
    util::Rng rng(67);
    testing::expect_complete(scheme_, conjunction_.sample_legal(g, rng));
  }
}

TEST_F(MisConjunctionFixture, SoundWhenEitherConjunctFails) {
  auto g = share(graph::path(4));
  // Dominating but not independent: everyone in the set.
  std::vector<local::State> all(4, schemes::MisLanguage::encode_member(true));
  const local::Configuration cfg(g, all);
  ASSERT_TRUE(domset_.contains(cfg));
  ASSERT_FALSE(mis_.contains(cfg));
  testing::expect_sound(scheme_, cfg, 71);
}

TEST_F(MisConjunctionFixture, MalformedFramingRejected) {
  auto g = share(graph::path(3));
  util::Rng rng(73);
  const auto cfg = conjunction_.sample_legal(g, rng);
  Labeling garbage;
  for (int v = 0; v < 3; ++v)
    garbage.certs.push_back(local::random_state(40, rng));
  // Garbage length prefixes must not crash and must not all-accept given the
  // instance is legal (framing may parse; then both 0-bit halves accept
  // empty certificates — craft a specific bad frame instead).
  const Verdict verdict = run_verifier(scheme_, cfg, garbage);
  EXPECT_EQ(verdict.accept().size(), 3u);
}

// Composition with non-trivial certificates on both sides: stl & stl (the
// same language twice) doubles the certificate and still verifies.
TEST(Conjunction, StlWithItself) {
  const schemes::StlLanguage stl;
  const ConjunctionLanguage both(stl, stl, stl);
  const schemes::StlScheme s1(stl);
  const schemes::StlScheme s2(stl);
  const ConjunctionScheme scheme(both, s1, s2);

  auto g = share(graph::grid(3, 4));
  util::Rng rng(79);
  const auto cfg = both.sample_legal(g, rng);
  testing::expect_complete(scheme, cfg);
  const std::size_t single = s1.mark(cfg).max_bits();
  const std::size_t composed = scheme.mark(cfg).max_bits();
  EXPECT_GE(composed, 2 * single);
  EXPECT_LE(composed, 2 * single + 16);  // + the length frame
}

TEST(Conjunction, MismatchedSchemeLanguageThrows) {
  const schemes::DominatingSetLanguage domset;
  const schemes::MisLanguage mis;
  const ConjunctionLanguage conj(domset, mis, mis);
  const schemes::MisScheme mis_scheme(mis);
  // First slot must certify `domset`, not `mis`.
  EXPECT_THROW(ConjunctionScheme(conj, mis_scheme, mis_scheme),
               std::logic_error);
}

TEST(Conjunction, WitnessOutsideConjunctionThrows) {
  // A witness sampler with an incompatible state encoding (matching produces
  // pointer states, not membership bits) is detected at sampling time.
  const schemes::DominatingSetLanguage domset;
  const schemes::MisLanguage mis;
  const schemes::MaximalMatchingLanguage matching;
  const ConjunctionLanguage conj(mis, domset, matching);
  auto g = pls::testing::share(graph::path(6));
  util::Rng rng(3);
  EXPECT_THROW((void)conj.sample_legal(g, rng), std::logic_error);
}

}  // namespace
}  // namespace pls::core
