// Server: the wire path (encode → submit → DRR → zero-copy dispatch) must
// be bit-identical to the in-memory BatchVerifier::run/run_delta path for
// every registry scheme at every thread count; the DRR schedule must be
// starvation-free; malformed or mismatched frames must surface as named
// rejections without billing a tenant; and frame pins must be held exactly
// as long as the zero-copy aliases need them, then released.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <deque>

#include "radius/fragment_spread.hpp"
#include "schemes/registry.hpp"
#include "schemes/spanning_tree.hpp"
#include "testing/helpers.hpp"

namespace pls::serve {
namespace {

using core::Labeling;
using core::Verdict;
using pls::testing::share;

Server::Frame frame_of(std::vector<std::uint8_t> bytes) {
  return std::make_shared<const std::vector<std::uint8_t>>(std::move(bytes));
}

std::shared_ptr<const graph::Graph> graph_for(
    const schemes::SchemeEntry& entry, util::Rng& rng) {
  if (entry.needs_weighted)
    return share(
        graph::reweight_random(graph::random_connected(14, 8, rng), rng));
  if (entry.needs_bipartite) return share(graph::grid(2, 7));
  return share(graph::random_connected(14, 8, rng));
}

Labeling random_labeling(std::size_t n, util::Rng& rng) {
  Labeling lab;
  for (std::size_t v = 0; v < n; ++v)
    lab.certs.push_back(local::random_state(rng.below(96), rng));
  return lab;
}

/// One tenant's scripted request stream: three fulls (honest, garbage,
/// honest) and one delta on top — the same sequence the in-memory oracle
/// replays below.
struct Script {
  const core::Scheme* scheme = nullptr;
  const local::Configuration* cfg = nullptr;
  unsigned t = 0;
  Labeling honest;
  Labeling garbage;
  Labeling next;  ///< honest with `touched` certificates replaced
  std::vector<graph::NodeIndex> touched;
};

// The acceptance criterion: wire-path verdicts are bit-identical to the
// in-memory BatchVerifier::run/run_delta path, registry-wide (plain t=1 and
// fragment-spread t=2 per entry), at threads {1, 2, hardware}.
TEST(Server, RegistryWireVerdictsMatchInMemoryAtAllThreadCounts) {
  util::Rng rng(60901);
  // The catalog must outlive the scripts: they point at its schemes.
  const std::vector<schemes::SchemeEntry> catalog =
      schemes::standard_catalog();
  std::deque<local::Configuration> cfgs;
  std::deque<radius::FragmentSpreadScheme> spreads;
  std::vector<Script> scripts;
  for (const schemes::SchemeEntry& entry : catalog) {
    auto g = graph_for(entry, rng);
    cfgs.push_back(entry.language->sample_legal(g, rng));
    const local::Configuration& cfg = cfgs.back();
    spreads.emplace_back(*entry.scheme, 2);
    for (const auto& [scheme, t] :
         {std::pair<const core::Scheme*, unsigned>{entry.scheme.get(), 1u},
          {&spreads.back(), 2u}}) {
      Script s;
      s.scheme = scheme;
      s.cfg = &cfg;
      s.t = t;
      s.honest = scheme->mark(cfg);
      s.garbage = random_labeling(cfg.n(), rng);
      s.touched = {1, static_cast<graph::NodeIndex>(cfg.n() - 2)};
      s.next = s.honest;
      for (const graph::NodeIndex v : s.touched)
        s.next.certs[v] = local::random_state(40, rng);
      scripts.push_back(std::move(s));
    }
  }

  for (const unsigned threads :
       {1u, 2u, util::ThreadPool::hardware_threads()}) {
    ServerOptions options;
    options.threads = threads;
    Server server(options);
    for (std::size_t i = 0; i < scripts.size(); ++i) {
      const std::uint32_t id = server.add_tenant(
          "tenant" + std::to_string(i), *scripts[i].scheme, *scripts[i].cfg,
          scripts[i].t);
      ASSERT_EQ(id, i);
    }
    std::vector<std::vector<std::uint64_t>> seqs(scripts.size());
    for (std::size_t i = 0; i < scripts.size(); ++i) {
      const Script& s = scripts[i];
      const auto id = static_cast<std::uint32_t>(i);
      const std::uint64_t epoch = s.cfg->graph().epoch();
      for (const Labeling* lab : {&s.honest, &s.garbage, &s.honest})
        server.submit(frame_of(encode_full(id, epoch, s.t, *lab)),
                      Server::now_ns());
      server.submit(frame_of(encode_delta(id, epoch, s.t,
                                          static_cast<std::uint32_t>(
                                              s.cfg->n()),
                                          s.touched, s.next)),
                    Server::now_ns());
    }
    const std::vector<Server::Response> responses = server.drain();
    ASSERT_EQ(responses.size(), scripts.size() * 4);

    // Regroup by tenant in submission order and replay against a fresh
    // in-memory verifier per tenant.
    std::vector<std::vector<const Server::Response*>> per_tenant(
        scripts.size());
    for (const Server::Response& r : responses) {
      ASSERT_TRUE(r.wire_ok) << r.error;
      per_tenant[r.tenant_id].push_back(&r);
    }
    for (std::size_t i = 0; i < scripts.size(); ++i) {
      const Script& s = scripts[i];
      ASSERT_EQ(per_tenant[i].size(), 4u);
      for (std::size_t k = 1; k < 4; ++k)
        ASSERT_LT(per_tenant[i][k - 1]->seq, per_tenant[i][k]->seq)
            << "per-tenant FIFO order";
      radius::BatchOptions batch_options;
      batch_options.threads = threads;
      radius::BatchVerifier oracle(*s.scheme, *s.cfg, s.t, batch_options);
      radius::LabelingDelta delta;
      delta.touched = s.touched;
      const Verdict expected[] = {
          oracle.run_one(s.honest), oracle.run_one(s.garbage),
          oracle.run_one(s.honest), oracle.run_delta(s.next, delta)};
      for (std::size_t k = 0; k < 4; ++k)
        EXPECT_EQ(per_tenant[i][k]->verdict.accept(), expected[k].accept())
            << "tenant " << i << " request " << k << " threads " << threads;
    }
  }
}

TEST(Server, DeficitRoundRobinInterleavesEqualCostTenants) {
  const schemes::StpLanguage language;
  const schemes::StpScheme scheme(language);
  util::Rng rng(60902);
  auto g = share(graph::grid(3, 4));
  const local::Configuration cfg = language.sample_legal(g, rng);
  const Labeling honest = scheme.mark(cfg);
  const std::uint64_t epoch = cfg.graph().epoch();

  ServerOptions options;
  options.threads = 1;
  options.quantum = cfg.n();  // one full labeling per DRR turn
  Server server(options);
  const std::uint32_t alpha = server.add_tenant("alpha", scheme, cfg, 1);
  const std::uint32_t beta = server.add_tenant("beta", scheme, cfg, 1);

  // A burst of 4 alpha requests lands before beta's 2: strict FIFO would
  // starve beta behind the burst; DRR alternates turns instead.
  for (int i = 0; i < 4; ++i)
    server.submit(frame_of(encode_full(alpha, epoch, 1, honest)),
                  Server::now_ns());
  for (int i = 0; i < 2; ++i)
    server.submit(frame_of(encode_full(beta, epoch, 1, honest)),
                  Server::now_ns());

  const std::vector<Server::Response> responses = server.drain();
  ASSERT_EQ(responses.size(), 6u);
  std::vector<std::uint32_t> order;
  for (const Server::Response& r : responses) {
    EXPECT_TRUE(r.wire_ok) << r.error;
    EXPECT_TRUE(r.verdict.all_accept());
    order.push_back(r.tenant_id);
  }
  const std::vector<std::uint32_t> expected = {alpha, beta,  alpha,
                                               beta,  alpha, alpha};
  EXPECT_EQ(order, expected);
}

TEST(Server, SubmitTimeRejectionsAreNamedAndServedFirst) {
  const schemes::StpLanguage language;
  const schemes::StpScheme scheme(language);
  util::Rng rng(60903);
  auto g = share(graph::grid(3, 3));
  const local::Configuration cfg = language.sample_legal(g, rng);
  const Labeling honest = scheme.mark(cfg);
  const std::uint64_t epoch = cfg.graph().epoch();

  obs::MetricsRegistry metrics;
  ServerOptions options;
  options.threads = 1;
  options.metrics = &metrics;
  Server server(options);
  const std::uint32_t id = server.add_tenant("main", scheme, cfg, 1);

  // One valid request first; the rejections below must still surface ahead
  // of it (they carry no verification work).
  server.submit(frame_of(encode_full(id, epoch, 1, honest)),
                Server::now_ns());
  server.submit(frame_of({0xDE, 0xAD}), Server::now_ns());
  server.submit(frame_of(encode_full(id + 9, epoch, 1, honest)),
                Server::now_ns());
  server.submit(frame_of(encode_full(id, epoch + 1, 1, honest)),
                Server::now_ns());
  server.submit(frame_of(encode_full(id, epoch, 2, honest)),
                Server::now_ns());
  Labeling short_lab = honest;
  short_lab.certs.pop_back();
  server.submit(frame_of(encode_full(id, epoch, 1, short_lab)),
                Server::now_ns());
  EXPECT_EQ(server.queued(), 6u);

  const std::vector<Server::Response> responses = server.drain();
  ASSERT_EQ(responses.size(), 6u);
  const char* expected_errors[] = {
      "frame shorter than header", "unknown tenant id",
      "graph_epoch does not match tenant graph",
      "radius t does not match tenant",
      "node_count does not match tenant configuration"};
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_FALSE(responses[i].wire_ok);
    EXPECT_STREQ(responses[i].error, expected_errors[i]);
  }
  EXPECT_TRUE(responses[5].wire_ok);
  EXPECT_TRUE(responses[5].verdict.all_accept());
  EXPECT_EQ(server.queued(), 0u);

  const obs::MetricsSnapshot snap = metrics.snapshot();
  EXPECT_EQ(snap.counters.at("serve.requests"), 6u);
  EXPECT_EQ(snap.counters.at("serve.rejected_frames"), 5u);
  EXPECT_EQ(snap.histograms.at("serve.latency_ns.main").count, 1u);
}

TEST(Server, ZeroQuantumIsRejectedAtConstruction) {
  // quantum == 0 could never cover any request's cost (>= 1): the DRR loop
  // would cycle tenants forever without serving.  Constructor-enforced.
  ServerOptions options;
  options.quantum = 0;
  EXPECT_THROW(Server{options}, std::logic_error);
}

TEST(Server, DeltaBeforeAnyFullIsAnError) {
  const schemes::StpLanguage language;
  const schemes::StpScheme scheme(language);
  util::Rng rng(60904);
  auto g = share(graph::path(6));
  const local::Configuration cfg = language.sample_legal(g, rng);
  const Labeling honest = scheme.mark(cfg);
  const std::uint64_t epoch = cfg.graph().epoch();

  obs::MetricsRegistry metrics;
  ServerOptions options;
  options.threads = 1;
  options.metrics = &metrics;
  Server server(options);
  const std::uint32_t id = server.add_tenant("solo", scheme, cfg, 1);
  const std::vector<graph::NodeIndex> touched = {2};
  server.submit(
      frame_of(encode_delta(id, epoch, 1,
                            static_cast<std::uint32_t>(cfg.n()), touched,
                            honest)),
      Server::now_ns());
  // A valid full submitted AFTER the early delta: the delta was rejected at
  // submit time (never queued), so it surfaces ahead of the full and never
  // consumes the tenant's DRR deficit.
  server.submit(frame_of(encode_full(id, epoch, 1, honest)),
                Server::now_ns());

  const std::vector<Server::Response> responses = server.drain();
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_FALSE(responses[0].wire_ok);
  EXPECT_STREQ(responses[0].error, "delta before any full labeling");
  EXPECT_TRUE(responses[1].wire_ok);
  EXPECT_TRUE(responses[1].verdict.all_accept());

  // Accounting matches every other submit-time rejection: counted in
  // rejected_frames, absent from the tenant's latency histogram (only the
  // full's dispatch recorded there).
  const obs::MetricsSnapshot snap = metrics.snapshot();
  EXPECT_EQ(snap.counters.at("serve.rejected_frames"), 1u);
  EXPECT_EQ(snap.histograms.at("serve.latency_ns.solo").count, 1u);
}

// The pin lifecycle: the producer may drop its frame handle the moment
// submit() returns (the server keeps the aliased bytes alive), and an
// unbounded delta stream pins a bounded frame set — consolidation past
// kMaxTenantPins materializes the tenant's labeling and releases history.
TEST(Server, FramesStayPinnedUntilConsolidationReleasesThem) {
  const schemes::StpLanguage language;
  const schemes::StpScheme scheme(language);
  util::Rng rng(60905);
  auto g = share(graph::random_connected(10, 6, rng));
  const local::Configuration cfg = language.sample_legal(g, rng);
  const std::uint64_t epoch = cfg.graph().epoch();
  const Labeling honest = scheme.mark(cfg);

  ServerOptions options;
  options.threads = 1;
  Server server(options);
  const std::uint32_t id = server.add_tenant("pinned", scheme, cfg, 1);

  const int kDeltas = 10;
  std::vector<std::weak_ptr<const std::vector<std::uint8_t>>> watch;
  std::vector<Labeling> states;  // tenant labeling after each request
  states.push_back(honest);
  std::vector<std::vector<graph::NodeIndex>> touches;
  Labeling current = honest;
  {
    Server::Frame f = frame_of(encode_full(id, epoch, 1, honest));
    watch.emplace_back(f);
    server.submit(std::move(f), Server::now_ns());
  }
  for (int d = 0; d < kDeltas; ++d) {
    const auto v = static_cast<graph::NodeIndex>(d % cfg.n());
    current.certs[v] = local::random_state(24, rng);
    const std::vector<graph::NodeIndex> touched = {v};
    Server::Frame f = frame_of(
        encode_delta(id, epoch, 1, static_cast<std::uint32_t>(cfg.n()),
                     touched, current));
    watch.emplace_back(f);
    server.submit(std::move(f), Server::now_ns());  // no handle kept
    states.push_back(current);
    touches.push_back(touched);
  }

  const std::vector<Server::Response> responses = server.drain();
  ASSERT_EQ(responses.size(), std::size_t{1 + kDeltas});

  radius::BatchOptions batch_options;
  batch_options.threads = 1;
  radius::BatchVerifier oracle(scheme, cfg, 1, batch_options);
  EXPECT_EQ(responses[0].verdict.accept(),
            oracle.run_one(states[0]).accept());
  for (int d = 0; d < kDeltas; ++d) {
    ASSERT_TRUE(responses[d + 1].wire_ok) << responses[d + 1].error;
    radius::LabelingDelta delta;
    delta.touched = touches[d];
    EXPECT_EQ(responses[d + 1].verdict.accept(),
              oracle.run_delta(states[d + 1], delta).accept())
        << "delta " << d;
  }

  // pins grow 1 (full) + 1 per delta and consolidate past kMaxTenantPins:
  // the full and the first 8 delta frames were released, the 2 after the
  // consolidation point are still pinned.
  for (std::size_t i = 0; i < watch.size(); ++i) {
    if (i < 1 + Server::kMaxTenantPins) {
      EXPECT_TRUE(watch[i].expired()) << "frame " << i;
    } else {
      EXPECT_FALSE(watch[i].expired()) << "frame " << i;
    }
  }
}

TEST(Server, ProducerMayMutateAFrameOnceItIsReleased) {
  const schemes::StpLanguage language;
  const schemes::StpScheme scheme(language);
  util::Rng rng(60906);
  auto g = share(graph::random_connected(10, 6, rng));
  const local::Configuration cfg = language.sample_legal(g, rng);
  const std::uint64_t epoch = cfg.graph().epoch();
  const Labeling first = scheme.mark(cfg);
  const Labeling second = random_labeling(cfg.n(), rng);

  ServerOptions options;
  options.threads = 1;
  Server server(options);
  const std::uint32_t id = server.add_tenant("mut", scheme, cfg, 1);

  auto mutable_frame = std::make_shared<std::vector<std::uint8_t>>(
      encode_full(id, epoch, 1, first));
  server.submit(Server::Frame(mutable_frame), Server::now_ns());
  ASSERT_TRUE(server.serve_next().has_value());

  // A second full labeling replaces the tenant's pin set; the first frame
  // must be fully released...
  server.submit(frame_of(encode_full(id, epoch, 1, second)),
                Server::now_ns());
  ASSERT_TRUE(server.serve_next().has_value());
  ASSERT_EQ(mutable_frame.use_count(), 1);

  // ...so the producer may now scribble over it with no effect on the
  // tenant's state: a delta on top of `second` still matches the oracle.
  for (std::uint8_t& byte : *mutable_frame) byte = 0xA5;

  Labeling next = second;
  next.certs[3] = local::random_state(24, rng);
  const std::vector<graph::NodeIndex> touched = {3};
  server.submit(
      frame_of(encode_delta(id, epoch, 1,
                            static_cast<std::uint32_t>(cfg.n()), touched,
                            next)),
      Server::now_ns());
  const std::optional<Server::Response> r = server.serve_next();
  ASSERT_TRUE(r.has_value());
  ASSERT_TRUE(r->wire_ok) << r->error;

  radius::BatchOptions batch_options;
  batch_options.threads = 1;
  radius::BatchVerifier oracle(scheme, cfg, 1, batch_options);
  (void)oracle.run_one(first);
  (void)oracle.run_one(second);
  radius::LabelingDelta delta;
  delta.touched = touched;
  EXPECT_EQ(r->verdict.accept(), oracle.run_delta(next, delta).accept());
}

}  // namespace
}  // namespace pls::serve
