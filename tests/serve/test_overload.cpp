// Overload control: per-tenant queue bounds shed with machine-readable
// rejections and backlog-derived retry hints; deadlines fire at submit and
// at dispatch without ever serving a late verdict; a cancelled run leaves
// the verifier verdict-exact on retry; and a seeded trail with shedding and
// expiry replays to identical responses — overload behavior is part of the
// deterministic contract, not best-effort.
#include <gtest/gtest.h>

#include "radius/batch.hpp"
#include "schemes/spanning_tree.hpp"
#include "serve/server.hpp"
#include "testing/helpers.hpp"
#include "util/cancel.hpp"

namespace pls::serve {
namespace {

using core::Labeling;
using pls::testing::share;

Server::Frame frame_of(std::vector<std::uint8_t> bytes) {
  return std::make_shared<const std::vector<std::uint8_t>>(std::move(bytes));
}

Labeling random_labeling(std::size_t n, util::Rng& rng) {
  Labeling lab;
  for (std::size_t v = 0; v < n; ++v)
    lab.certs.push_back(local::random_state(rng.below(96), rng));
  return lab;
}

void spin_until(std::uint64_t deadline_ns) {
  while (Server::now_ns() < deadline_ns) {
  }
}

/// One pinned tenant workload shared by the tests below.
struct Fixture {
  schemes::StpLanguage language;
  schemes::StpScheme scheme{language};
  util::Rng rng{81001};
  std::shared_ptr<const graph::Graph> g = share(graph::grid(3, 3));
  local::Configuration cfg = language.sample_legal(g, rng);
  Labeling honest = scheme.mark(cfg);
  std::uint64_t epoch = cfg.graph().epoch();
};

TEST(Overload, QueueBoundShedsWithRetryHints) {
  Fixture fx;
  obs::MetricsRegistry metrics;
  ServerOptions options;
  options.threads = 1;
  options.metrics = &metrics;
  options.max_queued_cost = fx.cfg.n();  // room for exactly one full
  Server server(options);
  const std::uint32_t id = server.add_tenant("solo", fx.scheme, fx.cfg, 1);

  for (int i = 0; i < 3; ++i)
    server.submit(frame_of(encode_full(id, fx.epoch, 1, fx.honest)),
                  Server::now_ns());

  // Sheds surface FIFO ahead of the DRR rounds (no verification work), so
  // drain order is: the two sheds (seq 1, 2), then the served full (seq 0).
  std::vector<Server::Response> responses = server.drain();
  ASSERT_EQ(responses.size(), 3u);
  for (int i = 0; i < 2; ++i) {
    EXPECT_FALSE(responses[i].wire_ok);
    EXPECT_STREQ(responses[i].error, "tenant queue over max_queued_cost");
    EXPECT_EQ(responses[i].rejection.kind, RejectKind::kOverloaded);
    // Nothing has completed yet, so there is no service-rate estimate.
    EXPECT_EQ(responses[i].rejection.retry_after_ns, 0u);
  }
  EXPECT_TRUE(responses[2].wire_ok) << responses[2].error;
  EXPECT_EQ(responses[2].rejection.kind, RejectKind::kNone);

  // After a completed dispatch the EWMA exists: a shed now carries a
  // backlog-priced hint.
  server.submit(frame_of(encode_full(id, fx.epoch, 1, fx.honest)),
                Server::now_ns());
  server.submit(frame_of(encode_full(id, fx.epoch, 1, fx.honest)),
                Server::now_ns());
  responses = server.drain();
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0].rejection.kind, RejectKind::kOverloaded);
  EXPECT_GT(responses[0].rejection.retry_after_ns, 0u);
  EXPECT_TRUE(responses[1].wire_ok);

  const obs::MetricsSnapshot snap = metrics.snapshot();
  EXPECT_EQ(snap.counters.at("serve.shed"), 3u);
  // Shedding is overload, not garbage: the wire-rejection counter is clean.
  EXPECT_EQ(snap.counters.at("serve.rejected_frames"), 0u);
  EXPECT_EQ(snap.counters.at("serve.expired"), 0u);
}

TEST(Overload, QueueBoundIsPerTenant) {
  Fixture fx;
  ServerOptions options;
  options.threads = 1;
  options.max_queued_cost = fx.cfg.n();
  Server server(options);
  const std::uint32_t a = server.add_tenant("a", fx.scheme, fx.cfg, 1);
  const std::uint32_t b = server.add_tenant("b", fx.scheme, fx.cfg, 1);

  // Fill a's queue, then overflow it; b must still have its full bound.
  server.submit(frame_of(encode_full(a, fx.epoch, 1, fx.honest)),
                Server::now_ns());
  server.submit(frame_of(encode_full(a, fx.epoch, 1, fx.honest)),
                Server::now_ns());
  server.submit(frame_of(encode_full(b, fx.epoch, 1, fx.honest)),
                Server::now_ns());

  const std::vector<Server::Response> responses = server.drain();
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_EQ(responses[0].rejection.kind, RejectKind::kOverloaded);
  EXPECT_EQ(responses[0].tenant_id, a);
  EXPECT_TRUE(responses[1].wire_ok);  // a's first full
  EXPECT_TRUE(responses[2].wire_ok);  // b's full — untouched by a's burst
}

TEST(Overload, ExpiredAtSubmitIsRefusedAdmission) {
  Fixture fx;
  obs::MetricsRegistry metrics;
  ServerOptions options;
  options.threads = 1;
  options.metrics = &metrics;
  Server server(options);
  const std::uint32_t id = server.add_tenant("solo", fx.scheme, fx.cfg, 1);

  // TTL 1 ms from an arrival 5 ms in the past: dead on arrival.
  const std::uint64_t past = Server::now_ns() - 5'000'000;
  server.submit(frame_of(encode_full(id, fx.epoch, 1, fx.honest, 1'000'000)),
                past);
  // A delta behind the expired full: the full never queued, so the delta
  // base promise was never made.
  Labeling next = fx.honest;
  next.certs[2] = local::random_state(24, fx.rng);
  const std::vector<graph::NodeIndex> touched = {2};
  server.submit(
      frame_of(encode_delta(id, fx.epoch, 1,
                            static_cast<std::uint32_t>(fx.cfg.n()), touched,
                            next)),
      Server::now_ns());

  const std::vector<Server::Response> responses = server.drain();
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_FALSE(responses[0].wire_ok);
  EXPECT_STREQ(responses[0].error, "deadline expired before admission");
  EXPECT_EQ(responses[0].rejection.kind, RejectKind::kExpired);
  EXPECT_STREQ(responses[1].error, "delta before any full labeling");
  EXPECT_EQ(responses[1].rejection.kind, RejectKind::kMalformed);

  const obs::MetricsSnapshot snap = metrics.snapshot();
  EXPECT_EQ(snap.counters.at("serve.expired"), 1u);
  EXPECT_EQ(snap.counters.at("serve.rejected_frames"), 1u);  // the delta only
}

TEST(Overload, ExpiredHeadIsDroppedAtDispatchNeverServedLate) {
  Fixture fx;
  obs::MetricsRegistry metrics;
  ServerOptions options;
  options.threads = 1;
  options.metrics = &metrics;
  Server server(options);
  const std::uint32_t id = server.add_tenant("solo", fx.scheme, fx.cfg, 1);

  // Admitted alive (deadline 2 ms out), but the dispatcher only gets to it
  // after the deadline passes; behind it a no-deadline request that must be
  // unaffected.
  const std::uint64_t arrival = Server::now_ns();
  const std::uint64_t ttl = 2'000'000;
  server.submit(frame_of(encode_full(id, fx.epoch, 1, fx.honest, ttl)),
                arrival);
  server.submit(frame_of(encode_full(id, fx.epoch, 1, fx.honest)),
                Server::now_ns());
  ASSERT_EQ(server.queued(), 2u);
  spin_until(arrival + ttl);

  const std::optional<Server::Response> late = server.serve_next();
  ASSERT_TRUE(late.has_value());
  EXPECT_FALSE(late->wire_ok);
  EXPECT_STREQ(late->error, "deadline expired before dispatch");
  EXPECT_EQ(late->rejection.kind, RejectKind::kExpired);

  const std::optional<Server::Response> ok = server.serve_next();
  ASSERT_TRUE(ok.has_value());
  EXPECT_TRUE(ok->wire_ok) << ok->error;
  EXPECT_TRUE(ok->verdict.all_accept());

  const obs::MetricsSnapshot snap = metrics.snapshot();
  EXPECT_EQ(snap.counters.at("serve.expired"), 1u);
  // Only SERVED deadline-carrying requests feed the slack histogram.
  EXPECT_EQ(snap.histograms.count("serve.deadline_slack_ns") != 0
                ? snap.histograms.at("serve.deadline_slack_ns").count
                : 0u,
            0u);
}

TEST(Overload, DeltaBehindDispatchExpiredFullFailsFast) {
  // A delta admitted behind a full that later expires at dispatch was
  // submitted against THAT full's labeling.  Serving it against the
  // previous full's base would be a verdict for a hybrid labeling the
  // client never sent — the drop must take the delta base with it.
  Fixture fx;
  obs::MetricsRegistry metrics;
  ServerOptions options;
  options.threads = 1;
  options.metrics = &metrics;
  Server server(options);
  const std::uint32_t id = server.add_tenant("solo", fx.scheme, fx.cfg, 1);

  // Seed a resident base (the stale base the delta must NOT verify against).
  server.submit(frame_of(encode_full(id, fx.epoch, 1, fx.honest)),
                Server::now_ns());
  ASSERT_TRUE(server.serve_next()->wire_ok);

  // A second full with a short TTL, then a delta on top of it — both
  // admitted alive, but the full's deadline passes before dispatch.
  const Labeling second = random_labeling(fx.cfg.n(), fx.rng);
  const std::uint64_t arrival = Server::now_ns();
  const std::uint64_t ttl = 2'000'000;
  server.submit(frame_of(encode_full(id, fx.epoch, 1, second, ttl)), arrival);
  Labeling next = second;
  next.certs[2] = local::random_state(24, fx.rng);
  const std::vector<graph::NodeIndex> touched = {2};
  server.submit(
      frame_of(encode_delta(id, fx.epoch, 1,
                            static_cast<std::uint32_t>(fx.cfg.n()), touched,
                            next)),
      Server::now_ns());
  spin_until(arrival + ttl);

  const std::optional<Server::Response> dropped = server.serve_next();
  ASSERT_TRUE(dropped.has_value());
  EXPECT_STREQ(dropped->error, "deadline expired before dispatch");
  EXPECT_EQ(dropped->rejection.kind, RejectKind::kExpired);

  const std::optional<Server::Response> orphan = server.serve_next();
  ASSERT_TRUE(orphan.has_value());
  EXPECT_FALSE(orphan->wire_ok);
  EXPECT_STREQ(orphan->error, "no delta base resident");
  EXPECT_EQ(orphan->rejection.kind, RejectKind::kCancelled);

  // Recovery: a fresh full re-seeds the base and a delta behind it serves
  // an oracle-exact verdict again.
  server.submit(frame_of(encode_full(id, fx.epoch, 1, second)),
                Server::now_ns());
  server.submit(
      frame_of(encode_delta(id, fx.epoch, 1,
                            static_cast<std::uint32_t>(fx.cfg.n()), touched,
                            next)),
      Server::now_ns());
  const std::vector<Server::Response> recovered = server.drain();
  ASSERT_EQ(recovered.size(), 2u);
  ASSERT_TRUE(recovered[0].wire_ok) << recovered[0].error;
  ASSERT_TRUE(recovered[1].wire_ok) << recovered[1].error;
  radius::BatchOptions oracle_options;
  oracle_options.threads = 1;
  radius::BatchVerifier oracle(fx.scheme, fx.cfg, 1, oracle_options);
  EXPECT_EQ(recovered[0].verdict.accept(), oracle.run_one(second).accept());
  radius::LabelingDelta delta;
  delta.touched = touched;
  EXPECT_EQ(recovered[1].verdict.accept(),
            oracle.run_delta(next, delta).accept());

  const obs::MetricsSnapshot snap = metrics.snapshot();
  EXPECT_EQ(snap.counters.at("serve.expired"), 1u);
}

TEST(Overload, DeltaBehindDispatchExpiredDeltaFailsFast) {
  // Same hole, delta-chain flavor: when an INTERMEDIATE delta expires at
  // dispatch, the chain behind it is missing one update — the next delta
  // must fail fast, not apply on top of the gap.
  Fixture fx;
  ServerOptions options;
  options.threads = 1;
  Server server(options);
  const std::uint32_t id = server.add_tenant("solo", fx.scheme, fx.cfg, 1);

  server.submit(frame_of(encode_full(id, fx.epoch, 1, fx.honest)),
                Server::now_ns());
  ASSERT_TRUE(server.serve_next()->wire_ok);

  Labeling mid = fx.honest;
  mid.certs[1] = local::random_state(24, fx.rng);
  Labeling next = mid;
  next.certs[5] = local::random_state(24, fx.rng);
  const std::vector<graph::NodeIndex> touched_mid = {1};
  const std::vector<graph::NodeIndex> touched_next = {5};
  const std::uint64_t arrival = Server::now_ns();
  const std::uint64_t ttl = 2'000'000;
  server.submit(
      frame_of(encode_delta(id, fx.epoch, 1,
                            static_cast<std::uint32_t>(fx.cfg.n()),
                            touched_mid, mid, ttl)),
      arrival);
  server.submit(
      frame_of(encode_delta(id, fx.epoch, 1,
                            static_cast<std::uint32_t>(fx.cfg.n()),
                            touched_next, next)),
      Server::now_ns());
  spin_until(arrival + ttl);

  const std::optional<Server::Response> dropped = server.serve_next();
  ASSERT_TRUE(dropped.has_value());
  EXPECT_STREQ(dropped->error, "deadline expired before dispatch");

  const std::optional<Server::Response> orphan = server.serve_next();
  ASSERT_TRUE(orphan.has_value());
  EXPECT_FALSE(orphan->wire_ok);
  EXPECT_STREQ(orphan->error, "no delta base resident");
  EXPECT_EQ(orphan->rejection.kind, RejectKind::kCancelled);
}

TEST(Overload, ServedDeadlineRequestRecordsSlack) {
  Fixture fx;
  obs::MetricsRegistry metrics;
  ServerOptions options;
  options.threads = 1;
  options.metrics = &metrics;
  Server server(options);
  const std::uint32_t id = server.add_tenant("solo", fx.scheme, fx.cfg, 1);

  // A generous TTL: served well before the deadline, slack lands in the
  // histogram and the verdict matches the in-memory oracle bit for bit.
  server.submit(
      frame_of(encode_full(id, fx.epoch, 1, fx.honest, 60'000'000'000ull)),
      Server::now_ns());
  const std::optional<Server::Response> r = server.serve_next();
  ASSERT_TRUE(r.has_value());
  ASSERT_TRUE(r->wire_ok) << r->error;

  radius::BatchOptions batch_options;
  batch_options.threads = 1;
  radius::BatchVerifier oracle(fx.scheme, fx.cfg, 1, batch_options);
  EXPECT_EQ(r->verdict.accept(), oracle.run_one(fx.honest).accept());

  const obs::MetricsSnapshot snap = metrics.snapshot();
  EXPECT_EQ(snap.histograms.at("serve.deadline_slack_ns").count, 1u);
  EXPECT_GT(snap.histograms.at("serve.deadline_slack_ns").max, 0u);
}

TEST(Overload, CancelledRunIsVerdictExactOnRetry) {
  // The serving contract behind mid-sweep cancellation: an abandoned run
  // leaves no resident state, so the NEXT run of the same batch is
  // bit-identical to a never-cancelled verifier.
  Fixture fx;
  const Labeling garbage = random_labeling(fx.cfg.n(), fx.rng);
  util::CancelToken token;

  radius::BatchOptions options;
  options.threads = 1;
  options.sweep = radius::BatchOptions::SweepMode::kStealing;
  radius::BatchVerifier verifier(fx.scheme, fx.cfg, 1, options);
  verifier.set_cancel(&token);

  token.cancel();
  EXPECT_THROW((void)verifier.run_one(fx.honest), util::CancelledError);
  token.reset();

  radius::BatchOptions oracle_options;
  oracle_options.threads = 1;
  radius::BatchVerifier oracle(fx.scheme, fx.cfg, 1, oracle_options);
  EXPECT_EQ(verifier.run_one(fx.honest).accept(),
            oracle.run_one(fx.honest).accept());
  EXPECT_EQ(verifier.run_one(garbage).accept(),
            oracle.run_one(garbage).accept());

  // Delta flavor: cancellation refused at entry keeps the resident base
  // valid, so the SAME delta retried verifies exactly.
  Labeling next = fx.honest;
  next.certs[4] = local::random_state(32, fx.rng);
  radius::LabelingDelta delta;
  delta.touched = {4};
  (void)verifier.run_one(fx.honest);
  (void)oracle.run_one(fx.honest);
  token.cancel();
  EXPECT_THROW((void)verifier.run_delta(next, delta), util::CancelledError);
  token.reset();
  EXPECT_EQ(verifier.run_delta(next, delta).accept(),
            oracle.run_delta(next, delta).accept());
}

TEST(Overload, SeededTrailWithSheddingReplaysIdentically) {
  // The same scripted trail — fulls, deltas, pre-expired frames, and enough
  // burst to shed — against two servers: every response must agree on
  // (seq, wire_ok, error, kind, verdict), and the served verdicts must
  // match an offline oracle that applies only the SERVED mutations.
  Fixture fx;
  std::vector<Labeling> fulls;
  util::Rng rng(81002);
  for (int i = 0; i < 3; ++i) fulls.push_back(random_labeling(fx.cfg.n(), rng));
  fulls.push_back(fx.honest);

  const auto run_trail = [&](std::vector<Server::Response>& out) {
    ServerOptions options;
    options.threads = 1;
    options.max_queued_cost = 2 * fx.cfg.n();  // two fulls of headroom
    Server server(options);
    const std::uint32_t id = server.add_tenant("solo", fx.scheme, fx.cfg, 1);
    const auto submit_full = [&](const Labeling& lab, bool expired) {
      const std::uint64_t ttl = expired ? 1'000'000 : 0;
      const std::uint64_t arrival =
          expired ? Server::now_ns() - 5'000'000 : Server::now_ns();
      server.submit(frame_of(encode_full(id, fx.epoch, 1, lab, ttl)),
                    arrival);
    };
    // Burst of four fulls: the third and fourth overflow 2n and shed.
    for (int i = 0; i < 4; ++i) submit_full(fulls[i], false);
    // A dead-on-arrival full, deterministic by construction.
    submit_full(fulls[0], true);
    for (std::optional<Server::Response> r = server.serve_next();
         r.has_value(); r = server.serve_next())
      out.push_back(std::move(*r));
    // Refill after the drain: shedding is a queue-state property, so the
    // same full that shed in the burst is admitted now.
    submit_full(fulls[2], false);
    std::vector<Server::Response> tail = server.drain();
    for (Server::Response& r : tail) out.push_back(std::move(r));
  };

  std::vector<Server::Response> first, second;
  run_trail(first);
  run_trail(second);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].seq, second[i].seq) << i;
    EXPECT_EQ(first[i].wire_ok, second[i].wire_ok) << i;
    EXPECT_STREQ(first[i].error, second[i].error);
    EXPECT_EQ(first[i].rejection.kind, second[i].rejection.kind) << i;
    EXPECT_EQ(first[i].verdict.accept(), second[i].verdict.accept()) << i;
  }

  // Offline oracle over the SERVED fulls only (seq 0 and 1 admitted; 2, 3
  // shed; 4 expired; 5 admitted after the drain).
  radius::BatchOptions batch_options;
  batch_options.threads = 1;
  radius::BatchVerifier oracle(fx.scheme, fx.cfg, 1, batch_options);
  std::size_t served = 0;
  for (const Server::Response& r : first) {
    if (!r.wire_ok) continue;
    const Labeling& lab = r.seq == 0   ? fulls[0]
                          : r.seq == 1 ? fulls[1]
                                       : fulls[2];
    EXPECT_EQ(r.verdict.accept(), oracle.run_one(lab).accept())
        << "seq " << r.seq;
    ++served;
  }
  EXPECT_EQ(served, 3u);
}

}  // namespace
}  // namespace pls::serve
