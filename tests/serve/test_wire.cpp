// Wire format v1: round trips must alias the frame (zero copy), and every
// malformation — adversarial lengths included — must be rejected by name
// without reading a byte outside the span.  The ASan/UBSan CI job runs the
// fuzz cases with real poisoned redzones.
#include "serve/wire.hpp"

#include <gtest/gtest.h>

#include <initializer_list>

#include "util/rng.hpp"

namespace pls::serve {
namespace {

local::Certificate cert_of(std::uint64_t seed, unsigned bits) {
  util::BitWriter w;
  for (unsigned i = 0; i < bits; ++i)
    w.write_bit(((seed >> (i % 61)) & 1u) != 0);
  return local::Certificate::from_writer(std::move(w));
}

core::Labeling labeling_of(std::initializer_list<unsigned> bit_sizes) {
  core::Labeling lab;
  std::uint64_t seed = 0x5EED;
  for (const unsigned bits : bit_sizes)
    lab.certs.push_back(cert_of(seed++, bits));
  return lab;
}

bool aliases(const local::Certificate& cert,
             const std::vector<std::uint8_t>& frame) {
  if (cert.bit_size() == 0) return cert.is_aliasing();
  return cert.is_aliasing() && cert.data() >= frame.data() &&
         cert.data() < frame.data() + frame.size();
}

TEST(Wire, FullRoundTripAliasesTheFrame) {
  // Sizes straddle the interesting boundaries: empty, sub-byte, exact byte,
  // multi-byte with pad bits, and word-sized.
  const core::Labeling lab = labeling_of({0, 3, 8, 17, 64});
  const std::vector<std::uint8_t> frame =
      encode_full(7, 0xABCDEF0123ull, 3, lab);

  const char* error = "unset";
  const std::optional<RequestView> view = RequestView::parse(frame, &error);
  ASSERT_TRUE(view.has_value()) << error;
  EXPECT_EQ(error, nullptr);
  EXPECT_EQ(view->kind(), WireKind::kFull);
  EXPECT_EQ(view->tenant_id(), 7u);
  EXPECT_EQ(view->node_count(), 5u);
  EXPECT_EQ(view->graph_epoch(), 0xABCDEF0123ull);
  EXPECT_EQ(view->payload_count(), 5u);
  EXPECT_EQ(view->t(), 3u);

  ASSERT_EQ(view->certs().size(), lab.size());
  for (std::size_t v = 0; v < lab.size(); ++v) {
    // Bit-equal to the original AND backed by the frame's own bytes.
    EXPECT_EQ(view->certs()[v], lab.certs[v]) << "cert " << v;
    EXPECT_TRUE(aliases(view->certs()[v], frame)) << "cert " << v;
  }
}

TEST(Wire, DeltaRoundTrip) {
  const core::Labeling next =
      labeling_of({5, 9, 12, 1, 0, 33, 7, 16, 21});
  const std::vector<graph::NodeIndex> touched = {1, 4, 8};
  const std::vector<std::uint8_t> frame =
      encode_delta(2, 99, 2, 9, touched, next);

  const std::optional<RequestView> view = RequestView::parse(frame);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->kind(), WireKind::kDelta);
  EXPECT_EQ(view->node_count(), 9u);
  EXPECT_EQ(view->payload_count(), 3u);
  ASSERT_EQ(view->touched(), touched);
  ASSERT_EQ(view->certs().size(), touched.size());
  for (std::size_t i = 0; i < touched.size(); ++i) {
    EXPECT_EQ(view->certs()[i], next.certs[touched[i]]) << "entry " << i;
    EXPECT_TRUE(aliases(view->certs()[i], frame)) << "entry " << i;
  }
}

TEST(Wire, TtlFramesRoundTripAsVersion2) {
  const core::Labeling lab = labeling_of({0, 3, 8, 17, 64});
  const std::uint64_t ttl = 0x1122334455667788ull;  // all 8 ttl bytes distinct
  const std::vector<std::uint8_t> frame =
      encode_full(7, 0xABCDEF0123ull, 3, lab, ttl);

  // v2 = v1 header + 8 ttl bytes; the records shift by exactly that.
  EXPECT_EQ(frame[4], 2);
  EXPECT_EQ(frame.size(), encode_full(7, 0xABCDEF0123ull, 3, lab).size() + 8);

  const char* error = "unset";
  const std::optional<RequestView> view = RequestView::parse(frame, &error);
  ASSERT_TRUE(view.has_value()) << error;
  EXPECT_EQ(view->ttl_ns(), ttl);
  EXPECT_EQ(view->kind(), WireKind::kFull);
  EXPECT_EQ(view->payload_count(), 5u);
  ASSERT_EQ(view->certs().size(), lab.size());
  for (std::size_t v = 0; v < lab.size(); ++v) {
    EXPECT_EQ(view->certs()[v], lab.certs[v]) << "cert " << v;
    EXPECT_TRUE(aliases(view->certs()[v], frame)) << "cert " << v;
  }

  // Delta flavor: ttl rides the same header extension.
  const std::vector<graph::NodeIndex> touched = {1, 4};
  const std::vector<std::uint8_t> delta =
      encode_delta(2, 99, 2, 5, touched, lab, 123);
  const std::optional<RequestView> dv = RequestView::parse(delta);
  ASSERT_TRUE(dv.has_value());
  EXPECT_EQ(dv->ttl_ns(), 123u);
  EXPECT_EQ(dv->touched(), touched);
}

TEST(Wire, NoDeadlineHasExactlyOneSpelling) {
  const core::Labeling lab = labeling_of({3, 8});
  // ttl 0 encodes the byte-identical version-1 frame (default argument) —
  // one canonical encoding per request.
  EXPECT_EQ(encode_full(1, 5, 2, lab, 0), encode_full(1, 5, 2, lab));
  const std::optional<RequestView> view =
      RequestView::parse(encode_full(1, 5, 2, lab));
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->ttl_ns(), 0u);
}

void expect_rejected(std::vector<std::uint8_t> frame, const char* reason) {
  const char* error = nullptr;
  EXPECT_FALSE(RequestView::parse(frame, &error).has_value()) << reason;
  ASSERT_NE(error, nullptr) << reason;
  EXPECT_STREQ(error, reason);
}

void put_u32(std::vector<std::uint8_t>& frame, std::size_t off,
             std::uint32_t v) {
  for (unsigned i = 0; i < 4; ++i)
    frame[off + i] = static_cast<std::uint8_t>(v >> (8 * i));
}

TEST(Wire, EveryMalformationIsRejectedByName) {
  const core::Labeling lab = labeling_of({3, 8, 17});
  const std::vector<std::uint8_t> full = encode_full(0, 11, 2, lab);

  {
    std::vector<std::uint8_t> f(full.begin(),
                                full.begin() + kWireHeaderBytes - 1);
    expect_rejected(std::move(f), "frame shorter than header");
  }
  {
    auto f = full;
    f[0] ^= 0xFF;
    expect_rejected(std::move(f), "bad magic");
  }
  {
    auto f = full;
    f[4] = 3;  // one past the newest version (2 is valid: TTL frames)
    expect_rejected(std::move(f), "unsupported version");
  }
  {
    auto f = full;
    f[6] = 2;
    expect_rejected(std::move(f), "unknown frame kind");
  }
  {
    auto f = full;
    put_u32(f, 12, 0);  // node_count
    put_u32(f, 24, 0);  // payload_count kept consistent
    expect_rejected(std::move(f), "zero node_count");
  }
  {
    auto f = full;
    put_u32(f, 28, 0);  // t
    expect_rejected(std::move(f), "t must be >= 1");
  }
  {
    auto f = full;
    put_u32(f, 24, 2);  // payload_count != node_count
    expect_rejected(std::move(f), "full frame payload_count != node_count");
  }
  {
    auto f = full;
    // First record's cert_bits claims more bits than the frame holds; the
    // bounds check must veto before the cursor moves.
    put_u32(f, kWireHeaderBytes, 0xFFFFFFFFu);
    expect_rejected(std::move(f), "certificate bytes truncated");
  }
  {
    auto f = full;
    // 12 body bytes satisfy the header capacity check (4 per record) but
    // cut the third record's cert_bits field itself (records occupy 5+5).
    f.resize(kWireHeaderBytes + 12);
    expect_rejected(std::move(f), "truncated cert_bits field");
  }
  {
    auto f = full;
    // First cert is 3 bits: its single payload byte must keep bits 3..7
    // clear (one canonical encoding per request).
    f[kWireHeaderBytes + 4] |= 0x80;
    expect_rejected(std::move(f), "nonzero certificate padding bits");
  }
  {
    auto f = full;
    f.push_back(0);
    expect_rejected(std::move(f), "trailing bytes after last record");
  }

  // Version-2 (TTL) malformations.
  const std::vector<std::uint8_t> full_v2 = encode_full(0, 11, 2, lab, 42);
  {
    // A v2 frame cut to the v1 header size: the size re-check against the
    // version's own header must fire before the ttl bytes are read.
    std::vector<std::uint8_t> f(full_v2.begin(),
                                full_v2.begin() + kWireHeaderBytesTtl - 1);
    expect_rejected(std::move(f), "frame shorter than header");
  }
  {
    auto f = full_v2;
    for (std::size_t i = 0; i < 8; ++i) f[32 + i] = 0;  // ttl_ns = 0
    expect_rejected(std::move(f), "zero ttl in versioned-ttl frame");
  }

  // Delta-specific malformations; empty certs keep record offsets fixed
  // (node id at +0, cert_bits at +4, 8 bytes per record).
  core::Labeling next;
  for (int v = 0; v < 6; ++v) next.certs.push_back(local::Certificate{});
  const std::vector<graph::NodeIndex> touched = {1, 3};
  const std::vector<std::uint8_t> delta =
      encode_delta(0, 11, 2, 6, touched, next);

  {
    auto f = delta;
    put_u32(f, 24, 7);  // payload_count > node_count
    expect_rejected(std::move(f), "delta payload_count exceeds node_count");
  }
  {
    // Certificates wide enough that a mid-stream cut passes the header
    // capacity check (body >= 8 per record) and still severs the second
    // record's node id (the first record occupies 4+4+8 = 16 bytes).
    core::Labeling wide;
    for (int v = 0; v < 6; ++v) wide.certs.push_back(cert_of(v, 64));
    auto f = encode_delta(0, 11, 2, 6, touched, wide);
    f.resize(kWireHeaderBytes + 18);
    expect_rejected(std::move(f), "truncated delta node id");
  }
  {
    auto f = delta;
    put_u32(f, kWireHeaderBytes, 6);  // node id == node_count
    expect_rejected(std::move(f), "delta node out of range");
  }
  {
    auto f = delta;
    put_u32(f, kWireHeaderBytes + 8, 1);  // second id repeats the first
    expect_rejected(std::move(f), "delta nodes not strictly increasing");
  }
}

TEST(Wire, HeaderOnlyAllocationBombIsRejected) {
  // A 32-byte header-only frame claiming 2^32-1 records passes every header
  // consistency check (full: node_count == payload_count), but no sane body
  // could hold them; it must reject BEFORE any reservation is sized from
  // the count — a single tiny adversarial frame must not drive a multi-GB
  // reserve() into std::bad_alloc (this escaped parse() pre-fix).
  {
    const core::Labeling lab = labeling_of({1});
    std::vector<std::uint8_t> f = encode_full(0, 11, 2, lab);
    f.resize(kWireHeaderBytes);
    put_u32(f, 12, 0xFFFFFFFFu);  // node_count
    put_u32(f, 24, 0xFFFFFFFFu);  // payload_count
    expect_rejected(std::move(f), "payload_count exceeds frame capacity");
  }
  // Delta flavor: each record needs >= 8 bytes (node id + cert_bits), so a
  // count the body could hold at 4 bytes per record still rejects.
  {
    core::Labeling next;
    for (int v = 0; v < 6; ++v) next.certs.push_back(local::Certificate{});
    const std::vector<graph::NodeIndex> touched = {1, 3};
    std::vector<std::uint8_t> f = encode_delta(0, 11, 2, 6, touched, next);
    put_u32(f, 24, 3);  // claims 3 records; the 16-byte body holds at most 2
    expect_rejected(std::move(f), "payload_count exceeds frame capacity");
  }
}

TEST(Wire, EveryTruncationPointIsRejected) {
  const core::Labeling lab = labeling_of({0, 3, 8, 17, 64});
  const std::vector<graph::NodeIndex> touched = {0, 2, 4};
  for (const std::vector<std::uint8_t>& frame :
       {encode_full(1, 5, 2, lab), encode_delta(1, 5, 2, 5, touched, lab),
        encode_full(1, 5, 2, lab, 999),
        encode_delta(1, 5, 2, 5, touched, lab, 999)}) {
    for (std::size_t len = 0; len < frame.size(); ++len) {
      const char* error = nullptr;
      const auto view = RequestView::parse(
          std::span<const std::uint8_t>(frame.data(), len), &error);
      // Records fill the frame exactly, so every strict prefix is either
      // mid-record or missing records — never a valid frame.
      EXPECT_FALSE(view.has_value()) << "length " << len;
      EXPECT_NE(error, nullptr) << "length " << len;
    }
  }
}

TEST(Wire, RandomCorruptionNeverBreaksAccessorTotality) {
  const core::Labeling lab = labeling_of({7, 0, 19, 8, 3, 40});
  const std::vector<std::uint8_t> honest = encode_full(3, 77, 4, lab);
  util::Rng rng(90210);
  for (int trial = 0; trial < 500; ++trial) {
    auto frame = honest;
    for (std::uint64_t flips = 1 + rng.below(4); flips > 0; --flips) {
      const std::size_t byte = rng.below(frame.size());
      frame[byte] ^= static_cast<std::uint8_t>(1u << rng.below(8));
    }
    const auto view = RequestView::parse(frame);
    if (!view.has_value()) continue;
    // Accepted frames must be internally consistent: the accessors are
    // total and every certificate stays inside the buffer.
    EXPECT_EQ(view->certs().size(), view->payload_count());
    for (const local::Certificate& cert : view->certs())
      EXPECT_TRUE(aliases(cert, frame));
  }
}

}  // namespace
}  // namespace pls::serve
