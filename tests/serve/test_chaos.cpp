// Deterministic fault injection (util/failpoint.hpp) against the serving
// stack: injected atlas OOMs, wire corruption, and sweep stalls must leave
// the server AVAILABLE (shedding and failing requests, never crashing or
// hanging), keep every served verdict bit-identical to an offline oracle,
// and replay byte-for-byte under a fixed seed.  The whole suite is compiled
// against -DPROOFLAB_FAILPOINTS=ON (the chaos CI job); in a normal build
// only the compiled-out smoke test below remains.
#include "util/failpoint.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "radius/atlas.hpp"
#include "radius/batch.hpp"
#include "radius/fragment_spread.hpp"
#include "schemes/spanning_tree.hpp"
#include "serve/server.hpp"
#include "testing/helpers.hpp"

namespace pls::serve {
namespace {

using core::Labeling;
using pls::testing::share;
namespace failpoint = util::failpoint;

#if !defined(PROOFLAB_FAILPOINTS)

TEST(Chaos, FailpointsAreCompiledOut) {
  // The registry still links (arm/disarm are library code), but no site is
  // compiled into the binaries: arming the hottest site must never fire.
  failpoint::arm("radius.atlas.build",
                 failpoint::Plan{.action = failpoint::Action::kError});
  const schemes::StpLanguage language;
  const schemes::StpScheme scheme(language);
  util::Rng rng(90001);
  auto g = share(graph::grid(3, 3));
  const local::Configuration cfg = language.sample_legal(g, rng);
  radius::BatchOptions options;
  options.threads = 1;
  radius::BatchVerifier verifier(scheme, cfg, 1, options);
  EXPECT_TRUE(verifier.run_one(scheme.mark(cfg)).all_accept());
  EXPECT_EQ(failpoint::hits("radius.atlas.build"), 0u);
  failpoint::disarm_all();
}

#else  // PROOFLAB_FAILPOINTS

Server::Frame frame_of(std::vector<std::uint8_t> bytes) {
  return std::make_shared<const std::vector<std::uint8_t>>(std::move(bytes));
}

/// Every test starts and ends with a clean registry — a leaked arm would
/// bleed faults into later tests.
class Chaos : public ::testing::Test {
 protected:
  void SetUp() override { failpoint::disarm_all(); }
  void TearDown() override { failpoint::disarm_all(); }

  schemes::StpLanguage language;
  schemes::StpScheme scheme{language};
  util::Rng rng{90002};
  std::shared_ptr<const graph::Graph> g = share(graph::grid(4, 4));
  local::Configuration cfg = language.sample_legal(g, rng);
  Labeling honest = scheme.mark(cfg);
  std::uint64_t epoch = cfg.graph().epoch();
};

TEST_F(Chaos, AtlasBuildFaultWakesEveryWaiterAndStaysRebuildable) {
  // Regression for the in-flight dedup wakeup: a THROWING build must wake
  // deduped waiters with the failure (not strand them, not serialize them
  // into rebuild attempts), and the erased entry must leave the key
  // rebuildable once the fault clears.
  radius::GeometryAtlas atlas;
  failpoint::arm("radius.atlas.build",
                 failpoint::Plan{.action = failpoint::Action::kBadAlloc,
                                 .probability = 1.0,
                                 .seed = 7,
                                 .max_fires = 1});
  constexpr int kThreads = 4;
  std::atomic<int> threw{0};
  std::atomic<int> served{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i)
    threads.emplace_back([&] {
      try {
        if (atlas.block(*g, 1, 0) != nullptr) served.fetch_add(1);
      } catch (const std::bad_alloc&) {
        threw.fetch_add(1);
      }
    });
  for (std::thread& t : threads) t.join();
  // max_fires = 1: exactly one build attempt faulted; every thread either
  // saw that failure (builder or deduped waiter) or arrived after the erase
  // and rebuilt successfully.  Nobody hangs, nobody gets a null block.
  EXPECT_EQ(failpoint::fires("radius.atlas.build"), 1u);
  EXPECT_GE(threw.load(), 1);
  EXPECT_EQ(threw.load() + served.load(), kThreads);

  // The key is rebuildable after the transient fault.
  EXPECT_NE(atlas.block(*g, 1, 0), nullptr);
}

TEST_F(Chaos, InjectedFaultFailsTheRequestNotTheServer) {
  // A t = 2 ball scheme: only ball schemes consult the atlas, so this is
  // the tenant whose sweep the injected build fault can reach (a plain
  // 1-round scheme never builds geometry).
  const radius::FragmentSpreadScheme spread(scheme, 2);
  const Labeling spread_honest = spread.mark(cfg);
  obs::MetricsRegistry metrics;
  ServerOptions options;
  options.threads = 1;
  options.metrics = &metrics;
  // A private atlas, so the injected build fault hits THIS request's sweep.
  options.atlas = std::make_shared<radius::GeometryAtlas>();
  Server server(options);
  const std::uint32_t id = server.add_tenant("solo", spread, cfg, 2);

  failpoint::arm("radius.atlas.build",
                 failpoint::Plan{.action = failpoint::Action::kError,
                                 .probability = 1.0,
                                 .seed = 3,
                                 .max_fires = 1});
  server.submit(frame_of(encode_full(id, epoch, 2, spread_honest)),
                Server::now_ns());
  const std::optional<Server::Response> faulted = server.serve_next();
  ASSERT_TRUE(faulted.has_value());
  EXPECT_FALSE(faulted->wire_ok);
  EXPECT_STREQ(faulted->error, "internal fault during verification");
  EXPECT_EQ(faulted->rejection.kind, RejectKind::kFaulted);

  // The base died with the abandoned run: a delta fails fast by name...
  Labeling next = spread_honest;
  next.certs[3] = local::random_state(24, rng);
  const std::vector<graph::NodeIndex> touched = {3};
  server.submit(
      frame_of(encode_delta(id, epoch, 2,
                            static_cast<std::uint32_t>(cfg.n()), touched,
                            next)),
      Server::now_ns());
  const std::optional<Server::Response> orphan = server.serve_next();
  ASSERT_TRUE(orphan.has_value());
  EXPECT_STREQ(orphan->error, "no delta base resident");
  EXPECT_EQ(orphan->rejection.kind, RejectKind::kCancelled);

  // ...and the next full recovers the tenant with an oracle-exact verdict.
  server.submit(frame_of(encode_full(id, epoch, 2, spread_honest)),
                Server::now_ns());
  const std::optional<Server::Response> recovered = server.serve_next();
  ASSERT_TRUE(recovered.has_value());
  ASSERT_TRUE(recovered->wire_ok) << recovered->error;
  radius::BatchOptions oracle_options;
  oracle_options.threads = 1;
  radius::BatchVerifier oracle(spread, cfg, 2, oracle_options);
  EXPECT_EQ(recovered->verdict.accept(),
            oracle.run_one(spread_honest).accept());

  const obs::MetricsSnapshot snap = metrics.snapshot();
  EXPECT_EQ(snap.counters.at("serve.faults"), 1u);
}

TEST_F(Chaos, DeadlineExpiresMidSweepThenTenantRecovers) {
  // Stall every sweep chunk 1 ms: a 5 ms TTL survives admission and parse
  // but dies inside the sweep — cooperative cancellation at a chunk
  // boundary, never a silently late verdict.
  auto big = share(graph::grid(16, 16));
  const local::Configuration big_cfg = language.sample_legal(big, rng);
  const Labeling big_honest = scheme.mark(big_cfg);
  const std::uint64_t big_epoch = big_cfg.graph().epoch();

  obs::MetricsRegistry metrics;
  ServerOptions options;
  options.threads = 1;
  options.metrics = &metrics;
  Server server(options);
  const std::uint32_t id = server.add_tenant("solo", scheme, big_cfg, 1);

  // Warm the atlas first so the stalled run pays only sweep time.
  server.submit(frame_of(encode_full(id, big_epoch, 1, big_honest)),
                Server::now_ns());
  ASSERT_TRUE(server.serve_next()->wire_ok);

  failpoint::arm("pool.chunk",
                 failpoint::Plan{.action = failpoint::Action::kDelay,
                                 .probability = 1.0,
                                 .seed = 11,
                                 .max_fires = 0,
                                 .delay_ns = 1'000'000});
  server.submit(
      frame_of(encode_full(id, big_epoch, 1, big_honest, 5'000'000)),
      Server::now_ns());
  const std::optional<Server::Response> expired = server.serve_next();
  ASSERT_TRUE(expired.has_value());
  EXPECT_FALSE(expired->wire_ok);
  EXPECT_STREQ(expired->error, "deadline expired during verification");
  EXPECT_EQ(expired->rejection.kind, RejectKind::kExpired);
  failpoint::disarm("pool.chunk");

  // Base lost mid-run; the recovery full is oracle-exact.
  server.submit(frame_of(encode_full(id, big_epoch, 1, big_honest)),
                Server::now_ns());
  const std::optional<Server::Response> recovered = server.serve_next();
  ASSERT_TRUE(recovered.has_value());
  ASSERT_TRUE(recovered->wire_ok) << recovered->error;
  radius::BatchOptions oracle_options;
  oracle_options.threads = 1;
  radius::BatchVerifier oracle(scheme, big_cfg, 1, oracle_options);
  EXPECT_EQ(recovered->verdict.accept(), oracle.run_one(big_honest).accept());

  const obs::MetricsSnapshot snap = metrics.snapshot();
  EXPECT_GE(snap.counters.at("serve.cancelled_sweeps"), 1u);
  EXPECT_GE(snap.counters.at("serve.expired"), 1u);
}

TEST_F(Chaos, SweepCompletingPastDeadlineIsNotServed) {
  // The post-run deadline checkpoint: when every chunk is claimed before
  // the token trips, the sweep completes instead of unwinding — the late
  // verdict must still be withheld.  path(2) at one thread sweeps exactly
  // two chunks; seed 3 at probability 0.5 draws [no-fire, fire], so only
  // the SECOND chunk stalls: both claims poll the token microseconds after
  // dispatch (well inside the 10 ms TTL), then the 50 ms stall pushes
  // completion far past the deadline with no poll left to trip.
  auto two = share(graph::path(2));
  const local::Configuration two_cfg = language.sample_legal(two, rng);
  const Labeling two_honest = scheme.mark(two_cfg);
  const std::uint64_t two_epoch = two_cfg.graph().epoch();

  obs::MetricsRegistry metrics;
  ServerOptions options;
  options.threads = 1;
  options.metrics = &metrics;
  Server server(options);
  const std::uint32_t id = server.add_tenant("solo", scheme, two_cfg, 1);

  failpoint::arm("pool.chunk",
                 failpoint::Plan{.action = failpoint::Action::kDelay,
                                 .probability = 0.5,
                                 .seed = 3,
                                 .max_fires = 1,
                                 .delay_ns = 50'000'000});
  server.submit(
      frame_of(encode_full(id, two_epoch, 1, two_honest, 10'000'000)),
      Server::now_ns());
  const std::optional<Server::Response> late = server.serve_next();
  failpoint::disarm("pool.chunk");
  ASSERT_TRUE(late.has_value());
  EXPECT_FALSE(late->wire_ok);
  EXPECT_STREQ(late->error, "deadline expired after verification");
  EXPECT_EQ(late->rejection.kind, RejectKind::kExpired);

  // The run COMPLETED, so the base it installed is exact — a delta behind
  // the late full serves an oracle-identical verdict, unlike the abandoned
  // and dispatch-dropped cases where the base dies with the frame.
  Labeling next = two_honest;
  next.certs[1] = local::random_state(24, rng);
  const std::vector<graph::NodeIndex> touched = {1};
  server.submit(
      frame_of(encode_delta(id, two_epoch, 1,
                            static_cast<std::uint32_t>(two_cfg.n()), touched,
                            next)),
      Server::now_ns());
  const std::optional<Server::Response> after = server.serve_next();
  ASSERT_TRUE(after.has_value());
  ASSERT_TRUE(after->wire_ok) << after->error;
  radius::BatchOptions oracle_options;
  oracle_options.threads = 1;
  radius::BatchVerifier oracle(scheme, two_cfg, 1, oracle_options);
  (void)oracle.run_one(two_honest);
  radius::LabelingDelta delta;
  delta.touched = touched;
  EXPECT_EQ(after->verdict.accept(), oracle.run_delta(next, delta).accept());

  const obs::MetricsSnapshot snap = metrics.snapshot();
  EXPECT_EQ(snap.counters.at("serve.expired"), 1u);
  // Completion, not cancellation: the token never tripped a claim.
  EXPECT_EQ(snap.counters.at("serve.cancelled_sweeps"), 0u);
  // Late completions never feed the slack histogram.
  EXPECT_EQ(snap.histograms.count("serve.deadline_slack_ns") != 0
                ? snap.histograms.at("serve.deadline_slack_ns").count
                : 0u,
            0u);
}

/// Runs a fixed trail of full-labeling requests — some doomed by injected
/// wire faults — and returns the responses.  Arms the same seeds each call.
std::vector<Server::Response> run_faulted_trail(
    const schemes::StpScheme& scheme, const local::Configuration& cfg,
    const std::vector<Labeling>& fulls, unsigned threads,
    obs::MetricsRegistry* metrics) {
  failpoint::disarm_all();
  failpoint::arm("serve.wire_ingest",
                 failpoint::Plan{.action = failpoint::Action::kError,
                                 .probability = 0.3,
                                 .seed = 42});
  failpoint::arm("pool.chunk",
                 failpoint::Plan{.action = failpoint::Action::kDelay,
                                 .probability = 0.2,
                                 .seed = 43,
                                 .max_fires = 0,
                                 .delay_ns = 20'000});
  ServerOptions options;
  options.threads = threads;
  options.metrics = metrics;
  options.max_queued_cost = 3 * cfg.n();  // sheds inside the burst
  Server server(options);
  const std::uint32_t id =
      server.add_tenant("solo", scheme, cfg, 1);
  const std::uint64_t epoch = cfg.graph().epoch();
  std::vector<Server::Response> out;
  for (std::size_t i = 0; i < fulls.size(); ++i) {
    // Every 5th request is dead on arrival (deterministic expiry).
    const bool expired = i % 5 == 4;
    const std::uint64_t ttl = expired ? 1'000'000 : 0;
    const std::uint64_t arrival =
        expired ? Server::now_ns() - 5'000'000 : Server::now_ns();
    server.submit(frame_of(encode_full(id, epoch, 1, fulls[i], ttl)),
                  arrival);
    // Serve every other submit, so the queue oscillates around the bound.
    if (i % 2 == 1) {
      if (std::optional<Server::Response> r = server.serve_next();
          r.has_value())
        out.push_back(std::move(*r));
    }
  }
  std::vector<Server::Response> tail = server.drain();
  for (Server::Response& r : tail) out.push_back(std::move(r));
  failpoint::disarm_all();
  return out;
}

TEST_F(Chaos, FaultedTrailReplaysIdenticallyPerSeed) {
  std::vector<Labeling> fulls;
  util::Rng lab_rng(90003);
  for (int i = 0; i < 12; ++i) {
    Labeling lab;
    for (std::size_t v = 0; v < cfg.n(); ++v)
      lab.certs.push_back(local::random_state(lab_rng.below(64), lab_rng));
    fulls.push_back(std::move(lab));
  }
  fulls[0] = honest;

  obs::MetricsRegistry m1, m2;
  const std::vector<Server::Response> first =
      run_faulted_trail(scheme, cfg, fulls, 1, &m1);
  const std::vector<Server::Response> second =
      run_faulted_trail(scheme, cfg, fulls, 1, &m2);

  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].seq, second[i].seq) << i;
    EXPECT_EQ(first[i].wire_ok, second[i].wire_ok) << i;
    EXPECT_STREQ(first[i].error, second[i].error);
    EXPECT_EQ(first[i].rejection.kind, second[i].rejection.kind) << i;
    EXPECT_EQ(first[i].verdict.accept(), second[i].verdict.accept()) << i;
  }
  // Shed/expired/fault counts are part of the deterministic contract.
  const obs::MetricsSnapshot s1 = m1.snapshot();
  const obs::MetricsSnapshot s2 = m2.snapshot();
  for (const char* key : {"serve.shed", "serve.expired",
                          "serve.rejected_frames", "serve.faults"})
    EXPECT_EQ(s1.counters.at(key), s2.counters.at(key)) << key;
  // The trail genuinely exercised the fault paths.
  EXPECT_GT(s1.counters.at("serve.rejected_frames"), 0u);
  EXPECT_GT(s1.counters.at("serve.expired"), 0u);
}

TEST_F(Chaos, ServedVerdictsMatchOracleAtEveryThreadCount) {
  // Whatever the injected faults do to WHICH requests survive, every served
  // verdict must be bit-identical to the offline oracle — at one thread,
  // two, and the hardware count.
  std::vector<Labeling> fulls;
  util::Rng lab_rng(90004);
  for (int i = 0; i < 10; ++i) {
    Labeling lab;
    for (std::size_t v = 0; v < cfg.n(); ++v)
      lab.certs.push_back(local::random_state(lab_rng.below(64), lab_rng));
    fulls.push_back(std::move(lab));
  }
  fulls[0] = honest;

  for (const unsigned threads :
       {1u, 2u, util::ThreadPool::hardware_threads()}) {
    const std::vector<Server::Response> responses =
        run_faulted_trail(scheme, cfg, fulls, threads, nullptr);
    radius::BatchOptions oracle_options;
    oracle_options.threads = threads;
    radius::BatchVerifier oracle(scheme, cfg, 1, oracle_options);
    std::size_t served = 0;
    for (const Server::Response& r : responses) {
      if (!r.wire_ok) continue;
      ASSERT_LT(r.seq, fulls.size());
      EXPECT_EQ(r.verdict.accept(),
                oracle.run_one(fulls[r.seq]).accept())
          << "seq " << r.seq << " threads " << threads;
      ++served;
    }
    EXPECT_GT(served, 0u) << "threads " << threads;
  }
}

TEST_F(Chaos, WireIngestFaultCountsAreThreadCountInvariant) {
  // The ingest site runs on the dispatcher thread only, so WHICH submits
  // are corrupted is a pure function of the seed — independent of sweep
  // parallelism.
  std::vector<Labeling> fulls(6, honest);
  const auto rejected_seqs = [&](unsigned threads) {
    std::vector<std::uint64_t> seqs;
    for (const Server::Response& r :
         run_faulted_trail(scheme, cfg, fulls, threads, nullptr))
      if (!r.wire_ok && r.rejection.kind == RejectKind::kMalformed)
        seqs.push_back(r.seq);
    return seqs;
  };
  const std::vector<std::uint64_t> at_one = rejected_seqs(1);
  EXPECT_EQ(at_one, rejected_seqs(2));
  EXPECT_EQ(at_one, rejected_seqs(util::ThreadPool::hardware_threads()));
}

#endif  // PROOFLAB_FAILPOINTS

}  // namespace
}  // namespace pls::serve
