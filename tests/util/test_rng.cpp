#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace pls::util {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.bits(), b.bits());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 16 && !any_diff; ++i) any_diff = a.bits() != b.bits();
  EXPECT_TRUE(any_diff);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(13), 13u);
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowZeroThrows) {
  Rng rng(7);
  EXPECT_THROW(rng.below(0), std::logic_error);
}

TEST(Rng, BetweenInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.between(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values hit with 500 draws
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(11);
  const auto p = rng.permutation(50);
  ASSERT_EQ(p.size(), 50u);
  std::set<std::uint64_t> values(p.begin(), p.end());
  EXPECT_EQ(values.size(), 50u);
  EXPECT_EQ(*values.begin(), 0u);
  EXPECT_EQ(*values.rbegin(), 49u);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(13);
  std::vector<int> xs = {1, 2, 2, 3, 3, 3};
  auto sorted = xs;
  rng.shuffle(xs);
  std::sort(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(xs, sorted);
}

TEST(Rng, SplitGivesIndependentStream) {
  Rng a(5);
  Rng child = a.split();
  // The child is deterministic given the parent state...
  Rng a2(5);
  Rng child2 = a2.split();
  EXPECT_EQ(child.bits(), child2.bits());
  // ...and distinct from the parent's continuation.
  EXPECT_NE(child2.bits(), a.bits());
}

TEST(Rng, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

}  // namespace
}  // namespace pls::util
