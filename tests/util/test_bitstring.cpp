#include "util/bitstring.hpp"

#include <gtest/gtest.h>

namespace pls::util {
namespace {

TEST(BitString, DefaultIsEmpty) {
  BitString s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.bit_size(), 0u);
}

TEST(BitString, OfUintRoundTrip) {
  const BitString s = BitString::of_uint(0b1011, 4);
  EXPECT_EQ(s.bit_size(), 4u);
  BitReader r = s.reader();
  EXPECT_EQ(r.read_uint(4), std::optional<std::uint64_t>(0b1011));
}

TEST(BitString, EqualityIgnoresPaddingBits) {
  // Same 3 significant bits, different garbage in the rest of the byte.
  BitString a({0b00000101}, 3);
  BitString b({0b11111101}, 3);
  EXPECT_EQ(a, b);
}

TEST(BitString, DifferentLengthsDiffer) {
  BitString a = BitString::of_uint(1, 1);
  BitString b = BitString::of_uint(1, 2);
  EXPECT_NE(a, b);
}

TEST(BitString, DifferentContentDiffers) {
  EXPECT_NE(BitString::of_uint(5, 4), BitString::of_uint(6, 4));
}

TEST(BitString, HashConsistentWithEquality) {
  BitString a({0b00000101}, 3);
  BitString b({0b11111101}, 3);
  EXPECT_EQ(a.hash(), b.hash());
}

TEST(BitString, PrefixShortens) {
  const BitString s = BitString::of_uint(0b110101, 6);
  const BitString p = s.prefix(3);
  EXPECT_EQ(p.bit_size(), 3u);
  EXPECT_EQ(p, BitString::of_uint(0b101, 3));
}

TEST(BitString, PrefixLongerThanStringIsIdentity) {
  const BitString s = BitString::of_uint(0b11, 2);
  EXPECT_EQ(s.prefix(100), s);
}

TEST(BitString, PrefixZeroIsEmpty) {
  const BitString s = BitString::of_uint(0b11, 2);
  EXPECT_TRUE(s.prefix(0).empty());
  EXPECT_EQ(s.prefix(0), BitString{});
}

TEST(BitString, FromWriterTakesOwnership) {
  BitWriter w;
  w.write_varint(999);
  const std::size_t bits = w.bit_size();
  const BitString s = BitString::from_writer(std::move(w));
  EXPECT_EQ(s.bit_size(), bits);
  BitReader r = s.reader();
  EXPECT_EQ(r.read_varint(), std::optional<std::uint64_t>(999));
}

TEST(BitString, MultiByteEquality) {
  BitWriter w1, w2;
  for (int i = 0; i < 5; ++i) {
    w1.write_varint(1000 + i);
    w2.write_varint(1000 + i);
  }
  EXPECT_EQ(BitString::from_writer(std::move(w1)),
            BitString::from_writer(std::move(w2)));
}

}  // namespace
}  // namespace pls::util
