#include "util/table.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

namespace pls::util {
namespace {

TEST(Table, PrintsHeaderAndRows) {
  Table t({"name", "n", "bits"});
  t.row("leader", 16, 42);
  t.row("mstl", 1024, 9000);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("leader"), std::string::npos);
  EXPECT_NE(out.find("9000"), std::string::npos);
  // Header + separator + 2 rows = 4 lines.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(Table, FormatsDoublesWithThreeDecimals) {
  Table t({"x"});
  t.row(0.5);
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("0.500"), std::string::npos);
}

TEST(Table, RejectsWrongArity) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::logic_error);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), std::logic_error);
}

TEST(Table, CountsRows) {
  Table t({"a"});
  EXPECT_EQ(t.num_rows(), 0u);
  t.row(1);
  t.row(2);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, ColumnsAlignToWidestCell) {
  Table t({"x", "y"});
  t.row("short", 1);
  t.row("a-much-longer-cell", 2);
  std::ostringstream os;
  t.print(os);
  std::istringstream in(os.str());
  std::string first, second;
  std::getline(in, first);
  std::getline(in, second);
  std::getline(in, second);  // first data row
  EXPECT_EQ(first.size(), second.size());
}

}  // namespace
}  // namespace pls::util
