// ThreadPool: exact range coverage, deterministic static partition,
// sequential fallback, exception propagation, reuse across jobs.
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace pls::util {
namespace {

TEST(ThreadPool, CoversRangeExactlyOnce) {
  for (const unsigned threads : {1u, 2u, 3u, 8u}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> hits(1000);
    pool.for_range(hits.size(), [&](unsigned worker, std::size_t begin,
                                    std::size_t end) {
      EXPECT_LT(worker, threads);
      EXPECT_LT(begin, end);
      for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
    });
    for (const std::atomic<int>& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, RangeSmallerThanThreadCount) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.for_range(hits.size(),
                 [&](unsigned, std::size_t begin, std::size_t end) {
                   for (std::size_t i = begin; i < end; ++i)
                     hits[i].fetch_add(1);
                 });
  for (const std::atomic<int>& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeInvokesNothing) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.for_range(0, [&](unsigned, std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, SequentialFallbackRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  const auto caller = std::this_thread::get_id();
  std::size_t calls = 0;
  pool.for_range(57, [&](unsigned worker, std::size_t begin, std::size_t end) {
    EXPECT_EQ(worker, 0u);
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 57u);
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ++calls;
  });
  EXPECT_EQ(calls, 1u);
}

TEST(ThreadPool, StaticPartitionIsDeterministic) {
  // slice() tiles [0, n) in order, and repeated jobs see the same partition.
  for (const unsigned threads : {1u, 2u, 5u}) {
    std::size_t expect_begin = 0;
    for (unsigned w = 0; w < threads; ++w) {
      const auto [begin, end] = ThreadPool::slice(103, threads, w);
      EXPECT_EQ(begin, expect_begin);
      EXPECT_LE(begin, end);
      expect_begin = end;
    }
    EXPECT_EQ(expect_begin, 103u);
  }
}

TEST(ThreadPool, ExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.for_range(100,
                     [&](unsigned, std::size_t begin, std::size_t) {
                       if (begin == 0) throw std::runtime_error("slice 0");
                     }),
      std::runtime_error);
  // The pool must be reusable after a failed job.
  std::atomic<int> total{0};
  pool.for_range(100, [&](unsigned, std::size_t begin, std::size_t end) {
    total.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(total.load(), 100);
}

TEST(ThreadPool, ReusableAcrossManyJobs) {
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  for (int job = 0; job < 200; ++job)
    pool.for_range(64, [&](unsigned, std::size_t begin, std::size_t end) {
      long local = 0;
      for (std::size_t i = begin; i < end; ++i) local += static_cast<long>(i);
      sum.fetch_add(local);
    });
  EXPECT_EQ(sum.load(), 200L * (63 * 64 / 2));
}

TEST(ThreadPool, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::hardware_threads(), 1u);
}

TEST(ThreadPool, ZeroThreadsIsInvalidInput) {
  EXPECT_THROW(ThreadPool pool(0), std::logic_error);
}

}  // namespace
}  // namespace pls::util
