// ThreadPool: exact range coverage, deterministic static partition,
// sequential fallback, exception propagation, reuse across jobs.
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace pls::util {
namespace {

TEST(ThreadPool, CoversRangeExactlyOnce) {
  for (const unsigned threads : {1u, 2u, 3u, 8u}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> hits(1000);
    pool.for_range(hits.size(), [&](unsigned worker, std::size_t begin,
                                    std::size_t end) {
      EXPECT_LT(worker, threads);
      EXPECT_LT(begin, end);
      for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
    });
    for (const std::atomic<int>& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, RangeSmallerThanThreadCount) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.for_range(hits.size(),
                 [&](unsigned, std::size_t begin, std::size_t end) {
                   for (std::size_t i = begin; i < end; ++i)
                     hits[i].fetch_add(1);
                 });
  for (const std::atomic<int>& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeInvokesNothing) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.for_range(0, [&](unsigned, std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, SequentialFallbackRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  const auto caller = std::this_thread::get_id();
  std::size_t calls = 0;
  pool.for_range(57, [&](unsigned worker, std::size_t begin, std::size_t end) {
    EXPECT_EQ(worker, 0u);
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 57u);
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ++calls;
  });
  EXPECT_EQ(calls, 1u);
}

TEST(ThreadPool, StaticPartitionIsDeterministic) {
  // slice() tiles [0, n) in order, and repeated jobs see the same partition.
  for (const unsigned threads : {1u, 2u, 5u}) {
    std::size_t expect_begin = 0;
    for (unsigned w = 0; w < threads; ++w) {
      const auto [begin, end] = ThreadPool::slice(103, threads, w);
      EXPECT_EQ(begin, expect_begin);
      EXPECT_LE(begin, end);
      expect_begin = end;
    }
    EXPECT_EQ(expect_begin, 103u);
  }
}

TEST(ThreadPool, ExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.for_range(100,
                     [&](unsigned, std::size_t begin, std::size_t) {
                       if (begin == 0) throw std::runtime_error("slice 0");
                     }),
      std::runtime_error);
  // The pool must be reusable after a failed job.
  std::atomic<int> total{0};
  pool.for_range(100, [&](unsigned, std::size_t begin, std::size_t end) {
    total.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(total.load(), 100);
}

TEST(ThreadPool, ReusableAcrossManyJobs) {
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  for (int job = 0; job < 200; ++job)
    pool.for_range(64, [&](unsigned, std::size_t begin, std::size_t end) {
      long local = 0;
      for (std::size_t i = begin; i < end; ++i) local += static_cast<long>(i);
      sum.fetch_add(local);
    });
  EXPECT_EQ(sum.load(), 200L * (63 * 64 / 2));
}

// post_range/finish_range: the pipelining split of for_range.  Worker
// slices may run during the overlap window; slice 0 runs inside
// finish_range on the calling thread; coverage and partition are identical
// to for_range's.
TEST(ThreadPool, PostFinishCoversRangeExactlyOnce) {
  for (const unsigned threads : {1u, 2u, 4u}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> hits(500);
    std::atomic<int> overlap_work{0};
    pool.post_range(hits.size(), [&](unsigned worker, std::size_t begin,
                                     std::size_t end) {
      EXPECT_LT(worker, threads);
      for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
    });
    // The overlap window: the caller is free here while workers run.
    overlap_work.store(42);
    pool.finish_range();
    EXPECT_EQ(overlap_work.load(), 42);
    for (const std::atomic<int>& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, PostFinishSequentialDefersWholeRangeToFinish) {
  ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  std::size_t calls = 0;
  bool before_finish = true;
  pool.post_range(31, [&](unsigned worker, std::size_t begin,
                          std::size_t end) {
    EXPECT_FALSE(before_finish);  // nothing may run before finish_range
    EXPECT_EQ(worker, 0u);
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 31u);
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ++calls;
  });
  EXPECT_EQ(calls, 0u);
  before_finish = false;
  pool.finish_range();
  EXPECT_EQ(calls, 1u);
}

TEST(ThreadPool, PostFinishEmptyRangeAndReuse) {
  ThreadPool pool(3);
  std::atomic<int> calls{0};
  pool.post_range(0, [&](unsigned, std::size_t, std::size_t) { ++calls; });
  pool.finish_range();
  EXPECT_EQ(calls.load(), 0);
  // Alternate post/finish with plain for_range on the same pool.
  std::atomic<int> total{0};
  pool.post_range(64, [&](unsigned, std::size_t begin, std::size_t end) {
    total.fetch_add(static_cast<int>(end - begin));
  });
  pool.finish_range();
  pool.for_range(36, [&](unsigned, std::size_t begin, std::size_t end) {
    total.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(total.load(), 100);
}

TEST(ThreadPool, PostFinishExceptionPropagatesAtFinish) {
  ThreadPool pool(2);
  pool.post_range(10, [&](unsigned, std::size_t begin, std::size_t) {
    if (begin == 0) throw std::runtime_error("slice 0");
  });
  EXPECT_THROW(pool.finish_range(), std::runtime_error);
  std::atomic<int> total{0};
  pool.for_range(10, [&](unsigned, std::size_t begin, std::size_t end) {
    total.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(total.load(), 10);
}

TEST(ThreadPool, DoublePostOrUnpairedUseIsInvalid) {
  ThreadPool pool(2);
  pool.post_range(4, [](unsigned, std::size_t, std::size_t) {});
  EXPECT_THROW(pool.post_range(4, [](unsigned, std::size_t, std::size_t) {}),
               std::logic_error);
  EXPECT_THROW(
      pool.for_range(4, [](unsigned, std::size_t, std::size_t) {}),
      std::logic_error);
  pool.finish_range();
  EXPECT_THROW(pool.finish_range(), std::logic_error);
}

// for_range_stealing/post_range_stealing: the chunked work-stealing split.
// Coverage must stay exactly-once at every thread count and chunk size even
// though assignment is first-come; the sequential fallback must remain a
// plain in-order loop; stats must account every chunk.
TEST(ThreadPool, StealingCoversRangeExactlyOnce) {
  for (const unsigned threads : {1u, 2u, 3u, 8u}) {
    for (const std::size_t chunk : {std::size_t{0}, std::size_t{1},
                                    std::size_t{7}, std::size_t{5000}}) {
      ThreadPool pool(threads);
      std::vector<std::atomic<int>> hits(1000);
      pool.for_range_stealing(
          hits.size(),
          [&](unsigned worker, std::size_t begin, std::size_t end) {
            EXPECT_LT(worker, threads);
            EXPECT_LT(begin, end);
            for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
          },
          {.chunk = chunk});
      for (const std::atomic<int>& h : hits) EXPECT_EQ(h.load(), 1);
    }
  }
}

TEST(ThreadPool, StealingChunkOptionBoundsEveryCall) {
  ThreadPool pool(3);
  constexpr std::size_t kChunk = 16;
  std::atomic<int> calls{0};
  pool.for_range_stealing(
      100,
      [&](unsigned, std::size_t begin, std::size_t end) {
        EXPECT_EQ(begin % kChunk, 0u);
        EXPECT_LE(end - begin, kChunk);
        ++calls;
      },
      {.chunk = kChunk});
  EXPECT_EQ(calls.load(), 7);  // ceil(100 / 16)
  EXPECT_EQ(pool.last_range_stats().chunks, 7u);
  EXPECT_EQ(pool.last_range_stats().worker_busy_ns.size(), 3u);
}

TEST(ThreadPool, StealingSequentialFallbackRunsInlineInOrder) {
  ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  std::size_t expect_begin = 0;
  pool.for_range_stealing(
      57,
      [&](unsigned worker, std::size_t begin, std::size_t end) {
        EXPECT_EQ(worker, 0u);
        EXPECT_EQ(begin, expect_begin);  // chunks drain in index order
        EXPECT_EQ(std::this_thread::get_id(), caller);
        expect_begin = end;
      },
      {.chunk = 10});
  EXPECT_EQ(expect_begin, 57u);
  EXPECT_EQ(pool.last_range_stats().chunks, 6u);
  EXPECT_EQ(pool.last_range_stats().steals, 0u);  // one claimant never steals
}

TEST(ThreadPool, StealingRebalancesAroundAStraggler) {
  // Chunk 0 refuses to finish until every other chunk has run, so whichever
  // claimant drew it is pinned and its peer must drain the rest — at least
  // three of those chunks belong to the pinned slot's static share, so the
  // steal counter must see them.
  ThreadPool pool(2);
  std::atomic<int> others_done{0};
  std::vector<std::atomic<int>> hits(8);
  pool.for_range_stealing(
      hits.size(),
      [&](unsigned, std::size_t begin, std::size_t) {
        if (begin == 0) {
          while (others_done.load() < 7) std::this_thread::yield();
        } else {
          others_done.fetch_add(1);
        }
        hits[begin].fetch_add(1);
      },
      {.chunk = 1});
  for (const std::atomic<int>& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_EQ(pool.last_range_stats().chunks, 8u);
  EXPECT_GE(pool.last_range_stats().steals, 3u);
}

TEST(ThreadPool, StealingEmptyRangeInvokesNothing) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.for_range_stealing(0,
                          [&](unsigned, std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
  EXPECT_EQ(pool.last_range_stats().chunks, 0u);
  EXPECT_EQ(pool.last_range_stats().worker_busy_ns.size(), 4u);
}

TEST(ThreadPool, StealingExceptionPropagatesAndPoolSurvives) {
  // The throwing chunk is a *stolen* one (not index 0), the thrower stops
  // claiming, the range still drains, and the pool stays reusable for both
  // flavors afterwards.
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.for_range_stealing(
          100,
          [&](unsigned, std::size_t begin, std::size_t) {
            if (begin == 35) throw std::runtime_error("chunk");
          },
          {.chunk = 5}),
      std::runtime_error);
  std::atomic<int> total{0};
  pool.for_range_stealing(100,
                          [&](unsigned, std::size_t begin, std::size_t end) {
                            total.fetch_add(static_cast<int>(end - begin));
                          });
  pool.for_range(100, [&](unsigned, std::size_t begin, std::size_t end) {
    total.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(total.load(), 200);
}

TEST(ThreadPool, PostFinishStealingCoversRangeExactlyOnce) {
  for (const unsigned threads : {1u, 2u, 4u}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> hits(500);
    pool.post_range_stealing(hits.size(), [&](unsigned worker,
                                              std::size_t begin,
                                              std::size_t end) {
      EXPECT_LT(worker, threads);
      for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
    });
    pool.finish_range();
    for (const std::atomic<int>& h : hits) EXPECT_EQ(h.load(), 1);
    EXPECT_GE(pool.last_range_stats().chunks, 1u);
    EXPECT_EQ(pool.last_range_stats().worker_busy_ns.size(), threads);
  }
}

TEST(ThreadPool, PostFinishStealingExceptionPropagatesAtFinish) {
  ThreadPool pool(2);
  pool.post_range_stealing(10, [&](unsigned, std::size_t begin, std::size_t) {
    if (begin == 0) throw std::runtime_error("chunk 0");
  });
  EXPECT_THROW(pool.finish_range(), std::runtime_error);
  std::atomic<int> total{0};
  pool.for_range(10, [&](unsigned, std::size_t begin, std::size_t end) {
    total.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(total.load(), 10);
}

TEST(ThreadPool, StealingDoublePostIsInvalidAcrossFlavors) {
  ThreadPool pool(2);
  pool.post_range_stealing(4, [](unsigned, std::size_t, std::size_t) {});
  EXPECT_THROW(
      pool.post_range_stealing(4, [](unsigned, std::size_t, std::size_t) {}),
      std::logic_error);
  EXPECT_THROW(pool.post_range(4, [](unsigned, std::size_t, std::size_t) {}),
               std::logic_error);
  EXPECT_THROW(
      pool.for_range_stealing(4, [](unsigned, std::size_t, std::size_t) {}),
      std::logic_error);
  pool.finish_range();
  EXPECT_THROW(pool.finish_range(), std::logic_error);
}

TEST(ThreadPool, ChunkHomeMatchesStaticSlice) {
  // chunk_home(c, chunks, threads) must name exactly the slot whose static
  // slice of [0, chunks) contains c — it is the baseline steals are counted
  // against.
  for (const unsigned threads : {1u, 2u, 3u, 5u, 8u}) {
    for (std::size_t chunks = 1; chunks <= 40; ++chunks) {
      for (std::size_t c = 0; c < chunks; ++c) {
        const unsigned home = ThreadPool::chunk_home(c, chunks, threads);
        ASSERT_LT(home, threads);
        const auto [begin, end] = ThreadPool::slice(chunks, threads, home);
        EXPECT_GE(c, begin);
        EXPECT_LT(c, end);
      }
    }
  }
}

// Cooperative cancellation (RangeOptions::cancel): the token is polled
// before every chunk claim; a claimed chunk always runs to completion.  The
// job throws CancelledError iff the range was left uncovered and no chunk
// threw a real exception — a real error always wins over a racing cancel.
TEST(ThreadPool, StealingCancelStopsAtTheNextChunkBoundary) {
  ThreadPool pool(1);  // deterministic: chunks drain in index order
  CancelToken token;
  std::size_t calls = 0;
  EXPECT_THROW(
      pool.for_range_stealing(
          100,
          [&](unsigned, std::size_t, std::size_t) {
            if (++calls == 3) token.cancel();
          },
          {.chunk = 10, .cancel = &token}),
      CancelledError);
  // The cancelling chunk finishes; the NEXT claim is refused.
  EXPECT_EQ(calls, 3u);
  EXPECT_TRUE(pool.last_range_stats().cancelled);
  EXPECT_EQ(pool.last_range_stats().chunks, 3u);
  // A cancelled pool is fully reusable.
  std::atomic<int> total{0};
  pool.for_range_stealing(100,
                          [&](unsigned, std::size_t begin, std::size_t end) {
                            total.fetch_add(static_cast<int>(end - begin));
                          });
  EXPECT_EQ(total.load(), 100);
}

TEST(ThreadPool, CancelAfterTheLastChunkIsANoOp) {
  // The token trips inside the FINAL chunk: the range is fully covered, so
  // the job completes normally — late cancellation never invents a failure.
  ThreadPool pool(1);
  CancelToken token;
  std::size_t calls = 0;
  pool.for_range_stealing(
      30,
      [&](unsigned, std::size_t, std::size_t) {
        if (++calls == 3) token.cancel();
      },
      {.chunk = 10, .cancel = &token});
  EXPECT_EQ(calls, 3u);
  EXPECT_FALSE(pool.last_range_stats().cancelled);
}

TEST(ThreadPool, RealExceptionWinsOverRacingCancellation) {
  // Interleave cancel+throw inside the SAME chunk at every boundary k: the
  // caller must always learn what actually broke, never CancelledError.
  for (std::size_t k = 0; k < 5; ++k) {
    ThreadPool pool(1);
    CancelToken token;
    std::size_t calls = 0;
    try {
      pool.for_range_stealing(
          50,
          [&](unsigned, std::size_t, std::size_t) {
            if (++calls == k + 1) {
              token.cancel();
              throw std::runtime_error("real failure");
            }
          },
          {.chunk = 10, .cancel = &token});
      FAIL() << "must throw (k = " << k << ")";
    } catch (const CancelledError&) {
      FAIL() << "cancellation masked the real error at chunk " << k;
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "real failure");
    }
    EXPECT_FALSE(pool.last_range_stats().cancelled);
    EXPECT_EQ(calls, k + 1);
  }
}

TEST(ThreadPool, StealingCancelMultiThreadedIsConsistent) {
  // With workers racing the cancel, either outcome is legal — the range
  // drained before the token was seen, or it was abandoned — but the stats,
  // the exception, and the executed count must agree.
  ThreadPool pool(2);
  CancelToken token;
  std::atomic<int> calls{0};
  bool cancelled_seen = false;
  try {
    pool.for_range_stealing(
        1000,
        [&](unsigned, std::size_t, std::size_t) {
          if (calls.fetch_add(1) == 0) token.cancel();
        },
        {.chunk = 1, .cancel = &token});
  } catch (const CancelledError&) {
    cancelled_seen = true;
  }
  EXPECT_EQ(cancelled_seen, pool.last_range_stats().cancelled);
  if (cancelled_seen) {
    EXPECT_LT(calls.load(), 1000);
  }
  EXPECT_EQ(pool.last_range_stats().chunks,
            static_cast<std::uint64_t>(calls.load()));
  std::atomic<int> total{0};
  pool.for_range_stealing(64,
                          [&](unsigned, std::size_t begin, std::size_t end) {
                            total.fetch_add(static_cast<int>(end - begin));
                          });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPool, PostFinishStealingCancelSurfacesAtFinish) {
  ThreadPool pool(1);
  CancelToken token;
  token.cancel();  // pre-cancelled: no chunk may run at all
  std::size_t calls = 0;
  pool.post_range_stealing(
      50, [&](unsigned, std::size_t, std::size_t) { ++calls; },
      {.chunk = 10, .cancel = &token});
  EXPECT_THROW(pool.finish_range(), CancelledError);
  EXPECT_EQ(calls, 0u);
  EXPECT_TRUE(pool.last_range_stats().cancelled);
  EXPECT_EQ(pool.last_range_stats().chunks, 0u);
  std::atomic<int> total{0};
  pool.for_range(10, [&](unsigned, std::size_t begin, std::size_t end) {
    total.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(total.load(), 10);
}

TEST(ThreadPool, DeadlineTokenCancelsThroughThePool) {
  // An already-expired deadline behaves exactly like a tripped flag: the
  // first claim is refused.
  ThreadPool pool(1);
  CancelToken token;
  token.reset(1);  // long past
  std::size_t calls = 0;
  EXPECT_THROW(
      pool.for_range_stealing(
          40, [&](unsigned, std::size_t, std::size_t) { ++calls; },
          {.chunk = 10, .cancel = &token}),
      CancelledError);
  EXPECT_EQ(calls, 0u);
}

TEST(ThreadPool, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::hardware_threads(), 1u);
}

TEST(ThreadPool, ZeroThreadsIsInvalidInput) {
  EXPECT_THROW(ThreadPool pool(0), std::logic_error);
}

}  // namespace
}  // namespace pls::util
