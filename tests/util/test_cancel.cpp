// CancelToken: the flag and the deadline are the only two trip conditions,
// and reset() must make a token fully reusable (the Server arms one token
// per request).
#include "util/cancel.hpp"

#include <gtest/gtest.h>

namespace pls::util {
namespace {

TEST(CancelToken, FlagTripsAndResetClears) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  token.cancel();
  EXPECT_TRUE(token.cancelled());
  token.reset();
  EXPECT_FALSE(token.cancelled());
}

TEST(CancelToken, DeadlineTrips) {
  CancelToken token;
  // A deadline in the past trips immediately; one far in the future never
  // does within the test's lifetime.
  token.reset(1);  // 1 ns after the steady epoch — long past
  EXPECT_TRUE(token.cancelled());
  const std::uint64_t future = CancelToken::now_ns() + 60'000'000'000ull;
  token.reset(future);
  EXPECT_FALSE(token.cancelled());
  EXPECT_EQ(token.deadline_ns(), future);
  // The flag still works alongside an unexpired deadline.
  token.cancel();
  EXPECT_TRUE(token.cancelled());
}

TEST(CancelToken, ResetClearsBothConditions) {
  CancelToken token;
  token.reset(1);
  token.cancel();
  EXPECT_TRUE(token.cancelled());
  token.reset();  // no deadline, flag cleared
  EXPECT_FALSE(token.cancelled());
  EXPECT_EQ(token.deadline_ns(), 0u);
}

TEST(CancelToken, CancelledErrorCarriesAMessage) {
  try {
    throw CancelledError();
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "operation cancelled");
  }
}

}  // namespace
}  // namespace pls::util
