#include "util/bitio.hpp"

#include <gtest/gtest.h>

namespace pls::util {
namespace {

TEST(BitIo, EmptyWriterHasNoBits) {
  BitWriter w;
  EXPECT_EQ(w.bit_size(), 0u);
  EXPECT_TRUE(w.bytes().empty());
}

TEST(BitIo, SingleBitRoundTrip) {
  BitWriter w;
  w.write_bit(true);
  w.write_bit(false);
  w.write_bit(true);
  BitReader r(w.bytes(), w.bit_size());
  EXPECT_EQ(r.read_bit(), std::optional<bool>(true));
  EXPECT_EQ(r.read_bit(), std::optional<bool>(false));
  EXPECT_EQ(r.read_bit(), std::optional<bool>(true));
  EXPECT_TRUE(r.exhausted());
}

TEST(BitIo, FixedWidthRoundTrip) {
  BitWriter w;
  w.write_uint(0b1011, 4);
  w.write_uint(0xFFFF, 16);
  w.write_uint(0, 1);
  BitReader r(w.bytes(), w.bit_size());
  EXPECT_EQ(r.read_uint(4), std::optional<std::uint64_t>(0b1011));
  EXPECT_EQ(r.read_uint(16), std::optional<std::uint64_t>(0xFFFF));
  EXPECT_EQ(r.read_uint(1), std::optional<std::uint64_t>(0));
  EXPECT_TRUE(r.exhausted());
}

TEST(BitIo, WidthZeroWritesNothing) {
  BitWriter w;
  w.write_uint(123, 0);
  EXPECT_EQ(w.bit_size(), 0u);
}

TEST(BitIo, SixtyFourBitValue) {
  const std::uint64_t v = 0xDEADBEEFCAFEF00Dull;
  BitWriter w;
  w.write_uint(v, 64);
  BitReader r(w.bytes(), w.bit_size());
  EXPECT_EQ(r.read_uint(64), std::optional<std::uint64_t>(v));
}

TEST(BitIo, ReadPastEndFailsSoftly) {
  BitWriter w;
  w.write_uint(3, 2);
  BitReader r(w.bytes(), w.bit_size());
  EXPECT_EQ(r.read_uint(3), std::nullopt);  // only 2 bits available
  // A failed wide read does not consume anything usable; the reader is safe.
  BitReader r2(w.bytes(), w.bit_size());
  EXPECT_TRUE(r2.read_uint(2).has_value());
  EXPECT_EQ(r2.read_bit(), std::nullopt);
}

TEST(BitIo, ReaderTracksRemaining) {
  BitWriter w;
  w.write_uint(0, 10);
  BitReader r(w.bytes(), w.bit_size());
  EXPECT_EQ(r.remaining(), 10u);
  ASSERT_TRUE(r.read_uint(4).has_value());
  EXPECT_EQ(r.remaining(), 6u);
  EXPECT_EQ(r.position(), 4u);
}

class VarintRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VarintRoundTrip, Value) {
  BitWriter w;
  w.write_varint(GetParam());
  BitReader r(w.bytes(), w.bit_size());
  EXPECT_EQ(r.read_varint(), std::optional<std::uint64_t>(GetParam()));
  EXPECT_TRUE(r.exhausted());
}

INSTANTIATE_TEST_SUITE_P(
    Values, VarintRoundTrip,
    ::testing::Values(0ull, 1ull, 2ull, 100ull, 127ull, 128ull, 129ull,
                      16383ull, 16384ull, 1u << 20, (1ull << 40) + 17,
                      std::uint64_t(-1)));

TEST(BitIo, VarintSizeIsEightBitsPerGroup) {
  BitWriter w;
  w.write_varint(127);
  EXPECT_EQ(w.bit_size(), 8u);
  BitWriter w2;
  w2.write_varint(128);
  EXPECT_EQ(w2.bit_size(), 16u);
}

TEST(BitIo, TruncatedVarintFails) {
  BitWriter w;
  w.write_varint(300);  // two groups
  BitReader r(w.bytes(), 8);  // cut off the second group
  EXPECT_EQ(r.read_varint(), std::nullopt);
}

TEST(BitIo, InterleavedValuesKeepAlignment) {
  BitWriter w;
  w.write_bit(true);
  w.write_varint(12345);
  w.write_uint(0b101, 3);
  w.write_varint(7);
  BitReader r(w.bytes(), w.bit_size());
  EXPECT_EQ(r.read_bit(), std::optional<bool>(true));
  EXPECT_EQ(r.read_varint(), std::optional<std::uint64_t>(12345));
  EXPECT_EQ(r.read_uint(3), std::optional<std::uint64_t>(0b101));
  EXPECT_EQ(r.read_varint(), std::optional<std::uint64_t>(7));
  EXPECT_TRUE(r.exhausted());
}

TEST(BitIo, WriteBitsAppendsVerbatim) {
  BitWriter inner;
  inner.write_uint(0b110101, 6);
  BitWriter outer;
  outer.write_bit(false);
  outer.write_bits(inner.bytes(), inner.bit_size());
  BitReader r(outer.bytes(), outer.bit_size());
  ASSERT_TRUE(r.read_bit().has_value());
  EXPECT_EQ(r.read_uint(6), std::optional<std::uint64_t>(0b110101));
}

TEST(BitIo, TakeBytesResetsWriter) {
  BitWriter w;
  w.write_uint(0xAB, 8);
  const auto bytes = w.take_bytes();
  EXPECT_EQ(bytes.size(), 1u);
  EXPECT_EQ(w.bit_size(), 0u);
  w.write_bit(true);
  EXPECT_EQ(w.bit_size(), 1u);
}

TEST(BitIo, BitWidthFor) {
  EXPECT_EQ(bit_width_for(0), 1u);
  EXPECT_EQ(bit_width_for(1), 1u);
  EXPECT_EQ(bit_width_for(2), 2u);
  EXPECT_EQ(bit_width_for(3), 2u);
  EXPECT_EQ(bit_width_for(4), 3u);
  EXPECT_EQ(bit_width_for(255), 8u);
  EXPECT_EQ(bit_width_for(256), 9u);
  EXPECT_EQ(bit_width_for(std::uint64_t(-1)), 64u);
}

TEST(BitIo, WidthOver64Throws) {
  BitWriter w;
  EXPECT_THROW(w.write_uint(0, 65), std::logic_error);
}

// Appends one raw varint group: 7 value bits + a continuation bit.  The
// writer below is how an ADVERSARY spells varints — write_varint itself
// can't produce the overlong shapes these tests must reject.
void raw_group(BitWriter& w, std::uint64_t bits7, bool cont) {
  w.write_uint(bits7, 7);
  w.write_bit(cont);
}

TEST(BitIo, TenGroupVarintCarriesExactlyOneTopBit) {
  // Nine full groups cover bits 0..62; the tenth sits at shift 63, where
  // only its lowest bit is representable.  Group value 1 is the canonical
  // encoding of UINT64_MAX's top bit and must decode.
  BitWriter w;
  for (int g = 0; g < 9; ++g) raw_group(w, 0x7F, true);
  raw_group(w, 0x01, false);
  BitReader r(w.bytes(), w.bit_size());
  EXPECT_EQ(r.read_varint(),
            std::optional<std::uint64_t>(std::uint64_t(-1)));
  EXPECT_TRUE(r.exhausted());
}

TEST(BitIo, OverlongVarintIsRejectedNotAliased) {
  // Same ten groups, but the final group holds a bit that would shift past
  // bit 63.  The pre-hardening reader silently dropped it — aliasing this
  // encoding onto a smaller value; it must fail closed instead.
  BitWriter w;
  for (int g = 0; g < 9; ++g) raw_group(w, 0x7F, true);
  raw_group(w, 0x02, false);
  BitReader r(w.bytes(), w.bit_size());
  EXPECT_EQ(r.read_varint(), std::nullopt);
  EXPECT_TRUE(r.failed());
  EXPECT_EQ(r.position(), 0u);  // the failed read consumed nothing
}

TEST(BitIo, NonMinimalVarintIsRejectedNotAliased) {
  // [group=5,cont=1][group=0,cont=0] decodes to the same 5 as the single-
  // group encoding — two distinct byte strings, one value.  Wire varints
  // are canonical, so the redundant form must fail closed.
  BitWriter w;
  raw_group(w, 0x05, true);
  raw_group(w, 0x00, false);
  BitReader r(w.bytes(), w.bit_size());
  EXPECT_EQ(r.read_varint(), std::nullopt);
  EXPECT_TRUE(r.failed());
  EXPECT_EQ(r.position(), 0u);

  // Redundantly-encoded zero ([0,cont=1][0,cont=0]) is rejected the same
  // way...
  BitWriter wz;
  raw_group(wz, 0x00, true);
  raw_group(wz, 0x00, false);
  BitReader rz(wz.bytes(), wz.bit_size());
  EXPECT_EQ(rz.read_varint(), std::nullopt);
  EXPECT_TRUE(rz.failed());

  // ...while zero's one canonical encoding — the single zero group — still
  // decodes.
  BitWriter z;
  z.write_varint(0);
  BitReader rc(z.bytes(), z.bit_size());
  EXPECT_EQ(rc.read_varint(), std::optional<std::uint64_t>(0));
  EXPECT_TRUE(rc.exhausted());
}

TEST(BitIo, ElevenGroupVarintIsRejected) {
  BitWriter w;
  for (int g = 0; g < 10; ++g) raw_group(w, 0x01, true);
  raw_group(w, 0x00, false);
  BitReader r(w.bytes(), w.bit_size());
  EXPECT_EQ(r.read_varint(), std::nullopt);
  EXPECT_TRUE(r.failed());
}

TEST(BitIo, FailureIsStickyAndConsumesNothing) {
  BitWriter w;
  w.write_uint(0b1011, 4);
  BitReader r(w.bytes(), w.bit_size());
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.read_uint(8), std::nullopt);  // only 4 bits available
  EXPECT_TRUE(r.failed());
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.position(), 0u);
  // Sticky: the 4-bit read WOULD fit, but a reader that has failed once
  // answers nothing — a decoder can't resynchronize on attacker-controlled
  // input by accident.
  EXPECT_EQ(r.read_uint(4), std::nullopt);
  EXPECT_EQ(r.read_bit(), std::nullopt);
  EXPECT_EQ(r.read_varint(), std::nullopt);

  BitReader fresh(w.bytes(), w.bit_size());
  EXPECT_EQ(fresh.read_uint(4), std::optional<std::uint64_t>(0b1011));
  EXPECT_TRUE(fresh.ok());
}

TEST(BitIo, TruncatedVarintRestoresThePosition) {
  BitWriter w;
  w.write_uint(0xAB, 8);
  raw_group(w, 0x7F, true);  // promises a second group that never comes
  BitReader r(w.bytes(), w.bit_size());
  EXPECT_EQ(r.read_uint(8), std::optional<std::uint64_t>(0xAB));
  EXPECT_EQ(r.read_varint(), std::nullopt);
  EXPECT_TRUE(r.failed());
  EXPECT_EQ(r.position(), 8u);  // rewound to where the varint began
}

}  // namespace
}  // namespace pls::util
