#include <gtest/gtest.h>

#include "schemes/bipartite.hpp"
#include "schemes/coloring.hpp"
#include "schemes/common.hpp"
#include "schemes/regular.hpp"
#include "testing/helpers.hpp"

namespace pls::schemes {
namespace {

using pls::testing::share;

// ---------------------------------------------------------------------------
// bipartite
// ---------------------------------------------------------------------------

TEST(Bipartite, LanguageIsGraphProperty) {
  const BipartiteLanguage language;
  util::Rng rng(1);
  auto even = share(graph::cycle(8));
  auto odd = share(graph::cycle(9));
  EXPECT_TRUE(language.contains(language.sample_legal(even, rng)));
  std::vector<local::State> empty(9);
  EXPECT_FALSE(language.contains(local::Configuration(odd, empty)));
}

TEST(Bipartite, NonEmptyStatesNotInLanguage) {
  const BipartiteLanguage language;
  auto g = share(graph::path(3));
  std::vector<local::State> states(3, local::State::of_uint(1, 1));
  EXPECT_FALSE(language.contains(local::Configuration(g, states)));
}

TEST(Bipartite, CompletenessOnBipartiteFamily) {
  const BipartiteLanguage language;
  const BipartiteScheme scheme(language);
  util::Rng rng(3);
  for (auto base : {graph::path(7), graph::cycle(10), graph::grid(4, 5),
                    graph::balanced_binary_tree(15), graph::star(8)}) {
    auto g = share(std::move(base));
    pls::testing::expect_complete(scheme, language.sample_legal(g, rng));
  }
}

TEST(Bipartite, ProofSizeIsOneBit) {
  const BipartiteLanguage language;
  const BipartiteScheme scheme(language);
  util::Rng rng(5);
  auto g = share(graph::grid(6, 6));
  EXPECT_EQ(scheme.mark(language.sample_legal(g, rng)).max_bits(), 1u);
}

TEST(Bipartite, OddCycleAlwaysRejected) {
  const BipartiteLanguage language;
  const BipartiteScheme scheme(language);
  auto g = share(graph::cycle(7));
  std::vector<local::State> empty(7);
  const local::Configuration cfg(g, empty);
  // Exhaustive over 1-bit certificates: a monochromatic edge always exists.
  EXPECT_GE(core::exhaustive_min_rejections(scheme, cfg, 1), 2u);
}

TEST(Bipartite, AttackSuiteCannotFoolOddCycle) {
  const BipartiteLanguage language;
  const BipartiteScheme scheme(language);
  auto g = share(graph::cycle(9));
  std::vector<local::State> empty(9);
  pls::testing::expect_sound(scheme, local::Configuration(g, empty), 7);
}

// ---------------------------------------------------------------------------
// coloring
// ---------------------------------------------------------------------------

TEST(Coloring, ProperColoringAccepted) {
  const ColoringLanguage language(4);
  util::Rng rng(9);
  for (auto& g : pls::testing::unweighted_family(11))
    if (g->n() >= 2) {
      // unweighted_family's max degree can reach 9 (star): use 16 colors.
      const ColoringLanguage big(16);
      EXPECT_TRUE(big.contains(big.sample_legal(g, rng)));
    }
}

TEST(Coloring, MonochromaticEdgeRejected) {
  const ColoringLanguage language(3);
  auto g = share(graph::path(3));
  std::vector<local::State> states = {language.encode_color(1),
                                      language.encode_color(1),
                                      language.encode_color(2)};
  EXPECT_FALSE(language.contains(local::Configuration(g, states)));
}

TEST(Coloring, OutOfRangeColorRejected) {
  const ColoringLanguage language(3);
  auto g = share(graph::path(2));
  util::BitWriter w;
  w.write_varint(7);  // color 7 with only 3 colors
  std::vector<local::State> states = {language.encode_color(0),
                                      local::State::from_writer(std::move(w))};
  EXPECT_FALSE(language.contains(local::Configuration(g, states)));
}

TEST(Coloring, ZeroBitScheme) {
  const ColoringLanguage language(16);
  const ColoringScheme scheme(language);
  util::Rng rng(13);
  for (auto& g : pls::testing::unweighted_family(13)) {
    const auto cfg = language.sample_legal(g, rng);
    pls::testing::expect_complete(scheme, cfg);
    EXPECT_EQ(scheme.mark(cfg).max_bits(), 0u);
  }
}

TEST(Coloring, MonochromaticEdgeRejectedAtBothEndpoints) {
  const ColoringLanguage language(3);
  const ColoringScheme scheme(language);
  auto g = share(graph::path(4));
  std::vector<local::State> states = {
      language.encode_color(0), language.encode_color(1),
      language.encode_color(1), language.encode_color(0)};
  const local::Configuration cfg(g, states);
  ASSERT_FALSE(language.contains(cfg));
  core::Labeling empty;
  empty.certs.assign(4, local::Certificate{});
  const core::Verdict verdict = core::run_verifier(scheme, cfg, empty);
  EXPECT_FALSE(verdict.accept()[1]);
  EXPECT_FALSE(verdict.accept()[2]);
  EXPECT_TRUE(verdict.accept()[0]);
  // Certificates are irrelevant for a 0-bit scheme: the attack changes nothing.
  pls::testing::expect_sound(scheme, cfg, 17);
}

// ---------------------------------------------------------------------------
// regular
// ---------------------------------------------------------------------------

TEST(Regular, FullCycleIsRegular) {
  const RegularLanguage language;
  auto g = share(graph::cycle(6));
  EXPECT_TRUE(language.contains(language.make_full_subgraph(g)));
}

TEST(Regular, SampleLegalIsLegal) {
  const RegularLanguage language;
  util::Rng rng(19);
  for (auto& g : pls::testing::unweighted_family(19))
    EXPECT_TRUE(language.contains(language.sample_legal(g, rng)));
}

TEST(Regular, MixedDegreesRejected) {
  const RegularLanguage language;
  auto g = share(graph::star(5));
  EXPECT_FALSE(language.contains(language.make_full_subgraph(g)));
}

TEST(Regular, SchemeCompleteOnCyclesAndMatchings) {
  const RegularLanguage language;
  const RegularScheme scheme(language);
  util::Rng rng(23);
  auto ring = share(graph::cycle(9));
  pls::testing::expect_complete(scheme, language.make_full_subgraph(ring));
  auto even_path = share(graph::path(8));
  pls::testing::expect_complete(scheme, language.sample_legal(even_path, rng));
}

TEST(Regular, SchemeSoundOnStar) {
  const RegularLanguage language;
  const RegularScheme scheme(language);
  auto g = share(graph::star(6));
  pls::testing::expect_sound(scheme, language.make_full_subgraph(g), 29);
}

TEST(Regular, DegreeDisagreementDetectedAtCut) {
  const RegularLanguage language;
  const RegularScheme scheme(language);
  util::Rng rng(31);
  // Glue a 2-regular side and a 3-regular side.
  const graph::Graph side1 = graph::cycle(6);
  const graph::Graph side2 = graph::random_regular(8, 3, rng);
  const graph::Edge cut2 = side2.edge(0);
  const auto crossed =
      graph::cross_graphs(side1, 0, 1, side2, cut2.u, cut2.v, 100);
  auto g = share(crossed.graph);
  const auto cfg = language.make_full_subgraph(g);
  ASSERT_FALSE(language.contains(cfg));
  pls::testing::expect_sound(scheme, cfg, 37);
}

}  // namespace
}  // namespace pls::schemes
