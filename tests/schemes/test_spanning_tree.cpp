#include "schemes/spanning_tree.hpp"

#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "schemes/common.hpp"
#include "testing/helpers.hpp"

namespace pls::schemes {
namespace {

using pls::testing::share;

// ---------------------------------------------------------------------------
// stp
// ---------------------------------------------------------------------------

TEST(StpLanguage, BfsTreeIsLegal) {
  const StpLanguage language;
  auto g = share(graph::grid(3, 4));
  for (graph::NodeIndex root = 0; root < g->n(); ++root)
    EXPECT_TRUE(language.contains(language.make_tree(g, root)));
}

TEST(StpLanguage, TwoRootsIllegal) {
  const StpLanguage language;
  auto g = share(graph::path(6));
  auto cfg = language.make_tree(g, 0);
  // Cut the tree: node 3 becomes a second root.
  cfg = cfg.with_state(3, encode_pointer(std::nullopt));
  EXPECT_FALSE(language.contains(cfg));
}

TEST(StpLanguage, PointerCycleIllegal) {
  const StpLanguage language;
  auto g = share(graph::cycle(5));
  std::vector<local::State> states;
  for (std::size_t v = 0; v < 5; ++v)
    states.push_back(encode_pointer(g->id(static_cast<graph::NodeIndex>((v + 1) % 5))));
  EXPECT_FALSE(language.contains(local::Configuration(g, states)));
}

TEST(StpScheme, CompletenessSweep) {
  const StpLanguage language;
  const StpScheme scheme(language);
  for (auto& g : pls::testing::unweighted_family(61)) {
    util::Rng rng(67);
    pls::testing::expect_complete(scheme, language.sample_legal(g, rng));
  }
}

TEST(StpScheme, SoundOnMeetInTheMiddle) {
  const StpLanguage language;
  const StpScheme scheme(language);
  const std::size_t n = 8;
  auto g = share(graph::path(n));
  std::vector<local::State> states;
  for (std::size_t v = 0; v < n; ++v) {
    if (v == 0 || v == n - 1) {
      states.push_back(encode_pointer(std::nullopt));
    } else if (v < n / 2) {
      states.push_back(encode_pointer(g->id(static_cast<graph::NodeIndex>(v - 1))));
    } else {
      states.push_back(encode_pointer(g->id(static_cast<graph::NodeIndex>(v + 1))));
    }
  }
  pls::testing::expect_sound(scheme, local::Configuration(g, states), 71);
}

TEST(StpScheme, SoundOnCycle) {
  const StpLanguage language;
  const StpScheme scheme(language);
  auto g = share(graph::cycle(6));
  std::vector<local::State> states;
  for (std::size_t v = 0; v < 6; ++v)
    states.push_back(encode_pointer(g->id(static_cast<graph::NodeIndex>((v + 1) % 6))));
  pls::testing::expect_sound(scheme, local::Configuration(g, states), 73);
}

TEST(StpScheme, NonRootClaimingDistanceZeroRejected) {
  const StpLanguage language;
  const StpScheme scheme(language);
  auto g = share(graph::path(4));
  const auto cfg = language.make_tree(g, 0);
  core::Labeling lab = scheme.mark(cfg);
  // Node 2 claims dist 0 with the true root id: it is not the root.
  util::BitWriter w;
  w.write_varint(g->id(0));
  w.write_varint(g->id(2));
  w.write_varint(0);
  lab.certs[2] = local::Certificate::from_writer(std::move(w));
  EXPECT_GE(core::run_verifier(scheme, cfg, lab).rejections(), 1u);
}

// ---------------------------------------------------------------------------
// stl
// ---------------------------------------------------------------------------

TEST(StlLanguage, BfsTreeIsLegal) {
  const StlLanguage language;
  auto g = share(graph::grid(3, 3));
  util::Rng rng(79);
  EXPECT_TRUE(language.contains(language.sample_legal(g, rng)));
}

TEST(StlLanguage, AsymmetricListingIllegal) {
  const StlLanguage language;
  auto g = share(graph::path(3));
  std::vector<bool> mask(g->m(), true);
  auto cfg = language.make_from_mask(g, mask);
  // Node 0 forgets its only edge; node 1 still lists node 0.
  cfg = cfg.with_state(0, encode_adjacency_list({}));
  EXPECT_FALSE(language.contains(cfg));
}

TEST(StlLanguage, ExtraEdgeIllegal) {
  const StlLanguage language;
  auto g = share(graph::cycle(4));
  std::vector<bool> all(g->m(), true);  // a cycle, not a tree
  EXPECT_FALSE(language.contains(language.make_from_mask(g, all)));
}

TEST(StlLanguage, ForestIllegal) {
  const StlLanguage language;
  auto g = share(graph::path(5));
  std::vector<bool> mask(g->m(), true);
  mask[2] = false;  // drop one path edge: two components
  EXPECT_FALSE(language.contains(language.make_from_mask(g, mask)));
}

TEST(StlScheme, CompletenessSweep) {
  const StlLanguage language;
  const StlScheme scheme(language);
  for (auto& g : pls::testing::unweighted_family(83)) {
    util::Rng rng(89);
    pls::testing::expect_complete(scheme, language.sample_legal(g, rng));
  }
}

TEST(StlScheme, ProofSizeLogarithmic) {
  const StlLanguage language;
  const StlScheme scheme(language);
  auto g = share(graph::cycle(513));
  util::Rng rng(97);
  const auto cfg = language.sample_legal(g, rng);
  // Three varints of values <= 4n: comfortably below 64 bits total.
  EXPECT_LE(scheme.mark(cfg).max_bits(), 64u);
}

TEST(StlScheme, SoundOnForest) {
  const StlLanguage language;
  const StlScheme scheme(language);
  auto g = share(graph::cycle(8));
  std::vector<bool> mask(g->m(), true);
  mask[1] = false;
  mask[5] = false;  // two components
  pls::testing::expect_sound(scheme, language.make_from_mask(g, mask), 101);
}

TEST(StlScheme, SoundOnFullCycle) {
  const StlLanguage language;
  const StlScheme scheme(language);
  auto g = share(graph::cycle(8));
  std::vector<bool> all(g->m(), true);
  pls::testing::expect_sound(scheme, language.make_from_mask(g, all), 103);
}

TEST(StlScheme, AsymmetryRejectedAtBothEndpointsRegardlessOfCertificates) {
  const StlLanguage language;
  const StlScheme scheme(language);
  auto g = share(graph::path(4));
  std::vector<bool> mask(g->m(), true);
  auto cfg = language.make_from_mask(g, mask);
  // Node 1 drops its edge to node 2 from the list; node 2 keeps listing 1.
  cfg = cfg.with_state(1, encode_adjacency_list({g->id(0)}));
  ASSERT_FALSE(language.contains(cfg));
  util::Rng rng(107);
  const core::AttackReport report = core::attack(scheme, cfg, rng);
  // The symmetry check is state-only: certificates cannot save nodes 1 and 2.
  EXPECT_GE(report.min_rejections, 2u);
}

TEST(StlScheme, ListedNonTreeEdgeMustBeParentEdge) {
  const StlLanguage language;
  const StlScheme scheme(language);
  auto g = share(graph::cycle(4));
  // Claim the full cycle (symmetric, but 4 edges on 4 nodes).
  std::vector<bool> all(g->m(), true);
  const auto cfg = language.make_from_mask(g, all);
  ASSERT_FALSE(language.contains(cfg));
  // Even certificates copied from a real spanning tree cannot help: the edge
  // that is not a parent edge of either endpoint is rejected.
  std::vector<bool> tree(g->m(), true);
  tree[0] = false;
  const auto legal = language.make_from_mask(g, tree);
  const core::Labeling donor = scheme.mark(legal);
  EXPECT_GE(core::run_verifier(scheme, cfg, donor).rejections(), 1u);
}

}  // namespace
}  // namespace pls::schemes
